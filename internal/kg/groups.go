package kg

import (
	"math/rand"
)

// Grouping implements the coarse-grained random node grouping of HaLk
// Sec. II-A: nodes are randomly divided into groups of "video
// memory-friendly" size, each node carries a one-hot group vector h_v,
// and a relation-based 3-D adjacency matrix M[r][i][k] records whether
// any node of group i connects to any node of group k via relation r.
//
// HaLk uses the group vectors as an auxiliary signal in the intersection
// operator (Eq. 10) and the loss (Eq. 17).
type Grouping struct {
	NumGroups int
	groupOf   []int
	// adj[r][i*NumGroups+k] == true iff some (h in group i, r, t in group k) exists.
	adj [][]bool
}

// NewGrouping randomly assigns the graph's entities to numGroups groups
// and builds the 3-D group adjacency from the graph's triples.
func NewGrouping(g *Graph, numGroups int, rng *rand.Rand) *Grouping {
	if numGroups <= 0 {
		panic("kg: NewGrouping: numGroups must be positive")
	}
	gr := &Grouping{
		NumGroups: numGroups,
		groupOf:   make([]int, g.NumEntities()),
		adj:       make([][]bool, g.NumRelations()),
	}
	for i := range gr.groupOf {
		gr.groupOf[i] = rng.Intn(numGroups)
	}
	for r := range gr.adj {
		gr.adj[r] = make([]bool, numGroups*numGroups)
	}
	for _, t := range g.Triples() {
		i, k := gr.groupOf[t.H], gr.groupOf[t.T]
		gr.adj[t.R][i*numGroups+k] = true
	}
	return gr
}

// GroupOf returns the group index of entity e.
func (gr *Grouping) GroupOf(e EntityID) int { return gr.groupOf[e] }

// OneHot returns the one-hot group vector h_v of entity e.
func (gr *Grouping) OneHot(e EntityID) []float64 {
	v := make([]float64, gr.NumGroups)
	v[gr.groupOf[e]] = 1
	return v
}

// Connected reports whether any node of group i connects to any node of
// group k via relation r (the 3-D adjacency entry M_r^{ik}).
func (gr *Grouping) Connected(r RelationID, i, k int) bool {
	return gr.adj[r][i*gr.NumGroups+k]
}

// ProjectHot propagates a group indicator vector through relation r using
// the 3-D group adjacency: out[k] = max_i hot[i]*M_r^{ik}. The result is
// the multi-hot group vector of all groups reachable from the input
// groups in one r-hop; HaLk uses it to derive h_{U_t} for intermediate
// query nodes.
func (gr *Grouping) ProjectHot(hot []float64, r RelationID) []float64 {
	out := make([]float64, gr.NumGroups)
	for i, h := range hot {
		if h <= 0 {
			continue
		}
		row := gr.adj[r][i*gr.NumGroups : (i+1)*gr.NumGroups]
		for k, c := range row {
			if c && out[k] < h {
				out[k] = h
			}
		}
	}
	return out
}

// IntersectHot returns the elementwise product of group vectors, the
// h_{U_t} = h_{U_1} ⊙ ... ⊙ h_{U_k} combination used by the intersection
// operator.
func IntersectHot(hots ...[]float64) []float64 {
	if len(hots) == 0 {
		return nil
	}
	out := append([]float64(nil), hots[0]...)
	for _, h := range hots[1:] {
		for i := range out {
			out[i] *= h[i]
		}
	}
	return out
}
