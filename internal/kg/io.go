package kg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTSV writes the graph's triples as tab-separated
// "head<TAB>relation<TAB>tail" lines using dictionary names.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n",
			g.Entities.Name(int32(t.H)), g.Relations.Name(int32(t.R)), g.Entities.Name(int32(t.T))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses tab-separated triples into a new graph, registering
// names in the given dictionaries (which may be shared with other
// graphs). Blank lines and lines starting with '#' are skipped.
func ReadTSV(r io.Reader, entities, relations *Dict) (*Graph, error) {
	g := NewGraph(entities, relations)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("kg: line %d: want 3 tab-separated fields, got %d", lineNo, len(parts))
		}
		h := entities.Add(parts[0])
		rel := relations.Add(parts[1])
		t := entities.Add(parts[2])
		g.AddTriple(Triple{H: EntityID(h), R: RelationID(rel), T: EntityID(t)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kg: read tsv: %w", err)
	}
	return g, nil
}
