package kg

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSplitInvariants(t *testing.T) {
	ds := SynthFB237(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	nTrain, nValid, nTest := ds.Train.NumTriples(), ds.Valid.NumTriples(), ds.Test.NumTriples()
	if !(nTrain < nValid && nValid < nTest) {
		t.Errorf("split sizes not strictly growing: %d, %d, %d", nTrain, nValid, nTest)
	}
	// Holdout must not orphan any head: every (h, r) observed in the test
	// graph whose head had >1 fact keeps at least one fact in train only
	// if it was protected — weaker but checkable invariant: every entity
	// that is a head in valid-only/test-only triples still exists in
	// train's dictionaries (trivially true) and train is non-trivial.
	if nTrain < ds.Test.NumTriples()/2 {
		t.Errorf("train graph suspiciously small: %d of %d", nTrain, ds.Test.NumTriples())
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := SynthNELL(7)
	b := SynthNELL(7)
	ta, tb := a.Test.Triples(), b.Test.Triples()
	if len(ta) != len(tb) {
		t.Fatalf("sizes differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("triple %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
	c := SynthNELL(8)
	if c.Test.NumTriples() == a.Test.NumTriples() {
		// Different seeds may rarely coincide in count; compare content.
		same := true
		for i, tr := range c.Test.Triples() {
			if tr != ta[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestStandardDatasets(t *testing.T) {
	for _, ds := range Standard(3) {
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
		if ds.Train.NumTriples() < 500 {
			t.Errorf("%s: too few train triples: %d", ds.Name, ds.Train.NumTriples())
		}
		if ds.Train.NumRelations() < 10 {
			t.Errorf("%s: too few relations: %d", ds.Name, ds.Train.NumRelations())
		}
	}
}

func TestFB15kHasInverses(t *testing.T) {
	ds := SynthFB15k(2)
	found := false
	for _, n := range ds.Train.Relations.Names() {
		if len(n) > 4 && n[len(n)-4:] == "_inv" {
			found = true
			break
		}
	}
	if !found {
		t.Error("FB15k stand-in has no inverse relations")
	}
	ds237 := SynthFB237(2)
	for _, n := range ds237.Train.Relations.Names() {
		if len(n) > 4 && n[len(n)-4:] == "_inv" {
			t.Error("FB237 stand-in should not contain inverse relations")
		}
	}
}

func TestSynthOneToManyRelationsExist(t *testing.T) {
	ds := SynthFB15k(4)
	g := ds.Test
	maxFan := 0
	for r := 0; r < g.NumRelations(); r++ {
		for _, h := range g.HeadsOf(RelationID(r)) {
			if d := g.OutDegree(h, RelationID(r)); d > maxFan {
				maxFan = d
			}
		}
	}
	if maxFan < 5 {
		t.Errorf("no one-to-many structure: max fan-out %d", maxFan)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	ds := SynthFB237(9)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, ds.Train); err != nil {
		t.Fatal(err)
	}
	g, err := ReadTSV(&buf, NewDict(), NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTriples() != ds.Train.NumTriples() {
		t.Fatalf("triple count %d != %d", g.NumTriples(), ds.Train.NumTriples())
	}
	// spot-check a few triples by name
	for i, tr := range ds.Train.Triples() {
		if i >= 50 {
			break
		}
		h, _ := g.Entities.ID(ds.Train.Entities.Name(int32(tr.H)))
		r, _ := g.Relations.ID(ds.Train.Relations.Name(int32(tr.R)))
		tl, _ := g.Entities.ID(ds.Train.Entities.Name(int32(tr.T)))
		if !g.HasTriple(EntityID(h), RelationID(r), EntityID(tl)) {
			t.Fatalf("triple %d missing after round trip", i)
		}
	}
}

func TestReadTSVRejectsMalformed(t *testing.T) {
	_, err := ReadTSV(bytes.NewBufferString("a\tb\n"), NewDict(), NewDict())
	if err == nil {
		t.Error("expected error for 2-field line")
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	src := "# comment\n\na\tr\tb\n"
	g, err := ReadTSV(bytes.NewBufferString(src), NewDict(), NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1", g.NumTriples())
	}
}

func TestSplitPanicsOnBadFractions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Split("x", tinyGraph(), 0.6, 0.6, rand.New(rand.NewSource(1)))
}

func TestSynthConfigSweepInvariants(t *testing.T) {
	// Sweep a few generator configurations: the split invariants and
	// non-degeneracy must hold across the parameter space, not just the
	// three presets.
	base := SynthConfig{
		Name: "sweep", NumTypes: 6, HeadFrac: 0.5, MeanFanout: 2,
		OneToManyFrac: 0.2, ManyFanout: 5, ValidFrac: 0.1, TestFrac: 0.1,
	}
	cases := []struct{ n, m int }{{200, 10}, {500, 25}, {1500, 60}}
	for i, c := range cases {
		cfg := base
		cfg.NumEntities, cfg.NumRelations, cfg.Seed = c.n, c.m, int64(i+1)
		ds := Synth(cfg)
		if err := ds.Validate(); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
		if ds.Train.NumTriples() == 0 {
			t.Errorf("config %d: empty training graph", i)
		}
		if ds.Test.NumTriples() <= ds.Train.NumTriples() {
			t.Errorf("config %d: no held-out edges", i)
		}
	}
}

func TestSynthPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Synth(SynthConfig{NumEntities: 0, NumRelations: 5, NumTypes: 2})
}
