package kg

import (
	"fmt"
	"math/rand"
)

// Dataset bundles the three graphs of the standard logical-query
// evaluation protocol. Train ⊆ Valid ⊆ Test: the validation graph adds
// the validation edges on top of the training edges, and the test graph
// adds the test edges on top of that, exactly the G_training ⊆
// G_validation ⊆ G_test configuration of HaLk Sec. IV-A.
type Dataset struct {
	Name  string
	Train *Graph
	Valid *Graph
	Test  *Graph
}

// Validate checks the subset invariants and shared dictionaries.
func (d *Dataset) Validate() error {
	if d.Train.Entities != d.Valid.Entities || d.Valid.Entities != d.Test.Entities {
		return fmt.Errorf("kg: dataset %s: graphs do not share the entity dictionary", d.Name)
	}
	if d.Train.Relations != d.Valid.Relations || d.Valid.Relations != d.Test.Relations {
		return fmt.Errorf("kg: dataset %s: graphs do not share the relation dictionary", d.Name)
	}
	if !d.Valid.ContainsAll(d.Train) {
		return fmt.Errorf("kg: dataset %s: train ⊄ valid", d.Name)
	}
	if !d.Test.ContainsAll(d.Valid) {
		return fmt.Errorf("kg: dataset %s: valid ⊄ test", d.Name)
	}
	return nil
}

// Split partitions a full graph's triples into a Dataset using the given
// fractions of edges held out for validation and test. The held-out
// edges are chosen uniformly at random with rng, but an edge is only
// eligible for holdout if removing it leaves its head with at least one
// outgoing fact, which keeps the training graph connected enough to
// sample queries from.
func Split(name string, full *Graph, validFrac, testFrac float64, rng *rand.Rand) *Dataset {
	if validFrac < 0 || testFrac < 0 || validFrac+testFrac >= 1 {
		panic("kg: Split: fractions must be non-negative and sum to < 1")
	}
	triples := append([]Triple(nil), full.Triples()...)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

	nValid := int(validFrac * float64(len(triples)))
	nTest := int(testFrac * float64(len(triples)))

	train := NewGraph(full.Entities, full.Relations)
	var validOnly, testOnly []Triple
	// Pass 1: tentatively assign; protect heads from losing all out-edges.
	outCount := make(map[[2]int32]int) // (head, rel) -> remaining train count
	for _, t := range triples {
		outCount[[2]int32{int32(t.H), int32(t.R)}]++
	}
	for _, t := range triples {
		key := [2]int32{int32(t.H), int32(t.R)}
		holdable := outCount[key] > 1
		switch {
		case len(testOnly) < nTest && holdable:
			testOnly = append(testOnly, t)
			outCount[key]--
		case len(validOnly) < nValid && holdable:
			validOnly = append(validOnly, t)
			outCount[key]--
		default:
			train.AddTriple(t)
		}
	}
	valid := train.Clone()
	for _, t := range validOnly {
		valid.AddTriple(t)
	}
	test := valid.Clone()
	for _, t := range testOnly {
		test.AddTriple(t)
	}
	return &Dataset{Name: name, Train: train, Valid: valid, Test: test}
}
