package kg

import (
	"fmt"
	"math/rand"
)

// SynthConfig parameterises the synthetic knowledge-graph generator. The
// generator builds a typed world: each entity gets a type, each relation
// a (source type, destination type) signature, and facts are sampled with
// a skewed tail distribution so that hub entities and one-to-many
// relations emerge — the structural features that drive answer-set
// cardinality in logical-query benchmarks.
//
// The paper evaluates on FB15k, FB15k-237 and NELL995, which cannot be
// redistributed here; the three preset configurations below reproduce
// their structural signatures at laptop scale (see DESIGN.md §1).
type SynthConfig struct {
	Name         string
	NumEntities  int
	NumRelations int // base relations, before inverses
	NumTypes     int
	// HeadFrac is the probability that an entity of a relation's source
	// type participates as a head in that relation.
	HeadFrac float64
	// MeanFanout is the average number of tails per participating head
	// for ordinary relations.
	MeanFanout float64
	// OneToManyFrac is the fraction of relations with a large fan-out
	// (mean ManyFanout), which create the big candidate answer sets that
	// stress the negation operator.
	OneToManyFrac float64
	ManyFanout    float64
	// InverseFrac is the fraction of base relations that also get an
	// explicit inverse relation (the FB15k signature; FB15k-237 removed
	// such near-duplicate inverses).
	InverseFrac float64
	// Holdout fractions for the valid/test splits.
	ValidFrac float64
	TestFrac  float64
	Seed      int64
}

// Synth generates a dataset from cfg. The same config always yields the
// same dataset.
func Synth(cfg SynthConfig) *Dataset {
	if cfg.NumEntities <= 0 || cfg.NumRelations <= 0 || cfg.NumTypes <= 0 {
		panic("kg: Synth: entity, relation and type counts must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	entities := NewDict()
	for i := 0; i < cfg.NumEntities; i++ {
		entities.Add(fmt.Sprintf("e%04d", i))
	}
	relations := NewDict()

	typeOf := make([]int, cfg.NumEntities)
	byType := make([][]EntityID, cfg.NumTypes)
	for i := range typeOf {
		typeOf[i] = rng.Intn(cfg.NumTypes)
		byType[typeOf[i]] = append(byType[typeOf[i]], EntityID(i))
	}

	// Skewed popularity weights within each type: tail selection is
	// approximately Zipfian, producing hub entities.
	weights := make([][]float64, cfg.NumTypes)
	cum := make([][]float64, cfg.NumTypes)
	for ty := range byType {
		weights[ty] = make([]float64, len(byType[ty]))
		cum[ty] = make([]float64, len(byType[ty]))
		total := 0.0
		for i := range weights[ty] {
			weights[ty][i] = 1 / float64(i+1)
			total += weights[ty][i]
			cum[ty][i] = total
		}
	}
	pickTail := func(ty int) EntityID {
		c := cum[ty]
		if len(c) == 0 {
			return EntityID(rng.Intn(cfg.NumEntities))
		}
		x := rng.Float64() * c[len(c)-1]
		lo, hi := 0, len(c)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if c[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return byType[ty][lo]
	}

	full := NewGraph(entities, relations)

	type relSig struct {
		id       RelationID
		src, dst int
		mean     float64
		inverse  RelationID // -1 if none
	}
	sigs := make([]relSig, 0, cfg.NumRelations)
	for r := 0; r < cfg.NumRelations; r++ {
		sig := relSig{
			id:      RelationID(relations.Add(fmt.Sprintf("r%03d", r))),
			src:     rng.Intn(cfg.NumTypes),
			dst:     rng.Intn(cfg.NumTypes),
			mean:    cfg.MeanFanout,
			inverse: -1,
		}
		if rng.Float64() < cfg.OneToManyFrac {
			sig.mean = cfg.ManyFanout
		}
		if rng.Float64() < cfg.InverseFrac {
			sig.inverse = RelationID(relations.Add(fmt.Sprintf("r%03d_inv", r)))
		}
		sigs = append(sigs, sig)
	}

	for _, sig := range sigs {
		for _, h := range byType[sig.src] {
			if rng.Float64() >= cfg.HeadFrac {
				continue
			}
			// Geometric-ish fan-out with the configured mean; at least one.
			k := 1
			for rng.Float64() < 1-1/sig.mean {
				k++
				if k >= 4*int(sig.mean)+4 {
					break
				}
			}
			for j := 0; j < k; j++ {
				t := pickTail(sig.dst)
				if t == h {
					continue
				}
				full.AddTriple(Triple{H: h, R: sig.id, T: t})
				if sig.inverse >= 0 {
					full.AddTriple(Triple{H: t, R: sig.inverse, T: h})
				}
			}
		}
	}

	return Split(cfg.Name, full, cfg.ValidFrac, cfg.TestFrac, rng)
}

// SynthFB15k generates the FB15k stand-in: dense, many inverse-relation
// pairs, strong hubs.
func SynthFB15k(seed int64) *Dataset {
	return Synth(SynthConfig{
		Name:          "FB15k",
		NumEntities:   900,
		NumRelations:  36,
		NumTypes:      8,
		HeadFrac:      0.65,
		MeanFanout:    2.5,
		OneToManyFrac: 0.30,
		ManyFanout:    8,
		InverseFrac:   0.8,
		ValidFrac:     0.08,
		TestFrac:      0.08,
		Seed:          seed,
	})
}

// SynthFB237 generates the FB15k-237 stand-in: inverse relations removed,
// sparser, harder link prediction.
func SynthFB237(seed int64) *Dataset {
	return Synth(SynthConfig{
		Name:          "FB237",
		NumEntities:   800,
		NumRelations:  30,
		NumTypes:      8,
		HeadFrac:      0.5,
		MeanFanout:    2,
		OneToManyFrac: 0.25,
		ManyFanout:    6,
		InverseFrac:   0,
		ValidFrac:     0.1,
		TestFrac:      0.1,
		Seed:          seed,
	})
}

// SynthNELL generates the NELL995 stand-in: sparse, many types
// (hierarchical flavour), low average degree.
func SynthNELL(seed int64) *Dataset {
	return Synth(SynthConfig{
		Name:          "NELL",
		NumEntities:   1000,
		NumRelations:  40,
		NumTypes:      12,
		HeadFrac:      0.45,
		MeanFanout:    1.8,
		OneToManyFrac: 0.2,
		ManyFanout:    6,
		InverseFrac:   0.1,
		ValidFrac:     0.1,
		TestFrac:      0.1,
		Seed:          seed,
	})
}

// Standard returns the three benchmark stand-ins with the given seed.
func Standard(seed int64) []*Dataset {
	return []*Dataset{SynthFB15k(seed), SynthFB237(seed), SynthNELL(seed)}
}
