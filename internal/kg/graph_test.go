package kg

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func tinyGraph() *Graph {
	ents, rels := NewDict(), NewDict()
	for _, n := range []string{"a", "b", "c", "d"} {
		ents.Add(n)
	}
	rels.Add("knows")
	rels.Add("likes")
	g := NewGraph(ents, rels)
	g.AddTriple(Triple{0, 0, 1}) // a knows b
	g.AddTriple(Triple{0, 0, 2}) // a knows c
	g.AddTriple(Triple{1, 1, 2}) // b likes c
	g.AddTriple(Triple{3, 0, 2}) // d knows c
	return g
}

func TestGraphBasics(t *testing.T) {
	g := tinyGraph()
	if g.NumEntities() != 4 || g.NumRelations() != 2 || g.NumTriples() != 4 {
		t.Fatalf("sizes = (%d,%d,%d)", g.NumEntities(), g.NumRelations(), g.NumTriples())
	}
	if !g.HasTriple(0, 0, 1) || g.HasTriple(1, 0, 0) {
		t.Error("HasTriple wrong")
	}
	succ := g.Successors(0, 0)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Errorf("Successors(a, knows) = %v", succ)
	}
	pred := g.Predecessors(2, 0)
	if len(pred) != 2 || pred[0] != 0 || pred[1] != 3 {
		t.Errorf("Predecessors(c, knows) = %v", pred)
	}
	if g.OutDegree(0, 0) != 2 {
		t.Errorf("OutDegree = %d", g.OutDegree(0, 0))
	}
	if g.Degree(2) != 3 {
		t.Errorf("Degree(c) = %d, want 3", g.Degree(2))
	}
	heads := g.HeadsOf(0)
	if len(heads) != 2 || heads[0] != 0 || heads[1] != 3 {
		t.Errorf("HeadsOf(knows) = %v", heads)
	}
}

func TestGraphDuplicateIgnored(t *testing.T) {
	g := tinyGraph()
	if g.AddTriple(Triple{0, 0, 1}) {
		t.Error("duplicate AddTriple returned true")
	}
	if g.NumTriples() != 4 {
		t.Errorf("NumTriples = %d after duplicate", g.NumTriples())
	}
}

func TestGraphCloneIndependent(t *testing.T) {
	g := tinyGraph()
	c := g.Clone()
	c.AddTriple(Triple{2, 1, 3})
	if g.HasTriple(2, 1, 3) {
		t.Error("clone mutation leaked into original")
	}
	if !c.ContainsAll(g) {
		t.Error("clone lost triples")
	}
	if g.ContainsAll(c) {
		t.Error("ContainsAll should be false when other has extra triples")
	}
}

func TestGraphAddTripleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g := tinyGraph()
	g.AddTriple(Triple{99, 0, 0})
}

func TestInsertSortedKeepsOrder(t *testing.T) {
	f := func(raw []int16) bool {
		var s []EntityID
		for _, v := range raw {
			s = insertSorted(s, EntityID(v))
		}
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) && len(s) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Add("alpha")
	b := d.Add("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d", a, b)
	}
	if again := d.Add("alpha"); again != a {
		t.Error("re-Add changed id")
	}
	if id, ok := d.ID("beta"); !ok || id != 1 {
		t.Error("ID lookup failed")
	}
	if _, ok := d.ID("gamma"); ok {
		t.Error("unknown name should not resolve")
	}
	if d.Name(0) != "alpha" || d.Len() != 2 {
		t.Error("Name/Len wrong")
	}
	if len(d.Names()) != 2 {
		t.Error("Names wrong")
	}
}

func TestDictNamePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDict().Name(3)
}

func TestGroupingInvariants(t *testing.T) {
	g := tinyGraph()
	rng := rand.New(rand.NewSource(3))
	gr := NewGrouping(g, 2, rng)
	for e := EntityID(0); e < 4; e++ {
		oh := gr.OneHot(e)
		ones := 0
		for i, v := range oh {
			if v == 1 {
				ones++
				if i != gr.GroupOf(e) {
					t.Error("one-hot index mismatch")
				}
			} else if v != 0 {
				t.Error("one-hot has non-binary value")
			}
		}
		if ones != 1 {
			t.Error("one-hot is not one-hot")
		}
	}
	// Every triple's group pair must be connected.
	for _, tr := range g.Triples() {
		if !gr.Connected(tr.R, gr.GroupOf(tr.H), gr.GroupOf(tr.T)) {
			t.Errorf("group adjacency missing for %+v", tr)
		}
	}
}

func TestGroupingProjectHot(t *testing.T) {
	g := tinyGraph()
	gr := NewGrouping(g, 2, rand.New(rand.NewSource(3)))
	hot := gr.OneHot(0) // group of "a"
	out := gr.ProjectHot(hot, 0)
	// groups of b and c must be reachable
	if out[gr.GroupOf(1)] != 1 || out[gr.GroupOf(2)] != 1 {
		t.Errorf("ProjectHot = %v, groups of b,c = %d,%d", out, gr.GroupOf(1), gr.GroupOf(2))
	}
}

func TestIntersectHot(t *testing.T) {
	got := IntersectHot([]float64{1, 0, 1}, []float64{1, 1, 0})
	want := []float64{1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IntersectHot = %v, want %v", got, want)
		}
	}
	if IntersectHot() != nil {
		t.Error("IntersectHot() of nothing should be nil")
	}
}

func TestRemoveTriple(t *testing.T) {
	g := tinyGraph()
	if g.RemoveTriple(Triple{1, 0, 0}) {
		t.Error("RemoveTriple of absent triple reported true")
	}
	if !g.RemoveTriple(Triple{0, 0, 1}) {
		t.Fatal("RemoveTriple of present triple reported false")
	}
	if g.HasTriple(0, 0, 1) {
		t.Error("removed triple still in seen set")
	}
	if g.NumTriples() != 3 {
		t.Errorf("NumTriples = %d, want 3", g.NumTriples())
	}
	if succ := g.Successors(0, 0); len(succ) != 1 || succ[0] != 2 {
		t.Errorf("Successors(a, knows) after removal = %v, want [2]", succ)
	}
	if pred := g.Predecessors(1, 0); len(pred) != 0 {
		t.Errorf("Predecessors(b, knows) after removal = %v, want empty", pred)
	}
	// Removing the same triple again is a no-op.
	if g.RemoveTriple(Triple{0, 0, 1}) {
		t.Error("second RemoveTriple reported true")
	}
	// Re-adding after removal works and restores the indexes.
	if !g.AddTriple(Triple{0, 0, 1}) {
		t.Error("re-AddTriple after removal reported duplicate")
	}
	if succ := g.Successors(0, 0); len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Errorf("Successors after re-add = %v, want [1 2]", succ)
	}
}

func TestRemoveTripleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ents, rels := NewDict(), NewDict()
	for i := 0; i < 20; i++ {
		ents.Add(string(rune('a' + i)))
	}
	rels.Add("r0")
	rels.Add("r1")
	g := NewGraph(ents, rels)
	var live []Triple
	for i := 0; i < 200; i++ {
		tr := Triple{EntityID(rng.Intn(20)), RelationID(rng.Intn(2)), EntityID(rng.Intn(20))}
		if g.AddTriple(tr) {
			live = append(live, tr)
		}
	}
	// Remove half at random, then verify every index agrees with the
	// surviving set.
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	cut := len(live) / 2
	for _, tr := range live[:cut] {
		if !g.RemoveTriple(tr) {
			t.Fatalf("RemoveTriple(%+v) reported absent", tr)
		}
	}
	survivors := live[cut:]
	if g.NumTriples() != len(survivors) {
		t.Fatalf("NumTriples = %d, want %d", g.NumTriples(), len(survivors))
	}
	for _, tr := range survivors {
		if !g.HasTriple(tr.H, tr.R, tr.T) {
			t.Errorf("survivor %+v missing", tr)
		}
		found := false
		for _, s := range g.Successors(tr.H, tr.R) {
			if s == tr.T {
				found = true
			}
		}
		if !found {
			t.Errorf("survivor %+v missing from Successors", tr)
		}
	}
	for _, tr := range live[:cut] {
		if g.HasTriple(tr.H, tr.R, tr.T) {
			t.Errorf("removed %+v still present", tr)
		}
		for _, s := range g.Successors(tr.H, tr.R) {
			if s == tr.T {
				t.Errorf("removed %+v still in Successors", tr)
			}
		}
		for _, p := range g.Predecessors(tr.T, tr.R) {
			if p == tr.H {
				t.Errorf("removed %+v still in Predecessors", tr)
			}
		}
	}
}
