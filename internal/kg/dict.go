package kg

import "fmt"

// Dict is a bidirectional name <-> dense integer id mapping for entities
// or relations.
type Dict struct {
	names []string
	ids   map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]int32)} }

// Len returns the number of registered names.
func (d *Dict) Len() int { return len(d.names) }

// Add registers name if new and returns its id either way.
func (d *Dict) Add(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// ID returns the id of name, and whether it is registered.
func (d *Dict) ID(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name of id. It panics on out-of-range ids.
func (d *Dict) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("kg: Dict.Name: id %d out of range (len %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Names returns all names in id order. The slice is owned by the Dict.
func (d *Dict) Names() []string { return d.names }
