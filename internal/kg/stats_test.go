package kg

import (
	"strings"
	"testing"
)

func TestComputeStatsTinyGraph(t *testing.T) {
	g := tinyGraph() // a->b, a->c (knows), b->c (likes), d->c (knows)
	s := ComputeStats(g)
	if s.Entities != 4 || s.Relations != 2 || s.Triples != 4 {
		t.Fatalf("counts = %+v", s)
	}
	// total degree = 2 per triple = 8 over 4 entities
	if s.AvgDegree != 2 {
		t.Errorf("AvgDegree = %g, want 2", s.AvgDegree)
	}
	if s.MaxFanout != 2 { // a --knows--> {b, c}
		t.Errorf("MaxFanout = %d, want 2", s.MaxFanout)
	}
	if s.DegreeP50 < 1 || s.DegreeP99 < s.DegreeP50 {
		t.Errorf("degree percentiles wrong: %+v", s)
	}
	out := s.String()
	for _, want := range []string{"entities:", "max fan-out:", "one-to-many"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestComputeStatsSignatures(t *testing.T) {
	// The FB15k stand-in must be denser than the FB237 stand-in (the
	// structural signature the generators exist to reproduce).
	fb15k := ComputeStats(SynthFB15k(5).Test)
	fb237 := ComputeStats(SynthFB237(5).Test)
	if fb15k.AvgDegree <= fb237.AvgDegree {
		t.Errorf("FB15k avg degree %.2f should exceed FB237's %.2f",
			fb15k.AvgDegree, fb237.AvgDegree)
	}
	if fb15k.OneToManyRelations == 0 {
		t.Error("FB15k stand-in should contain one-to-many relations")
	}
	// Hub skew: p99 well above p50.
	if fb15k.DegreeP99 <= fb15k.DegreeP50 {
		t.Error("no hub skew in degree distribution")
	}
}
