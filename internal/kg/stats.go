package kg

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises a graph's structural signature — the quantities the
// synthetic generators are calibrated against (DESIGN.md §1).
type Stats struct {
	Entities  int
	Relations int
	Triples   int
	// AvgDegree is mean total degree (in + out) per entity.
	AvgDegree float64
	// MaxFanout is the largest per-(head, relation) out-degree; large
	// values mark the one-to-many relations that stress negation.
	MaxFanout int
	// OneToManyRelations counts relations whose mean fan-out exceeds 2.
	OneToManyRelations int
	// DegreeP50/P90/P99 are percentiles of the total-degree distribution
	// (hub skew).
	DegreeP50, DegreeP90, DegreeP99 int
}

// ComputeStats scans the graph once.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Entities:  g.NumEntities(),
		Relations: g.NumRelations(),
		Triples:   g.NumTriples(),
	}
	degrees := make([]int, g.NumEntities())
	totalDeg := 0
	for e := range degrees {
		d := g.Degree(EntityID(e))
		degrees[e] = d
		totalDeg += d
	}
	if len(degrees) > 0 {
		s.AvgDegree = float64(totalDeg) / float64(len(degrees))
		sort.Ints(degrees)
		s.DegreeP50 = degrees[len(degrees)*50/100]
		s.DegreeP90 = degrees[len(degrees)*90/100]
		s.DegreeP99 = degrees[len(degrees)*99/100]
	}
	for r := 0; r < g.NumRelations(); r++ {
		rel := RelationID(r)
		heads := g.HeadsOf(rel)
		if len(heads) == 0 {
			continue
		}
		sum := 0
		for _, h := range heads {
			f := g.OutDegree(h, rel)
			sum += f
			if f > s.MaxFanout {
				s.MaxFanout = f
			}
		}
		if float64(sum)/float64(len(heads)) > 2 {
			s.OneToManyRelations++
		}
	}
	return s
}

// String renders the statistics as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entities:             %d\n", s.Entities)
	fmt.Fprintf(&b, "relations:            %d\n", s.Relations)
	fmt.Fprintf(&b, "triples:              %d\n", s.Triples)
	fmt.Fprintf(&b, "avg degree:           %.2f\n", s.AvgDegree)
	fmt.Fprintf(&b, "degree p50/p90/p99:   %d / %d / %d\n", s.DegreeP50, s.DegreeP90, s.DegreeP99)
	fmt.Fprintf(&b, "max fan-out:          %d\n", s.MaxFanout)
	fmt.Fprintf(&b, "one-to-many relations: %d", s.OneToManyRelations)
	return b.String()
}
