// Package kg provides the knowledge-graph substrate: entity/relation
// dictionaries, an indexed triple store, node groups with the
// relation-based 3-D group adjacency of HaLk Sec. II-A, train/valid/test
// splits, deterministic synthetic dataset generators standing in for
// FB15k / FB15k-237 / NELL995, and TSV import/export.
package kg

import (
	"fmt"
	"sort"
)

// EntityID identifies an entity (node) of a knowledge graph.
type EntityID int32

// RelationID identifies a relation (predicate).
type RelationID int32

// Triple is one fact (h, r, t): head entity h relates to tail entity t
// via relation r.
type Triple struct {
	H EntityID
	R RelationID
	T EntityID
}

// Graph is an indexed triple store. Successor and predecessor lists are
// maintained per relation so that multi-hop traversal (the ground-truth
// oracle, the subgraph matcher) is cheap. A Graph is not safe for
// concurrent mutation, but read methods may be used concurrently.
type Graph struct {
	Entities  *Dict
	Relations *Dict

	triples []Triple
	// out[r] maps head -> sorted tails; in[r] maps tail -> sorted heads.
	out []map[EntityID][]EntityID
	in  []map[EntityID][]EntityID
	// set membership for O(1) HasTriple
	seen map[Triple]struct{}
}

// NewGraph returns an empty graph sharing the given dictionaries. Both
// dictionaries may be pre-populated; relations registered later are also
// accepted by AddTriple.
func NewGraph(entities, relations *Dict) *Graph {
	return &Graph{
		Entities:  entities,
		Relations: relations,
		seen:      make(map[Triple]struct{}),
	}
}

// Clone returns a deep copy of the graph sharing the dictionaries.
// Used to grow valid/test graphs as supersets of the train graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Entities, g.Relations)
	for _, t := range g.triples {
		c.AddTriple(t)
	}
	return c
}

// NumEntities returns the number of registered entities.
func (g *Graph) NumEntities() int { return g.Entities.Len() }

// NumRelations returns the number of registered relations.
func (g *Graph) NumRelations() int { return g.Relations.Len() }

// NumTriples returns the number of stored facts.
func (g *Graph) NumTriples() int { return len(g.triples) }

// Triples returns the stored facts in insertion order. The slice is owned
// by the graph and must not be modified.
func (g *Graph) Triples() []Triple { return g.triples }

func (g *Graph) growRelation(r RelationID) {
	for len(g.out) <= int(r) {
		g.out = append(g.out, make(map[EntityID][]EntityID))
		g.in = append(g.in, make(map[EntityID][]EntityID))
	}
}

// AddTriple inserts a fact; duplicates are ignored. It reports whether
// the triple was new.
func (g *Graph) AddTriple(t Triple) bool {
	if int(t.H) >= g.Entities.Len() || int(t.T) >= g.Entities.Len() {
		panic(fmt.Sprintf("kg: AddTriple: entity out of range: %+v (have %d)", t, g.Entities.Len()))
	}
	if int(t.R) >= g.Relations.Len() {
		panic(fmt.Sprintf("kg: AddTriple: relation out of range: %+v (have %d)", t, g.Relations.Len()))
	}
	if _, dup := g.seen[t]; dup {
		return false
	}
	g.seen[t] = struct{}{}
	g.triples = append(g.triples, t)
	g.growRelation(t.R)
	g.out[t.R][t.H] = insertSorted(g.out[t.R][t.H], t.T)
	g.in[t.R][t.T] = insertSorted(g.in[t.R][t.T], t.H)
	return true
}

func insertSorted(s []EntityID, e EntityID) []EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// RemoveTriple deletes a fact; it reports whether the triple was
// present. Removal keeps every index consistent (seen set, insertion
// slice, per-relation successor/predecessor lists), so a removed fact
// is invisible to all read paths. Like AddTriple, it is not safe for
// use concurrent with readers — the streaming-ingest subsystem applies
// removals from a single goroutine.
func (g *Graph) RemoveTriple(t Triple) bool {
	if _, ok := g.seen[t]; !ok {
		return false
	}
	delete(g.seen, t)
	for i, tr := range g.triples {
		if tr == t {
			g.triples = append(g.triples[:i], g.triples[i+1:]...)
			break
		}
	}
	g.out[t.R][t.H] = removeSorted(g.out[t.R][t.H], t.T)
	g.in[t.R][t.T] = removeSorted(g.in[t.R][t.T], t.H)
	return true
}

func removeSorted(s []EntityID, e EntityID) []EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	if i >= len(s) || s[i] != e {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// HasTriple reports whether (h, r, t) is a stored fact.
func (g *Graph) HasTriple(h EntityID, r RelationID, t EntityID) bool {
	_, ok := g.seen[Triple{h, r, t}]
	return ok
}

// Successors returns the tails t with (h, r, t) in the graph, sorted.
// The slice is owned by the graph.
func (g *Graph) Successors(h EntityID, r RelationID) []EntityID {
	if int(r) >= len(g.out) {
		return nil
	}
	return g.out[r][h]
}

// Predecessors returns the heads h with (h, r, t) in the graph, sorted.
// The slice is owned by the graph.
func (g *Graph) Predecessors(t EntityID, r RelationID) []EntityID {
	if int(r) >= len(g.in) {
		return nil
	}
	return g.in[r][t]
}

// OutDegree returns the number of facts with head h under relation r.
func (g *Graph) OutDegree(h EntityID, r RelationID) int { return len(g.Successors(h, r)) }

// Degree returns the total degree (in+out over all relations) of e.
func (g *Graph) Degree(e EntityID) int {
	d := 0
	for r := range g.out {
		d += len(g.out[r][e]) + len(g.in[r][e])
	}
	return d
}

// HeadsOf returns all distinct heads that have at least one fact under
// relation r, sorted.
func (g *Graph) HeadsOf(r RelationID) []EntityID {
	if int(r) >= len(g.out) {
		return nil
	}
	hs := make([]EntityID, 0, len(g.out[r]))
	for h := range g.out[r] {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// ContainsAll reports whether every triple of other is present in g.
// Used to verify the paper's G_train ⊆ G_valid ⊆ G_test invariant.
func (g *Graph) ContainsAll(other *Graph) bool {
	for _, t := range other.triples {
		if !g.HasTriple(t.H, t.R, t.T) {
			return false
		}
	}
	return true
}
