package autodiff

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, ICLR 2015) over a
// parameter registry.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
}

// NewAdam returns an Adam optimizer with the standard moment decays
// (0.9, 0.999) and epsilon 1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update using the gradients accumulated in the tensors,
// scaled by 1/scale (use the mini-batch size), then clears the gradients.
func (a *Adam) Step(p *Params, scale float64) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	inv := 1 / scale
	for _, t := range p.All() {
		for i, g := range t.Grad {
			g *= inv
			t.M[i] = a.Beta1*t.M[i] + (1-a.Beta1)*g
			t.Vm[i] = a.Beta2*t.Vm[i] + (1-a.Beta2)*g*g
			mHat := t.M[i] / bc1
			vHat := t.Vm[i] / bc2
			t.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
			t.Grad[i] = 0
		}
	}
}

// StepCount reports how many updates have been applied.
func (a *Adam) StepCount() int { return a.step }

// SetStepCount restores the update counter when resuming from a
// checkpoint, so the bias corrections continue from where the
// interrupted run left off instead of re-warming from step 1.
func (a *Adam) SetStepCount(n int) { a.step = n }
