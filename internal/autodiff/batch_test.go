package autodiff

import "testing"

func TestRepeatValuesAndGradient(t *testing.T) {
	tp := NewTape()
	var grad []float64
	x := tp.Leaf([]float64{1, 2}, func(g []float64) { grad = append([]float64(nil), g...) })
	r := tp.Repeat(x, 3)
	want := []float64{1, 2, 1, 2, 1, 2}
	for i, v := range r.Value() {
		if v != want[i] {
			t.Fatalf("Repeat value[%d] = %g, want %g", i, v, want[i])
		}
	}
	// weight each copy differently: grads must sum across copies
	w := tp.Const([]float64{1, 1, 10, 10, 100, 100})
	tp.Backward(tp.Sum(tp.Mul(r, w)))
	if grad[0] != 111 || grad[1] != 111 {
		t.Errorf("Repeat grad = %v, want [111 111]", grad)
	}
}

func TestSumSegmentsValuesAndGradient(t *testing.T) {
	tp := NewTape()
	var grad []float64
	x := tp.Leaf([]float64{1, 2, 3, 4, 5, 6}, func(g []float64) { grad = append([]float64(nil), g...) })
	s := tp.SumSegments(x, 2)
	want := []float64{3, 7, 11}
	for i, v := range s.Value() {
		if v != want[i] {
			t.Fatalf("SumSegments[%d] = %g, want %g", i, v, want[i])
		}
	}
	w := tp.Const([]float64{1, 10, 100})
	tp.Backward(tp.Sum(tp.Mul(s, w)))
	wantG := []float64{1, 1, 10, 10, 100, 100}
	for i := range wantG {
		if grad[i] != wantG[i] {
			t.Errorf("grad[%d] = %g, want %g", i, grad[i], wantG[i])
		}
	}
}

func TestSumSegmentsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tp := NewTape()
	tp.SumSegments(tp.Const([]float64{1, 2, 3}), 2)
}

func TestSliceValuesAndGradient(t *testing.T) {
	tp := NewTape()
	var grad []float64
	x := tp.Leaf([]float64{1, 2, 3, 4}, func(g []float64) { grad = append([]float64(nil), g...) })
	s := tp.Slice(x, 1, 2)
	if s.Len() != 2 || s.Value()[0] != 2 || s.Value()[1] != 3 {
		t.Fatalf("Slice = %v", s.Value())
	}
	tp.Backward(tp.Sum(s))
	want := []float64{0, 1, 1, 0}
	for i := range want {
		if grad[i] != want[i] {
			t.Errorf("grad[%d] = %g, want %g", i, grad[i], want[i])
		}
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tp := NewTape()
	tp.Slice(tp.Const([]float64{1}), 0, 2)
}

func TestMean(t *testing.T) {
	tp := NewTape()
	m := tp.Mean(tp.Const([]float64{2, 4, 6}))
	if m.Len() != 1 || m.Value()[0] != 4 {
		t.Errorf("Mean = %v, want [4]", m.Value())
	}
}
