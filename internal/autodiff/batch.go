package autodiff

// Repeat tiles a k times: out = [a, a, ..., a]. Used to score a batch of
// entities against one query embedding in a single tape op.
func (t *Tape) Repeat(a V, k int) V {
	n := a.Len()
	v := t.alloc(n * k)
	av := a.Value()
	for i := 0; i < k; i++ {
		copy(v[i*n:(i+1)*n], av)
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for i := 0; i < k; i++ {
			seg := g[i*n : (i+1)*n]
			for j := range seg {
				ga[j] += seg[j]
			}
		}
	})
	return res
}

// SumSegments reduces a vector of length n*segLen to n sums of
// consecutive segments. The inverse reduction of Repeat: with it, a
// per-dimension distance over a tiled batch collapses to one scalar per
// batch element.
func (t *Tape) SumSegments(a V, segLen int) V {
	if segLen <= 0 || a.Len()%segLen != 0 {
		panic("autodiff: SumSegments: length not divisible by segment length")
	}
	n := a.Len() / segLen
	v := t.alloc(n)
	av := a.Value()
	for i := 0; i < n; i++ {
		s := 0.0
		for _, x := range av[i*segLen : (i+1)*segLen] {
			s += x
		}
		v[i] = s
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for i := 0; i < n; i++ {
			gi := g[i]
			seg := ga[i*segLen : (i+1)*segLen]
			for j := range seg {
				seg[j] += gi
			}
		}
	})
	return res
}

// Slice returns the sub-vector a[start : start+n].
func (t *Tape) Slice(a V, start, n int) V {
	if start < 0 || n < 0 || start+n > a.Len() {
		panic("autodiff: Slice out of range")
	}
	v := t.alloc(n)
	copy(v, a.Value()[start:start+n])
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for j := range g {
			ga[start+j] += g[j]
		}
	})
	return res
}

// Mean reduces the vector to a one-element vector holding the mean of
// its components.
func (t *Tape) Mean(a V) V { return t.Scale(t.Sum(a), 1/float64(a.Len())) }

// Detach returns a's value as a constant: gradients do not flow through.
// Used to let an auxiliary head read a representation without its
// objective leaking back into the representation's geometry.
func (t *Tape) Detach(a V) V { return t.Const(a.Value()) }
