package autodiff

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestParamsRegistryAndRows(t *testing.T) {
	p := NewParams()
	e := p.New("emb", 4, 3)
	if p.Count() != 12 {
		t.Fatalf("Count = %d, want 12", p.Count())
	}
	e.Row(2)[1] = 7
	if e.Data[2*3+1] != 7 {
		t.Error("Row did not alias Data")
	}
	if p.Get("emb") != e {
		t.Error("Get returned wrong tensor")
	}
	if p.Get("nope") != nil {
		t.Error("Get of unknown name should be nil")
	}
}

func TestParamsDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate name")
		}
	}()
	p := NewParams()
	p.New("x", 1, 1)
	p.New("x", 1, 1)
}

func TestParamsAllDeterministicOrder(t *testing.T) {
	p := NewParams()
	p.New("b", 1, 1)
	p.New("a", 1, 1)
	p.New("c", 1, 1)
	got := p.All()
	want := []string{"a", "b", "c"}
	for i, tns := range got {
		if tns.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, tns.Name, want[i])
		}
	}
}

func TestUniformAndXavierInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParams()
	u := p.NewUniform("u", 10, 10, -0.5, 0.5, rng)
	for _, v := range u.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform init out of range: %g", v)
		}
	}
	x := p.NewXavier("x", 8, 8, rng)
	bound := math.Sqrt(6.0 / 16.0)
	for _, v := range x.Data {
		if v < -bound || v >= bound {
			t.Fatalf("xavier init out of range: %g", v)
		}
	}
}

func TestTensorLeafGradSink(t *testing.T) {
	p := NewParams()
	e := p.New("emb", 3, 2)
	copy(e.Row(1), []float64{2, 5})
	tp := NewTape()
	v := e.Leaf(tp, 1)
	tp.Backward(tp.Sum(tp.Mul(v, v)))
	if e.Grad[2] != 4 || e.Grad[3] != 10 {
		t.Errorf("row grad = %v, want [.. 4 10 ..]", e.Grad)
	}
	// second backward accumulates
	tp.Reset()
	v = e.Leaf(tp, 1)
	tp.Backward(tp.Sum(v))
	if e.Grad[2] != 5 || e.Grad[3] != 11 {
		t.Errorf("accumulated grad = %v, want [.. 5 11 ..]", e.Grad)
	}
	e.ZeroGrad()
	for _, g := range e.Grad {
		if g != 0 {
			t.Fatal("ZeroGrad left non-zero gradient")
		}
	}
}

func TestParamsSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewParams()
	p.NewUniform("a", 2, 3, -1, 1, rng)
	p.NewUniform("b", 1, 4, -1, 1, rng)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}

	q := NewParams()
	q.New("a", 2, 3)
	q.New("b", 1, 4)
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		src, dst := p.Get(name), q.Get(name)
		for i := range src.Data {
			if src.Data[i] != dst.Data[i] {
				t.Fatalf("tensor %q differs after round trip", name)
			}
		}
	}
}

func TestParamsLoadShapeMismatch(t *testing.T) {
	p := NewParams()
	p.New("a", 2, 2)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams()
	q.New("a", 2, 3)
	if err := q.Load(&buf); err == nil {
		t.Error("expected shape-mismatch error")
	}
}

func TestParamsLoadUnknownTensor(t *testing.T) {
	p := NewParams()
	p.New("a", 1, 1)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams()
	if err := q.Load(&buf); err == nil {
		t.Error("expected unknown-tensor error")
	}
}

func TestAdamMinimisesQuadratic(t *testing.T) {
	// minimise f(x) = sum (x - c)^2 from x = 0
	p := NewParams()
	x := p.New("x", 1, 3)
	c := []float64{1.5, -2.0, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 2000; step++ {
		tp := NewTape()
		xv := x.Leaf(tp, 0)
		diff := tp.Sub(xv, tp.Const(c))
		tp.Backward(tp.Sum(tp.Mul(diff, diff)))
		opt.Step(p, 1)
	}
	for i := range c {
		if math.Abs(x.Data[i]-c[i]) > 1e-2 {
			t.Errorf("x[%d] = %g, want %g", i, x.Data[i], c[i])
		}
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d, want 2000", opt.StepCount())
	}
}

func TestMLPLearnsXor(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewParams()
	m := NewMLP(p, "xor", []int{2, 8, 1}, rng)
	if m.InSize() != 2 || m.OutSize() != 1 {
		t.Fatalf("sizes = (%d,%d), want (2,1)", m.InSize(), m.OutSize())
	}
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	opt := NewAdam(0.02)
	for epoch := 0; epoch < 1500; epoch++ {
		for i, in := range inputs {
			tp := NewTape()
			out := tp.Sigmoid(m.Forward(tp, tp.Const(in)))
			diff := tp.Sub(out, tp.Scalar(targets[i]))
			tp.Backward(tp.Mul(diff, diff))
		}
		opt.Step(p, float64(len(inputs)))
	}
	for i, in := range inputs {
		tp := NewTape()
		out := tp.Sigmoid(m.Forward(tp, tp.Const(in))).Value()[0]
		if math.Abs(out-targets[i]) > 0.2 {
			t.Errorf("xor(%v) = %g, want %g", in, out, targets[i])
		}
	}
}

func TestMLPTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for single-size MLP")
		}
	}()
	NewMLP(NewParams(), "bad", []int{3}, rand.New(rand.NewSource(1)))
}
