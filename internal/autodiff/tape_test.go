package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numGrad computes a central-difference approximation to d(sum f(x))/dx.
func numGrad(f func(x []float64) float64, x []float64) []float64 {
	const h = 1e-6
	g := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		fp := f(x)
		x[i] = orig - h
		fm := f(x)
		x[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad verifies the tape gradient of sum(op(x)) against finite
// differences for a single-input op.
func checkGrad(t *testing.T, name string, op func(tp *Tape, x V) V, x []float64, tol float64) {
	t.Helper()
	tp := NewTape()
	var got []float64
	leaf := tp.Leaf(x, func(g []float64) { got = append([]float64(nil), g...) })
	out := tp.Sum(op(tp, leaf))
	tp.Backward(out)

	want := numGrad(func(xs []float64) float64 {
		tp2 := NewTape()
		v := op(tp2, tp2.Const(xs))
		s := 0.0
		for _, e := range v.Value() {
			s += e
		}
		return s
	}, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s: grad[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}

func TestUnaryGradients(t *testing.T) {
	x := []float64{-1.4, -0.3, 0.2, 0.9, 2.5}
	cases := []struct {
		name string
		op   func(tp *Tape, v V) V
	}{
		{"Sin", func(tp *Tape, v V) V { return tp.Sin(v) }},
		{"Cos", func(tp *Tape, v V) V { return tp.Cos(v) }},
		{"Tanh", func(tp *Tape, v V) V { return tp.Tanh(v) }},
		{"Sigmoid", func(tp *Tape, v V) V { return tp.Sigmoid(v) }},
		{"Relu", func(tp *Tape, v V) V { return tp.Relu(v) }},
		{"Abs", func(tp *Tape, v V) V { return tp.Abs(v) }},
		{"Exp", func(tp *Tape, v V) V { return tp.Exp(v) }},
		{"LogSigmoid", func(tp *Tape, v V) V { return tp.LogSigmoid(v) }},
		{"Scale", func(tp *Tape, v V) V { return tp.Scale(v, -2.5) }},
		{"AddScalar", func(tp *Tape, v V) V { return tp.AddScalar(v, 3.1) }},
		{"Neg", func(tp *Tape, v V) V { return tp.Neg(v) }},
		{"L1", func(tp *Tape, v V) V { return tp.L1(v) }},
	}
	for _, c := range cases {
		checkGrad(t, c.name, c.op, x, 1e-4)
	}
}

func TestReciprocalGradient(t *testing.T) {
	checkGrad(t, "Reciprocal", func(tp *Tape, v V) V { return tp.Reciprocal(v) },
		[]float64{0.5, 1.5, -2.0, 3.0}, 1e-4)
}

func TestBinaryGradients(t *testing.T) {
	a := []float64{0.3, -1.2, 2.2}
	b := []float64{1.1, 0.4, -0.7}
	cases := []struct {
		name string
		op   func(tp *Tape, x, y V) V
	}{
		{"Add", func(tp *Tape, x, y V) V { return tp.Add(x, y) }},
		{"Sub", func(tp *Tape, x, y V) V { return tp.Sub(x, y) }},
		{"Mul", func(tp *Tape, x, y V) V { return tp.Mul(x, y) }},
		{"Min", func(tp *Tape, x, y V) V { return tp.Min(x, y) }},
		{"Max", func(tp *Tape, x, y V) V { return tp.Max(x, y) }},
		{"Atan2", func(tp *Tape, x, y V) V { return tp.Atan2(x, y) }},
	}
	for _, c := range cases {
		// Gradient w.r.t. the first argument, second held constant.
		checkGrad(t, c.name+"/lhs", func(tp *Tape, v V) V {
			return c.op(tp, v, tp.Const(b))
		}, a, 1e-4)
		// And w.r.t. the second argument.
		checkGrad(t, c.name+"/rhs", func(tp *Tape, v V) V {
			return c.op(tp, tp.Const(a), v)
		}, b, 1e-4)
	}
}

func TestConcatGradient(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4, 5}
	tp := NewTape()
	var ga, gb []float64
	la := tp.Leaf(a, func(g []float64) { ga = append([]float64(nil), g...) })
	lb := tp.Leaf(b, func(g []float64) { gb = append([]float64(nil), g...) })
	cat := tp.Concat(la, lb)
	if cat.Len() != 5 {
		t.Fatalf("Concat len = %d, want 5", cat.Len())
	}
	// weight each output element differently so we can see routing
	w := tp.Const([]float64{1, 10, 100, 1000, 10000})
	tp.Backward(tp.Sum(tp.Mul(cat, w)))
	wantA := []float64{1, 10}
	wantB := []float64{100, 1000, 10000}
	for i := range wantA {
		if ga[i] != wantA[i] {
			t.Errorf("ga[%d] = %g, want %g", i, ga[i], wantA[i])
		}
	}
	for i := range wantB {
		if gb[i] != wantB[i] {
			t.Errorf("gb[%d] = %g, want %g", i, gb[i], wantB[i])
		}
	}
}

func TestMatVecGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, cols := 3, 4
	w := make([]float64, rows*cols)
	x := make([]float64, cols)
	b := make([]float64, rows)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	eval := func(w, x, b []float64) float64 {
		tp := NewTape()
		out := tp.MatVec(tp.Const(w), tp.Const(x), tp.Const(b), rows, cols)
		s := 0.0
		for _, v := range out.Value() {
			s += v
		}
		return s
	}

	tp := NewTape()
	var gw, gx, gb []float64
	lw := tp.Leaf(w, func(g []float64) { gw = append([]float64(nil), g...) })
	lx := tp.Leaf(x, func(g []float64) { gx = append([]float64(nil), g...) })
	lb := tp.Leaf(b, func(g []float64) { gb = append([]float64(nil), g...) })
	tp.Backward(tp.Sum(tp.MatVec(lw, lx, lb, rows, cols)))

	for i, want := range numGrad(func(v []float64) float64 { return eval(v, x, b) }, w) {
		if math.Abs(gw[i]-want) > 1e-4 {
			t.Errorf("gw[%d] = %g, want %g", i, gw[i], want)
		}
	}
	for i, want := range numGrad(func(v []float64) float64 { return eval(w, v, b) }, x) {
		if math.Abs(gx[i]-want) > 1e-4 {
			t.Errorf("gx[%d] = %g, want %g", i, gx[i], want)
		}
	}
	for i, want := range numGrad(func(v []float64) float64 { return eval(w, x, v) }, b) {
		if math.Abs(gb[i]-want) > 1e-4 {
			t.Errorf("gb[%d] = %g, want %g", i, gb[i], want)
		}
	}
}

func TestSoftmaxStackSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		// bound inputs to avoid Inf from quick's extreme floats
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 50)
		}
		tp := NewTape()
		xs := []V{
			tp.Const([]float64{clamp(a), clamp(b)}),
			tp.Const([]float64{clamp(b), clamp(c)}),
			tp.Const([]float64{clamp(c), clamp(a)}),
		}
		ws := tp.SoftmaxStack(xs)
		for j := 0; j < 2; j++ {
			sum := 0.0
			for _, w := range ws {
				v := w.Value()[j]
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStackGradient(t *testing.T) {
	a := []float64{0.2, -0.5, 1.0}
	b := []float64{-0.1, 0.7, 0.3}
	checkGrad(t, "SoftmaxStack", func(tp *Tape, v V) V {
		ws := tp.SoftmaxStack([]V{v, tp.Const(b)})
		// weight the two outputs so gradient routing is visible
		return tp.Add(ws[0], tp.Scale(ws[1], 3))
	}, a, 1e-4)
}

func TestStackReductions(t *testing.T) {
	tp := NewTape()
	xs := []V{
		tp.Const([]float64{1, 5}),
		tp.Const([]float64{3, 2}),
		tp.Const([]float64{2, 8}),
	}
	mean := tp.MeanStack(xs).Value()
	if mean[0] != 2 || mean[1] != 5 {
		t.Errorf("MeanStack = %v, want [2 5]", mean)
	}
	min := tp.MinStack(xs).Value()
	if min[0] != 1 || min[1] != 2 {
		t.Errorf("MinStack = %v, want [1 2]", min)
	}
}

func TestTapeResetReusesBuffers(t *testing.T) {
	tp := NewTape()
	for iter := 0; iter < 3; iter++ {
		x := tp.Leaf([]float64{1, 2, 3}, nil)
		out := tp.Sum(tp.Mul(x, x))
		if got := out.Value()[0]; got != 14 {
			t.Fatalf("iter %d: sum(x*x) = %g, want 14", iter, got)
		}
		tp.Backward(out)
		if g := x.Grad(); g[0] != 2 || g[1] != 4 || g[2] != 6 {
			t.Fatalf("iter %d: grad = %v, want [2 4 6]", iter, g)
		}
		tp.Reset()
	}
}

func TestGradientAccumulatesOnSharedNode(t *testing.T) {
	// y = x + x should give dy/dx = 2 per component.
	tp := NewTape()
	x := tp.Leaf([]float64{3}, nil)
	tp.Backward(tp.Sum(tp.Add(x, x)))
	if g := x.Grad()[0]; g != 2 {
		t.Errorf("grad = %g, want 2", g)
	}
}

func TestAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	tp := NewTape()
	tp.Add(tp.Const([]float64{1}), tp.Const([]float64{1, 2}))
}
