package autodiff

import "math"

// Special functions needed by probability-distribution embeddings
// (BetaE): log-gamma, digamma and softplus, with exact derivatives
// (d lnΓ = ψ, d ψ = ψ').

// Softplus applies ln(1+e^x) elementwise; derivative is the logistic
// function.
func (t *Tape) Softplus(a V) V {
	return t.unary(a, softplus, sigmoid)
}

// Lgamma applies lnΓ(x) elementwise (x > 0); derivative is digamma.
func (t *Tape) Lgamma(a V) V {
	return t.unary(a, func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}, Digamma)
}

// DigammaOp applies the digamma function ψ(x) elementwise (x > 0);
// derivative is trigamma.
func (t *Tape) DigammaOp(a V) V {
	return t.unary(a, Digamma, Trigamma)
}

// Digamma computes ψ(x) = d/dx lnΓ(x) for x > 0 via the ascending
// recurrence ψ(x) = ψ(x+1) − 1/x and the asymptotic expansion for large
// arguments. Accuracy ~1e-12 for x ≥ 1e-4.
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	r := 0.0
	for x < 6 {
		r -= 1 / x
		x++
	}
	// Asymptotic: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n})
	f := 1 / (x * x)
	return r + math.Log(x) - 0.5/x -
		f*(1.0/12-f*(1.0/120-f*(1.0/252-f*(1.0/240-f/132))))
}

// Trigamma computes ψ'(x) for x > 0 via recurrence and asymptotics.
func Trigamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	r := 0.0
	for x < 6 {
		r += 1 / (x * x)
		x++
	}
	f := 1 / (x * x)
	// ψ'(x) ≈ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}
	return r + 1/x + f/2 + f/x*(1.0/6-f*(1.0/30-f*(1.0/42-f/30)))
}

// LogBeta computes ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b) elementwise
// on the tape.
func (t *Tape) LogBeta(a, b V) V {
	return t.Sub(t.Add(t.Lgamma(a), t.Lgamma(b)), t.Lgamma(t.Add(a, b)))
}

// BetaKL computes the elementwise KL divergence KL(Beta(a1,b1) ‖
// Beta(a2,b2)):
//
//	ln B(a2,b2) − ln B(a1,b1) + (a1−a2)ψ(a1) + (b1−b2)ψ(b1)
//	  + (a2−a1+b2−b1)ψ(a1+b1)
func (t *Tape) BetaKL(a1, b1, a2, b2 V) V {
	lb := t.Sub(t.LogBeta(a2, b2), t.LogBeta(a1, b1))
	da := t.Mul(t.Sub(a1, a2), t.DigammaOp(a1))
	db := t.Mul(t.Sub(b1, b2), t.DigammaOp(b1))
	dsum := t.Mul(t.Add(t.Sub(a2, a1), t.Sub(b2, b1)), t.DigammaOp(t.Add(a1, b1)))
	return t.Add(t.Add(lb, da), t.Add(db, dsum))
}
