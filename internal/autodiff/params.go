package autodiff

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Tensor is a named, trainable parameter: a dense row-major matrix (or a
// vector when Rows == 1). Grad accumulates gradients between optimizer
// steps; M and Vm are the Adam moment buffers.
type Tensor struct {
	Name string
	Rows int
	Cols int
	Data []float64

	Grad []float64
	M    []float64
	Vm   []float64

	mu sync.Mutex
}

// Row returns the i-th row of the tensor's data.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// AddGrad accumulates g into the gradient of row i. It is safe for
// concurrent use by multiple goroutines.
func (t *Tensor) AddGrad(i int, g []float64) {
	t.mu.Lock()
	gr := t.Grad[i*t.Cols : (i+1)*t.Cols]
	for j := range g {
		gr[j] += g[j]
	}
	t.mu.Unlock()
}

// ZeroGrad clears accumulated gradients.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Leaf registers row i of the tensor on the tape as a differentiable leaf.
func (t *Tensor) Leaf(tape *Tape, i int) V {
	return tape.Leaf(t.Row(i), func(g []float64) { t.AddGrad(i, g) })
}

// LeafAll registers the whole tensor (flattened) as a leaf; used for
// weight matrices of linear layers.
func (t *Tensor) LeafAll(tape *Tape) V {
	return tape.Leaf(t.Data, func(g []float64) {
		t.mu.Lock()
		for j := range g {
			t.Grad[j] += g[j]
		}
		t.mu.Unlock()
	})
}

// Params is a registry of named tensors making up a model.
type Params struct {
	byName map[string]*Tensor
}

// NewParams returns an empty parameter registry.
func NewParams() *Params { return &Params{byName: make(map[string]*Tensor)} }

// New allocates and registers a zero tensor. It panics if the name is
// already taken.
func (p *Params) New(name string, rows, cols int) *Tensor {
	if _, ok := p.byName[name]; ok {
		panic(fmt.Sprintf("autodiff: duplicate parameter %q", name))
	}
	t := &Tensor{
		Name: name, Rows: rows, Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
		M:    make([]float64, rows*cols),
		Vm:   make([]float64, rows*cols),
	}
	p.byName[name] = t
	return t
}

// NewUniform allocates a tensor initialised uniformly in [lo, hi).
func (p *Params) NewUniform(name string, rows, cols int, lo, hi float64, rng *rand.Rand) *Tensor {
	t := p.New(name, rows, cols)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// NewXavier allocates a tensor with Glorot-uniform initialisation for a
// linear layer of shape (rows × cols).
func (p *Params) NewXavier(name string, rows, cols int, rng *rand.Rand) *Tensor {
	bound := math.Sqrt(6.0 / float64(rows+cols))
	return p.NewUniform(name, rows, cols, -bound, bound, rng)
}

// Get returns the named tensor, or nil.
func (p *Params) Get(name string) *Tensor { return p.byName[name] }

// All returns the tensors in deterministic (name) order.
func (p *Params) All() []*Tensor {
	names := make([]string, 0, len(p.byName))
	for n := range p.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Tensor, len(names))
	for i, n := range names {
		out[i] = p.byName[n]
	}
	return out
}

// ZeroGrad clears gradients of all tensors.
func (p *Params) ZeroGrad() {
	for _, t := range p.All() {
		t.ZeroGrad()
	}
}

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, t := range p.byName {
		n += len(t.Data)
	}
	return n
}

type tensorWire struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Save writes all tensor values (not optimizer state) to w in gob format.
func (p *Params) Save(w io.Writer) error { return p.Encode(gob.NewEncoder(w)) }

// Encode writes the tensor values through an existing gob encoder; use
// this when the parameters are one value of a larger gob stream (a gob
// stream must be read back through a single decoder, so writers and
// readers of multi-value streams must share encoders/decoders).
func (p *Params) Encode(enc *gob.Encoder) error {
	ts := p.All()
	wire := make([]tensorWire, len(ts))
	for i, t := range ts {
		wire[i] = tensorWire{Name: t.Name, Rows: t.Rows, Cols: t.Cols, Data: t.Data}
	}
	return enc.Encode(wire)
}

// momentWire carries one tensor's Adam moment buffers for exact-resume
// checkpoints.
type momentWire struct {
	Name  string
	M, Vm []float64
}

// EncodeMoments writes every tensor's Adam moment buffers (M, Vm) as
// one gob value, in the same deterministic name order as Encode. A
// checkpoint carrying parameters plus moments (plus the optimizer step
// count, kept by the trainer) resumes training bit-exactly.
func (p *Params) EncodeMoments(enc *gob.Encoder) error {
	ts := p.All()
	wire := make([]momentWire, len(ts))
	for i, t := range ts {
		wire[i] = momentWire{Name: t.Name, M: t.M, Vm: t.Vm}
	}
	return enc.Encode(wire)
}

// DecodeMoments restores moment buffers written by EncodeMoments into
// the registered tensors, validating names and shapes.
func (p *Params) DecodeMoments(dec *gob.Decoder) error {
	var wire []momentWire
	if err := dec.Decode(&wire); err != nil {
		return fmt.Errorf("autodiff: load moments: %w", err)
	}
	for _, mw := range wire {
		t := p.byName[mw.Name]
		if t == nil {
			return fmt.Errorf("autodiff: load moments: unknown tensor %q", mw.Name)
		}
		if len(mw.M) != len(t.M) || len(mw.Vm) != len(t.Vm) {
			return fmt.Errorf("autodiff: load moments: tensor %q size mismatch", mw.Name)
		}
		copy(t.M, mw.M)
		copy(t.Vm, mw.Vm)
	}
	return nil
}

// CloneShapes returns a fresh registry with zero tensors of the same
// names and shapes — a staging area to decode a parameter stream into
// without touching the live tensors (see halk.Model.ReloadFromFile).
func (p *Params) CloneShapes() *Params {
	out := NewParams()
	for _, t := range p.All() {
		out.New(t.Name, t.Rows, t.Cols)
	}
	return out
}

// Load restores tensor values previously written by Save. Every tensor in
// the stream must already be registered with matching shape.
func (p *Params) Load(r io.Reader) error { return p.Decode(gob.NewDecoder(r)) }

// Decode is the counterpart of Encode for multi-value gob streams.
func (p *Params) Decode(dec *gob.Decoder) error {
	var wire []tensorWire
	if err := dec.Decode(&wire); err != nil {
		return fmt.Errorf("autodiff: load params: %w", err)
	}
	for _, tw := range wire {
		t := p.byName[tw.Name]
		if t == nil {
			return fmt.Errorf("autodiff: load params: unknown tensor %q", tw.Name)
		}
		if t.Rows != tw.Rows || t.Cols != tw.Cols {
			return fmt.Errorf("autodiff: load params: tensor %q shape mismatch", tw.Name)
		}
		copy(t.Data, tw.Data)
	}
	return nil
}
