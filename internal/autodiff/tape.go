// Package autodiff implements a small reverse-mode automatic
// differentiation engine over float64 vectors.
//
// All neural operator models in this repository (HaLk and the baselines)
// are compositions of elementwise vector functions, small dense linear
// layers and reductions. A tape records the forward computation; Backward
// replays it in reverse, accumulating gradients into parameter tensors.
// The tape is built per training sample and discarded, so the engine has
// no global state and is safe to use from multiple goroutines as long as
// each goroutine owns its tape (parameter gradient accumulation is the
// caller's concern; see Params.AddGrad).
package autodiff

import "fmt"

// V is a handle to a vector value on a Tape.
type V struct {
	t  *Tape
	id int
}

// Len returns the dimensionality of the vector.
func (v V) Len() int { return len(v.t.nodes[v.id].value) }

// Value returns the forward value. The returned slice is owned by the
// tape and must not be modified.
func (v V) Value() []float64 { return v.t.nodes[v.id].value }

// Grad returns the gradient accumulated for this node by Backward.
// It is only meaningful after Backward has run.
func (v V) Grad() []float64 { return v.t.nodes[v.id].grad }

type node struct {
	value []float64
	grad  []float64
	back  func() // propagates node.grad into the inputs' grads; nil for leaves
}

// Tape records a forward computation for reverse-mode differentiation.
// The zero value is ready to use.
type Tape struct {
	nodes []node
	// scratch buffers reused across Reset cycles to reduce allocation
	pool [][]float64
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset clears the tape for reuse, recycling value/grad buffers.
func (t *Tape) Reset() {
	for i := range t.nodes {
		t.pool = append(t.pool, t.nodes[i].value, t.nodes[i].grad)
		t.nodes[i] = node{}
	}
	t.nodes = t.nodes[:0]
}

func (t *Tape) alloc(n int) []float64 {
	for i := len(t.pool) - 1; i >= 0; i-- {
		if cap(t.pool[i]) >= n {
			b := t.pool[i][:n]
			t.pool[i] = t.pool[len(t.pool)-1]
			t.pool = t.pool[:len(t.pool)-1]
			for j := range b {
				b[j] = 0
			}
			return b
		}
	}
	return make([]float64, n)
}

// push appends a node and returns its handle.
func (t *Tape) push(value []float64, back func()) V {
	t.nodes = append(t.nodes, node{value: value, grad: t.alloc(len(value)), back: back})
	return V{t, len(t.nodes) - 1}
}

// Const records a constant (no gradient flows back out of it). The input
// slice is copied.
func (t *Tape) Const(x []float64) V {
	v := t.alloc(len(x))
	copy(v, x)
	return t.push(v, nil)
}

// Scalar records a constant one-element vector.
func (t *Tape) Scalar(x float64) V { return t.Const([]float64{x}) }

// Leaf records a differentiable input. sink, if non-nil, receives the
// accumulated gradient when Backward reaches the leaf. The input slice is
// copied.
func (t *Tape) Leaf(x []float64, sink func(grad []float64)) V {
	v := t.alloc(len(x))
	copy(v, x)
	var res V
	res = t.push(v, func() {
		if sink != nil {
			sink(t.nodes[res.id].grad)
		}
	})
	return res
}

// Backward seeds the gradient of root with 1 in every component and
// propagates gradients to all ancestors. root is typically a scalar loss.
func (t *Tape) Backward(root V) {
	g := t.nodes[root.id].grad
	for i := range g {
		g[i] = 1
	}
	for i := root.id; i >= 0; i-- {
		if t.nodes[i].back != nil {
			t.nodes[i].back()
		}
	}
}

func (t *Tape) checkSameLen(a, b V, op string) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("autodiff: %s: length mismatch %d vs %d", op, a.Len(), b.Len()))
	}
}
