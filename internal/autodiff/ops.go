package autodiff

import "math"

// Add returns a + b elementwise.
func (t *Tape) Add(a, b V) V {
	t.checkSameLen(a, b, "Add")
	v := t.alloc(a.Len())
	av, bv := a.Value(), b.Value()
	for i := range v {
		v[i] = av[i] + bv[i]
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga, gb := t.nodes[a.id].grad, t.nodes[b.id].grad
		for i := range g {
			ga[i] += g[i]
			gb[i] += g[i]
		}
	})
	return res
}

// Sub returns a - b elementwise.
func (t *Tape) Sub(a, b V) V {
	t.checkSameLen(a, b, "Sub")
	v := t.alloc(a.Len())
	av, bv := a.Value(), b.Value()
	for i := range v {
		v[i] = av[i] - bv[i]
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga, gb := t.nodes[a.id].grad, t.nodes[b.id].grad
		for i := range g {
			ga[i] += g[i]
			gb[i] -= g[i]
		}
	})
	return res
}

// Mul returns a * b elementwise (Hadamard product).
func (t *Tape) Mul(a, b V) V {
	t.checkSameLen(a, b, "Mul")
	v := t.alloc(a.Len())
	av, bv := a.Value(), b.Value()
	for i := range v {
		v[i] = av[i] * bv[i]
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga, gb := t.nodes[a.id].grad, t.nodes[b.id].grad
		for i := range g {
			ga[i] += g[i] * bv[i]
			gb[i] += g[i] * av[i]
		}
	})
	return res
}

// Scale returns c*a.
func (t *Tape) Scale(a V, c float64) V {
	v := t.alloc(a.Len())
	av := a.Value()
	for i := range v {
		v[i] = c * av[i]
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for i := range g {
			ga[i] += c * g[i]
		}
	})
	return res
}

// AddScalar returns a + c in every component.
func (t *Tape) AddScalar(a V, c float64) V {
	v := t.alloc(a.Len())
	av := a.Value()
	for i := range v {
		v[i] = av[i] + c
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for i := range g {
			ga[i] += g[i]
		}
	})
	return res
}

// Neg returns -a.
func (t *Tape) Neg(a V) V { return t.Scale(a, -1) }

func (t *Tape) unary(a V, f, df func(x float64) float64) V {
	v := t.alloc(a.Len())
	av := a.Value()
	for i := range v {
		v[i] = f(av[i])
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga := t.nodes[a.id].grad
		for i := range g {
			ga[i] += g[i] * df(av[i])
		}
	})
	return res
}

// Sin applies sin elementwise.
func (t *Tape) Sin(a V) V { return t.unary(a, math.Sin, math.Cos) }

// Cos applies cos elementwise.
func (t *Tape) Cos(a V) V {
	return t.unary(a, math.Cos, func(x float64) float64 { return -math.Sin(x) })
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a V) V {
	return t.unary(a, math.Tanh, func(x float64) float64 {
		th := math.Tanh(x)
		return 1 - th*th
	})
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a V) V {
	return t.unary(a, sigmoid, func(x float64) float64 {
		s := sigmoid(x)
		return s * (1 - s)
	})
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Relu applies max(0, x) elementwise.
func (t *Tape) Relu(a V) V {
	return t.unary(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// Abs applies |x| elementwise; the subgradient at 0 is 0.
func (t *Tape) Abs(a V) V {
	return t.unary(a, math.Abs, func(x float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		}
		return 0
	})
}

// Exp applies e^x elementwise.
func (t *Tape) Exp(a V) V { return t.unary(a, math.Exp, math.Exp) }

// LogSigmoid applies log(sigmoid(x)) elementwise, computed stably as
// -softplus(-x).
func (t *Tape) LogSigmoid(a V) V {
	return t.unary(a, func(x float64) float64 {
		return -softplus(-x)
	}, func(x float64) float64 {
		return sigmoid(-x) // d/dx [-softplus(-x)] = σ(-x)
	})
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

// Min returns the elementwise minimum of a and b. Where the inputs tie,
// the gradient flows to a.
func (t *Tape) Min(a, b V) V {
	t.checkSameLen(a, b, "Min")
	v := t.alloc(a.Len())
	av, bv := a.Value(), b.Value()
	for i := range v {
		v[i] = math.Min(av[i], bv[i])
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga, gb := t.nodes[a.id].grad, t.nodes[b.id].grad
		for i := range g {
			if av[i] <= bv[i] {
				ga[i] += g[i]
			} else {
				gb[i] += g[i]
			}
		}
	})
	return res
}

// Max returns the elementwise maximum of a and b. Where the inputs tie,
// the gradient flows to a.
func (t *Tape) Max(a, b V) V {
	t.checkSameLen(a, b, "Max")
	v := t.alloc(a.Len())
	av, bv := a.Value(), b.Value()
	for i := range v {
		v[i] = math.Max(av[i], bv[i])
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		ga, gb := t.nodes[a.id].grad, t.nodes[b.id].grad
		for i := range g {
			if av[i] >= bv[i] {
				ga[i] += g[i]
			} else {
				gb[i] += g[i]
			}
		}
	})
	return res
}

// Atan2 returns atan2(y, x) elementwise.
func (t *Tape) Atan2(y, x V) V {
	t.checkSameLen(y, x, "Atan2")
	v := t.alloc(y.Len())
	yv, xv := y.Value(), x.Value()
	for i := range v {
		v[i] = math.Atan2(yv[i], xv[i])
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		gy, gx := t.nodes[y.id].grad, t.nodes[x.id].grad
		for i := range g {
			den := xv[i]*xv[i] + yv[i]*yv[i]
			if den == 0 {
				continue
			}
			gy[i] += g[i] * xv[i] / den
			gx[i] -= g[i] * yv[i] / den
		}
	})
	return res
}

// Concat concatenates the inputs into one vector.
func (t *Tape) Concat(xs ...V) V {
	n := 0
	for _, x := range xs {
		n += x.Len()
	}
	v := t.alloc(n)
	off := 0
	for _, x := range xs {
		copy(v[off:], x.Value())
		off += x.Len()
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		off := 0
		for _, x := range xs {
			gx := t.nodes[x.id].grad
			for i := range gx {
				gx[i] += g[off+i]
			}
			off += len(gx)
		}
	})
	return res
}

// Sum reduces the vector to a one-element vector holding the sum of its
// components.
func (t *Tape) Sum(a V) V {
	s := 0.0
	for _, x := range a.Value() {
		s += x
	}
	v := t.alloc(1)
	v[0] = s
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad[0]
		ga := t.nodes[a.id].grad
		for i := range ga {
			ga[i] += g
		}
	})
	return res
}

// L1 returns the one-element vector ||a||_1.
func (t *Tape) L1(a V) V { return t.Sum(t.Abs(a)) }

// MeanStack returns the elementwise mean of k same-length vectors.
func (t *Tape) MeanStack(xs []V) V {
	if len(xs) == 0 {
		panic("autodiff: MeanStack of empty list")
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = t.Add(acc, x)
	}
	return t.Scale(acc, 1/float64(len(xs)))
}

// MinStack returns the elementwise minimum of k same-length vectors.
func (t *Tape) MinStack(xs []V) V {
	if len(xs) == 0 {
		panic("autodiff: MinStack of empty list")
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = t.Min(acc, x)
	}
	return acc
}

// SoftmaxStack normalises k same-length score vectors elementwise:
// out[i][j] = exp(xs[i][j]) / sum_k exp(xs[k][j]). The scores are shifted
// by the per-dimension maximum for numerical stability; the shift does not
// change the value or the gradient.
func (t *Tape) SoftmaxStack(xs []V) []V {
	if len(xs) == 0 {
		panic("autodiff: SoftmaxStack of empty list")
	}
	d := xs[0].Len()
	shift := make([]float64, d)
	for j := 0; j < d; j++ {
		m := math.Inf(-1)
		for _, x := range xs {
			if v := x.Value()[j]; v > m {
				m = v
			}
		}
		shift[j] = -m
	}
	sh := t.Const(shift)
	exps := make([]V, len(xs))
	for i, x := range xs {
		exps[i] = t.Exp(t.Add(x, sh))
	}
	den := exps[0]
	for _, e := range exps[1:] {
		den = t.Add(den, e)
	}
	inv := t.Reciprocal(den)
	out := make([]V, len(xs))
	for i := range exps {
		out[i] = t.Mul(exps[i], inv)
	}
	return out
}

// Reciprocal returns 1/a elementwise.
func (t *Tape) Reciprocal(a V) V {
	return t.unary(a, func(x float64) float64 { return 1 / x },
		func(x float64) float64 { return -1 / (x * x) })
}

// MatVec computes y = W·x + b for a row-major (rows × cols) weight vector
// w and bias b of length rows. Gradients flow into w, x and b.
func (t *Tape) MatVec(w, x, b V, rows, cols int) V {
	if w.Len() != rows*cols {
		panic("autodiff: MatVec: weight length mismatch")
	}
	if x.Len() != cols {
		panic("autodiff: MatVec: input length mismatch")
	}
	if b.Len() != rows {
		panic("autodiff: MatVec: bias length mismatch")
	}
	wv, xv, bv := w.Value(), x.Value(), b.Value()
	v := t.alloc(rows)
	for r := 0; r < rows; r++ {
		s := bv[r]
		row := wv[r*cols : (r+1)*cols]
		for c, xc := range xv {
			s += row[c] * xc
		}
		v[r] = s
	}
	var res V
	res = t.push(v, func() {
		g := t.nodes[res.id].grad
		gw, gx, gb := t.nodes[w.id].grad, t.nodes[x.id].grad, t.nodes[b.id].grad
		for r := 0; r < rows; r++ {
			gr := g[r]
			if gr == 0 {
				continue
			}
			gb[r] += gr
			row := wv[r*cols : (r+1)*cols]
			growG := gw[r*cols : (r+1)*cols]
			for c := range xv {
				growG[c] += gr * xv[c]
				gx[c] += gr * row[c]
			}
		}
	})
	return res
}
