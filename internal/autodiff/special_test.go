package autodiff

import (
	"math"
	"testing"
)

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	cases := []struct{ x, want float64 }{
		{1, -gamma},
		{2, 1 - gamma},
		{0.5, -gamma - 2*math.Ln2},
		{10, 2.2517525890667214},
	}
	for _, c := range cases {
		if got := Digamma(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("Digamma(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Digamma(-1)) {
		t.Error("Digamma of non-positive argument should be NaN")
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
	}
	for _, c := range cases {
		if got := Trigamma(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Trigamma(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestDigammaIsLgammaDerivative(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{0.3, 1.0, 2.7, 8.5} {
		lp, _ := math.Lgamma(x + h)
		lm, _ := math.Lgamma(x - h)
		num := (lp - lm) / (2 * h)
		if got := Digamma(x); math.Abs(got-num) > 1e-5 {
			t.Errorf("Digamma(%g) = %g, numeric lnΓ' = %g", x, got, num)
		}
	}
}

func TestSpecialOpGradients(t *testing.T) {
	x := []float64{0.4, 1.2, 3.5, 7.0}
	checkGrad(t, "Softplus", func(tp *Tape, v V) V { return tp.Softplus(v) }, x, 1e-4)
	checkGrad(t, "Lgamma", func(tp *Tape, v V) V { return tp.Lgamma(v) }, x, 1e-4)
	checkGrad(t, "Digamma", func(tp *Tape, v V) V { return tp.DigammaOp(v) }, x, 1e-4)
}

func TestBetaKLProperties(t *testing.T) {
	tp := NewTape()
	a := tp.Const([]float64{2.0, 0.7, 5.0})
	b := tp.Const([]float64{3.0, 1.2, 0.5})
	// KL(p ‖ p) == 0
	kl := tp.BetaKL(a, b, a, b)
	for i, v := range kl.Value() {
		if math.Abs(v) > 1e-10 {
			t.Errorf("self-KL[%d] = %g, want 0", i, v)
		}
	}
	// KL(p ‖ q) > 0 for p != q
	a2 := tp.Const([]float64{2.5, 1.7, 4.0})
	b2 := tp.Const([]float64{1.0, 2.2, 1.5})
	kl2 := tp.BetaKL(a, b, a2, b2)
	for i, v := range kl2.Value() {
		if v <= 0 {
			t.Errorf("KL[%d] = %g, want > 0", i, v)
		}
	}
}

func TestBetaKLUniformReference(t *testing.T) {
	// KL(Beta(1,1) ‖ Beta(2,1)): p uniform, q(x) = 2x.
	// = ∫0^1 ln(1/(2x)) dx = -ln 2 + 1.
	tp := NewTape()
	one := tp.Const([]float64{1})
	two := tp.Const([]float64{2})
	kl := tp.BetaKL(one, one, two, one).Value()[0]
	want := 1 - math.Ln2
	if math.Abs(kl-want) > 1e-10 {
		t.Errorf("KL(B(1,1)‖B(2,1)) = %.12f, want %.12f", kl, want)
	}
}

func TestBetaKLGradient(t *testing.T) {
	// Gradient w.r.t. the first distribution's parameters.
	a1 := []float64{1.5, 2.5}
	checkGrad(t, "BetaKL/a1", func(tp *Tape, v V) V {
		return tp.BetaKL(v, tp.Const([]float64{2, 1}),
			tp.Const([]float64{3, 2}), tp.Const([]float64{1, 1.5}))
	}, a1, 1e-4)
	checkGrad(t, "BetaKL/a2", func(tp *Tape, v V) V {
		return tp.BetaKL(tp.Const([]float64{2, 1}), tp.Const([]float64{1.5, 2.5}),
			v, tp.Const([]float64{1, 1.5}))
	}, a1, 1e-4)
}
