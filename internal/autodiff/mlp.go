package autodiff

import (
	"fmt"
	"math/rand"
)

// MLP is a multi-layer perceptron with ReLU activations on hidden layers
// and a linear output layer. Weights are registered in a Params registry
// so they are trained and serialised with the rest of the model.
type MLP struct {
	sizes   []int
	weights []*Tensor
	biases  []*Tensor
}

// NewMLP registers an MLP named prefix with the given layer sizes
// (input, hidden..., output) in p.
func NewMLP(p *Params, prefix string, sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("autodiff: MLP needs at least input and output sizes")
	}
	m := &MLP{sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		m.weights = append(m.weights, p.NewXavier(fmt.Sprintf("%s.w%d", prefix, l), out, in, rng))
		m.biases = append(m.biases, p.New(fmt.Sprintf("%s.b%d", prefix, l), 1, out))
	}
	return m
}

// SetOutputBias fills the output layer's bias with v. Useful to steer
// the initial operating point of a bounded head (e.g. start tanh-bounded
// arclengths small instead of at the midpoint).
func (m *MLP) SetOutputBias(v float64) {
	b := m.biases[len(m.biases)-1]
	for i := range b.Data {
		b.Data[i] = v
	}
}

// Forward applies the MLP to x on the tape.
func (m *MLP) Forward(t *Tape, x V) V {
	h := x
	for l := range m.weights {
		w := m.weights[l].LeafAll(t)
		b := m.biases[l].LeafAll(t)
		h = t.MatVec(w, h, b, m.sizes[l+1], m.sizes[l])
		if l+1 < len(m.weights) {
			h = t.Relu(h)
		}
	}
	return h
}

// InSize returns the expected input dimensionality.
func (m *MLP) InSize() int { return m.sizes[0] }

// OutSize returns the output dimensionality.
func (m *MLP) OutSize() int { return m.sizes[len(m.sizes)-1] }
