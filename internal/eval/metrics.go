// Package eval implements the evaluation protocol of Sec. IV-A: filtered
// Mean Reciprocal Rank and Hits@K over hard answers (answers only
// derivable with the evaluation graph's held-out edges), per-structure
// aggregation, and the set-retrieval accuracy used by the
// subgraph-matching comparisons (Table VI, Fig. 6a).
package eval

import (
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// Metrics aggregates ranking quality over a query set.
type Metrics struct {
	MRR    float64
	Hits1  float64
	Hits3  float64
	Hits10 float64
	// N is the number of (query, hard answer) pairs scored.
	N int
	// AvgQueryTime is the mean wall-clock time to embed and rank one
	// query (the online stage).
	AvgQueryTime time.Duration
}

// FilteredRank returns the rank of entity e under the distance vector d,
// filtering the other known answers: rank = 1 + |{o : d[o] < d[e], o not
// an answer}|. Ties rank optimistically, matching the protocol in the
// baselines' public code.
func FilteredRank(d []float64, e kg.EntityID, answers query.Set) int {
	rank := 1
	de := d[e]
	for o, do := range d {
		if do < de && !answers.Has(kg.EntityID(o)) {
			rank++
		}
	}
	return rank
}

// Evaluate scores the model on the given queries, ranking every hard
// answer with filtering against the full answer set.
func Evaluate(m model.Interface, qs []query.Query) Metrics {
	var mt Metrics
	var elapsed time.Duration
	for i := range qs {
		q := &qs[i]
		start := time.Now()
		d := m.Distances(q.Root)
		elapsed += time.Since(start)
		for e := range q.HardAnswers {
			r := FilteredRank(d, e, q.Answers)
			mt.N++
			mt.MRR += 1 / float64(r)
			if r <= 1 {
				mt.Hits1++
			}
			if r <= 3 {
				mt.Hits3++
			}
			if r <= 10 {
				mt.Hits10++
			}
		}
	}
	if mt.N > 0 {
		n := float64(mt.N)
		mt.MRR /= n
		mt.Hits1 /= n
		mt.Hits3 /= n
		mt.Hits10 /= n
	}
	if len(qs) > 0 {
		mt.AvgQueryTime = elapsed / time.Duration(len(qs))
	}
	return mt
}

// PrecisionAtTruth measures a ranking model as a set retriever: the
// fraction of true answers among the model's |answers| best-ranked
// entities. Used for the HaLk columns of Table VI and Fig. 6a.
func PrecisionAtTruth(d []float64, answers query.Set) float64 {
	if len(answers) == 0 {
		return 0
	}
	k := len(answers)
	top := lowestK(d, k)
	hit := 0
	for _, e := range top {
		if answers.Has(e) {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// SetAccuracy measures an exact set answer against the ground truth with
// the Jaccard index |found ∩ truth| / |found ∪ truth|. Used for the
// GFinder columns of Table VI and Fig. 6a.
func SetAccuracy(found, truth query.Set) float64 {
	if len(found) == 0 && len(truth) == 0 {
		return 1
	}
	inter := len(found.Intersect(truth))
	union := len(found) + len(truth) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func lowestK(d []float64, k int) []kg.EntityID {
	if k > len(d) {
		k = len(d)
	}
	idx := make([]kg.EntityID, len(d))
	for i := range idx {
		idx[i] = kg.EntityID(i)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if d[idx[j]] < d[idx[min]] {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	return idx[:k]
}
