package eval

import (
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestFilteredRank(t *testing.T) {
	d := []float64{0.1, 0.5, 0.3, 0.9, 0.2}
	// entity 1 (d=0.5): better are 0, 2, 4. With no filtering, rank 4.
	if r := FilteredRank(d, 1, query.NewSet()); r != 4 {
		t.Errorf("rank = %d, want 4", r)
	}
	// filtering out answers 0 and 4 leaves only entity 2 better: rank 2.
	if r := FilteredRank(d, 1, query.NewSet(0, 4)); r != 2 {
		t.Errorf("filtered rank = %d, want 2", r)
	}
	// best entity ranks 1
	if r := FilteredRank(d, 0, query.NewSet()); r != 1 {
		t.Errorf("best rank = %d, want 1", r)
	}
}

// rankOracle is a fake model that ranks entities by a fixed preference.
type rankOracle struct {
	d []float64
}

func (r *rankOracle) Name() string                    { return "oracle" }
func (r *rankOracle) Params() *autodiff.Params        { return autodiff.NewParams() }
func (r *rankOracle) Supports(string) bool            { return true }
func (r *rankOracle) Distances(*query.Node) []float64 { return r.d }
func (r *rankOracle) Loss(*autodiff.Tape, *query.Query, int, *rand.Rand) (autodiff.V, bool) {
	return autodiff.V{}, false
}

func TestEvaluatePerfectModel(t *testing.T) {
	// 5 entities; answer {2} ranked first by the model.
	d := []float64{5, 4, 0, 3, 2}
	qs := []query.Query{{
		Structure:   "1p",
		Root:        query.NewProjection(0, query.NewAnchor(0)),
		Answers:     query.NewSet(2),
		HardAnswers: query.NewSet(2),
	}}
	mt := Evaluate(&rankOracle{d: d}, qs)
	if mt.MRR != 1 || mt.Hits1 != 1 || mt.Hits3 != 1 || mt.Hits10 != 1 || mt.N != 1 {
		t.Errorf("metrics = %+v, want all 1", mt)
	}
}

func TestEvaluateWorstModel(t *testing.T) {
	d := []float64{0, 1, 9, 2, 3}
	qs := []query.Query{{
		Structure:   "1p",
		Root:        query.NewProjection(0, query.NewAnchor(0)),
		Answers:     query.NewSet(2),
		HardAnswers: query.NewSet(2),
	}}
	mt := Evaluate(&rankOracle{d: d}, qs)
	if math.Abs(mt.MRR-0.2) > 1e-12 {
		t.Errorf("MRR = %g, want 0.2", mt.MRR)
	}
	if mt.Hits3 != 0 || mt.Hits10 != 1 {
		t.Errorf("hits = %+v", mt)
	}
}

func TestEvaluateFiltersOtherAnswers(t *testing.T) {
	// Answers {0, 2}; hard answer only {2}. Entity 0 ranks better but is
	// filtered, so 2 gets rank 1.
	d := []float64{0, 5, 1, 4, 3}
	qs := []query.Query{{
		Structure:   "1p",
		Root:        query.NewProjection(0, query.NewAnchor(0)),
		Answers:     query.NewSet(0, 2),
		HardAnswers: query.NewSet(2),
	}}
	mt := Evaluate(&rankOracle{d: d}, qs)
	if mt.MRR != 1 {
		t.Errorf("MRR = %g, want 1 (filtering broken)", mt.MRR)
	}
}

func TestPrecisionAtTruth(t *testing.T) {
	d := []float64{0.0, 0.1, 0.2, 0.9, 0.8}
	// truth {0, 1}: top-2 = {0, 1} -> precision 1
	if p := PrecisionAtTruth(d, query.NewSet(0, 1)); p != 1 {
		t.Errorf("precision = %g, want 1", p)
	}
	// truth {0, 3}: top-2 = {0, 1} -> precision 0.5
	if p := PrecisionAtTruth(d, query.NewSet(0, 3)); p != 0.5 {
		t.Errorf("precision = %g, want 0.5", p)
	}
	if p := PrecisionAtTruth(d, query.NewSet()); p != 0 {
		t.Errorf("precision of empty truth = %g, want 0", p)
	}
}

func TestSetAccuracy(t *testing.T) {
	cases := []struct {
		found, truth []kg.EntityID
		want         float64
	}{
		{[]kg.EntityID{1, 2}, []kg.EntityID{1, 2}, 1},
		{[]kg.EntityID{1}, []kg.EntityID{1, 2}, 0.5},
		{[]kg.EntityID{1, 2, 3}, []kg.EntityID{1}, 1.0 / 3},
		{nil, []kg.EntityID{1}, 0},
		{nil, nil, 1},
	}
	for i, c := range cases {
		if got := SetAccuracy(query.NewSet(c.found...), query.NewSet(c.truth...)); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: accuracy = %g, want %g", i, got, c.want)
		}
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	mt := Evaluate(&rankOracle{d: []float64{1}}, nil)
	if mt.N != 0 || mt.MRR != 0 || mt.AvgQueryTime != 0 {
		t.Errorf("empty workload metrics = %+v", mt)
	}
}

func TestEvaluateAveragesOverHardAnswers(t *testing.T) {
	// Answers {1, 3}; the non-answer entity 0 outranks both, other
	// answers are filtered: each hard answer gets filtered rank 2.
	d := []float64{0, 1, 5, 2, 9}
	qs := []query.Query{{
		Structure:   "1p",
		Root:        query.NewProjection(0, query.NewAnchor(0)),
		Answers:     query.NewSet(1, 3),
		HardAnswers: query.NewSet(1, 3),
	}}
	mt := Evaluate(&rankOracle{d: d}, qs)
	if mt.N != 2 || math.Abs(mt.MRR-0.5) > 1e-12 {
		t.Errorf("metrics = %+v, want MRR 0.5 over 2", mt)
	}
}
