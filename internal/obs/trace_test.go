package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceStagesSumToTotal(t *testing.T) {
	tr := NewTrace()
	tr.Begin(StageParse)
	time.Sleep(2 * time.Millisecond)
	tr.Begin(StageCanonicalize)
	time.Sleep(1 * time.Millisecond)
	tr.End()
	tr.Observe(StageShardScatter, 3*time.Millisecond)

	stages := tr.Stages()
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3: %+v", len(stages), stages)
	}
	order := []string{StageParse, StageCanonicalize, StageShardScatter}
	sum := 0.0
	for i, s := range stages {
		if s.Stage != order[i] {
			t.Fatalf("stage %d = %s, want %s", i, s.Stage, order[i])
		}
		sum += s.Ms
	}
	if sum < 5.5 { // 2 + 1 sleeps + 3 observed, minus scheduler slack
		t.Fatalf("stage sum = %.3fms, want >= 5.5ms", sum)
	}
}

func TestTraceMergesRepeatedStages(t *testing.T) {
	tr := NewTrace()
	tr.Observe(StageCacheLookup, time.Millisecond)
	tr.Observe(StageRankScan, time.Millisecond)
	tr.Observe(StageCacheLookup, time.Millisecond)
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want merged 2: %+v", len(stages), stages)
	}
	if stages[0].Stage != StageCacheLookup || stages[0].Ms < 1.9 {
		t.Fatalf("merged stage = %+v, want cache_lookup ~2ms", stages[0])
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.Observe("y", time.Second)
	tr.End()
	if tr.Stages() != nil || tr.TotalMs() != 0 || tr.String() != "" {
		t.Fatal("nil trace must record nothing")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no trace")
	}
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context round-trip")
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace()
	tr.Observe(StageParse, 1500*time.Microsecond)
	if s := tr.String(); !strings.Contains(s, "parse=1.500ms") {
		t.Fatalf("String() = %q", s)
	}
}
