package obs

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing integer counter. The zero value
// is usable; obtain shared instances through Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is a float64 value that can go up and down, stored as atomic
// bits so readers never observe a torn write.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (a running maximum, e.g.
// the worst scan latency seen on a shard).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// gaugeFunc is a gauge computed at exposition time.
type gaugeFunc func() float64

func (f gaugeFunc) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

// LatencyBuckets is the default histogram layout: millisecond latencies
// from 50µs to 10s, roughly logarithmic. Shared fixed buckets keep
// Observe lock-free and exposition aggregatable across processes.
var LatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// SizeBuckets is a generic count/size layout (pool sizes, batch sizes).
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram: per-bucket atomic counters
// plus an atomic sum, so Observe takes no lock and Stats/exposition
// read a consistent-enough snapshot (counts may trail by an
// observation, never tear).
type Histogram struct {
	bounds []float64       // bucket upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge           // running sum of observed values
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Value() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Returns 0 with no
// observations; ranks falling in the +Inf bucket clamp to the highest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(b *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(mergeLabelBlock(labels, `le="`+formatFloat(bound)+`"`))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	b.WriteString(mergeLabelBlock(labels, `le="+Inf"`))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')

	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.sum.Value()))
	b.WriteByte('\n')

	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(h.count.Load(), 10))
	b.WriteByte('\n')
}
