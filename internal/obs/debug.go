package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugMux returns a mux serving the standard pprof endpoints under
// /debug/pprof/ and, when reg is non-nil, Prometheus exposition at
// /metrics. The CLIs mount this behind -pprof-addr: it is a separate
// listener from the serving port, so profiling never competes with (or
// exposes itself to) query traffic.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}

// ServeDebug listens on addr and serves DebugMux(reg) in a background
// goroutine, returning the server (Close it on shutdown) and the bound
// address (useful with ":0"). The listen error is returned synchronously
// so a mistyped -pprof-addr fails fast instead of silently not serving.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// RegisterProcessMetrics adds the process-level gauges every binary
// exports: uptime, goroutine count and heap usage.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("halk_process_uptime_seconds", "Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("halk_goroutines", "Current goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("halk_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
