package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Canonical stage names of the query pipeline, in pipeline order. The
// serve handlers open the request-side stages; the ranking layers
// (halk.ShardedRanker, shard.Engine) record their own stages through
// the trace carried in the request context, so one trace tiles the
// whole request regardless of which ranking path served it.
const (
	StageParse        = "parse"         // body decode + compile to a query DAG
	StageCanonicalize = "canonicalize"  // canonical key + cache key derivation
	StageCacheLookup  = "cache_lookup"  // answer-cache probe
	StageQueueWait    = "queue_wait"    // waiting for a ranking worker
	StagePrepareArcs  = "prepare_arcs"  // query embedding + arc preparation
	StageShardScatter = "shard_scatter" // parallel shard scans (sharded path)
	StageHeapMerge    = "heap_merge"    // k-way merge of per-shard heaps
	StageRankScan     = "rank_scan"     // single-threaded full scan + top-K
	StageApproxTopK   = "approx_topk"   // ANN candidate-pool ranking
	StageEncode       = "encode"        // response labelling + JSON encode
)

// StageTiming is one recorded pipeline stage.
type StageTiming struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

// Trace records per-stage timings of one query through the pipeline.
// Stages are recorded either sequentially (Begin ends the previous
// stage) or directly (Observe). A nil *Trace is valid and records
// nothing, so instrumentation points need no nil checks — tracing costs
// two time.Now calls per stage when enabled, nothing when not.
//
// A trace is handed between the HTTP goroutine and the ranking worker,
// but never used by both at once (the handler blocks on the pool);
// the mutex makes misuse safe rather than racy.
type Trace struct {
	mu       sync.Mutex
	start    time.Time
	stages   []StageTiming
	cur      string
	curStart time.Time
}

// NewTrace starts a trace; the total clock runs from this call.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{start: now}
}

// Begin ends the current stage (if any) and starts the named one.
func (t *Trace) Begin(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.endLocked(now)
	t.cur, t.curStart = name, now
	t.mu.Unlock()
}

// End closes the current stage without opening another.
func (t *Trace) End() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.endLocked(now)
	t.mu.Unlock()
}

func (t *Trace) endLocked(now time.Time) {
	if t.cur == "" {
		return
	}
	t.observeLocked(t.cur, float64(now.Sub(t.curStart))/float64(time.Millisecond))
	t.cur = ""
}

// Observe records a stage duration directly — used by pipeline layers
// that measure their own windows (shard scatter, heap merge) rather
// than delimiting sequential stages.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observeLocked(name, float64(d)/float64(time.Millisecond))
	t.mu.Unlock()
}

// observeLocked merges repeated stage names (a re-entered stage sums),
// preserving first-occurrence order.
func (t *Trace) observeLocked(name string, ms float64) {
	for i := range t.stages {
		if t.stages[i].Stage == name {
			t.stages[i].Ms += ms
			return
		}
	}
	t.stages = append(t.stages, StageTiming{Stage: name, Ms: ms})
}

// Stages closes the current stage and returns a copy of the recorded
// stage timings in first-occurrence order.
func (t *Trace) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	t.endLocked(now)
	out := append([]StageTiming(nil), t.stages...)
	t.mu.Unlock()
	return out
}

// TotalMs is the wall time since NewTrace.
func (t *Trace) TotalMs() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start)) / float64(time.Millisecond)
}

// String renders the trace one stage per "name=1.23ms" token — the slow
// query log format.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, s := range t.Stages() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", s.Stage, s.Ms)
	}
	return b.String()
}

type traceKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil (every Trace
// method accepts a nil receiver, so callers use the result directly).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
