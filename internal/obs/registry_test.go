package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("halk_requests_total", "Total requests.", L("endpoint", "/v1/query"))
	c.Add(3)
	// Same name+labels returns the same counter.
	r.Counter("halk_requests_total", "Total requests.", L("endpoint", "/v1/query")).Inc()
	r.Counter("halk_requests_total", "Total requests.", L("endpoint", "/v1/stats")).Inc()

	g := r.Gauge("halk_loss", "Training loss.")
	g.Set(0.25)
	r.GaugeFunc("halk_workers", "Worker count.", func() float64 { return 8 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP halk_requests_total Total requests.",
		"# TYPE halk_requests_total counter",
		`halk_requests_total{endpoint="/v1/query"} 4`,
		`halk_requests_total{endpoint="/v1/stats"} 1`,
		"# TYPE halk_loss gauge",
		"halk_loss 0.25",
		"halk_workers 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("halk_latency_ms", "Latency.", []float64{1, 10, 100}, L("stage", "parse"))
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE halk_latency_ms histogram",
		`halk_latency_ms_bucket{stage="parse",le="1"} 2`,
		`halk_latency_ms_bucket{stage="parse",le="10"} 3`,
		`halk_latency_ms_bucket{stage="parse",le="100"} 4`,
		`halk_latency_ms_bucket{stage="parse",le="+Inf"} 5`,
		`halk_latency_ms_sum{stage="parse"} 5056.2`,
		`halk_latency_ms_count{stage="parse"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Mean() != 5056.2/5 {
		t.Fatalf("Count/Mean = %d/%v", h.Count(), h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations uniform in (0, 4]: quantiles interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 25.0)
	}
	if q := h.Quantile(0.5); q < 1.5 || q > 2.5 {
		t.Fatalf("p50 = %v, want ~2", q)
	}
	if q := h.Quantile(1.0); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	h.Observe(1e9) // lands in +Inf bucket; quantile clamps to top bound
	if q := h.Quantile(0.999); q != 8 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 8", q)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("halk_weird_total", "", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `halk_weird_total{q="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series %q missing in:\n%s", want, b.String())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("halk_c_total", "").Inc()
				r.Gauge("halk_g", "").Add(1)
				r.Histogram("halk_h_ms", "", nil).Observe(float64(j))
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("halk_c_total", "").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("halk_g", "").Value(); got != 8*500 {
		t.Fatalf("gauge = %v, want %v", got, 8*500)
	}
	if got := r.Histogram("halk_h_ms", "", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("halk_x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "halk_x_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(3)
	g.SetMax(1)
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("SetMax value = %v, want 7", g.Value())
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	srv, addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := httptest.NewRecorder()
	DebugMux(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "halk_process_uptime_seconds") {
		t.Fatalf("debug /metrics missing process gauges:\n%s", rec.Body.String())
	}
	if addr == "" {
		t.Fatal("ServeDebug returned empty bound address")
	}
	_ = time.Now
}
