// Package obs is the unified observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket histograms)
// with Prometheus text-format exposition, a lightweight per-query
// span/trace facility threaded through the serving pipeline, and a
// pprof/debug HTTP server used by the CLIs behind -pprof-addr.
//
// The registry is the single source of truth for every counter the
// system exports: the serve subsystem's request/cache stats, the shard
// engine's per-shard scan counters and the training loop's
// steps/loss/grad-norm series all live here, so /metrics (Prometheus)
// and /v1/stats (JSON) are two views over the same numbers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a Label; obs.L("endpoint", "/v1/query") reads better at call
// sites than a struct literal.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is anything the registry can expose: one sample set under one
// label set.
type metric interface {
	// write appends the exposition lines for this metric to b. name is
	// the family name, labels the pre-rendered {k="v",...} block (empty
	// when the metric has no labels).
	write(b *strings.Builder, name, labels string)
}

// family is one named metric family: every label-combination of one
// logical series, sharing a TYPE and HELP.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"

	mu      sync.Mutex
	order   []string // insertion-ordered label keys for stable exposition
	metrics map[string]metric
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use; the get-or-create
// constructors are cheap enough for hot paths but callers are expected
// to cache the returned handles.
type Registry struct {
	mu       sync.RWMutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it with the given type on
// first use. A name reused with a different type panics: that is a
// programming error that would render invalid exposition.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, typ: typ, metrics: make(map[string]metric)}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// get returns the metric for the label set, creating it with mk on
// first use.
func (f *family) get(labels []Label, mk func() metric) metric {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = mk()
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the counter for name+labels, registering it on first
// use. Counters only go up.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.family(name, help, "counter").get(labels, func() metric { return &Counter{} })
	return m.(*Counter)
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.family(name, help, "gauge").get(labels, func() metric { return &Gauge{} })
	return m.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values that already live elsewhere (cache size,
// goroutine count, uptime). Re-registering the same name+labels
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, "gauge")
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.metrics[key]; !ok {
		f.order = append(f.order, key)
	}
	f.metrics[key] = gaugeFunc(fn)
}

// Histogram returns the histogram for name+labels, registering it with
// the given bucket upper bounds on first use (nil means LatencyBuckets).
// Buckets are fixed at registration; later calls reuse the first bucket
// layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.family(name, help, "histogram").get(labels, func() metric { return newHistogram(buckets) })
	return m.(*Histogram)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series within a family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, key := range f.order {
			f.metrics[key].write(&b, f.name, key)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the /metrics HTTP handler for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// renderLabels renders a deterministic {k="v",...} block (keys sorted),
// or "" for no labels. The rendered form doubles as the series map key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, "+Inf"/"-Inf" spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabelBlock inserts extra into an existing rendered label block:
// mergeLabelBlock(`{a="1"}`, `le="5"`) == `{a="1",le="5"}`.
func mergeLabelBlock(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}
