// Package halk implements the paper's primary contribution: the arc
// embedding model with neural operators for projection (Eq. 2–3),
// difference (Eq. 4–9), intersection (Eq. 10–12) and negation
// (Eq. 13–14), the exact non-parametric union via the DNF rewrite
// (Sec. III-F), the entity-to-arc distance (Eq. 15–16) and the training
// loss (Eq. 17). The ablation variants of Sec. IV-C (HaLk-V1/V2/V3) are
// selected through Config.Variant.
package halk

import "math"

// Variant selects the full model or one of the paper's ablations.
type Variant int

const (
	// Full is the complete HaLk model.
	Full Variant = iota
	// V1NewLookDiff replaces the difference operator's chord-length
	// overlap with NewLook's raw-value overlap and removes the
	// cardinality constraint (Table V, "HaLk-V1").
	V1NewLookDiff
	// V2LinearNeg replaces the neural negation with the pure linear
	// transformation used by BetaE/ConE/MLPMix (Table V, "HaLk-V2").
	V2LinearNeg
	// V3NewLookProj replaces the coupled start/end-point projection with
	// NewLook's decoupled center-translation + independent length MLP
	// (Table V, "HaLk-V3").
	V3NewLookProj
)

// String names the variant as in Table V.
func (v Variant) String() string {
	switch v {
	case Full:
		return "HaLk"
	case V1NewLookDiff:
		return "HaLk-V1"
	case V2LinearNeg:
		return "HaLk-V2"
	case V3NewLookProj:
		return "HaLk-V3"
	}
	return "HaLk-?"
}

// Config holds the hyper-parameters of the model. The paper trains with
// d = 800 on four GPUs; the defaults here are scaled to CPU while keeping
// every ratio (η, γ, λ) of Sec. IV-A.
type Config struct {
	// Dim is the embedding dimensionality d.
	Dim int
	// Rho is the circle radius ρ (radius learning is future work in the
	// paper; fixed here too).
	Rho float64
	// Hidden is the width of the operator MLPs.
	Hidden int
	// Lambda is the fixed scale of the range regulator g (Eq. 3).
	Lambda float64
	// Eta down-weights the inside distance (Eq. 15); paper: 0.02.
	Eta float64
	// Gamma is the loss margin (Eq. 17); paper: 24 at d = 800.
	Gamma float64
	// Xi weights the group-consistency term of the loss (Eq. 17).
	Xi float64
	// NumGroups is the number of random node groups (Sec. II-A).
	NumGroups int
	// Variant selects the full model or an ablation.
	Variant Variant
	// Seed drives parameter initialisation and grouping.
	Seed int64
}

// DefaultConfig returns the scaled-down training configuration used by
// the benchmark harness.
func DefaultConfig(seed int64) Config {
	// The paper uses γ = 24 at d = 800. The margin must scale with the
	// number of distance terms (one per dimension): 24·(64/800) ≈ 2.
	return Config{
		Dim:    64,
		Rho:    1,
		Hidden: 64,
		Lambda: 1,
		Eta:    0.02,
		Gamma:  2,
		// The group-consistency weight must be commensurate with the
		// distance range (which grows with Dim, like Gamma): at ξ ~ 5γ
		// the group filter meaningfully reranks wrong-group entities.
		Xi:        10,
		NumGroups: 16,
		Variant:   Full,
		Seed:      seed,
	}
}

// validate panics on nonsensical configurations; used by New.
func (c Config) validate() {
	if c.Dim <= 0 || c.Hidden <= 0 || c.NumGroups <= 0 {
		panic("halk: Dim, Hidden and NumGroups must be positive")
	}
	if c.Rho <= 0 {
		panic("halk: Rho must be positive")
	}
	if c.Eta < 0 || c.Eta >= 1 {
		panic("halk: Eta must be in [0, 1)")
	}
	if c.Gamma <= 0 || math.IsNaN(c.Gamma) {
		panic("halk: Gamma must be positive")
	}
}
