package halk

import (
	"context"
	"math"
	"sync"

	"github.com/halk-kg/halk/internal/kg"
)

// trigCache memoises cos/sin of every entity angle so that online
// ranking (Distances over all entities) avoids per-query trigonometry:
// chord lengths reduce to dot products of cached unit vectors,
// |sin((p−s)/2)| = sqrt((1 − cos(p−s))/2) with
// cos(p−s) = cos p·cos s + sin p·sin s.
//
// The cache is invalidated by fingerprinting the entity table, so it
// stays correct when ranking interleaves with training.
//
// Invalidation is copy-on-invalidate: a rebuild fills fresh slices and
// swaps them in under the mutex, never rewriting the previously returned
// ones in place. Slices handed out by tables therefore stay immutable
// for as long as a caller holds them, even if another goroutine
// invalidates the cache mid-scan.
type trigCache struct {
	mu   sync.Mutex
	hash uint64
	cos  []float64
	sin  []float64
}

// tables returns up-to-date cos/sin tables for the entity data. The
// returned slices are read-only snapshots: they are never mutated after
// being returned.
func (tc *trigCache) tables(data []float64) (cosT, sinT []float64) {
	h := fnv64(data)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.hash != h || len(tc.cos) != len(data) {
		cos := make([]float64, len(data))
		sin := make([]float64, len(data))
		for i, a := range data {
			cos[i] = math.Cos(a)
			sin[i] = math.Sin(a)
		}
		tc.cos, tc.sin = cos, sin
		tc.hash = h
	}
	return tc.cos, tc.sin
}

func fnv64(data []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, f := range data {
		b := math.Float64bits(f)
		for s := 0; s < 64; s += 16 {
			h ^= (b >> s) & 0xffff
			h *= prime
		}
	}
	return h
}

// preArc is a query arc prepared for fast scoring.
type preArc struct {
	cosS, sinS []float64
	cosE, sinE []float64
	cosC, sinC []float64
	sh         []float64 // |sin(L/(4ρ))| — half-arc bound of d_i
	hot        []float64
}

func (m *Model) prepareArc(a ValueArc) preArc {
	d := m.cfg.Dim
	p := preArc{
		cosS: make([]float64, d), sinS: make([]float64, d),
		cosE: make([]float64, d), sinE: make([]float64, d),
		cosC: make([]float64, d), sinC: make([]float64, d),
		sh:  make([]float64, d),
		hot: a.Hot,
	}
	for j := 0; j < d; j++ {
		s := a.C[j] - a.L[j]/(2*m.cfg.Rho)
		e := a.C[j] + a.L[j]/(2*m.cfg.Rho)
		p.cosS[j], p.sinS[j] = math.Cos(s), math.Sin(s)
		p.cosE[j], p.sinE[j] = math.Cos(e), math.Sin(e)
		p.cosC[j], p.sinC[j] = math.Cos(a.C[j]), math.Sin(a.C[j])
		p.sh[j] = math.Abs(math.Sin(a.L[j] / (4 * m.cfg.Rho)))
	}
	return p
}

// halfSin returns |sin(Δ/2)| from cos Δ, clamped against rounding.
func halfSin(cosD float64) float64 {
	x := (1 - cosD) / 2
	if x < 0 {
		x = 0
	}
	return math.Sqrt(x)
}

// ctxCheckStride is how many entities fastDistances scores between
// context-cancellation checks: frequent enough to honour tight serving
// deadlines, rare enough to keep the check off the hot loop's profile.
const ctxCheckStride = 1024

// fastDistances scores every entity against the prepared arcs using the
// trig cache; identical (to rounding) to geometry.Distance + group
// penalty, minimised over disjuncts. The group penalty is computed
// inline per (entity, arc) — groupPenalty is O(1) — so the only
// allocation is the output vector. A non-nil ctx is polled every
// ctxCheckStride entities so long scans can be abandoned mid-flight.
func (m *Model) fastDistances(ctx context.Context, arcs []preArc) ([]float64, error) {
	d := m.cfg.Dim
	cosT, sinT := m.trig.tables(m.ent.Data)
	twoRho := 2 * m.cfg.Rho
	out := make([]float64, m.graph.NumEntities())
	for e := range out {
		if ctx != nil && e%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		base := e * d
		best := math.Inf(1)
		for ai := range arcs {
			pa := &arcs[ai]
			sum := 0.0
			for j := 0; j < d; j++ {
				cp, sp := cosT[base+j], sinT[base+j]
				cs := cp*pa.cosS[j] + sp*pa.sinS[j]
				ce := cp*pa.cosE[j] + sp*pa.sinE[j]
				cc := cp*pa.cosC[j] + sp*pa.sinC[j]
				do := halfSin(math.Max(cs, ce)) // min sin == max cos
				di := math.Min(halfSin(cc), pa.sh[j])
				sum += twoRho * (do + m.cfg.Eta*di)
			}
			if s := sum + m.groupPenalty(kg.EntityID(e), pa.hot); s < best {
				best = s
			}
		}
		out[e] = best
	}
	return out, nil
}
