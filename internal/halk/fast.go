package halk

import (
	"context"
	"math"
	"sync"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/shard"
)

// trigCache memoises cos/sin of every entity angle so that online
// ranking (Distances over all entities) avoids per-query trigonometry:
// chord lengths reduce to dot products of cached unit vectors,
// |sin((p−s)/2)| = sqrt((1 − cos(p−s))/2) with
// cos(p−s) = cos p·cos s + sin p·sin s.
//
// Staleness is detected through the model's monotonic entity version
// (see Model.EntityVersion): SetEntityAngles and training steps bump the
// counter, and the cache rebuilds when the version it was built at no
// longer matches — an O(1) check per ranked query, replacing the
// O(|E|·d) full-table fingerprint this cache used to rehash every time.
//
// Invalidation is copy-on-invalidate: a rebuild fills fresh slices and
// swaps them in under the mutex, never rewriting the previously returned
// ones in place. Slices handed out by tables therefore stay immutable
// for as long as a caller holds them, even if another goroutine
// invalidates the cache mid-scan.
type trigCache struct {
	mu      sync.Mutex
	version uint64 // entity version the tables were built at; 0 = never
	cos     []float64
	sin     []float64
}

// tables returns cos/sin tables for the entity data as of the given
// entity version. The returned slices are read-only snapshots: they are
// never mutated after being returned.
func (tc *trigCache) tables(data []float64, version uint64) (cosT, sinT []float64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.version != version || len(tc.cos) != len(data) {
		cos := make([]float64, len(data))
		sin := make([]float64, len(data))
		for i, a := range data {
			cos[i] = math.Cos(a)
			sin[i] = math.Sin(a)
		}
		tc.cos, tc.sin = cos, sin
		tc.version = version
	}
	return tc.cos, tc.sin
}

// preArc is a query arc prepared for fast scoring; it is the shard
// engine's prepared-arc type, so the single-node path and the sharded
// path share one preparation (and therefore identical float behaviour).
type preArc = shard.Arc

func (m *Model) prepareArc(a ValueArc) preArc {
	return shard.PrepareArc(m.shardParams(), a.C, a.L, a.Hot)
}

// shardParams exports the scoring constants in the shard engine's form.
func (m *Model) shardParams() shard.Params {
	return shard.Params{Dim: m.cfg.Dim, Rho: m.cfg.Rho, Eta: m.cfg.Eta, Xi: m.cfg.Xi}
}

// halfSin returns |sin(Δ/2)| from cos Δ, clamped against rounding.
func halfSin(cosD float64) float64 {
	x := (1 - cosD) / 2
	if x < 0 {
		x = 0
	}
	return math.Sqrt(x)
}

// ctxCheckStride is how many entities fastDistances scores between
// context-cancellation checks: frequent enough to honour tight serving
// deadlines, rare enough to keep the check off the hot loop's profile.
const ctxCheckStride = 1024

// fastDistances scores every entity against the prepared arcs using the
// trig cache; identical (to rounding) to geometry.Distance + group
// penalty, minimised over disjuncts. The group penalty is computed
// inline per (entity, arc) — groupPenalty is O(1) — so the only
// allocation is the output vector. A non-nil ctx is polled every
// ctxCheckStride entities so long scans can be abandoned mid-flight.
func (m *Model) fastDistances(ctx context.Context, arcs []preArc) ([]float64, error) {
	d := m.cfg.Dim
	cosT, sinT := m.trig.tables(m.ent.Data, m.EntityVersion())
	twoRho := 2 * m.cfg.Rho
	out := make([]float64, m.graph.NumEntities())
	for e := range out {
		if ctx != nil && e%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		base := e * d
		best := math.Inf(1)
		for ai := range arcs {
			pa := &arcs[ai]
			sum := 0.0
			for j := 0; j < d; j++ {
				cp, sp := cosT[base+j], sinT[base+j]
				cs := cp*pa.CosS[j] + sp*pa.SinS[j]
				ce := cp*pa.CosE[j] + sp*pa.SinE[j]
				cc := cp*pa.CosC[j] + sp*pa.SinC[j]
				do := halfSin(math.Max(cs, ce)) // min sin == max cos
				di := math.Min(halfSin(cc), pa.SH[j])
				sum += twoRho * (do + m.cfg.Eta*di)
			}
			if s := sum + m.groupPenalty(kg.EntityID(e), pa.Hot); s < best {
				best = s
			}
		}
		out[e] = best
	}
	return out, nil
}
