package halk

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/halk-kg/halk/internal/kg"
)

// CheckpointHeader describes a saved model so it can be rebuilt against
// the same (regenerated) dataset.
type CheckpointHeader struct {
	Dataset string // dataset name, e.g. "FB237"
	Seed    int64  // dataset generation seed
	Config  Config
}

// SaveCheckpoint writes the header and all parameters to w as a single
// gob stream.
func (m *Model) SaveCheckpoint(w io.Writer, dataset string, dataSeed int64) error {
	enc := gob.NewEncoder(w)
	hdr := CheckpointHeader{Dataset: dataset, Seed: dataSeed, Config: m.cfg}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("halk: save checkpoint header: %w", err)
	}
	return m.params.Encode(enc)
}

// LoadCheckpoint reads a checkpoint header, rebuilds the model over g
// (which must be the same training graph the checkpoint was created on)
// and restores its parameters.
func LoadCheckpoint(r io.Reader, lookup func(hdr CheckpointHeader) (*kg.Graph, error)) (*Model, CheckpointHeader, error) {
	dec := gob.NewDecoder(r)
	var hdr CheckpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, hdr, fmt.Errorf("halk: load checkpoint header: %w", err)
	}
	g, err := lookup(hdr)
	if err != nil {
		return nil, hdr, err
	}
	m := New(g, hdr.Config)
	if err := m.params.Decode(dec); err != nil {
		return nil, hdr, err
	}
	return m, hdr, nil
}
