package halk

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
)

// CheckpointHeader describes a saved model so it can be rebuilt against
// the same (regenerated) dataset.
type CheckpointHeader struct {
	Dataset string // dataset name, e.g. "FB237"
	Seed    int64  // dataset generation seed
	Config  Config
}

// Typed checkpoint-load failures. Both mark the input itself as bad —
// retrying the same bytes can never succeed — so callers (halk-serve's
// startup retry loop, the hot-reload path, halk-train --resume) treat
// them as permanent and either bail or fall back to an older rotation
// entry, instead of re-attempting.
var (
	// ErrCheckpointCorrupt wraps a decode failure inside the checkpoint
	// payload: a truncated stream, a bit-flipped legacy file, an
	// unknown tensor, a shape mismatch, or an empty file.
	ErrCheckpointCorrupt = errors.New("halk: checkpoint payload corrupt")
	// ErrCheckpointMismatch marks a structurally valid checkpoint that
	// belongs to a different model: wrong dataset, wrong dataset seed,
	// or a different hyper-parameter configuration.
	ErrCheckpointMismatch = errors.New("halk: checkpoint does not match the serving model")
)

// SaveCheckpoint writes the header and all parameters to w as a single
// gob stream. This is the raw payload; for a crash-safe on-disk file,
// use WriteCheckpointFile, which wraps it in the verified envelope of
// internal/ckpt.
func (m *Model) SaveCheckpoint(w io.Writer, dataset string, dataSeed int64) error {
	enc := gob.NewEncoder(w)
	hdr := CheckpointHeader{Dataset: dataset, Seed: dataSeed, Config: m.cfg}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("halk: save checkpoint header: %w", err)
	}
	return m.params.Encode(enc)
}

// WriteCheckpointFile atomically writes the model as a verified
// checkpoint file: the SaveCheckpoint gob stream inside the
// CRC-checksummed envelope, published by rename so a crash mid-write
// never leaves a torn file at path.
func (m *Model) WriteCheckpointFile(path, dataset string, dataSeed int64) error {
	return ckpt.WriteFile(path, func(w io.Writer) error {
		return m.SaveCheckpoint(w, dataset, dataSeed)
	})
}

// LoadCheckpoint reads a checkpoint header, rebuilds the model over g
// (which must be the same training graph the checkpoint was created on)
// and restores its parameters. Decode failures return errors wrapping
// ErrCheckpointCorrupt; the model is never returned half-initialized.
func LoadCheckpoint(r io.Reader, lookup func(hdr CheckpointHeader) (*kg.Graph, error)) (*Model, CheckpointHeader, error) {
	return LoadCheckpointFrom(gob.NewDecoder(r), lookup)
}

// LoadCheckpointFrom is LoadCheckpoint over an existing gob decoder.
// Use it when the checkpoint is one part of a larger stream — e.g. a
// training checkpoint whose trailing optimizer state
// (model.DecodeTrainState) must be read through the same decoder.
func LoadCheckpointFrom(dec *gob.Decoder, lookup func(hdr CheckpointHeader) (*kg.Graph, error)) (*Model, CheckpointHeader, error) {
	var hdr CheckpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, hdr, fmt.Errorf("%w: header: %v", ErrCheckpointCorrupt, err)
	}
	g, err := lookup(hdr)
	if err != nil {
		return nil, hdr, err
	}
	m := New(g, hdr.Config)
	if err := m.params.Decode(dec); err != nil {
		return nil, hdr, fmt.Errorf("%w: parameters: %v", ErrCheckpointCorrupt, err)
	}
	return m, hdr, nil
}

// FileInfo describes a checkpoint file after a successful load.
type FileInfo struct {
	Path   string
	Header CheckpointHeader
	// Step is the training step the checkpoint was cut at, or -1 when
	// the payload carries no training state (a serving-only or legacy
	// checkpoint).
	Step int
	// Legacy is true when the file predates the verified envelope
	// format (a bare gob stream written before internal/ckpt existed).
	Legacy bool
}

// LoadCheckpointFile opens, verifies and loads a checkpoint file. The
// envelope is checked end to end (magic, version, length, CRC) before
// any payload byte is decoded, so a truncated or bit-flipped file is
// rejected with a typed error from internal/ckpt instead of producing
// a half-initialized model. Files without the envelope magic fall back
// to the legacy bare-gob format, whose decode errors are typed
// ErrCheckpointCorrupt.
func LoadCheckpointFile(path string, lookup func(hdr CheckpointHeader) (*kg.Graph, error)) (*Model, FileInfo, error) {
	info := FileInfo{Path: path, Step: -1}
	payload, err := ckpt.ReadFile(path)
	switch {
	case errors.Is(err, ckpt.ErrNotCheckpoint):
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, info, rerr
		}
		info.Legacy = true
		payload = raw
	case err != nil:
		return nil, info, err
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	m, hdr, err := LoadCheckpointFrom(dec, lookup)
	if err != nil {
		return nil, info, err
	}
	info.Header = hdr
	// Training checkpoints carry optimizer state after the parameters;
	// surface the step for freshness reporting. Its absence (EOF on a
	// serving-only payload) is not an error.
	if st, err := model.DecodeTrainState(dec, m.params); err == nil {
		info.Step = st.Step
	}
	return m, info, nil
}

// ReloadFromFile hot-swaps a newer checkpoint into the live model: the
// file is verified and decoded into a staging parameter set first, and
// only if everything — envelope, header identity (dataset, seed,
// config), every tensor — checks out are the live parameters replaced,
// atomically with respect to in-flight rankings (under the ranking
// write-lock, with an entity-version bump so the trig cache, sharded
// snapshots and answer caches all roll forward). On any error nothing
// is touched: the model keeps serving the previous parameters.
func (m *Model) ReloadFromFile(path, wantDataset string, wantSeed int64) (FileInfo, error) {
	info := FileInfo{Path: path, Step: -1}
	payload, err := ckpt.ReadFile(path)
	switch {
	case errors.Is(err, ckpt.ErrNotCheckpoint):
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return info, rerr
		}
		info.Legacy = true
		payload = raw
	case err != nil:
		return info, err
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var hdr CheckpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return info, fmt.Errorf("%w: header: %v", ErrCheckpointCorrupt, err)
	}
	if hdr.Dataset != wantDataset || hdr.Seed != wantSeed {
		return info, fmt.Errorf("%w: checkpoint is for dataset %s/seed %d, serving %s/seed %d",
			ErrCheckpointMismatch, hdr.Dataset, hdr.Seed, wantDataset, wantSeed)
	}
	if hdr.Config != m.cfg {
		return info, fmt.Errorf("%w: checkpoint config %+v differs from serving config %+v",
			ErrCheckpointMismatch, hdr.Config, m.cfg)
	}
	staging := m.params.CloneShapes()
	if err := staging.Decode(dec); err != nil {
		return info, fmt.Errorf("%w: parameters: %v", ErrCheckpointCorrupt, err)
	}
	if st, err := model.DecodeTrainState(dec, staging); err == nil {
		info.Step = st.Step
	}
	info.Header = hdr

	// Everything verified; install. The write-lock serialises against
	// in-flight rankings, and the version bump makes every derived
	// structure (trig cache, shard snapshots via Refresh, cache keys)
	// observe the change.
	m.rankMu.Lock()
	for _, t := range staging.All() {
		copy(m.params.Get(t.Name).Data, t.Data)
	}
	m.entVersion.Add(1)
	m.rankMu.Unlock()
	return info, nil
}
