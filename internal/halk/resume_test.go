package halk

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
)

// resumeTrainConfig is a tiny fully deterministic training budget:
// Workers: 1 pins the gradient accumulation order, so two runs with the
// same seed are bit-identical — the precondition for asserting that a
// crashed-and-resumed run reproduces an uninterrupted one byte for byte.
func resumeTrainConfig(steps int) model.TrainConfig {
	return model.TrainConfig{
		QueriesPerStructure: 30,
		Steps:               steps,
		BatchSize:           4,
		NegSamples:          4,
		LR:                  0.01,
		LRDecay:             true,
		Seed:                77,
		Structures:          []string{"1p", "2p", "2i"},
		Workers:             1,
	}
}

func paramBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Params().Save(&buf); err != nil {
		t.Fatalf("save params: %v", err)
	}
	return buf.Bytes()
}

func headerFunc(m *Model, dataset string, seed int64) func(*gob.Encoder) error {
	return func(enc *gob.Encoder) error {
		return enc.Encode(CheckpointHeader{Dataset: dataset, Seed: seed, Config: m.Config()})
	}
}

// loadLatestForResume rebuilds a model and its training state from the
// newest valid rotation entry — the same sequence halk-train --resume
// performs: envelope verify, header-driven model construction,
// parameter decode, then the trailing optimizer state through the same
// gob decoder.
func loadLatestForResume(t *testing.T, dir *ckpt.Dir, ds *kg.Dataset) (*Model, model.TrainState, ckpt.Entry) {
	t.Helper()
	var (
		m  *Model
		st model.TrainState
	)
	entry, err := dir.LoadLatest(func(e ckpt.Entry, payload []byte) error {
		dec := gob.NewDecoder(bytes.NewReader(payload))
		mm, _, err := LoadCheckpointFrom(dec, func(hdr CheckpointHeader) (*kg.Graph, error) {
			return ds.Train, nil
		})
		if err != nil {
			return err
		}
		s, err := model.DecodeTrainState(dec, mm.Params())
		if err != nil {
			return err
		}
		m, st = mm, s
		return nil
	})
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	return m, st, entry
}

// TestCrashResumeByteIdentical is the central durability guarantee:
// training interrupted at an arbitrary step — with the newest rotation
// entry additionally torn mid-write, as a crash would leave it — and
// resumed from the latest *valid* checkpoint must produce final
// parameters byte-identical to an uninterrupted run with the same seed.
func TestCrashResumeByteIdentical(t *testing.T) {
	const totalSteps = 12
	ds := kg.SynthFB237(7)
	cfg := testConfig(7)

	// Reference: uninterrupted run.
	ref := New(ds.Train, cfg)
	if _, err := model.Train(ref, ds.Train, resumeTrainConfig(totalSteps)); err != nil {
		t.Fatalf("reference Train: %v", err)
	}
	want := paramBytes(t, ref)

	// Crashed run: checkpoint every 3 steps, interrupt as soon as the
	// step-6 checkpoint lands (OnSave fires, the trainer notices the
	// closed channel at the top of the next step).
	dir := &ckpt.Dir{Path: filepath.Join(t.TempDir(), "ckpts"), Keep: 3}
	crashed := New(ds.Train, cfg)
	interrupt := make(chan struct{})
	var once sync.Once
	tc := resumeTrainConfig(totalSteps)
	tc.Checkpoint = &model.CheckpointConfig{
		Dir:       dir,
		Every:     3,
		Header:    headerFunc(crashed, "FB237", 7),
		Interrupt: interrupt,
		OnSave: func(step int, path string) {
			if step >= 6 {
				once.Do(func() { close(interrupt) })
			}
		},
	}
	res, err := model.Train(crashed, ds.Train, tc)
	if err != nil {
		t.Fatalf("crashed Train: %v", err)
	}
	if !res.Interrupted {
		t.Fatalf("TrainResult.Interrupted = false, want true")
	}
	if res.Steps != 6 {
		t.Fatalf("interrupted at step %d, want 6", res.Steps)
	}

	// Simulate the kill-mid-write the rename protocol defends against:
	// a newer entry exists but holds only the first half of its bytes.
	good, err := os.ReadFile(filepath.Join(dir.Path, ckpt.EntryName(6)))
	if err != nil {
		t.Fatalf("read step-6 entry: %v", err)
	}
	torn := filepath.Join(dir.Path, ckpt.EntryName(7))
	if err := os.WriteFile(torn, good[:len(good)/2], 0o644); err != nil {
		t.Fatalf("write torn entry: %v", err)
	}

	resumed, st, entry := loadLatestForResume(t, dir, ds)
	if entry.Step != 6 {
		t.Fatalf("resumed from step %d, want fallback to 6 past the torn entry", entry.Step)
	}
	if st.Step != 6 {
		t.Fatalf("TrainState.Step = %d, want 6", st.Step)
	}
	if bytes.Equal(paramBytes(t, resumed), want) {
		t.Fatalf("checkpointed params already equal final params; test would be vacuous")
	}

	tc2 := resumeTrainConfig(totalSteps)
	tc2.Checkpoint = &model.CheckpointConfig{
		Dir:    dir,
		Every:  3,
		Header: headerFunc(resumed, "FB237", 7),
		Resume: &st,
	}
	res2, err := model.Train(resumed, ds.Train, tc2)
	if err != nil {
		t.Fatalf("resumed Train: %v", err)
	}
	if res2.Steps != totalSteps {
		t.Fatalf("resumed run completed %d steps, want %d", res2.Steps, totalSteps)
	}
	if got := paramBytes(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed parameters differ from uninterrupted run (len %d vs %d)", len(got), len(want))
	}
}

// TestResumeFromEveryCheckpoint resumes from each rotation entry of one
// interrupted-free run and checks all of them converge to the same
// final bytes — the cut point must not matter.
func TestResumeFromEveryCheckpoint(t *testing.T) {
	const totalSteps = 10
	ds := kg.SynthFB237(11)
	cfg := testConfig(11)

	dir := &ckpt.Dir{Path: filepath.Join(t.TempDir(), "ckpts"), Keep: 10}
	ref := New(ds.Train, cfg)
	tc := resumeTrainConfig(totalSteps)
	tc.Seed = 123
	tc.Checkpoint = &model.CheckpointConfig{
		Dir:    dir,
		Every:  4,
		Header: headerFunc(ref, "FB237", 11),
	}
	if _, err := model.Train(ref, ds.Train, tc); err != nil {
		t.Fatalf("reference Train: %v", err)
	}
	want := paramBytes(t, ref)

	entries, err := dir.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 3 { // steps 4, 8 and the final 10
		t.Fatalf("got %d rotation entries, want 3", len(entries))
	}
	for _, e := range entries {
		payload, err := ckpt.ReadFile(e.Path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", e.Path, err)
		}
		dec := gob.NewDecoder(bytes.NewReader(payload))
		m, _, err := LoadCheckpointFrom(dec, func(hdr CheckpointHeader) (*kg.Graph, error) {
			return ds.Train, nil
		})
		if err != nil {
			t.Fatalf("load entry step %d: %v", e.Step, err)
		}
		st, err := model.DecodeTrainState(dec, m.Params())
		if err != nil {
			t.Fatalf("train state of entry step %d: %v", e.Step, err)
		}
		tc2 := resumeTrainConfig(totalSteps)
		tc2.Seed = 123
		tc2.Checkpoint = &model.CheckpointConfig{Resume: &st}
		if _, err := model.Train(m, ds.Train, tc2); err != nil {
			t.Fatalf("resume from step %d: %v", e.Step, err)
		}
		if !bytes.Equal(paramBytes(t, m), want) {
			t.Fatalf("resume from step %d diverged from reference", e.Step)
		}
	}
}
