package halk

import (
	"context"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// distance builds the differentiable entity-to-arc distance of
// Eqs. 15–16 on the tape: d = d_o + η·d_i, where the outside distance is
// the chord to the nearest arc endpoint and the inside distance is the
// chord to the center saturated at the half-arc chord. Exactly as in
// Eq. 16, d_o applies to points on the arc too — answers are pulled
// toward the nearest endpoint, which keeps arclengths tight around the
// answer set (the cardinality semantics). Chord lengths make the
// measurement periodicity-safe (no duality).
func (m *Model) distance(t *autodiff.Tape, point autodiff.V, arc Arc) autodiff.V {
	rho := m.cfg.Rho
	s, e := m.startEnd(t, arc.C, arc.L)

	sa := t.Abs(t.Sin(t.Scale(t.Sub(point, s), 0.5)))
	se := t.Abs(t.Sin(t.Scale(t.Sub(point, e), 0.5)))
	do := t.Min(sa, se)

	sc := t.Abs(t.Sin(t.Scale(t.Sub(point, arc.C), 0.5)))
	sh := t.Abs(t.Sin(t.Scale(arc.L, 1/(4*rho))))
	di := t.Min(sc, sh)

	return t.Scale(t.Add(t.Sum(do), t.Scale(t.Sum(di), m.cfg.Eta)), 2*rho)
}

// groupPenalty is the ξ‖Relu(h_v − h_{U_q})‖₁ term of Eq. 17: ξ when the
// entity's group is outside the query's reachable groups, 0 otherwise.
// Group vectors are not trained, so the term is a constant per pair.
// Since h_v is one-hot (and hot is elementwise non-negative), the L1
// sum collapses to the single term at the entity's own group — O(1)
// and allocation-free, which keeps it off the fastDistances profile.
func (m *Model) groupPenalty(e kg.EntityID, hot []float64) float64 {
	if d := 1 - hot[m.groups.GroupOf(e)]; d > 0 {
		return m.cfg.Xi * d
	}
	return 0
}

// scoreEntities builds the differentiable scores d(v‖A_q) +
// ξ‖Relu(h_v − h_{U_q})‖₁ for a batch of entities in one vectorized pass
// per DNF disjunct (tiled arcs + segment sums), minimised elementwise
// over the disjuncts (the union rule of Sec. III-G). Returns a vector of
// length len(es).
func (m *Model) scoreEntities(t *autodiff.Tape, es []kg.EntityID, arcs []Arc) autodiff.V {
	d, k := m.cfg.Dim, len(es)
	rho := m.cfg.Rho
	leaves := make([]autodiff.V, k)
	for i, e := range es {
		leaves[i] = m.ent.Leaf(t, int(e))
	}
	points := t.Concat(leaves...)

	var best autodiff.V
	for ai, a := range arcs {
		c := t.Repeat(a.C, k)
		l := t.Repeat(a.L, k)
		s, e := m.startEnd(t, c, l)
		sa := t.Abs(t.Sin(t.Scale(t.Sub(points, s), 0.5)))
		se := t.Abs(t.Sin(t.Scale(t.Sub(points, e), 0.5)))
		do := t.SumSegments(t.Min(sa, se), d)
		sc := t.Abs(t.Sin(t.Scale(t.Sub(points, c), 0.5)))
		sh := t.Abs(t.Sin(t.Scale(l, 1/(4*rho))))
		di := t.SumSegments(t.Min(sc, sh), d)
		per := t.Scale(t.Add(do, t.Scale(di, m.cfg.Eta)), 2*rho)

		pens := make([]float64, k)
		for i, e := range es {
			pens[i] = m.groupPenalty(e, a.Hot)
		}
		per = t.Add(per, t.Const(pens))

		if ai == 0 {
			best = per
		} else {
			best = t.Min(best, per)
		}
	}
	return best
}

// Loss implements model.Interface: the negative-sampling loss of Eq. 17
// for one query instance, with one positive answer and negSamples
// negatives.
func (m *Model) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	// Every loss build precedes an optimizer step that mutates the entity
	// table, so bump the entity version here: the next ranking after any
	// training activity sees a version change and rebuilds its caches.
	// Over-bumping (e.g. on a skipped instance) only costs a rebuild.
	m.entVersion.Add(1)
	pos, ok := model.SamplePositive(q.Answers, rng)
	if !ok {
		return autodiff.V{}, false
	}
	negs := model.SampleNegatives(q.Answers, m.graph.NumEntities(), negSamples, rng)
	if len(negs) == 0 {
		return autodiff.V{}, false
	}

	disjuncts := query.DNF(q.Root)
	arcs := make([]Arc, len(disjuncts))
	for i, d := range disjuncts {
		arcs[i] = m.Embed(t, d)
	}

	scores := m.scoreEntities(t, append([]kg.EntityID{pos}, negs...), arcs)
	// −log σ(γ − score(v))
	posLoss := t.Neg(t.LogSigmoid(t.AddScalar(t.Neg(t.Slice(scores, 0, 1)), m.cfg.Gamma)))
	// −(1/m) Σ log σ(score(v') − γ)
	negLoss := t.Mean(t.Neg(t.LogSigmoid(t.AddScalar(t.Slice(scores, 1, len(negs)), -m.cfg.Gamma))))
	return t.Add(posLoss, negLoss), true
}

// EmbedQuery embeds a (possibly union-containing) query and returns the
// value-level arcs of its DNF disjuncts: centers, lengths and group hot
// vector per disjunct. This is the online stage: a single forward pass,
// no gradient bookkeeping retained by the caller.
func (m *Model) EmbedQuery(n *query.Node) []ValueArc {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	out := make([]ValueArc, len(disjuncts))
	for i, d := range disjuncts {
		a := m.Embed(t, d)
		out[i] = ValueArc{
			C:   append([]float64(nil), a.C.Value()...),
			L:   append([]float64(nil), a.L.Value()...),
			Hot: a.Hot,
		}
	}
	return out
}

// ValueArc is a plain-value arc embedding used for online answering.
type ValueArc struct {
	C, L []float64
	Hot  []float64
}

// Distances implements model.Interface: the score of every entity
// against the query (min over DNF disjuncts of arc distance plus group
// penalty), computed through the trig-cached fast path. It is safe to
// call concurrently with SetEntityAngles; see DistancesContext for the
// cancellable variant.
func (m *Model) Distances(n *query.Node) []float64 {
	m.rankMu.RLock()
	defer m.rankMu.RUnlock()
	d, _ := m.distancesLocked(nil, n)
	return d
}

// distancesLocked is the shared ranking path; callers must hold rankMu
// (read side suffices). A nil ctx disables cancellation checks, and the
// error is then always nil.
func (m *Model) distancesLocked(ctx context.Context, n *query.Node) ([]float64, error) {
	arcs := m.EmbedQuery(n)
	pre := make([]preArc, len(arcs))
	for i, a := range arcs {
		pre[i] = m.prepareArc(a)
	}
	return m.fastDistances(ctx, pre)
}

// distanceTo is the reference (slow) scoring path; the fast path in
// fast.go must agree with it, which the tests assert.
func (m *Model) distanceTo(e kg.EntityID, arcs []ValueArc) float64 {
	point := m.ent.Row(int(e))
	best := 0.0
	for i, a := range arcs {
		d := geometry.Distance(m.cfg.Rho, m.cfg.Eta, point, a.C, a.L) + m.groupPenalty(e, a.Hot)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// TopK returns the k entities closest to the query embedding, most
// likely answers first.
func (m *Model) TopK(n *query.Node, k int) []kg.EntityID {
	d := m.Distances(n)
	return lowestK(d, k)
}

// CandidatesPerNode embeds every variable (non-anchor) node of the query
// DAG and returns the top-k candidate entities for each — the candidate
// sets HaLk contributes to the subgraph-matching pruning of Sec. IV-D.
// Union nodes contribute their children's candidates.
func (m *Model) CandidatesPerNode(n *query.Node, k int) map[*query.Node][]kg.EntityID {
	out := make(map[*query.Node][]kg.EntityID)
	var walk func(node *query.Node)
	walk = func(node *query.Node) {
		if node.Op != query.OpAnchor && node.Op != query.OpUnion {
			out[node] = m.TopK(node, k)
		}
		for _, a := range node.Args {
			walk(a)
		}
	}
	walk(n)
	return out
}

func lowestK(d []float64, k int) []kg.EntityID {
	if k > len(d) {
		k = len(d)
	}
	idx := make([]kg.EntityID, len(d))
	for i := range idx {
		idx[i] = kg.EntityID(i)
	}
	// partial selection sort for small k
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if d[idx[j]] < d[idx[min]] {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	return idx[:k]
}
