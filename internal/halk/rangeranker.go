package halk

import (
	"fmt"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// RangeRanker hosts one contiguous slice [lo, hi) of the model's entity
// table behind a shard.Engine — the node-local half of the multi-node
// scatter-gather path. A halk-shard process builds one over the range it
// was assigned, scans it (optionally sub-sharded across local cores)
// for every remote scan request, and returns local top-K lists whose
// entity IDs are global (the engine snapshot is built with Source.Base),
// so the router can merge node results exactly like in-process shard
// heaps.
//
// Like ShardedRanker, the ranker serves versioned immutable snapshots:
// Refresh republishes the hosted slice after the model's entity table
// moves (a checkpoint hot-reload, an online embedding update), and
// in-flight scans finish on the snapshot they started with.
type RangeRanker struct {
	m      *Model
	eng    *shard.Engine
	lo, hi int
}

// NewRangeRanker builds a range-hosting engine over entities [lo, hi).
// opts.Shards sub-shards the hosted slice for local scan parallelism
// (values < 1 mean one local shard). The initial snapshot is published
// before returning.
func (m *Model) NewRangeRanker(lo, hi int, opts shard.Options) (*RangeRanker, error) {
	if n := m.graph.NumEntities(); lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("halk: invalid entity range [%d, %d) over %d entities", lo, hi, n)
	}
	eng := shard.NewEngine(m.shardParams(), opts)
	r := &RangeRanker{m: m, eng: eng, lo: lo, hi: hi}
	if err := r.Refresh(); err != nil {
		return nil, err
	}
	return r, nil
}

// Refresh publishes a fresh snapshot of the hosted slice if the model's
// entity version has moved past the engine's current snapshot. Safe to
// call concurrently with scanning; returns nil without work when
// already current.
func (r *RangeRanker) Refresh() error {
	return r.refresh(nil)
}

// RefreshDirty is Refresh with the delta-swap fast path: dirty lists
// every entity (by global ID) whose row changed since the last
// published snapshot, and the engine rebuilds only the local sub-shards
// containing one — dirty entities outside the hosted range leave every
// sub-shard shared. This is how ingest delta publication propagates
// through the multi-node path unchanged: each node folds the same dirty
// set against its own slice. Same contract as
// ShardedRanker.RefreshDirty.
func (r *RangeRanker) RefreshDirty(dirty []kg.EntityID) error {
	d := make([]int32, len(dirty))
	for i, e := range dirty {
		d[i] = int32(e)
	}
	return r.refresh(d)
}

func (r *RangeRanker) refresh(dirty []int32) error {
	ver := r.m.EntityVersion()
	if ver <= r.eng.Version() {
		return nil
	}
	d := r.m.cfg.Dim
	// Copy the slice under the ranking read-lock so no row is observed
	// half-written by a concurrent SetEntityAngles, and re-read the
	// version while still holding it (see ShardedRanker.Refresh).
	r.m.rankMu.RLock()
	angles := append([]float64(nil), r.m.ent.Data[r.lo*d:r.hi*d]...)
	newVer := r.m.EntityVersion()
	if dirty != nil && newVer != ver {
		// A racing update's rows are in the copy but not in the caller's
		// dirty set; fall back to a full rebuild for this publish.
		dirty = nil
	}
	ver = newVer
	r.m.rankMu.RUnlock()

	group := make([]int32, r.hi-r.lo)
	for e := r.lo; e < r.hi; e++ {
		group[e-r.lo] = int32(r.m.groups.GroupOf(kg.EntityID(e)))
	}
	return r.eng.Swap(shard.Source{Angles: angles, Group: group, Version: ver, Base: r.lo, Dirty: dirty})
}

// Engine exposes the underlying shard engine (the scan entry point for
// the node's HTTP frontend).
func (r *RangeRanker) Engine() *shard.Engine { return r.eng }

// Range reports the hosted global entity ID range [lo, hi).
func (r *RangeRanker) Range() (lo, hi int) { return r.lo, r.hi }

// Close drains the engine's in-flight scan goroutines.
func (r *RangeRanker) Close() { r.eng.Close() }

// ShardParams exports the model's scoring constants in the shard
// engine's form, so a frontend can prepare wire-shipped arcs
// (shard.PrepareArc) with exactly the constants the local engine scores
// with.
func (m *Model) ShardParams() shard.Params { return m.shardParams() }

// EmbedQueryLocked is EmbedQuery under the ranking read-lock: safe to
// call concurrently with SetEntityAngles and checkpoint hot-reloads.
// The cluster router and node query frontends embed through it.
func (m *Model) EmbedQueryLocked(n *query.Node) []ValueArc {
	m.rankMu.RLock()
	defer m.rankMu.RUnlock()
	return m.EmbedQuery(n)
}
