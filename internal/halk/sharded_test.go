package halk

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// TestShardedRankerMatchesTopK asserts the scatter-gather path returns
// exactly the same answers (IDs and order) as the single-threaded full
// scan, across shard counts that do and do not divide the entity count.
func TestShardedRankerMatchesTopK(t *testing.T) {
	m, ds := testModel(t, 61)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(62)))
	for _, shards := range []int{1, 2, 7} {
		r, err := m.NewShardedRanker(shard.Options{Shards: shards})
		if err != nil {
			t.Fatalf("NewShardedRanker(%d): %v", shards, err)
		}
		if r.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", r.NumShards(), shards)
		}
		for _, structure := range []string{"1p", "2i", "2u", "dp"} {
			q, ok := s.Sample(structure)
			if !ok {
				t.Fatalf("sampling %s failed", structure)
			}
			const k = 15
			want := m.TopK(q, k)
			got, err := r.RankTopK(context.Background(), q, k)
			if err != nil {
				t.Fatalf("shards=%d %s: RankTopK: %v", shards, structure, err)
			}
			if got.Partial {
				t.Fatalf("shards=%d %s: unexpected partial result", shards, structure)
			}
			if len(got.IDs) != len(want) {
				t.Fatalf("shards=%d %s: got %d answers, want %d", shards, structure, len(got.IDs), len(want))
			}
			for i := range want {
				if got.IDs[i] != want[i] {
					t.Fatalf("shards=%d %s: answer %d = %d, want %d", shards, structure, i, got.IDs[i], want[i])
				}
			}
			// Returned distances must be the exact full-scan distances.
			dist := m.Distances(q)
			for i, id := range got.IDs {
				if got.Dists[i] != dist[id] {
					t.Fatalf("shards=%d %s: dist[%d] = %v, want %v", shards, structure, i, got.Dists[i], dist[id])
				}
			}
		}
	}
}

// TestShardedRankerRefresh asserts Refresh picks up entity updates and
// that stale rankers keep serving the old snapshot until refreshed.
func TestShardedRankerRefresh(t *testing.T) {
	m, ds := testModel(t, 63)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(64)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling failed")
	}
	r, err := m.NewShardedRanker(shard.Options{Shards: 3})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	v0 := r.SnapshotVersion()
	if v0 != m.EntityVersion() {
		t.Fatalf("initial snapshot version %d != model entity version %d", v0, m.EntityVersion())
	}

	before, err := r.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("RankTopK: %v", err)
	}

	// Move the best answer far away; the un-refreshed ranker must keep
	// answering from its old snapshot.
	moved := before.IDs[0]
	angles := append([]float64(nil), m.EntityAngles(moved)...)
	for j := range angles {
		angles[j] += 2.5
	}
	if err := m.SetEntityAngles(moved, angles); err != nil {
		t.Fatalf("SetEntityAngles: %v", err)
	}
	stale, err := r.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("RankTopK (stale): %v", err)
	}
	if stale.Version != v0 {
		t.Fatalf("un-refreshed ranker served version %d, want %d", stale.Version, v0)
	}

	if err := r.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if r.SnapshotVersion() <= v0 {
		t.Fatalf("Refresh did not advance snapshot version past %d", v0)
	}
	after, err := r.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("RankTopK (refreshed): %v", err)
	}
	// The refreshed sharded ranking must again match the live full scan.
	want := m.TopK(q, 5)
	for i := range want {
		if after.IDs[i] != want[i] {
			t.Fatalf("refreshed answer %d = %d, want %d", i, after.IDs[i], want[i])
		}
	}
	// Refresh with no change is a no-op.
	v1 := r.SnapshotVersion()
	if err := r.Refresh(); err != nil {
		t.Fatalf("idempotent Refresh: %v", err)
	}
	if r.SnapshotVersion() != v1 {
		t.Fatal("Refresh without entity updates rebuilt the snapshot")
	}
}

// TestShardedRankerRefreshDirty asserts a delta publish driven by a
// fine-tune dirty set converges to exactly the same ranking as a full
// rebuild, with bit-identical distances.
func TestShardedRankerRefreshDirty(t *testing.T) {
	m, ds := testModel(t, 65)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(66)))
	q, ok := s.Sample("2i")
	if !ok {
		t.Fatal("sampling failed")
	}
	r, err := m.NewShardedRanker(shard.Options{Shards: 3})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	defer r.Close()
	v0 := r.SnapshotVersion()

	edge := pickNonEdge(t, m.Graph(), 9)
	res, err := m.FineTuneEdges([]kg.Triple{edge}, nil, FineTuneConfig{Seed: 5})
	if err != nil {
		t.Fatalf("FineTuneEdges: %v", err)
	}
	if len(res.DirtyEntities) == 0 {
		t.Fatal("fine-tune touched no entities")
	}
	if err := r.RefreshDirty(res.DirtyEntities); err != nil {
		t.Fatalf("RefreshDirty: %v", err)
	}
	if r.SnapshotVersion() <= v0 {
		t.Fatalf("RefreshDirty did not advance snapshot version past %d", v0)
	}

	const k = 10
	want := m.TopK(q, k)
	got, err := r.RankTopK(context.Background(), q, k)
	if err != nil {
		t.Fatalf("RankTopK: %v", err)
	}
	dist := m.Distances(q)
	for i := range want {
		if got.IDs[i] != want[i] {
			t.Fatalf("answer %d = %d, want %d", i, got.IDs[i], want[i])
		}
		if math.Float64bits(got.Dists[i]) != math.Float64bits(dist[want[i]]) {
			t.Fatalf("dist[%d] = %v, want bit-identical %v", i, got.Dists[i], dist[want[i]])
		}
	}

	// A second delta publish with no version bump is a no-op.
	v1 := r.SnapshotVersion()
	if err := r.RefreshDirty(res.DirtyEntities); err != nil {
		t.Fatalf("idempotent RefreshDirty: %v", err)
	}
	if r.SnapshotVersion() != v1 {
		t.Fatal("RefreshDirty without entity updates rebuilt the snapshot")
	}
}
