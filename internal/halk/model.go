package halk

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
)

// Arc is a query embedding on the tape: per-dimension center angles C
// (∈ [0, 2π)) and arclengths L (∈ [0, 2πρ]), plus the non-differentiable
// group multi-hot vector carried alongside (Sec. II-A / Eq. 10).
type Arc struct {
	C   autodiff.V
	L   autodiff.V
	Hot []float64
}

// Model is the HaLk arc-embedding model over one training graph.
type Model struct {
	cfg    Config
	graph  *kg.Graph
	groups *kg.Grouping
	params *autodiff.Params

	ent  *autodiff.Tensor // entity point angles, n × d
	relC *autodiff.Tensor // relation rotation angles, m × d
	relL *autodiff.Tensor // relation arclength increments, m × d

	projC, projA *autodiff.MLP // Eq. 2: center / arc-angle heads on [A_S ‖ A_E]
	projV3       *autodiff.MLP // ablation V3: decoupled length head

	interAtt             *autodiff.MLP    // Eq. 10 attention scores
	interInner, interOut *autodiff.MLP    // Eq. 12 DeepSets
	diffAtt              *autodiff.MLP    // Eq. 7 attention scores
	diffKappa            *autodiff.Tensor // Eq. 7 κ weights: row 0 = κ_1, row 1 = κ_rest
	diffInner, diffOut   *autodiff.MLP    // Eq. 9 DeepSets on [δ_c ‖ δ_l]
	negT1, negT2         *autodiff.MLP    // Eq. 14 intermediate heads
	negC, negA           *autodiff.MLP    // Eq. 14 output heads

	trig trigCache // entity cos/sin memo for online ranking

	// entVersion is the monotonic version of the entity table: it starts
	// at 1 and is bumped by SetEntityAngles, by every training-loss build
	// (the steps that mutate embeddings), and by MarkEntitiesUpdated.
	// The trig cache and the sharded ranking engine compare it instead of
	// fingerprinting the table, so staleness detection is O(1) per query.
	entVersion atomic.Uint64

	// rankMu serialises online ranking (read side) against the
	// thread-safe entity-table updates of SetEntityAngles (write side).
	// The training loop does not take it — training and serving on the
	// same Model instance still need external coordination.
	rankMu sync.RWMutex
}

var _ model.Interface = (*Model)(nil)

// New builds a HaLk model for the given training graph.
func New(g *kg.Graph, cfg Config) *Model {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden

	m := &Model{
		cfg:    cfg,
		graph:  g,
		groups: kg.NewGrouping(g, cfg.NumGroups, rng),
		params: p,

		ent:  p.NewUniform("entity", g.NumEntities(), d, 0, geometry.TwoPi, rng),
		relC: p.NewUniform("relation.center", g.NumRelations(), d, 0, geometry.TwoPi, rng),
		relL: p.NewUniform("relation.length", g.NumRelations(), d, 0, 0.5*cfg.Rho, rng),

		projC:  autodiff.NewMLP(p, "proj.center", []int{2 * d, h, d}, rng),
		projA:  autodiff.NewMLP(p, "proj.angle", []int{2 * d, h, d}, rng),
		projV3: autodiff.NewMLP(p, "proj.v3len", []int{d, h, d}, rng),

		interAtt:   autodiff.NewMLP(p, "inter.att", []int{2 * d, h, d}, rng),
		interInner: autodiff.NewMLP(p, "inter.inner", []int{2 * d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),

		diffAtt:   autodiff.NewMLP(p, "diff.att", []int{2 * d, h, d}, rng),
		diffKappa: p.NewUniform("diff.kappa", 2, d, 0.5, 1.5, rng),
		diffInner: autodiff.NewMLP(p, "diff.inner", []int{2 * d, h}, rng),
		diffOut:   autodiff.NewMLP(p, "diff.out", []int{h, d}, rng),

		negT1: autodiff.NewMLP(p, "neg.t1", []int{d, h}, rng),
		negT2: autodiff.NewMLP(p, "neg.t2", []int{d, h}, rng),
		negC:  autodiff.NewMLP(p, "neg.center", []int{2 * h, d}, rng),
		negA:  autodiff.NewMLP(p, "neg.angle", []int{2 * h, d}, rng),
	}
	// Start the decoupled (V3) length head small: g(-2) ≈ 0.37 rad, so
	// cold-start arcs do not cover half the circle. The full model's
	// length head is residual around the rotated length and needs no
	// bias steering.
	m.projV3.SetOutputBias(-2)
	m.entVersion.Store(1)
	return m
}

// EntityVersion returns the monotonic version of the entity table; any
// change to entity embeddings is preceded or followed by a bump, so
// equal versions imply equal tables. Consumers (trig cache, sharded
// engine snapshots, serving answer caches) compare versions instead of
// hashing the table.
func (m *Model) EntityVersion() uint64 { return m.entVersion.Load() }

// MarkEntitiesUpdated bumps the entity version after an out-of-band
// mutation of the entity table (e.g. loading parameters in place, or a
// test poking rows directly). SetEntityAngles and the training loss
// bump it automatically.
func (m *Model) MarkEntitiesUpdated() { m.entVersion.Add(1) }

// Name implements model.Interface; ablation variants report their
// Table V name.
func (m *Model) Name() string { return m.cfg.Variant.String() }

// Params implements model.Interface.
func (m *Model) Params() *autodiff.Params { return m.params }

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Graph returns the training graph the model was built on.
func (m *Model) Graph() *kg.Graph { return m.graph }

// Grouping exposes the random node grouping (used by tests).
func (m *Model) Grouping() *kg.Grouping { return m.groups }

// Supports implements model.Interface: HaLk supports the full operator
// set, hence every structure.
func (m *Model) Supports(string) bool { return true }

// g applies the range regulator of Eq. 3: [g(x)]_i = π·tanh(λ·x_i) + π,
// mapping ℝ into (0, 2π).
func (m *Model) g(t *autodiff.Tape, x autodiff.V) autodiff.V {
	return t.AddScalar(t.Scale(t.Tanh(t.Scale(x, m.cfg.Lambda)), mathPi), mathPi)
}

// centerCorrectionAmp bounds the residual center correction (radians).
var centerCorrectionAmp = mathPi

// gResidual is the zero-centered counterpart of g: amp·tanh(λ·x), a
// bounded correction added on top of an identity-carrying term.
func (m *Model) gResidual(t *autodiff.Tape, x autodiff.V) autodiff.V {
	return t.Scale(t.Tanh(t.Scale(x, m.cfg.Lambda)), centerCorrectionAmp)
}

// clampAngle regulates an arc angle into [0, 2π] with exact identity in
// range: max(0, min(x, 2π)).
func (m *Model) clampAngle(t *autodiff.Tape, x autodiff.V) autodiff.V {
	two := make([]float64, x.Len())
	for i := range two {
		two[i] = geometry.TwoPi
	}
	return t.Relu(t.Min(x, t.Const(two)))
}

const mathPi = 3.141592653589793

// startEnd computes the start and end points of an arc (Definitions 1
// and 2): A_S = A_c − A_l/(2ρ), A_E = A_c + A_l/(2ρ).
func (m *Model) startEnd(t *autodiff.Tape, c, l autodiff.V) (s, e autodiff.V) {
	half := t.Scale(l, 1/(2*m.cfg.Rho))
	return t.Sub(c, half), t.Add(c, half)
}

// EntityAngles returns the current point embedding (angle vector) of e.
// The slice aliases model parameters and must not be modified.
func (m *Model) EntityAngles(e kg.EntityID) []float64 { return m.ent.Row(int(e)) }
