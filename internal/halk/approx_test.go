package halk

import (
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestTopKApproxOverlapsExact(t *testing.T) {
	m, ds := testModel(t, 71)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(72)))
	ai := m.NewAnswerIndex(ann.DefaultConfig(73))
	for _, structure := range []string{"1p", "2i", "2u"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		exact := m.TopK(q, 10)
		approx := ai.TopKApprox(q, 10)
		if len(approx) == 0 {
			t.Fatalf("%s: empty approximate answer set", structure)
		}
		// The approximate ranking must be internally consistent: scored
		// ascending by the same distance function.
		d := m.Distances(q)
		for i := 1; i < len(approx); i++ {
			if d[approx[i-1]] > d[approx[i]]+1e-12 {
				t.Fatalf("%s: approximate ranking out of order", structure)
			}
		}
		// And it should recover a decent share of the exact top-10
		// (LSH is allowed to miss some).
		exactSet := make(map[kg.EntityID]bool, len(exact))
		for _, e := range exact {
			exactSet[e] = true
		}
		hit := 0
		for _, e := range approx {
			if exactSet[e] {
				hit++
			}
		}
		if hit < 3 {
			t.Errorf("%s: only %d/10 of exact top-10 recovered", structure, hit)
		}
	}
}

func TestAnswerIndexPoolSmallerThanUniverse(t *testing.T) {
	m, ds := testModel(t, 74)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(75)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling failed")
	}
	// A fine-grained index must prune a meaningful share of entities.
	ai := m.NewAnswerIndex(ann.Config{Bands: 4, BucketsPerBand: 16, Seed: 76})
	pool := ai.PoolSize(q)
	if pool <= 0 {
		t.Fatal("empty candidate pool")
	}
	if pool >= ds.Train.NumEntities() {
		t.Errorf("pool %d does not prune the universe of %d", pool, ds.Train.NumEntities())
	}
}
