package halk

import (
	"math"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// AnswerIndex accelerates the online answer-identification phase with the
// angular LSH index of Sec. III-H: instead of ranking every entity, a
// query probes the index around its arc centers and ranks only the
// returned candidate pool. Build it after training — the index snapshots
// the entity embeddings, so rebuild it if the model trains further.
type AnswerIndex struct {
	m  *Model
	ix *ann.Index
}

// NewAnswerIndex snapshots the model's entity embeddings into an LSH
// index with the given configuration.
func (m *Model) NewAnswerIndex(cfg ann.Config) *AnswerIndex {
	points := make([][]float64, m.graph.NumEntities())
	for e := range points {
		points[e] = append([]float64(nil), m.ent.Row(e)...)
	}
	return &AnswerIndex{m: m, ix: ann.New(points, cfg)}
}

// TopKApprox returns up to k likely answers: the query's arc centers
// probe the index with a radius covering the arc span plus a slack band,
// the candidate pool is ranked exactly with the model's distance, and
// the best k are returned. Compared with Model.TopK it trades a little
// recall for a sublinear candidate count.
func (ai *AnswerIndex) TopKApprox(n *query.Node, k int) []kg.EntityID {
	ai.m.rankMu.RLock()
	defer ai.m.rankMu.RUnlock()
	arcs := ai.m.EmbedQuery(n)
	pool := make(map[kg.EntityID]struct{})
	for _, a := range arcs {
		// Probe radius: half the widest arc angle plus slack.
		radius := 0.3
		for j := range a.L {
			if half := a.L[j] / (2 * ai.m.cfg.Rho) / 2; half > radius {
				radius = half
			}
		}
		for _, e := range ai.ix.Candidates(a.C, radius) {
			pool[e] = struct{}{}
		}
	}
	pre := make([]preArc, len(arcs))
	for i, a := range arcs {
		pre[i] = ai.m.prepareArc(a)
	}
	type scored struct {
		e kg.EntityID
		d float64
	}
	ranked := make([]scored, 0, len(pool))
	for e := range pool {
		ranked = append(ranked, scored{e, ai.m.scoreOne(e, pre)})
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	// partial selection of the k smallest
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].d < ranked[min].d ||
				(ranked[j].d == ranked[min].d && ranked[j].e < ranked[min].e) {
				min = j
			}
		}
		ranked[i], ranked[min] = ranked[min], ranked[i]
	}
	out := make([]kg.EntityID, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].e
	}
	return out
}

// PoolSize reports how many candidates the index would return for the
// query — the work saved versus ranking all entities.
func (ai *AnswerIndex) PoolSize(n *query.Node) int {
	ai.m.rankMu.RLock()
	defer ai.m.rankMu.RUnlock()
	arcs := ai.m.EmbedQuery(n)
	pool := make(map[kg.EntityID]struct{})
	for _, a := range arcs {
		for _, e := range ai.ix.Candidates(a.C, 0.3) {
			pool[e] = struct{}{}
		}
	}
	return len(pool)
}

// scoreOne computes the fast-path distance of one entity against the
// prepared arcs.
func (m *Model) scoreOne(e kg.EntityID, arcs []preArc) float64 {
	d := m.cfg.Dim
	cosT, sinT := m.trig.tables(m.ent.Data, m.EntityVersion())
	base := int(e) * d
	best := math.Inf(1)
	for ai := range arcs {
		pa := &arcs[ai]
		sum := 0.0
		for j := 0; j < d; j++ {
			cp, sp := cosT[base+j], sinT[base+j]
			cs := cp*pa.CosS[j] + sp*pa.SinS[j]
			ce := cp*pa.CosE[j] + sp*pa.SinE[j]
			cc := cp*pa.CosC[j] + sp*pa.SinC[j]
			do := halfSin(math.Max(cs, ce))
			di := math.Min(halfSin(cc), pa.SH[j])
			sum += 2 * m.cfg.Rho * (do + m.cfg.Eta*di)
		}
		if s := sum + m.groupPenalty(e, pa.Hot); s < best {
			best = s
		}
	}
	return best
}
