package halk

import (
	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// Embed builds the arc embedding of a union-free query tree on the tape
// (Alg. 1 lines 5–15). Union queries must be rewritten with query.DNF
// first; Embed panics on a union node, because HaLk's union operator is
// exact and non-parametric (Sec. III-F).
func (m *Model) Embed(t *autodiff.Tape, n *query.Node) Arc {
	switch n.Op {
	case query.OpAnchor:
		return Arc{
			C:   m.ent.Leaf(t, int(n.Anchor)),
			L:   t.Const(make([]float64, m.cfg.Dim)),
			Hot: m.groups.OneHot(n.Anchor),
		}
	case query.OpProjection:
		return m.project(t, m.Embed(t, n.Args[0]), n)
	case query.OpIntersection:
		return m.intersect(t, m.embedAll(t, n.Args))
	case query.OpDifference:
		return m.difference(t, m.embedAll(t, n.Args))
	case query.OpNegation:
		return m.negate(t, m.Embed(t, n.Args[0]))
	case query.OpUnion:
		panic("halk: Embed on union node; rewrite with query.DNF first")
	}
	panic("halk: Embed: unknown op")
}

func (m *Model) embedAll(t *autodiff.Tape, ns []*query.Node) []Arc {
	arcs := make([]Arc, len(ns))
	for i, n := range ns {
		arcs[i] = m.Embed(t, n)
	}
	return arcs
}

// project implements the projection operator. The relation first rotates
// and stretches the input arc (Ã_c = A_c + A_{r,c}, Ã_l = A_l + A_{r,l});
// the start/end combination representation then jointly refines center
// and cardinality (Eq. 2), closing the "semantic gap" of decoupled
// models. Ablation V3 keeps the rotation for the center but learns the
// length from the length alone, reproducing NewLook's decoupling.
func (m *Model) project(t *autodiff.Tape, in Arc, n *query.Node) Arc {
	rc := m.relC.Leaf(t, int(n.Rel))
	rl := m.relL.Leaf(t, int(n.Rel))
	tc := t.Add(in.C, rc)
	tl := t.Add(in.L, rl)
	hot := m.groups.ProjectHot(in.Hot, n.Rel)

	if m.cfg.Variant == V3NewLookProj {
		alpha := m.g(t, m.projV3.Forward(t, t.Scale(tl, 1/m.cfg.Rho)))
		return Arc{C: tc, L: t.Scale(alpha, m.cfg.Rho), Hot: hot}
	}

	s, e := m.startEnd(t, tc, tl)
	cat := t.Concat(s, e)
	// The relation rotation carries the identity component of the
	// center; the coupled start/end MLP contributes a bounded residual
	// correction (Eq. 2 with g re-centered on the rotation — matching
	// how rotation-backbone projections are trained in practice, where
	// the head refines rather than re-derives the rotated center).
	c := t.Add(tc, m.gResidual(t, m.projC.Forward(t, cat)))
	alpha := m.clampAngle(t, t.Add(t.Scale(tl, 1/m.cfg.Rho),
		m.gResidual(t, m.projA.Forward(t, t.Detach(cat)))))
	return Arc{C: c, L: t.Scale(alpha, m.cfg.Rho), Hot: hot}
}

// semanticCenter computes the attention-weighted semantic average center
// of Eqs. 4–6: input centers are mapped to rectangular coordinates,
// averaged with the given elementwise weights, and mapped back to a polar
// angle with Reg (atan2 + wrap), which sidesteps the periodicity of raw
// angle averaging.
func (m *Model) semanticCenter(t *autodiff.Tape, arcs []Arc, w []autodiff.V) autodiff.V {
	rho := m.cfg.Rho
	var xsa, ysa autodiff.V
	for i, a := range arcs {
		x := t.Mul(w[i], t.Scale(t.Cos(a.C), rho))
		y := t.Mul(w[i], t.Scale(t.Sin(a.C), rho))
		if i == 0 {
			xsa, ysa = x, y
		} else {
			xsa, ysa = t.Add(xsa, x), t.Add(ysa, y)
		}
	}
	ang := t.Atan2(ysa, xsa) // ∈ (-π, π], quadrant-correct (Reg)
	// Wrap into [0, 2π): a piecewise-constant shift, so the gradient is
	// untouched.
	shift := make([]float64, ang.Len())
	for j, v := range ang.Value() {
		if v < 0 {
			shift[j] = geometry.TwoPi
		}
	}
	return t.Add(ang, t.Const(shift))
}

// attScores runs the attention MLP of Eq. 7 / Eq. 10 on the start/end
// combination representation of each arc.
func attScores(t *autodiff.Tape, m *Model, mlp *autodiff.MLP, arcs []Arc) []autodiff.V {
	out := make([]autodiff.V, len(arcs))
	for i, a := range arcs {
		s, e := m.startEnd(t, a.C, a.L)
		out[i] = mlp.Forward(t, t.Concat(s, e))
	}
	return out
}

// intersect implements the intersection operator (Eqs. 10–12): semantic
// average center with group-similarity-scaled attention, and arclengths
// bounded by the smallest input (cardinality constraint) scaled by a
// permutation-invariant DeepSets factor.
func (m *Model) intersect(t *autodiff.Tape, arcs []Arc) Arc {
	hots := make([][]float64, len(arcs))
	for i, a := range arcs {
		hots[i] = a.Hot
	}
	hotT := kg.IntersectHot(hots...)

	scores := attScores(t, m, m.interAtt, arcs)
	for i, a := range arcs {
		z := 1 / (l1diff(a.Hot, hotT) + 1) // z_i of Eq. 10
		scores[i] = t.Scale(scores[i], z)
	}
	w := t.SoftmaxStack(scores)
	c := m.semanticCenter(t, arcs, w)

	// Eq. 11–12: A_α = min_i(A_{i,α}) ⊙ σ(DeepSets({A_j})).
	alphas := make([]autodiff.V, len(arcs))
	inners := make([]autodiff.V, len(arcs))
	for i, a := range arcs {
		alphas[i] = t.Scale(a.L, 1/m.cfg.Rho)
		s, e := m.startEnd(t, a.C, a.L)
		inners[i] = m.interInner.Forward(t, t.Concat(s, e))
	}
	ds := m.interOut.Forward(t, t.MeanStack(inners))
	alpha := t.Mul(t.MinStack(alphas), t.Sigmoid(ds))
	return Arc{C: c, L: t.Scale(alpha, m.cfg.Rho), Hot: hotT}
}

// difference implements the difference operator (Eqs. 4–9). The first
// input is the minuend; κ_1 vs κ_rest hard-codes the asymmetry of the
// input order while keeping permutation invariance among the
// subtrahends. The arclength applies the cardinality constraint
// A_l = A_{1,l} ⊙ σ(DeepSets({A_1 − A_j})) with chord-length overlap
// measurement δ_c = 2ρ·sin((A_{1,c} − A_{j,c})/2).
//
// Ablation V1 reproduces NewLook's overlap: the raw (periodicity-blind)
// angle difference replaces the chord, and the output length is learned
// freely instead of being bounded by the minuend.
func (m *Model) difference(t *autodiff.Tape, arcs []Arc) Arc {
	kappa1 := m.diffKappa.Leaf(t, 0)
	kappaR := m.diffKappa.Leaf(t, 1)
	scores := attScores(t, m, m.diffAtt, arcs)
	for i := range scores {
		if i == 0 {
			scores[i] = t.Mul(kappa1, scores[i])
		} else {
			scores[i] = t.Mul(kappaR, scores[i])
		}
	}
	w := t.SoftmaxStack(scores)
	c := m.semanticCenter(t, arcs, w)

	first := arcs[0]
	inners := make([]autodiff.V, 0, len(arcs)-1)
	for _, a := range arcs[1:] {
		var dc autodiff.V
		if m.cfg.Variant == V1NewLookDiff {
			dc = t.Sub(first.C, a.C) // raw-value overlap, periodicity ignored
		} else {
			dc = t.Scale(t.Sin(t.Scale(t.Sub(first.C, a.C), 0.5)), 2*m.cfg.Rho)
		}
		dl := t.Sub(first.L, a.L)
		inners = append(inners, m.diffInner.Forward(t, t.Concat(dc, dl)))
	}
	ds := m.diffOut.Forward(t, t.MeanStack(inners))

	var l autodiff.V
	if m.cfg.Variant == V1NewLookDiff {
		// No cardinality constraint: free arclength in (0, 2πρ).
		l = t.Scale(m.g(t, ds), m.cfg.Rho)
	} else {
		l = t.Mul(first.L, t.Sigmoid(ds))
	}
	return Arc{C: c, L: l, Hot: first.Hot}
}

// negate implements the negation operator (Eqs. 13–14): the linear
// complement (center rotated by π, arclength complemented to the full
// circle) provides the initial transformation direction, and a non-linear
// network refines it, correcting cascading errors from earlier
// sub-queries. Ablation V2 stops at the linear complement, the
// assumption shared by BetaE, ConE and MLPMix.
func (m *Model) negate(t *autodiff.Tape, in Arc) Arc {
	// Piecewise-constant ±π shift per dimension (Eq. 13); as a constant
	// offset it passes gradients through unchanged.
	shift := make([]float64, in.C.Len())
	for j, v := range in.C.Value() {
		if geometry.Wrap(v) < mathPi {
			shift[j] = mathPi
		} else {
			shift[j] = -mathPi
		}
	}
	tc := t.Add(in.C, t.Const(shift))
	tl := t.AddScalar(t.Neg(in.L), geometry.TwoPi*m.cfg.Rho)
	hot := complementHot(in.Hot)

	if m.cfg.Variant == V2LinearNeg {
		return Arc{C: tc, L: tl, Hot: hot}
	}

	talpha := t.Scale(tl, 1/m.cfg.Rho)
	t1 := m.negT1.Forward(t, tc)
	t2 := m.negT2.Forward(t, talpha)
	cat := t.Concat(t1, t2)
	// As in projection, the linear complement carries the identity and
	// the joint network contributes the non-linear correction.
	c := t.Add(tc, m.gResidual(t, m.negC.Forward(t, cat)))
	alpha := m.clampAngle(t, t.Add(talpha, m.gResidual(t, m.negA.Forward(t, t.Detach(cat)))))
	return Arc{C: c, L: t.Scale(alpha, m.cfg.Rho), Hot: hot}
}

func complementHot(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		c := 1 - v
		if c < 0 {
			c = 0
		}
		out[i] = c
	}
	return out
}

func l1diff(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
