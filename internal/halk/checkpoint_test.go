package halk

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// TestCheckpointRoundTripPreservesTopK saves a model, reloads it through
// the header-driven lookup, and asserts the reloaded model ranks
// identically: same TopK output, entity for entity, on several
// structures. This is the contract halk-serve relies on — a served
// checkpoint must answer exactly like the process that wrote it.
func TestCheckpointRoundTripPreservesTopK(t *testing.T) {
	m, ds := testModel(t, 49)

	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf, "FB237", 49); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	m2, hdr, err := LoadCheckpoint(&buf, func(hdr CheckpointHeader) (*kg.Graph, error) {
		if hdr.Dataset != "FB237" || hdr.Seed != 49 {
			t.Fatalf("header = %q/%d, want FB237/49", hdr.Dataset, hdr.Seed)
		}
		return ds.Train, nil
	})
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if hdr.Config.Dim != m.cfg.Dim {
		t.Fatalf("reloaded dim %d != %d", hdr.Config.Dim, m.cfg.Dim)
	}

	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(50)))
	for _, structure := range []string{"1p", "2p", "2i", "2u", "2in"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		want := m.TopK(q, 20)
		got := m2.TopK(q, 20)
		if len(got) != len(want) {
			t.Fatalf("%s: TopK lengths differ: %d vs %d", structure, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: TopK[%d] = %d after reload, want %d", structure, i, got[i], want[i])
			}
		}
	}
}
