package halk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// TestCheckpointRoundTripPreservesTopK saves a model, reloads it through
// the header-driven lookup, and asserts the reloaded model ranks
// identically: same TopK output, entity for entity, on several
// structures. This is the contract halk-serve relies on — a served
// checkpoint must answer exactly like the process that wrote it.
func TestCheckpointRoundTripPreservesTopK(t *testing.T) {
	m, ds := testModel(t, 49)

	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf, "FB237", 49); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	m2, hdr, err := LoadCheckpoint(&buf, func(hdr CheckpointHeader) (*kg.Graph, error) {
		if hdr.Dataset != "FB237" || hdr.Seed != 49 {
			t.Fatalf("header = %q/%d, want FB237/49", hdr.Dataset, hdr.Seed)
		}
		return ds.Train, nil
	})
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if hdr.Config.Dim != m.cfg.Dim {
		t.Fatalf("reloaded dim %d != %d", hdr.Config.Dim, m.cfg.Dim)
	}

	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(50)))
	for _, structure := range []string{"1p", "2p", "2i", "2u", "2in"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		want := m.TopK(q, 20)
		got := m2.TopK(q, 20)
		if len(got) != len(want) {
			t.Fatalf("%s: TopK lengths differ: %d vs %d", structure, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: TopK[%d] = %d after reload, want %d", structure, i, got[i], want[i])
			}
		}
	}
}

// TestLoadCheckpointFileAdversarial feeds LoadCheckpointFile every kind
// of bad input the serving and resume paths must survive: empty files,
// truncation at assorted offsets, bit flips, and a header naming a
// different dataset. Each must produce a typed error and a nil model —
// never a half-initialized one.
func TestLoadCheckpointFileAdversarial(t *testing.T) {
	m, ds := testModel(t, 49)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	if err := m.WriteCheckpointFile(good, "FB237", 49); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(hdr CheckpointHeader) (*kg.Graph, error) {
		if hdr.Dataset != "FB237" || hdr.Seed != 49 {
			return nil, fmt.Errorf("%w: trained on %s/%d, serving FB237/49",
				ErrCheckpointMismatch, hdr.Dataset, hdr.Seed)
		}
		return ds.Train, nil
	}

	// Sanity: the pristine file loads.
	mm, info, err := LoadCheckpointFile(good, lookup)
	if err != nil || mm == nil {
		t.Fatalf("pristine load failed: %v", err)
	}
	if info.Legacy || info.Step != -1 {
		t.Fatalf("pristine info = %+v, want non-legacy serving checkpoint", info)
	}

	typedErr := func(err error) bool {
		return ckpt.IsCorrupt(err) ||
			errors.Is(err, ErrCheckpointCorrupt) ||
			errors.Is(err, ErrCheckpointMismatch)
	}

	t.Run("empty", func(t *testing.T) {
		p := filepath.Join(dir, "empty.ckpt")
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		mm, _, err := LoadCheckpointFile(p, lookup)
		if mm != nil || err == nil || !typedErr(err) {
			t.Fatalf("empty file: model=%v err=%v", mm, err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 4, 11, 12, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
			p := filepath.Join(dir, "trunc.ckpt")
			if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			mm, _, err := LoadCheckpointFile(p, lookup)
			if mm != nil || err == nil || !typedErr(err) {
				t.Fatalf("cut at %d: model=%v err=%v", cut, mm, err)
			}
		}
	})

	t.Run("bit-flipped", func(t *testing.T) {
		for _, off := range []int{0, 9, 20, len(raw) / 2, len(raw) - 3} {
			flipped := append([]byte(nil), raw...)
			flipped[off] ^= 0x40
			p := filepath.Join(dir, "flip.ckpt")
			if err := os.WriteFile(p, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			mm, _, err := LoadCheckpointFile(p, lookup)
			if mm != nil || err == nil || !typedErr(err) {
				t.Fatalf("flip at %d: model=%v err=%v", off, mm, err)
			}
		}
	})

	t.Run("wrong-dataset", func(t *testing.T) {
		p := filepath.Join(dir, "other.ckpt")
		if err := m.WriteCheckpointFile(p, "NELL", 3); err != nil {
			t.Fatal(err)
		}
		mm, _, err := LoadCheckpointFile(p, lookup)
		if mm != nil || !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("wrong dataset: model=%v err=%v", mm, err)
		}
	})

	t.Run("legacy-bare-gob", func(t *testing.T) {
		p := filepath.Join(dir, "legacy.ckpt")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SaveCheckpoint(f, "FB237", 49); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		mm, info, err := LoadCheckpointFile(p, lookup)
		if err != nil || mm == nil {
			t.Fatalf("legacy load failed: %v", err)
		}
		if !info.Legacy {
			t.Fatalf("info.Legacy = false for bare-gob file")
		}
	})
}

// TestReloadFromFile covers the serving hot-swap: a matching checkpoint
// replaces the live parameters and bumps the entity version; corrupt or
// mismatched files change nothing.
func TestReloadFromFile(t *testing.T) {
	m, _ := testModel(t, 49)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	if err := m.WriteCheckpointFile(path, "FB237", 49); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	var saved bytes.Buffer
	if err := m.Params().Save(&saved); err != nil {
		t.Fatal(err)
	}

	// Perturb the live parameters, then reload: the saved values must
	// come back and the entity version must advance.
	ent := m.Params().Get("entity")
	if ent == nil {
		t.Fatal("entity tensor not registered")
	}
	before := m.EntityVersion()
	ent.Data[0] += 1.5
	if _, err := m.ReloadFromFile(path, "FB237", 49); err != nil {
		t.Fatalf("ReloadFromFile: %v", err)
	}
	if m.EntityVersion() == before {
		t.Fatalf("entity version did not advance on reload")
	}
	var after bytes.Buffer
	if err := m.Params().Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved.Bytes(), after.Bytes()) {
		t.Fatalf("parameters not restored by reload")
	}

	// Mismatched identity: typed error, parameters untouched.
	ent.Data[0] += 2.5
	var dirty bytes.Buffer
	if err := m.Params().Save(&dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReloadFromFile(path, "NELL", 49); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong dataset reload: err=%v", err)
	}
	if _, err := m.ReloadFromFile(path, "FB237", 50); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong seed reload: err=%v", err)
	}

	// Corrupt file: typed error, parameters untouched.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReloadFromFile(bad, "FB237", 49); err == nil || !ckpt.IsCorrupt(err) {
		t.Fatalf("torn reload: err=%v", err)
	}
	var still bytes.Buffer
	if err := m.Params().Save(&still); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dirty.Bytes(), still.Bytes()) {
		t.Fatalf("failed reload modified live parameters")
	}
}
