package halk

import (
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

func testConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Dim = 8
	cfg.Hidden = 16
	cfg.NumGroups = 4
	return cfg
}

func testModel(t *testing.T, seed int64) (*Model, *kg.Dataset) {
	t.Helper()
	ds := kg.SynthFB237(seed)
	return New(ds.Train, testConfig(seed)), ds
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{
		Full: "HaLk", V1NewLookDiff: "HaLk-V1", V2LinearNeg: "HaLk-V2", V3NewLookProj: "HaLk-V3",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("Variant %d = %q, want %q", int(v), v.String(), name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.Eta = 1 },
		func(c *Config) { c.Gamma = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}

// arcRangesOK checks the closed-form range invariants of an embedded arc:
// centers finite, lengths within [0, 2πρ].
func arcRangesOK(t *testing.T, name string, a Arc, rho float64) {
	t.Helper()
	for j, c := range a.C.Value() {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("%s: center[%d] = %g", name, j, c)
		}
	}
	for j, l := range a.L.Value() {
		if math.IsNaN(l) || l < -1e-9 || l > geometry.TwoPi*rho+1e-9 {
			t.Fatalf("%s: length[%d] = %g out of [0, 2πρ]", name, j, l)
		}
	}
}

func TestEmbedAllStructures(t *testing.T) {
	m, ds := testModel(t, 1)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(2)))
	for _, name := range query.StructureNames() {
		q, ok := s.Sample(name)
		if !ok {
			t.Fatalf("%s: sampling failed", name)
		}
		tape := autodiff.NewTape()
		for _, d := range query.DNF(q) {
			arc := m.Embed(tape, d)
			arcRangesOK(t, name, arc, m.cfg.Rho)
			if len(arc.Hot) != m.cfg.NumGroups {
				t.Fatalf("%s: hot vector has %d entries, want %d", name, len(arc.Hot), m.cfg.NumGroups)
			}
		}
	}
}

func TestEmbedPanicsOnUnion(t *testing.T) {
	m, _ := testModel(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for union node")
		}
	}()
	u := query.NewUnion(
		query.NewProjection(0, query.NewAnchor(0)),
		query.NewProjection(0, query.NewAnchor(1)),
	)
	m.Embed(autodiff.NewTape(), u)
}

func TestAnchorArcHasZeroLength(t *testing.T) {
	m, _ := testModel(t, 3)
	tape := autodiff.NewTape()
	arc := m.Embed(tape, query.NewAnchor(5))
	for _, l := range arc.L.Value() {
		if l != 0 {
			t.Fatal("anchor arclength must be 0 (an entity is a point)")
		}
	}
	want := m.EntityAngles(5)
	for j, c := range arc.C.Value() {
		if c != want[j] {
			t.Fatal("anchor center must equal the entity point embedding")
		}
	}
}

func TestLinearNegationIsExactComplement(t *testing.T) {
	cfg := testConfig(4)
	cfg.Variant = V2LinearNeg
	ds := kg.SynthFB237(4)
	m := New(ds.Train, cfg)
	tape := autodiff.NewTape()
	in := m.Embed(tape, query.NewProjection(0, query.NewAnchor(1)))
	out := m.negate(tape, in)
	for j := range in.C.Value() {
		// centers must be antipodal
		d := math.Abs(geometry.AngDiff(in.C.Value()[j], out.C.Value()[j]))
		if math.Abs(d-math.Pi) > 1e-9 {
			t.Fatalf("dim %d: centers not antipodal (Δ=%g)", j, d)
		}
		// lengths must complement to the full circle
		sum := in.L.Value()[j] + out.L.Value()[j]
		if math.Abs(sum-geometry.TwoPi*m.cfg.Rho) > 1e-9 {
			t.Fatalf("dim %d: lengths sum to %g, want 2πρ", j, sum)
		}
	}
}

func TestDifferenceCardinalityConstraint(t *testing.T) {
	// Full HaLk: |result| <= |minuend| per dimension (Eq. 8).
	m, ds := testModel(t, 5)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(6)))
	q, ok := s.Sample("2d")
	if !ok {
		t.Fatal("sampling 2d failed")
	}
	tape := autodiff.NewTape()
	minuend := m.Embed(tape, q.Args[0])
	result := m.Embed(tape, q)
	for j := range result.L.Value() {
		if result.L.Value()[j] > minuend.L.Value()[j]+1e-9 {
			t.Fatalf("dim %d: result length %g exceeds minuend %g",
				j, result.L.Value()[j], minuend.L.Value()[j])
		}
	}
}

func TestIntersectionCardinalityConstraint(t *testing.T) {
	// |result| <= min_i |input_i| per dimension (Eq. 11).
	m, ds := testModel(t, 7)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(8)))
	q, ok := s.Sample("3i")
	if !ok {
		t.Fatal("sampling 3i failed")
	}
	tape := autodiff.NewTape()
	result := m.Embed(tape, q)
	for _, child := range q.Args {
		ca := m.Embed(tape, child)
		for j := range result.L.Value() {
			if result.L.Value()[j] > ca.L.Value()[j]+1e-9 {
				t.Fatalf("dim %d: intersection longer than input", j)
			}
		}
	}
}

func TestLossFiniteAndBackpropagates(t *testing.T) {
	m, ds := testModel(t, 9)
	rng := rand.New(rand.NewSource(10))
	for _, structure := range query.TrainStructures {
		w := query.Workload(structure, 2, ds.Train, ds.Train, rng)
		if len(w) == 0 {
			t.Fatalf("%s: no training queries", structure)
		}
		tape := autodiff.NewTape()
		loss, ok := m.Loss(tape, &w[0], 4, rng)
		if !ok {
			t.Fatalf("%s: Loss not ok", structure)
		}
		lv := loss.Value()[0]
		if math.IsNaN(lv) || math.IsInf(lv, 0) || lv < 0 {
			t.Fatalf("%s: loss = %g", structure, lv)
		}
		m.Params().ZeroGrad()
		tape.Backward(loss)
		// gradient must reach the entity table
		nonzero := false
		for _, g := range m.ent.Grad {
			if g != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Fatalf("%s: no gradient reached entity embeddings", structure)
		}
	}
}

func TestDistancesAndTopK(t *testing.T) {
	m, ds := testModel(t, 11)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(12)))
	q, ok := s.Sample("2p")
	if !ok {
		t.Fatal("sampling failed")
	}
	d := m.Distances(q)
	if len(d) != ds.Train.NumEntities() {
		t.Fatalf("Distances len = %d, want %d", len(d), ds.Train.NumEntities())
	}
	for _, v := range d {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad distance %g", v)
		}
	}
	top := m.TopK(q, 10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d entities", len(top))
	}
	for i := 1; i < len(top); i++ {
		if d[top[i-1]] > d[top[i]] {
			t.Fatal("TopK not sorted by distance")
		}
	}
	// TopK must return the global minimum first
	min := 0
	for e := range d {
		if d[e] < d[min] {
			min = e
		}
	}
	if int(top[0]) != min {
		t.Errorf("TopK[0] = %d, want argmin %d", top[0], min)
	}
}

func TestCandidatesPerNode(t *testing.T) {
	m, ds := testModel(t, 13)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(14)))
	q, ok := s.Sample("pi")
	if !ok {
		t.Fatal("sampling failed")
	}
	cands := m.CandidatesPerNode(q, 5)
	if len(cands) != q.NumVariables() {
		t.Fatalf("candidates for %d nodes, want %d variables", len(cands), q.NumVariables())
	}
	for n, c := range cands {
		if len(c) != 5 {
			t.Errorf("node %s: %d candidates, want 5", n.Op, len(c))
		}
	}
}

func TestModelDeterministicInit(t *testing.T) {
	ds := kg.SynthFB237(20)
	a := New(ds.Train, testConfig(20))
	b := New(ds.Train, testConfig(20))
	ta, tb := a.Params().All(), b.Params().All()
	for i := range ta {
		for j := range ta[i].Data {
			if ta[i].Data[j] != tb[i].Data[j] {
				t.Fatalf("tensor %s differs at %d", ta[i].Name, j)
			}
		}
	}
}

func TestTrainingImprovesRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	ds := kg.SynthFB237(31)
	cfg := testConfig(31)
	m := New(ds.Train, cfg)

	rng := rand.New(rand.NewSource(32))
	eval := query.Workload("1p", 30, ds.Train, ds.Train, rng)
	mrr := func() float64 {
		total := 0.0
		for i := range eval {
			d := m.Distances(eval[i].Root)
			// One answer per query is enough for the smoke test, but it
			// must be the same one before and after training: map
			// iteration order would score a different answer per call
			// and drown the improvement in sampling noise.
			e := kg.EntityID(-1)
			for a := range eval[i].Answers {
				if e < 0 || a < e {
					e = a
				}
			}
			rank := 1
			for o, od := range d {
				if !eval[i].Answers.Has(kg.EntityID(o)) && od < d[e] {
					rank++
				}
			}
			total += 1 / float64(rank)
		}
		return total / float64(len(eval))
	}

	before := mrr()
	_, err := model.Train(m, ds.Train, model.TrainConfig{
		QueriesPerStructure: 40,
		Steps:               220,
		BatchSize:           8,
		NegSamples:          8,
		LR:                  0.01,
		Seed:                33,
		Structures:          []string{"1p", "2p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := mrr()
	if after <= before {
		t.Errorf("training did not improve 1p MRR: before %.4f, after %.4f", before, after)
	}
	t.Logf("1p MRR before %.4f after %.4f", before, after)
}
