package halk

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestFastDistancesMatchesReference(t *testing.T) {
	m, ds := testModel(t, 41)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(42)))
	for _, structure := range []string{"1p", "2i", "2u", "dp", "2in"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		fast := m.Distances(q)
		arcs := m.EmbedQuery(q)
		for e := 0; e < ds.Train.NumEntities(); e += 7 {
			slow := m.distanceTo(kg.EntityID(e), arcs)
			if math.Abs(fast[e]-slow) > 1e-9 {
				t.Fatalf("%s: entity %d: fast %.12f != slow %.12f", structure, e, fast[e], slow)
			}
		}
	}
}

func TestTrigCacheInvalidation(t *testing.T) {
	m, ds := testModel(t, 43)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(44)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling failed")
	}
	before := m.Distances(q)
	// Mutate an entity embedding out of band (as a parameter load would)
	// and announce it; the version-keyed cache must rebuild.
	m.ent.Data[0] += 1.0
	m.MarkEntitiesUpdated()
	after := m.Distances(q)
	same := true
	for e := range before {
		if before[e] != after[e] {
			same = false
			break
		}
	}
	// entity 0's distance must change (its point moved)
	if before[0] == after[0] && same {
		t.Error("trig cache served stale tables after entity update")
	}
	// restore and confirm we get the original values back
	m.ent.Data[0] -= 1.0
	m.MarkEntitiesUpdated()
	restored := m.Distances(q)
	for e := range before {
		if math.Abs(before[e]-restored[e]) > 1e-12 {
			t.Fatal("distances not restored after reverting entity data")
		}
	}
}

func TestEntityVersionBumps(t *testing.T) {
	m, _ := testModel(t, 43)
	v0 := m.EntityVersion()
	if v0 == 0 {
		t.Fatal("fresh model must start at a nonzero entity version")
	}
	angles := append([]float64(nil), m.EntityAngles(0)...)
	if err := m.SetEntityAngles(0, angles); err != nil {
		t.Fatalf("SetEntityAngles: %v", err)
	}
	if v := m.EntityVersion(); v <= v0 {
		t.Fatalf("SetEntityAngles did not bump version: %d -> %d", v0, v)
	}
	v1 := m.EntityVersion()
	m.MarkEntitiesUpdated()
	if v := m.EntityVersion(); v <= v1 {
		t.Fatalf("MarkEntitiesUpdated did not bump version: %d -> %d", v1, v)
	}
}

// TestConcurrentRankingAndEntityUpdate exercises the serving scenario of
// rankings in-flight while the entity table is being patched: run with
// -race, it fails if the trig cache rewrites tables handed to an
// in-flight scan (the pre-copy-on-invalidate bug) or if an entity row is
// read half-written.
func TestConcurrentRankingAndEntityUpdate(t *testing.T) {
	m, ds := testModel(t, 47)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(48)))
	q, ok := s.Sample("2i")
	if !ok {
		t.Fatal("sampling failed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.TopKContext(context.Background(), q, 5); err != nil {
					t.Errorf("TopKContext: %v", err)
					return
				}
			}
		}()
	}

	angles := append([]float64(nil), m.EntityAngles(0)...)
	for i := 0; i < 50; i++ {
		for j := range angles {
			angles[j] += 0.01
		}
		if err := m.SetEntityAngles(0, angles); err != nil {
			t.Fatalf("SetEntityAngles: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// The final update must be visible to subsequent rankings.
	got := m.EntityAngles(0)
	for j := range angles {
		if got[j] != angles[j] {
			t.Fatalf("entity 0 angle %d = %v, want %v", j, got[j], angles[j])
		}
	}
}

func TestDistancesContextCancellation(t *testing.T) {
	m, ds := testModel(t, 51)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(52)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.DistancesContext(ctx, q); err != context.Canceled {
		t.Fatalf("DistancesContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := m.TopKContext(context.Background(), q, 3); err != nil {
		t.Fatalf("TopKContext: %v", err)
	}
}

func TestSetEntityAnglesValidates(t *testing.T) {
	m, _ := testModel(t, 53)
	if err := m.SetEntityAngles(0, make([]float64, m.cfg.Dim+1)); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if err := m.SetEntityAngles(kg.EntityID(m.graph.NumEntities()), make([]float64, m.cfg.Dim)); err == nil {
		t.Error("out-of-range entity accepted")
	}
}

// BenchmarkFastDistances guards the hot loop: it must stay free of
// per-call allocation bursts (the output vector is the only allocation).
func BenchmarkFastDistances(b *testing.B) {
	ds := kg.SynthFB237(45)
	m := New(ds.Train, testConfig(45))
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(46)))
	q, ok := s.Sample("2i")
	if !ok {
		b.Fatal("sampling failed")
	}
	arcs := m.EmbedQuery(q)
	pre := make([]preArc, len(arcs))
	for i, a := range arcs {
		pre[i] = m.prepareArc(a)
	}
	m.trig.tables(m.ent.Data, m.EntityVersion()) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.fastDistances(nil, pre); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFastDistancesSpeed(t *testing.T) {
	m, ds := testModel(t, 45)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(46)))
	q, _ := s.Sample("2p")
	m.Distances(q) // warm the cache
	start := time.Now()
	const reps = 20
	for i := 0; i < reps; i++ {
		m.Distances(q)
	}
	per := time.Since(start) / reps
	// Generous bound: the point is to catch accidental fallback to the
	// trig-heavy path (which is ~10x slower).
	if per > 5*time.Millisecond {
		t.Errorf("Distances took %v per query; fast path regressed?", per)
	}
	t.Logf("online ranking: %v per query (%d entities, d=%d)", per, ds.Train.NumEntities(), m.cfg.Dim)
}
