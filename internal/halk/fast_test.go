package halk

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestFastDistancesMatchesReference(t *testing.T) {
	m, ds := testModel(t, 41)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(42)))
	for _, structure := range []string{"1p", "2i", "2u", "dp", "2in"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		fast := m.Distances(q)
		arcs := m.EmbedQuery(q)
		for e := 0; e < ds.Train.NumEntities(); e += 7 {
			slow := m.distanceTo(kg.EntityID(e), arcs)
			if math.Abs(fast[e]-slow) > 1e-9 {
				t.Fatalf("%s: entity %d: fast %.12f != slow %.12f", structure, e, fast[e], slow)
			}
		}
	}
}

func TestTrigCacheInvalidation(t *testing.T) {
	m, ds := testModel(t, 43)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(44)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling failed")
	}
	before := m.Distances(q)
	// Mutate an entity embedding (as a training step would) and check the
	// fast path notices.
	m.ent.Data[0] += 1.0
	after := m.Distances(q)
	same := true
	for e := range before {
		if before[e] != after[e] {
			same = false
			break
		}
	}
	// entity 0's distance must change (its point moved)
	if before[0] == after[0] && same {
		t.Error("trig cache served stale tables after entity update")
	}
	// restore and confirm we get the original values back
	m.ent.Data[0] -= 1.0
	restored := m.Distances(q)
	for e := range before {
		if math.Abs(before[e]-restored[e]) > 1e-12 {
			t.Fatal("distances not restored after reverting entity data")
		}
	}
}

func TestFnv64Distinguishes(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3.0000001}
	if fnv64(a) == fnv64(b) {
		t.Error("fingerprint collision on nearby vectors")
	}
	if fnv64(a) != fnv64([]float64{1, 2, 3}) {
		t.Error("fingerprint not deterministic")
	}
}

func TestFastDistancesSpeed(t *testing.T) {
	m, ds := testModel(t, 45)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(46)))
	q, _ := s.Sample("2p")
	m.Distances(q) // warm the cache
	start := time.Now()
	const reps = 20
	for i := 0; i < reps; i++ {
		m.Distances(q)
	}
	per := time.Since(start) / reps
	// Generous bound: the point is to catch accidental fallback to the
	// trig-heavy path (which is ~10x slower).
	if per > 5*time.Millisecond {
		t.Errorf("Distances took %v per query; fast path regressed?", per)
	}
	t.Logf("online ranking: %v per query (%d entities, d=%d)", per, ds.Train.NumEntities(), m.cfg.Dim)
}
