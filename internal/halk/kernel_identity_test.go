package halk

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// The kernel-identity suite is the byte-identity contract of the
// blocked scan kernel, run in CI across Go versions and GOAMD64 levels:
// for every named query structure of the paper (1p…3ippd, including
// negation and difference), the blocked float32-filtered kernel and the
// batched rank path must return bit-identical distances and identical
// IDs to the scalar float64 reference scan (Options.ScalarKernel) and
// to the single-threaded full scan Model.TopK. Any FMA contraction,
// rounding-mode, or vector-width divergence that changed an answer
// would trip the Float64bits comparisons here.

// identityStructures is the full structure matrix the identity suite
// sweeps: every EPFO+difference structure, every negation structure and
// every large structure — 1p through 3ippd.
func identityStructures() []string {
	var out []string
	out = append(out, query.EPFOStructures...)
	out = append(out, query.NegationStructures...)
	out = append(out, query.LargeStructures...)
	return out
}

// rankBothKernels ranks q at k through a blocked and a scalar-pinned
// engine over the same model state and fails unless the two results are
// bit-identical; it returns the blocked result for further checks.
func rankBothKernels(t *testing.T, m *Model, shards int, q *query.Node, k int, structure string) *shard.Result {
	t.Helper()
	blocked, err := m.NewShardedRanker(shard.Options{Shards: shards})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	defer blocked.Close()
	scalar, err := m.NewShardedRanker(shard.Options{Shards: shards, ScalarKernel: true})
	if err != nil {
		t.Fatalf("NewShardedRanker(scalar): %v", err)
	}
	defer scalar.Close()

	bres, err := blocked.RankTopK(context.Background(), q, k)
	if err != nil {
		t.Fatalf("%s shards=%d: blocked RankTopK: %v", structure, shards, err)
	}
	sres, err := scalar.RankTopK(context.Background(), q, k)
	if err != nil {
		t.Fatalf("%s shards=%d: scalar RankTopK: %v", structure, shards, err)
	}
	if bres.Partial || sres.Partial {
		t.Fatalf("%s shards=%d: unexpected partial result", structure, shards)
	}
	if len(bres.IDs) != len(sres.IDs) {
		t.Fatalf("%s shards=%d: blocked returned %d answers, scalar %d", structure, shards, len(bres.IDs), len(sres.IDs))
	}
	for i := range sres.IDs {
		if bres.IDs[i] != sres.IDs[i] {
			t.Fatalf("%s shards=%d: rank %d = entity %d, scalar ranked %d", structure, shards, i, bres.IDs[i], sres.IDs[i])
		}
		if math.Float64bits(bres.Dists[i]) != math.Float64bits(sres.Dists[i]) {
			t.Fatalf("%s shards=%d: rank %d dist %v differs from scalar %v by %g",
				structure, shards, i, bres.Dists[i], sres.Dists[i], bres.Dists[i]-sres.Dists[i])
		}
	}
	return bres
}

// TestKernelIdentityStructureMatrix sweeps the full structure matrix:
// blocked kernel == scalar kernel == Model.TopK, bit for bit, at shard
// counts that do and do not divide the entity count.
func TestKernelIdentityStructureMatrix(t *testing.T) {
	m, ds := testModel(t, 81)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(82)))
	const k = 12
	for _, structure := range identityStructures() {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		want := m.TopK(q, k)
		dist := m.Distances(q)
		for _, shards := range []int{1, 3} {
			got := rankBothKernels(t, m, shards, q, k, structure)
			if len(got.IDs) != len(want) {
				t.Fatalf("%s shards=%d: %d answers, want %d", structure, shards, len(got.IDs), len(want))
			}
			for i := range want {
				if got.IDs[i] != want[i] {
					t.Fatalf("%s shards=%d: rank %d = %d, full scan ranked %d", structure, shards, i, got.IDs[i], want[i])
				}
				if math.Float64bits(got.Dists[i]) != math.Float64bits(dist[want[i]]) {
					t.Fatalf("%s shards=%d: rank %d dist %v, full scan %v", structure, shards, i, got.Dists[i], dist[want[i]])
				}
			}
		}
	}
}

// TestKernelIdentityBatch proves the batched rank path changes no
// answers: RankBatch over a mixed-structure batch must return, per
// item, exactly what RankTopK returns for that query alone, on both
// kernels, bit for bit.
func TestKernelIdentityBatch(t *testing.T) {
	m, ds := testModel(t, 83)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(84)))
	structures := []string{"1p", "2p", "2i", "3i", "pi", "2u", "2d", "2in", "pni", "3ippd"}
	roots := make([]*query.Node, 0, len(structures))
	ks := make([]int, 0, len(structures))
	for i, structure := range structures {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		roots = append(roots, q)
		ks = append(ks, 3+2*i)
	}
	for _, scalarKernel := range []bool{false, true} {
		for _, shards := range []int{1, 4} {
			r, err := m.NewShardedRanker(shard.Options{Shards: shards, ScalarKernel: scalarKernel})
			if err != nil {
				t.Fatalf("NewShardedRanker: %v", err)
			}
			batch, err := r.RankBatch(context.Background(), roots, ks)
			if err != nil {
				t.Fatalf("RankBatch: %v", err)
			}
			if len(batch) != len(roots) {
				t.Fatalf("RankBatch returned %d results for %d queries", len(batch), len(roots))
			}
			for i := range roots {
				lone, err := r.RankTopK(context.Background(), roots[i], ks[i])
				if err != nil {
					t.Fatalf("RankTopK: %v", err)
				}
				if len(batch[i].IDs) != len(lone.IDs) {
					t.Fatalf("%s: batch %d answers, lone %d", structures[i], len(batch[i].IDs), len(lone.IDs))
				}
				for j := range lone.IDs {
					if batch[i].IDs[j] != lone.IDs[j] {
						t.Fatalf("%s scalar=%v shards=%d: batch rank %d = %d, lone %d",
							structures[i], scalarKernel, shards, j, batch[i].IDs[j], lone.IDs[j])
					}
					if math.Float64bits(batch[i].Dists[j]) != math.Float64bits(lone.Dists[j]) {
						t.Fatalf("%s scalar=%v shards=%d: batch rank %d dist %v, lone %v",
							structures[i], scalarKernel, shards, j, batch[i].Dists[j], lone.Dists[j])
					}
				}
			}
			r.Close()
		}
	}

	// Argument-shape validation.
	r, err := m.NewShardedRanker(shard.Options{Shards: 2})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	defer r.Close()
	if _, err := r.RankBatch(context.Background(), roots, ks[:1]); err == nil {
		t.Error("mismatched roots/ks lengths: want error")
	}
}
