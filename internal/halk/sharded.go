package halk

import (
	"context"
	"fmt"
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// ShardedRanker answers ranking queries through the scatter-gather shard
// engine instead of the single-threaded full scan: the entity table is
// partitioned into contiguous-ID shards, each scanned concurrently with a
// bounded top-K heap, and the per-shard winners are merged. Results are
// byte-identical to Model.TopK for the same snapshot.
//
// The ranker holds versioned immutable snapshots of the entity table
// (see shard.Engine): queries rank against the snapshot current when
// they start, and Refresh publishes a new one atomically after entity
// updates. Build one with Model.NewShardedRanker after training and call
// Refresh whenever EntityVersion has moved.
type ShardedRanker struct {
	m   *Model
	eng *shard.Engine
}

// NewShardedRanker builds a sharded ranking engine over the model's
// current entity table. shards < 1 means one shard; opts.ANN non-nil
// additionally builds per-shard LSH bucket indexes enabling
// TopKApprox. The initial snapshot is published before returning.
func (m *Model) NewShardedRanker(opts shard.Options) (*ShardedRanker, error) {
	eng := shard.NewEngine(m.shardParams(), opts)
	r := &ShardedRanker{m: m, eng: eng}
	if err := r.Refresh(); err != nil {
		return nil, err
	}
	return r, nil
}

// Refresh publishes a fresh snapshot of the entity table if its version
// has moved past the engine's current snapshot. Safe to call
// concurrently with ranking: in-flight queries finish on the snapshot
// they started with. Returns nil without work when already current.
func (r *ShardedRanker) Refresh() error {
	return r.refresh(nil)
}

// RefreshDirty is Refresh with the delta-swap fast path: dirty lists
// every entity whose row changed since the last published snapshot (for
// example FineTuneResult.DirtyEntities), and the engine rebuilds only
// the shards containing one, sharing the rest with the previous
// snapshot. The published result is byte-identical to a full Refresh —
// the savings are build cost (trig tables + ANN index only for touched
// shards), not served answers. An empty dirty set still republishes the
// new version. The dirty contract is the caller's: an entity whose row
// changed but is not listed would be served from a stale shard.
func (r *ShardedRanker) RefreshDirty(dirty []kg.EntityID) error {
	d := make([]int32, len(dirty))
	for i, e := range dirty {
		d[i] = int32(e)
	}
	return r.refresh(d)
}

func (r *ShardedRanker) refresh(dirty []int32) error {
	ver := r.m.EntityVersion()
	if ver <= r.eng.Version() {
		return nil
	}
	// Copy the table under the ranking read-lock so no row is observed
	// half-written by a concurrent SetEntityAngles.
	r.m.rankMu.RLock()
	angles := append([]float64(nil), r.m.ent.Data...)
	// Re-read the version while still holding the lock: if an update
	// raced in between the first load and the lock, the copy may already
	// contain it — stamping the later version is correct either way
	// because the copy is at least as new as `ver`.
	newVer := r.m.EntityVersion()
	if dirty != nil && newVer != ver {
		// An update raced in between the version load and the copy; its
		// touched rows are in the copy but not in the caller's dirty set,
		// so the delta contract no longer holds. Fall back to a full
		// rebuild for this publish.
		dirty = nil
	}
	ver = newVer
	r.m.rankMu.RUnlock()

	n := r.m.graph.NumEntities()
	group := make([]int32, n)
	for e := 0; e < n; e++ {
		group[e] = int32(r.m.groups.GroupOf(kg.EntityID(e)))
	}
	return r.eng.Swap(shard.Source{Angles: angles, Group: group, Version: ver, Dirty: dirty})
}

// RankTopK embeds the query and ranks the k best answers through the
// shard engine. Embedding takes the model's ranking read-lock (it reads
// live parameters); the scan itself runs lock-free against the current
// snapshot. Per-shard deadlines may yield a partial result — see
// shard.Result.
func (r *ShardedRanker) RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	begin := time.Now()
	arcs := r.prepare(n)
	obs.FromContext(ctx).Observe(obs.StagePrepareArcs, time.Since(begin))
	return r.eng.TopK(ctx, arcs, k)
}

// RankBatch embeds and ranks many queries in one shard gather: all
// queries are prepared under a single ranking read-lock, then every
// shard runs one scan that sweeps the whole batch through each entity
// block in turn (see shard.Engine.RankBatch). ks[i] is query i's K;
// len(ks) must equal len(roots). Each returned Result is bit-identical
// to RankTopK(ctx, roots[i], ks[i]) against the same snapshot —
// batching changes memory traffic, never answers.
func (r *ShardedRanker) RankBatch(ctx context.Context, roots []*query.Node, ks []int) ([]*shard.Result, error) {
	if len(roots) != len(ks) {
		return nil, fmt.Errorf("halk: RankBatch got %d queries but %d k values", len(roots), len(ks))
	}
	begin := time.Now()
	items := make([]shard.BatchItem, len(roots))
	r.m.rankMu.RLock()
	for i, n := range roots {
		arcs := r.m.EmbedQuery(n)
		pre := make([]shard.Arc, len(arcs))
		for j, a := range arcs {
			pre[j] = r.m.prepareArc(a)
		}
		items[i] = shard.BatchItem{Arcs: pre, K: ks[i]}
	}
	r.m.rankMu.RUnlock()
	obs.FromContext(ctx).Observe(obs.StagePrepareArcs, time.Since(begin))
	return r.eng.RankBatch(ctx, items)
}

// RankTopKApprox is the ANN-accelerated variant: each shard ranks only
// its bucket-index candidates. Requires Options.ANN at engine build.
func (r *ShardedRanker) RankTopKApprox(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	arcs := r.prepare(n)
	return r.eng.TopKApprox(ctx, arcs, k)
}

// PoolSize reports the total ANN candidate-pool size across shards for
// the query (the work TopKApprox would do).
func (r *ShardedRanker) PoolSize(n *query.Node) int {
	return r.eng.PoolSize(r.prepare(n))
}

func (r *ShardedRanker) prepare(n *query.Node) []shard.Arc {
	r.m.rankMu.RLock()
	defer r.m.rankMu.RUnlock()
	arcs := r.m.EmbedQuery(n)
	pre := make([]shard.Arc, len(arcs))
	for i, a := range arcs {
		pre[i] = r.m.prepareArc(a)
	}
	return pre
}

// Close drains the engine's in-flight scan goroutines (scatter and
// hedge). Call on shutdown after queries have stopped being issued.
func (r *ShardedRanker) Close() { r.eng.Close() }

// NumShards reports the engine's shard count.
func (r *ShardedRanker) NumShards() int { return r.eng.NumShards() }

// SnapshotVersion reports the entity version of the published snapshot.
func (r *ShardedRanker) SnapshotVersion() uint64 { return r.eng.Version() }

// ShardStats reports per-shard scan counters for observability.
func (r *ShardedRanker) ShardStats() []shard.ShardStats { return r.eng.Stats() }
