package halk

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// pickNonEdge returns a triple (h, r, t) that is not in the graph, with h
// having at least one existing successor under r (so the projection arc
// is meaningful).
func pickNonEdge(t *testing.T, g *kg.Graph, seed int64) kg.Triple {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 10000; i++ {
		tr := g.Triples()[rng.Intn(g.NumTriples())]
		cand := kg.EntityID(rng.Intn(g.NumEntities()))
		if !g.HasTriple(tr.H, tr.R, cand) {
			return kg.Triple{H: tr.H, R: tr.R, T: cand}
		}
	}
	t.Fatal("no non-edge found")
	return kg.Triple{}
}

func cloneData(d []float64) []float64 { return append([]float64(nil), d...) }

func TestFineTuneEdgesDirtySetByteIdentity(t *testing.T) {
	m, _ := testModel(t, 11)
	before := cloneData(m.ent.Data)
	relCBefore := cloneData(m.relC.Data)
	relLBefore := cloneData(m.relL.Data)
	v0 := m.EntityVersion()

	edge := pickNonEdge(t, m.Graph(), 7)
	res, err := m.FineTuneEdges([]kg.Triple{edge}, nil, FineTuneConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 1 {
		t.Fatalf("Edges = %d, want 1", res.Edges)
	}
	if res.Version != v0+1 || m.EntityVersion() != v0+1 {
		t.Fatalf("version = %d (result %d), want %d", m.EntityVersion(), res.Version, v0+1)
	}

	dirty := make(map[kg.EntityID]bool)
	for _, e := range res.DirtyEntities {
		dirty[e] = true
	}
	if !dirty[edge.H] || !dirty[edge.T] {
		t.Fatalf("dirty set %v missing head/tail of %+v", res.DirtyEntities, edge)
	}
	dim := m.cfg.Dim
	changedDirty := false
	for e := 0; e < m.Graph().NumEntities(); e++ {
		row := m.ent.Data[e*dim : (e+1)*dim]
		old := before[e*dim : (e+1)*dim]
		same := true
		for j := range row {
			if row[j] != old[j] {
				same = false
				break
			}
		}
		if dirty[kg.EntityID(e)] {
			if !same {
				changedDirty = true
			}
		} else if !same {
			t.Fatalf("entity %d outside dirty set changed", e)
		}
	}
	if !changedDirty {
		t.Fatal("no dirty entity row changed at all")
	}

	dirtyRel := make(map[kg.RelationID]bool)
	for _, r := range res.DirtyRelations {
		dirtyRel[r] = true
	}
	if !dirtyRel[edge.R] {
		t.Fatalf("dirty relations %v missing %d", res.DirtyRelations, edge.R)
	}
	for r := 0; r < m.Graph().NumRelations(); r++ {
		if dirtyRel[kg.RelationID(r)] {
			continue
		}
		for j := r * dim; j < (r+1)*dim; j++ {
			if m.relC.Data[j] != relCBefore[j] || m.relL.Data[j] != relLBefore[j] {
				t.Fatalf("relation %d outside dirty set changed", r)
			}
		}
	}
}

func TestFineTuneEdgesDeterministic(t *testing.T) {
	m1, _ := testModel(t, 21)
	m2, _ := testModel(t, 21)
	edge := pickNonEdge(t, m1.Graph(), 5)
	other := pickNonEdge(t, m1.Graph(), 6)
	removed := m1.Graph().Triples()[3]
	cfg := FineTuneConfig{Seed: 99}
	if _, err := m1.FineTuneEdges([]kg.Triple{edge, other}, []kg.Triple{removed}, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.FineTuneEdges([]kg.Triple{edge, other}, []kg.Triple{removed}, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range m1.ent.Data {
		if m1.ent.Data[i] != m2.ent.Data[i] {
			t.Fatalf("ent.Data[%d] diverged under identical seed: %v vs %v", i, m1.ent.Data[i], m2.ent.Data[i])
		}
	}
	for i := range m1.relC.Data {
		if m1.relC.Data[i] != m2.relC.Data[i] || m1.relL.Data[i] != m2.relL.Data[i] {
			t.Fatalf("relation tables diverged under identical seed at %d", i)
		}
	}
}

func TestFineTuneEdgesMovesAnswer(t *testing.T) {
	m, _ := testModel(t, 31)
	edge := pickNonEdge(t, m.Graph(), 9)
	node := query.NewProjection(edge.R, query.NewAnchor(edge.H))
	before := m.Distances(node)[edge.T]
	cfg := FineTuneConfig{Seed: 1}
	for step := 0; step < 25; step++ {
		cfg.Seed = int64(step)
		if _, err := m.FineTuneEdges([]kg.Triple{edge}, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Distances(node)[edge.T]
	if after >= before {
		t.Fatalf("distance of new tail did not shrink: before %v, after %v", before, after)
	}

	// And pushing a true edge out grows its tail's distance.
	tr := m.Graph().Triples()[0]
	rnode := query.NewProjection(tr.R, query.NewAnchor(tr.H))
	before = m.Distances(rnode)[tr.T]
	for step := 0; step < 25; step++ {
		cfg.Seed = int64(step)
		if _, err := m.FineTuneEdges(nil, []kg.Triple{tr}, cfg); err != nil {
			t.Fatal(err)
		}
	}
	after = m.Distances(rnode)[tr.T]
	if after <= before {
		t.Fatalf("distance of retracted tail did not grow: before %v, after %v", before, after)
	}
}

func TestFineTuneEdgesValidation(t *testing.T) {
	m, _ := testModel(t, 41)
	before := cloneData(m.ent.Data)
	v0 := m.EntityVersion()
	n := kg.EntityID(m.Graph().NumEntities())
	bad := []kg.Triple{{H: n, R: 0, T: 0}}
	if _, err := m.FineTuneEdges(bad, nil, FineTuneConfig{}); err == nil {
		t.Fatal("out-of-range head accepted")
	}
	badR := []kg.Triple{{H: 0, R: kg.RelationID(m.Graph().NumRelations()), T: 1}}
	if _, err := m.FineTuneEdges(nil, badR, FineTuneConfig{}); err == nil {
		t.Fatal("out-of-range relation accepted")
	}
	if m.EntityVersion() != v0 {
		t.Fatalf("version bumped on rejected batch: %d != %d", m.EntityVersion(), v0)
	}
	for i := range before {
		if m.ent.Data[i] != before[i] {
			t.Fatal("rejected batch mutated entity table")
		}
	}

	// An empty batch is a no-op with no version bump.
	res, err := m.FineTuneEdges(nil, nil, FineTuneConfig{})
	if err != nil || res.Edges != 0 || res.Version != v0 {
		t.Fatalf("empty batch: res=%+v err=%v, want 0 edges at version %d", res, err, v0)
	}
}

func TestSetEntityAnglesBatch(t *testing.T) {
	m, _ := testModel(t, 51)
	dim := m.cfg.Dim
	v0 := m.EntityVersion()
	mk := func(base float64) []float64 {
		a := make([]float64, dim)
		for j := range a {
			a[j] = base + float64(j)*0.01
		}
		return a
	}
	updates := []EntityUpdate{{E: 1, Angles: mk(0.5)}, {E: 3, Angles: mk(1.5)}, {E: 7, Angles: mk(2.5)}}
	if err := m.SetEntityAnglesBatch(updates); err != nil {
		t.Fatal(err)
	}
	if m.EntityVersion() != v0+1 {
		t.Fatalf("batch bumped version by %d, want exactly 1", m.EntityVersion()-v0)
	}
	for _, u := range updates {
		got := m.EntityAngles(u.E)
		for j := range got {
			if got[j] != u.Angles[j] {
				t.Fatalf("entity %d row not applied", u.E)
			}
		}
	}

	// All-or-nothing: one invalid update rejects the whole batch with no
	// bump and no partial writes.
	before := cloneData(m.ent.Data)
	v1 := m.EntityVersion()
	bad := []EntityUpdate{
		{E: 2, Angles: mk(0.9)},
		{E: kg.EntityID(m.Graph().NumEntities()), Angles: mk(0.1)},
	}
	if err := m.SetEntityAnglesBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if m.EntityVersion() != v1 {
		t.Fatal("invalid batch bumped version")
	}
	for i := range before {
		if m.ent.Data[i] != before[i] {
			t.Fatal("invalid batch left partial writes")
		}
	}

	if err := m.SetEntityAnglesBatch(nil); err != nil || m.EntityVersion() != v1 {
		t.Fatal("empty batch must be a no-op")
	}
}

// TestSetEntityAnglesRankVisibility hammers concurrent rankings against
// entity updates and fine-tune steps. Run with -race: the contract is
// that every ranking serializes against the row write + version bump as
// one unit, so the race detector stays silent and every ranking
// completes against a consistent table.
func TestSetEntityAnglesRankVisibility(t *testing.T) {
	m, _ := testModel(t, 61)
	tr := m.Graph().Triples()[0]
	node := query.NewProjection(tr.R, query.NewAnchor(tr.H))
	dim := m.cfg.Dim

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.DistancesContext(context.Background(), node); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	angles := make([]float64, dim)
	for i := 0; i < 50; i++ {
		for j := range angles {
			angles[j] = float64(i%6) + float64(j)*0.01
		}
		if err := m.SetEntityAngles(tr.T, angles); err != nil {
			t.Fatal(err)
		}
		if err := m.SetEntityAnglesBatch([]EntityUpdate{{E: tr.H, Angles: angles}}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.FineTuneEdges([]kg.Triple{tr}, nil, FineTuneConfig{Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
