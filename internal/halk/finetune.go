package halk

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// This file implements the streaming fine-tune step behind the live-graph
// ingest subsystem (internal/ingest): a bounded SGD update that folds a
// micro-batch of added/removed triples into the embeddings WITHOUT a full
// retrain, touching only the entity and relation rows that participate in
// the batch. The projection/intersection MLP heads stay frozen — their
// gradients are computed as a side effect of the forward pass and
// discarded — so a delta update can never drift the operator semantics
// the full training run established.
//
// Determinism and isolation are the contract the ingest tests pin down:
//
//   - Under a fixed FineTuneConfig.Seed the update is bit-deterministic:
//     same base parameters + same edge batch => byte-identical result.
//   - Entity rows outside the returned dirty set are provably untouched:
//     the apply loop writes only rows with accumulated gradient, so
//     "untouched" means byte-identical, not merely "close".
//
// Concurrency: the forward/backward phase holds the ranking read-lock
// (it reads live parameters, racing only checkpoint hot-reloads), and
// the apply phase holds the write-lock with the entity-version bump in
// the same critical section as the row writes — a ranking that observes
// the new version observes the new rows, so version-namespaced caches
// can never pair post-bump keys with pre-bump answers.

// FineTuneConfig bounds one streaming fine-tune step.
type FineTuneConfig struct {
	// LR is the SGD learning rate; 0 means 0.05.
	LR float64
	// NegSamples is the number of negative entities sampled per added
	// edge; 0 means 8.
	NegSamples int
	// MaxStep caps the per-row L2 norm of the applied update (radians);
	// a gradient spike on a low-degree entity moves it at most this far.
	// 0 means 0.5.
	MaxStep float64
	// Seed drives negative sampling. The same seed over the same base
	// parameters and edges reproduces the update bit for bit.
	Seed int64
}

func (c *FineTuneConfig) defaults() {
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.NegSamples <= 0 {
		c.NegSamples = 8
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 0.5
	}
}

// FineTuneResult reports one fine-tune step's outcome.
type FineTuneResult struct {
	// Edges is the number of edge losses that contributed gradient.
	Edges int
	// Loss is the mean per-edge loss (0 when Edges is 0).
	Loss float64
	// DirtyEntities are the entity rows the step updated, sorted. Every
	// row not listed is byte-identical to its pre-step value.
	DirtyEntities []kg.EntityID
	// DirtyRelations are the relation rows (center and length tables)
	// the step updated, sorted.
	DirtyRelations []kg.RelationID
	// Version is the entity-table version after the step's bump; equal
	// to the pre-step version when the step applied nothing.
	Version uint64
}

// FineTuneEdges folds a micro-batch of added and removed triples into
// the embeddings with one bounded SGD step. For an added (h, r, t) the
// tail is pulled into the arc of p[r](h) against sampled negatives (the
// Eq. 17 loss restricted to this edge); for a removed triple the tail
// is pushed out of the arc. Entities named by the triples must already
// exist — the ingest layer validates vocabulary before calling.
//
// The model's graph is read for negative filtering (a sampled negative
// must not be a current answer of p[r](h)), so callers applying edges
// to the graph should do so before fine-tuning on them.
func (m *Model) FineTuneEdges(added, removed []kg.Triple, cfg FineTuneConfig) (FineTuneResult, error) {
	cfg.defaults()
	numEnt, numRel := m.graph.NumEntities(), m.graph.NumRelations()
	for _, tr := range append(append([]kg.Triple(nil), added...), removed...) {
		if int(tr.H) < 0 || int(tr.H) >= numEnt || int(tr.T) < 0 || int(tr.T) >= numEnt {
			return FineTuneResult{Version: m.EntityVersion()}, fmt.Errorf("halk: fine-tune edge %+v: entity out of range [0, %d)", tr, numEnt)
		}
		if int(tr.R) < 0 || int(tr.R) >= numRel {
			return FineTuneResult{Version: m.EntityVersion()}, fmt.Errorf("halk: fine-tune edge %+v: relation out of range [0, %d)", tr, numRel)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	dirtyEnt := make(map[kg.EntityID]struct{})
	dirtyRel := make(map[kg.RelationID]struct{})
	tape := autodiff.NewTape()
	edges, lossSum := 0, 0.0

	// Forward + backward under the read lock: the pass reads live
	// parameters (racing only a checkpoint hot-reload's write-lock) and
	// accumulates gradients into the tensors' mutex-protected sinks.
	m.rankMu.RLock()
	for _, tr := range added {
		node := query.NewProjection(tr.R, query.NewAnchor(tr.H))
		answers := query.NewSet(m.graph.Successors(tr.H, tr.R)...)
		answers[tr.T] = struct{}{} // the new tail is an answer even if the graph apply is pending
		negs := model.SampleNegatives(answers, numEnt, cfg.NegSamples, rng)
		if len(negs) == 0 {
			continue
		}
		tape.Reset()
		arc := m.Embed(tape, node)
		scores := m.scoreEntities(tape, append([]kg.EntityID{tr.T}, negs...), []Arc{arc})
		posLoss := tape.Neg(tape.LogSigmoid(tape.AddScalar(tape.Neg(tape.Slice(scores, 0, 1)), m.cfg.Gamma)))
		negLoss := tape.Mean(tape.Neg(tape.LogSigmoid(tape.AddScalar(tape.Slice(scores, 1, len(negs)), -m.cfg.Gamma))))
		loss := tape.Add(posLoss, negLoss)
		tape.Backward(loss)
		lossSum += loss.Value()[0]
		edges++
		dirtyEnt[tr.H] = struct{}{}
		dirtyEnt[tr.T] = struct{}{}
		for _, n := range negs {
			dirtyEnt[n] = struct{}{}
		}
		dirtyRel[tr.R] = struct{}{}
	}
	for _, tr := range removed {
		node := query.NewProjection(tr.R, query.NewAnchor(tr.H))
		tape.Reset()
		arc := m.Embed(tape, node)
		scores := m.scoreEntities(tape, []kg.EntityID{tr.T}, []Arc{arc})
		// Push the retracted tail out of the arc: −log σ(score − γ), the
		// negative-sample half of Eq. 17 applied to exactly this entity.
		loss := tape.Neg(tape.LogSigmoid(tape.AddScalar(scores, -m.cfg.Gamma)))
		tape.Backward(loss)
		lossSum += loss.Value()[0]
		edges++
		dirtyEnt[tr.H] = struct{}{}
		dirtyEnt[tr.T] = struct{}{}
		dirtyRel[tr.R] = struct{}{}
	}
	m.rankMu.RUnlock()

	res := FineTuneResult{Edges: edges}
	if edges == 0 {
		// Nothing contributed gradient; clear any stray accumulation and
		// leave the version untouched (no rebuilds, no cache invalidation).
		m.params.ZeroGrad()
		res.Version = m.EntityVersion()
		return res, nil
	}
	res.Loss = lossSum / float64(edges)
	res.DirtyEntities = make([]kg.EntityID, 0, len(dirtyEnt))
	for e := range dirtyEnt {
		res.DirtyEntities = append(res.DirtyEntities, e)
	}
	sort.Slice(res.DirtyEntities, func(i, j int) bool { return res.DirtyEntities[i] < res.DirtyEntities[j] })
	res.DirtyRelations = make([]kg.RelationID, 0, len(dirtyRel))
	for r := range dirtyRel {
		res.DirtyRelations = append(res.DirtyRelations, r)
	}
	sort.Slice(res.DirtyRelations, func(i, j int) bool { return res.DirtyRelations[i] < res.DirtyRelations[j] })

	// Apply: write-lock so no ranking observes a half-applied batch, and
	// bump the version inside the same critical section as the writes.
	m.rankMu.Lock()
	for _, e := range res.DirtyEntities {
		applyRowSGD(m.ent, int(e), cfg.LR, cfg.MaxStep)
	}
	for _, r := range res.DirtyRelations {
		applyRowSGD(m.relC, int(r), cfg.LR, cfg.MaxStep)
		applyRowSGD(m.relL, int(r), cfg.LR, cfg.MaxStep)
	}
	// The MLP heads' gradients (and any row we chose not to step) are
	// discarded: fine-tune moves embeddings only.
	m.params.ZeroGrad()
	res.Version = m.entVersion.Add(1)
	m.rankMu.Unlock()
	return res, nil
}

// applyRowSGD steps one tensor row against its accumulated gradient,
// capping the update's L2 norm at maxStep. Rows with zero gradient are
// left byte-identical (no multiply-by-zero rewrite).
func applyRowSGD(t *autodiff.Tensor, row int, lr, maxStep float64) {
	cols := t.Cols
	grad := t.Grad[row*cols : (row+1)*cols]
	norm := 0.0
	for _, g := range grad {
		norm += g * g
	}
	if norm == 0 {
		return
	}
	scale := lr
	if step := lr * math.Sqrt(norm); step > maxStep {
		scale = maxStep / math.Sqrt(norm)
	}
	data := t.Data[row*cols : (row+1)*cols]
	for j, g := range grad {
		data[j] -= scale * g
	}
}
