package halk

import (
	"context"
	"fmt"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// This file holds the online serving entry points: context-aware ranking
// that can be abandoned on a per-request deadline, and a thread-safe
// entity-table update so a serving process can patch embeddings (e.g.
// after an incremental retrain) without stopping in-flight queries.
// Ranking holds rankMu on the read side; SetEntityAngles takes the write
// side, so a scan never observes a half-written entity row, and the
// copy-on-invalidate trigCache guarantees that tables handed to an
// in-flight scan are never rewritten underneath it.

// DistancesContext is the cancellable counterpart of Distances: it
// returns ctx.Err() as soon as the entity scan notices the context is
// done, instead of completing the full ranking.
func (m *Model) DistancesContext(ctx context.Context, n *query.Node) ([]float64, error) {
	m.rankMu.RLock()
	defer m.rankMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.distancesLocked(ctx, n)
}

// TopKContext ranks the k best answers under a context deadline.
func (m *Model) TopKContext(ctx context.Context, n *query.Node, k int) ([]kg.EntityID, error) {
	d, err := m.DistancesContext(ctx, n)
	if err != nil {
		return nil, err
	}
	return lowestK(d, k), nil
}

// SetEntityAngles atomically replaces the point embedding of entity e
// with the given angle vector. It blocks until in-flight rankings have
// finished, installs the new row, and lets subsequent rankings rebuild
// the trig cache from the updated table. An AnswerIndex built before the
// update keeps its snapshot; rebuild it to re-sync the candidate buckets.
func (m *Model) SetEntityAngles(e kg.EntityID, angles []float64) error {
	if len(angles) != m.cfg.Dim {
		return fmt.Errorf("halk: SetEntityAngles: got %d angles, model dim is %d", len(angles), m.cfg.Dim)
	}
	if int(e) < 0 || int(e) >= m.graph.NumEntities() {
		return fmt.Errorf("halk: SetEntityAngles: entity %d out of range [0, %d)", e, m.graph.NumEntities())
	}
	m.rankMu.Lock()
	copy(m.ent.Row(int(e)), angles)
	m.entVersion.Add(1)
	m.rankMu.Unlock()
	return nil
}
