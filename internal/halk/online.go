package halk

import (
	"context"
	"fmt"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// This file holds the online serving entry points: context-aware ranking
// that can be abandoned on a per-request deadline, and a thread-safe
// entity-table update so a serving process can patch embeddings (e.g.
// after an incremental retrain) without stopping in-flight queries.
// Ranking holds rankMu on the read side; SetEntityAngles takes the write
// side, so a scan never observes a half-written entity row, and the
// copy-on-invalidate trigCache guarantees that tables handed to an
// in-flight scan are never rewritten underneath it.

// DistancesContext is the cancellable counterpart of Distances: it
// returns ctx.Err() as soon as the entity scan notices the context is
// done, instead of completing the full ranking.
func (m *Model) DistancesContext(ctx context.Context, n *query.Node) ([]float64, error) {
	m.rankMu.RLock()
	defer m.rankMu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.distancesLocked(ctx, n)
}

// TopKContext ranks the k best answers under a context deadline.
func (m *Model) TopKContext(ctx context.Context, n *query.Node, k int) ([]kg.EntityID, error) {
	d, err := m.DistancesContext(ctx, n)
	if err != nil {
		return nil, err
	}
	return lowestK(d, k), nil
}

// SetEntityAngles atomically replaces the point embedding of entity e
// with the given angle vector. It blocks until in-flight rankings have
// finished, installs the new row, and lets subsequent rankings rebuild
// the trig cache from the updated table. An AnswerIndex built before the
// update keeps its snapshot; rebuild it to re-sync the candidate buckets.
//
// Concurrent rank visibility contract: the row write and the
// entity-version bump happen in the same rankMu critical section, and
// every ranking reads the version while holding the read side (the trig
// cache fingerprints its tables with the version it read under RLock).
// Therefore a ranking either ran entirely before the update (old row,
// old version) or entirely after (new row, new version) — it can never
// pair the new version with the old row or vice versa. Because cache
// keys are namespaced by version, a cached answer is never served
// across the bump: post-update requests carry the new version in their
// key and cannot hit entries computed from the old table. Callers
// updating many rows should use SetEntityAnglesBatch — one critical
// section and one version bump for the whole batch, so readers never
// observe a partially-updated table and downstream snapshot/ANN
// rebuilds are triggered once, not per row.
func (m *Model) SetEntityAngles(e kg.EntityID, angles []float64) error {
	if err := m.checkEntityAngles(e, angles); err != nil {
		return err
	}
	m.rankMu.Lock()
	copy(m.ent.Row(int(e)), angles)
	m.entVersion.Add(1)
	m.rankMu.Unlock()
	return nil
}

// EntityUpdate pairs an entity with its replacement angle vector.
type EntityUpdate struct {
	E      kg.EntityID
	Angles []float64
}

// SetEntityAnglesBatch atomically replaces the point embeddings of many
// entities with a single version bump. All updates are validated before
// any row is written, so the call either applies the whole batch or
// nothing. Rankings serialized against the batch observe either the
// entire old table or the entire new one — never a mix — under the same
// visibility contract as SetEntityAngles.
func (m *Model) SetEntityAnglesBatch(updates []EntityUpdate) error {
	for _, u := range updates {
		if err := m.checkEntityAngles(u.E, u.Angles); err != nil {
			return err
		}
	}
	if len(updates) == 0 {
		return nil
	}
	m.rankMu.Lock()
	for _, u := range updates {
		copy(m.ent.Row(int(u.E)), u.Angles)
	}
	m.entVersion.Add(1)
	m.rankMu.Unlock()
	return nil
}

func (m *Model) checkEntityAngles(e kg.EntityID, angles []float64) error {
	if len(angles) != m.cfg.Dim {
		return fmt.Errorf("halk: SetEntityAngles: got %d angles, model dim is %d", len(angles), m.cfg.Dim)
	}
	if int(e) < 0 || int(e) >= m.graph.NumEntities() {
		return fmt.Errorf("halk: SetEntityAngles: entity %d out of range [0, %d)", e, m.graph.NumEntities())
	}
	return nil
}
