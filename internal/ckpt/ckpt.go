// Package ckpt is the durable checkpoint lifecycle: a versioned,
// CRC-checksummed envelope around an opaque payload, written atomically
// (temp file in the target directory → Sync → Close → Rename) so a
// crash mid-write can never leave a torn file under the published name;
// a keep-last-N rotation directory with a LATEST manifest so training
// can fall back to the previous entry when the newest fails
// verification; a polling Watcher so a serving process can pick up
// fresh checkpoints without restarting; and a Status block exporting
// checkpoint freshness as metrics.
//
// The package is payload-agnostic: halk writes its gob stream (header,
// parameters, optimizer state) through WriteFile and reads it back
// through ReadFile, which verifies the envelope end to end before a
// single payload byte is decoded. Verification failures are typed —
// ErrNotCheckpoint, ErrVersion, ErrTruncated, ErrChecksum — so callers
// can tell a permanently corrupt file (never retry) from a transient
// read problem (retry).
//
// Envelope layout (all integers big-endian):
//
//	offset 0       magic "HALKCKPT" (8 bytes)
//	offset 8       format version uint32 (currently 1)
//	offset 12      payload (length implied by the footer)
//	end-20         payload length uint64
//	end-12         CRC-32C (Castagnoli) of the payload uint32
//	end-8          end magic "HALKCEND" (8 bytes)
//
// The footer is what makes truncation detectable: a file cut at any
// offset either loses the end magic (ErrTruncated) or keeps it while
// the recorded length no longer matches the bytes present
// (ErrTruncated), and a bit flip anywhere in the payload fails the CRC
// (ErrChecksum).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Format constants.
const (
	headerLen = 12 // magic + version
	footerLen = 20 // length + crc + end magic

	// FormatVersion is the envelope version this package writes.
	FormatVersion = 1
)

var (
	magic    = []byte("HALKCKPT")
	endMagic = []byte("HALKCEND")

	// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Typed verification errors. All four mark the file itself as bad — a
// retry against the same bytes can never succeed — as opposed to an
// *os.PathError from Open/Read, which may be transient.
var (
	// ErrNotCheckpoint is returned for a file without the envelope magic
	// (including an empty file). Legacy pre-envelope checkpoints land
	// here, so callers can fall back to a raw read if they support them.
	ErrNotCheckpoint = errors.New("ckpt: not a checkpoint envelope (bad or missing magic)")
	// ErrVersion is returned for an envelope written by a newer (or
	// corrupted) format version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint format version")
	// ErrTruncated is returned when the file is shorter than the recorded
	// payload, or the footer itself is cut off.
	ErrTruncated = errors.New("ckpt: checkpoint truncated")
	// ErrChecksum is returned when the payload bytes fail the CRC.
	ErrChecksum = errors.New("ckpt: checkpoint checksum mismatch")
)

// IsCorrupt reports whether err is one of the envelope verification
// failures — a permanent property of the file, not a transient I/O
// problem.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrNotCheckpoint) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum)
}

// payloadSink wraps the temp file every envelope byte is written
// through. Tests swap it for a short-writing sink to simulate a full
// disk (ENOSPC) and assert that WriteFile reports the failure instead
// of publishing a truncated file.
var payloadSink = func(f *os.File) io.Writer { return f }

// WriteFile atomically writes an envelope whose payload is produced by
// write. The payload goes to a temp file in path's directory; only
// after the payload, the footer, and an fsync all succeed is the temp
// file renamed over path. On any failure the temp file is removed and
// path is left untouched — a reader can never observe a half-written
// checkpoint under the published name.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	sink := payloadSink(f)
	var hdr [headerLen]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint32(hdr[8:12], FormatVersion)
	if _, err = sink.Write(hdr[:]); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}

	cw := &crcWriter{w: sink}
	if err = write(cw); err != nil {
		return fmt.Errorf("ckpt: write payload: %w", err)
	}

	var ftr [footerLen]byte
	binary.BigEndian.PutUint64(ftr[0:8], uint64(cw.n))
	binary.BigEndian.PutUint32(ftr[8:12], cw.crc)
	copy(ftr[12:20], endMagic)
	if _, err = sink.Write(ftr[:]); err != nil {
		return fmt.Errorf("ckpt: write footer: %w", err)
	}

	// Sync before rename: the rename must never publish a name whose
	// bytes are still only in the page cache when the machine dies.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	syncDir(dir) // best effort: make the rename itself durable
	return nil
}

// crcWriter tees writes into a running CRC-32C and byte count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Failures are ignored: not every filesystem supports it, and the
// rename itself already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// ReadFile reads path, verifies the envelope (magic, version, length,
// CRC) and returns the payload bytes. Verification failures return the
// typed errors above; nothing of the payload is exposed unless every
// check passed.
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Verify(raw)
}

// Verify checks a whole envelope held in memory and returns its
// payload. See ReadFile.
func Verify(raw []byte) ([]byte, error) {
	if len(raw) < headerLen || string(raw[:8]) != string(magic) {
		return nil, fmt.Errorf("%w (%d bytes)", ErrNotCheckpoint, len(raw))
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, FormatVersion)
	}
	if len(raw) < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %d bytes is too short for a footer", ErrTruncated, len(raw))
	}
	ftr := raw[len(raw)-footerLen:]
	if string(ftr[12:20]) != string(endMagic) {
		return nil, fmt.Errorf("%w: end marker missing", ErrTruncated)
	}
	wantLen := binary.BigEndian.Uint64(ftr[0:8])
	payload := raw[headerLen : len(raw)-footerLen]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("%w: footer records %d payload bytes, file holds %d", ErrTruncated, wantLen, len(payload))
	}
	if got := crc32.Checksum(payload, castagnoli); got != binary.BigEndian.Uint32(ftr[8:12]) {
		return nil, fmt.Errorf("%w: crc32c %08x, footer records %08x", ErrChecksum, got, binary.BigEndian.Uint32(ftr[8:12]))
	}
	return payload, nil
}
