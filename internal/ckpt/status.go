package ckpt

import (
	"strconv"
	"sync"
	"time"

	"github.com/halk-kg/halk/internal/obs"
)

// Status tracks which checkpoint a serving process is answering from,
// and how the hot-reload loop is faring. It backs both the
// halk_ckpt_* metric families and the "checkpoint" section of
// /v1/stats, so staleness is monitorable from either surface. All
// methods are safe for concurrent use.
type Status struct {
	mu       sync.Mutex
	path     string
	dataset  string
	seed     int64
	step     int // training step the checkpoint was cut at; -1 unknown
	entityV  uint64
	loadedAt time.Time

	reloads  *obs.Counter
	failures *obs.Counter
}

// NewStatus returns an empty status; call Register to export it, and
// SetLoaded after the initial checkpoint load.
func NewStatus() *Status { return &Status{step: -1} }

// Register exports the status on reg:
//
//	halk_ckpt_loaded_timestamp_seconds  gauge — unix time of the last successful load
//	halk_ckpt_loaded_age_seconds        gauge — seconds since that load
//	halk_ckpt_loaded_step               gauge — training step the checkpoint was cut at (-1 unknown)
//	halk_ckpt_loaded_info{dataset,seed} gauge — constant 1, identity labels
//	halk_ckpt_reloads_total             counter — successful hot reloads
//	halk_ckpt_reload_failures_total     counter — rejected reload candidates (corrupt, mismatched)
//
// Call after the initial load so the identity labels are known.
func (s *Status) Register(reg *obs.Registry) {
	s.mu.Lock()
	dataset, seed := s.dataset, s.seed
	s.mu.Unlock()
	reg.GaugeFunc("halk_ckpt_loaded_timestamp_seconds",
		"Unix time the serving checkpoint was loaded.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.loadedAt.IsZero() {
				return 0
			}
			return float64(s.loadedAt.UnixNano()) / 1e9
		})
	reg.GaugeFunc("halk_ckpt_loaded_age_seconds",
		"Seconds since the serving checkpoint was loaded.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.loadedAt.IsZero() {
				return 0
			}
			return time.Since(s.loadedAt).Seconds()
		})
	reg.GaugeFunc("halk_ckpt_loaded_step",
		"Training step the serving checkpoint was cut at (-1 when unknown).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.step)
		})
	reg.GaugeFunc("halk_ckpt_loaded_info",
		"Identity of the serving checkpoint (constant 1; see labels).",
		func() float64 { return 1 },
		obs.L("dataset", dataset), obs.L("seed", strconv.FormatInt(seed, 10)))
	s.mu.Lock()
	s.reloads = reg.Counter("halk_ckpt_reloads_total", "Successful checkpoint hot reloads.")
	s.failures = reg.Counter("halk_ckpt_reload_failures_total",
		"Checkpoint reload candidates rejected (corrupt envelope, decode failure, or dataset/config mismatch).")
	s.mu.Unlock()
}

// SetLoaded records a successful (re)load. step < 0 means the
// checkpoint carried no training state. The first call is the initial
// load; subsequent calls also count a reload.
func (s *Status) SetLoaded(path, dataset string, seed int64, step int, entityVersion uint64) {
	s.mu.Lock()
	first := s.loadedAt.IsZero()
	s.path, s.dataset, s.seed = path, dataset, seed
	s.step, s.entityV = step, entityVersion
	s.loadedAt = time.Now()
	c := s.reloads
	s.mu.Unlock()
	if !first && c != nil {
		c.Inc()
	}
}

// ReloadFailed counts a rejected reload candidate. The previously
// loaded checkpoint keeps serving; nothing else changes.
func (s *Status) ReloadFailed() {
	s.mu.Lock()
	c := s.failures
	s.mu.Unlock()
	if c != nil {
		c.Inc()
	}
}

// StatusSnapshot is the JSON view of a Status (the "checkpoint"
// section of /v1/stats).
type StatusSnapshot struct {
	Path          string  `json:"path"`
	Dataset       string  `json:"dataset"`
	Seed          int64   `json:"seed"`
	Step          int     `json:"step"`
	EntityVersion uint64  `json:"entity_version"`
	LoadedAt      string  `json:"loaded_at"`
	AgeS          float64 `json:"age_s"`
	Reloads       uint64  `json:"reloads"`
	Failures      uint64  `json:"reload_failures"`
}

// Snapshot returns the current status for JSON exposition.
func (s *Status) Snapshot() StatusSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatusSnapshot{
		Path:          s.path,
		Dataset:       s.dataset,
		Seed:          s.seed,
		Step:          s.step,
		EntityVersion: s.entityV,
	}
	if !s.loadedAt.IsZero() {
		snap.LoadedAt = s.loadedAt.UTC().Format(time.RFC3339)
		snap.AgeS = time.Since(s.loadedAt).Seconds()
	}
	if s.reloads != nil {
		snap.Reloads = s.reloads.Value()
		snap.Failures = s.failures.Value()
	}
	return snap
}
