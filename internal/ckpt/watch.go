package ckpt

import (
	"os"
	"time"
)

// Watcher detects new checkpoints under a path without inotify: it
// resolves the current candidate file (the path itself, or the newest
// rotation entry when path is a directory) and compares its identity —
// name, size, modification time — against the last acknowledged load.
// Because checkpoints are published by rename, a visible file never
// changes in place; a changed identity therefore always means a new,
// complete file.
//
// Watcher is not safe for concurrent use; drive it from one polling
// goroutine.
type Watcher struct {
	path string

	lastPath string
	lastSize int64
	lastMod  time.Time
}

// NewWatcher watches path — a checkpoint file, or a rotation directory
// whose newest entry is the candidate.
func NewWatcher(path string) *Watcher { return &Watcher{path: path} }

// resolve returns the candidate file for the watched path.
func (w *Watcher) resolve() (string, error) {
	fi, err := os.Stat(w.path)
	if err != nil {
		return "", err
	}
	if fi.IsDir() {
		return (&Dir{Path: w.path}).LatestPath()
	}
	return w.path, nil
}

// Ack records path as the currently loaded checkpoint, so Poll only
// reports candidates that differ from it. Call it after the initial
// load and after every successful reload; after a failed reload, do
// not Ack — a subsequent newer file will then still register as a
// change. Ack also dedupes a failed candidate if the caller chooses to
// give up on it.
func (w *Watcher) Ack(path string) {
	w.lastPath = path
	w.lastSize, w.lastMod = 0, time.Time{}
	if fi, err := os.Stat(path); err == nil {
		w.lastSize, w.lastMod = fi.Size(), fi.ModTime()
	}
}

// Poll resolves the current candidate and reports whether it differs
// from the last acknowledged load. A missing path or empty rotation is
// not an error — it reports no change (the checkpoint may simply not
// have been written yet).
func (w *Watcher) Poll() (path string, changed bool, err error) {
	cand, err := w.resolve()
	if err != nil {
		if os.IsNotExist(err) {
			return "", false, nil
		}
		return "", false, err
	}
	fi, err := os.Stat(cand)
	if err != nil {
		if os.IsNotExist(err) {
			return "", false, nil
		}
		return "", false, err
	}
	if cand == w.lastPath && fi.Size() == w.lastSize && fi.ModTime().Equal(w.lastMod) {
		return cand, false, nil
	}
	return cand, true, nil
}
