package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultKeep is the rotation depth when Dir.Keep is zero.
const DefaultKeep = 3

// manifestName is the rotation manifest: a one-line file naming the
// newest entry, itself written atomically. Readers prefer it but never
// trust it blindly — Entries falls back to a directory listing, so a
// lost or stale manifest degrades to a scan, not a lost rotation.
const manifestName = "LATEST"

// entryPrefix/entrySuffix frame rotation entry names:
// ckpt-<step, zero-padded>.ckpt.
const (
	entryPrefix = "ckpt-"
	entrySuffix = ".ckpt"
)

// Dir is a keep-last-N checkpoint rotation directory. Save writes
// entries named by training step; the Keep newest are retained. All
// methods are safe for sequential use by one writer plus any number of
// concurrent readers (atomic renames make every published file
// immutable).
type Dir struct {
	// Path is the rotation directory; Save creates it on first use.
	Path string
	// Keep is how many entries to retain; 0 means DefaultKeep.
	Keep int
}

// Entry is one rotation entry.
type Entry struct {
	// Path is the entry's file path.
	Path string
	// Step is the training step the entry was cut at.
	Step int
}

// EntryName returns the rotation file name for a step.
func EntryName(step int) string {
	return fmt.Sprintf("%s%08d%s", entryPrefix, step, entrySuffix)
}

// Save atomically writes a new rotation entry for the given step,
// updates the LATEST manifest, and prunes entries beyond Keep (oldest
// first). The entry is durable before the manifest names it.
func (d *Dir) Save(step int, write func(w io.Writer) error) (string, error) {
	if err := os.MkdirAll(d.Path, 0o755); err != nil {
		return "", fmt.Errorf("ckpt: create rotation dir: %w", err)
	}
	path := filepath.Join(d.Path, EntryName(step))
	if err := WriteFile(path, write); err != nil {
		return "", err
	}
	// The manifest is advisory (Entries falls back to a scan), so a
	// failed manifest write does not fail the save.
	_ = WriteFile(filepath.Join(d.Path, manifestName), func(w io.Writer) error {
		_, err := w.Write([]byte(EntryName(step)))
		return err
	})
	d.prune(step)
	return path, nil
}

// prune removes the oldest entries beyond Keep, never touching the
// entry just written.
func (d *Dir) prune(justWrote int) {
	keep := d.Keep
	if keep <= 0 {
		keep = DefaultKeep
	}
	entries, err := d.Entries()
	if err != nil {
		return
	}
	for _, e := range entries[min(keep, len(entries)):] {
		if e.Step == justWrote {
			continue
		}
		_ = os.Remove(e.Path)
	}
}

// Entries lists the rotation entries, newest (highest step) first. The
// listing comes from the directory itself, not the manifest, so a
// corrupt newest entry still leaves its predecessors discoverable for
// fallback.
func (d *Dir) Entries() ([]Entry, error) {
	des, err := os.ReadDir(d.Path)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, entryPrefix) || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		step, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, entryPrefix), entrySuffix))
		if err != nil {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(d.Path, name), Step: step})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step > out[j].Step })
	return out, nil
}

// LatestPath resolves the newest entry: the manifest's if it names an
// existing file, otherwise the highest-step entry on disk. Returns
// os.ErrNotExist when the rotation is empty.
func (d *Dir) LatestPath() (string, error) {
	if raw, err := os.ReadFile(filepath.Join(d.Path, manifestName)); err == nil {
		if payload, err := Verify(raw); err == nil {
			p := filepath.Join(d.Path, strings.TrimSpace(string(payload)))
			if _, err := os.Stat(p); err == nil {
				return p, nil
			}
		}
	}
	entries, err := d.Entries()
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("ckpt: rotation %s is empty: %w", d.Path, os.ErrNotExist)
	}
	return entries[0].Path, nil
}

// LoadLatest walks the rotation newest→oldest, handing each verified
// payload to load until one succeeds. Entries that fail envelope
// verification — and entries whose payload load rejects (decode error,
// wrong dataset) — are skipped with their error recorded, so a torn or
// bit-flipped newest file falls back to its predecessor instead of
// failing the caller. Returns the winning entry, or an error joining
// every per-entry failure when none loads.
func (d *Dir) LoadLatest(load func(e Entry, payload []byte) error) (Entry, error) {
	entries, err := d.Entries()
	if err != nil {
		return Entry{}, err
	}
	if len(entries) == 0 {
		return Entry{}, fmt.Errorf("ckpt: rotation %s is empty: %w", d.Path, os.ErrNotExist)
	}
	var errs []error
	for _, e := range entries {
		payload, err := ReadFile(e.Path)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Path, err))
			continue
		}
		if err := load(e, payload); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Path, err))
			continue
		}
		return e, nil
	}
	return Entry{}, fmt.Errorf("ckpt: no loadable entry in %s: %w", d.Path, errors.Join(errs...))
}
