package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/obs"
)

func writeEnvelope(t *testing.T, path string, payload []byte) {
	t.Helper()
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	payload := []byte("the quick brown fox")
	writeEnvelope(t, path, payload)
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	// Zero-length payloads are legal too.
	writeEnvelope(t, path, nil)
	if got, err := ReadFile(path); err != nil || len(got) != 0 {
		t.Fatalf("empty payload: got %q, %v", got, err)
	}
}

func TestReadFileEmptyAndForeign(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(empty); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("empty file: got %v, want ErrNotCheckpoint", err)
	}
	foreign := filepath.Join(dir, "foreign.ckpt")
	if err := os.WriteFile(foreign, []byte("this is not a checkpoint at all, just bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(foreign); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("foreign file: got %v, want ErrNotCheckpoint", err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want not-exist", err)
	}
}

// TestTruncationAtEveryOffset cuts a valid envelope at every possible
// length and asserts each cut is rejected with a typed corruption
// error — no prefix of a checkpoint is ever accepted.
func TestTruncationAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt")
	writeEnvelope(t, path, []byte("payload payload payload"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if _, err := Verify(raw[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", n, len(raw))
		} else if !IsCorrupt(err) {
			t.Fatalf("truncation to %d bytes: error %v is not a typed corruption error", n, err)
		}
	}
}

// TestBitFlipAtEveryOffset flips one bit at every byte of a valid
// envelope and asserts verification fails each time with a typed error.
func TestBitFlipAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.ckpt")
	writeEnvelope(t, path, []byte("sensitive model parameters"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := Verify(mut); err == nil {
			t.Fatalf("bit flip at offset %d was accepted", i)
		} else if !IsCorrupt(err) {
			t.Fatalf("bit flip at offset %d: error %v is not a typed corruption error", i, err)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.ckpt")
	writeEnvelope(t, path, []byte("x"))
	raw, _ := os.ReadFile(path)
	raw[11] = 99 // future format version
	if _, err := Verify(raw); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// shortWriter simulates a disk that fills up after limit bytes: writes
// beyond it are cut short, as write(2) behaves on ENOSPC.
type shortWriter struct {
	w     io.Writer
	limit int
	n     int
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.n >= s.limit {
		return 0, fmt.Errorf("short write: disk full")
	}
	if rem := s.limit - s.n; len(p) > rem {
		n, _ := s.w.Write(p[:rem])
		s.n += n
		return n, fmt.Errorf("short write: disk full")
	}
	n, err := s.w.Write(p)
	s.n += n
	return n, err
}

// TestWriteFileShortWrite is the ENOSPC regression test: a write that
// runs out of space mid-payload must surface an error and must not
// publish anything under the target name — the previous checkpoint (or
// its absence) is preserved bit for bit, and no temp litter remains.
func TestWriteFileShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	writeEnvelope(t, path, []byte("the good old checkpoint"))

	orig := payloadSink
	defer func() { payloadSink = orig }()
	for _, limit := range []int{0, 5, headerLen, headerLen + 3, headerLen + 40} {
		payloadSink = func(f *os.File) io.Writer { return &shortWriter{w: f, limit: limit} }
		err := WriteFile(path, func(w io.Writer) error {
			_, err := w.Write([]byte(strings.Repeat("new shiny checkpoint ", 4)))
			return err
		})
		if err == nil {
			t.Fatalf("limit %d: WriteFile reported success on a full disk", limit)
		}
		got, rerr := ReadFile(path)
		if rerr != nil || string(got) != "the good old checkpoint" {
			t.Fatalf("limit %d: previous checkpoint damaged: %q, %v", limit, got, rerr)
		}
	}
	payloadSink = orig

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.Contains(de.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind after failed writes", de.Name())
		}
	}
}

// TestWriteFilePayloadError: an error from the payload callback aborts
// the write without touching the target.
func TestWriteFilePayloadError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.ckpt")
	sentinel := errors.New("payload build failed")
	err := WriteFile(path, func(w io.Writer) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target was created despite payload error")
	}
}

func TestRotationSavePruneAndLatest(t *testing.T) {
	d := &Dir{Path: filepath.Join(t.TempDir(), "rot"), Keep: 2}
	for _, step := range []int{100, 200, 300, 400} {
		step := step
		if _, err := d.Save(step, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "state@%d", step)
			return err
		}); err != nil {
			t.Fatalf("Save(%d): %v", step, err)
		}
	}
	entries, err := d.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Step != 400 || entries[1].Step != 300 {
		t.Fatalf("entries after prune: %+v, want steps [400 300]", entries)
	}
	latest, err := d.LatestPath()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != EntryName(400) {
		t.Fatalf("LatestPath = %s, want %s", latest, EntryName(400))
	}
	e, err := d.LoadLatest(func(e Entry, payload []byte) error {
		if string(payload) != fmt.Sprintf("state@%d", e.Step) {
			return fmt.Errorf("bad payload %q", payload)
		}
		return nil
	})
	if err != nil || e.Step != 400 {
		t.Fatalf("LoadLatest: %+v, %v", e, err)
	}
}

// TestLoadLatestFallsBackPastCorruptNewest is the kill-mid-write
// recovery path: the newest rotation entry is torn (simulating a crash
// with a non-atomic writer, or on-disk corruption) and loading must
// fall back to the previous entry.
func TestLoadLatestFallsBackPastCorruptNewest(t *testing.T) {
	d := &Dir{Path: filepath.Join(t.TempDir(), "rot"), Keep: 3}
	for _, step := range []int{10, 20} {
		step := step
		if _, err := d.Save(step, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "state@%d", step)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest entry: keep only the first half of its bytes.
	newest := filepath.Join(d.Path, EntryName(20))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := d.LoadLatest(func(e Entry, payload []byte) error {
		if string(payload) != fmt.Sprintf("state@%d", e.Step) {
			return fmt.Errorf("bad payload %q", payload)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("LoadLatest with torn newest: %v", err)
	}
	if e.Step != 10 {
		t.Fatalf("fell back to step %d, want 10", e.Step)
	}
	// With every entry corrupt, the error joins all per-entry failures.
	older := filepath.Join(d.Path, EntryName(10))
	if err := os.WriteFile(older, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadLatest(func(Entry, []byte) error { return nil }); err == nil {
		t.Fatal("LoadLatest succeeded with every entry corrupt")
	}
}

func TestWatcherFileAndDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.ckpt")
	w := NewWatcher(path)

	// Nothing on disk yet: no change, no error.
	if _, changed, err := w.Poll(); changed || err != nil {
		t.Fatalf("empty poll: changed=%v err=%v", changed, err)
	}
	writeEnvelope(t, path, []byte("v1"))
	cand, changed, err := w.Poll()
	if err != nil || !changed || cand != path {
		t.Fatalf("first poll: %q %v %v", cand, changed, err)
	}
	w.Ack(path)
	if _, changed, _ := w.Poll(); changed {
		t.Fatal("acked file still reports change")
	}
	// Rewrite (atomic rename gives a fresh inode/mtime/size).
	writeEnvelope(t, path, []byte("v2 is longer"))
	if _, changed, _ := w.Poll(); !changed {
		t.Fatal("rewritten file not detected")
	}

	// Directory mode: the newest rotation entry is the candidate.
	rot := &Dir{Path: filepath.Join(dir, "rot"), Keep: 3}
	dw := NewWatcher(rot.Path)
	if _, changed, err := dw.Poll(); changed || err != nil {
		t.Fatalf("empty rotation poll: changed=%v err=%v", changed, err)
	}
	if _, err := rot.Save(1, func(w io.Writer) error { _, err := w.Write([]byte("s1")); return err }); err != nil {
		t.Fatal(err)
	}
	cand, changed, err = dw.Poll()
	if err != nil || !changed || filepath.Base(cand) != EntryName(1) {
		t.Fatalf("rotation poll: %q %v %v", cand, changed, err)
	}
	dw.Ack(cand)
	if _, err := rot.Save(2, func(w io.Writer) error { _, err := w.Write([]byte("s2")); return err }); err != nil {
		t.Fatal(err)
	}
	cand, changed, _ = dw.Poll()
	if !changed || filepath.Base(cand) != EntryName(2) {
		t.Fatalf("new rotation entry not detected: %q %v", cand, changed)
	}
}

func TestStatusMetricsAndSnapshot(t *testing.T) {
	s := NewStatus()
	s.SetLoaded("/tmp/a.ckpt", "FB237", 7, 4000, 3)
	reg := obs.NewRegistry()
	s.Register(reg)

	s.ReloadFailed()
	s.SetLoaded("/tmp/b.ckpt", "FB237", 7, 8000, 4)

	snap := s.Snapshot()
	if snap.Path != "/tmp/b.ckpt" || snap.Dataset != "FB237" || snap.Seed != 7 ||
		snap.Step != 8000 || snap.EntityVersion != 4 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.Reloads != 1 || snap.Failures != 1 {
		t.Fatalf("counters: %+v", snap)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"halk_ckpt_loaded_timestamp_seconds",
		"halk_ckpt_loaded_step 8000",
		`halk_ckpt_loaded_info{dataset="FB237",seed="7"} 1`,
		"halk_ckpt_reloads_total 1",
		"halk_ckpt_reload_failures_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
