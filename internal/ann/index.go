// Package ann provides the approximate range search over entity point
// embeddings used by HaLk's online answer-identification phase
// (Sec. III-H suggests Locality Sensitive Hashing). The index buckets
// entities by quantised angles on a few randomly chosen dimensions
// ("bands"); a query probes the buckets its arc center falls into plus
// the adjacent ones, yielding a small candidate set to rank exactly.
package ann

import (
	"math"
	"math/rand"
	"slices"

	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
)

// Index is an angular multi-band hash over entity angle vectors.
type Index struct {
	bands   []band
	numEnts int
}

type band struct {
	dim     int     // which embedding dimension this band quantises
	width   float64 // bucket width in radians
	buckets map[int][]kg.EntityID
}

// Config controls index construction.
type Config struct {
	// Bands is the number of independent hash bands; more bands = higher
	// recall, more probes.
	Bands int
	// BucketsPerBand is the angular resolution of each band.
	BucketsPerBand int
	// Seed selects the banded dimensions.
	Seed int64
}

// DefaultConfig returns a recall-friendly configuration for d >= 8.
func DefaultConfig(seed int64) Config {
	return Config{Bands: 8, BucketsPerBand: 8, Seed: seed}
}

// New builds an index over points, where points[e] is the angle vector
// of entity e.
func New(points [][]float64, cfg Config) *Index {
	if len(points) == 0 {
		return &Index{}
	}
	dim := len(points[0])
	flat := make([]float64, 0, len(points)*dim)
	for _, p := range points {
		flat = append(flat, p...)
	}
	return NewFlat(flat, dim, 0, cfg)
}

// NewFlat builds an index over a row-major angle table (entity i's vector
// is data[i*dim : (i+1)*dim]), assigning entity i the global ID base+i.
// The base offset lets a shard index its contiguous slice of a larger
// entity table while reporting table-global candidate IDs.
func NewFlat(data []float64, dim int, base kg.EntityID, cfg Config) *Index {
	if len(data) == 0 || dim <= 0 {
		return &Index{}
	}
	n := len(data) / dim
	rng := rand.New(rand.NewSource(cfg.Seed))
	ix := &Index{numEnts: n}
	for b := 0; b < cfg.Bands; b++ {
		bd := band{
			dim:     rng.Intn(dim),
			width:   geometry.TwoPi / float64(cfg.BucketsPerBand),
			buckets: make(map[int][]kg.EntityID),
		}
		for e := 0; e < n; e++ {
			k := bd.key(data[e*dim+bd.dim])
			bd.buckets[k] = append(bd.buckets[k], base+kg.EntityID(e))
		}
		ix.bands = append(ix.bands, bd)
	}
	return ix
}

func (b *band) key(theta float64) int {
	return int(math.Floor(geometry.Wrap(theta) / b.width))
}

func (b *band) numBuckets() int {
	return int(math.Round(geometry.TwoPi / b.width))
}

// Candidates returns the union of entities sharing a bucket (or an
// adjacent bucket within the given angular radius) with the query center
// on any band, sorted ascending. The result is a superset candidate pool
// for exact ranking; it may miss true neighbours (LSH is approximate).
func (ix *Index) Candidates(center []float64, radius float64) []kg.EntityID {
	out := ix.AppendCandidates(nil, center, radius)
	slices.Sort(out)
	return slices.Compact(out)
}

// AppendCandidates appends the bucket probes' entities to dst and
// returns it — the allocation-free form of Candidates for callers that
// pool the buffer. The result is NOT deduplicated or sorted: an entity
// bucketed near the center on several bands appears once per band, so
// callers must sort + compact (which also makes the scan order
// deterministic, unlike the map-based dedup this replaces).
func (ix *Index) AppendCandidates(dst []kg.EntityID, center []float64, radius float64) []kg.EntityID {
	for _, b := range ix.bands {
		if b.dim >= len(center) {
			continue
		}
		theta := center[b.dim]
		spread := int(math.Ceil(radius/b.width)) + 1
		n := b.numBuckets()
		if 2*spread+1 >= n {
			// The probe window wraps the whole circle: visit each bucket
			// exactly once instead of re-appending wrapped duplicates.
			for k := 0; k < n; k++ {
				dst = append(dst, b.buckets[k]...)
			}
			continue
		}
		base := b.key(theta)
		for off := -spread; off <= spread; off++ {
			k := ((base+off)%n + n) % n
			dst = append(dst, b.buckets[k]...)
		}
	}
	return dst
}

// Len returns the number of indexed entities.
func (ix *Index) Len() int { return ix.numEnts }
