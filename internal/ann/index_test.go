package ann

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
)

func randomPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * geometry.TwoPi
		}
	}
	return pts
}

func TestIndexCandidatesContainSameBucketPoints(t *testing.T) {
	pts := randomPoints(200, 8, 1)
	ix := New(pts, DefaultConfig(2))
	if ix.Len() != 200 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Query with a point that is itself indexed: it must be among its
	// own candidates (it shares every bucket with itself).
	for e := 0; e < 200; e += 17 {
		cands := ix.Candidates(pts[e], 0.1)
		found := false
		for _, c := range cands {
			if c == kg.EntityID(e) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("entity %d missing from its own candidate set", e)
		}
	}
}

func TestIndexRecallOfNearNeighbours(t *testing.T) {
	// Points clustered around a center must be retrieved with a radius
	// covering the cluster.
	d := 8
	rng := rand.New(rand.NewSource(3))
	center := make([]float64, d)
	for j := range center {
		center[j] = rng.Float64() * geometry.TwoPi
	}
	var pts [][]float64
	// 20 near neighbours within ±0.1 radians on every dimension
	for i := 0; i < 20; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = geometry.Wrap(center[j] + (rng.Float64()-0.5)*0.2)
		}
		pts = append(pts, p)
	}
	// 200 random distractors
	pts = append(pts, randomPoints(200, d, 4)...)

	ix := New(pts, Config{Bands: 8, BucketsPerBand: 8, Seed: 5})
	cands := ix.Candidates(center, 0.2)
	got := make(map[kg.EntityID]bool)
	for _, c := range cands {
		got[c] = true
	}
	recall := 0
	for i := 0; i < 20; i++ {
		if got[kg.EntityID(i)] {
			recall++
		}
	}
	if recall < 18 {
		t.Errorf("recall of near neighbours %d/20", recall)
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	pts := randomPoints(50, 4, 6)
	ix := New(pts, Config{Bands: 6, BucketsPerBand: 4, Seed: 7})
	cands := ix.Candidates(pts[0], geometry.TwoPi) // probe everything
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for i := 1; i < len(cands); i++ {
		if cands[i] == cands[i-1] {
			t.Fatal("duplicate candidate")
		}
	}
	if len(cands) != 50 {
		t.Errorf("full-circle probe returned %d of 50", len(cands))
	}
}

// TestCandidatesWrapAroundSeam pins the bucket wrap-around at the 0/2π
// seam: neighbours on either side of angle 0 live in the first and last
// buckets of a band, and a probe near the seam must reach both through
// the modular bucket arithmetic.
func TestCandidatesWrapAroundSeam(t *testing.T) {
	// One dimension, so every band quantises the same angle and the
	// seam behaviour is deterministic regardless of the banded dims.
	pts := [][]float64{
		{0.05},                  // just past the seam
		{geometry.TwoPi - 0.05}, // just before the seam
		{geometry.TwoPi / 2},    // far side of the circle
	}
	ix := New(pts, Config{Bands: 4, BucketsPerBand: 8, Seed: 1})

	for _, center := range []float64{0.01, geometry.TwoPi - 0.01} {
		cands := ix.Candidates([]float64{center}, 0.2)
		got := make(map[kg.EntityID]bool)
		for _, c := range cands {
			got[c] = true
		}
		if !got[0] || !got[1] {
			t.Errorf("probe at %.2f: candidates %v miss a seam neighbour", center, cands)
		}
		if got[2] {
			t.Errorf("probe at %.2f: far-side point leaked into candidates %v", center, cands)
		}
	}
}

// TestCandidatesSeamBucketIndices asserts the probe offsets map onto
// valid buckets when the center's bucket is the first or last of the
// band (negative and >= numBuckets offsets must wrap, not vanish).
func TestCandidatesSeamBucketIndices(t *testing.T) {
	const buckets = 6
	width := geometry.TwoPi / buckets
	// One point per bucket center.
	var pts [][]float64
	for b := 0; b < buckets; b++ {
		pts = append(pts, []float64{(float64(b) + 0.5) * width})
	}
	ix := New(pts, Config{Bands: 3, BucketsPerBand: buckets, Seed: 2})

	// A radius just under one bucket width probes base ± 2 (spread =
	// ceil(radius/width) + 1): from bucket 0 that must include buckets 4
	// and 5 (wrapped), from the last bucket it must include 0 and 1.
	for _, tc := range []struct {
		center float64
		want   []kg.EntityID
	}{
		{0.5 * width, []kg.EntityID{4, 5, 0, 1, 2}},
		{(buckets - 0.5) * width, []kg.EntityID{3, 4, 5, 0, 1}},
	} {
		cands := ix.Candidates([]float64{tc.center}, width*0.9)
		got := make(map[kg.EntityID]bool)
		for _, c := range cands {
			got[c] = true
		}
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("center %.2f: bucket-point %d missing from %v", tc.center, w, cands)
			}
		}
		if len(cands) != len(tc.want) {
			t.Errorf("center %.2f: got %d candidates %v, want %d", tc.center, len(cands), cands, len(tc.want))
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(nil, DefaultConfig(1))
	if ix.Len() != 0 {
		t.Error("empty index should have length 0")
	}
	if got := ix.Candidates([]float64{0}, 1); len(got) != 0 {
		t.Error("empty index should return no candidates")
	}
}
