package ann

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
)

func randomPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * geometry.TwoPi
		}
	}
	return pts
}

func TestIndexCandidatesContainSameBucketPoints(t *testing.T) {
	pts := randomPoints(200, 8, 1)
	ix := New(pts, DefaultConfig(2))
	if ix.Len() != 200 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Query with a point that is itself indexed: it must be among its
	// own candidates (it shares every bucket with itself).
	for e := 0; e < 200; e += 17 {
		cands := ix.Candidates(pts[e], 0.1)
		found := false
		for _, c := range cands {
			if c == kg.EntityID(e) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("entity %d missing from its own candidate set", e)
		}
	}
}

func TestIndexRecallOfNearNeighbours(t *testing.T) {
	// Points clustered around a center must be retrieved with a radius
	// covering the cluster.
	d := 8
	rng := rand.New(rand.NewSource(3))
	center := make([]float64, d)
	for j := range center {
		center[j] = rng.Float64() * geometry.TwoPi
	}
	var pts [][]float64
	// 20 near neighbours within ±0.1 radians on every dimension
	for i := 0; i < 20; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = geometry.Wrap(center[j] + (rng.Float64()-0.5)*0.2)
		}
		pts = append(pts, p)
	}
	// 200 random distractors
	pts = append(pts, randomPoints(200, d, 4)...)

	ix := New(pts, Config{Bands: 8, BucketsPerBand: 8, Seed: 5})
	cands := ix.Candidates(center, 0.2)
	got := make(map[kg.EntityID]bool)
	for _, c := range cands {
		got[c] = true
	}
	recall := 0
	for i := 0; i < 20; i++ {
		if got[kg.EntityID(i)] {
			recall++
		}
	}
	if recall < 18 {
		t.Errorf("recall of near neighbours %d/20", recall)
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	pts := randomPoints(50, 4, 6)
	ix := New(pts, Config{Bands: 6, BucketsPerBand: 4, Seed: 7})
	cands := ix.Candidates(pts[0], geometry.TwoPi) // probe everything
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for i := 1; i < len(cands); i++ {
		if cands[i] == cands[i-1] {
			t.Fatal("duplicate candidate")
		}
	}
	if len(cands) != 50 {
		t.Errorf("full-circle probe returned %d of 50", len(cands))
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(nil, DefaultConfig(1))
	if ix.Len() != 0 {
		t.Error("empty index should have length 0")
	}
	if got := ix.Candidates([]float64{0}, 1); len(got) != 0 {
		t.Error("empty index should return no candidates")
	}
}
