package resil

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manual time source so breaker transitions are tested
// without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:            8,
		FailureRate:       0.5,
		MinSamples:        4,
		ConsecutiveMisses: 3,
		OpenBase:          100 * time.Millisecond,
		OpenMax:           time.Second,
		Seed:              42,
		Clock:             clk.Now,
	})
}

func TestBreakerOpensOnConsecutiveMisses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 misses = %v, want closed", b.State())
	}
	b.Failure() // third consecutive miss trips
	if b.State() != Open {
		t.Fatalf("state after 3 consecutive misses = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before the cool-down")
	}
	if s := b.Stats(); s.Opens != 1 || s.State != "open" {
		t.Fatalf("stats = %+v, want opens=1 state=open", s)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// Alternate misses and successes: the consecutive trigger must never
	// fire, and the 50% rate needs MinSamples first.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Open {
		// 4 failures / 5 outcomes = 80% ≥ 50% with MinSamples=4 → open.
		t.Fatalf("state = %v, want open via failure rate", b.State())
	}
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 8, FailureRate: 0.5, MinSamples: 4,
		ConsecutiveMisses: -1, // disable the consecutive trigger
		OpenBase:          100 * time.Millisecond, OpenMax: time.Second,
		Seed: 42, Clock: clk.Now,
	})
	// 3 failures in a row do not trip (consecutive disabled, <MinSamples).
	b.Failure()
	b.Failure()
	b.Failure()
	if b.State() != Open && b.State() != Closed {
		t.Fatalf("unexpected state %v", b.State())
	}
	if b.State() == Open {
		t.Fatal("tripped below MinSamples")
	}
	b.Success() // 3/4 = 75% ≥ 50% with 4 samples → trips on next outcome check
	b.Failure() // 4/5 = 80%
	if b.State() != Open {
		t.Fatalf("state = %v, want open at 80%% window failure rate", b.State())
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != Open {
		t.Fatal("did not open")
	}
	// Before the cool-down: refused. Open duration is in
	// [OpenBase, OpenBase+Cap(0)) = [100ms, 200ms).
	clk.Advance(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed during cool-down")
	}
	clk.Advance(200 * time.Millisecond) // safely past the jittered bound
	if !b.Allow() {
		t.Fatal("reopen probe refused after the cool-down")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}
}

func TestBreakerProbeFailureReopensWithLongerBackoff(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(300 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure() // probe fails → reopen
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if s := b.Stats(); s.Opens != 2 {
		t.Fatalf("opens = %d, want 2", s.Opens)
	}
	// The second open lasts at least OpenBase again.
	clk.Advance(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed during second cool-down")
	}
	// Cap(1) = 200ms ⇒ open < OpenBase+200ms = 300ms; advance past it.
	clk.Advance(300 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused after extended cool-down")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("did not close after successful second probe")
	}
	// The streak reset: a fresh trip starts from the base envelope again.
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(300 * time.Millisecond) // ≥ OpenBase + Cap(0)
	if !b.Allow() {
		t.Fatal("probe after re-trip refused; backoff streak did not reset on close")
	}
}

func TestBreakerLateOutcomesInOpenIgnored(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	opens := b.Stats().Opens
	b.Failure() // a straggler reports after the trip
	b.Success()
	if got := b.Stats().Opens; got != opens {
		t.Fatalf("late outcomes changed opens: %d → %d", opens, got)
	}
	if b.State() != Open {
		t.Fatalf("late success flipped state to %v", b.State())
	}
}

func TestBreakerDefaultsUsable(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if !b.Allow() {
		t.Fatal("default breaker refused first call")
	}
	for i := 0; i < 4; i++ { // default ConsecutiveMisses = 4
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("default breaker state after 4 misses = %v, want open", b.State())
	}
}

func TestBreakerCancelReleasesHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cool-down expired but the probe was refused")
	}
	if b.Allow() {
		t.Fatal("second call admitted while the probe is in flight")
	}

	// The probe's query was cancelled before it produced an outcome.
	// Cancel must release it — otherwise no call is ever admitted again.
	b.Cancel()
	if b.State() != HalfOpen {
		t.Fatalf("state after cancelled probe = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker wedged: no fresh probe admitted after Cancel")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
}

func TestBreakerCancelNoOpInClosedAndOpen(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	b.Cancel() // closed: no effect
	if b.State() != Closed || !b.Allow() {
		t.Fatalf("Cancel disturbed a closed breaker: %v", b.State())
	}
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	b.Cancel() // open: no effect
	if b.State() != Open || b.Allow() {
		t.Fatalf("Cancel disturbed an open breaker: %v", b.State())
	}
}

func TestBreakerResetForceCloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)

	// Trip twice without closing so the reopen streak grows: the second
	// open's jitter envelope is wider than the first's.
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cool-down")
	}
	b.Failure() // probe fails → second open, streak = 2
	if s := b.Stats(); s.Opens != 2 || s.State != "open" {
		t.Fatalf("stats before reset = %+v, want opens=2 open", s)
	}

	// Out-of-band re-admission: Reset closes immediately, no cool-down.
	b.Reset()
	if b.State() != Closed {
		t.Fatalf("state after Reset = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("reset breaker refused a call")
	}
	s := b.Stats()
	if s.WindowFailureRate != 0 {
		t.Fatalf("window failure rate after Reset = %v, want 0 (window cleared)", s.WindowFailureRate)
	}
	if s.Opens != 2 {
		t.Fatalf("Reset rewrote the opens counter: %d, want 2", s.Opens)
	}

	// The consecutive-miss count was cleared too: it takes a full
	// ConsecutiveMisses run of fresh failures to trip again.
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("stale pre-Reset failures counted toward a new trip")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after 3 fresh misses = %v, want open", b.State())
	}
	// And the backoff streak restarted: this open sits in the base
	// envelope [OpenBase, OpenBase+Cap(0)) = [100ms, 200ms), not the
	// extended one a streak of 3 would produce.
	clk.Advance(250 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused at 250ms; Reset did not clear the backoff streak")
	}
}

func TestBreakerResetReleasesHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// Probe in flight; Reset lands (the supervisor verified the
	// component out of band). The stale probe's late outcome must not
	// re-trip the now-closed breaker on its own.
	b.Reset()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	b.Failure() // the stale probe reports back
	if b.State() != Closed {
		t.Fatalf("single late failure re-tripped a reset breaker: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("reset breaker refused a call after the stale probe's outcome")
	}
}
