package resil

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectorNilAndUnarmedAreInert(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.Fire("any", 0); err != nil {
		t.Fatalf("nil injector Fire = %v", err)
	}
	if n := nilIn.Fired("any"); n != 0 {
		t.Fatalf("nil injector Fired = %d", n)
	}
	in := NewInjector()
	if err := in.Fire("unarmed", 3); err != nil {
		t.Fatalf("unarmed Fire = %v", err)
	}
}

func TestInjectorErrorFault(t *testing.T) {
	in := NewInjector()
	sentinel := errors.New("boom")
	in.Set("stage", 1, Fault{Kind: KindError, Err: sentinel})

	if err := in.Fire("stage", 0); err != nil {
		t.Fatalf("non-matching shard fired: %v", err)
	}
	if err := in.Fire("stage", 1); !errors.Is(err, sentinel) {
		t.Fatalf("Fire = %v, want sentinel", err)
	}
	if n := in.Fired("stage"); n != 1 {
		t.Fatalf("Fired = %d, want 1", n)
	}

	// Default error when none is given.
	in2 := NewInjector()
	in2.Set("s", AnyShard, Fault{Kind: KindError})
	if err := in2.Fire("s", 7); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error = %v, want ErrInjected", err)
	}
}

func TestInjectorCountLimits(t *testing.T) {
	in := NewInjector()
	in.Set("s", AnyShard, Fault{Kind: KindError, Count: 2})
	if err := in.Fire("s", 0); err == nil {
		t.Fatal("first fire inert")
	}
	if err := in.Fire("s", 1); err == nil {
		t.Fatal("second fire inert")
	}
	if err := in.Fire("s", 2); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
	if n := in.Fired("s"); n != 2 {
		t.Fatalf("Fired = %d, want 2", n)
	}
}

func TestInjectorDelayFault(t *testing.T) {
	in := NewInjector()
	in.Set("s", 0, Fault{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("s", 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay fault slept only %v", elapsed)
	}
}

func TestInjectorPanicFault(t *testing.T) {
	in := NewInjector()
	in.Set("s", AnyShard, Fault{Kind: KindPanic})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic fault did not panic")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, "injected panic") {
			t.Fatalf("panic value = %v", v)
		}
	}()
	_ = in.Fire("s", 4)
}

func TestInjectorClear(t *testing.T) {
	in := NewInjector()
	in.Set("s", AnyShard, Fault{Kind: KindError})
	if err := in.Fire("s", 0); err == nil {
		t.Fatal("armed fault inert")
	}
	in.Clear()
	if err := in.Fire("s", 0); err != nil {
		t.Fatalf("cleared injector still fired: %v", err)
	}
	if n := in.Fired("s"); n != 1 {
		t.Fatalf("Clear reset the fired counter: %d", n)
	}
}

func TestInjectorScanErrHook(t *testing.T) {
	in := NewInjector()
	in.Set("shard.scan", 2, Fault{Kind: KindError})
	hook := in.ScanErrHook("shard.scan")
	if err := hook(1); err != nil {
		t.Fatalf("hook fired for wrong shard: %v", err)
	}
	if err := hook(2); err == nil {
		t.Fatal("hook inert for armed shard")
	}
}

func TestInjectorFirstLiveRuleWins(t *testing.T) {
	in := NewInjector()
	e1, e2 := errors.New("one"), errors.New("two")
	in.Set("s", AnyShard, Fault{Kind: KindError, Err: e1, Count: 1})
	in.Set("s", AnyShard, Fault{Kind: KindError, Err: e2})
	if err := in.Fire("s", 0); !errors.Is(err, e1) {
		t.Fatalf("first fire = %v, want rule one", err)
	}
	// Rule one exhausted: rule two takes over.
	if err := in.Fire("s", 0); !errors.Is(err, e2) {
		t.Fatalf("second fire = %v, want rule two", err)
	}
}
