// Package resil holds the serving resilience primitives shared by the
// shard engine and the HTTP serving layer: full-jitter exponential
// backoff (reused by the circuit breaker's reopen probe and by
// halk-serve's checkpoint load), per-shard circuit breakers, and a
// deterministic fault-injection harness driving the chaos tests.
//
// Everything here is dependency-free and safe for concurrent use; the
// clock and the jitter source are injectable so every state transition
// is unit-testable without sleeping.
package resil

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped full-jitter exponential delays: attempt n
// draws uniformly from [0, min(Max, Base·2ⁿ)). Full jitter (rather than
// jittering around the exponential midpoint) decorrelates retry storms
// best — see the AWS architecture blog analysis the strategy is named
// after. The zero value is not usable; construct with NewBackoff.
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Default backoff envelope when NewBackoff is given zero values.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 30 * time.Second
)

// NewBackoff returns a backoff with the given first-attempt cap and
// overall cap (zeros mean DefaultBackoffBase/DefaultBackoffMax). The
// seed makes the jitter deterministic for tests; use e.g.
// time.Now().UnixNano() in production wiring.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Cap returns the exponential envelope for the given attempt (0-based):
// min(Max, Base·2^attempt). This is the exclusive upper bound Delay
// draws under.
func (b *Backoff) Cap(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	return d
}

// Delay returns the attempt-th full-jitter delay: uniform in
// [0, Cap(attempt)).
func (b *Backoff) Delay(attempt int) time.Duration {
	c := b.Cap(attempt)
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(c)))
}

// Retry runs fn up to attempts times, sleeping a full-jitter backoff
// between failures. It returns nil on the first success and the last
// error otherwise; a context cancelled mid-wait aborts immediately,
// still returning fn's last error (the cause), not the context error.
// An error marked with Permanent is returned at once: retrying a
// failure that cannot succeed (a corrupt file, a config mismatch) only
// delays the inevitable exit and hides the real cause behind attempts
// of identical noise.
func Retry(ctx context.Context, attempts int, b *Backoff, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if IsPermanent(err) || i == attempts-1 {
			break
		}
		t := time.NewTimer(b.Delay(i))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}

// permanentError marks an error as non-retryable for Retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as permanent: Retry returns it immediately
// instead of burning the remaining attempts on a failure that cannot
// succeed — a corrupt checkpoint file, an unknown dataset name, a
// config mismatch. A nil err stays nil. The original error remains
// reachable through errors.Is/As.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}
