package resil

import (
	"sync"
	"time"
)

// State is a circuit breaker's position in the closed → open → half-open
// cycle. The numeric values are stable (they export as a gauge).
type State int32

const (
	// Closed is the healthy state: every call is allowed and outcomes
	// feed the rolling failure window.
	Closed State = iota
	// Open is the tripped state: calls are refused up front until the
	// backoff expires, sparing the caller the doomed wait.
	Open
	// HalfOpen admits exactly one probe call; its outcome decides
	// between closing (success) and reopening with a longer backoff.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value is usable: every field
// falls back to the default documented on it.
type BreakerConfig struct {
	// Window is the rolling outcome window size; 0 means 16.
	Window int
	// FailureRate opens the breaker when the window's failure fraction
	// reaches it (once MinSamples outcomes are in); 0 means 0.5.
	FailureRate float64
	// MinSamples is the window occupancy below which FailureRate does
	// not apply (a single early failure must not trip); 0 means half the
	// window.
	MinSamples int
	// ConsecutiveMisses opens the breaker after this many consecutive
	// failures regardless of the window rate; 0 means 4, negative
	// disables the consecutive trigger.
	ConsecutiveMisses int
	// OpenBase is the minimum open (cool-down) duration; 0 means 250ms.
	// Each open lasts OpenBase plus a full-jitter exponential extra that
	// doubles with every failed reopen probe, capped at OpenMax.
	OpenBase time.Duration
	// OpenMax caps the jittered extra; 0 means 15s.
	OpenMax time.Duration
	// Seed drives the backoff jitter (deterministic tests); 0 means 1.
	Seed int64
	// Clock is the time source; nil means time.Now. Test hook.
	Clock func() time.Time
}

func (c *BreakerConfig) withDefaults() BreakerConfig {
	out := *c
	if out.Window <= 0 {
		out.Window = 16
	}
	if out.FailureRate <= 0 {
		out.FailureRate = 0.5
	}
	if out.MinSamples <= 0 {
		out.MinSamples = out.Window / 2
		if out.MinSamples < 1 {
			out.MinSamples = 1
		}
	}
	if out.ConsecutiveMisses == 0 {
		out.ConsecutiveMisses = 4
	}
	if out.OpenBase <= 0 {
		out.OpenBase = 250 * time.Millisecond
	}
	if out.OpenMax <= 0 {
		out.OpenMax = 15 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	return out
}

// Breaker is a closed → open → half-open circuit breaker over a stream
// of call outcomes. The caller asks Allow before each call and reports
// Success or Failure after; a breaker that has tripped refuses calls
// until its jittered exponential backoff expires, then admits a single
// half-open probe. All methods are safe for concurrent use.
//
// In the shard engine one Breaker guards each shard: a shard that keeps
// missing its scan deadline (or panicking) is skipped up front —
// degrading responses to partial immediately instead of re-paying the
// deadline on every request — and re-admitted once a probe succeeds.
type Breaker struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	backoff *Backoff

	state     State
	outcomes  []bool // ring buffer, true = failure
	head      int    // next write position
	count     int    // occupancy (≤ len(outcomes))
	fails     int    // failures currently in the window
	consec    int    // consecutive failures (closed state only)
	openUntil time.Time
	streak    int // opens since the last close; drives the backoff
	opens     uint64
	probing   bool // a half-open probe is in flight
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{
		cfg:      c,
		backoff:  NewBackoff(c.OpenBase, c.OpenMax, c.Seed),
		outcomes: make([]bool, c.Window),
	}
}

// Allow reports whether a call may proceed. Closed always allows; Open
// refuses until the cool-down expires, then transitions to HalfOpen and
// allows the single probe; HalfOpen refuses everything while the probe
// is in flight.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock().Before(b.openUntil) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful call. A successful half-open probe
// closes the breaker and resets the window and the backoff streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Closed
		b.streak = 0
		b.probing = false
		b.resetWindow()
	case Closed:
		b.consec = 0
		b.push(false)
	case Open:
		// A call admitted before the trip finished late; it carries no
		// information about the post-trip world.
	}
}

// Failure reports a failed call (deadline miss, panic, injected error).
// In Closed it feeds the window and trips the breaker when either
// threshold is crossed; a failed half-open probe reopens with a longer
// backoff.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.trip()
	case Closed:
		b.consec++
		b.push(true)
		if b.tripNeeded() {
			b.trip()
		}
	case Open:
		// Late failure from before the trip; already accounted for.
	}
}

// Cancel reports that a call admitted by Allow finished without a
// meaningful outcome — e.g. the surrounding request was cancelled
// before the call completed, so its result says nothing about the
// guarded component. Its only effect is to release an in-flight
// half-open probe so the next Allow can admit a fresh one; without
// this, a cancelled probe would never report Success or Failure and
// the breaker would refuse calls forever. In Closed and Open states it
// is a no-op.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// Reset force-closes the breaker, clearing the rolling window, the
// reopen streak and any in-flight half-open probe — as if it had just
// been built. It is the out-of-band re-admission seam: a supervisor
// that has verified the guarded component by some channel the breaker
// cannot see (the cluster router's read-repair prober scanning a
// replica off the query path) closes the breaker immediately instead
// of waiting out the open cool-down and the half-open probe cycle.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.streak = 0
	b.probing = false
	b.openUntil = time.Time{}
	b.resetWindow()
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is the exported snapshot (JSON-shaped for /v1/stats).
type BreakerStats struct {
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Opens counts closed/half-open → open transitions since creation.
	Opens uint64 `json:"opens"`
	// WindowFailureRate is the failure fraction of the rolling window
	// (0 when empty).
	WindowFailureRate float64 `json:"window_failure_rate"`
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerStats{State: b.state.String(), Opens: b.opens}
	if b.count > 0 {
		s.WindowFailureRate = float64(b.fails) / float64(b.count)
	}
	return s
}

// push records one outcome in the ring buffer. Called with mu held.
func (b *Breaker) push(failure bool) {
	if b.count == len(b.outcomes) { // evicting the oldest outcome
		if b.outcomes[b.head] {
			b.fails--
		}
	} else {
		b.count++
	}
	b.outcomes[b.head] = failure
	if failure {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.outcomes)
}

// tripNeeded reports whether the closed-state thresholds are crossed.
// Called with mu held.
func (b *Breaker) tripNeeded() bool {
	if b.cfg.ConsecutiveMisses > 0 && b.consec >= b.cfg.ConsecutiveMisses {
		return true
	}
	return b.count >= b.cfg.MinSamples &&
		float64(b.fails)/float64(b.count) >= b.cfg.FailureRate
}

// trip opens the breaker for OpenBase plus a full-jitter exponential
// extra that grows with the reopen streak. Called with mu held.
func (b *Breaker) trip() {
	b.state = Open
	b.opens++
	b.openUntil = b.cfg.Clock().Add(b.cfg.OpenBase + b.backoff.Delay(b.streak))
	b.streak++
	b.resetWindow()
}

// resetWindow clears the rolling window and consecutive-failure count.
// Called with mu held.
func (b *Breaker) resetWindow() {
	b.head, b.count, b.fails, b.consec = 0, 0, 0, 0
}
