package resil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffCapDoublesAndClamps(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, 1*time.Second, 1)
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1 * time.Second, 1 * time.Second,
	}
	for i, w := range want {
		if got := b.Cap(i); got != w {
			t.Errorf("Cap(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDelayWithinEnvelope(t *testing.T) {
	b := NewBackoff(50*time.Millisecond, 400*time.Millisecond, 7)
	for attempt := 0; attempt < 6; attempt++ {
		cap := b.Cap(attempt)
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d < 0 || d >= cap {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, cap)
			}
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Cap(0) != DefaultBackoffBase {
		t.Errorf("zero base: Cap(0) = %v, want %v", b.Cap(0), DefaultBackoffBase)
	}
	if b.Cap(30) != DefaultBackoffMax {
		t.Errorf("zero max: Cap(30) = %v, want %v", b.Cap(30), DefaultBackoffMax)
	}
	// Max below base clamps up so Delay never gets an empty interval.
	b2 := NewBackoff(time.Second, time.Millisecond, 1)
	if b2.Cap(0) != time.Second {
		t.Errorf("max<base: Cap(0) = %v, want 1s", b2.Cap(0))
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	b := NewBackoff(time.Microsecond, 10*time.Microsecond, 3)
	calls := 0
	err := Retry(context.Background(), 5, b, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestRetryReturnsLastError(t *testing.T) {
	b := NewBackoff(time.Microsecond, 10*time.Microsecond, 3)
	sentinel := errors.New("persistent")
	calls := 0
	err := Retry(context.Background(), 3, b, func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Retry = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestRetryAbortsOnContextCancel(t *testing.T) {
	b := NewBackoff(time.Hour, time.Hour, 3) // would sleep forever
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("failed")
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, 5, b, func() error { return sentinel })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Fatalf("Retry = %v, want the fn error as cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not abort on context cancellation")
	}
}

func TestRetryAtLeastOneAttempt(t *testing.T) {
	b := NewBackoff(time.Microsecond, time.Microsecond, 1)
	calls := 0
	if err := Retry(context.Background(), 0, b, func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("attempts<1 ran fn %d times, want 1", calls)
	}
}

func TestRetryBailsOnPermanentError(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Millisecond, 1)
	calls := 0
	perm := Permanent(errors.New("checkpoint corrupt"))
	err := Retry(context.Background(), 5, b, func() error {
		calls++
		return perm
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (permanent errors must not retry)", calls)
	}
	if !errors.Is(err, perm) || !IsPermanent(err) {
		t.Fatalf("err = %v, want the permanent error back", err)
	}
}

func TestPermanentWrapping(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
	base := errors.New("bad header")
	p := Permanent(base)
	if !errors.Is(p, base) {
		t.Fatal("Permanent must keep the cause reachable via errors.Is")
	}
	if !IsPermanent(fmt.Errorf("load: %w", p)) {
		t.Fatal("IsPermanent must see through wrapping")
	}
	if IsPermanent(base) {
		t.Fatal("unmarked error reported permanent")
	}
	if p.Error() != base.Error() {
		t.Fatalf("message changed: %q", p.Error())
	}
}

func TestRetryStillRetriesTransientAmongAttempts(t *testing.T) {
	b := NewBackoff(time.Microsecond, time.Microsecond, 1)
	calls := 0
	err := Retry(context.Background(), 4, b, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}
