package resil

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the default error a KindError fault returns.
var ErrInjected = errors.New("resil: injected fault")

// Kind enumerates the fault behaviours an Injector can deliver.
type Kind int

const (
	// KindPanic panics at the hook site (exercising recover paths).
	KindPanic Kind = iota + 1
	// KindDelay sleeps Fault.Delay at the hook site, then proceeds.
	KindDelay
	// KindError returns Fault.Err (or ErrInjected) from the hook site.
	KindError
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	default:
		return "unknown"
	}
}

// AnyShard matches every shard index in Injector.Set.
const AnyShard = -1

// Fault is one injected behaviour.
type Fault struct {
	// Kind selects panic, delay or error.
	Kind Kind
	// Delay is the KindDelay sleep duration.
	Delay time.Duration
	// Err is the KindError return value; nil means ErrInjected.
	Err error
	// Count bounds how many times the fault fires; 0 or negative means
	// unlimited.
	Count int
}

type rule struct {
	shard     int
	fault     Fault
	remaining int // -1 = unlimited
}

// Injector delivers deterministic faults at named stages of the serving
// pipeline — the chaos-test harness. Producers call Fire at seam points
// (the shard engine's per-scan hook, the serve layer's cache and rank
// stages); tests arm faults with Set. A nil *Injector is inert, so
// production wiring passes nil and pays one pointer test per seam.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]*rule
	fired map[string]uint64
}

// NewInjector returns an empty injector.
func NewInjector() *Injector {
	return &Injector{rules: make(map[string][]*rule), fired: make(map[string]uint64)}
}

// Set arms fault f at the named stage for the given shard index
// (AnyShard matches all). Multiple rules per stage match in insertion
// order; the first live match fires.
func (in *Injector) Set(stage string, shard int, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	remaining := f.Count
	if remaining <= 0 {
		remaining = -1
	}
	in.rules[stage] = append(in.rules[stage], &rule{shard: shard, fault: f, remaining: remaining})
}

// Clear disarms every rule (fired counters are preserved).
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = make(map[string][]*rule)
}

// Fired reports how many faults have fired at the stage.
func (in *Injector) Fired(stage string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[stage]
}

// Fire triggers the first live fault armed for (stage, shard), if any:
// KindDelay sleeps and returns nil, KindError returns the fault's
// error, KindPanic panics. Unmatched stages — and nil receivers — are
// no-ops returning nil, so seam points call Fire unconditionally.
func (in *Injector) Fire(stage string, shard int) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var f *Fault
	for _, r := range in.rules[stage] {
		if r.shard != AnyShard && r.shard != shard {
			continue
		}
		if r.remaining == 0 {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		in.fired[stage]++
		cp := r.fault
		f = &cp
		break
	}
	in.mu.Unlock()
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	case KindError:
		if f.Err != nil {
			return f.Err
		}
		return ErrInjected
	case KindPanic:
		panic(fmt.Sprintf("resil: injected panic at %s (shard %d)", stage, shard))
	default:
		return nil
	}
}

// ScanErrHook adapts the injector to an error-returning per-shard scan
// hook (shard.Options.ScanErr): delay faults sleep, error faults fail
// the shard's scan, and panic faults propagate into the scan goroutine,
// where the engine's recover isolates them.
func (in *Injector) ScanErrHook(stage string) func(shard int) error {
	return func(shard int) error { return in.Fire(stage, shard) }
}
