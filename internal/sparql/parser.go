// Package sparql implements the SPARQL integration of Sec. IV-F: a
// parser for the SPARQL subset needed by logical queries (SELECT/WHERE
// with basic graph patterns, FILTER NOT EXISTS, MINUS and UNION) and the
// query Adaptor that maps graph patterns onto HaLk's five logical
// operators (Fig. 7), producing a query computation DAG any trained
// model can execute.
package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Query is a parsed SPARQL query.
type Query struct {
	// Target is the projected variable name (without '?').
	Target string
	// Where is the root group pattern.
	Where *Group
	// Limit is the LIMIT clause value, or 0 if absent.
	Limit int
}

// Group is a SPARQL group graph pattern.
type Group struct {
	// Triples are the basic graph pattern's triple patterns.
	Triples []TriplePattern
	// NotExists holds FILTER NOT EXISTS { ... } sub-groups.
	NotExists []*Group
	// Minus holds MINUS { ... } sub-groups.
	Minus []*Group
	// UnionBranches, when non-empty, makes this group the union of the
	// branches ({A} UNION {B} UNION ...); Triples/NotExists/Minus are
	// then empty.
	UnionBranches []*Group
}

// Term is a variable or a constant in a triple pattern.
type Term struct {
	// Var is the variable name (without '?') when IsVar.
	Var string
	// Name is the prefixed-name constant (without ':') when !IsVar.
	Name  string
	IsVar bool
}

func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Var
	}
	return ":" + t.Name
}

// TriplePattern is subject–predicate–object; the predicate must be a
// constant relation.
type TriplePattern struct {
	S, O Term
	P    string // relation name, without ':'
}

// Parse parses a SPARQL query of the supported subset.
func Parse(src string) (*Query, error) {
	p := &parser{toks: tokenize(src)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sparql: %w", err)
	}
	return q, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); !strings.EqualFold(got, tok) {
		return fmt.Errorf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	// PREFIX declarations are accepted and ignored: this subset resolves
	// prefixed names against the knowledge graph's dictionaries directly.
	for strings.EqualFold(p.peek(), "PREFIX") {
		p.next() // PREFIX
		p.next() // ns:
		// The IRI may have been split by the tokenizer (it can contain
		// dots); consume until the closing '>'.
		for {
			tok := p.next()
			if tok == "" {
				return nil, fmt.Errorf("unterminated PREFIX IRI")
			}
			if strings.HasSuffix(tok, ">") {
				break
			}
		}
	}
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	v := p.next()
	if !strings.HasPrefix(v, "?") {
		return nil, fmt.Errorf("expected projected variable, got %q", v)
	}
	if err := p.expect("WHERE"); err != nil {
		return nil, err
	}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	limit := 0
	if strings.EqualFold(p.peek(), "LIMIT") {
		p.next()
		n, err := strconv.Atoi(p.next())
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid LIMIT value")
		}
		limit = n
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("unexpected trailing token %q", p.peek())
	}
	return &Query{Target: v[1:], Where: g, Limit: limit}, nil
}

// parseGroup parses "{ ... }" including trailing UNION chains.
func (p *parser) parseGroup() (*Group, error) {
	first, err := p.parseBraced()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(p.peek(), "UNION") {
		return first, nil
	}
	union := &Group{UnionBranches: []*Group{first}}
	for strings.EqualFold(p.peek(), "UNION") {
		p.next()
		b, err := p.parseBraced()
		if err != nil {
			return nil, err
		}
		union.UnionBranches = append(union.UnionBranches, b)
	}
	return union, nil
}

func (p *parser) parseBraced() (*Group, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch tok := p.peek(); {
		case tok == "":
			return nil, fmt.Errorf("unexpected end of query inside group")
		case tok == "}":
			p.next()
			return g, nil
		case tok == ".":
			p.next()
		case strings.EqualFold(tok, "FILTER"):
			p.next()
			if err := p.expect("NOT"); err != nil {
				return nil, err
			}
			if err := p.expect("EXISTS"); err != nil {
				return nil, err
			}
			sub, err := p.parseBraced()
			if err != nil {
				return nil, err
			}
			g.NotExists = append(g.NotExists, sub)
		case strings.EqualFold(tok, "MINUS"):
			p.next()
			sub, err := p.parseBraced()
			if err != nil {
				return nil, err
			}
			g.Minus = append(g.Minus, sub)
		case tok == "{":
			// nested group (only as UNION operand)
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if len(sub.UnionBranches) == 0 {
				return nil, fmt.Errorf("nested group without UNION is not supported")
			}
			if len(g.Triples) > 0 || g.UnionBranches != nil {
				return nil, fmt.Errorf("mixing triples and UNION in one group is not supported")
			}
			g.UnionBranches = sub.UnionBranches
		default:
			tp, err := p.parseTriple()
			if err != nil {
				return nil, err
			}
			g.Triples = append(g.Triples, tp)
		}
	}
}

func (p *parser) parseTriple() (TriplePattern, error) {
	s, err := p.parseTerm()
	if err != nil {
		return TriplePattern{}, err
	}
	pred := p.next()
	if !strings.HasPrefix(pred, ":") {
		return TriplePattern{}, fmt.Errorf("predicate must be a constant, got %q", pred)
	}
	o, err := p.parseTerm()
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pred[1:], O: o}, nil
}

func (p *parser) parseTerm() (Term, error) {
	tok := p.next()
	switch {
	case strings.HasPrefix(tok, "?"):
		if len(tok) == 1 {
			return Term{}, fmt.Errorf("empty variable name")
		}
		return Term{IsVar: true, Var: tok[1:]}, nil
	case strings.HasPrefix(tok, ":"):
		if len(tok) == 1 {
			return Term{}, fmt.Errorf("empty constant name")
		}
		return Term{Name: tok[1:]}, nil
	}
	return Term{}, fmt.Errorf("expected term, got %q", tok)
}

// tokenize splits the source into tokens: braces, dots, keywords,
// ?variables and :names.
func tokenize(src string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range src {
		switch {
		case unicode.IsSpace(r):
			flush()
		case r == '{' || r == '}' || r == '.':
			flush()
			toks = append(toks, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}
