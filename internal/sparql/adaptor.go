package sparql

import (
	"fmt"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// Adaptor maps SPARQL graph patterns onto the five logical operators
// (Fig. 7b): triple patterns become projections rooted at the target
// variable, multiple patterns on one variable intersect, FILTER NOT
// EXISTS becomes negation, MINUS becomes difference, and UNION becomes
// union. Names resolve against the knowledge graph's dictionaries.
type Adaptor struct {
	Entities  *kg.Dict
	Relations *kg.Dict
}

// Compile translates a parsed SPARQL query into a logical-query
// computation DAG rooted at the target variable.
func (a *Adaptor) Compile(q *Query) (*query.Node, error) {
	c := &compiler{a: a, active: make(map[string]bool)}
	n, err := c.compileVar(q.Where, q.Target, -1)
	if err != nil {
		return nil, fmt.Errorf("sparql: adaptor: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("sparql: adaptor produced invalid query: %w", err)
	}
	return n, nil
}

type compiler struct {
	a      *Adaptor
	active map[string]bool // variables being expanded (cycle guard)
}

// fresh returns a compiler with an empty cycle guard for sub-groups.
func (c *compiler) fresh() *compiler {
	return &compiler{a: c.a, active: make(map[string]bool)}
}

// compileVar builds the computation sub-DAG whose answers bind the
// variable v within group g. exclude skips one triple index (the edge
// currently being traversed from the parent variable), or -1.
func (c *compiler) compileVar(g *Group, v string, exclude int) (*query.Node, error) {
	if len(g.UnionBranches) > 0 {
		branches := make([]*query.Node, 0, len(g.UnionBranches))
		for _, b := range g.UnionBranches {
			n, err := c.compileVar(b, v, -1)
			if err != nil {
				return nil, err
			}
			branches = append(branches, n)
		}
		if len(branches) == 1 {
			return branches[0], nil
		}
		return query.NewUnion(branches...), nil
	}

	if c.active[v] {
		return nil, fmt.Errorf("cyclic pattern through variable ?%s (patterns must form a tree)", v)
	}
	c.active[v] = true
	defer delete(c.active, v)

	var positives []*query.Node
	for i, tp := range g.Triples {
		if i == exclude {
			continue
		}
		switch {
		case tp.O.IsVar && tp.O.Var == v:
			// (s, p, ?v): forward projection from the subject's sub-DAG.
			child, err := c.compileTerm(g, tp.S, i)
			if err != nil {
				return nil, err
			}
			rel, err := c.relation(tp.P)
			if err != nil {
				return nil, err
			}
			positives = append(positives, query.NewProjection(rel, child))
		case tp.S.IsVar && tp.S.Var == v:
			// (?v, p, o): needs the inverse relation p_inv in the KG.
			inv, ok := c.a.Relations.ID(tp.P + "_inv")
			if !ok {
				return nil, fmt.Errorf("pattern (?%s :%s %s) needs inverse relation %q, which the graph lacks",
					v, tp.P, tp.O, tp.P+"_inv")
			}
			child, err := c.compileTerm(g, tp.O, i)
			if err != nil {
				return nil, err
			}
			positives = append(positives, query.NewProjection(kg.RelationID(inv), child))
		}
	}
	if len(positives) == 0 {
		return nil, fmt.Errorf("variable ?%s is not constrained by any triple pattern", v)
	}

	var negations []*query.Node
	for _, sub := range g.NotExists {
		// Sub-groups re-reference v in a fresh constraint tree; reset the
		// cycle guard for them.
		n, err := c.fresh().compileVar(sub, v, -1)
		if err != nil {
			return nil, err
		}
		negations = append(negations, query.NewNegation(n))
	}

	node := positives[0]
	all := append(positives, negations...)
	if len(all) > 1 {
		node = query.NewIntersection(all...)
	}

	if len(g.Minus) > 0 {
		args := []*query.Node{node}
		for _, sub := range g.Minus {
			n, err := c.fresh().compileVar(sub, v, -1)
			if err != nil {
				return nil, err
			}
			args = append(args, n)
		}
		node = query.NewDifference(args...)
	}
	return node, nil
}

// compileTerm resolves a subject/object term: constants become anchors,
// variables expand recursively within the same group. via is the index
// of the triple being traversed into this term, excluded from the
// variable's own constraints.
func (c *compiler) compileTerm(g *Group, t Term, via int) (*query.Node, error) {
	if !t.IsVar {
		id, ok := c.a.Entities.ID(t.Name)
		if !ok {
			return nil, fmt.Errorf("unknown entity %q", t.Name)
		}
		return query.NewAnchor(kg.EntityID(id)), nil
	}
	return c.compileVar(g, t.Var, via)
}

func (c *compiler) relation(name string) (kg.RelationID, error) {
	id, ok := c.a.Relations.ID(name)
	if !ok {
		return 0, fmt.Errorf("unknown relation %q", name)
	}
	return kg.RelationID(id), nil
}
