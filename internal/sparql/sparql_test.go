package sparql

import (
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestParseBasicPattern(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?y :directed ?x . :oscar :wonBy ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "x" {
		t.Errorf("target = %q", q.Target)
	}
	if len(q.Where.Triples) != 2 {
		t.Fatalf("triples = %d", len(q.Where.Triples))
	}
	tp := q.Where.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "y" || tp.P != "directed" || !tp.O.IsVar || tp.O.Var != "x" {
		t.Errorf("triple 0 = %+v", tp)
	}
	tp = q.Where.Triples[1]
	if tp.S.IsVar || tp.S.Name != "oscar" {
		t.Errorf("triple 1 subject = %+v", tp.S)
	}
}

func TestParseFilterNotExistsAndMinus(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		:a :r1 ?x .
		FILTER NOT EXISTS { :b :r2 ?x . }
		MINUS { :c :r3 ?x }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Triples) != 1 || len(q.Where.NotExists) != 1 || len(q.Where.Minus) != 1 {
		t.Fatalf("group = %+v", q.Where)
	}
}

func TestParseUnion(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { { :a :r1 ?x } UNION { :b :r2 ?x } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.UnionBranches) != 2 {
		t.Fatalf("union branches = %d", len(q.Where.UnionBranches))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT x WHERE { :a :r ?x }`,
		`SELECT ?x { :a :r ?x }`,
		`SELECT ?x WHERE { :a :r ?x`,
		`SELECT ?x WHERE { ?x r ?y }`, // unprefixed predicate
		`SELECT ?x WHERE { :a :r ?x } trailing`,
		`SELECT ?x WHERE { FILTER EXISTS { :a :r ?x } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// adaptorFixture builds a tiny KG and adaptor with named entities.
func adaptorFixture() (*kg.Graph, *Adaptor) {
	ents, rels := kg.NewDict(), kg.NewDict()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		ents.Add(n)
	}
	for _, r := range []string{"r1", "r2", "r3", "r1_inv"} {
		rels.Add(r)
	}
	g := kg.NewGraph(ents, rels)
	add := func(h, r, t string) {
		hi, _ := ents.ID(h)
		ri, _ := rels.ID(r)
		ti, _ := ents.ID(t)
		g.AddTriple(kg.Triple{H: kg.EntityID(hi), R: kg.RelationID(ri), T: kg.EntityID(ti)})
	}
	add("a", "r1", "b")
	add("a", "r1", "c")
	add("b", "r1_inv", "a")
	add("c", "r1_inv", "a")
	add("b", "r2", "d")
	add("c", "r2", "e")
	add("a", "r3", "e")
	return g, &Adaptor{Entities: ents, Relations: rels}
}

func mustCompile(t *testing.T, a *Adaptor, src string) *query.Node {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func answersOf(t *testing.T, a *Adaptor, g *kg.Graph, src string) query.Set {
	t.Helper()
	return query.Answers(mustCompile(t, a, src), g)
}

func TestAdaptorProjectionChain(t *testing.T) {
	g, a := adaptorFixture()
	// 2p: who is r2-reachable from something r1-reachable from a?
	ans := answersOf(t, a, g, `SELECT ?x WHERE { :a :r1 ?y . ?y :r2 ?x }`)
	want := query.NewSet(3, 4) // d, e
	if len(ans) != 2 || !ans.Has(3) || !ans.Has(4) {
		t.Errorf("answers = %v, want %v", ans.Slice(), want.Slice())
	}
}

func TestAdaptorIntersection(t *testing.T) {
	g, a := adaptorFixture()
	// e is r2-reachable from c AND r3-reachable from a.
	ans := answersOf(t, a, g, `SELECT ?x WHERE { :c :r2 ?x . :a :r3 ?x }`)
	if len(ans) != 1 || !ans.Has(4) {
		t.Errorf("answers = %v, want [e]", ans.Slice())
	}
	n := mustCompile(t, a, `SELECT ?x WHERE { :c :r2 ?x . :a :r3 ?x }`)
	if n.Op != query.OpIntersection {
		t.Errorf("root op = %v, want intersection", n.Op)
	}
}

func TestAdaptorNotExistsBecomesNegation(t *testing.T) {
	g, a := adaptorFixture()
	// r1-reachable from a, excluding r3-reachable from a: {b, c} ∩ ¬{e}.
	src := `SELECT ?x WHERE { :a :r1 ?x . FILTER NOT EXISTS { :a :r3 ?x } }`
	n := mustCompile(t, a, src)
	if n.Op != query.OpIntersection || n.Args[1].Op != query.OpNegation {
		t.Fatalf("compiled shape = %s", n)
	}
	ans := query.Answers(n, g)
	if len(ans) != 2 || !ans.Has(1) || !ans.Has(2) {
		t.Errorf("answers = %v, want [b c]", ans.Slice())
	}
}

func TestAdaptorMinusBecomesDifference(t *testing.T) {
	g, a := adaptorFixture()
	src := `SELECT ?x WHERE { :b :r2 ?x . MINUS { :c :r2 ?x } }`
	n := mustCompile(t, a, src)
	if n.Op != query.OpDifference {
		t.Fatalf("root op = %v, want difference", n.Op)
	}
	ans := query.Answers(n, g)
	if len(ans) != 1 || !ans.Has(3) {
		t.Errorf("answers = %v, want [d]", ans.Slice())
	}
}

func TestAdaptorUnion(t *testing.T) {
	g, a := adaptorFixture()
	src := `SELECT ?x WHERE { { :b :r2 ?x } UNION { :c :r2 ?x } }`
	n := mustCompile(t, a, src)
	if n.Op != query.OpUnion {
		t.Fatalf("root op = %v, want union", n.Op)
	}
	ans := query.Answers(n, g)
	if len(ans) != 2 || !ans.Has(3) || !ans.Has(4) {
		t.Errorf("answers = %v, want [d e]", ans.Slice())
	}
}

func TestAdaptorInverseRelation(t *testing.T) {
	g, a := adaptorFixture()
	// (?x :r1 :b): who has an r1 edge to b? Needs r1_inv, which exists.
	ans := answersOf(t, a, g, `SELECT ?x WHERE { ?x :r1 :b }`)
	if len(ans) != 1 || !ans.Has(0) {
		t.Errorf("answers = %v, want [a]", ans.Slice())
	}
	// r2 has no inverse: must fail with a helpful error.
	q, err := Parse(`SELECT ?x WHERE { ?x :r2 :d }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compile(q); err == nil || !strings.Contains(err.Error(), "r2_inv") {
		t.Errorf("expected inverse-relation error, got %v", err)
	}
}

func TestAdaptorErrors(t *testing.T) {
	_, a := adaptorFixture()
	cases := []string{
		`SELECT ?x WHERE { :nope :r1 ?x }`,          // unknown entity
		`SELECT ?x WHERE { :a :nope ?x }`,           // unknown relation
		`SELECT ?x WHERE { :a :r1 ?y }`,             // target unconstrained
		`SELECT ?x WHERE { ?y :r1 ?x . ?x :r1 ?y }`, // cyclic (r1_inv exists, so the cycle is reached)
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := a.Compile(q); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestParsePrefixAndLimit(t *testing.T) {
	q, err := Parse(`PREFIX : <http://example.org/>
		SELECT ?x WHERE { :a :r1 ?x } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 {
		t.Errorf("Limit = %d, want 5", q.Limit)
	}
	if len(q.Where.Triples) != 1 {
		t.Errorf("triples = %d", len(q.Where.Triples))
	}
	if _, err := Parse(`SELECT ?x WHERE { :a :r1 ?x } LIMIT nope`); err == nil {
		t.Error("invalid LIMIT should error")
	}
	if _, err := Parse(`SELECT ?x WHERE { :a :r1 ?x } LIMIT -3`); err == nil {
		t.Error("negative LIMIT should error")
	}
}
