package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows the paper reports.
type Table struct {
	ID     string // e.g. "Table I", "Fig. 6a"
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Cell returns the cell at (row, col) or "".
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }
func ms(d float64) string  { return fmt.Sprintf("%.2f", d) }
func sec(d float64) string { return fmt.Sprintf("%.1f", d) }
func dash() string         { return "-" }
