package bench

import (
	"fmt"
	"math"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/query"
)

// Observation quantifies the empirical observation of Sec. I that
// motivates HaLk's holistic operator set: the difference operator is the
// stronger primitive for multi-hop queries, while negation is only
// competitive as the tail operation of single-hop queries. It compares
// HaLk's accuracy on matched difference/negation structure pairs.
func (s *Suite) Observation() *Table {
	t := &Table{
		ID:    "Observation",
		Title: "Sec. I observation: difference vs negation by hop depth (HaLk MRR %)",
		Header: []string{"Dataset", "Setting", "Diff structure", "MRR", "Neg structure", "MRR",
			"Diff/Neg ratio"},
	}
	pairs := []struct {
		setting string
		diff    string
		neg     string
	}{
		{"single-hop", "2d", "2in"},
		{"single-hop (3-way)", "3d", "3in"},
		{"multi-hop", "dp", "pin"},
	}
	for _, ds := range s.Datasets {
		for _, p := range pairs {
			md, okd := s.Eval(ds, "HaLk", p.diff)
			mn, okn := s.Eval(ds, "HaLk", p.neg)
			if !okd || !okn {
				continue
			}
			ratio := "-"
			if mn.MRR > 0 {
				ratio = fmt.Sprintf("%.1fx", md.MRR/mn.MRR)
			}
			t.Rows = append(t.Rows, []string{
				ds.Name, p.setting, p.diff, pct(md.MRR), p.neg, pct(mn.MRR), ratio,
			})
		}
	}
	return t
}

// Cardinality validates the arc embedding's cardinality semantics: the
// learned arclength of a query embedding should grow with the true
// answer-set size. It reports, per dataset, the Pearson correlation
// between mean arclength and |answers| over the 1p evaluation workload.
func (s *Suite) Cardinality() *Table {
	t := &Table{
		ID:     "Cardinality",
		Title:  "Arclength vs answer-set size (HaLk, 1p workload)",
		Header: []string{"Dataset", "Queries", "Pearson r", "Mean |ans|", "Mean arclen"},
	}
	for _, ds := range s.Datasets {
		m, _ := s.Model(ds, "HaLk")
		hk := m.(*halk.Model)
		w := s.Workload(ds, "1p")
		var lens, sizes []float64
		for i := range w {
			arcs := hk.EmbedQuery(w[i].Root)
			mean := 0.0
			for _, l := range arcs[0].L {
				mean += l
			}
			mean /= float64(len(arcs[0].L))
			lens = append(lens, mean)
			sizes = append(sizes, float64(len(w[i].Answers)))
		}
		if len(lens) < 3 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			ds.Name, fmt.Sprintf("%d", len(lens)),
			fmt.Sprintf("%.3f", pearson(lens, sizes)),
			fmt.Sprintf("%.1f", mean(sizes)), fmt.Sprintf("%.3f", mean(lens)),
		})
	}
	return t
}

// MethodsExtended adds the first/second-group reference baselines this
// repository implements beyond the paper's competitor set.
var MethodsExtended = []string{"GQE", "Query2Box", "BetaE", "ConE", "NewLook", "MLPMix", "HaLk"}

// TableExtended compares all seven implemented methods on one dataset's
// EPFO structures — the lineage view (first group -> second group ->
// HaLk) the paper's related-work section describes.
func (s *Suite) TableExtended(dataset string) *Table {
	ds := s.Dataset(dataset)
	t := &Table{
		ID:     "Table Ext",
		Title:  fmt.Sprintf("All implemented methods, MRR (%%) on %s", dataset),
		Header: append(append([]string{"Method"}, query.EPFOStructures...), "Average"),
	}
	for _, method := range MethodsExtended {
		row := []string{method}
		sum, n := 0.0, 0
		for _, structure := range query.EPFOStructures {
			m, ok := s.Eval(ds, method, structure)
			if !ok {
				row = append(row, dash())
				continue
			}
			row = append(row, pct(m.MRR))
			sum += m.MRR
			n++
		}
		if n > 0 {
			row = append(row, pct(sum/float64(n)))
		} else {
			row = append(row, dash())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func pearson(xs, ys []float64) float64 {
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
