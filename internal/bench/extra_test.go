package bench

import (
	"strconv"
	"testing"
)

func TestExtraExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := quickSuite(t)

	obs := s.Observation()
	if len(obs.Rows) == 0 {
		t.Fatal("Observation produced no rows")
	}
	for _, row := range obs.Rows {
		if len(row) != 7 {
			t.Fatalf("Observation row has %d cells", len(row))
		}
	}

	card := s.Cardinality()
	if len(card.Rows) != 3 {
		t.Fatalf("Cardinality rows = %d, want 3", len(card.Rows))
	}
	for _, row := range card.Rows {
		r, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad Pearson cell %q", row[2])
		}
		if r < -1 || r > 1 {
			t.Fatalf("Pearson r out of range: %g", r)
		}
	}

	ext := s.TableExtended("FB237")
	if len(ext.Rows) != len(MethodsExtended) {
		t.Fatalf("TableExtended rows = %d, want %d", len(ext.Rows), len(MethodsExtended))
	}
	// EPFO-only methods must dash the difference columns.
	for _, row := range ext.Rows {
		if row[0] == "GQE" || row[0] == "Query2Box" || row[0] == "BetaE" {
			if row[10] != "-" { // 2d column (1 label + 9 structures before it)
				t.Errorf("%s should dash difference columns: %v", row[0], row)
			}
		}
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r := pearson(xs, []float64{2, 4, 6, 8}); r < 0.999 {
		t.Errorf("perfect correlation r = %g", r)
	}
	if r := pearson(xs, []float64{8, 6, 4, 2}); r > -0.999 {
		t.Errorf("perfect anticorrelation r = %g", r)
	}
	if r := pearson(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("degenerate correlation r = %g", r)
	}
}
