package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/shard"
)

// shardSweep is the default shard-count sweep of the Sharding
// experiment; Config.Shards overrides it with a single count.
func shardSweep() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// Sharding measures the scatter-gather ranking engine against the
// single-threaded full scan: per-query exact top-10 latency over the 2i
// workload, per shard count, with an answer-agreement check (the
// engine's contract is byte-identical results regardless of shard
// count). Speedups come from two sources — parallel shard scans
// (needs >1 core) and heap-bound pruning, which cuts work on any core
// count because a full scan scores every entity while the sharded scan
// abandons an entity as soon as its partial sum exceeds the current
// k-th best.
func (s *Suite) Sharding() *Table {
	const k = 10
	ds := s.Dataset("FB237")
	m, _ := s.Model(ds, "HaLk")
	hk := m.(*halk.Model)
	w := s.Workload(ds, "2i")

	t := &Table{
		ID: "Sharding",
		Title: fmt.Sprintf("Sharded top-%d ranking vs full scan (%s, 2i, %d queries, GOMAXPROCS=%d)",
			k, ds.Name, len(w), runtime.GOMAXPROCS(0)),
		Header: []string{"Ranker", "Shards", "µs/query", "Speedup", "Exact"},
	}

	// Baseline: the single-threaded full scan behind Model.TopK.
	for i := range w {
		m.Distances(w[i].Root) // warm the trig cache
		break
	}
	base := time.Duration(0)
	baseline := make([][]int32, len(w))
	start := time.Now()
	for i := range w {
		ids := hk.TopK(w[i].Root, k)
		baseline[i] = make([]int32, len(ids))
		for j, e := range ids {
			baseline[i][j] = int32(e)
		}
	}
	base = time.Since(start)
	perBase := float64(base.Microseconds()) / float64(len(w))
	t.Rows = append(t.Rows, []string{"full scan", "-", fmt.Sprintf("%.0f", perBase), "1.00x", "yes"})

	counts := shardSweep()
	if s.cfg.Shards > 0 {
		counts = []int{s.cfg.Shards}
	}
	ctx := context.Background()
	for _, n := range counts {
		r, err := hk.NewShardedRanker(shard.Options{Shards: n})
		if err != nil {
			s.logf("sharding: %v", err)
			continue
		}
		if _, err := r.RankTopK(ctx, w[0].Root, k); err != nil { // warm
			s.logf("sharding: warm query: %v", err)
			continue
		}
		exact := true
		start := time.Now()
		for i := range w {
			res, err := r.RankTopK(ctx, w[i].Root, k)
			if err != nil {
				s.logf("sharding: shards=%d query %d: %v", n, i, err)
				exact = false
				continue
			}
			if len(res.IDs) != len(baseline[i]) {
				exact = false
				continue
			}
			for j, e := range res.IDs {
				if int32(e) != baseline[i][j] {
					exact = false
				}
			}
		}
		elapsed := time.Since(start)
		per := float64(elapsed.Microseconds()) / float64(len(w))
		agree := "yes"
		if !exact {
			agree = "NO"
		}
		t.Rows = append(t.Rows, []string{
			"sharded", fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", per),
			fmt.Sprintf("%.2fx", perBase/per), agree,
		})
	}
	return t
}
