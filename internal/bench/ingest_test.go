package bench

import (
	"strconv"
	"testing"
)

func TestIngestMixExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := quickSuite(t)
	tbl := s.IngestMix()
	if len(tbl.Rows) != 2 {
		t.Fatalf("IngestMix rows = %d, want 2 (read-only + mixed): %v", len(tbl.Rows), tbl.Rows)
	}
	if tbl.Rows[0][0] != "read-only" || tbl.Rows[1][0] != "mixed" {
		t.Fatalf("unexpected phases: %v", tbl.Rows)
	}
	applied, err := strconv.Atoi(tbl.Rows[1][3])
	if err != nil || applied == 0 {
		t.Fatalf("mixed phase applied no edges: %v", tbl.Rows[1])
	}
}
