// Package bench drives the paper's full evaluation: it trains HaLk, its
// ablation variants and the three baselines on the three benchmark
// stand-ins and regenerates every table and figure of Sec. IV. The same
// driver backs cmd/halk-bench (full budgets) and the repository's
// testing.B benchmarks (reduced budgets).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/halk-kg/halk/internal/baselines"
	"github.com/halk-kg/halk/internal/eval"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// Config scales the experiment suite.
type Config struct {
	// Seed drives datasets, training and workload sampling.
	Seed int64
	// Dim and Hidden size the models.
	Dim, Hidden int
	// Train is the per-model training budget (seed is derived).
	Train model.TrainConfig
	// EvalQueries is the number of evaluation queries per structure.
	EvalQueries int
	// PruneTopK is the per-variable candidate count for the pruning
	// experiment (paper: 20).
	PruneTopK int
	// Shards, when positive, restricts the Sharding experiment to that
	// single shard count; 0 sweeps {1, 2, 4, GOMAXPROCS}.
	Shards int
	// Out receives progress lines; nil silences them.
	Out io.Writer
}

// FullConfig is the paper-scale (for this reproduction) configuration
// used by cmd/halk-bench.
func FullConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Dim:         64,
		Hidden:      64,
		Train:       model.DefaultTrainConfig(seed),
		EvalQueries: 40,
		// The paper uses top-20 of NELL995's 63k entities; at 1/60 the
		// entity count the transferable quantity is the pruning *ratio*,
		// so the stand-in uses top-50 of ~1k entities (still a ≥90% cut
		// of the candidate space).
		PruneTopK: 50,
	}
}

// QuickConfig is a minutes-scale configuration for smoke runs and the
// testing.B benchmarks; it reproduces the pipelines, not the accuracy.
func QuickConfig(seed int64) Config {
	tc := model.DefaultTrainConfig(seed)
	tc.Steps = 240
	tc.QueriesPerStructure = 60
	tc.BatchSize = 8
	tc.NegSamples = 8
	return Config{
		Seed:        seed,
		Dim:         16,
		Hidden:      24,
		Train:       tc,
		EvalQueries: 6,
		PruneTopK:   10,
	}
}

// MethodsAll is the method column order of Tables I and II.
var MethodsAll = []string{"ConE", "NewLook", "MLPMix", "HaLk"}

// MethodsNegation is the method order of Tables III and IV (NewLook has
// no negation operator).
var MethodsNegation = []string{"ConE", "MLPMix", "HaLk"}

// Suite owns the datasets, trained models and cached workloads of one
// benchmark run.
type Suite struct {
	cfg      Config
	Datasets []*kg.Dataset

	trained   map[string]*trained // key: dataset/model
	workloads map[string][]query.Query
}

type trained struct {
	model   model.Interface
	offline time.Duration
}

// NewSuite builds the three benchmark datasets and an empty model cache.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:       cfg,
		Datasets:  kg.Standard(cfg.Seed),
		trained:   make(map[string]*trained),
		workloads: make(map[string][]query.Query),
	}
}

// Dataset returns the dataset by name ("FB15k", "FB237", "NELL").
func (s *Suite) Dataset(name string) *kg.Dataset {
	for _, d := range s.Datasets {
		if d.Name == name {
			return d
		}
	}
	panic(fmt.Sprintf("bench: unknown dataset %q", name))
}

func (s *Suite) logf(format string, args ...any) {
	if s.cfg.Out != nil {
		fmt.Fprintf(s.cfg.Out, format+"\n", args...)
	}
}

// newModel constructs an untrained model by method name; HaLk ablation
// variants (Table V) use their Table V names.
func (s *Suite) newModel(name string, g *kg.Graph) model.Interface {
	seed := s.cfg.Seed + 17
	switch name {
	case "HaLk", "HaLk-V1", "HaLk-V2", "HaLk-V3":
		cfg := halk.DefaultConfig(seed)
		cfg.Dim, cfg.Hidden = s.cfg.Dim, s.cfg.Hidden
		cfg.Gamma = 24 * float64(s.cfg.Dim) / 800 // paper ratio, see halk.DefaultConfig
		cfg.Xi = 5 * cfg.Gamma
		switch name {
		case "HaLk-V1":
			cfg.Variant = halk.V1NewLookDiff
		case "HaLk-V2":
			cfg.Variant = halk.V2LinearNeg
		case "HaLk-V3":
			cfg.Variant = halk.V3NewLookProj
		}
		return halk.New(g, cfg)
	case "ConE", "NewLook", "MLPMix", "Query2Box", "GQE", "BetaE":
		cfg := baselines.DefaultConfig(seed)
		cfg.Dim, cfg.Hidden = s.cfg.Dim, s.cfg.Hidden
		cfg.Gamma = 24 * float64(s.cfg.Dim) / 800
		switch name {
		case "ConE":
			return baselines.NewConE(g, cfg)
		case "NewLook":
			return baselines.NewNewLook(g, cfg)
		case "MLPMix":
			return baselines.NewMLPMix(g, cfg)
		case "Query2Box":
			return baselines.NewQuery2Box(g, cfg)
		case "GQE":
			return baselines.NewGQE(g, cfg)
		case "BetaE":
			return baselines.NewBetaE(g, cfg)
		}
	}
	panic(fmt.Sprintf("bench: unknown method %q", name))
}

// Model trains (or returns the cached) method on the dataset's training
// graph.
func (s *Suite) Model(ds *kg.Dataset, method string) (model.Interface, time.Duration) {
	key := ds.Name + "/" + method
	if t, ok := s.trained[key]; ok {
		return t.model, t.offline
	}
	m := s.newModel(method, ds.Train)
	tc := s.cfg.Train
	tc.Seed = s.cfg.Seed + int64(len(s.trained)) + 101
	s.logf("training %s on %s (%d steps)...", method, ds.Name, tc.Steps)
	res, err := model.Train(m, ds.Train, tc)
	if err != nil {
		panic(fmt.Sprintf("bench: training %s on %s: %v", method, ds.Name, err))
	}
	s.logf("  done in %v (final loss %.3f)", res.Elapsed.Round(time.Millisecond), res.FinalLoss)
	s.trained[key] = &trained{model: m, offline: res.Elapsed}
	return m, res.Elapsed
}

// Workload returns (cached) evaluation queries for a structure on a
// dataset: sampled on the test graph, hard answers relative to the
// training graph.
func (s *Suite) Workload(ds *kg.Dataset, structure string) []query.Query {
	key := ds.Name + "/" + structure
	if w, ok := s.workloads[key]; ok {
		return w
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(len(key))*37))
	w := query.Workload(structure, s.cfg.EvalQueries, ds.Train, ds.Test, rng)
	s.workloads[key] = w
	return w
}

// Eval scores one trained method on one structure of one dataset.
func (s *Suite) Eval(ds *kg.Dataset, method, structure string) (eval.Metrics, bool) {
	m, _ := s.Model(ds, method)
	if !m.Supports(structure) {
		return eval.Metrics{}, false
	}
	w := s.Workload(ds, structure)
	if len(w) == 0 {
		return eval.Metrics{}, false
	}
	return eval.Evaluate(m, w), true
}
