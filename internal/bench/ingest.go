package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/shard"
)

// sampleNonEdges draws n triples absent from the graph whose head has
// at least one successor under the drawn relation, so each write is a
// genuine graph mutation with a meaningful fine-tune signal.
func sampleNonEdges(g *kg.Graph, n int, rng *rand.Rand) []ingest.Record {
	recs := make([]ingest.Record, 0, n)
	numEnt := kg.EntityID(g.NumEntities())
	for len(recs) < n {
		h := kg.EntityID(rng.Intn(int(numEnt)))
		r := kg.RelationID(rng.Intn(g.NumRelations()))
		succ := g.Successors(h, r)
		if len(succ) == 0 {
			continue
		}
		t := kg.EntityID(rng.Intn(int(numEnt)))
		present := t == h
		for _, s := range succ {
			if s == t {
				present = true
				break
			}
		}
		if present {
			continue
		}
		recs = append(recs, ingest.Record{Op: ingest.OpAdd, H: h, R: r, T: t})
	}
	return recs
}

// IngestMix measures serving under a mixed read+write load: exact
// sharded top-10 latency over the 2i workload, first read-only, then
// with a live ingester fine-tuning streamed edges and publishing delta
// snapshots into the same engine. It reports the read-latency cost of
// concurrent writes plus the write-side throughput (edges applied,
// delta publishes) observed during the mixed phase.
func (s *Suite) IngestMix() *Table {
	const k = 10
	ds := s.Dataset("FB237")
	m, _ := s.Model(ds, "HaLk")
	hk := m.(*halk.Model)
	w := s.Workload(ds, "2i")

	nShards := s.cfg.Shards
	if nShards <= 0 {
		nShards = min(4, runtime.GOMAXPROCS(0))
	}
	t := &Table{
		ID: "IngestMix",
		Title: fmt.Sprintf("Mixed read+write serving (%s, 2i reads, shards=%d, %d queries/phase)",
			ds.Name, nShards, len(w)),
		Header: []string{"Phase", "µs/read", "Read slowdown", "Edges applied", "Delta publishes"},
	}

	ranker, err := hk.NewShardedRanker(shard.Options{Shards: nShards})
	if err != nil {
		s.logf("ingestmix: %v", err)
		return t
	}
	ctx := context.Background()
	readPass := func() (time.Duration, bool) {
		start := time.Now()
		for i := range w {
			if _, err := ranker.RankTopK(ctx, w[i].Root, k); err != nil {
				s.logf("ingestmix: read: %v", err)
				return 0, false
			}
		}
		return time.Since(start), true
	}
	if _, ok := readPass(); !ok { // warm trig caches and the snapshot
		return t
	}

	// Phase 1: read-only baseline.
	base, ok := readPass()
	if !ok {
		return t
	}
	perBase := float64(base.Microseconds()) / float64(len(w))
	t.Rows = append(t.Rows, []string{"read-only", fmt.Sprintf("%.0f", perBase), "1.00x", "-", "-"})

	// Phase 2: the same read pass while an ingester drains a stream of
	// edge batches — fine-tune steps under the write side of the ranking
	// lock, delta publishes swapping dirty shards into the engine.
	dir, err := os.MkdirTemp("", "halk-ingestmix-*")
	if err != nil {
		s.logf("ingestmix: %v", err)
		return t
	}
	defer os.RemoveAll(dir)
	wal, err := ingest.OpenWAL(dir)
	if err != nil {
		s.logf("ingestmix: %v", err)
		return t
	}
	in, err := ingest.New(ingest.Config{
		Model:    hk,
		WAL:      wal,
		Interval: time.Millisecond,
		FineTune: halk.FineTuneConfig{Seed: s.cfg.Seed + 1},
		Publish:  ranker.RefreshDirty,
		Logf:     s.logf,
	})
	if err != nil {
		s.logf("ingestmix: %v", err)
		return t
	}
	in.Start()

	rng := rand.New(rand.NewSource(s.cfg.Seed + 2))
	writes := sampleNonEdges(ds.Train, 8*len(w), rng)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		const batch = 4
		for off := 0; off+batch <= len(writes); off += batch {
			if _, err := in.Submit(writes[off : off+batch]); err != nil {
				s.logf("ingestmix: submit: %v", err)
				return
			}
		}
	}()

	// Read continuously until every write batch is submitted (each WAL
	// append fsyncs, so the writer outlives several read passes), then
	// one final pass so the tail of the write stream overlaps reads too.
	var mixed time.Duration
	var mixedReads int
	for writing := true; writing; {
		select {
		case <-writerDone:
			writing = false
		default:
		}
		d, ok := readPass()
		if !ok {
			in.Close()
			return t
		}
		mixed += d
		mixedReads += len(w)
	}
	in.Close() // final drain: every durable batch is applied
	st := in.Stats()
	perMixed := float64(mixed.Microseconds()) / float64(mixedReads)
	t.Rows = append(t.Rows, []string{
		"mixed", fmt.Sprintf("%.0f", perMixed),
		fmt.Sprintf("%.2fx", perMixed/perBase),
		fmt.Sprintf("%d", st.AppliedEdges),
		fmt.Sprintf("%d", st.Publishes),
	})
	return t
}
