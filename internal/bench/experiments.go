package bench

import (
	"fmt"
	"time"

	"github.com/halk-kg/halk/internal/eval"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/match"
	"github.com/halk-kg/halk/internal/query"
)

// metricSel selects which metric a table reports.
type metricSel int

const (
	selMRR metricSel = iota
	selHit3
)

func (sel metricSel) of(m eval.Metrics) float64 {
	if sel == selMRR {
		return m.MRR
	}
	return m.Hits3
}

// epfoTable builds the Table I / Table II grid: datasets × methods over
// the 12 EPFO+difference structures plus the per-row average.
func (s *Suite) epfoTable(id, title string, sel metricSel) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append(append([]string{"Dataset", "Method"}, query.EPFOStructures...), "Average"),
	}
	for _, ds := range s.Datasets {
		for _, method := range MethodsAll {
			row := []string{ds.Name, method}
			sum, n := 0.0, 0
			for _, structure := range query.EPFOStructures {
				m, ok := s.Eval(ds, method, structure)
				if !ok {
					row = append(row, dash())
					continue
				}
				v := sel.of(m)
				row = append(row, pct(v))
				sum += v
				n++
			}
			if n > 0 {
				row = append(row, pct(sum/float64(n)))
			} else {
				row = append(row, dash())
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Table1 reproduces Table I: MRR (%) for answering queries without
// negation on FB15k, FB237 and NELL.
func (s *Suite) Table1() *Table {
	return s.epfoTable("Table I", "MRR (%) for answering queries on FB15k, FB237, and NELL", selMRR)
}

// Table2 reproduces Table II: Hit@3 (%) on the same grid.
func (s *Suite) Table2() *Table {
	return s.epfoTable("Table II", "Hit@3 (%) for answering queries on FB15k, FB237, and NELL", selHit3)
}

func (s *Suite) negationTable(id, title string, sel metricSel) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append(append([]string{"Dataset", "Method"}, query.NegationStructures...), "AVG"),
	}
	for _, ds := range s.Datasets {
		for _, method := range MethodsNegation {
			row := []string{ds.Name, method}
			sum, n := 0.0, 0
			for _, structure := range query.NegationStructures {
				m, ok := s.Eval(ds, method, structure)
				if !ok {
					row = append(row, dash())
					continue
				}
				v := sel.of(m)
				row = append(row, pct(v))
				sum += v
				n++
			}
			if n > 0 {
				row = append(row, pct(sum/float64(n)))
			} else {
				row = append(row, dash())
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Table3 reproduces Table III: MRR (%) for queries with negation.
func (s *Suite) Table3() *Table {
	return s.negationTable("Table III", "MRR (%) for answering queries with negation", selMRR)
}

// Table4 reproduces Table IV: Hit@3 (%) for queries with negation.
func (s *Suite) Table4() *Table {
	return s.negationTable("Table IV", "Hit@3 (%) for answering queries with negation", selHit3)
}

// Table5 reproduces Table V: the ablation study on NELL. Each operator
// block compares the crippled variant against full HaLk on that
// operator's signature structures, under Hit@3 and MRR.
func (s *Suite) Table5() *Table {
	ds := s.Dataset("NELL")
	t := &Table{
		ID:     "Table V",
		Title:  "Ablation study on NELL under MRR and Hit@3",
		Header: []string{"Block", "Model", "q1", "q2", "q3", "Hit@3 q1/q2/q3", "MRR q1/q2/q3"},
	}
	blocks := []struct {
		name       string
		variant    string
		structures []string
	}{
		{"Difference", "HaLk-V1", []string{"2d", "3d", "dp"}},
		{"Negation", "HaLk-V2", []string{"2in", "3in", "pin"}},
		{"Projection", "HaLk-V3", []string{"1p", "2p", "3p"}},
	}
	for _, blk := range blocks {
		for _, method := range []string{blk.variant, "HaLk"} {
			row := []string{blk.name, method, blk.structures[0], blk.structures[1], blk.structures[2]}
			var h3, mrr string
			for i, structure := range blk.structures {
				m, ok := s.Eval(ds, method, structure)
				if !ok {
					h3 += dash()
					mrr += dash()
				} else {
					h3 += pct(m.Hits3)
					mrr += pct(m.MRR)
				}
				if i < len(blk.structures)-1 {
					h3 += "/"
					mrr += "/"
				}
			}
			row = append(row, h3, mrr)
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// gfRun executes the matcher on a workload and reports mean accuracy
// (Jaccard against test-graph ground truth) and mean execution time.
// Options are built outside the timed region: the experiment measures
// the matcher's online time (the candidate sets are the pruner's
// product, produced by the embedding side).
func gfRun(m *match.Matcher, w []query.Query, opts func(q *query.Query) match.Options) (acc float64, avg time.Duration) {
	if len(w) == 0 {
		return 0, 0
	}
	var total time.Duration
	for i := range w {
		q := &w[i]
		o := opts(q)
		start := time.Now()
		res := m.Execute(q.Root, o)
		total += time.Since(start)
		acc += eval.SetAccuracy(res.Answers, q.Answers)
	}
	return acc / float64(len(w)), total / time.Duration(len(w))
}

// halkRun ranks a workload with HaLk and reports mean precision-at-truth
// accuracy and mean online time.
func halkRun(m *halk.Model, w []query.Query) (acc float64, avg time.Duration) {
	if len(w) == 0 {
		return 0, 0
	}
	var total time.Duration
	for i := range w {
		start := time.Now()
		d := m.Distances(w[i].Root)
		total += time.Since(start)
		acc += eval.PrecisionAtTruth(d, w[i].Answers)
	}
	return acc / float64(len(w)), total / time.Duration(len(w))
}

// Table6 reproduces Table VI: accuracy and execution time of HaLk vs
// GFinder across query sizes 1–5 on NELL.
func (s *Suite) Table6() *Table {
	ds := s.Dataset("NELL")
	hm, _ := s.Model(ds, "HaLk")
	hk := hm.(*halk.Model)
	gf := match.New(ds.Train)
	t := &Table{
		ID:     "Table VI",
		Title:  "Accuracy and execution time vs query size on NELL (H = HaLk, G = GFinder)",
		Header: []string{"QS", "EQS", "Acc H (%)", "Acc G (%)", "ET H (ms)", "ET G (ms)"},
	}
	for i, structure := range query.SizeLadder {
		w := s.Workload(ds, structure)
		haccV, htime := halkRun(hk, w)
		gaccV, gtime := gfRun(gf, w, func(*query.Query) match.Options { return match.Options{} })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), structure,
			pct(haccV), pct(gaccV),
			ms(float64(htime.Microseconds()) / 1000), ms(float64(gtime.Microseconds()) / 1000),
		})
	}
	return t
}

// pruneRestrict builds the induced candidate set of Sec. IV-D: HaLk's
// top-k candidates for every variable node, plus the anchors.
func pruneRestrict(hk *halk.Model, root *query.Node, k int) query.Set {
	restrict := make(query.Set)
	for _, cands := range hk.CandidatesPerNode(root, k) {
		for _, e := range cands {
			restrict[e] = struct{}{}
		}
	}
	for _, a := range root.Anchors() {
		restrict[a] = struct{}{}
	}
	return restrict
}

// Fig6a reproduces Fig. 6a: GFinder accuracy and query time on the six
// large structures before and after HaLk's top-k pruning.
func (s *Suite) Fig6a() *Table {
	ds := s.Dataset("NELL")
	hm, _ := s.Model(ds, "HaLk")
	hk := hm.(*halk.Model)
	gf := match.New(ds.Train)
	t := &Table{
		ID:    "Fig. 6a",
		Title: fmt.Sprintf("GFinder accuracy and query time before/after HaLk top-%d pruning (NELL)", s.cfg.PruneTopK),
		Header: []string{"Structure", "Acc before (%)", "Acc after (%)",
			"Time before (ms)", "Time after (ms)"},
	}
	for _, structure := range query.LargeStructures {
		w := s.Workload(ds, structure)
		accB, timeB := gfRun(gf, w, func(*query.Query) match.Options { return match.Options{} })
		accA, timeA := gfRun(gf, w, func(q *query.Query) match.Options {
			return match.Options{Restrict: pruneRestrict(hk, q.Root, s.cfg.PruneTopK)}
		})
		t.Rows = append(t.Rows, []string{
			structure, pct(accB), pct(accA),
			ms(float64(timeB.Microseconds()) / 1000), ms(float64(timeA.Microseconds()) / 1000),
		})
	}
	return t
}

// Fig6b reproduces Fig. 6b: offline training time of the four embedding
// methods on the three datasets.
func (s *Suite) Fig6b() *Table {
	t := &Table{
		ID:     "Fig. 6b",
		Title:  "Offline (training) time in seconds",
		Header: append([]string{"Method"}, datasetNames(s.Datasets)...),
	}
	for _, method := range MethodsAll {
		row := []string{method}
		for _, ds := range s.Datasets {
			_, offline := s.Model(ds, method)
			row = append(row, sec(offline.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6c reproduces Fig. 6c: online query time of the four embedding
// methods and GFinder on the three datasets, averaged over the six large
// structures (each method answering the structures it supports).
func (s *Suite) Fig6c() *Table {
	t := &Table{
		ID:     "Fig. 6c",
		Title:  "Online query time in milliseconds (large structures)",
		Header: append([]string{"Method"}, datasetNames(s.Datasets)...),
	}
	for _, method := range append(append([]string{}, MethodsAll...), "GFinder") {
		row := []string{method}
		for _, ds := range s.Datasets {
			var total time.Duration
			n := 0
			if method == "GFinder" {
				gf := match.New(ds.Train)
				for _, structure := range query.LargeStructures {
					w := s.Workload(ds, structure)
					_, avg := gfRun(gf, w, func(*query.Query) match.Options { return match.Options{} })
					total += avg
					n++
				}
			} else {
				m, _ := s.Model(ds, method)
				for _, structure := range query.LargeStructures {
					if !m.Supports(structure) {
						continue
					}
					w := s.Workload(ds, structure)
					if len(w) == 0 {
						continue
					}
					mt := eval.Evaluate(m, w)
					total += mt.AvgQueryTime
					n++
				}
			}
			if n == 0 {
				row = append(row, dash())
				continue
			}
			avg := total / time.Duration(n)
			row = append(row, ms(float64(avg.Microseconds())/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func datasetNames(ds []*kg.Dataset) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// RunAll regenerates every table and figure in paper order.
func (s *Suite) RunAll() []*Table {
	return []*Table{
		s.Table1(), s.Table2(), s.Table3(), s.Table4(),
		s.Table5(), s.Fig6a(), s.Fig6b(), s.Fig6c(), s.Table6(),
	}
}
