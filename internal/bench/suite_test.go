package bench

import (
	"strings"
	"testing"
)

// quickSuite shares one tiny suite across the package's tests: training
// even at smoke scale dominates test time.
func quickSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := QuickConfig(3)
	cfg.Train.Steps = 60
	cfg.EvalQueries = 4
	return NewSuite(cfg)
}

func TestSuiteDatasets(t *testing.T) {
	s := quickSuite(t)
	if len(s.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(s.Datasets))
	}
	for _, name := range []string{"FB15k", "FB237", "NELL"} {
		if s.Dataset(name) == nil {
			t.Errorf("missing dataset %s", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset should panic")
		}
	}()
	s.Dataset("nope")
}

func TestModelCacheAndFactory(t *testing.T) {
	s := quickSuite(t)
	ds := s.Dataset("FB237")
	for _, method := range []string{"HaLk", "ConE", "NewLook", "MLPMix", "HaLk-V2"} {
		m, offline := s.Model(ds, method)
		if m == nil || offline <= 0 {
			t.Fatalf("%s: model %v, offline %v", method, m, offline)
		}
		m2, off2 := s.Model(ds, method)
		if m2 != m || off2 != offline {
			t.Errorf("%s: cache miss on second call", method)
		}
	}
}

func TestWorkloadCached(t *testing.T) {
	s := quickSuite(t)
	ds := s.Dataset("FB237")
	w1 := s.Workload(ds, "1p")
	w2 := s.Workload(ds, "1p")
	if len(w1) == 0 {
		t.Fatal("empty workload")
	}
	if &w1[0] != &w2[0] {
		t.Error("workload not cached")
	}
}

func TestEvalUnsupportedStructure(t *testing.T) {
	s := quickSuite(t)
	ds := s.Dataset("FB237")
	if _, ok := s.Eval(ds, "NewLook", "2in"); ok {
		t.Error("NewLook must not evaluate negation structures")
	}
	if _, ok := s.Eval(ds, "ConE", "2d"); ok {
		t.Error("ConE must not evaluate difference structures")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "Table X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") || !strings.Contains(out, "333") {
		t.Errorf("rendering = %q", out)
	}
	if tb.Cell(0, 1) != "2" || tb.Cell(5, 5) != "" {
		t.Error("Cell accessor wrong")
	}
}

func TestQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := quickSuite(t)

	t1 := s.Table1()
	// 3 datasets × 4 methods rows; 12 structures + average + 2 label cols
	if len(t1.Rows) != 12 {
		t.Fatalf("Table I rows = %d", len(t1.Rows))
	}
	if len(t1.Header) != 15 {
		t.Fatalf("Table I header = %d cols", len(t1.Header))
	}
	// ConE/MLPMix rows must have dashes in difference columns (2d 3d dp)
	for _, row := range t1.Rows {
		if row[1] == "ConE" || row[1] == "MLPMix" {
			if row[11] != "-" || row[12] != "-" || row[13] != "-" {
				t.Errorf("%s row should dash difference columns: %v", row[1], row)
			}
		}
		if row[1] == "HaLk" || row[1] == "NewLook" {
			if row[11] == "-" {
				t.Errorf("%s row missing difference results: %v", row[1], row)
			}
		}
	}

	t3 := s.Table3()
	if len(t3.Rows) != 9 { // 3 datasets × 3 methods
		t.Fatalf("Table III rows = %d", len(t3.Rows))
	}

	t5 := s.Table5()
	if len(t5.Rows) != 6 { // 3 blocks × 2 models
		t.Fatalf("Table V rows = %d", len(t5.Rows))
	}

	t6 := s.Table6()
	if len(t6.Rows) != 5 {
		t.Fatalf("Table VI rows = %d", len(t6.Rows))
	}

	f6a := s.Fig6a()
	if len(f6a.Rows) != 6 {
		t.Fatalf("Fig 6a rows = %d", len(f6a.Rows))
	}

	f6b := s.Fig6b()
	if len(f6b.Rows) != 4 {
		t.Fatalf("Fig 6b rows = %d", len(f6b.Rows))
	}

	f6c := s.Fig6c()
	if len(f6c.Rows) != 5 { // 4 embedding methods + GFinder
		t.Fatalf("Fig 6c rows = %d", len(f6c.Rows))
	}
}
