package bench

import (
	"testing"
)

func TestReplicaFailoverExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := quickSuite(t)
	tbl := s.ReplicaFailover()
	if len(tbl.Rows) != 3 {
		t.Fatalf("ReplicaFailover rows = %d, want 3: %v", len(tbl.Rows), tbl.Rows)
	}
	if tbl.Rows[0][0] != "in-process" {
		t.Fatalf("first row must be the in-process baseline: %v", tbl.Rows[0])
	}
	for i, row := range tbl.Rows {
		if row[3] != "no" {
			t.Errorf("row %d (%s) answered partial: %v", i, row[0], row)
		}
		if row[4] != "yes" {
			t.Errorf("row %d (%s) disagreed with the in-process baseline: %v", i, row[0], row)
		}
	}
	// The degraded topology must have paid in failovers, not completeness.
	if tbl.Rows[2][2] == "0" {
		t.Errorf("degraded topology recorded no failovers: %v", tbl.Rows[2])
	}
}
