package bench

import (
	"testing"
)

func TestBatchMixExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := quickSuite(t)
	tbl := s.BatchMix()
	if len(tbl.Rows) != 1+len(batchSizes) {
		t.Fatalf("BatchMix rows = %d, want %d: %v", len(tbl.Rows), 1+len(batchSizes), tbl.Rows)
	}
	if tbl.Rows[0][0] != "sequential" {
		t.Fatalf("first row must be the sequential baseline: %v", tbl.Rows[0])
	}
	for i, row := range tbl.Rows {
		if row[4] != "yes" {
			t.Errorf("row %d (%s batch=%s) disagreed with the sequential baseline: %v",
				i, row[0], row[1], row)
		}
	}
}
