package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// batchSizes is the batch-size sweep of the BatchMix experiment.
var batchSizes = []int{4, 16, 64}

// BatchMix measures batched query evaluation against one-at-a-time
// ranking on the same sharded engine: a mixed-structure workload is
// ranked once sequentially through RankTopK and once through RankBatch
// at several batch sizes. Both paths run the identical blocked scan
// kernel; batching amortises the per-scan snapshot and scatter overhead
// and sweeps each cache-resident entity block for the whole batch
// before moving on, so its win is memory traffic, not algorithm. The
// agreement column checks the contract that batching never changes an
// answer.
func (s *Suite) BatchMix() *Table {
	const k = 10
	ds := s.Dataset("FB237")
	m, _ := s.Model(ds, "HaLk")
	hk := m.(*halk.Model)

	// A mixed workload, interleaved so every batch carries several
	// structures (the serving-path shape: callers batch whatever they
	// have, not one structure at a time).
	var w []query.Query
	structures := []string{"1p", "2i", "pi"}
	per := make([][]query.Query, len(structures))
	for i, st := range structures {
		per[i] = s.Workload(ds, st)
	}
	for j := 0; ; j++ {
		added := false
		for i := range per {
			if j < len(per[i]) {
				w = append(w, per[i][j])
				added = true
			}
		}
		if !added {
			break
		}
	}

	shards := 2
	if s.cfg.Shards > 0 {
		shards = s.cfg.Shards
	}
	t := &Table{
		ID: "BatchMix",
		Title: fmt.Sprintf("Batched vs sequential exact top-%d ranking (%s, mixed 1p/2i/pi, %d queries, shards=%d, GOMAXPROCS=%d)",
			k, ds.Name, len(w), shards, runtime.GOMAXPROCS(0)),
		Header: []string{"Path", "Batch", "µs/query", "Speedup", "Agree"},
	}

	r, err := hk.NewShardedRanker(shard.Options{Shards: shards})
	if err != nil {
		s.logf("batchmix: %v", err)
		return t
	}
	defer r.Close()
	ctx := context.Background()

	// Sequential baseline: the same queries one RankTopK at a time.
	if _, err := r.RankTopK(ctx, w[0].Root, k); err != nil { // warm
		s.logf("batchmix: warm query: %v", err)
		return t
	}
	baseline := make([]*shard.Result, len(w))
	start := time.Now()
	for i := range w {
		res, err := r.RankTopK(ctx, w[i].Root, k)
		if err != nil {
			s.logf("batchmix: query %d: %v", i, err)
			return t
		}
		baseline[i] = res
	}
	perBase := float64(time.Since(start).Microseconds()) / float64(len(w))
	t.Rows = append(t.Rows, []string{"sequential", "1", fmt.Sprintf("%.0f", perBase), "1.00x", "yes"})

	for _, bs := range batchSizes {
		agree := true
		start := time.Now()
		for lo := 0; lo < len(w); lo += bs {
			hi := lo + bs
			if hi > len(w) {
				hi = len(w)
			}
			roots := make([]*query.Node, hi-lo)
			ks := make([]int, hi-lo)
			for i := range roots {
				roots[i] = w[lo+i].Root
				ks[i] = k
			}
			results, err := r.RankBatch(ctx, roots, ks)
			if err != nil {
				s.logf("batchmix: batch=%d at %d: %v", bs, lo, err)
				agree = false
				continue
			}
			for i, res := range results {
				want := baseline[lo+i]
				if len(res.IDs) != len(want.IDs) {
					agree = false
					continue
				}
				for j := range want.IDs {
					if res.IDs[j] != want.IDs[j] || res.Dists[j] != want.Dists[j] {
						agree = false
					}
				}
			}
		}
		per := float64(time.Since(start).Microseconds()) / float64(len(w))
		ok := "yes"
		if !agree {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			"batched", fmt.Sprintf("%d", bs), fmt.Sprintf("%.0f", per),
			fmt.Sprintf("%.2fx", perBase/per), ok,
		})
	}
	return t
}
