package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"github.com/halk-kg/halk/internal/cluster"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// replicaNode is one loopback shard node of the ReplicaFailover
// topology.
type replicaNode struct {
	ts     *httptest.Server
	node   *cluster.Node
	ranker *halk.RangeRanker
}

func (rn *replicaNode) close() {
	rn.ts.Close()
	rn.node.Close()
	rn.ranker.Close()
}

// startReplicaTopology builds a loopback cluster of nRanges entity
// ranges with nReplicas nodes each, all over the same model.
func startReplicaTopology(m *halk.Model, ds *kg.Dataset, nRanges, nReplicas int) ([][]*replicaNode, [][]string, error) {
	embed := func(n *query.Node) []cluster.ArcSpec {
		arcs := m.EmbedQueryLocked(n)
		specs := make([]cluster.ArcSpec, len(arcs))
		for i, a := range arcs {
			specs[i] = cluster.ArcSpec{C: a.C, L: a.L, Hot: a.Hot}
		}
		return specs
	}
	ents := ds.Train.NumEntities()
	nodes := make([][]*replicaNode, nRanges)
	ranges := make([][]string, nRanges)
	for i := 0; i < nRanges; i++ {
		lo, hi := cluster.Partition(ents, nRanges, i)
		for j := 0; j < nReplicas; j++ {
			ranker, err := m.NewRangeRanker(lo, hi, shard.Options{Shards: 1})
			if err != nil {
				return nodes, nil, err
			}
			node, err := cluster.NewNode(cluster.NodeConfig{
				Engine:    ranker.Engine(),
				Params:    m.ShardParams(),
				Metrics:   obs.NewRegistry(),
				ModelName: ds.Name,
				Entities:  ds.Train.Entities,
				Relations: ds.Train.Relations,
				Graph:     ds.Test,
				Embed:     embed,
			})
			if err != nil {
				ranker.Close()
				return nodes, nil, err
			}
			ts := httptest.NewServer(node.Handler())
			nodes[i] = append(nodes[i], &replicaNode{ts: ts, node: node, ranker: ranker})
			ranges[i] = append(ranges[i], ts.URL)
		}
	}
	return nodes, ranges, nil
}

// ReplicaFailover measures what replica failover costs and what it
// buys: exact top-10 latency over the 2i workload through an
// in-process engine, through a healthy 2-replica 2-range loopback
// cluster, and through the same cluster with one replica killed in
// every range. The contract under test is the replicated serving
// invariant — with a live sibling per range the degraded topology still
// answers whole (no partial) and byte-identical to the in-process
// baseline, at the price of failovers instead of completeness.
func (s *Suite) ReplicaFailover() *Table {
	const (
		k         = 10
		nRanges   = 2
		nReplicas = 2
	)
	ds := s.Dataset("FB237")
	mi, _ := s.Model(ds, "HaLk")
	m := mi.(*halk.Model)
	w := s.Workload(ds, "2i")

	t := &Table{
		ID: "ReplicaFailover",
		Title: fmt.Sprintf("Replica failover: %d-range %d-replica loopback cluster (%s, 2i, %d queries, top-%d)",
			nRanges, nReplicas, ds.Name, len(w), k),
		Header: []string{"Topology", "µs/query", "Failovers", "Partial", "Exact"},
	}

	ctx := context.Background()

	// Baseline: the in-process engine at the same scatter width.
	ref, err := m.NewShardedRanker(shard.Options{Shards: nRanges})
	if err != nil {
		s.logf("replica: %v", err)
		return t
	}
	defer ref.Close()
	baseline := make([]*shard.Result, len(w))
	if _, err := ref.RankTopK(ctx, w[0].Root, k); err != nil { // warm
		s.logf("replica: warm query: %v", err)
		return t
	}
	start := time.Now()
	for i := range w {
		res, err := ref.RankTopK(ctx, w[i].Root, k)
		if err != nil {
			s.logf("replica: baseline query %d: %v", i, err)
			return t
		}
		baseline[i] = res
	}
	per := float64(time.Since(start).Microseconds()) / float64(len(w))
	t.Rows = append(t.Rows, []string{"in-process", fmt.Sprintf("%.0f", per), "-", "no", "yes"})

	nodes, ranges, err := startReplicaTopology(m, ds, nRanges, nReplicas)
	defer func() {
		for _, reps := range nodes {
			for _, rn := range reps {
				rn.close()
			}
		}
	}()
	if err != nil {
		s.logf("replica: topology: %v", err)
		return t
	}

	// sabotage runs after the health sweep and warm query, so the router
	// believes the topology is whole when the fault lands — the
	// mid-serving node death that exercises failover, as opposed to a
	// known-dead replica the health loop already routed around.
	run := func(label string, sabotage func()) {
		rt, err := cluster.NewRouter(cluster.Config{
			Ranges: ranges,
			Embed: func(n *query.Node) []cluster.ArcSpec {
				arcs := m.EmbedQueryLocked(n)
				specs := make([]cluster.ArcSpec, len(arcs))
				for i, a := range arcs {
					specs[i] = cluster.ArcSpec{C: a.C, L: a.L, Hot: a.Hot}
				}
				return specs
			},
			ScanTimeout: 2 * time.Second,
			Metrics:     obs.NewRegistry(),
			Seed:        s.cfg.Seed,
		})
		if err != nil {
			s.logf("replica: router: %v", err)
			return
		}
		defer rt.Close()
		rt.CheckHealth(ctx)
		if _, err := rt.RankTopK(ctx, w[0].Root, k); err != nil { // warm
			s.logf("replica: %s warm query: %v", label, err)
			return
		}
		if sabotage != nil {
			sabotage()
		}
		partial, exact := false, true
		start := time.Now()
		for i := range w {
			res, err := rt.RankTopK(ctx, w[i].Root, k)
			if err != nil {
				s.logf("replica: %s query %d: %v", label, i, err)
				exact = false
				continue
			}
			partial = partial || res.Partial
			if len(res.IDs) != len(baseline[i].IDs) {
				exact = false
				continue
			}
			for j := range res.IDs {
				if res.IDs[j] != baseline[i].IDs[j] {
					exact = false
				}
			}
		}
		per := float64(time.Since(start).Microseconds()) / float64(len(w))
		var failovers uint64
		for _, rr := range rt.ReplicaStats() {
			failovers += rr.Failovers
		}
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprintf("%.0f", per), fmt.Sprintf("%d", failovers), yn(partial), yn(exact),
		})
	}

	run("replicated, healthy", nil)
	run("replicated, 1 replica killed/range", func() {
		for _, reps := range nodes {
			reps[0].ts.Close() // kill one replica per range mid-serving
		}
	})
	return t
}
