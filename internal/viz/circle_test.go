package viz

import (
	"math"
	"strings"
	"testing"
)

func TestCircleContainsMarkers(t *testing.T) {
	out := Circle(10, 1, 0.5, 1.0, []Point{
		{Angle: 0.5, Label: 'A'},
		{Angle: math.Pi, Label: 'B'},
	})
	for _, want := range []string{"=", ".", "A", "B", "arc: center 0.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// The point on the arc center overwrote '+': A sits at the center.
	if strings.Count(out, "A") != 1 {
		t.Error("entity label should appear exactly once")
	}
}

func TestCircleMinRadius(t *testing.T) {
	out := Circle(1, 1, 0, 0.5, nil)
	if len(strings.Split(out, "\n")) < 5 {
		t.Error("tiny radius should be clamped up")
	}
}

func TestDimensionLabels(t *testing.T) {
	if pointLabel(3) != '3' || pointLabel(10) != 'a' || pointLabel(35) != 'z' || pointLabel(99) != '*' {
		t.Error("pointLabel mapping wrong")
	}
	ents := [][]float64{{0.1, 2.0}, {1.5, 3.0}}
	out := Dimension(1, 1, []float64{0, 2.5}, []float64{0, 0.8}, ents)
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("entity labels missing:\n%s", out)
	}
	if !strings.Contains(out, "center 2.50") {
		t.Errorf("wrong dimension rendered:\n%s", out)
	}
}
