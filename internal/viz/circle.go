// Package viz renders arc embeddings as ASCII diagrams for debugging
// and teaching: one embedding dimension at a time, the unit circle is
// drawn with the query arc highlighted and selected entity points
// plotted — the Fig. 1d / Fig. 3 view of the embedding space in a
// terminal.
package viz

import (
	"fmt"
	"math"
	"strings"

	"github.com/halk-kg/halk/internal/geometry"
)

// Point is an entity to plot: its angle on the chosen dimension and a
// single-rune label.
type Point struct {
	Angle float64
	Label rune
}

// Circle renders a circle of the given terminal radius (characters) with
// the arc [center−l/2ρ, center+l/2ρ] drawn as '=' and points as their
// labels. Rho is the embedding circle radius used to convert arclength
// to angle.
func Circle(radius int, rho, center, arclen float64, points []Point) string {
	if radius < 4 {
		radius = 4
	}
	w := 2*radius + 1
	h := radius + 1 // terminal cells are ~2x taller than wide
	grid := make([][]rune, 2*h+1)
	for i := range grid {
		grid[i] = make([]rune, w+2)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(theta float64, r rune) {
		x := int(math.Round(float64(radius) * math.Cos(theta)))
		y := int(math.Round(float64(h) * math.Sin(theta)))
		grid[h-y][radius+x] = r
	}
	// circle outline
	for i := 0; i < 360; i += 3 {
		theta := float64(i) * math.Pi / 180
		put(theta, '.')
	}
	// arc segment
	half := arclen / (2 * rho)
	steps := int(math.Max(8, half*2*180/math.Pi))
	for i := 0; i <= steps; i++ {
		theta := center - half + 2*half*float64(i)/float64(steps)
		put(theta, '=')
	}
	put(center, '+') // semantic center marker
	// entity points drawn last so they stay visible
	for _, p := range points {
		put(p.Angle, p.Label)
	}

	var b strings.Builder
	for _, row := range grid {
		line := strings.TrimRight(string(row), " ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "arc: center %.2f rad, length %.2f (angle %.2f rad); '+' center, '=' arc, '.' circle\n",
		geometry.Wrap(center), arclen, 2*half)
	return b.String()
}

// Dimension renders dimension j of a query arc embedding with the given
// entity angle vectors, labelling entities '0'-'9' then 'a'-'z' in input
// order.
func Dimension(j int, rho float64, arcCenter, arcLen []float64, entities [][]float64) string {
	pts := make([]Point, 0, len(entities))
	for i, e := range entities {
		pts = append(pts, Point{Angle: e[j], Label: pointLabel(i)})
	}
	return Circle(14, rho, arcCenter[j], arcLen[j], pts)
}

func pointLabel(i int) rune {
	switch {
	case i < 10:
		return rune('0' + i)
	case i < 36:
		return rune('a' + i - 10)
	}
	return '*'
}
