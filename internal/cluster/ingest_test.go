package cluster

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// TestClusterDeltaRollout is the ISSUE acceptance test (part c): a live
// edge ingested through the WAL + fine-tune pipeline propagates to a
// 3-node loopback cluster as a delta publication, and the router's
// quorum rollout machinery handles it exactly like a checkpoint reload:
// the served version (the cache namespace) holds until a quorum of
// nodes publish the delta, mixed-version answers are marked partial,
// and the completed rollout serves answers byte-identical to a full
// rebuild over the fine-tuned table.
func TestClusterDeltaRollout(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, nil)

	// The ingester drives the shared model; its Publish fans the dirty
	// set out to whichever nodes the test has staged for the rollout.
	var lastDirty []kg.EntityID
	wal, err := ingest.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.New(ingest.Config{
		Model:    m,
		WAL:      wal,
		FineTune: halk.FineTuneConfig{Seed: 7},
		Publish: func(dirty []kg.EntityID) error {
			// Stage 1 of the rollout: only node 0 receives the delta; the
			// test completes the rollout node by node below.
			lastDirty = append([]kg.EntityID(nil), dirty...)
			return nodes[0].ranker.RefreshDirty(dirty)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	v0 := m.EntityVersion()
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("initial served version = %d, want %d", got, v0)
	}
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}

	// Find a triple absent from the graph and stream it in through the
	// ingest pipeline (durable WAL append + synchronous drain).
	g := m.Graph()
	var rec ingest.Record
	found := false
	for h := kg.EntityID(0); h < kg.EntityID(g.NumEntities()) && !found; h++ {
		for ri := 0; ri < g.NumRelations() && !found; ri++ {
			r := kg.RelationID(ri)
			succ := g.Successors(h, r)
			if len(succ) == 0 {
				continue
			}
			have := make(map[kg.EntityID]struct{}, len(succ))
			for _, e := range succ {
				have[e] = struct{}{}
			}
			for cand := kg.EntityID(0); cand < kg.EntityID(g.NumEntities()); cand++ {
				if _, ok := have[cand]; !ok && cand != h {
					rec = ingest.Record{Op: ingest.OpAdd, H: h, R: r, T: cand}
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("no non-edge found")
	}
	if _, err := in.Submit([]ingest.Record{rec}); err != nil {
		t.Fatal(err)
	}
	if err := in.Replay(); err != nil { // synchronous drain: apply + publish to node 0
		t.Fatal(err)
	}
	v1 := m.EntityVersion()
	if v1 == v0 {
		t.Fatal("fine-tune did not bump the entity version")
	}
	if len(lastDirty) == 0 {
		t.Fatal("publish saw an empty dirty set")
	}
	if got := nodes[0].ranker.Engine().Version(); got != v1 {
		t.Fatalf("node 0 engine version = %d, want %d after delta publish", got, v1)
	}

	// 1/3 nodes on the new version: the served version (and with it the
	// version-namespaced cache key space) must hold at v0 — no answer is
	// ever cached under the new version before quorum.
	rt.CheckHealth(context.Background())
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("served version flipped at 1/3 nodes: %d, want %d", got, v0)
	}
	res, err := rt.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("mixed-version answer not marked partial (would be cacheable while stale)")
	}

	// Stage 2: the delta reaches node 1 — quorum. The served version
	// flips, precisely invalidating every v0-keyed cache entry.
	if err := nodes[1].ranker.RefreshDirty(lastDirty); err != nil {
		t.Fatal(err)
	}
	rt.CheckHealth(context.Background())
	if got := rt.SnapshotVersion(); got != v1 {
		t.Fatalf("served version after quorum = %d, want %d", got, v1)
	}

	// Stage 3: rollout completes; answers are whole and byte-identical
	// to a freshly built (non-delta) engine over the fine-tuned table.
	if err := nodes[2].ranker.RefreshDirty(lastDirty); err != nil {
		t.Fatal(err)
	}
	rt.CheckHealth(context.Background())

	ref, err := m.NewShardedRanker(shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = rt.RankTopK(context.Background(), q, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res.Partial {
		t.Fatal("post-rollout answer still partial")
	}
	if res.Version != v1 {
		t.Fatalf("post-rollout result version = %d, want %d", res.Version, v1)
	}
	want, err := ref.RankTopK(context.Background(), q, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(want.IDs) {
		t.Fatalf("got %d answers, want %d", len(res.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if res.IDs[i] != want.IDs[i] {
			t.Fatalf("answer %d: id %d, want %d", i, res.IDs[i], want.IDs[i])
		}
		if math.Float64bits(res.Dists[i]) != math.Float64bits(want.Dists[i]) {
			t.Fatalf("answer %d: delta-published dist %x, full-rebuild dist %x (not byte-identical)",
				i, math.Float64bits(res.Dists[i]), math.Float64bits(want.Dists[i]))
		}
	}
}
