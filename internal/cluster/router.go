package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

// Config assembles a Router.
type Config struct {
	// Remotes are the node addresses ("host:port" or URLs), one per
	// hosted entity range. Required, at least one.
	Remotes []string
	// Embed turns a query DAG into wire arcs; halk-serve wires the
	// model's EmbedQueryLocked. Required.
	Embed func(n *query.Node) []ArcSpec
	// ScanTimeout bounds each remote scan; a remote that misses it is
	// skipped and the merged result is marked partial — the cluster
	// analogue of shard.Options.ShardTimeout. 0 means remotes are
	// bounded only by the query context.
	ScanTimeout time.Duration
	// HedgeDelay enables hedged remote scans: when a node has not
	// answered after max(HedgeDelay, its observed p99 scan latency) —
	// capped at ScanTimeout — a second identical request is issued and
	// the first result wins. Node snapshots are immutable, so either
	// answer is byte-identical. 0 disables hedging.
	HedgeDelay time.Duration
	// Breaker, when non-nil, guards each remote with a circuit breaker
	// built from this config: nodes that keep failing are skipped up
	// front (immediate partial degradation) until a half-open probe
	// succeeds.
	Breaker *resil.BreakerConfig
	// Quorum is how many nodes must report a new entity version before
	// the router flips its served version — and with it the answer
	// cache's key namespace — during a checkpoint rollout. 0 means a
	// majority (len(Remotes)/2 + 1).
	Quorum int
	// HealthEvery is the Start loop's health-poll period; 0 means 2s.
	HealthEvery time.Duration
	// Metrics is the registry the per-remote counters register on; nil
	// means a private one.
	Metrics *obs.Registry
	// Client is the shared HTTP client; nil means NewHTTPClient().
	Client *http.Client
}

// Router scatter-gathers ranking queries across remote shard nodes and
// merges their local top-K lists into the global answer. It implements
// serve.Ranker, so halk-serve's caching, admission control, partial
// semantics and stats surfaces apply to a topology of remote nodes
// exactly as they apply to an in-process engine.
//
// All methods are safe for concurrent use.
type Router struct {
	cfg     Config
	remotes []*RemoteShard
	// breakers is one circuit breaker per remote slot (nil when
	// Config.Breaker was nil).
	breakers []*resil.Breaker
	stats    []*remoteStat
	reg      *obs.Registry

	// version is the quorum-agreed entity version — what SnapshotVersion
	// reports and the serve cache namespaces keys by. It only moves
	// forward, and only once Quorum nodes have reported the new version
	// (see CheckHealth), so a half-rolled-out checkpoint never flips the
	// cache back and forth.
	version atomic.Uint64

	// scanWG tracks every remote-scan goroutine — scatter and hedge —
	// so Close can await stragglers; closeMu serialises new gathers
	// against Close (see shard.Engine for the pattern).
	scanWG  sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool
}

// NewRouter validates cfg and builds the router. It performs no I/O:
// call Start (or CheckHealth) to populate node health and the served
// version.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Remotes) == 0 {
		return nil, fmt.Errorf("cluster: Config.Remotes is required")
	}
	if cfg.Embed == nil {
		return nil, fmt.Errorf("cluster: Config.Embed is required")
	}
	if cfg.Quorum < 0 || cfg.Quorum > len(cfg.Remotes) {
		return nil, fmt.Errorf("cluster: Quorum %d out of range for %d remotes", cfg.Quorum, len(cfg.Remotes))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	hc := cfg.Client
	if hc == nil {
		hc = NewHTTPClient()
	}
	rt := &Router{
		cfg:   cfg,
		reg:   cfg.Metrics,
		stats: newRemoteStats(cfg.Metrics, cfg.Remotes),
	}
	rt.remotes = make([]*RemoteShard, len(cfg.Remotes))
	for i, addr := range cfg.Remotes {
		rt.remotes[i] = NewRemoteShard(addr, hc)
	}
	if cfg.Breaker != nil {
		rt.breakers = make([]*resil.Breaker, len(rt.remotes))
		for i := range rt.breakers {
			b := resil.NewBreaker(*cfg.Breaker)
			rt.breakers[i] = b
			cfg.Metrics.GaugeFunc("halk_remote_breaker_state",
				"Circuit breaker state per remote node (0=closed, 1=open, 2=half-open).",
				func() float64 { return float64(b.State()) },
				obs.L("node", cfg.Remotes[i]))
		}
	}
	return rt, nil
}

// quorum resolves the configured quorum (0 = majority).
func (rt *Router) quorum() int {
	if rt.cfg.Quorum > 0 {
		return rt.cfg.Quorum
	}
	return len(rt.remotes)/2 + 1
}

// Start launches the health loop: an immediate sweep, then one every
// HealthEvery until ctx dies. The loop keeps per-node liveness, ranges
// and versions fresh, and flips the served version when a quorum of
// nodes reports a newer one (the coordinated-checkpoint-rollout seam).
func (rt *Router) Start(ctx context.Context) {
	every := rt.cfg.HealthEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	go func() {
		sweep := func() {
			hctx, cancel := context.WithTimeout(ctx, every)
			rt.CheckHealth(hctx)
			cancel()
		}
		sweep()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			sweep()
		}
	}()
}

// CheckHealth probes every node's /v1/healthz concurrently, records
// per-node liveness/range/version, advances the quorum version, and
// reports how many nodes answered. Called by the Start loop; also
// useful synchronously (process startup, tests).
func (rt *Router) CheckHealth(ctx context.Context) int {
	var wg sync.WaitGroup
	healths := make([]*Health, len(rt.remotes))
	for i := range rt.remotes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := rt.remotes[i].Health(ctx)
			if err != nil {
				rt.stats[i].setHealth(nil, false)
				return
			}
			healths[i] = h
			rt.stats[i].setHealth(h, true)
		}(i)
	}
	wg.Wait()

	up := 0
	versions := make([]uint64, 0, len(healths))
	for _, h := range healths {
		if h == nil {
			continue
		}
		up++
		versions = append(versions, h.EntityVersion)
	}
	// Quorum flip: the highest version at least Quorum nodes have
	// reached. Sorting descending, that is the q-th highest report.
	if q := rt.quorum(); len(versions) >= q {
		sort.Slice(versions, func(i, j int) bool { return versions[i] > versions[j] })
		cand := versions[q-1]
		for {
			cur := rt.version.Load()
			if cand <= cur || rt.version.CompareAndSwap(cur, cand) {
				break
			}
		}
	}
	return up
}

// SnapshotVersion reports the quorum-agreed entity version (0 before
// the first successful health sweep). serve namespaces answer-cache
// keys by it, so flipping it on rollout makes every pre-rollout entry
// unreachable at once.
func (rt *Router) SnapshotVersion() uint64 { return rt.version.Load() }

// NumShards reports the topology width — one "shard" per remote node.
func (rt *Router) NumShards() int { return len(rt.remotes) }

// Metrics returns the registry the router's counters live on.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// ShardStats adapts the per-remote counters to the serve stats shape:
// each remote appears as one shard with its hosted range (as of the
// last health check), scan/timeout/error/hedge counters and breaker
// snapshot.
func (rt *Router) ShardStats() []shard.ShardStats {
	out := make([]shard.ShardStats, len(rt.remotes))
	for i, st := range rt.stats {
		lo, hi, _, _ := st.health()
		out[i] = shard.ShardStats{
			Shard:        i,
			Lo:           lo,
			Hi:           hi,
			Scans:        st.scans.Value(),
			Skips:        st.timeouts.Value(),
			Errors:       st.errors.Value(),
			BreakerSkips: st.breakerSkips.Value(),
			Hedges:       st.hedges.Value(),
			HedgeWins:    st.hedgeWins.Value(),
			LastScanMs:   st.lastMs.Value(),
			MeanScanMs:   st.scanMs.Mean(),
			MaxScanMs:    st.maxMs.Value(),
		}
		if rt.breakers != nil {
			bs := rt.breakers[i].Stats()
			out[i].Breaker = &bs
		}
	}
	return out
}

// Close waits for every in-flight remote scan — scatter and hedge — to
// drain. Rankings issued after Close begins are refused with
// shard.ErrClosed. Idempotent.
func (rt *Router) Close() {
	rt.closeMu.Lock()
	rt.closed = true
	rt.closeMu.Unlock()
	rt.scanWG.Wait()
}

// remoteLocal is one node's contribution to a gather — the cluster
// analogue of the engine's per-shard localTopK, with the same
// skipped/failed/tripped outcome classification feeding the breakers.
type remoteLocal struct {
	ids     []kg.EntityID
	d       []float64
	version uint64
	partial bool // node answered but degraded (local sub-shard skipped)
	skipped bool
	failed  bool // remote-local fault: deadline, transport error, non-2xx
	tripped bool // refused up front by an open breaker; no outcome
}

// gatherBound is the router's shared pruning bound: the smallest k-th
// best distance any node has returned so far this query. Requests ship
// its current value so late scans (hedges, stragglers under retry)
// prune server-side.
type gatherBound struct{ bits atomic.Uint64 }

func (b *gatherBound) init()         { b.bits.Store(math.Float64bits(math.Inf(1))) }
func (b *gatherBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// wire returns the bound in wire form: 0 when no node has answered yet.
func (b *gatherBound) wire() float64 {
	v := b.load()
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

func (b *gatherBound) update(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// RankTopK embeds the query, scatters the wire arcs to every healthy
// remote, and merges the local top-K lists into the global k best —
// the serve.Ranker entry point. A node that misses its deadline, fails,
// or sits behind an open breaker is skipped and the result degrades to
// Partial with the surviving nodes' answers; only when every node is
// lost does the gather fail (shard.ErrAllShardsSkipped).
func (rt *Router) RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	specs := rt.cfg.Embed(n)
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: query embedded to no arcs")
	}

	var gb gatherBound
	gb.init()
	tr := obs.FromContext(ctx)
	locals := make([]remoteLocal, len(rt.remotes))
	scatterStart := time.Now()
	var wg sync.WaitGroup
	rt.closeMu.RLock()
	if rt.closed {
		rt.closeMu.RUnlock()
		return nil, shard.ErrClosed
	}
	for i := range rt.remotes {
		if rt.breakers != nil && !rt.breakers[i].Allow() {
			locals[i].skipped = true
			locals[i].tripped = true
			rt.stats[i].breakerSkips.Inc()
			continue
		}
		wg.Add(1)
		rt.scanWG.Add(1)
		go func(i int) {
			defer rt.scanWG.Done()
			defer wg.Done()
			rt.runRemote(ctx, i, specs, k, &gb, &locals[i])
		}(i)
	}
	rt.closeMu.RUnlock()
	wg.Wait()
	tr.Observe(obs.StageShardScatter, time.Since(scatterStart))
	if err := ctx.Err(); err != nil {
		// The whole query died; remote outcomes under a dead parent
		// carry no signal, but admitted half-open probes must be
		// released (see shard.Engine.run).
		if rt.breakers != nil {
			for i := range locals {
				if !locals[i].tripped {
					rt.breakers[i].Cancel()
				}
			}
		}
		return nil, err
	}
	if rt.breakers != nil {
		for i := range locals {
			switch {
			case locals[i].tripped:
				// Never called; no outcome.
			case locals[i].failed:
				rt.breakers[i].Failure()
			case !locals[i].skipped:
				rt.breakers[i].Success()
			default:
				rt.breakers[i].Cancel()
			}
		}
	}
	mergeStart := time.Now()
	res, err := rt.merge(locals, k)
	tr.Observe(obs.StageHeapMerge, time.Since(mergeStart))
	return res, err
}

// runRemote runs one node's scan, optionally racing a hedge after the
// node's hedge delay — the remote mirror of shard.Engine.runShard. The
// per-remote deadline is applied once here and shared by primary and
// hedge, so a wedged node bounds the gather at ~ScanTimeout.
func (rt *Router) runRemote(ctx context.Context, i int, specs []ArcSpec, k int, gb *gatherBound, out *remoteLocal) {
	sctx := ctx
	var cancel context.CancelFunc
	if rt.cfg.ScanTimeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, rt.cfg.ScanTimeout)
	} else {
		sctx, cancel = context.WithCancel(ctx)
	}
	defer cancel() // the losing scan is abandoned, not awaited
	if rt.cfg.HedgeDelay <= 0 {
		rt.scanRemote(sctx, ctx, i, specs, k, gb, out)
		return
	}

	type scanDone struct {
		local remoteLocal
		hedge bool
	}
	results := make(chan scanDone, 2)
	launch := func(hedge bool) {
		rt.scanWG.Add(1)
		go func() {
			defer rt.scanWG.Done()
			var l remoteLocal
			rt.scanRemote(sctx, ctx, i, specs, k, gb, &l)
			results <- scanDone{local: l, hedge: hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(rt.hedgeDelayFor(i))
	defer timer.Stop()
	select {
	case r := <-results:
		*out = r.local
		return
	case <-timer.C:
		rt.stats[i].hedges.Inc()
		launch(true)
	}
	first := <-results
	if !first.local.skipped {
		*out = first.local
		if first.hedge {
			rt.stats[i].hedgeWins.Inc()
		}
		return
	}
	second := <-results
	if !second.local.skipped {
		*out = second.local
		if second.hedge {
			rt.stats[i].hedgeWins.Inc()
		}
		return
	}
	out.skipped = true
	out.failed = first.local.failed || second.local.failed
}

// hedgeDelayFor derives remote i's hedge delay: the configured floor
// raised to the node's observed p99 scan latency, capped at the scan
// timeout.
func (rt *Router) hedgeDelayFor(i int) time.Duration {
	d := rt.cfg.HedgeDelay
	if p99 := rt.stats[i].scanMs.Quantile(0.99); p99 > 0 {
		if observed := time.Duration(p99 * float64(time.Millisecond)); observed > d {
			d = observed
		}
	}
	if rt.cfg.ScanTimeout > 0 && d > rt.cfg.ScanTimeout {
		d = rt.cfg.ScanTimeout
	}
	return d
}

// scanRemote issues one scan request under sctx (the remote-scoped
// context carrying the per-remote deadline) and classifies the outcome;
// qctx is the whole query's context, consulted to tell "this remote is
// slow" (remote-local fault) from "the query died" (no outcome) and
// "a hedge race was lost" (no outcome).
func (rt *Router) scanRemote(sctx, qctx context.Context, i int, specs []ArcSpec, k int, gb *gatherBound, out *remoteLocal) {
	req := &ScanRequest{Arcs: specs, K: k, Bound: gb.wire()}
	if dl, ok := sctx.Deadline(); ok {
		if ms := int(time.Until(dl) / time.Millisecond); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	start := time.Now()
	resp, err := rt.remotes[i].Scan(sctx, req)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		out.skipped = true
		switch {
		case qctx.Err() != nil:
			// The whole query died; no remote is at fault.
		case errors.Is(err, context.DeadlineExceeded):
			out.failed = true
			rt.stats[i].timeouts.Inc()
		case errors.Is(err, context.Canceled):
			// Lost hedge race; the result is discarded, not blamed.
		default:
			out.failed = true
			rt.stats[i].errors.Inc()
		}
		return
	}
	out.ids, out.d = resp.IDs, resp.Dists
	out.version = resp.Version
	out.partial = resp.Partial
	if len(resp.Dists) == k && !resp.Partial {
		// A full non-degraded local list: its k-th best upper-bounds the
		// global k-th best, so later scans (hedges) can prune against it.
		gb.update(resp.Dists[k-1])
	}
	rt.stats[i].record(elapsed)
}

// merge folds the nodes' sorted local lists into the global top k with
// the engine's (distance, ID) ordering. The result is Partial when any
// node was skipped, any node answered degraded, or the answering nodes
// disagree on their snapshot version (mid-rollout skew: the merged list
// mixes two embedding tables, so it must not be cached).
func (rt *Router) merge(locals []remoteLocal, k int) (*shard.Result, error) {
	res := &shard.Result{Version: rt.version.Load()}
	total := 0
	skew := false
	var ver uint64
	verSet := false
	for i := range locals {
		if locals[i].skipped {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		res.Answered = append(res.Answered, i)
		total += len(locals[i].d)
		if locals[i].partial {
			res.Partial = true
		}
		if !verSet {
			ver, verSet = locals[i].version, true
		} else if locals[i].version != ver {
			skew = true
		}
	}
	if len(res.Answered) == 0 {
		return nil, shard.ErrAllShardsSkipped
	}
	if len(res.Skipped) > 0 || skew {
		res.Partial = true
	}

	if k > total {
		k = total
	}
	res.IDs = make([]kg.EntityID, 0, k)
	res.Dists = make([]float64, 0, k)
	heads := make([]int, len(locals))
	for len(res.IDs) < k {
		best := -1
		for _, i := range res.Answered {
			h := heads[i]
			if h >= len(locals[i].d) {
				continue
			}
			if best < 0 || locals[i].d[h] < locals[best].d[heads[best]] ||
				(locals[i].d[h] == locals[best].d[heads[best]] && locals[i].ids[h] < locals[best].ids[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		res.IDs = append(res.IDs, locals[best].ids[heads[best]])
		res.Dists = append(res.Dists, locals[best].d[heads[best]])
		heads[best]++
	}
	return res, nil
}
