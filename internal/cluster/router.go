package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
)

// Config assembles a Router.
type Config struct {
	// Remotes are the node addresses ("host:port" or URLs), one per
	// hosted entity range — the pre-replica 1-replica form, kept for
	// back compatibility. Exactly one of Remotes and Ranges is required.
	Remotes []string
	// Ranges is the replica topology: Ranges[i] lists entity range i's
	// replica endpoints. Every replica of a range must host the same
	// [lo, hi) entity slice of the same checkpoint lineage; the router
	// picks a primary per range, fails over across the set, and only
	// degrades the answer to partial when the whole set is exhausted.
	Ranges [][]string
	// Embed turns a query DAG into wire arcs; halk-serve wires the
	// model's EmbedQueryLocked. Required.
	Embed func(n *query.Node) []ArcSpec
	// ScanTimeout bounds each scan attempt; an attempt that misses it
	// fails over to the range's next replica within the query's
	// remaining budget — the cluster analogue of
	// shard.Options.ShardTimeout. 0 means attempts are bounded only by
	// the query context.
	ScanTimeout time.Duration
	// HedgeDelay enables hedged scans: when a range's primary has not
	// answered after max(HedgeDelay, its observed p99 scan latency) —
	// capped at ScanTimeout — a second identical request is issued to
	// the range's *next replica* (a different process, so a wedged node
	// cannot wedge its own hedge) and the first success wins. Replica
	// snapshots are version-pinned, so either answer is byte-identical.
	// 0 disables hedging.
	HedgeDelay time.Duration
	// Breaker, when non-nil, guards each replica with a circuit breaker
	// built from this config: replicas that keep failing are skipped up
	// front (immediate failover to a sibling) until a half-open probe
	// succeeds.
	Breaker *resil.BreakerConfig
	// Quorum is how many *ranges* must be ready on a new entity version
	// — a range is ready when at least one live replica serves it —
	// before the router flips its served version — and with it the
	// answer cache's key namespace — during a checkpoint rollout. 0
	// means a majority (len(ranges)/2 + 1).
	Quorum int
	// HealthEvery is the Start loop's health-poll period; 0 means 2s.
	HealthEvery time.Duration
	// Metrics is the registry the per-replica counters register on; nil
	// means a private one.
	Metrics *obs.Registry
	// Client is the shared HTTP client; nil means NewHTTPClient().
	Client *http.Client
	// Seed drives the power-of-two-choices sampling; 0 means
	// time-seeded. Fix it in tests that need a reproducible pick order.
	Seed int64
	// Probe, when set, embeds the known probe query the identity probe
	// scans against a joining/blamed replica and a current active
	// replica (halk-serve wires a deterministically sampled query).
	// When unset the probe falls back to the last gather's arcs; with
	// neither available, probes admit on health alone.
	Probe func() []ArcSpec
	// ProbeK is the probe scan's K; 0 means 8.
	ProbeK int
	// ProbeBase/ProbeMax bound the prober's full-jitter backoff between
	// probe attempts; 0 means 250ms / 5s.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// Logf receives membership events (joins, leaves, probe failures,
	// re-admissions); nil is silent. halk-serve wires log.Printf.
	Logf func(format string, args ...any)
}

// replica is one endpoint of a range's replica set: the remote client,
// its circuit breaker (nil when breakers are off), its counters and
// its membership state.
type replica struct {
	addr    string
	remote  *RemoteShard
	breaker *resil.Breaker
	st      *replicaStat

	// state is the replica's ReplicaState (see membership.go): plan
	// reads it per gather, the health sweep and the prober transition
	// it.
	state atomic.Int32
	// probing is true while the replica's background prober goroutine
	// runs; ensureProber CASes it so at most one runs per replica.
	probing atomic.Bool
}

// rangeSet is one entity range's replica set plus the range-level
// routing state: the sticky primary pick and the failover/flip
// counters. The replica slice itself is a copy-on-write snapshot
// (membership.go) so gathers iterate it lock-free while joins and
// leaves swap it.
type rangeSet struct {
	index int
	reps  atomic.Pointer[[]*replica]
	// primary is the replica the last gather picked (nil before the
	// first pick); flips counts changes after the first.
	primary   atomic.Pointer[replica]
	failovers *obs.Counter
	flips     *obs.Counter
}

// lohi returns the range's hosted slice as of the last health check
// that reached any replica.
func (rs *rangeSet) lohi() (lo, hi int) {
	for _, rep := range rs.list() {
		l, h, _, healthy := rep.st.health()
		if healthy || h > l {
			return l, h
		}
	}
	return 0, 0
}

// Router scatter-gathers ranking queries across the entity ranges of a
// replicated topology and merges their local top-K lists into the
// global answer. It implements serve.Ranker, so halk-serve's caching,
// admission control, partial semantics and stats surfaces apply to a
// topology of remote nodes exactly as they apply to an in-process
// engine.
//
// Each range is served by a replica set: the router picks a primary
// per gather (power-of-two-choices on EWMA scan latency among
// version-consistent replicas), hedges to a different replica, fails
// over across the set on error/timeout/open breaker within the query's
// remaining budget, and only marks the answer partial when every
// replica of a range is exhausted — one dead node per range costs a
// failover, not answer completeness.
//
// All methods are safe for concurrent use.
type Router struct {
	cfg    Config
	ranges []*rangeSet
	reg    *obs.Registry
	hc     *http.Client

	// rng drives power-of-two-choices primary sampling.
	rngMu sync.Mutex
	rng   *rand.Rand

	// topoMu serialises membership changes (Join/Leave/SetTopology);
	// topoVersion bumps on each. Gathers never take topoMu — they read
	// copy-on-write replica snapshots.
	topoMu      sync.Mutex
	topoVersion atomic.Uint64

	// probeCtx bounds every background prober; Close cancels it before
	// awaiting scanWG so probers mid-backoff exit immediately.
	probeCtx    context.Context
	probeCancel context.CancelFunc

	// lastSpecs is the most recent gather's embedded arcs — the
	// identity probe's fallback probe query when Config.Probe is unset.
	lastSpecs atomic.Pointer[[]ArcSpec]

	// version is the quorum-agreed entity version — what SnapshotVersion
	// reports, what gathers pin replica selection to, and what the serve
	// cache namespaces keys by. It only moves forward, and only once
	// Quorum ranges have a live replica on the new version (see
	// CheckHealth), so a half-rolled-out checkpoint never flips the
	// cache back and forth.
	version atomic.Uint64

	// scanWG tracks every remote-scan goroutine — range gathers,
	// attempts, hedges — so Close can await stragglers; closeMu
	// serialises new gathers against Close (see shard.Engine for the
	// pattern).
	scanWG  sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool
}

// NewRouter validates cfg and builds the router. It performs no I/O:
// call Start (or CheckHealth) to populate replica health and the served
// version.
func NewRouter(cfg Config) (*Router, error) {
	ranges := cfg.Ranges
	if len(cfg.Remotes) > 0 {
		if len(ranges) > 0 {
			return nil, fmt.Errorf("cluster: Config.Remotes and Config.Ranges are mutually exclusive")
		}
		ranges = make([][]string, len(cfg.Remotes))
		for i, addr := range cfg.Remotes {
			ranges[i] = []string{addr}
		}
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("cluster: a topology (Config.Remotes or Config.Ranges) is required")
	}
	for i, reps := range ranges {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: range %d has no replicas", i)
		}
	}
	if cfg.Embed == nil {
		return nil, fmt.Errorf("cluster: Config.Embed is required")
	}
	if cfg.Quorum < 0 || cfg.Quorum > len(ranges) {
		return nil, fmt.Errorf("cluster: Quorum %d out of range for %d ranges", cfg.Quorum, len(ranges))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	hc := cfg.Client
	if hc == nil {
		hc = NewHTTPClient()
	}
	rt := &Router{
		cfg: cfg,
		reg: cfg.Metrics,
		hc:  hc,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	rt.probeCtx, rt.probeCancel = context.WithCancel(context.Background())
	rt.topoVersion.Store(1)
	rt.ranges = make([]*rangeSet, len(ranges))
	for i, reps := range ranges {
		rl := obs.L("range", strconv.Itoa(i))
		rs := &rangeSet{
			index:     i,
			failovers: cfg.Metrics.Counter("halk_replica_failovers_total", "Scan attempts re-issued to a sibling replica after a failure.", rl),
			flips:     cfg.Metrics.Counter("halk_replica_primary_flips_total", "Times the range's preferred primary replica changed.", rl),
		}
		set := make([]*replica, 0, len(reps))
		for _, addr := range reps {
			// Boot-time replicas start Active: the operator vouched for
			// the static topology, and a restarted router must serve
			// immediately. Replicas added later enter through probation.
			set = append(set, rt.newReplica(i, addr, StateActive))
		}
		rs.reps.Store(&set)
		rt.ranges[i] = rs
	}
	return rt, nil
}

// newReplica builds one replica handle with its stats and breaker;
// metric families dedupe by label, so an address that leaves and later
// rejoins continues its counter series.
func (rt *Router) newReplica(ri int, addr string, state ReplicaState) *replica {
	rl := obs.L("range", strconv.Itoa(ri))
	rep := &replica{
		addr:   addr,
		remote: NewRemoteShard(addr, rt.hc),
		st:     newReplicaStat(rt.reg, ri, addr),
	}
	rep.setState(state)
	if rt.cfg.Breaker != nil {
		b := resil.NewBreaker(*rt.cfg.Breaker)
		rep.breaker = b
		rt.reg.GaugeFunc("halk_replica_breaker_state",
			"Circuit breaker state per replica (0=closed, 1=open, 2=half-open).",
			func() float64 { return float64(b.State()) },
			obs.L("node", addr), rl)
	}
	return rep
}

// Topology reports the current replica topology: element i is range
// i's replica addresses (including probation/draining members).
func (rt *Router) Topology() [][]string {
	out := make([][]string, len(rt.ranges))
	for i, rs := range rt.ranges {
		for _, rep := range rs.list() {
			out[i] = append(out[i], rep.addr)
		}
	}
	return out
}

// quorum resolves the configured quorum (0 = majority of ranges).
func (rt *Router) quorum() int {
	if rt.cfg.Quorum > 0 {
		return rt.cfg.Quorum
	}
	return len(rt.ranges)/2 + 1
}

// Start launches the health loop: an immediate sweep, then one every
// HealthEvery until ctx dies. The loop keeps per-replica liveness,
// ranges and versions fresh, and flips the served version when a quorum
// of ranges has a replica on a newer one (the coordinated
// checkpoint-rollout seam).
func (rt *Router) Start(ctx context.Context) {
	every := rt.cfg.HealthEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	go func() {
		sweep := func() {
			hctx, cancel := context.WithTimeout(ctx, every)
			rt.CheckHealth(hctx)
			cancel()
		}
		sweep()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			sweep()
		}
	}()
}

// CheckHealth probes every replica's /v1/healthz concurrently, records
// per-replica liveness/range/version, advances the quorum version, and
// reports how many replicas answered. Called by the Start loop; also
// useful synchronously (process startup, tests).
//
// The rollout rule is computed over ranges, not nodes: a range is ready
// on version v when at least one of its live replicas reports v or
// newer, and the served version advances to the highest v at least
// Quorum ranges are ready on. With gathers pinned to replicas matching
// the served version, a staggered rollout that keeps one replica per
// range on each version serves whole answers throughout.
func (rt *Router) CheckHealth(ctx context.Context) int {
	var wg sync.WaitGroup
	var up atomic.Int64
	for _, rs := range rt.ranges {
		for _, rep := range rs.list() {
			wg.Add(1)
			go func(rs *rangeSet, rep *replica) {
				defer wg.Done()
				h, err := rep.remote.Health(ctx)
				switch {
				case err != nil:
					rep.st.setHealth(nil, false)
					// A draining replica that stops answering has exited:
					// park it Down so a restarted process on the same
					// address re-enters through probation, not straight
					// into the pool with whatever state it booted with.
					rep.casState(StateDraining, StateDown)
				case h.Status == HealthDraining:
					// Still answering (correctly — that is the point of
					// coordinated drain) but leaving: record its health so
					// last-resort failover stays possible, stop preferring
					// it, stop probing it.
					rep.st.setHealth(h, true)
					rep.casState(StateActive, StateDraining)
					rep.casState(StateProbation, StateDraining)
					up.Add(1)
				default:
					rep.st.setHealth(h, true)
					up.Add(1)
					// A drained/dead replica answering "ok" again is a
					// restarted process: it must re-earn the pool through
					// the identity probe. Probation replicas get their
					// prober (re-)armed here too, so a prober that exited
					// (router of a crashed probe loop) self-heals.
					rep.casState(StateDraining, StateProbation)
					rep.casState(StateDown, StateProbation)
					if rep.getState() == StateProbation {
						rt.ensureProber(rs, rep)
					}
				}
			}(rs, rep)
		}
	}
	wg.Wait()

	// Quorum flip: the highest version at least Quorum ranges have a
	// live replica on. rangeMax[i] is range i's best live version;
	// readiness on v is monotone in v, so scanning candidate versions
	// descending finds the flip target.
	// Only serveable replicas vouch for a version: probation members
	// are unverified (that is what probation means) and down members
	// are gone; counting either could flip the cache namespace to a
	// version no gather can actually be served from.
	rangeMax := make([]uint64, 0, len(rt.ranges))
	var candidates []uint64
	for _, rs := range rt.ranges {
		var best uint64
		for _, rep := range rs.list() {
			if s := rep.getState(); s != StateActive && s != StateDraining {
				continue
			}
			_, _, v, healthy := rep.st.health()
			if healthy {
				if v > best {
					best = v
				}
				candidates = append(candidates, v)
			}
		}
		rangeMax = append(rangeMax, best)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	q := rt.quorum()
	for _, cand := range candidates {
		ready := 0
		for _, best := range rangeMax {
			if best >= cand {
				ready++
			}
		}
		if ready < q {
			continue
		}
		for {
			cur := rt.version.Load()
			if cand <= cur || rt.version.CompareAndSwap(cur, cand) {
				break
			}
		}
		break
	}
	return int(up.Load())
}

// SnapshotVersion reports the quorum-agreed entity version (0 before
// the first successful health sweep). serve namespaces answer-cache
// keys by it, so flipping it on rollout makes every pre-rollout entry
// unreachable at once; gathers pin replica selection to it, so a
// mid-rollout topology keeps answering whole from the replicas still
// (or already) on the served version.
func (rt *Router) SnapshotVersion() uint64 { return rt.version.Load() }

// NumShards reports the topology width — one "shard" per entity range.
func (rt *Router) NumShards() int { return len(rt.ranges) }

// NumReplicas reports range ri's current replica-set size.
func (rt *Router) NumReplicas(ri int) int { return len(rt.ranges[ri].list()) }

// Metrics returns the registry the router's counters live on.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// ShardStats adapts the topology to the serve stats shape: each range
// appears as one shard with its hosted slice and the replica set's
// summed outcome counters; the breaker snapshot is the current
// primary's. Per-replica detail lives on ReplicaStats.
func (rt *Router) ShardStats() []shard.ShardStats {
	out := make([]shard.ShardStats, len(rt.ranges))
	for i, rs := range rt.ranges {
		reps := rs.list()
		lo, hi := rs.lohi()
		s := shard.ShardStats{Shard: i, Lo: lo, Hi: hi}
		var meanSum float64
		for _, rep := range reps {
			s.Scans += rep.st.scans.Value()
			s.Skips += rep.st.timeouts.Value()
			s.Errors += rep.st.errors.Value()
			s.BreakerSkips += rep.st.breakerSkips.Value()
			s.Hedges += rep.st.hedges.Value()
			s.HedgeWins += rep.st.hedgeWins.Value()
			if ms := rep.st.lastMs.Value(); ms > s.LastScanMs {
				s.LastScanMs = ms
			}
			if ms := rep.st.maxMs.Value(); ms > s.MaxScanMs {
				s.MaxScanMs = ms
			}
			meanSum += rep.st.scanMs.Mean()
		}
		if len(reps) > 0 {
			s.MeanScanMs = meanSum / float64(len(reps))
		}
		if p := rs.primary.Load(); p != nil && p.breaker != nil {
			bs := p.breaker.Stats()
			s.Breaker = &bs
		} else if len(reps) > 0 && reps[0].breaker != nil {
			bs := reps[0].breaker.Stats()
			s.Breaker = &bs
		}
		out[i] = s
	}
	return out
}

// ReplicaStats reports the replica topology for /v1/stats: per range,
// the hosted slice, current primary, failover/flip counters and every
// replica's health, version, outcome counters and latency EWMA.
func (rt *Router) ReplicaStats() []serve.RangeReplicaStats {
	out := make([]serve.RangeReplicaStats, len(rt.ranges))
	for i, rs := range rt.ranges {
		reps := rs.list()
		lo, hi := rs.lohi()
		rr := serve.RangeReplicaStats{
			Range:        i,
			Lo:           lo,
			Hi:           hi,
			Failovers:    rs.failovers.Value(),
			PrimaryFlips: rs.flips.Value(),
		}
		p := rs.primary.Load()
		if p == nil && len(reps) > 0 {
			p = reps[0]
		}
		if p != nil {
			rr.Primary = p.addr
		}
		for _, rep := range reps {
			_, _, version, healthy := rep.st.health()
			snap := serve.ReplicaSnapshot{
				Node:          rep.addr,
				Healthy:       healthy,
				State:         rep.getState().String(),
				EntityVersion: version,
				Primary:       rep == p,
				Scans:         rep.st.scans.Value(),
				Timeouts:      rep.st.timeouts.Value(),
				Errors:        rep.st.errors.Value(),
				BreakerSkips:  rep.st.breakerSkips.Value(),
				Hedges:        rep.st.hedges.Value(),
				HedgeWins:     rep.st.hedgeWins.Value(),
				EwmaMs:        rep.st.ewmaMs(),
				QueueDepth:    rep.st.depth.Load(),
				Probes:        rep.st.probes.Value(),
				Admissions:    rep.st.admissions.Value(),
			}
			if rep.breaker != nil {
				bs := rep.breaker.Stats()
				snap.Breaker = &bs
			}
			rr.Replicas = append(rr.Replicas, snap)
		}
		out[i] = rr
	}
	return out
}

// Close waits for every in-flight remote scan — gathers, attempts,
// hedges, membership probers — to drain, then drops the client's idle
// connections. Rankings issued after Close begins are refused with
// shard.ErrClosed. Idempotent.
func (rt *Router) Close() {
	rt.closeMu.Lock()
	rt.closed = true
	rt.closeMu.Unlock()
	rt.probeCancel()
	rt.scanWG.Wait()
	rt.hc.CloseIdleConnections()
}

// remoteLocal is one range's contribution to a gather — the cluster
// analogue of the engine's per-shard localTopK.
type remoteLocal struct {
	ids     []kg.EntityID
	d       []float64
	version uint64
	partial bool // replica answered but degraded (local sub-shard skipped)
	skipped bool // the whole replica set was exhausted
	failed  bool // at least one replica-local fault contributed
}

// gatherBound is the router's shared pruning bound: the smallest k-th
// best distance any range has returned so far this query. Requests ship
// its current value so late scans (hedges, failover attempts) prune
// server-side.
type gatherBound struct{ bits atomic.Uint64 }

func (b *gatherBound) init()         { b.bits.Store(math.Float64bits(math.Inf(1))) }
func (b *gatherBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// wire returns the bound in wire form: 0 when no range has answered yet.
func (b *gatherBound) wire() float64 {
	v := b.load()
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

func (b *gatherBound) update(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// RankTopK embeds the query, scatters the wire arcs to every range's
// replica set, and merges the local top-K lists into the global k best
// — the serve.Ranker entry point. Within a range, failures fail over
// across the replica set; the result degrades to Partial only when a
// whole set is exhausted, and the gather fails
// (shard.ErrAllShardsSkipped) only when every range is lost.
func (rt *Router) RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	specs := rt.cfg.Embed(n)
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: query embedded to no arcs")
	}
	// Remember the arcs: the identity probe falls back to replaying the
	// last real query when no probe query is configured.
	rt.lastSpecs.Store(&specs)

	var gb gatherBound
	gb.init()
	tr := obs.FromContext(ctx)
	locals := make([]remoteLocal, len(rt.ranges))
	scatterStart := time.Now()
	var wg sync.WaitGroup
	rt.closeMu.RLock()
	if rt.closed {
		rt.closeMu.RUnlock()
		return nil, shard.ErrClosed
	}
	for i := range rt.ranges {
		wg.Add(1)
		rt.scanWG.Add(1)
		go func(i int) {
			defer rt.scanWG.Done()
			defer wg.Done()
			rt.runRange(ctx, rt.ranges[i], specs, k, &gb, &locals[i])
		}(i)
	}
	rt.closeMu.RUnlock()
	wg.Wait()
	tr.Observe(obs.StageShardScatter, time.Since(scatterStart))
	if err := ctx.Err(); err != nil {
		// The whole query died; per-attempt breaker accounting already
		// classifies outcomes under a dead parent as no-blame.
		return nil, err
	}
	mergeStart := time.Now()
	res, err := rt.merge(locals, k)
	tr.Observe(obs.StageHeapMerge, time.Since(mergeStart))
	return res, err
}

// plan orders range rs's replicas for one gather. Replicas fall into
// tiers by membership state and version pinning:
//
//	tier 0  active, last-known entity version matches the served one
//	tier 1  active, version lagging/leading (the merge's skew guard
//	        flags a mixed answer, and it is never cached)
//	tier 2  draining — still correct, used only when every active
//	        replica is exhausted (the coordinated-drain contract:
//	        prefer not to, rather than degrade the answer to partial)
//	tier 3  down — a drained process that exited; attempted dead last
//	        in case the health view is stale
//	(excluded)  probation — never serves a gather until its identity
//	            probe passes
//
// The primary is power-of-two-choices over the best populated tier,
// comparing queue-depth-weighted latency (replicaStat.score: EWMA ×
// (1 + reported queue depth)); the rest follow ascending by
// (tier, score). Failover and hedging walk this order. nil when every
// replica is in probation — the range is skipped outright.
func (rt *Router) plan(rs *rangeSet) []*replica {
	reps := rs.list()
	pinned := rt.version.Load()
	match := func(rep *replica) bool {
		return pinned == 0 || rep.st.version.Load() == pinned
	}
	tierOf := func(rep *replica) int {
		switch rep.getState() {
		case StateActive:
			if match(rep) {
				return 0
			}
			return 1
		case StateDraining:
			return 2
		case StateDown:
			return 3
		default: // StateProbation
			return -1
		}
	}
	serveable := make([]*replica, 0, len(reps))
	tiers := make(map[*replica]int, len(reps))
	best := 4
	for _, rep := range reps {
		t := tierOf(rep)
		if t < 0 {
			continue
		}
		serveable = append(serveable, rep)
		tiers[rep] = t
		if t < best {
			best = t
		}
	}
	if len(serveable) == 0 {
		return nil
	}
	if len(serveable) == 1 {
		return serveable
	}
	pool := make([]*replica, 0, len(serveable))
	for _, rep := range serveable {
		if tiers[rep] == best {
			pool = append(pool, rep)
		}
	}
	primary := pool[0]
	if len(pool) > 1 {
		rt.rngMu.Lock()
		i := rt.rng.Intn(len(pool))
		j := rt.rng.Intn(len(pool) - 1)
		rt.rngMu.Unlock()
		if j >= i {
			j++
		}
		primary = pool[i]
		if pool[j].st.score() < primary.st.score() {
			primary = pool[j]
		}
	}
	if old := rs.primary.Swap(primary); old != nil && old != primary {
		rs.flips.Inc()
	}
	order := make([]*replica, 0, len(serveable))
	order = append(order, primary)
	rest := make([]*replica, 0, len(serveable)-1)
	for _, rep := range serveable {
		if rep != primary {
			rest = append(rest, rep)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		if ta, tb := tiers[rest[a]], tiers[rest[b]]; ta != tb {
			return ta < tb
		}
		ea, eb := rest[a].st.score(), rest[b].st.score()
		if ea != eb {
			return ea < eb
		}
		return rest[a].addr < rest[b].addr
	})
	return append(order, rest...)
}

// attemptResult is one replica attempt's outcome inside a range gather.
type attemptResult struct {
	local remoteLocal
	rep   *replica
	hedge bool
}

// runRange gathers one range's local top-K from its replica set: the
// planned primary scans first; a failure fails over to the next
// replica in plan order (within the query's remaining budget), an
// unanswered primary is hedged to the next replica after the hedge
// delay — a single-replica range hedges back to its only node, the
// pre-replica behavior — and the first successful attempt wins. The
// range is skipped — degrading the merged answer to partial — only
// when every replica is exhausted. Each attempt runs under its own
// ScanTimeout-derived deadline; losing attempts are abandoned
// (cancelled), not awaited.
func (rt *Router) runRange(ctx context.Context, rs *rangeSet, specs []ArcSpec, k int, gb *gatherBound, out *remoteLocal) {
	order := rt.plan(rs)
	if len(order) == 0 {
		// Every replica is in probation (e.g. a cluster-file swap
		// replaced the whole set at once): nothing may serve yet.
		out.skipped = true
		return
	}
	// +1: a single-replica range's hedge re-targets its only node, so
	// attempts can exceed len(order); every attempt must be able to
	// deliver without blocking after runRange returns.
	results := make(chan attemptResult, len(order)+1)
	next := 0
	inflight := 0
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// spawn starts one attempt against rep if its breaker admits it.
	spawn := func(rep *replica, hedge bool) bool {
		if rep.breaker != nil && !rep.breaker.Allow() {
			rep.st.breakerSkips.Inc()
			return false
		}
		actx := ctx
		var cancel context.CancelFunc
		if rt.cfg.ScanTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, rt.cfg.ScanTimeout)
		} else {
			actx, cancel = context.WithCancel(ctx)
		}
		cancels = append(cancels, cancel)
		inflight++
		rt.scanWG.Add(1)
		go func() {
			defer rt.scanWG.Done()
			var l remoteLocal
			rt.scanReplica(actx, ctx, rep, specs, k, gb, &l)
			rt.settleAttempt(rs, rep, &l, ctx)
			results <- attemptResult{local: l, rep: rep, hedge: hedge}
		}()
		return true
	}

	// launch starts the next breaker-admitted replica in plan order,
	// returning it (nil when the order is exhausted). Attempts refused
	// by an open breaker are skipped and counted, which is itself a
	// failover step: the request goes straight to the next sibling.
	launch := func(hedge bool) *replica {
		for next < len(order) {
			rep := order[next]
			next++
			if spawn(rep, hedge) {
				return rep
			}
		}
		return nil
	}

	first := launch(false)
	if first == nil && inflight == 0 {
		// Every replica sat behind an open breaker: immediate skip.
		out.skipped = true
		return
	}
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeDelay > 0 && first != nil {
		timer := time.NewTimer(rt.hedgeDelayFor(first))
		defer timer.Stop()
		hedgeC = timer.C
	}
	failed := false
	for inflight > 0 {
		select {
		case r := <-results:
			inflight--
			if !r.local.skipped {
				*out = r.local
				if r.hedge {
					r.rep.st.hedgeWins.Inc()
				}
				return
			}
			failed = failed || r.local.failed
			if ctx.Err() != nil {
				out.skipped, out.failed = true, failed
				return
			}
			// Failover: the attempt is lost, the budget lives — walk to
			// the next replica of the set.
			if rep := launch(false); rep != nil {
				rs.failovers.Inc()
			}
		case <-hedgeC:
			hedgeC = nil
			rep := launch(true)
			if rep == nil && len(order) == 1 && spawn(order[0], true) {
				// Single-replica range: no sibling to hedge to, so the
				// hedge re-issues to the same node (PR 6 behavior).
				rep = order[0]
			}
			if rep != nil {
				rep.st.hedges.Inc()
			}
		case <-ctx.Done():
			out.skipped, out.failed = true, failed
			return
		}
	}
	out.skipped, out.failed = true, failed
}

// settleAttempt feeds one attempt's outcome to the replica's breaker
// and the membership machinery: success closes/credits the breaker —
// and reseeds the latency EWMA when that success was the half-open
// probe that closed it, so the stale pre-trip EWMA neither dogpiles
// nor shuns the recovered replica — a replica-local fault counts
// against the breaker AND arms the read-repair prober (re-admission
// off the query path, instead of waiting out the cool-down or the next
// health sweep), and an attempt abandoned without an outcome (the
// query died, or a hedge race was lost) releases any half-open probe
// it was admitted as.
func (rt *Router) settleAttempt(rs *rangeSet, rep *replica, l *remoteLocal, qctx context.Context) {
	switch {
	case !l.skipped:
		if rep.breaker != nil {
			wasTripped := rep.breaker.State() != resil.Closed
			rep.breaker.Success()
			if wasTripped && rep.breaker.State() == resil.Closed {
				rep.st.seedEwma(rs.peerEwmaMean(rep))
			}
		}
	case l.failed && qctx.Err() == nil:
		if rep.breaker != nil {
			rep.breaker.Failure()
		}
		rt.ensureProber(rs, rep)
	default:
		if rep.breaker != nil {
			rep.breaker.Cancel()
		}
	}
}

// hedgeDelayFor derives a replica's hedge delay: the configured floor
// raised to its observed p99 scan latency, capped at the scan timeout.
func (rt *Router) hedgeDelayFor(rep *replica) time.Duration {
	d := rt.cfg.HedgeDelay
	if p99 := rep.st.scanMs.Quantile(0.99); p99 > 0 {
		if observed := time.Duration(p99 * float64(time.Millisecond)); observed > d {
			d = observed
		}
	}
	if rt.cfg.ScanTimeout > 0 && d > rt.cfg.ScanTimeout {
		d = rt.cfg.ScanTimeout
	}
	return d
}

// scanReplica issues one scan attempt under actx (the attempt-scoped
// context carrying the per-attempt deadline) and classifies the
// outcome; qctx is the whole query's context, consulted to tell "this
// replica is slow" (replica-local fault, feeds failover and the
// breaker) from "the query died" and "a hedge race was lost" (no
// outcome, no blame).
func (rt *Router) scanReplica(actx, qctx context.Context, rep *replica, specs []ArcSpec, k int, gb *gatherBound, out *remoteLocal) {
	req := &ScanRequest{Arcs: specs, K: k, Bound: gb.wire()}
	if dl, ok := actx.Deadline(); ok {
		if ms := int(time.Until(dl) / time.Millisecond); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	start := time.Now()
	resp, err := rep.remote.Scan(actx, req)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		out.skipped = true
		switch {
		case qctx.Err() != nil:
			// The whole query died; no replica is at fault.
		case errors.Is(err, context.DeadlineExceeded):
			out.failed = true
			rep.st.timeouts.Inc()
		case errors.Is(err, context.Canceled):
			// Lost a hedge/failover race; the result is discarded, not
			// blamed.
		default:
			out.failed = true
			rep.st.errors.Inc()
		}
		return
	}
	out.ids, out.d = resp.IDs, resp.Dists
	out.version = resp.Version
	out.partial = resp.Partial
	rep.st.setVersion(resp.Version)
	rep.st.setDepth(resp.Queue)
	if len(resp.Dists) == k && !resp.Partial {
		// A full non-degraded local list: its k-th best upper-bounds the
		// global k-th best, so later scans (hedges, failovers) can prune
		// against it.
		gb.update(resp.Dists[k-1])
	}
	rep.st.record(elapsed)
}

// merge folds the ranges' sorted local lists into the global top k with
// the engine's (distance, ID) ordering. The result is Partial when any
// range was skipped (its whole replica set exhausted), any range
// answered degraded, or the answering ranges disagree on their snapshot
// version (mid-rollout skew that pinning could not avoid: the merged
// list would mix two embedding tables, so it must be flagged and never
// cached).
func (rt *Router) merge(locals []remoteLocal, k int) (*shard.Result, error) {
	res := &shard.Result{Version: rt.version.Load()}
	total := 0
	skew := false
	var ver uint64
	verSet := false
	for i := range locals {
		if locals[i].skipped {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		res.Answered = append(res.Answered, i)
		total += len(locals[i].d)
		if locals[i].partial {
			res.Partial = true
		}
		if !verSet {
			ver, verSet = locals[i].version, true
		} else if locals[i].version != ver {
			skew = true
		}
	}
	if len(res.Answered) == 0 {
		return nil, shard.ErrAllShardsSkipped
	}
	if len(res.Skipped) > 0 || skew {
		res.Partial = true
	}

	if k > total {
		k = total
	}
	res.IDs = make([]kg.EntityID, 0, k)
	res.Dists = make([]float64, 0, k)
	heads := make([]int, len(locals))
	for len(res.IDs) < k {
		best := -1
		for _, i := range res.Answered {
			h := heads[i]
			if h >= len(locals[i].d) {
				continue
			}
			if best < 0 || locals[i].d[h] < locals[best].d[heads[best]] ||
				(locals[i].d[h] == locals[best].d[heads[best]] && locals[i].ids[h] < locals[best].ids[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		res.IDs = append(res.IDs, locals[best].ids[heads[best]])
		res.Dists = append(res.Dists, locals[best].d[heads[best]])
		heads[best]++
	}
	return res, nil
}
