package cluster

import (
	"context"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

func testModel(seed int64) (*halk.Model, *kg.Dataset) {
	ds := kg.SynthFB237(seed)
	cfg := halk.DefaultConfig(seed)
	cfg.Dim, cfg.Hidden, cfg.NumGroups = 8, 16, 4
	return halk.New(ds.Train, cfg), ds
}

func embedFn(m *halk.Model) func(n *query.Node) []ArcSpec {
	return func(n *query.Node) []ArcSpec {
		arcs := m.EmbedQueryLocked(n)
		specs := make([]ArcSpec, len(arcs))
		for i, a := range arcs {
			specs[i] = ArcSpec{C: a.C, L: a.L, Hot: a.Hot}
		}
		return specs
	}
}

// testNode is one loopback shard node: a RangeRanker over [lo, hi) of
// its model, fronted by the Node HTTP handler on an httptest listener.
type testNode struct {
	ts     *httptest.Server
	node   *Node
	ranker *halk.RangeRanker
	inj    *resil.Injector
	reg    *obs.Registry
}

func (tn *testNode) addr() string { return tn.ts.URL }

func startNode(t *testing.T, m *halk.Model, ds *kg.Dataset, lo, hi int, mutate func(*NodeConfig)) *testNode {
	t.Helper()
	ranker, err := m.NewRangeRanker(lo, hi, shard.Options{Shards: 1})
	if err != nil {
		t.Fatalf("NewRangeRanker(%d, %d): %v", lo, hi, err)
	}
	inj := resil.NewInjector()
	reg := obs.NewRegistry()
	cfg := NodeConfig{
		Engine:    ranker.Engine(),
		Params:    m.ShardParams(),
		Metrics:   reg,
		ModelName: "FB237",
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Embed:     embedFn(m),
		Faults:    inj,
		PanicLog:  log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	ts := httptest.NewServer(node.Handler())
	tn := &testNode{ts: ts, node: node, ranker: ranker, inj: inj, reg: reg}
	t.Cleanup(func() {
		ts.Close()
		node.Close()
	})
	return tn
}

// startTopology partitions one model's entity table across n loopback
// nodes with the same remainder-first split the in-process engine uses.
func startTopology(t *testing.T, m *halk.Model, ds *kg.Dataset, n int, mutate func(*NodeConfig)) []*testNode {
	t.Helper()
	ents := ds.Train.NumEntities()
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		lo, hi := Partition(ents, n, i)
		nodes[i] = startNode(t, m, ds, lo, hi, mutate)
	}
	return nodes
}

func addrsOf(nodes []*testNode) []string {
	addrs := make([]string, len(nodes))
	for i, tn := range nodes {
		addrs[i] = tn.addr()
	}
	return addrs
}

// rep0 returns range ri's sole replica — legacy tests drive 1-replica
// topologies where startTopology maps one node per range.
func rep0(rt *Router, ri int) *replica { return rt.ranges[ri].list()[0] }

func newTestRouter(t *testing.T, m *halk.Model, nodes []*testNode, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Remotes: addrsOf(nodes),
		Embed:   embedFn(m),
		Metrics: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	rt.CheckHealth(context.Background())
	return rt
}

// TestPartition asserts the node split matches the engine's sub-shard
// split: contiguous, covering, remainder-first.
func TestPartition(t *testing.T) {
	for _, tc := range []struct{ ents, nodes int }{{10, 3}, {9, 3}, {7, 1}, {5, 5}, {100, 7}} {
		prev := 0
		for i := 0; i < tc.nodes; i++ {
			lo, hi := Partition(tc.ents, tc.nodes, i)
			if lo != prev {
				t.Fatalf("Partition(%d,%d,%d): lo = %d, want %d", tc.ents, tc.nodes, i, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("Partition(%d,%d,%d): empty range [%d,%d)", tc.ents, tc.nodes, i, lo, hi)
			}
			prev = hi
		}
		if prev != tc.ents {
			t.Fatalf("Partition(%d,%d): ranges cover %d entities", tc.ents, tc.nodes, prev)
		}
	}
}

// TestLoopbackByteIdentity is the tentpole acceptance test: a 3-node
// loopback topology must return byte-identical top-K lists — IDs and
// bit-exact distances — to a single-process 3-shard engine over the
// same model, across the full benchmark structure matrix. This is what
// makes router mode a deployment choice rather than an accuracy trade:
// raw arcs survive the JSON round-trip exactly, node-side PrepareArc
// reproduces the router-side preparation, and the k-way merge uses the
// same ordering.
func TestLoopbackByteIdentity(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, nil)

	ref, err := m.NewShardedRanker(shard.Options{Shards: 3})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	defer ref.Close()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	const k = 12
	for _, structure := range query.StructureNames() {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		want, err := ref.RankTopK(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s: reference RankTopK: %v", structure, err)
		}
		got, err := rt.RankTopK(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s: router RankTopK: %v", structure, err)
		}
		if got.Partial {
			t.Fatalf("%s: unexpected partial result", structure)
		}
		if len(got.IDs) != len(want.IDs) {
			t.Fatalf("%s: got %d answers, want %d", structure, len(got.IDs), len(want.IDs))
		}
		for i := range want.IDs {
			if got.IDs[i] != want.IDs[i] {
				t.Fatalf("%s: answer %d = %d, want %d", structure, i, got.IDs[i], want.IDs[i])
			}
			if math.Float64bits(got.Dists[i]) != math.Float64bits(want.Dists[i]) {
				t.Fatalf("%s: dist %d = %x, want %x (not byte-identical)",
					structure, i, math.Float64bits(got.Dists[i]), math.Float64bits(want.Dists[i]))
			}
		}
		if got.Version != want.Version {
			t.Fatalf("%s: version %d, want %d", structure, got.Version, want.Version)
		}
	}
}

// TestNodeScanBound asserts shipping a valid global bound — an upper
// bound on the k-th best distance, which is all the router ever ships
// (a sibling's full k-th best) — changes nothing about the answer:
// pruning only skips entities that provably cannot enter the top-K, so
// the bounded scan is byte-identical to the unbounded one.
func TestNodeScanBound(t *testing.T) {
	m, ds := testModel(61)
	tn := startNode(t, m, ds, 0, ds.Train.NumEntities(), nil)
	remote := NewRemoteShard(tn.addr(), nil)

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("2p")
	if !ok {
		t.Fatal("sampling 2p failed")
	}
	specs := embedFn(m)(q)

	full, err := remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 10})
	if err != nil {
		t.Fatalf("unbounded scan: %v", err)
	}
	if len(full.IDs) != 10 {
		t.Fatalf("unbounded scan returned %d answers, want 10", len(full.IDs))
	}
	bounded, err := remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 10, Bound: full.Dists[9]})
	if err != nil {
		t.Fatalf("bounded scan: %v", err)
	}
	if len(bounded.IDs) != len(full.IDs) {
		t.Fatalf("bounded scan returned %d answers, want %d", len(bounded.IDs), len(full.IDs))
	}
	for i := range bounded.IDs {
		if bounded.IDs[i] != full.IDs[i] || math.Float64bits(bounded.Dists[i]) != math.Float64bits(full.Dists[i]) {
			t.Fatalf("bounded scan answer %d = (%d, %x), want (%d, %x)",
				i, bounded.IDs[i], math.Float64bits(bounded.Dists[i]), full.IDs[i], math.Float64bits(full.Dists[i]))
		}
	}
}

// TestNodeHealthz asserts the readiness report carries the hosted range
// and entity version the router's discovery loop depends on.
func TestNodeHealthz(t *testing.T) {
	m, ds := testModel(61)
	ents := ds.Train.NumEntities()
	lo, hi := Partition(ents, 3, 1)
	tn := startNode(t, m, ds, lo, hi, nil)
	h, err := NewRemoteShard(tn.addr(), nil).Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || h.Lo != lo || h.Hi != hi || h.Entities != hi-lo {
		t.Fatalf("Health = %+v, want ok over [%d, %d)", h, lo, hi)
	}
	if h.EntityVersion != m.EntityVersion() {
		t.Fatalf("EntityVersion = %d, want %d", h.EntityVersion, m.EntityVersion())
	}
	if !h.CkptLoaded {
		t.Fatal("CkptLoaded = false for a published snapshot")
	}
}

// TestRouterPartialOnNodeKill asserts the degradation contract: killing
// one node mid-topology yields Partial=true with the surviving nodes'
// answers (every returned ID outside the dead node's range), and the
// dead node's error counter moves.
func TestRouterPartialOnNodeKill(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
	})

	deadLo, deadHi, _, _ := rep0(rt, 1).st.health()
	if deadHi <= deadLo {
		t.Fatal("health sweep did not record node 1's range")
	}
	nodes[1].ts.Close() // connection refused from here on

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("2i")
	if !ok {
		t.Fatal("sampling 2i failed")
	}
	res, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("RankTopK with one node down: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not marked partial with a node down")
	}
	if len(res.Answered) != 2 || len(res.Skipped) != 1 || res.Skipped[0] != 1 {
		t.Fatalf("Answered = %v, Skipped = %v; want nodes 0,2 answering and node 1 skipped", res.Answered, res.Skipped)
	}
	if len(res.IDs) == 0 {
		t.Fatal("no answers from surviving nodes")
	}
	for _, id := range res.IDs {
		if int(id) >= deadLo && int(id) < deadHi {
			t.Fatalf("answer %d falls in the dead node's range [%d, %d)", id, deadLo, deadHi)
		}
	}
	if got := rep0(rt, 1).st.errors.Value(); got == 0 {
		t.Fatal("dead node's error counter did not move")
	}
}

// TestRouterBreakerOpensOnDeadNode asserts repeated failures trip the
// dead node's breaker: later gathers skip it up front (breakerSkips
// moves) and still answer partial from the survivors.
func TestRouterBreakerOpensOnDeadNode(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		c.Breaker = &resil.BreakerConfig{
			Window:            8,
			FailureRate:       0.5,
			ConsecutiveMisses: 2,
			OpenBase:          time.Minute, // stays open for the whole test
			OpenMax:           time.Minute,
			Seed:              1,
		}
	})
	nodes[0].ts.Close()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	for i := 0; i < 4; i++ {
		res, err := rt.RankTopK(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
		if !res.Partial {
			t.Fatalf("gather %d: not partial with node 0 dead", i)
		}
	}
	if rep0(rt, 0).breaker.State() == resil.Closed {
		t.Fatal("node 0's breaker still closed after repeated failures")
	}
	if rep0(rt, 0).st.breakerSkips.Value() == 0 {
		t.Fatal("no breaker skips recorded after the breaker opened")
	}
	if rep0(rt, 1).breaker.State() != resil.Closed || rep0(rt, 2).breaker.State() != resil.Closed {
		t.Fatal("a healthy node's breaker opened")
	}
}

// TestQuorumVersionRollout drives a staggered checkpoint rollout across
// three nodes with identically-seeded models: the router's served
// version must hold at the old version while a minority has reloaded,
// flip once a quorum reports the new version, and mark answers partial
// while the answering nodes disagree (mixed-version lists must never be
// cached).
func TestQuorumVersionRollout(t *testing.T) {
	ms := make([]*halk.Model, 3)
	var ds *kg.Dataset
	for i := range ms {
		ms[i], ds = testModel(61) // same seed: identical synthetic dataset and parameters
	}
	ents := ds.Train.NumEntities()
	nodes := make([]*testNode, 3)
	for i := range nodes {
		lo, hi := Partition(ents, 3, i)
		nodes[i] = startNode(t, ms[i], ds, lo, hi, nil)
	}
	rt := newTestRouter(t, ms[0], nodes, nil)

	v0 := ms[0].EntityVersion()
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("initial served version = %d, want %d", got, v0)
	}

	bump := func(i int) {
		ms[i].MarkEntitiesUpdated()
		if err := nodes[i].ranker.Refresh(); err != nil {
			t.Fatalf("node %d refresh: %v", i, err)
		}
	}

	// Minority rollout: node 0 reloads. Served version must hold.
	bump(0)
	rt.CheckHealth(context.Background())
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("served version flipped at 1/3 nodes: %d, want %d", got, v0)
	}

	// While versions are skewed, merged answers are partial — the
	// rollout analogue of the partial-never-cached invariant.
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	res, err := rt.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("RankTopK mid-rollout: %v", err)
	}
	if !res.Partial {
		t.Fatal("mixed-version answer not marked partial")
	}

	// Quorum: node 1 reloads too (2/3) — the served version flips.
	bump(1)
	rt.CheckHealth(context.Background())
	if got, want := rt.SnapshotVersion(), ms[0].EntityVersion(); got != want {
		t.Fatalf("served version after quorum = %d, want %d", got, want)
	}

	// Rollout completes; answers are whole again.
	bump(2)
	rt.CheckHealth(context.Background())
	res, err = rt.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("RankTopK post-rollout: %v", err)
	}
	if res.Partial {
		t.Fatal("post-rollout answer still partial")
	}
	if res.Version != ms[0].EntityVersion() {
		t.Fatalf("post-rollout result version = %d, want %d", res.Version, ms[0].EntityVersion())
	}
}

// TestRouterClosedRefuses asserts the lifecycle contract: gathers
// issued after Close are refused with shard.ErrClosed, matching the
// engine the serve layer already maps to 503.
func TestRouterClosedRefuses(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 2, nil)
	rt := newTestRouter(t, m, nodes, nil)
	rt.Close()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	if _, err := rt.RankTopK(context.Background(), q, 5); err != shard.ErrClosed {
		t.Fatalf("RankTopK after Close: %v, want shard.ErrClosed", err)
	}
}
