package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

// ReplicaState is a replica's position in the membership state machine:
//
//	probation → active ⇄ (blamed, probed, re-admitted)
//	   ↑           ↓
//	   └── down ← draining
//
// Boot-time replicas start Active (the operator vouched for the static
// topology, and a router restart must serve immediately — the PR 6/9
// behavior). Replicas added at runtime (Join, SetTopology, a cluster
// file reload) start in Probation and are invisible to gathers until
// the identity probe passes: a correct health report with the range's
// exact [lo, hi) bounds, the served entity version, and a probe scan
// byte-identical to a current active replica's. Draining replicas are
// routed to only as a last resort (they still answer correctly — that
// is the point of coordinated drain) and Down replicas — drained
// processes that exited — only after those; when either answers health
// checks with "ok" again it re-enters through Probation.
type ReplicaState int32

const (
	// StateActive replicas form the primary/failover pool.
	StateActive ReplicaState = iota
	// StateProbation replicas never serve a gather; a background prober
	// re-scans them until the identity probe passes.
	StateProbation
	// StateDraining replicas asked to be taken out of rotation; they
	// still answer correctly, so failover may use them last-resort.
	StateDraining
	// StateDown replicas stopped answering health checks after a drain;
	// kept in the topology so a restarted process can rejoin in place.
	StateDown
)

func (s ReplicaState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateProbation:
		return "probation"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

func (rep *replica) getState() ReplicaState  { return ReplicaState(rep.state.Load()) }
func (rep *replica) setState(s ReplicaState) { rep.state.Store(int32(s)) }
func (rep *replica) casState(from, to ReplicaState) bool {
	return rep.state.CompareAndSwap(int32(from), int32(to))
}

// memberError is a membership-operation failure that knows the HTTP
// status the serve endpoints should answer with (serve cannot import
// this package, so the status rides the error value itself — see
// serve.StatusCoder).
type memberError struct {
	msg  string
	code int
}

func (e *memberError) Error() string   { return e.msg }
func (e *memberError) HTTPStatus() int { return e.code }

// Membership errors. Wrap with %w for detail; errors.Is against these
// sentinels, and errors.As(*, StatusCoder) for the HTTP mapping.
var (
	// ErrUnknownReplica: Leave named an endpoint no range contains.
	ErrUnknownReplica = &memberError{"cluster: unknown replica", http.StatusNotFound}
	// ErrDuplicateReplica: Join named an endpoint already in the topology.
	ErrDuplicateReplica = &memberError{"cluster: replica already in topology", http.StatusConflict}
	// ErrLastReplica: Leave would empty a range — a range with zero
	// replicas can never answer, so the request is refused; join a
	// replacement first.
	ErrLastReplica = &memberError{"cluster: cannot remove a range's last replica", http.StatusConflict}
	// ErrUnknownRange: Join named a range index outside the topology.
	// Range boundaries are fixed at router start; only replica-set
	// composition changes at runtime.
	ErrUnknownRange = &memberError{"cluster: unknown range", http.StatusBadRequest}
	// ErrRangeCountChange: SetTopology tried to change the number of
	// ranges. Range boundary changes require a router restart (they
	// change what a "whole" answer means mid-query).
	ErrRangeCountChange = &memberError{"cluster: range-count changes require a router restart", http.StatusConflict}
	// ErrBadReplica: an empty or duplicate endpoint in the request.
	ErrBadReplica = &memberError{"cluster: bad replica endpoint", http.StatusBadRequest}
)

// list returns the range's current replica-set snapshot. The slice is
// copy-on-write: membership operations swap in a fresh slice under the
// router's topoMu, so holders of a snapshot (gathers in flight, the
// health sweep) iterate stably without locks.
func (rs *rangeSet) list() []*replica { return *rs.reps.Load() }

func (rs *rangeSet) contains(rep *replica) bool {
	for _, r := range rs.list() {
		if r == rep {
			return true
		}
	}
	return false
}

// boundsExcept returns the range's hosted [lo, hi) as known from any
// healthy replica other than skip — the ground truth a joining
// replica's reported bounds are checked against (its own report must
// not vouch for itself).
func (rs *rangeSet) boundsExcept(skip *replica) (lo, hi int) {
	for _, rep := range rs.list() {
		if rep == skip {
			continue
		}
		l, h, _, healthy := rep.st.health()
		if healthy || h > l {
			return l, h
		}
	}
	return 0, 0
}

// activePeer returns a healthy active replica other than skip — the
// reference answer for an identity probe — or nil.
func (rs *rangeSet) activePeer(skip *replica) *replica {
	for _, rep := range rs.list() {
		if rep == skip || rep.getState() != StateActive {
			continue
		}
		if _, _, _, healthy := rep.st.health(); healthy {
			return rep
		}
	}
	return nil
}

// peerEwmaMean is the mean seeded latency EWMA of the range's active
// replicas other than skip: the neutral value a re-admitted replica's
// EWMA is reseeded to. 0 (reset to unseeded) when no peer has one.
func (rs *rangeSet) peerEwmaMean(skip *replica) float64 {
	var sum float64
	n := 0
	for _, rep := range rs.list() {
		if rep == skip || rep.getState() != StateActive {
			continue
		}
		if e := rep.st.ewmaMs(); e > 0 {
			sum += e
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TopologyVersion reports the monotone topology-snapshot version: it
// bumps on every membership change (join, leave, cluster-file swap),
// never on state transitions. Serve's /v1/stats and the topology
// endpoints surface it so operators can confirm a change was observed.
func (rt *Router) TopologyVersion() uint64 { return rt.topoVersion.Load() }

// Join adds addr to range ri's replica set in Probation: it is
// invisible to gathers until the background identity probe passes (see
// probeOnce), at which point it enters the failover pool with a fresh
// EWMA and breaker. The range's boundaries are fixed — a joining
// replica must host exactly the range's [lo, hi) slice or it stays in
// probation forever (visible in /v1/stats).
func (rt *Router) Join(ri int, addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return fmt.Errorf("%w: empty address", ErrBadReplica)
	}
	rt.closeMu.RLock()
	closed := rt.closed
	rt.closeMu.RUnlock()
	if closed {
		return shard.ErrClosed
	}
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	if ri < 0 || ri >= len(rt.ranges) {
		return fmt.Errorf("%w: range %d of %d", ErrUnknownRange, ri, len(rt.ranges))
	}
	for _, rs := range rt.ranges {
		for _, rep := range rs.list() {
			if rep.addr == addr {
				return fmt.Errorf("%w: %s already serves range %d", ErrDuplicateReplica, addr, rs.index)
			}
		}
	}
	rs := rt.ranges[ri]
	rep := rt.newReplica(ri, addr, StateProbation)
	cur := rs.list()
	next := make([]*replica, 0, len(cur)+1)
	next = append(append(next, cur...), rep)
	rs.reps.Store(&next)
	rt.topoVersion.Add(1)
	rt.logf("cluster: replica %s joined range %d in probation (topology v%d)", addr, ri, rt.topoVersion.Load())
	rt.ensureProber(rs, rep)
	return nil
}

// Leave removes addr from the topology. In-flight gathers holding the
// old snapshot may still attempt it (and fail over normally); new
// gathers never see it. Removing a range's last replica is refused —
// drain it and join its replacement first.
func (rt *Router) Leave(addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return fmt.Errorf("%w: empty address", ErrBadReplica)
	}
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	for _, rs := range rt.ranges {
		cur := rs.list()
		for i, rep := range cur {
			if rep.addr != addr {
				continue
			}
			if len(cur) == 1 {
				return fmt.Errorf("%w: %s is range %d's only replica; join a replacement first", ErrLastReplica, addr, rs.index)
			}
			next := make([]*replica, 0, len(cur)-1)
			next = append(append(next, cur[:i]...), cur[i+1:]...)
			rs.reps.Store(&next)
			rs.primary.CompareAndSwap(rep, nil)
			rt.topoVersion.Add(1)
			rt.logf("cluster: replica %s left range %d (topology v%d)", addr, rs.index, rt.topoVersion.Load())
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrUnknownReplica, addr)
}

// SetTopology swaps the whole replica topology to ranges — the
// cluster-file reload seam (mtime watch, SIGHUP). The range count must
// match the running topology (boundary changes are rejected); within a
// range, kept replicas keep their state, stats and breaker, removed
// replicas vanish from new gathers, and added replicas enter in
// Probation exactly like Join. The swap is atomic per range and all
// validation happens before any range changes.
func (rt *Router) SetTopology(ranges [][]string) error {
	if len(ranges) != len(rt.ranges) {
		return fmt.Errorf("%w: running %d ranges, new topology has %d", ErrRangeCountChange, len(rt.ranges), len(ranges))
	}
	seen := make(map[string]int, len(ranges))
	for i, reps := range ranges {
		if len(reps) == 0 {
			return fmt.Errorf("%w: range %d has no replicas", ErrBadReplica, i)
		}
		for _, addr := range reps {
			if strings.TrimSpace(addr) == "" {
				return fmt.Errorf("%w: range %d has an empty address", ErrBadReplica, i)
			}
			if prev, dup := seen[addr]; dup {
				return fmt.Errorf("%w: %s appears in ranges %d and %d", ErrDuplicateReplica, addr, prev, i)
			}
			seen[addr] = i
		}
	}
	rt.closeMu.RLock()
	closed := rt.closed
	rt.closeMu.RUnlock()
	if closed {
		return shard.ErrClosed
	}
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	changed := false
	type added struct {
		rs  *rangeSet
		rep *replica
	}
	var joins []added
	for i, want := range ranges {
		rs := rt.ranges[i]
		cur := rs.list()
		keep := make(map[string]*replica, len(cur))
		for _, rep := range cur {
			keep[rep.addr] = rep
		}
		next := make([]*replica, 0, len(want))
		rangeChanged := len(want) != len(cur)
		for _, addr := range want {
			if rep, ok := keep[addr]; ok {
				next = append(next, rep)
				delete(keep, addr)
				continue
			}
			rep := rt.newReplica(i, addr, StateProbation)
			next = append(next, rep)
			joins = append(joins, added{rs, rep})
			rangeChanged = true
		}
		if !rangeChanged {
			continue
		}
		for _, rep := range keep { // removed: clear a stale primary pick
			rs.primary.CompareAndSwap(rep, nil)
		}
		rs.reps.Store(&next)
		changed = true
	}
	if changed {
		rt.topoVersion.Add(1)
		rt.logf("cluster: topology swapped to v%d (%d ranges, %d joining in probation)",
			rt.topoVersion.Load(), len(ranges), len(joins))
	}
	for _, j := range joins {
		rt.ensureProber(j.rs, j.rep)
	}
	return nil
}

// ensureProber starts rep's background prober unless one is already
// running (at most one per replica). Triggered by Join/SetTopology
// (probation admission), by the health sweep seeing a probation/
// returned replica, and by a gather blaming the replica (read-repair:
// the prober re-admits it off the query path instead of waiting out
// the breaker cool-down or the next health sweep).
func (rt *Router) ensureProber(rs *rangeSet, rep *replica) {
	if !rep.probing.CompareAndSwap(false, true) {
		return
	}
	rt.closeMu.RLock()
	if rt.closed {
		rt.closeMu.RUnlock()
		rep.probing.Store(false)
		return
	}
	rt.scanWG.Add(1)
	rt.closeMu.RUnlock()
	go rt.probeLoop(rs, rep)
}

// probeSeed derives a per-replica jitter seed so a fleet of probers
// does not fire in lockstep.
func probeSeed(base int64, addr string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(addr); i++ {
		h = (h ^ int64(addr[i])) * 1099511628211
	}
	return base ^ h
}

// probeLoop re-scans rep with full-jitter backoff until the identity
// probe passes (→ admit), the replica leaves the topology, it begins
// draining, or the router closes. It never touches the query path: the
// probe is a plain remote scan whose result is compared and discarded.
func (rt *Router) probeLoop(rs *rangeSet, rep *replica) {
	defer rt.scanWG.Done()
	defer rep.probing.Store(false)
	base, max := rt.cfg.ProbeBase, rt.cfg.ProbeMax
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	bo := resil.NewBackoff(base, max, probeSeed(rt.cfg.Seed, rep.addr))
	for attempt := 0; ; attempt++ {
		if rt.probeCtx.Err() != nil {
			return
		}
		if !rs.contains(rep) {
			return // left the topology; nothing to re-admit
		}
		if s := rep.getState(); s == StateDraining {
			return // draining replicas are on their way out, not in
		}
		err := rt.probeOnce(rs, rep)
		if err == nil {
			rt.admit(rs, rep)
			return
		}
		rep.st.probeFails.Inc()
		rt.logf("cluster: probe of %s (range %d, %s) failed: %v", rep.addr, rs.index, rep.getState(), err)
		t := time.NewTimer(bo.Delay(attempt))
		select {
		case <-rt.probeCtx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// probeOnce runs one identity probe against rep:
//
//  1. health: the node answers /v1/healthz with status "ok";
//  2. boundary: its reported [lo, hi) equals the range's known bounds
//     (from a peer — a replica cannot vouch for its own slice);
//  3. version: its entity version equals the router's served version
//     (a lagging or leading checkpoint keeps it out until the quorum
//     flip catches up — version-pinned gathers could never use it);
//  4. identity: a probe scan (the configured probe query, falling back
//     to the last gather's arcs) answers byte-identically — IDs, exact
//     distance bits, snapshot version — to a current active replica.
//
// Checks that have no ground truth available (no peer, no probe arcs)
// are skipped rather than failed: a range whose every replica died
// must be able to re-admit its first returnee on health alone.
func (rt *Router) probeOnce(rs *rangeSet, rep *replica) error {
	rep.st.probes.Inc()
	to := rt.cfg.ScanTimeout
	if to <= 0 {
		to = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(rt.probeCtx, to)
	defer cancel()
	h, err := rep.remote.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("status %q", h.Status)
	}
	if lo, hi := rs.boundsExcept(rep); hi > lo && (h.Lo != lo || h.Hi != hi) {
		return fmt.Errorf("boundary mismatch: node hosts [%d, %d), range serves [%d, %d)", h.Lo, h.Hi, lo, hi)
	}
	if v := rt.version.Load(); v != 0 && h.EntityVersion != v {
		return fmt.Errorf("entity version %d != served %d", h.EntityVersion, v)
	}
	specs := rt.probeSpecs()
	ref := rs.activePeer(rep)
	if len(specs) == 0 || ref == nil {
		// No probe query or no reference replica: health is the best
		// available evidence. Record it and admit.
		rep.st.setHealth(h, true)
		return nil
	}
	req := &ScanRequest{Arcs: specs, K: rt.probeK()}
	got, err := rep.remote.Scan(ctx, req)
	if err != nil {
		return fmt.Errorf("probe scan: %w", err)
	}
	want, err := ref.remote.Scan(ctx, req)
	if err != nil {
		return fmt.Errorf("reference scan against %s: %w", ref.addr, err)
	}
	if got.Partial || want.Partial {
		return fmt.Errorf("probe scan degraded (candidate partial=%v, reference partial=%v)", got.Partial, want.Partial)
	}
	if got.Version != want.Version {
		return fmt.Errorf("probe scan version %d != reference %d", got.Version, want.Version)
	}
	if len(got.IDs) != len(want.IDs) {
		return fmt.Errorf("probe scan returned %d answers, reference %d", len(got.IDs), len(want.IDs))
	}
	for i := range got.IDs {
		if got.IDs[i] != want.IDs[i] || math.Float64bits(got.Dists[i]) != math.Float64bits(want.Dists[i]) {
			return fmt.Errorf("probe scan diverges from reference %s at rank %d", ref.addr, i)
		}
	}
	rep.st.setHealth(h, true)
	return nil
}

// probeSpecs resolves the arcs an identity probe scans: the configured
// probe query when set, else the last gather's embedded arcs (captured
// by RankTopK), else nil.
func (rt *Router) probeSpecs() []ArcSpec {
	if rt.cfg.Probe != nil {
		if specs := rt.cfg.Probe(); len(specs) > 0 {
			return specs
		}
	}
	if p := rt.lastSpecs.Load(); p != nil {
		return *p
	}
	return nil
}

func (rt *Router) probeK() int {
	if rt.cfg.ProbeK > 0 {
		return rt.cfg.ProbeK
	}
	return 8
}

// admit moves rep into the failover pool after a passed probe: its
// latency EWMA is reseeded to the active peers' mean (a stale EWMA
// would dogpile or shun it — see replicaStat.seedEwma), its breaker is
// force-closed, and probation/down replicas turn Active. An already-
// active replica (read-repair after transient blame) keeps its state.
func (rt *Router) admit(rs *rangeSet, rep *replica) {
	rep.st.seedEwma(rs.peerEwmaMean(rep))
	if rep.breaker != nil {
		rep.breaker.Reset()
	}
	was := rep.getState()
	if was == StateProbation || was == StateDown {
		rep.casState(was, StateActive)
	}
	rep.st.admissions.Inc()
	rt.logf("cluster: replica %s re-admitted to range %d (was %s, topology v%d)",
		rep.addr, rs.index, was, rt.topoVersion.Load())
}

// logf writes to the configured membership log (silent when unset).
func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}
