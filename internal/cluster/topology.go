package cluster

import (
	"fmt"
	"os"
	"strings"
)

// ParseTopology resolves the -cluster/-cluster-file flags into the
// replica topology: element i of the result is entity range i's replica
// endpoints, in configuration order. Exactly one of list and file may be
// non-empty; both empty returns (nil, nil) — no cluster mode.
//
// The -cluster flag separates ranges with commas and replicas within a
// range with '|':
//
//	-cluster "a:9001|b:9001,a:9002|b:9002"
//
// is a 2-range topology with two replicas per range. The -cluster-file
// format is one range per line: the line's whitespace- (or '|'-)
// separated addresses are that range's replicas; '#' starts a comment
// and blank lines are skipped:
//
//	# range 0
//	a:9001 b:9001
//	# range 1
//	a:9002 b:9002
//
// The pre-replica one-address-per-range forms — a plain comma list and
// a one-address-per-line file — parse unchanged as 1-replica ranges, so
// existing deployments keep their exact topology.
//
// Malformed topologies are errors, never panics: an empty range element
// in the flag form ("a:1,,b:1"), a separator-only line in the file form
// ("|" with no addresses), and a duplicate endpoint anywhere (the same
// address cannot serve two slots) are all rejected up front, so a typo
// surfaces at boot or reload instead of as a half-routed cluster.
func ParseTopology(list, file string) ([][]string, error) {
	if list != "" && file != "" {
		return nil, fmt.Errorf("-cluster and -cluster-file are mutually exclusive")
	}
	var lines []string
	fromFile := false
	switch {
	case list != "":
		lines = strings.Split(list, ",")
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		fromFile = true
		for _, line := range strings.Split(string(b), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			lines = append(lines, line)
		}
	default:
		return nil, nil
	}
	var ranges [][]string
	seen := make(map[string]bool)
	for li, line := range lines {
		var replicas []string
		for _, tok := range strings.FieldsFunc(line, func(r rune) bool {
			return r == '|' || r == ' ' || r == '\t' || r == '\r'
		}) {
			if tok = strings.TrimSpace(tok); tok != "" {
				if seen[tok] {
					return nil, fmt.Errorf("duplicate node address %q in cluster topology", tok)
				}
				seen[tok] = true
				replicas = append(replicas, tok)
			}
		}
		if len(replicas) == 0 {
			if !fromFile {
				return nil, fmt.Errorf("empty range element %d in -cluster (stray comma?)", li)
			}
			if strings.TrimSpace(line) != "" {
				return nil, fmt.Errorf("cluster-file line %d has separators but no addresses", li+1)
			}
			continue // blank or comment-only line
		}
		ranges = append(ranges, replicas)
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("cluster topology resolved to no node addresses")
	}
	return ranges, nil
}
