// Package cluster implements multi-node HaLk serving: the entity table
// is partitioned into contiguous ranges, each hosted by a halk-shard
// process behind a small HTTP/JSON scan API, and a router (halk-serve
// -cluster) scatter-gathers queries across the nodes exactly like the
// in-process shard engine scatter-gathers across goroutines.
//
// The subsystem deliberately reuses the shard-shaped resilience
// machinery built for the in-process engine: each remote node is one
// "shard slot" guarded by a resil.Breaker, scanned under a per-remote
// deadline derived from the gather budget, hedged after the observed
// p99, and skipped into a partial result when it is down — so a dead
// node degrades a response instead of failing it, with the same
// never-cache-partials invariant the single-process path enforces.
//
// Exactness: the router ships the embedded query's raw arc parameters
// (center angles, arclengths, group hot vector) and each node prepares
// and scores them with shard.PrepareArc under the same constants,
// byte-for-byte the computation the single-process engine runs; the
// k-way merge uses the same (distance, ID) ordering. A loopback
// topology therefore returns byte-identical top-K lists to one
// in-process engine over the same checkpoint.
package cluster

import "github.com/halk-kg/halk/internal/kg"

// ArcSpec is one DNF-disjunct arc of an embedded query on the wire: the
// per-dimension center angles and arclengths of Eq. 4/10 plus the group
// multi-hot vector of Eq. 17. The router ships raw angles rather than
// prepared trig tables — ~6× smaller, and encoding/json round-trips
// float64 exactly, so node-side shard.PrepareArc reproduces the
// router-side preparation bit for bit.
type ArcSpec struct {
	C   []float64 `json:"c"`
	L   []float64 `json:"l"`
	Hot []float64 `json:"hot,omitempty"`
}

// ScanRequest is the POST /v1/scan body: score the hosted entity range
// against the arcs and return the local top K.
type ScanRequest struct {
	Arcs []ArcSpec `json:"arcs"`
	K    int       `json:"k"`
	// Bound, when positive, is the router's current global pruning
	// bound — an upper bound on the global k-th best distance (some
	// node's already-returned k-th best). The node seeds its shared
	// CAS-min prune bound with it (shard.Engine.TopKBound), skipping
	// entities that provably cannot enter the global top-K. Hedge and
	// retry scans benefit most: they launch after siblings have
	// answered. Zero or absent means no bound.
	Bound float64 `json:"bound,omitempty"`
	// TimeoutMS bounds the node-side scan even if the client connection
	// lingers; the router derives it from the remaining gather budget.
	// Zero means the node's default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ScanResponse is the /v1/scan reply: the hosted range's local top-K,
// ascending by (distance, entity ID). IDs are global (the node's engine
// snapshot is built with Source.Base), so router-side merging needs no
// translation.
type ScanResponse struct {
	IDs   []kg.EntityID `json:"ids"`
	Dists []float64     `json:"dists"`
	// Partial marks a node-side degraded scan: one of the node's local
	// sub-shards missed its deadline, so entities are missing and the
	// router must mark — and never cache — the merged answer.
	Partial bool `json:"partial,omitempty"`
	// Version is the snapshot version the scan ran on; Lo/Hi is the
	// hosted entity range [Lo, Hi).
	Version uint64 `json:"version"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	// Queue is the node's concurrent-scan depth at answer time,
	// excluding this scan — the router folds it into queue-depth-weighted
	// primary selection, so a backed-up replica sheds new primaries
	// without waiting for its latency EWMA to notice.
	Queue int `json:"queue_depth,omitempty"`
}

// Health is the /v1/healthz readiness report of a shard node. The field
// names match halk-serve's report, so one prober reads both; Lo/Hi are
// node-only. The router polls it for node discovery, liveness, and
// checkpoint-rollout version skew.
//
// Status is "ok" while serving and "draining" once the node has begun a
// coordinated shutdown (POST /v1/drain or SIGTERM): a draining node
// answers /v1/healthz with HTTP 503 — so load balancers fail it out of
// rotation — but keeps this full report in the body and keeps serving
// /v1/scan, so the router can finish in-flight work and route new
// gathers elsewhere before the process exits.
type Health struct {
	Status        string `json:"status"`
	Model         string `json:"model,omitempty"`
	Entities      int    `json:"entities"`
	EntityVersion uint64 `json:"entity_version"`
	Shards        int    `json:"shards,omitempty"`
	Lo            int    `json:"lo"`
	Hi            int    `json:"hi"`
	CkptLoaded    bool   `json:"ckpt_loaded"`
	CkptStep      int    `json:"ckpt_step,omitempty"`
	CkptPath      string `json:"ckpt_path,omitempty"`
	// Queue is the node's concurrent-scan depth at report time; the
	// router's queue-depth-weighted balancing reads it between scans.
	Queue int `json:"queue_depth,omitempty"`
}

// HealthDraining is the Health.Status of a node in coordinated drain.
const HealthDraining = "draining"

// QueryRequest is the POST /v1/query body understood by both halk-serve
// and a shard node's debugging endpoint (the node answers over its
// hosted range only, and supports the "query" and "sparql" forms).
// halk-query -server posts this shape.
type QueryRequest struct {
	Query     string `json:"query,omitempty"`
	SPARQL    string `json:"sparql,omitempty"`
	Structure string `json:"structure,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	K         int    `json:"k,omitempty"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// QueryAnswer is one ranked answer in a QueryResponse.
type QueryAnswer struct {
	ID       kg.EntityID `json:"id"`
	Entity   string      `json:"entity"`
	Distance *float64    `json:"distance,omitempty"`
}

// QueryResponse is the subset of the /v1/query reply shared by
// halk-serve and shard nodes — what halk-query -server decodes. Lo/Hi
// are set only by a node (its answers cover just the hosted range).
type QueryResponse struct {
	Query     string        `json:"query"`
	Canonical string        `json:"canonical,omitempty"`
	Mode      string        `json:"mode,omitempty"`
	K         int           `json:"k"`
	Cached    bool          `json:"cached,omitempty"`
	ElapsedMs float64       `json:"elapsed_ms,omitempty"`
	Partial   bool          `json:"partial,omitempty"`
	Lo        int           `json:"lo,omitempty"`
	Hi        int           `json:"hi,omitempty"`
	Version   uint64        `json:"version,omitempty"`
	Answers   []QueryAnswer `json:"answers"`
}

// Partition splits ents entities into nodes contiguous ranges and
// returns node i's [lo, hi) — the remainder-first formula the
// in-process engine uses for sub-sharding, so an n-node topology of
// single-shard nodes hosts exactly the ranges a single-process n-shard
// engine scans.
func Partition(ents, nodes, i int) (lo, hi int) {
	per, rem := ents/nodes, ents%nodes
	lo = i * per
	if i < rem {
		lo += i
	} else {
		lo += rem
	}
	hi = lo + per
	if i < rem {
		hi++
	}
	return lo, hi
}
