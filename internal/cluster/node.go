package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
	"github.com/halk-kg/halk/internal/sparql"
)

// FaultStageScan is the node-side fault-injection seam, fired once per
// /v1/scan request before the engine scan (shard index 0). KindError
// turns the scan into a 500, KindDelay wedges it (exercising the
// router's deadline/hedge paths), KindPanic exercises the recovery
// middleware — the chaos matrix drives all three.
const FaultStageScan = "cluster.node.scan"

// NodeConfig assembles a shard node frontend.
type NodeConfig struct {
	// Engine hosts the node's entity range (halk.RangeRanker.Engine()).
	// Required.
	Engine *shard.Engine
	// Params are the scoring constants wire arcs are prepared with —
	// must equal the engine's (halk.Model.ShardParams()). Required.
	Params shard.Params
	// Metrics is the node's registry (serving /metrics); nil means a
	// private one.
	Metrics *obs.Registry
	// Ckpt, when set, feeds the checkpoint fields of /v1/healthz.
	Ckpt *ckpt.Status
	// ModelName labels health reports (e.g. "HaLk").
	ModelName string
	// Entities/Relations, when both set together with Embed, enable the
	// debugging POST /v1/query endpoint (answers over the hosted range
	// only — halk-query -server works against a lone node).
	Entities  *kg.Dict
	Relations *kg.Dict
	// Embed turns a compiled query into wire arcs for /v1/query.
	Embed func(n *query.Node) []ArcSpec
	// Graph, when set, enables /v1/query structure sampling (same seeded
	// sampler as halk-serve, so node answers line up with router answers
	// for the same structure+seed).
	Graph *kg.Graph
	// DefaultTimeout bounds a scan when the request carries no
	// timeout_ms; 0 means 10s. MaxK caps requested K; 0 means 1000.
	DefaultTimeout time.Duration
	MaxK           int
	// Faults is the node's fault-injection plan (tests only; nil in
	// production).
	Faults *resil.Injector
	// PanicLog receives recovered handler panics; nil means the default
	// logger.
	PanicLog *log.Logger
}

// Node is the HTTP frontend of a shard-hosting process: the /v1/scan
// API the router's RemoteShard client speaks, plus the readiness,
// stats and metrics surfaces of the serve stack. Every handler runs
// under the serve recovery middleware, so a panicked scan costs one
// request, not the node.
type Node struct {
	cfg    NodeConfig
	mux    *http.ServeMux
	reg    *obs.Registry
	panics *obs.Counter
	scans  *obs.Counter
}

// NewNode validates cfg and builds the frontend.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cluster: NodeConfig.Engine is required")
	}
	if cfg.Params.Dim <= 0 {
		return nil, fmt.Errorf("cluster: NodeConfig.Params is required")
	}
	if (cfg.Entities != nil) != (cfg.Relations != nil) {
		return nil, fmt.Errorf("cluster: Entities and Relations must be set together")
	}
	if cfg.Entities != nil && cfg.Embed == nil {
		return nil, fmt.Errorf("cluster: Embed is required when the query endpoint is enabled")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	n := &Node{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		reg:    cfg.Metrics,
		panics: cfg.Metrics.Counter("halk_node_panics_total", "Handler panics recovered by the node frontend."),
		scans:  cfg.Metrics.Counter("halk_node_scans_total", "Remote scan requests served."),
	}
	wrap := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return serve.Recover(name, n.panics, cfg.PanicLog, h)
	}
	n.mux.HandleFunc("/v1/scan", wrap("/v1/scan", n.handleScan))
	n.mux.HandleFunc("/v1/healthz", wrap("/v1/healthz", n.handleHealthz))
	n.mux.HandleFunc("/v1/stats", wrap("/v1/stats", n.handleStats))
	n.mux.Handle("/metrics", n.reg.Handler())
	if cfg.Entities != nil {
		n.mux.HandleFunc("/v1/query", wrap("/v1/query", n.handleQuery))
	}
	return n, nil
}

// Handler returns the node's HTTP handler, ready for http.Server.
func (n *Node) Handler() http.Handler { return n.mux }

// Close drains the engine's in-flight scans.
func (n *Node) Close() { n.cfg.Engine.Close() }

type errorResponse struct {
	Error string `json:"error"`
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	serve.WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// rankErrStatus maps an engine error to the HTTP status the router's
// typed failure classification expects: 504 for deadline-shaped
// failures, 503 for lifecycle states a retry can outwait, 500 for the
// rest.
func rankErrStatus(err error) int {
	switch {
	case errors.Is(err, shard.ErrAllShardsSkipped), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, shard.ErrNoSnapshot), errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleScan is POST /v1/scan: prepare the wire arcs with the node's
// own constants and scan the hosted range, seeding the engine's prune
// bound with the router's global bound when one was shipped.
func (n *Node) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.K <= 0 {
		fail(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	k := req.K
	if k > n.cfg.MaxK {
		k = n.cfg.MaxK
	}
	if len(req.Arcs) == 0 {
		fail(w, http.StatusBadRequest, "at least one arc is required")
		return
	}
	d := n.cfg.Params.Dim
	arcs := make([]shard.Arc, len(req.Arcs))
	for i, a := range req.Arcs {
		if len(a.C) != d || len(a.L) != d {
			fail(w, http.StatusBadRequest, "arc %d: want %d dimensions, got c=%d l=%d", i, d, len(a.C), len(a.L))
			return
		}
		arcs[i] = shard.PrepareArc(n.cfg.Params, a.C, a.L, a.Hot)
	}
	if err := n.cfg.Faults.Fire(FaultStageScan, 0); err != nil {
		fail(w, http.StatusInternalServerError, "injected scan fault: %v", err)
		return
	}

	timeout := n.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, err := n.cfg.Engine.TopKBound(ctx, arcs, k, req.Bound)
	if err != nil {
		fail(w, rankErrStatus(err), "%v", err)
		return
	}
	n.scans.Inc()
	lo, hi := n.cfg.Engine.EntityRange()
	serve.WriteJSON(w, http.StatusOK, &ScanResponse{
		IDs:     res.IDs,
		Dists:   res.Dists,
		Partial: res.Partial,
		Version: res.Version,
		Lo:      lo,
		Hi:      hi,
	})
}

// handleHealthz is GET /v1/healthz: the node's readiness report in the
// same shape halk-serve answers, plus the hosted range.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	lo, hi := n.cfg.Engine.EntityRange()
	h := Health{
		Status:        "ok",
		Model:         n.cfg.ModelName,
		Entities:      hi - lo,
		EntityVersion: n.cfg.Engine.Version(),
		Shards:        n.cfg.Engine.NumShards(),
		Lo:            lo,
		Hi:            hi,
	}
	if n.cfg.Ckpt != nil {
		snap := n.cfg.Ckpt.Snapshot()
		h.CkptLoaded = snap.Path != ""
		h.CkptStep = snap.Step
		h.CkptPath = snap.Path
	} else {
		h.CkptLoaded = h.EntityVersion > 0
	}
	serve.WriteJSON(w, http.StatusOK, h)
}

// handleStats is GET /v1/stats: the hosted range plus the engine's
// per-(local-)shard counters, mirroring halk-serve's stats shape.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	lo, hi := n.cfg.Engine.EntityRange()
	resp := map[string]any{
		"model":      n.cfg.ModelName,
		"lo":         lo,
		"hi":         hi,
		"entities":   hi - lo,
		"num_shards": n.cfg.Engine.NumShards(),
		"shards":     n.cfg.Engine.Stats(),
		"scans":      n.scans.Value(),
	}
	if n.cfg.Ckpt != nil {
		resp["checkpoint"] = n.cfg.Ckpt.Snapshot()
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handleQuery is POST /v1/query, the node's debugging endpoint: compile
// the query, embed it with the node's model, and answer over the hosted
// range only. It exists so halk-query -server can point at a lone shard
// node; topology-wide answers come from the router.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	root, err := n.compile(&req)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > n.cfg.MaxK {
		k = n.cfg.MaxK
	}
	specs := n.cfg.Embed(root)
	if len(specs) == 0 {
		fail(w, http.StatusBadRequest, "query embedded to no arcs")
		return
	}
	arcs := make([]shard.Arc, len(specs))
	for i, a := range specs {
		arcs[i] = shard.PrepareArc(n.cfg.Params, a.C, a.L, a.Hot)
	}
	timeout := n.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := n.cfg.Engine.TopKBound(ctx, arcs, k, 0)
	if err != nil {
		fail(w, rankErrStatus(err), "%v", err)
		return
	}
	lo, hi := n.cfg.Engine.EntityRange()
	answers := make([]QueryAnswer, len(res.IDs))
	for i, e := range res.IDs {
		dist := res.Dists[i]
		answers[i] = QueryAnswer{ID: e, Entity: n.cfg.Entities.Name(int32(e)), Distance: &dist}
	}
	serve.WriteJSON(w, http.StatusOK, &QueryResponse{
		Query:     root.String(),
		Canonical: query.CanonicalKey(root),
		Mode:      "exact",
		K:         k,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Partial:   res.Partial,
		Lo:        lo,
		Hi:        hi,
		Version:   res.Version,
		Answers:   answers,
	})
}

// compile resolves the request's query form, mirroring halk-serve's
// compile (one form exactly).
func (n *Node) compile(req *QueryRequest) (*query.Node, error) {
	forms := 0
	for _, set := range []bool{req.SPARQL != "", req.Query != "", req.Structure != ""} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return nil, fmt.Errorf("exactly one of \"sparql\", \"query\" or \"structure\" must be set")
	}
	switch {
	case req.SPARQL != "":
		pq, err := sparql.Parse(req.SPARQL)
		if err != nil {
			return nil, err
		}
		a := &sparql.Adaptor{Entities: n.cfg.Entities, Relations: n.cfg.Relations}
		return a.Compile(pq)
	case req.Query != "":
		return query.Parse(req.Query, n.cfg.Entities, n.cfg.Relations)
	default:
		if n.cfg.Graph == nil {
			return nil, fmt.Errorf("structure sampling is not enabled on this node")
		}
		if !query.HasStructure(req.Structure) {
			return nil, fmt.Errorf("unknown structure %q; known: %v", req.Structure, query.StructureNames())
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		sampler := query.NewSampler(n.cfg.Graph, rand.New(rand.NewSource(seed)))
		root, ok := sampler.Sample(req.Structure)
		if !ok {
			return nil, fmt.Errorf("could not sample a %q query from the node's graph", req.Structure)
		}
		return root, nil
	}
}
