package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
	"github.com/halk-kg/halk/internal/sparql"
)

// FaultStageScan is the node-side fault-injection seam, fired once per
// /v1/scan request before the engine scan (shard index 0). KindError
// turns the scan into a 500, KindDelay wedges it (exercising the
// router's deadline/hedge paths), KindPanic exercises the recovery
// middleware — the chaos matrix drives all three.
const FaultStageScan = "cluster.node.scan"

// NodeConfig assembles a shard node frontend.
type NodeConfig struct {
	// Engine hosts the node's entity range (halk.RangeRanker.Engine()).
	// Required.
	Engine *shard.Engine
	// Params are the scoring constants wire arcs are prepared with —
	// must equal the engine's (halk.Model.ShardParams()). Required.
	Params shard.Params
	// Metrics is the node's registry (serving /metrics); nil means a
	// private one.
	Metrics *obs.Registry
	// Ckpt, when set, feeds the checkpoint fields of /v1/healthz.
	Ckpt *ckpt.Status
	// ModelName labels health reports (e.g. "HaLk").
	ModelName string
	// Entities/Relations, when both set together with Embed, enable the
	// debugging POST /v1/query endpoint (answers over the hosted range
	// only — halk-query -server works against a lone node).
	Entities  *kg.Dict
	Relations *kg.Dict
	// Embed turns a compiled query into wire arcs for /v1/query.
	Embed func(n *query.Node) []ArcSpec
	// Graph, when set, enables /v1/query structure sampling (same seeded
	// sampler as halk-serve, so node answers line up with router answers
	// for the same structure+seed).
	Graph *kg.Graph
	// DefaultTimeout bounds a scan when the request carries no
	// timeout_ms; 0 means 10s. MaxK caps requested K; 0 means 1000.
	DefaultTimeout time.Duration
	MaxK           int
	// Faults is the node's fault-injection plan (tests only; nil in
	// production).
	Faults *resil.Injector
	// PanicLog receives recovered handler panics; nil means the default
	// logger.
	PanicLog *log.Logger
}

// Node is the HTTP frontend of a shard-hosting process: the /v1/scan
// API the router's RemoteShard client speaks, plus the readiness,
// stats and metrics surfaces of the serve stack. Every handler runs
// under the serve recovery middleware, so a panicked scan costs one
// request, not the node.
type Node struct {
	cfg    NodeConfig
	mux    *http.ServeMux
	reg    *obs.Registry
	panics *obs.Counter
	scans  *obs.Counter

	// inflight counts /v1/scan requests currently being served; its
	// value rides every scan response and health report as queue_depth,
	// feeding the router's queue-weighted balancing.
	inflight atomic.Int64

	// draining flips once, on POST /v1/drain or the process's SIGTERM
	// path: /v1/healthz turns 503 ("draining") so routers and load
	// balancers stop sending new work, while /v1/scan keeps answering —
	// in-flight and straggler scans complete instead of degrading some
	// gather to a partial answer. drainC is closed at the same moment so
	// the serving process can sequence its shutdown off it.
	draining  atomic.Bool
	drainOnce sync.Once
	drainC    chan struct{}
}

// NewNode validates cfg and builds the frontend.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cluster: NodeConfig.Engine is required")
	}
	if cfg.Params.Dim <= 0 {
		return nil, fmt.Errorf("cluster: NodeConfig.Params is required")
	}
	if (cfg.Entities != nil) != (cfg.Relations != nil) {
		return nil, fmt.Errorf("cluster: Entities and Relations must be set together")
	}
	if cfg.Entities != nil && cfg.Embed == nil {
		return nil, fmt.Errorf("cluster: Embed is required when the query endpoint is enabled")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	n := &Node{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		reg:    cfg.Metrics,
		panics: cfg.Metrics.Counter("halk_node_panics_total", "Handler panics recovered by the node frontend."),
		scans:  cfg.Metrics.Counter("halk_node_scans_total", "Remote scan requests served."),
		drainC: make(chan struct{}),
	}
	cfg.Metrics.GaugeFunc("halk_node_draining", "1 once the node has begun a coordinated drain, else 0.",
		func() float64 {
			if n.draining.Load() {
				return 1
			}
			return 0
		})
	cfg.Metrics.GaugeFunc("halk_node_inflight_scans", "Scan requests currently being served.",
		func() float64 { return float64(n.inflight.Load()) })
	wrap := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return serve.Recover(name, n.panics, cfg.PanicLog, h)
	}
	n.mux.HandleFunc("/v1/scan", wrap("/v1/scan", n.handleScan))
	n.mux.HandleFunc("/v1/healthz", wrap("/v1/healthz", n.handleHealthz))
	n.mux.HandleFunc("/v1/drain", wrap("/v1/drain", n.handleDrain))
	n.mux.HandleFunc("/v1/stats", wrap("/v1/stats", n.handleStats))
	n.mux.Handle("/metrics", n.reg.Handler())
	if cfg.Entities != nil {
		n.mux.HandleFunc("/v1/query", wrap("/v1/query", n.handleQuery))
	}
	return n, nil
}

// Handler returns the node's HTTP handler, ready for http.Server.
func (n *Node) Handler() http.Handler { return n.mux }

// Close drains the engine's in-flight scans.
func (n *Node) Close() { n.cfg.Engine.Close() }

// Drain begins a coordinated shutdown: readiness fails from the next
// /v1/healthz poll on (503, status "draining") while /v1/scan keeps
// serving, and DrainC is closed so the hosting process can sequence
// grace period → listener shutdown → engine close. Idempotent; there is
// no way back — a drained node is expected to exit and, if it returns,
// rejoin through the router's probation probe.
func (n *Node) Drain() {
	n.draining.Store(true)
	n.drainOnce.Do(func() { close(n.drainC) })
}

// Draining reports whether Drain has been called.
func (n *Node) Draining() bool { return n.draining.Load() }

// DrainC is closed on the first Drain call (HTTP /v1/drain or the
// process signal path) — the hosting process selects on it next to its
// signal context.
func (n *Node) DrainC() <-chan struct{} { return n.drainC }

// handleDrain is POST /v1/drain: flip the node into coordinated drain.
func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	n.Drain()
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": HealthDraining})
}

type errorResponse struct {
	Error string `json:"error"`
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	serve.WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// rankErrStatus maps an engine error to the HTTP status the router's
// typed failure classification expects: 504 for deadline-shaped
// failures, 503 for lifecycle states a retry can outwait, 500 for the
// rest.
func rankErrStatus(err error) int {
	switch {
	case errors.Is(err, shard.ErrAllShardsSkipped), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, shard.ErrNoSnapshot), errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleScan is POST /v1/scan: prepare the wire arcs with the node's
// own constants and scan the hosted range, seeding the engine's prune
// bound with the router's global bound when one was shipped.
func (n *Node) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.K <= 0 {
		fail(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	k := req.K
	if k > n.cfg.MaxK {
		k = n.cfg.MaxK
	}
	if len(req.Arcs) == 0 {
		fail(w, http.StatusBadRequest, "at least one arc is required")
		return
	}
	d := n.cfg.Params.Dim
	arcs := make([]shard.Arc, len(req.Arcs))
	for i, a := range req.Arcs {
		if len(a.C) != d || len(a.L) != d {
			fail(w, http.StatusBadRequest, "arc %d: want %d dimensions, got c=%d l=%d", i, d, len(a.C), len(a.L))
			return
		}
		arcs[i] = shard.PrepareArc(n.cfg.Params, a.C, a.L, a.Hot)
	}
	if err := n.cfg.Faults.Fire(FaultStageScan, 0); err != nil {
		fail(w, http.StatusInternalServerError, "injected scan fault: %v", err)
		return
	}

	timeout := n.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, err := n.cfg.Engine.TopKBound(ctx, arcs, k, req.Bound)
	if err != nil {
		fail(w, rankErrStatus(err), "%v", err)
		return
	}
	n.scans.Inc()
	lo, hi := n.cfg.Engine.EntityRange()
	// Queue excludes this scan: what a router sending the *next* request
	// would wait behind.
	queue := int(n.inflight.Load()) - 1
	if queue < 0 {
		queue = 0
	}
	serve.WriteJSON(w, http.StatusOK, &ScanResponse{
		IDs:     res.IDs,
		Dists:   res.Dists,
		Partial: res.Partial,
		Version: res.Version,
		Lo:      lo,
		Hi:      hi,
		Queue:   queue,
	})
}

// handleHealthz is GET /v1/healthz: the node's readiness report in the
// same shape halk-serve answers, plus the hosted range. A draining node
// answers 503 with the same body and Status "draining": readiness
// fails (load balancers take it out of rotation) while the router can
// still read the full report and sequence its own drain handling.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	lo, hi := n.cfg.Engine.EntityRange()
	h := Health{
		Status:        "ok",
		Model:         n.cfg.ModelName,
		Entities:      hi - lo,
		EntityVersion: n.cfg.Engine.Version(),
		Shards:        n.cfg.Engine.NumShards(),
		Lo:            lo,
		Hi:            hi,
		Queue:         int(n.inflight.Load()),
	}
	if n.cfg.Ckpt != nil {
		snap := n.cfg.Ckpt.Snapshot()
		h.CkptLoaded = snap.Path != ""
		h.CkptStep = snap.Step
		h.CkptPath = snap.Path
	} else {
		h.CkptLoaded = h.EntityVersion > 0
	}
	code := http.StatusOK
	if n.draining.Load() {
		h.Status = HealthDraining
		code = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, code, h)
}

// handleStats is GET /v1/stats: the hosted range plus the engine's
// per-(local-)shard counters, mirroring halk-serve's stats shape.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	lo, hi := n.cfg.Engine.EntityRange()
	resp := map[string]any{
		"model":      n.cfg.ModelName,
		"lo":         lo,
		"hi":         hi,
		"entities":   hi - lo,
		"num_shards": n.cfg.Engine.NumShards(),
		"shards":     n.cfg.Engine.Stats(),
		"scans":      n.scans.Value(),
		"queue":      n.inflight.Load(),
		"draining":   n.draining.Load(),
	}
	if n.cfg.Ckpt != nil {
		resp["checkpoint"] = n.cfg.Ckpt.Snapshot()
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handleQuery is POST /v1/query, the node's debugging endpoint: compile
// the query, embed it with the node's model, and answer over the hosted
// range only. It exists so halk-query -server can point at a lone shard
// node; topology-wide answers come from the router.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	root, err := n.compile(&req)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > n.cfg.MaxK {
		k = n.cfg.MaxK
	}
	specs := n.cfg.Embed(root)
	if len(specs) == 0 {
		fail(w, http.StatusBadRequest, "query embedded to no arcs")
		return
	}
	arcs := make([]shard.Arc, len(specs))
	for i, a := range specs {
		arcs[i] = shard.PrepareArc(n.cfg.Params, a.C, a.L, a.Hot)
	}
	timeout := n.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := n.cfg.Engine.TopKBound(ctx, arcs, k, 0)
	if err != nil {
		fail(w, rankErrStatus(err), "%v", err)
		return
	}
	lo, hi := n.cfg.Engine.EntityRange()
	answers := make([]QueryAnswer, len(res.IDs))
	for i, e := range res.IDs {
		dist := res.Dists[i]
		answers[i] = QueryAnswer{ID: e, Entity: n.cfg.Entities.Name(int32(e)), Distance: &dist}
	}
	serve.WriteJSON(w, http.StatusOK, &QueryResponse{
		Query:     root.String(),
		Canonical: query.CanonicalKey(root),
		Mode:      "exact",
		K:         k,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Partial:   res.Partial,
		Lo:        lo,
		Hi:        hi,
		Version:   res.Version,
		Answers:   answers,
	})
}

// compile resolves the request's query form, mirroring halk-serve's
// compile (one form exactly).
func (n *Node) compile(req *QueryRequest) (*query.Node, error) {
	forms := 0
	for _, set := range []bool{req.SPARQL != "", req.Query != "", req.Structure != ""} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return nil, fmt.Errorf("exactly one of \"sparql\", \"query\" or \"structure\" must be set")
	}
	switch {
	case req.SPARQL != "":
		pq, err := sparql.Parse(req.SPARQL)
		if err != nil {
			return nil, err
		}
		a := &sparql.Adaptor{Entities: n.cfg.Entities, Relations: n.cfg.Relations}
		return a.Compile(pq)
	case req.Query != "":
		return query.Parse(req.Query, n.cfg.Entities, n.cfg.Relations)
	default:
		if n.cfg.Graph == nil {
			return nil, fmt.Errorf("structure sampling is not enabled on this node")
		}
		if !query.HasStructure(req.Structure) {
			return nil, fmt.Errorf("unknown structure %q; known: %v", req.Structure, query.StructureNames())
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		sampler := query.NewSampler(n.cfg.Graph, rand.New(rand.NewSource(seed)))
		root, ok := sampler.Sample(req.Structure)
		if !ok {
			return nil, fmt.Errorf("could not sample a %q query from the node's graph", req.Structure)
		}
		return root, nil
	}
}
