package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// findReplica returns range ri's replica with the given address.
func findReplica(t *testing.T, rt *Router, ri int, addr string) *replica {
	t.Helper()
	for _, rep := range rt.ranges[ri].list() {
		if rep.addr == addr {
			return rep
		}
	}
	t.Fatalf("replica %s not in range %d", addr, ri)
	return nil
}

// fastProbes shrinks the prober backoff so membership tests converge in
// milliseconds instead of the production 250ms floor.
func fastProbes(c *Config) {
	c.ProbeBase = 2 * time.Millisecond
	c.ProbeMax = 10 * time.Millisecond
}

// sampleQuery draws a deterministic test-split query.
func sampleQuery(t *testing.T, ds interface {
	Sample(kind string) (*query.Node, bool)
}, kind string) *query.Node {
	t.Helper()
	q, ok := ds.Sample(kind)
	if !ok {
		t.Fatalf("sampling %s failed", kind)
	}
	return q
}

// TestJoinProbationNeverServes is the probation acceptance gate: a
// replica joined at runtime whose identity probe cannot pass (here: it
// hosts the wrong entity slice) must never serve a gather — the
// router-side scan counter stays zero however much traffic flows — and
// every answer stays whole and byte-identical to the pre-join baseline.
func TestJoinProbationNeverServes(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 1, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		fastProbes(c)
	})
	ents := ds.Train.NumEntities()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q := sampleQuery(t, s, "2p")
	want, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("baseline gather: %v", err)
	}

	// The joiner hosts only half the range's slice: the boundary check
	// (against the active peer's report, never the joiner's own) fails
	// every probe, so it stays in probation forever.
	wrong := startNode(t, m, ds, 0, ents/2, nil)
	if err := rt.Join(0, wrong.addr()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	joiner := findReplica(t, rt, 0, wrong.addr())
	if got := joiner.getState(); got != StateProbation {
		t.Fatalf("joined replica state = %v, want probation", got)
	}
	if rt.NumReplicas(0) != 2 {
		t.Fatalf("NumReplicas(0) = %d, want 2", rt.NumReplicas(0))
	}

	waitFor(t, 2*time.Second, "a failed probe", func() bool {
		return joiner.st.probeFails.Value() > 0
	})
	for i := 0; i < 10; i++ {
		got, err := rt.RankTopK(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
		if got.Partial {
			t.Fatalf("gather %d partial with an active replica up", i)
		}
		if len(got.IDs) != len(want.IDs) {
			t.Fatalf("gather %d: %d answers, want %d", i, len(got.IDs), len(want.IDs))
		}
		for j := range want.IDs {
			if got.IDs[j] != want.IDs[j] || math.Float64bits(got.Dists[j]) != math.Float64bits(want.Dists[j]) {
				t.Fatalf("gather %d diverges from baseline at rank %d", i, j)
			}
		}
	}
	if n := joiner.st.scans.Value(); n != 0 {
		t.Fatalf("probation replica served %d gather scans; probation must serve none", n)
	}
	if joiner.getState() != StateProbation {
		t.Fatalf("mismatched replica left probation: %v", joiner.getState())
	}

	// The stats surface reports it so an operator can see why it is not
	// taking traffic.
	stats := rt.ReplicaStats()
	found := false
	for _, snap := range stats[0].Replicas {
		if snap.Node == wrong.addr() {
			found = true
			if snap.State != "probation" {
				t.Fatalf("stats state = %q, want probation", snap.State)
			}
			if snap.Probes == 0 {
				t.Fatal("stats report zero probes for a probing replica")
			}
		}
	}
	if !found {
		t.Fatal("joined replica missing from ReplicaStats")
	}
}

// TestJoinAdmitsAfterProbe drives the happy path: a correct replica
// joined at runtime passes the identity probe (health, boundary,
// version, byte-identical probe scan) and enters the pool with a
// peer-seeded EWMA; once preferred it serves gathers byte-identically.
func TestJoinAdmitsAfterProbe(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 1, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		fastProbes(c)
	})
	ents := ds.Train.NumEntities()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q := sampleQuery(t, s, "2p")
	want, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("baseline gather: %v", err)
	}

	v0 := rt.TopologyVersion()
	tn := startNode(t, m, ds, 0, ents, nil)
	if err := rt.Join(0, tn.addr()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if rt.TopologyVersion() != v0+1 {
		t.Fatalf("topology version = %d after join, want %d", rt.TopologyVersion(), v0+1)
	}
	joiner := findReplica(t, rt, 0, tn.addr())
	waitFor(t, 2*time.Second, "probe admission", func() bool {
		return joiner.getState() == StateActive
	})
	if joiner.st.admissions.Value() == 0 || joiner.st.probes.Value() == 0 {
		t.Fatalf("admissions = %d, probes = %d; want both > 0",
			joiner.st.admissions.Value(), joiner.st.probes.Value())
	}
	// The EWMA was seeded to the active peer's mean — the baseline gather
	// gave the peer one — so the newcomer is neither dogpiled nor shunned.
	if joiner.st.ewmaMs() <= 0 {
		t.Fatal("admitted replica's EWMA not seeded from its peer")
	}

	preferReplica(rt, 0, 1)
	base := joiner.st.scans.Value()
	got, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("post-admission gather: %v", err)
	}
	if got.Partial {
		t.Fatal("post-admission gather partial")
	}
	for j := range want.IDs {
		if got.IDs[j] != want.IDs[j] || math.Float64bits(got.Dists[j]) != math.Float64bits(want.Dists[j]) {
			t.Fatalf("admitted replica's answer diverges at rank %d", j)
		}
	}
	if joiner.st.scans.Value() == base {
		t.Fatal("admitted and preferred replica served no scans")
	}
}

// TestMembershipErrors pins every membership refusal and its sentinel.
func TestMembershipErrors(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 2, nil)
	rt := newReplicaRouter(t, m, nodes, nil)

	if err := rt.Join(0, nodes[0][0].addr()); !errors.Is(err, ErrDuplicateReplica) {
		t.Fatalf("duplicate join err = %v, want ErrDuplicateReplica", err)
	}
	if err := rt.Join(5, "x:1"); !errors.Is(err, ErrUnknownRange) {
		t.Fatalf("unknown-range join err = %v, want ErrUnknownRange", err)
	}
	if err := rt.Join(0, "  "); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("empty-address join err = %v, want ErrBadReplica", err)
	}
	if err := rt.Leave("nope:1"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("unknown leave err = %v, want ErrUnknownReplica", err)
	}

	v0 := rt.TopologyVersion()
	if err := rt.Leave(nodes[0][1].addr()); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if rt.NumReplicas(0) != 1 {
		t.Fatalf("NumReplicas(0) = %d after leave, want 1", rt.NumReplicas(0))
	}
	if rt.TopologyVersion() != v0+1 {
		t.Fatalf("topology version = %d after leave, want %d", rt.TopologyVersion(), v0+1)
	}
	if err := rt.Leave(nodes[0][0].addr()); !errors.Is(err, ErrLastReplica) {
		t.Fatalf("last-replica leave err = %v, want ErrLastReplica", err)
	}

	// Every membership error carries its HTTP status for the serve
	// endpoints (serve cannot import this package).
	for _, tc := range []struct {
		err  *memberError
		code int
	}{
		{ErrUnknownReplica, 404},
		{ErrDuplicateReplica, 409},
		{ErrLastReplica, 409},
		{ErrUnknownRange, 400},
		{ErrRangeCountChange, 409},
		{ErrBadReplica, 400},
	} {
		if tc.err.HTTPStatus() != tc.code {
			t.Fatalf("%v maps to HTTP %d, want %d", tc.err, tc.err.HTTPStatus(), tc.code)
		}
	}

	rt.Close()
	if err := rt.Join(0, "late:1"); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("join after Close err = %v, want shard.ErrClosed", err)
	}
}

// TestSetTopologySwap pins the cluster-file reload semantics: the range
// count is frozen, kept replicas keep their identity (stats, breaker,
// state), removed replicas vanish, added ones enter in probation, and
// the version bumps exactly once per effective change (a no-op reload
// does not bump).
func TestSetTopologySwap(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		fastProbes(c)
	})
	ents := ds.Train.NumEntities()

	if err := rt.SetTopology([][]string{{"a:1"}}); !errors.Is(err, ErrRangeCountChange) {
		t.Fatalf("range-count change err = %v, want ErrRangeCountChange", err)
	}
	if err := rt.SetTopology([][]string{{nodes[0][0].addr()}, {}}); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("empty-range err = %v, want ErrBadReplica", err)
	}
	dup := nodes[0][0].addr()
	if err := rt.SetTopology([][]string{{dup}, {dup}}); !errors.Is(err, ErrDuplicateReplica) {
		t.Fatalf("duplicate err = %v, want ErrDuplicateReplica", err)
	}

	// No-op swap: same topology, no version bump, same replica handles.
	v0 := rt.TopologyVersion()
	kept := rt.ranges[0].list()[0]
	if err := rt.SetTopology(rt.Topology()); err != nil {
		t.Fatalf("no-op SetTopology: %v", err)
	}
	if rt.TopologyVersion() != v0 {
		t.Fatalf("no-op reload bumped topology version %d -> %d", v0, rt.TopologyVersion())
	}
	if rt.ranges[0].list()[0] != kept {
		t.Fatal("no-op reload rebuilt a kept replica")
	}

	// Effective swap: range 0 drops its second replica and gains a fresh
	// node; range 1 is untouched.
	fresh := startNode(t, m, ds, rangeLo(ents, 2, 0), rangeHi(ents, 2, 0), nil)
	next := [][]string{
		{nodes[0][0].addr(), fresh.addr()},
		{nodes[1][0].addr(), nodes[1][1].addr()},
	}
	if err := rt.SetTopology(next); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	if rt.TopologyVersion() != v0+1 {
		t.Fatalf("topology version = %d after swap, want %d", rt.TopologyVersion(), v0+1)
	}
	if rt.ranges[0].list()[0] != kept {
		t.Fatal("swap rebuilt the kept replica (stats/breaker identity lost)")
	}
	added := findReplica(t, rt, 0, fresh.addr())
	if added.getState() != StateProbation {
		t.Fatalf("added replica state = %v, want probation", added.getState())
	}
	for _, rep := range rt.ranges[0].list() {
		if rep.addr == nodes[0][1].addr() {
			t.Fatal("removed replica still in the snapshot")
		}
	}

	// The added replica is correct, so its probe admits it.
	rt.CheckHealth(context.Background())
	waitFor(t, 2*time.Second, "swap-added replica admission", func() bool {
		return added.getState() == StateActive
	})
}

// rangeHi returns Partition's hi for range i — a readability helper for
// tests building explicit replacement nodes.
func rangeHi(ents, n, i int) int {
	_, hi := Partition(ents, n, i)
	return hi
}

// TestReadRepairReadmits is the read-repair tentpole: a replica blamed
// by failover (breaker open, long cool-down) is re-probed off the query
// path and re-admitted as soon as it answers correctly again — without
// any query traffic and long before the breaker's own cool-down would
// have let a half-open probe through.
func TestReadRepairReadmits(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 250 * time.Millisecond
		fastProbes(c)
		c.Breaker = &resil.BreakerConfig{
			Window:            8,
			FailureRate:       0.5,
			ConsecutiveMisses: 2,
			// A cool-down far beyond the test's lifetime: only the
			// read-repair prober's Reset can close the breaker again.
			OpenBase: time.Hour,
			OpenMax:  time.Hour,
			Seed:     1,
		}
	})
	rt.CheckHealth(context.Background())
	preferReplica(rt, 0, 0)
	blamed := rt.ranges[0].list()[0]

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q := sampleQuery(t, s, "1p")

	nodes[0][0].inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindError})
	for i := 0; blamed.breaker.State() == resil.Closed; i++ {
		if i >= 20 {
			t.Fatal("breaker never opened under persistent faults")
		}
		res, err := rt.RankTopK(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
		if res.Partial {
			t.Fatalf("gather %d partial despite a healthy sibling", i)
		}
	}

	// Heal the node. No more queries: re-admission must happen entirely
	// off the query path, and the hour-long cool-down means the breaker
	// can only close through the prober's force-Reset.
	nodes[0][0].inj.Clear()
	waitFor(t, 3*time.Second, "read-repair re-admission", func() bool {
		return blamed.breaker.State() == resil.Closed && blamed.st.admissions.Value() > 0
	})
	if blamed.getState() != StateActive {
		t.Fatalf("re-admitted replica state = %v, want active", blamed.getState())
	}
	// Its poisoned EWMA (preferReplica seeded 0.01ms, then timeouts) was
	// reseeded from the sibling so it re-enters at a neutral score.
	if e := blamed.st.ewmaMs(); e <= 0 {
		t.Fatal("re-admitted replica's EWMA not reseeded")
	}

	// It serves again when preferred.
	preferReplica(rt, 0, 0)
	base := blamed.st.scans.Value()
	res, err := rt.RankTopK(context.Background(), q, 5)
	if err != nil || res.Partial {
		t.Fatalf("post-repair gather: err=%v partial=%v", err, res.Partial)
	}
	if blamed.st.scans.Value() == base {
		t.Fatal("re-admitted replica still not serving")
	}
}

// TestDrainIsLastResort pins the coordinated-drain routing contract: a
// draining replica stops being preferred immediately, but remains a
// last-resort failover target — killing its sibling must fail over to
// it and still produce a whole answer, never a partial one.
func TestDrainIsLastResort(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
	})
	rt.CheckHealth(context.Background())

	nodes[0][0].node.Drain()
	rt.CheckHealth(context.Background())
	draining := rt.ranges[0].list()[0]
	if got := draining.getState(); got != StateDraining {
		t.Fatalf("drained node's replica state = %v, want draining", got)
	}

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q := sampleQuery(t, s, "1p")
	base := draining.st.scans.Value()
	for i := 0; i < 5; i++ {
		res, err := rt.RankTopK(context.Background(), q, 5)
		if err != nil || res.Partial {
			t.Fatalf("gather %d with active sibling: err=%v partial=%v", i, err, res.Partial)
		}
	}
	if draining.st.scans.Value() != base {
		t.Fatal("draining replica served gathers while an active sibling was up")
	}

	// Kill the active sibling: the draining replica is all that is left,
	// and it still answers correctly — that is the point of coordinated
	// drain. The answer must stay whole.
	nodes[0][1].ts.Close()
	res, err := rt.RankTopK(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("gather with only the draining replica: %v", err)
	}
	if res.Partial {
		t.Fatal("failover to the draining replica degraded the answer to partial")
	}
	if draining.st.scans.Value() == base {
		t.Fatal("draining replica did not serve the last-resort failover")
	}
}

// TestDrainedExitReentersViaProbation walks the back half of the state
// machine: draining → down when the process exits, down → probation
// when an "ok" health report returns, probation → active when the probe
// passes — a rolling restart needs no manual step.
func TestDrainedExitReentersViaProbation(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		fastProbes(c)
	})
	rt.CheckHealth(context.Background())

	rep := rt.ranges[0].list()[0]
	nodes[0][0].node.Drain()
	rt.CheckHealth(context.Background())
	if rep.getState() != StateDraining {
		t.Fatalf("state after drain = %v, want draining", rep.getState())
	}

	// The process exits mid-drain: health checks fail, the replica parks
	// Down (not removed — a restart on the same address rejoins in place).
	nodes[0][0].ts.Close()
	rt.CheckHealth(context.Background())
	if rep.getState() != StateDown {
		t.Fatalf("state after exit = %v, want down", rep.getState())
	}

	// "Restart" the process: un-drain the node behind a fresh listener is
	// not possible with httptest, so assert the observable contract on
	// the sibling instead — the down replica re-enters probation when a
	// health check answers ok again. Simulate by draining+restoring the
	// sibling's state transitions directly through CheckHealth against
	// the still-running node 1.
	sibling := rt.ranges[0].list()[1]
	sibling.setState(StateDown)
	rt.CheckHealth(context.Background())
	if got := sibling.getState(); got != StateProbation && got != StateActive {
		t.Fatalf("down replica answering ok = %v, want probation (or already active)", got)
	}
	waitFor(t, 2*time.Second, "returned replica re-admission", func() bool {
		return sibling.getState() == StateActive
	})
	if sibling.st.admissions.Value() == 0 {
		t.Fatal("no admission recorded for the returned replica")
	}
}

// TestQueueDepthWeightsPrimary pins the balancing rule: primary
// selection compares EWMA × (1 + queue depth), so of two equally fast
// replicas the backed-up one sheds new primaries before its latency
// EWMA ever degrades.
func TestQueueDepthWeightsPrimary(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 1, 2, nil)
	rt := newReplicaRouter(t, m, nodes, nil)
	rt.CheckHealth(context.Background())

	shallow, deep := rt.ranges[0].list()[0], rt.ranges[0].list()[1]
	shallow.st.seedEwma(1.0)
	deep.st.seedEwma(1.0)
	shallow.st.setDepth(0)
	deep.st.setDepth(7)
	if got, want := deep.st.score(), 8.0; got != want {
		t.Fatalf("score = %v, want ewma*(1+depth) = %v", got, want)
	}
	for i := 0; i < 20; i++ {
		order := rt.plan(rt.ranges[0])
		if order[0] != shallow {
			t.Fatalf("plan %d preferred the backed-up replica (depth 7) over its idle twin", i)
		}
	}
	// Depth ties break back to the EWMA comparison.
	deep.st.setDepth(0)
	deep.st.seedEwma(0.5)
	for i := 0; i < 20; i++ {
		order := rt.plan(rt.ranges[0])
		if order[0] != deep {
			t.Fatalf("plan %d ignored the faster replica after depths equalised", i)
		}
	}
	_ = ds
}

// TestMembershipChaosRollingRestart is the PR's acceptance chaos suite:
// under sustained query load, every replica of every range is rolled —
// drained, removed from the topology, killed, and replaced by a fresh
// process that joins through probation — and not one answer may be
// partial or deviate by a byte from the healthy baseline.
func TestMembershipChaosRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite in -short mode")
	}
	const nRanges, nReplicas = 3, 2
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, nRanges, nReplicas, nil)
	probeQ := func() *query.Node {
		s := query.NewSampler(ds.Test, rand.New(rand.NewSource(1)))
		q, _ := s.Sample("1p")
		return q
	}()
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		fastProbes(c)
		c.Probe = func() []ArcSpec { return embedFn(m)(probeQ) }
		c.Logf = t.Logf
	})
	rt.CheckHealth(context.Background())
	ents := ds.Train.NumEntities()

	// Baseline answers for the whole load mix, from the healthy topology.
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	type ref struct {
		q    *query.Node
		ids  []uint64
		bits []uint64
	}
	var refs []ref
	for _, kind := range []string{"1p", "2p", "2i"} {
		q := sampleQuery(t, s, kind)
		res, err := rt.RankTopK(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("baseline %s: %v", kind, err)
		}
		r := ref{q: q}
		for i := range res.IDs {
			r.ids = append(r.ids, uint64(res.IDs[i]))
			r.bits = append(r.bits, math.Float64bits(res.Dists[i]))
		}
		refs = append(refs, r)
	}

	// Sustained load: every gather must be whole and byte-identical.
	var (
		stop     atomic.Bool
		gathers  atomic.Int64
		partials atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				r := refs[(w+i)%len(refs)]
				res, err := rt.RankTopK(context.Background(), r.q, 10)
				if err != nil {
					t.Errorf("load gather: %v", err)
					return
				}
				gathers.Add(1)
				if res.Partial {
					partials.Add(1)
					continue
				}
				if len(res.IDs) != len(r.ids) {
					t.Errorf("load gather: %d answers, want %d", len(res.IDs), len(r.ids))
					return
				}
				for j := range r.ids {
					if uint64(res.IDs[j]) != r.ids[j] || math.Float64bits(res.Dists[j]) != r.bits[j] {
						t.Errorf("load gather deviates from baseline at rank %d", j)
						return
					}
				}
			}
		}(w)
	}

	// Roll every replica of every range: drain → leave → kill → join a
	// replacement → wait for its probe to admit it. Each range always
	// keeps at least one serving replica, so no gather ever degrades.
	health := func() { rt.CheckHealth(context.Background()) }
	for ri := 0; ri < nRanges; ri++ {
		for j := 0; j < nReplicas; j++ {
			old := nodes[ri][j]
			old.node.Drain()
			health()

			if err := rt.Leave(old.addr()); err != nil {
				t.Fatalf("Leave(%s): %v", old.addr(), err)
			}
			old.ts.Close()

			fresh := startNode(t, m, ds, rangeLo(ents, nRanges, ri), rangeHi(ents, nRanges, ri), nil)
			nodes[ri][j] = fresh
			if err := rt.Join(ri, fresh.addr()); err != nil {
				t.Fatalf("Join(%d, %s): %v", ri, fresh.addr(), err)
			}
			rep := findReplica(t, rt, ri, fresh.addr())
			waitFor(t, 5*time.Second, "replacement admission", func() bool {
				return rep.getState() == StateActive
			})
		}
	}

	stop.Store(true)
	wg.Wait()
	if g := gathers.Load(); g < 10 {
		t.Fatalf("load loop completed only %d gathers; chaos schedule outpaced it", g)
	}
	if p := partials.Load(); p != 0 {
		t.Fatalf("%d of %d gathers were partial during the rolling restart; want zero", p, gathers.Load())
	}
	t.Logf("rolling restart: %d whole, byte-identical gathers, %d replicas rolled", gathers.Load(), nRanges*nReplicas)
}

// rangeLo is rangeHi's twin.
func rangeLo(ents, n, i int) int {
	lo, _ := Partition(ents, n, i)
	return lo
}
