package cluster

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

func benchQuery(b *testing.B, ds *kg.Dataset) *query.Node {
	b.Helper()
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("2i")
	if !ok {
		b.Fatal("sampling 2i failed")
	}
	return q
}

// BenchmarkClusterRouterLoopback measures router-mode overhead: one
// query scatter-gathered across a 3-node loopback topology — JSON
// encode, three HTTP round-trips over localhost, node-side arc
// preparation, k-way merge. Compare against
// BenchmarkClusterInProcess, the same ranking through the in-process
// 3-shard engine, to read the per-query cost of the network seam.
func BenchmarkClusterRouterLoopback(b *testing.B) {
	m, ds := testModel(61)
	ents := ds.Train.NumEntities()
	addrs := make([]string, 3)
	for i := range addrs {
		lo, hi := Partition(ents, 3, i)
		ranker, err := m.NewRangeRanker(lo, hi, shard.Options{Shards: 1})
		if err != nil {
			b.Fatal(err)
		}
		node, err := NewNode(NodeConfig{Engine: ranker.Engine(), Params: m.ShardParams()})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(node.Handler())
		defer ts.Close()
		defer node.Close()
		addrs[i] = ts.URL
	}
	rt, err := NewRouter(Config{Remotes: addrs, Embed: embedFn(m)})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rt.CheckHealth(context.Background())

	q := benchQuery(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RankTopK(context.Background(), q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterInProcess is the loopback benchmark's baseline: the
// identical query and k through the in-process 3-shard scatter-gather
// engine, no network.
func BenchmarkClusterInProcess(b *testing.B) {
	m, ds := testModel(61)
	ranker, err := m.NewShardedRanker(shard.Options{Shards: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer ranker.Close()

	q := benchQuery(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ranker.RankTopK(context.Background(), q, 10); err != nil {
			b.Fatal(err)
		}
	}
}
