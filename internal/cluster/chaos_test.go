package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
)

// TestChaosMatrix drives the full fault matrix through a 3-node
// loopback topology: {node panic, node slow, node 500} × {one node,
// every node}. One faulty node must degrade the gather to a partial
// answer assembled from the survivors — with the faulty node's range
// absent and its failure counter moving — while every node faulty must
// fail the gather with the engine's all-shards-skipped sentinel (the
// serve layer maps it to 504 exactly as in single-process mode).
func TestChaosMatrix(t *testing.T) {
	const scanTimeout = 150 * time.Millisecond
	kinds := []struct {
		name  string
		fault resil.Fault
		// counter picks the router-side series the fault must move.
		counter func(st *replicaStat) uint64
	}{
		{"panic", resil.Fault{Kind: resil.KindPanic}, func(st *replicaStat) uint64 { return st.errors.Value() }},
		{"slow", resil.Fault{Kind: resil.KindDelay, Delay: 10 * scanTimeout}, func(st *replicaStat) uint64 { return st.timeouts.Value() }},
		{"500", resil.Fault{Kind: resil.KindError}, func(st *replicaStat) uint64 { return st.errors.Value() }},
	}
	for _, kind := range kinds {
		for _, allNodes := range []bool{false, true} {
			scope := "one-node"
			if allNodes {
				scope = "all-nodes"
			}
			t.Run(kind.name+"/"+scope, func(t *testing.T) {
				t.Parallel()
				m, ds := testModel(61)
				nodes := startTopology(t, m, ds, 3, nil)
				rt := newTestRouter(t, m, nodes, func(c *Config) {
					c.ScanTimeout = scanTimeout
				})
				faulty := []int{0}
				if allNodes {
					faulty = []int{0, 1, 2}
				}
				for _, i := range faulty {
					nodes[i].inj.Set(FaultStageScan, resil.AnyShard, kind.fault)
				}

				s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
				q, ok := s.Sample("2i")
				if !ok {
					t.Fatal("sampling 2i failed")
				}
				res, err := rt.RankTopK(context.Background(), q, 10)
				if allNodes {
					if !errors.Is(err, shard.ErrAllShardsSkipped) {
						t.Fatalf("all nodes faulty: err = %v, want shard.ErrAllShardsSkipped", err)
					}
					return
				}
				if err != nil {
					t.Fatalf("one node faulty: %v", err)
				}
				if !res.Partial {
					t.Fatal("one node faulty: result not partial")
				}
				if len(res.Answered) != 2 || len(res.Skipped) != 1 || res.Skipped[0] != 0 {
					t.Fatalf("Answered = %v, Skipped = %v; want node 0 skipped", res.Answered, res.Skipped)
				}
				lo, hi, _, _ := rep0(rt, 0).st.health()
				for _, id := range res.IDs {
					if int(id) >= lo && int(id) < hi {
						t.Fatalf("answer %d falls in the faulty node's range [%d, %d)", id, lo, hi)
					}
				}
				if kind.counter(rep0(rt, 0).st) == 0 {
					t.Fatalf("%s: faulty node's failure counter did not move", kind.name)
				}
				if kind.fault.Kind == resil.KindPanic {
					// The panic was recovered by the node's middleware — one
					// request died, the node survived and counted it.
					if got := nodes[0].node.panics.Value(); got == 0 {
						t.Fatal("node panic counter did not move")
					}
					if _, err := NewRemoteShard(nodes[0].addr(), nil).Health(context.Background()); err != nil {
						t.Fatalf("node did not survive its handler panic: %v", err)
					}
				}
			})
		}
	}
}

// TestRouterHedgeRecoversSlowScan asserts the hedging path end to end
// over HTTP: when a node's first scan wedges, the hedge launched after
// the hedge delay answers instead, and the gather completes whole — no
// partial, no timeout — with the hedge counters moving.
func TestRouterHedgeRecoversSlowScan(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 5 * time.Second
		c.HedgeDelay = 30 * time.Millisecond
	})
	// Exactly one wedged scan: the primary burns the fault, the hedge
	// runs clean.
	nodes[1].inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 2 * time.Second, Count: 1})

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	start := time.Now()
	res, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("RankTopK: %v", err)
	}
	if res.Partial {
		t.Fatal("hedged gather still partial")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("gather took %v; the hedge should have answered well before the wedged primary", elapsed)
	}
	if rep0(rt, 1).st.hedges.Value() == 0 {
		t.Fatal("no hedge recorded for the wedged node")
	}
}

// TestServePartialNeverCached wires the router into the serve stack and
// asserts the invariant extends across the network seam: answers
// assembled while a node is down are served partial and never enter the
// answer cache, so the degraded list disappears as soon as the node
// returns.
func TestServePartialNeverCached(t *testing.T) {
	m, ds := testModel(61)
	nodes := startTopology(t, m, ds, 3, nil)
	rt := newTestRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
	})
	srv, err := serve.New(serve.Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Ranker:    rt,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	post := func() (partial, cached bool) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"structure": "2p", "seed": 5, "k": 8})
		res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/query: %v", err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/query: HTTP %d", res.StatusCode)
		}
		var qr struct {
			Partial bool `json:"partial"`
			Cached  bool `json:"cached"`
		}
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return qr.Partial, qr.Cached
	}

	// Healthy topology: the first answer fills the cache, the repeat
	// hits it.
	if partial, _ := post(); partial {
		t.Fatal("healthy topology answered partial")
	}
	if _, cached := post(); !cached {
		t.Fatal("repeat of a whole answer was not cached")
	}

	// Kill a node and ask a fresh query (different k dodges the cached
	// whole answer): every repetition must stay partial and uncached.
	nodes[2].ts.Close()
	postPartial := func() (partial, cached bool) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"structure": "2p", "seed": 5, "k": 9})
		res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/query: %v", err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/query: HTTP %d", res.StatusCode)
		}
		var qr struct {
			Partial bool `json:"partial"`
			Cached  bool `json:"cached"`
		}
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return qr.Partial, qr.Cached
	}
	for i := 0; i < 3; i++ {
		partial, cached := postPartial()
		if !partial {
			t.Fatalf("request %d with a node down: not partial", i)
		}
		if cached {
			t.Fatalf("request %d: partial answer was served from cache", i)
		}
	}
}
