package cluster

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
)

// TestNodeDrainHealthz pins the drain wire contract: POST /v1/drain
// flips readiness to 503 with a full "draining" health body — which the
// Health client decodes as a report, not an error — while the drain
// channel fires exactly once however many times drain is requested.
func TestNodeDrainHealthz(t *testing.T) {
	m, ds := testModel(61)
	tn := startNode(t, m, ds, 0, ds.Train.NumEntities(), nil)
	remote := NewRemoteShard(tn.addr(), nil)

	h, err := remote.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("pre-drain Health = (%+v, %v), want ok", h, err)
	}
	if tn.node.Draining() {
		t.Fatal("node draining before any drain request")
	}
	select {
	case <-tn.node.DrainC():
		t.Fatal("drain channel fired before any drain request")
	default:
	}

	if err := remote.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !tn.node.Draining() {
		t.Fatal("node not draining after POST /v1/drain")
	}
	select {
	case <-tn.node.DrainC():
	case <-time.After(time.Second):
		t.Fatal("drain channel did not fire")
	}
	// Idempotent: a second request (HTTP or direct) is a no-op.
	if err := remote.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	tn.node.Drain()

	// The raw endpoint answers 503 with the full health body...
	res, err := http.Get(tn.addr() + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET /v1/healthz: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", res.StatusCode)
	}
	// ...and the router's client reads it as a draining report, not an
	// error — that distinction drives the draining-vs-down state split.
	h, err = remote.Health(context.Background())
	if err != nil {
		t.Fatalf("Health of a draining node: %v", err)
	}
	if h.Status != HealthDraining {
		t.Fatalf("draining Health.Status = %q, want %q", h.Status, HealthDraining)
	}
	if h.Lo != 0 || h.Hi != ds.Train.NumEntities() {
		t.Fatalf("draining health lost the hosted range: [%d, %d)", h.Lo, h.Hi)
	}
}

// TestNodeDrainKeepsServingScans is the mid-scan-kill regression: a
// drain arriving while a scan is in flight must not kill it, and scans
// issued after the drain (failover last resorts, stragglers of a
// gather already routed here) still answer — readiness fails first,
// the data path fails never.
func TestNodeDrainKeepsServingScans(t *testing.T) {
	m, ds := testModel(61)
	tn := startNode(t, m, ds, 0, ds.Train.NumEntities(), nil)
	remote := NewRemoteShard(tn.addr(), nil)

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	specs := embedFn(m)(q)

	want, err := remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 5})
	if err != nil {
		t.Fatalf("baseline scan: %v", err)
	}

	// Wedge the next scan long enough to drain mid-flight.
	tn.inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 150 * time.Millisecond, Count: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var midResp *ScanResponse
	var midErr error
	go func() {
		defer wg.Done()
		midResp, midErr = remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 5})
	}()
	time.Sleep(30 * time.Millisecond)
	tn.node.Drain()
	wg.Wait()
	if midErr != nil {
		t.Fatalf("scan in flight when drain arrived: %v", midErr)
	}
	if midResp.Partial {
		t.Fatal("mid-drain scan degraded to partial")
	}

	// A scan issued after the drain still answers byte-identically.
	got, err := remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 5})
	if err != nil {
		t.Fatalf("post-drain scan: %v", err)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("post-drain scan: %d answers, want %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] || math.Float64bits(got.Dists[i]) != math.Float64bits(want.Dists[i]) {
			t.Fatalf("post-drain scan diverges at rank %d", i)
		}
	}
}

// TestNodeQueueDepthReported asserts the inflight gauge rides the wire:
// a node with wedged concurrent scans reports a positive queue depth on
// /v1/healthz, and an idle node reports zero on both surfaces.
func TestNodeQueueDepthReported(t *testing.T) {
	m, ds := testModel(61)
	tn := startNode(t, m, ds, 0, ds.Train.NumEntities(), nil)
	remote := NewRemoteShard(tn.addr(), nil)

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	specs := embedFn(m)(q)

	// Idle: a lone scan reports no other work queued behind it.
	resp, err := remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 5})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if resp.Queue != 0 {
		t.Fatalf("lone scan reported queue depth %d, want 0", resp.Queue)
	}

	// Wedge two scans and watch the health report see them.
	tn.inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 300 * time.Millisecond, Count: 2})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			remote.Scan(context.Background(), &ScanRequest{Arcs: specs, K: 5}) //nolint:errcheck
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	sawDepth := false
	for time.Now().Before(deadline) {
		h, err := remote.Health(context.Background())
		if err == nil && h.Queue >= 1 {
			sawDepth = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if !sawDepth {
		t.Fatal("healthz never reported the wedged scans' queue depth")
	}

	// Back to idle.
	h, err := remote.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Queue != 0 {
		t.Fatalf("idle queue depth = %d, want 0", h.Queue)
	}
}
