package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseTopologyValidation pins the malformed-topology refusals: a
// stray comma in the flag form, a separator-only line in the file form,
// and a duplicate endpoint anywhere all error up front instead of
// producing a half-routed cluster.
func TestParseTopologyValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		list string
	}{
		{"stray-comma", "a:1,,b:1"},
		{"leading-comma", ",a:1"},
		{"trailing-comma", "a:1,"},
		{"dup-across-ranges", "a:1,a:1"},
		{"dup-within-range", "a:1|a:1,b:1"},
		{"dup-across-replica-sets", "a:1|b:1,c:1|a:1"},
	} {
		if got, err := ParseTopology(tc.list, ""); err == nil {
			t.Fatalf("%s: ParseTopology(%q) = %v, want error", tc.name, tc.list, got)
		}
	}

	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		content string
	}{
		{"separator-only-line", "a:1 b:1\n|\nc:1\n"},
		{"dup-in-file", "a:1 b:1\nb:1\n"},
		{"only-comments", "# nothing\n\n# here\n"},
	} {
		file := filepath.Join(dir, tc.name+".txt")
		if err := os.WriteFile(file, []byte(tc.content), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if got, err := ParseTopology("", file); err == nil {
			t.Fatalf("%s: ParseTopology(file) = %v, want error", tc.name, got)
		}
	}

	// Blank and comment-only lines stay fine; dup detection must not trip
	// on distinct addresses sharing a host.
	file := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(file, []byte("# c\na:1 a:2\n\na:3|a:4\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseTopology("", file)
	if err != nil {
		t.Fatalf("ParseTopology(good file): %v", err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("good file parsed to %v", got)
	}
}

// FuzzParseTopology drives the -cluster flag grammar and the
// cluster-file grammar with arbitrary input: parsing must never panic,
// and any topology it accepts must be well-formed — at least one range,
// every range non-empty, no blank addresses, no duplicate endpoint
// anywhere (the property the router's membership layer relies on).
func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{
		"a:9001|b:9001,a:9002|b:9002",
		"a:1,b:1,c:1",
		"a:1|b:1|c:1,a:2",
		",,",
		"a:1,,b:1",
		"a:1,a:1",
		"|",
		"a b\tc\rd",
		"# comment\na:1 b:1\n\na:2|b:2\nc:3 # trailing\n",
		"a:1 b:1\n|\n",
		"\x00",
		strings.Repeat("x,", 64),
	} {
		f.Add(seed, false)
	}
	f.Fuzz(func(t *testing.T, input string, asFile bool) {
		var got [][]string
		var err error
		if asFile {
			file := filepath.Join(t.TempDir(), "cluster.txt")
			if werr := os.WriteFile(file, []byte(input), 0o644); werr != nil {
				t.Skip()
			}
			got, err = ParseTopology("", file)
		} else {
			if input == "" {
				return // empty flag means "no cluster mode", covered elsewhere
			}
			got, err = ParseTopology(input, "")
		}
		if err != nil {
			return
		}
		if len(got) == 0 {
			t.Fatalf("accepted %q as an empty topology", input)
		}
		seen := make(map[string]bool)
		for i, reps := range got {
			if len(reps) == 0 {
				t.Fatalf("accepted %q with empty range %d", input, i)
			}
			for _, addr := range reps {
				if strings.TrimSpace(addr) == "" {
					t.Fatalf("accepted %q with a blank address in range %d", input, i)
				}
				if seen[addr] {
					t.Fatalf("accepted %q with duplicate endpoint %q", input, addr)
				}
				seen[addr] = true
			}
		}
	})
}
