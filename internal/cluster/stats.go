package cluster

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/halk-kg/halk/internal/obs"
)

// ewmaAlpha is the weight of the newest sample in the per-replica
// latency EWMA the primary selection compares. 0.2 keeps roughly the
// last ~10 scans relevant: fast enough to notice a degrading replica
// within a few queries, slow enough that one GC pause does not flip the
// primary.
const ewmaAlpha = 0.2

// replicaStat holds one replica's counters as handles into the obs
// registry — the replica mirror of the engine's per-shard stats, one
// series family per outcome, labelled node="addr" and range="i" so
// /metrics tells the replicas of a range apart. Everything is atomic
// (or under the small health mutex), so scatter goroutines publish and
// the stats reader observes without blocking a gather.
type replicaStat struct {
	scans        *obs.Counter   // completed replica scans
	timeouts     *obs.Counter   // scans abandoned on the per-attempt deadline
	errors       *obs.Counter   // transport failures and non-2xx replies
	breakerSkips *obs.Counter   // attempts refused up front by an open breaker
	hedges       *obs.Counter   // hedge scans this replica received
	hedgeWins    *obs.Counter   // gathers this replica's hedge scan won
	scanMs       *obs.Histogram // completed-scan latency
	lastMs       *obs.Gauge
	maxMs        *obs.Gauge
	up           *obs.Gauge // 1 = last health check answered, 0 = down
	versionG     *obs.Gauge // entity version the replica last reported

	probes     *obs.Counter // identity/read-repair probe scans issued to this replica
	probeFails *obs.Counter // probes that failed (health, boundary, version or identity mismatch)
	admissions *obs.Counter // times a passed probe (re-)admitted this replica
	depthG     *obs.Gauge   // queue depth the replica last reported

	// ewmaBits is the scan-latency EWMA in ms (float64 bits; 0 =
	// unseeded). The router's power-of-two-choices primary selection
	// compares it, so it must be readable without taking a lock.
	ewmaBits atomic.Uint64

	// depth is the replica's last-reported concurrent-scan queue depth
	// (scan responses and health reports both feed it). Primary
	// selection weighs the latency EWMA by it: score = ewma × (1+depth).
	depth atomic.Int64

	// version is the replica's last-known entity version, fed by both
	// health sweeps and scan responses; the router pins gathers to
	// replicas whose known version matches the served one.
	version atomic.Uint64

	// Range and liveness as of the last health check (the router's view
	// of the replica, exported through ShardStats/ReplicaStats).
	mu      sync.Mutex
	lo, hi  int
	healthy bool
}

// newReplicaStat registers replica (ri, addr)'s series on reg.
func newReplicaStat(reg *obs.Registry, ri int, addr string) *replicaStat {
	ls := []obs.Label{obs.L("node", addr), obs.L("range", strconv.Itoa(ri))}
	return &replicaStat{
		scans:        reg.Counter("halk_replica_scans_total", "Completed replica scans.", ls...),
		timeouts:     reg.Counter("halk_replica_timeouts_total", "Replica scans abandoned on the per-attempt deadline.", ls...),
		errors:       reg.Counter("halk_replica_errors_total", "Replica scans failed by transport errors or non-2xx replies.", ls...),
		breakerSkips: reg.Counter("halk_replica_breaker_skips_total", "Replica attempts refused up front by an open circuit breaker.", ls...),
		hedges:       reg.Counter("halk_replica_hedges_total", "Hedge scans issued to this replica after the hedge delay.", ls...),
		hedgeWins:    reg.Counter("halk_replica_hedge_wins_total", "Gathers where this replica's hedge scan finished first.", ls...),
		scanMs:       reg.Histogram("halk_replica_scan_duration_ms", "Latency of completed replica scans in milliseconds.", obs.LatencyBuckets, ls...),
		lastMs:       reg.Gauge("halk_replica_last_scan_ms", "Latency of the most recent completed replica scan.", ls...),
		maxMs:        reg.Gauge("halk_replica_max_scan_ms", "Worst completed replica-scan latency since process start.", ls...),
		up:           reg.Gauge("halk_replica_up", "1 when the replica answered its last health check, else 0.", ls...),
		versionG:     reg.Gauge("halk_replica_entity_version", "Entity-table version the replica last reported.", ls...),
		probes:       reg.Counter("halk_replica_probes_total", "Off-path identity/read-repair probe scans issued to this replica.", ls...),
		probeFails:   reg.Counter("halk_replica_probe_failures_total", "Probe scans that failed a health, boundary, version or identity check.", ls...),
		admissions:   reg.Counter("halk_replica_admissions_total", "Times a passed probe (re-)admitted this replica to the failover pool.", ls...),
		depthG:       reg.Gauge("halk_replica_queue_depth", "Concurrent-scan queue depth the replica last reported.", ls...),
	}
}

// record folds one completed scan into the counters and the EWMA.
func (st *replicaStat) record(ms float64) {
	st.scans.Inc()
	st.scanMs.Observe(ms)
	st.lastMs.Set(ms)
	st.maxMs.SetMax(ms)
	for {
		old := st.ewmaBits.Load()
		cur := math.Float64frombits(old)
		next := ms
		if old != 0 {
			next = (1-ewmaAlpha)*cur + ewmaAlpha*ms
		}
		if st.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ewma returns the latency EWMA in ms, or +Inf while unseeded so a
// never-scanned replica loses a power-of-two-choices comparison against
// any replica with an observed latency (and ties break on the sampling
// order, i.e. randomly).
func (st *replicaStat) ewma() float64 {
	bits := st.ewmaBits.Load()
	if bits == 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(bits)
}

// ewmaMs is the stats-surface view of the EWMA: 0 while unseeded.
func (st *replicaStat) ewmaMs() float64 {
	bits := st.ewmaBits.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// seedEwma overwrites the latency EWMA. The re-admission path calls it
// with the replica set's mean so a replica returning from a bad spell
// is neither dogpiled (a stale tiny EWMA would beat every sibling) nor
// shunned (a stale inflated one — or the unseeded +Inf — would lose
// every power-of-two comparison). ms <= 0 resets to unseeded.
func (st *replicaStat) seedEwma(ms float64) {
	if ms <= 0 {
		st.ewmaBits.Store(0)
		return
	}
	st.ewmaBits.Store(math.Float64bits(ms))
}

// setDepth records the queue depth the replica last reported.
func (st *replicaStat) setDepth(d int) {
	if d < 0 {
		d = 0
	}
	st.depth.Store(int64(d))
	st.depthG.Set(float64(d))
}

// score is what primary selection compares: the latency EWMA weighted
// by the replica's reported queue depth, ewma × (1 + depth) — two
// replicas with equal observed latency split primaries by backlog, and
// a backed-up replica sheds new work before its EWMA degrades. +Inf
// while the EWMA is unseeded, exactly like ewma().
func (st *replicaStat) score() float64 {
	return st.ewma() * (1 + float64(st.depth.Load()))
}

// setHealth records a health-check outcome: the replica's reported
// range and version on success, down on failure.
func (st *replicaStat) setHealth(h *Health, ok bool) {
	st.mu.Lock()
	st.healthy = ok
	if ok {
		st.lo, st.hi = h.Lo, h.Hi
	}
	st.mu.Unlock()
	if ok {
		st.setVersion(h.EntityVersion)
		st.setDepth(h.Queue)
		st.up.Set(1)
	} else {
		st.up.Set(0)
	}
}

// setVersion records the replica's last-known entity version (health
// sweeps and scan responses both feed it, so pinning stays fresh
// between polls).
func (st *replicaStat) setVersion(v uint64) {
	st.version.Store(v)
	st.versionG.Set(float64(v))
}

// health returns the last health-check view.
func (st *replicaStat) health() (lo, hi int, version uint64, healthy bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lo, st.hi, st.version.Load(), st.healthy
}
