package cluster

import (
	"sync"

	"github.com/halk-kg/halk/internal/obs"
)

// remoteStat holds one remote slot's counters as handles into the obs
// registry — the cluster mirror of the engine's per-shard stats, one
// series family per outcome, labelled node="addr" so /metrics tells the
// remotes apart. Everything is atomic (or under the small range mutex),
// so scatter goroutines publish and the stats reader observes without
// blocking a gather.
type remoteStat struct {
	scans        *obs.Counter   // completed remote scans
	timeouts     *obs.Counter   // scans abandoned on the per-remote deadline
	errors       *obs.Counter   // transport failures and non-2xx replies
	breakerSkips *obs.Counter   // scans refused up front by an open breaker
	hedges       *obs.Counter   // hedge scans issued
	hedgeWins    *obs.Counter   // gathers where the hedge finished first
	scanMs       *obs.Histogram // completed-scan latency
	lastMs       *obs.Gauge
	maxMs        *obs.Gauge
	up           *obs.Gauge // 1 = last health check answered, 0 = down
	versionG     *obs.Gauge // entity version the node last reported

	// Range and version as of the last successful health check (the
	// router's view of the node, exported through ShardStats).
	mu      sync.Mutex
	lo, hi  int
	version uint64
	healthy bool
}

// newRemoteStats registers the per-remote series (labelled node="addr")
// on reg.
func newRemoteStats(reg *obs.Registry, addrs []string) []*remoteStat {
	out := make([]*remoteStat, len(addrs))
	for i, addr := range addrs {
		l := obs.L("node", addr)
		out[i] = &remoteStat{
			scans:        reg.Counter("halk_remote_scans_total", "Completed remote shard scans.", l),
			timeouts:     reg.Counter("halk_remote_timeouts_total", "Remote scans abandoned on the per-remote deadline.", l),
			errors:       reg.Counter("halk_remote_errors_total", "Remote scans failed by transport errors or non-2xx replies.", l),
			breakerSkips: reg.Counter("halk_remote_breaker_skips_total", "Remote scans refused up front by an open circuit breaker.", l),
			hedges:       reg.Counter("halk_remote_hedges_total", "Hedge scans issued after the per-remote hedge delay.", l),
			hedgeWins:    reg.Counter("halk_remote_hedge_wins_total", "Gathers where the hedge scan finished before the primary.", l),
			scanMs:       reg.Histogram("halk_remote_scan_duration_ms", "Latency of completed remote scans in milliseconds.", obs.LatencyBuckets, l),
			lastMs:       reg.Gauge("halk_remote_last_scan_ms", "Latency of the most recent completed remote scan.", l),
			maxMs:        reg.Gauge("halk_remote_max_scan_ms", "Worst completed remote-scan latency since process start.", l),
			up:           reg.Gauge("halk_remote_up", "1 when the node answered its last health check, else 0.", l),
			versionG:     reg.Gauge("halk_remote_entity_version", "Entity-table version the node last reported.", l),
		}
	}
	return out
}

func (st *remoteStat) record(ms float64) {
	st.scans.Inc()
	st.scanMs.Observe(ms)
	st.lastMs.Set(ms)
	st.maxMs.SetMax(ms)
}

// setHealth records a health-check outcome: the node's reported range
// and version on success, down on failure.
func (st *remoteStat) setHealth(h *Health, ok bool) {
	st.mu.Lock()
	st.healthy = ok
	if ok {
		st.lo, st.hi, st.version = h.Lo, h.Hi, h.EntityVersion
	}
	st.mu.Unlock()
	if ok {
		st.up.Set(1)
		st.versionG.Set(float64(h.EntityVersion))
	} else {
		st.up.Set(0)
	}
}

// health returns the last health-check view.
func (st *remoteStat) health() (lo, hi int, version uint64, healthy bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lo, st.hi, st.version, st.healthy
}
