package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
)

// startReplicatedTopology starts nReplicas loopback nodes per range,
// every replica of a range hosting the same [lo, hi) slice of the same
// model — the process layout of a replicated deployment.
func startReplicatedTopology(t *testing.T, m *halk.Model, ds *kg.Dataset, nRanges, nReplicas int, mutate func(*NodeConfig)) [][]*testNode {
	t.Helper()
	ents := ds.Train.NumEntities()
	nodes := make([][]*testNode, nRanges)
	for i := 0; i < nRanges; i++ {
		lo, hi := Partition(ents, nRanges, i)
		for j := 0; j < nReplicas; j++ {
			nodes[i] = append(nodes[i], startNode(t, m, ds, lo, hi, mutate))
		}
	}
	return nodes
}

func rangesOf(nodes [][]*testNode) [][]string {
	out := make([][]string, len(nodes))
	for i, reps := range nodes {
		for _, tn := range reps {
			out[i] = append(out[i], tn.addr())
		}
	}
	return out
}

func newReplicaRouter(t *testing.T, m *halk.Model, nodes [][]*testNode, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Ranges:  rangesOf(nodes),
		Embed:   embedFn(m),
		Metrics: obs.NewRegistry(),
		Seed:    1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	rt.CheckHealth(context.Background())
	return rt
}

// preferReplica seeds the EWMAs so plan() deterministically picks
// range ri's replica pi as primary (the seeded replica looks fast,
// its siblings slow) — the handle chaos tests use to aim a fault at
// the replica the router will actually try first.
func preferReplica(rt *Router, ri, pi int) {
	for j, rep := range rt.ranges[ri].list() {
		if j == pi {
			rep.st.record(0.01)
		} else {
			rep.st.record(1000)
		}
	}
}

// TestReplicaFailoverByteIdentity is the tentpole acceptance test: in a
// 2-replica 3-range topology with one replica per range faulty — and
// deliberately preferred as primary — every query must fail over to the
// sibling and return Partial=false answers byte-identical to a
// single-process 3-shard engine. One dead node per range costs a
// failover, never answer completeness.
func TestReplicaFailoverByteIdentity(t *testing.T) {
	const scanTimeout = 250 * time.Millisecond
	kinds := []struct {
		name  string
		fault *resil.Fault // nil = kill the listener outright
	}{
		{"kill", nil},
		{"panic", &resil.Fault{Kind: resil.KindPanic}},
		{"delay", &resil.Fault{Kind: resil.KindDelay, Delay: 10 * scanTimeout}},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			m, ds := testModel(61)
			nodes := startReplicatedTopology(t, m, ds, 3, 2, nil)
			rt := newReplicaRouter(t, m, nodes, func(c *Config) {
				c.ScanTimeout = scanTimeout
			})
			for ri := range nodes {
				preferReplica(rt, ri, 0)
				if kind.fault != nil {
					nodes[ri][0].inj.Set(FaultStageScan, resil.AnyShard, *kind.fault)
				} else {
					nodes[ri][0].ts.Close()
				}
			}

			ref, err := m.NewShardedRanker(shard.Options{Shards: 3})
			if err != nil {
				t.Fatalf("NewShardedRanker: %v", err)
			}
			defer ref.Close()

			s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
			const k = 12
			for _, structure := range query.StructureNames() {
				q, ok := s.Sample(structure)
				if !ok {
					t.Fatalf("sampling %s failed", structure)
				}
				want, err := ref.RankTopK(context.Background(), q, k)
				if err != nil {
					t.Fatalf("%s: reference RankTopK: %v", structure, err)
				}
				got, err := rt.RankTopK(context.Background(), q, k)
				if err != nil {
					t.Fatalf("%s: router RankTopK: %v", structure, err)
				}
				if got.Partial {
					t.Fatalf("%s: partial answer despite a live sibling in every range", structure)
				}
				if len(got.IDs) != len(want.IDs) {
					t.Fatalf("%s: got %d answers, want %d", structure, len(got.IDs), len(want.IDs))
				}
				for i := range want.IDs {
					if got.IDs[i] != want.IDs[i] || math.Float64bits(got.Dists[i]) != math.Float64bits(want.Dists[i]) {
						t.Fatalf("%s: answer %d = (%d, %x), want (%d, %x)", structure, i,
							got.IDs[i], math.Float64bits(got.Dists[i]), want.IDs[i], math.Float64bits(want.Dists[i]))
					}
				}
			}
			var failovers uint64
			for _, rs := range rt.ranges {
				failovers += rs.failovers.Value()
			}
			if failovers == 0 {
				t.Fatal("no failovers recorded while every preferred primary was faulty")
			}
		})
	}
}

// TestReplicaAllReplicasDownPartial pins the degradation floor: with
// every replica of one range dead, the answer degrades to Partial=true
// with that range skipped — exactly the 1-replica contract — while the
// other ranges still answer.
func TestReplicaAllReplicasDownPartial(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 3, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
	})
	deadLo, deadHi, _, _ := rt.ranges[1].list()[0].st.health()
	if deadHi <= deadLo {
		t.Fatal("health sweep did not record range 1")
	}
	nodes[1][0].ts.Close()
	nodes[1][1].ts.Close()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("2i")
	if !ok {
		t.Fatal("sampling 2i failed")
	}
	res, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("RankTopK with a whole replica set down: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not partial with every replica of range 1 dead")
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != 1 {
		t.Fatalf("Skipped = %v, want [1]", res.Skipped)
	}
	for _, id := range res.IDs {
		if int(id) >= deadLo && int(id) < deadHi {
			t.Fatalf("answer %d falls in the dead range [%d, %d)", id, deadLo, deadHi)
		}
	}
	if rt.ranges[1].failovers.Value() == 0 {
		t.Fatal("no failover recorded before the set was exhausted")
	}
}

// TestReplicaBreakerSiblingServes asserts the breaker composes with
// failover: repeated failures open the dead replica's breaker, later
// gathers skip it up front and go straight to the sibling, and the
// answers stay whole throughout — the breaker never opens on the
// healthy sibling.
func TestReplicaBreakerSiblingServes(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
		c.Breaker = &resil.BreakerConfig{
			Window:            8,
			FailureRate:       0.5,
			ConsecutiveMisses: 2,
			OpenBase:          time.Minute, // stays open for the whole test
			OpenMax:           time.Minute,
			Seed:              1,
		}
	})
	preferReplica(rt, 0, 0)
	nodes[0][0].ts.Close()

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	for i := 0; i < 5; i++ {
		res, err := rt.RankTopK(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
		if res.Partial {
			t.Fatalf("gather %d: partial despite a live sibling", i)
		}
	}
	dead, sibling := rt.ranges[0].list()[0], rt.ranges[0].list()[1]
	if dead.breaker.State() == resil.Closed {
		t.Fatal("dead replica's breaker still closed after repeated failures")
	}
	if dead.st.breakerSkips.Value() == 0 {
		t.Fatal("no breaker skips recorded after the breaker opened")
	}
	if sibling.breaker.State() != resil.Closed {
		t.Fatal("healthy sibling's breaker opened")
	}
	if rt.ranges[0].failovers.Value() == 0 {
		t.Fatal("no failovers recorded for the dead primary")
	}
}

// TestReplicaHedgeGoesToSibling asserts the hedging upgrade: in a
// replica set the hedge is issued to a *different* replica, so a wedged
// node cannot wedge its own hedge. The wedged primary's hedge counter
// must stay zero while the sibling records both the hedge and the win.
func TestReplicaHedgeGoesToSibling(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 5 * time.Second
		c.HedgeDelay = 30 * time.Millisecond
	})
	preferReplica(rt, 0, 0)
	// Wedge every scan on the preferred primary: only the sibling can
	// answer range 0, and only via the hedge (the primary never fails
	// fast, so failover never fires).
	nodes[0][0].inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 2 * time.Second})

	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
	q, ok := s.Sample("1p")
	if !ok {
		t.Fatal("sampling 1p failed")
	}
	start := time.Now()
	res, err := rt.RankTopK(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("RankTopK: %v", err)
	}
	if res.Partial {
		t.Fatal("hedged gather partial")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("gather took %v; the sibling hedge should have answered well before the wedged primary", elapsed)
	}
	primary, sibling := rt.ranges[0].list()[0], rt.ranges[0].list()[1]
	if sibling.st.hedges.Value() == 0 || sibling.st.hedgeWins.Value() == 0 {
		t.Fatalf("sibling hedges = %d, wins = %d; want both > 0",
			sibling.st.hedges.Value(), sibling.st.hedgeWins.Value())
	}
	if primary.st.hedges.Value() != 0 {
		t.Fatal("hedge was issued back to the wedged primary")
	}
}

// TestReplicaMixedVersionRollout drives a staggered checkpoint rollout
// where one replica per range lags: the served version flips as soon as
// every range has a replica on the new version (range quorum), gathers
// pin to version-consistent replicas, and the answers stay whole —
// Partial=false — through every stage. A mixed-version merge must never
// happen silently.
func TestReplicaMixedVersionRollout(t *testing.T) {
	const nRanges, nReplicas = 3, 2
	// Distinct identically-seeded models per replica so entity versions
	// bump independently, as across real processes.
	ms := make([][]*halk.Model, nRanges)
	var ds *kg.Dataset
	nodes := make([][]*testNode, nRanges)
	for i := 0; i < nRanges; i++ {
		ms[i] = make([]*halk.Model, nReplicas)
		for j := 0; j < nReplicas; j++ {
			ms[i][j], ds = testModel(61)
		}
	}
	ents := ds.Train.NumEntities()
	for i := 0; i < nRanges; i++ {
		lo, hi := Partition(ents, nRanges, i)
		for j := 0; j < nReplicas; j++ {
			nodes[i] = append(nodes[i], startNode(t, ms[i][j], ds, lo, hi, nil))
		}
	}
	rt := newReplicaRouter(t, ms[0][0], nodes, nil)

	v0 := ms[0][0].EntityVersion()
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("initial served version = %d, want %d", got, v0)
	}
	whole := func(stage string) *shard.Result {
		t.Helper()
		s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))
		q, ok := s.Sample("2p")
		if !ok {
			t.Fatal("sampling 2p failed")
		}
		res, err := rt.RankTopK(context.Background(), q, 8)
		if err != nil {
			t.Fatalf("%s: RankTopK: %v", stage, err)
		}
		if res.Partial {
			t.Fatalf("%s: answer partial — a gather mixed entity versions or lost a range", stage)
		}
		return res
	}
	bump := func(i, j int) {
		ms[i][j].MarkEntitiesUpdated()
		if err := nodes[i][j].ranker.Refresh(); err != nil {
			t.Fatalf("replica (%d,%d) refresh: %v", i, j, err)
		}
	}

	// Stage 1: replica 1 of range 0 upgrades. No quorum (ranges 1 and 2
	// have no upgraded replica): the served version holds and gathers
	// pin to the v0 replicas.
	bump(0, 1)
	rt.CheckHealth(context.Background())
	if got := rt.SnapshotVersion(); got != v0 {
		t.Fatalf("served version flipped with 1/3 ranges upgraded: %d, want %d", got, v0)
	}
	if res := whole("one range upgraded"); res.Version != v0 {
		t.Fatalf("mid-rollout result version = %d, want %d", res.Version, v0)
	}

	// Stage 2: one replica per range is on the new version, its sibling
	// lags. Every range is quorum-ready, so the served version flips and
	// gathers pin to the upgraded replicas — whole answers on the new
	// version while half the fleet still runs the old one.
	bump(1, 1)
	bump(2, 1)
	rt.CheckHealth(context.Background())
	v1 := ms[0][1].EntityVersion()
	if got := rt.SnapshotVersion(); got != v1 {
		t.Fatalf("served version after range quorum = %d, want %d", got, v1)
	}
	if res := whole("one replica per range lagging"); res.Version != v1 {
		t.Fatalf("post-flip result version = %d, want %d", res.Version, v1)
	}
	for ri := 0; ri < nRanges; ri++ {
		if p := rt.ranges[ri].primary.Load(); p != rt.ranges[ri].list()[1] {
			t.Fatalf("range %d primary = %v; gathers must pin to the v%d replica", ri, p, v1)
		}
	}

	// Stage 3: the laggards catch up; nothing changes for clients.
	bump(0, 0)
	bump(1, 0)
	bump(2, 0)
	rt.CheckHealth(context.Background())
	if res := whole("rollout complete"); res.Version != v1 {
		t.Fatalf("post-rollout result version = %d, want %d", res.Version, v1)
	}
}

// TestReplicaMergeRefusesVersionSkew pins the invariant directly on the
// merge: local lists from two entity versions must never fold into a
// clean answer — the result is flagged Partial (and therefore never
// cached), whatever pinning failed to prevent it.
func TestReplicaMergeRefusesVersionSkew(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 1, nil)
	rt := newReplicaRouter(t, m, nodes, nil)
	locals := []remoteLocal{
		{ids: []kg.EntityID{1}, d: []float64{0.1}, version: 7},
		{ids: []kg.EntityID{2}, d: []float64{0.2}, version: 8},
	}
	res, err := rt.merge(locals, 2)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !res.Partial {
		t.Fatal("mixed-version merge not marked partial")
	}
}

// TestReplicaServeCacheWithReplicaKilled is the acceptance check across
// the serve stack: with one replica killed in every range, /v1/query
// and /v1/batch answer Partial=false, the answers enter the cache, and
// /v1/stats exposes the replica topology with the failovers that kept
// the answers whole.
func TestReplicaServeCacheWithReplicaKilled(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 3, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 2 * time.Second
	})
	srv, err := serve.New(serve.Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Ranker:    rt,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	for ri := range nodes {
		preferReplica(rt, ri, 0)
		nodes[ri][0].ts.Close()
	}

	post := func(path string, body map[string]any) map[string]any {
		t.Helper()
		b, _ := json.Marshal(body)
		res, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: HTTP %d", path, res.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return out
	}

	// /v1/query: whole despite the dead primaries, then served from
	// cache — the exact opposite of the 1-replica contract, where a dead
	// node means partial-and-never-cached.
	q := map[string]any{"structure": "2p", "seed": 5, "k": 8}
	if out := post("/v1/query", q); out["partial"] == true {
		t.Fatal("/v1/query partial with a live sibling in every range")
	}
	if out := post("/v1/query", q); out["cached"] != true {
		t.Fatal("whole answer over a degraded topology was not cached")
	}

	// /v1/batch: same contract per slot.
	batch := map[string]any{"queries": []map[string]any{{"structure": "2i", "seed": 7}, {"structure": "1p", "seed": 9}}, "k": 6}
	out := post("/v1/batch", batch)
	for i, r := range out["results"].([]any) {
		if r.(map[string]any)["partial"] == true {
			t.Fatalf("batch slot %d partial with a live sibling in every range", i)
		}
	}
	out = post("/v1/batch", batch)
	for i, r := range out["results"].([]any) {
		if r.(map[string]any)["cached"] != true {
			t.Fatalf("batch slot %d not cached on repeat", i)
		}
	}

	// /v1/stats: the ranges block reports the topology and the failovers
	// that kept the answers whole.
	res, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer res.Body.Close()
	var stats struct {
		Ranges []serve.RangeReplicaStats `json:"ranges"`
	}
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if len(stats.Ranges) != 3 {
		t.Fatalf("stats report %d ranges, want 3", len(stats.Ranges))
	}
	var failovers uint64
	for _, rr := range stats.Ranges {
		if len(rr.Replicas) != 2 {
			t.Fatalf("range %d reports %d replicas, want 2", rr.Range, len(rr.Replicas))
		}
		failovers += rr.Failovers
	}
	if failovers == 0 {
		t.Fatal("stats report no failovers despite dead primaries")
	}
}

// TestRouterCloseDrainsReplicaScans is the leak regression test for the
// replica path: gathers that already returned to the caller — answered
// by a failover or a hedge while a wedged attempt still sleeps — must
// not leak their attempt goroutines past Close.
func TestRouterCloseDrainsReplicaScans(t *testing.T) {
	m, ds := testModel(61)
	nodes := startReplicatedTopology(t, m, ds, 2, 2, nil)
	rt := newReplicaRouter(t, m, nodes, func(c *Config) {
		c.ScanTimeout = 5 * time.Second
		c.HedgeDelay = 10 * time.Millisecond
	})
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(62)))

	// Baseline after a clean warm-up gather, so the topology's own
	// steady-state goroutines — httptest accept loops, keep-alive
	// connections — are not mistaken for leaks.
	if q, ok := s.Sample("1p"); !ok {
		t.Fatal("sampling 1p failed")
	} else if _, err := rt.RankTopK(context.Background(), q, 5); err != nil {
		t.Fatalf("warm-up gather: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// Both preferred primaries wedge for 400ms: each range answers via
	// its sibling's hedge while the primary attempt is still in flight.
	for ri := range nodes {
		preferReplica(rt, ri, 0)
		nodes[ri][0].inj.Set(FaultStageScan, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 400 * time.Millisecond})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		q, ok := s.Sample("1p")
		if !ok {
			t.Fatal("sampling 1p failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rt.RankTopK(context.Background(), q, 5)
			if err != nil || res.Partial {
				t.Errorf("hedged gather: err = %v, partial = %v", err, res != nil && res.Partial)
			}
		}()
	}
	wg.Wait()

	closeStart := time.Now()
	rt.Close()
	waited := time.Since(closeStart)
	// The gathers answered via hedges long before the wedged primaries'
	// 400ms sleeps finished; a Close that truly awaits stragglers must
	// have blocked for a noticeable part of the remainder.
	if waited > 2*time.Second {
		t.Fatalf("Close blocked %v; stragglers should clear within their scan sleep", waited)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, baseline %d — replica scans leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParseTopology pins the flag and file formats, including the
// pre-replica 1-address forms that must parse unchanged.
func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		name string
		list string
		want [][]string
	}{
		{"legacy-flat", "a:1,b:1,c:1", [][]string{{"a:1"}, {"b:1"}, {"c:1"}}},
		{"replicated", "a:1|b:1,a:2|b:2", [][]string{{"a:1", "b:1"}, {"a:2", "b:2"}}},
		{"ragged", "a:1|b:1|c:1,a:2", [][]string{{"a:1", "b:1", "c:1"}, {"a:2"}}},
	} {
		got, err := ParseTopology(tc.list, "")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d ranges, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range tc.want {
			if len(got[i]) != len(tc.want[i]) {
				t.Fatalf("%s: range %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
			for j := range tc.want[i] {
				if got[i][j] != tc.want[i][j] {
					t.Fatalf("%s: range %d = %v, want %v", tc.name, i, got[i], tc.want[i])
				}
			}
		}
	}

	if _, err := ParseTopology("a:1", "somefile"); err == nil {
		t.Fatal("list+file accepted; want mutual-exclusion error")
	}
	if got, err := ParseTopology("", ""); got != nil || err != nil {
		t.Fatalf("empty config = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := ParseTopology(",,", ""); err == nil {
		t.Fatal("empty topology accepted")
	}

	dir := t.TempDir()
	file := dir + "/cluster.txt"
	content := "# range 0\na:1 b:1\n\n# range 1\na:2|b:2\nc:3  # trailing comment\n"
	if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
		t.Fatalf("write cluster file: %v", err)
	}
	got, err := ParseTopology("", file)
	if err != nil {
		t.Fatalf("ParseTopology(file): %v", err)
	}
	want := [][]string{{"a:1", "b:1"}, {"a:2", "b:2"}, {"c:3"}}
	if len(got) != len(want) {
		t.Fatalf("file topology = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("file range %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("file range %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}
