package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// StatusError is a non-2xx reply from a node, carrying the decoded
// error body when one was present. It feeds the router's typed failure
// classification: any StatusError is a remote-local fault (the node was
// reachable but could not answer) and counts against that remote's
// circuit breaker.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("cluster: remote returned HTTP %d", e.Code)
	}
	return fmt.Sprintf("cluster: remote returned HTTP %d: %s", e.Code, e.Msg)
}

// NewHTTPClient returns the HTTP client the cluster client code shares:
// keep-alive connection reuse sized for scatter fan-out (every query
// hits every node, so idle connections per host are worth keeping), and
// no client-level timeout — deadlines ride the request context, derived
// per scan from the gather budget.
func NewHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// DoJSON sends in (nil for a bodyless request) to url with the given
// method and decodes a 2xx reply into out (nil discards the body). A
// non-2xx reply returns *StatusError with the body's "error" field;
// transport failures (connection refused, context deadline) return the
// underlying error, which preserves errors.Is(err, context.DeadlineExceeded)
// through net/http's wrapping.
func DoJSON(ctx context.Context, hc *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(res.Body, 4096)).Decode(&eb)
		return &StatusError{Code: res.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode response: %w", err)
	}
	return nil
}

// RemoteShard implements the shard scan seam over one node's HTTP API.
// It is stateless apart from the shared connection pool; the router
// layers breakers, hedging and stats on top, exactly as the in-process
// engine layers them on local scan goroutines.
type RemoteShard struct {
	addr string // as configured (host:port or URL), for labels and logs
	base string // http://host:port
	hc   *http.Client
}

// NewRemoteShard builds a client for the node at addr ("host:port", or
// a full URL). hc nil means NewHTTPClient(); pass one shared client for
// a whole topology so connections pool across remotes.
func NewRemoteShard(addr string, hc *http.Client) *RemoteShard {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if hc == nil {
		hc = NewHTTPClient()
	}
	return &RemoteShard{addr: addr, base: base, hc: hc}
}

// Addr returns the configured node address (metric label, log key).
func (r *RemoteShard) Addr() string { return r.addr }

// Scan runs one remote top-K scan. The context bounds the request end
// to end; the node additionally honours req.TimeoutMS server-side.
func (r *RemoteShard) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	var resp ScanResponse
	if err := DoJSON(ctx, r.hc, http.MethodPost, r.base+"/v1/scan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the node's readiness report. A draining node answers
// 503 with the full report in the body (Status "draining"); that is a
// real, decodable health state — the router must see it to take the
// node out of primary rotation — so it is returned as (h, nil) rather
// than a StatusError. Any other non-2xx, or a 503 without a decodable
// status, is an error.
func (r *RemoteShard) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode/100 == 2 || res.StatusCode == http.StatusServiceUnavailable {
		var h Health
		if derr := json.NewDecoder(io.LimitReader(res.Body, 1<<20)).Decode(&h); derr == nil && h.Status != "" {
			return &h, nil
		} else if res.StatusCode/100 == 2 {
			return nil, fmt.Errorf("cluster: decode health response: %w", derr)
		}
	}
	return nil, &StatusError{Code: res.StatusCode}
}

// Drain asks the node to begin a coordinated shutdown: fail readiness,
// finish in-flight scans, exit after its drain grace. Idempotent.
func (r *RemoteShard) Drain(ctx context.Context) error {
	return DoJSON(ctx, r.hc, http.MethodPost, r.base+"/v1/drain", nil, nil)
}
