package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/resil"
)

func testModel(t *testing.T, seed int64) (*halk.Model, *kg.Dataset) {
	t.Helper()
	ds := kg.SynthFB237(seed)
	cfg := halk.DefaultConfig(seed)
	cfg.Dim = 8
	cfg.Hidden = 16
	cfg.NumGroups = 4
	return halk.New(ds.Train, cfg), ds
}

// nonEdges returns n add-records for triples not currently in g.
func nonEdges(t *testing.T, g *kg.Graph, n int, seed int64) []Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	seen := make(map[kg.Triple]bool)
	for len(recs) < n {
		tr := g.Triples()[rng.Intn(g.NumTriples())]
		cand := kg.Triple{H: tr.H, R: tr.R, T: kg.EntityID(rng.Intn(g.NumEntities()))}
		if seen[cand] || g.HasTriple(cand.H, cand.R, cand.T) {
			continue
		}
		seen[cand] = true
		recs = append(recs, Record{Op: OpAdd, H: cand.H, R: cand.R, T: cand.T})
	}
	return recs
}

func newIngester(t *testing.T, m *halk.Model, dir string, mutate func(*Config)) *Ingester {
	t.Helper()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:    m,
		WAL:      w,
		Interval: 5 * time.Millisecond,
		FineTune: halk.FineTuneConfig{Seed: 42},
		Logf:     t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func entSnapshot(m *halk.Model) []float64 {
	out := make([]float64, 0, m.Graph().NumEntities()*8)
	for e := 0; e < m.Graph().NumEntities(); e++ {
		out = append(out, append([]float64(nil), m.EntityAngles(kg.EntityID(e))...)...)
	}
	return out
}

func TestIngesterReplayAppliesEdges(t *testing.T) {
	m, _ := testModel(t, 1)
	dir := t.TempDir()
	in := newIngester(t, m, dir, nil)
	recs := nonEdges(t, m.Graph(), 5, 2)
	before := entSnapshot(m)
	v0 := m.EntityVersion()

	seq, err := in.Submit(recs)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if err := in.Replay(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if !m.Graph().HasTriple(r.H, r.R, r.T) {
			t.Fatalf("edge %+v not in graph after replay", r.Triple())
		}
	}
	if m.EntityVersion() <= v0 {
		t.Fatal("entity version did not move")
	}
	after := entSnapshot(m)
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("no embedding changed")
	}
	st := in.Stats()
	if st.AppliedEdges != 5 || st.MemAppliedSeq != 1 || st.FineTuneSteps == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestIngesterCrashReplayDeterminism is the durability core: a fresh
// process (same base model, same WAL directory) replays to byte-
// identical embeddings — the in-memory fine-tune state is fully
// reconstructible from base checkpoint + WAL.
func TestIngesterCrashReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	m1, _ := testModel(t, 7)
	in1 := newIngester(t, m1, dir, nil)
	for i := 0; i < 3; i++ {
		if _, err := in1.Submit(nonEdges(t, m1.Graph(), 4, int64(100+i))); err != nil {
			t.Fatal(err)
		}
		if err := in1.Replay(); err != nil {
			t.Fatal(err)
		}
	}
	// Mixed batch with removals of freshly added edges.
	mix := []Record{}
	for _, r := range nonEdges(t, m1.Graph(), 2, 500) {
		mix = append(mix, r)
	}
	tr := m1.Graph().Triples()[0]
	mix = append(mix, Record{Op: OpRemove, H: tr.H, R: tr.R, T: tr.T})
	if _, err := in1.Submit(mix); err != nil {
		t.Fatal(err)
	}
	if err := in1.Replay(); err != nil {
		t.Fatal(err)
	}
	want := entSnapshot(m1)

	// "Crash": new model from the same seed, reopen the same WAL.
	m2, _ := testModel(t, 7)
	in2 := newIngester(t, m2, dir, nil)
	if err := in2.Replay(); err != nil {
		t.Fatal(err)
	}
	got := entSnapshot(m2)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("replay diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
	if m2.Graph().HasTriple(tr.H, tr.R, tr.T) {
		t.Fatal("removed triple still present after replay")
	}
}

// TestIngesterDoubleApplyNoOp: applying the same segment twice in one
// process is a no-op — the cursor skips it and, even when forced, the
// graph operations are no-ops so no fine-tune runs.
func TestIngesterDoubleApplyNoOp(t *testing.T) {
	m, _ := testModel(t, 9)
	in := newIngester(t, m, t.TempDir(), nil)
	seq, err := in.Submit(nonEdges(t, m.Graph(), 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if did, err := in.applySegment(seq); err != nil || !did {
		t.Fatalf("first apply: did=%v err=%v", did, err)
	}
	snap := entSnapshot(m)
	v := m.EntityVersion()
	// Cursor-guarded second apply.
	if did, err := in.applySegment(seq); err != nil || did {
		t.Fatalf("second apply: did=%v err=%v, want no-op", did, err)
	}
	// Forced re-application (cursor rolled back by hand): every add is a
	// duplicate, so the model must stay byte-identical.
	in.mu.Lock()
	in.memApplied = 0
	in.mu.Unlock()
	if did, err := in.applySegment(seq); err != nil || did {
		t.Fatalf("forced re-apply: did=%v err=%v, want graph-level no-op", did, err)
	}
	after := entSnapshot(m)
	for i := range snap {
		if snap[i] != after[i] {
			t.Fatal("forced re-apply mutated embeddings")
		}
	}
	if m.EntityVersion() != v {
		t.Fatal("forced re-apply bumped version")
	}
	if in.Stats().SkippedEdges != 3 {
		t.Fatalf("skipped = %d, want 3", in.Stats().SkippedEdges)
	}
}

func TestIngesterSubmitValidation(t *testing.T) {
	m, _ := testModel(t, 13)
	in := newIngester(t, m, t.TempDir(), nil)
	n := kg.EntityID(m.Graph().NumEntities())
	cases := []Record{
		{Op: OpAdd, H: n, R: 0, T: 0},
		{Op: OpAdd, H: 0, R: kg.RelationID(m.Graph().NumRelations()), T: 1},
		{Op: 99, H: 0, R: 0, T: 1},
	}
	for _, rec := range cases {
		if _, err := in.Submit([]Record{rec}); err == nil {
			t.Fatalf("accepted invalid record %+v", rec)
		}
	}
	if in.cfg.WAL.PendingCount() != 0 {
		t.Fatal("invalid submission reached the WAL")
	}
}

func TestIngesterBackpressure(t *testing.T) {
	m, _ := testModel(t, 15)
	in := newIngester(t, m, t.TempDir(), func(c *Config) { c.MaxPending = 2 })
	recs := nonEdges(t, m.Graph(), 1, 17)
	for i := 0; i < 2; i++ {
		if _, err := in.Submit(recs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.Submit(recs); !errors.Is(err, ErrBacklog) {
		t.Fatalf("err = %v, want ErrBacklog", err)
	}
}

// TestIngesterBackpressureMeasuresDrainerLag: the backlog that sheds
// writes is the drainer's lag, not the durable cursor's — without a
// Persist hook, segments stay on disk forever, and counting them would
// permanently wedge the write path after MaxPending lifetime batches.
func TestIngesterBackpressureMeasuresDrainerLag(t *testing.T) {
	m, _ := testModel(t, 16)
	in := newIngester(t, m, t.TempDir(), func(c *Config) { c.MaxPending = 2 })
	// Fill, drain, and repeat well past MaxPending total batches: every
	// drained cycle must reopen admission even though nothing is pruned.
	for round := 0; round < 3; round++ {
		for i := 0; i < 2; i++ {
			if _, err := in.Submit(nonEdges(t, m.Graph(), 1, int64(100*round+i))); err != nil {
				t.Fatalf("round %d submit %d: %v", round, i, err)
			}
		}
		if _, err := in.Submit(nonEdges(t, m.Graph(), 1, int64(100*round+7))); !errors.Is(err, ErrBacklog) {
			t.Fatalf("round %d: lagging drainer did not shed: %v", round, err)
		}
		if err := in.Replay(); err != nil {
			t.Fatal(err)
		}
	}
	if pc := in.cfg.WAL.PendingCount(); pc != 6 {
		t.Fatalf("retained segments = %d, want 6 (nothing pruned without Persist)", pc)
	}
	if _, err := in.Submit(nonEdges(t, m.Graph(), 1, 999)); err != nil {
		t.Fatalf("write path wedged after %d lifetime batches: %v", 6, err)
	}
}

// TestIngesterReplayBatchSizeInvariance: the micro-batch size is pinned
// into each segment at append time, so restarting with a different
// -ingest-batch replays already-logged segments into byte-identical
// embeddings (the (seq, batch) fine-tune seeds only reproduce the
// original update if chunk boundaries match).
func TestIngesterReplayBatchSizeInvariance(t *testing.T) {
	dir := t.TempDir()
	m1, _ := testModel(t, 21)
	in1 := newIngester(t, m1, dir, func(c *Config) { c.BatchSize = 3 })
	// 7 records -> chunks of 3+3+1 under the append-time size.
	if _, err := in1.Submit(nonEdges(t, m1.Graph(), 7, 300)); err != nil {
		t.Fatal(err)
	}
	if err := in1.Replay(); err != nil {
		t.Fatal(err)
	}
	want := entSnapshot(m1)

	// "Restart" with a much larger configured batch size: the stored
	// per-segment size must win, or the 7 records fold as one chunk and
	// every seed/boundary changes.
	m2, _ := testModel(t, 21)
	in2 := newIngester(t, m2, dir, func(c *Config) { c.BatchSize = 64 })
	if err := in2.Replay(); err != nil {
		t.Fatal(err)
	}
	got := entSnapshot(m2)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("replay with changed batch size diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestIngesterMidSegmentFailureIsFatal: a failure after a chunk's graph
// mutations landed must not be retried — the landed mutations would
// replay as no-ops with no fine-tune signal, silently diverging from
// what a crash-and-replay reconstructs. The drain loop must hand the
// segment to Fatalf (crash-only) and keep the cursor unmoved.
func TestIngesterMidSegmentFailureIsFatal(t *testing.T) {
	m, _ := testModel(t, 27)
	inj := resil.NewInjector()
	var fatals []string
	in := newIngester(t, m, t.TempDir(), func(c *Config) {
		c.Inject = inj
		c.Fatalf = func(format string, args ...any) {
			fatals = append(fatals, fmt.Sprintf(format, args...))
		}
	})
	if _, err := in.Submit(nonEdges(t, m.Graph(), 2, 31)); err != nil {
		t.Fatal(err)
	}

	inj.Set(FaultStageFineTune, resil.AnyShard, resil.Fault{Kind: resil.KindError, Err: resil.ErrInjected, Count: 1})
	in.drainOnce()
	if len(fatals) != 1 {
		t.Fatalf("fatals = %v, want exactly one crash-only escalation", fatals)
	}
	if in.Stats().MemAppliedSeq != 0 {
		t.Fatal("fatal apply advanced the in-memory cursor")
	}

	// The same failure during synchronous Replay surfaces as a typed
	// FatalApplyError so the caller (halk-serve startup) crashes too.
	// Fresh model and injector: the first attempt's landed mutations would
	// otherwise make the retry a graph no-op that never reaches the seam.
	m2, _ := testModel(t, 27)
	inj2 := resil.NewInjector()
	in2 := newIngester(t, m2, t.TempDir(), func(c *Config) { c.Inject = inj2 })
	seq, err := in2.Submit(nonEdges(t, m2.Graph(), 2, 31))
	if err != nil {
		t.Fatal(err)
	}
	inj2.Set(FaultStageFineTune, resil.AnyShard, resil.Fault{Kind: resil.KindError, Err: resil.ErrInjected, Count: 1})
	var fatal *FatalApplyError
	if err := in2.Replay(); !errors.As(err, &fatal) || fatal.Seq != seq {
		t.Fatalf("Replay err = %v, want FatalApplyError for segment %d", err, seq)
	}
}

func TestIngesterBackgroundDrainAndPublish(t *testing.T) {
	m, _ := testModel(t, 19)
	published := make(chan []kg.EntityID, 16)
	in := newIngester(t, m, t.TempDir(), func(c *Config) {
		c.Publish = func(dirty []kg.EntityID) error {
			published <- append([]kg.EntityID(nil), dirty...)
			return nil
		}
	})
	in.Start()
	defer in.Close()
	recs := nonEdges(t, m.Graph(), 4, 23)
	seq, err := in.Submit(recs)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case dirty := <-published:
		if len(dirty) == 0 {
			t.Fatal("published empty dirty set")
		}
		has := make(map[kg.EntityID]bool)
		for _, e := range dirty {
			has[e] = true
		}
		for _, r := range recs {
			if !has[r.H] || !has[r.T] {
				t.Fatalf("dirty set missing %+v", r.Triple())
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish never happened")
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.Stats().MemAppliedSeq < seq {
		if time.Now().After(deadline) {
			t.Fatalf("drain never caught up: %+v", in.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngesterFaultSeams drives the three injector seams: an append
// fault rejects the submission before anything is logged; an apply
// fault leaves the segment pending for retry; a publish fault retains
// the dirty set until a later cycle succeeds.
func TestIngesterFaultSeams(t *testing.T) {
	m, _ := testModel(t, 25)
	inj := resil.NewInjector()
	var pubs int
	in := newIngester(t, m, t.TempDir(), func(c *Config) {
		c.Inject = inj
		c.Publish = func(dirty []kg.EntityID) error { pubs++; return nil }
	})
	recs := nonEdges(t, m.Graph(), 2, 29)

	inj.Set(FaultStageAppend, resil.AnyShard, resil.Fault{Kind: resil.KindError, Err: resil.ErrInjected, Count: 1})
	if _, err := in.Submit(recs); !errors.Is(err, resil.ErrInjected) {
		t.Fatalf("append fault not surfaced: %v", err)
	}
	if in.cfg.WAL.PendingCount() != 0 {
		t.Fatal("faulted append left a segment behind")
	}

	if _, err := in.Submit(recs); err != nil {
		t.Fatal(err)
	}
	inj.Set(FaultStageApply, resil.AnyShard, resil.Fault{Kind: resil.KindError, Err: resil.ErrInjected, Count: 1})
	in.drainOnce() // fault consumes the first apply attempt
	if in.Stats().MemAppliedSeq != 0 {
		t.Fatal("faulted apply advanced the cursor")
	}
	inj.Set(FaultStagePublish, resil.AnyShard, resil.Fault{Kind: resil.KindError, Err: resil.ErrInjected, Count: 1})
	in.drainOnce() // apply succeeds, publish faults
	st := in.Stats()
	if st.MemAppliedSeq != 1 {
		t.Fatalf("apply did not recover: %+v", st)
	}
	if st.DirtyUnpublished == 0 || pubs != 0 {
		t.Fatalf("publish fault did not retain dirty set: %+v, pubs=%d", st, pubs)
	}
	in.drainOnce() // publish retries and succeeds
	st = in.Stats()
	if st.DirtyUnpublished != 0 || pubs != 1 || st.PublishFailures != 1 {
		t.Fatalf("publish retry failed: %+v, pubs=%d", st, pubs)
	}
}

// TestIngesterPersistAdvancesWAL: with a Persist hook, applied segments
// are pruned once the model state is durable, and a reopened WAL has
// nothing to replay.
func TestIngesterPersistAdvancesWAL(t *testing.T) {
	m, _ := testModel(t, 33)
	dir := t.TempDir()
	persisted := 0
	in := newIngester(t, m, dir, func(c *Config) {
		c.Persist = func() error { persisted++; return nil }
		c.PersistEvery = 2
	})
	for i := 0; i < 2; i++ {
		if _, err := in.Submit(nonEdges(t, m.Graph(), 2, int64(41+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Replay(); err != nil {
		t.Fatal(err)
	}
	if persisted != 1 {
		t.Fatalf("persisted %d times, want 1", persisted)
	}
	if in.cfg.WAL.AppliedSeq() != 2 || in.cfg.WAL.PendingCount() != 0 {
		t.Fatalf("WAL not advanced: applied=%d pending=%d", in.cfg.WAL.AppliedSeq(), in.cfg.WAL.PendingCount())
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Pending()) != 0 {
		t.Fatalf("reopened WAL still pending %v", w2.Pending())
	}
}

func TestIngesterSubmitAfterClose(t *testing.T) {
	m, _ := testModel(t, 37)
	in := newIngester(t, m, t.TempDir(), nil)
	in.Start()
	in.Close()
	in.Close() // idempotent
	if _, err := in.Submit(nonEdges(t, m.Graph(), 1, 43)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
