package ingest

import (
	"testing"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/shard"
)

// BenchmarkIngestApply measures the write-side hot path: one WAL
// segment (16 edges) durably appended, loaded, folded into the graph
// and fine-tuned into the embeddings with the deterministic dirty-set
// SGD step.
func BenchmarkIngestApply(b *testing.B) {
	m := benchModel(b, 61)
	wal, err := OpenWAL(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	in, err := New(Config{Model: m, WAL: wal, FineTune: halk.FineTuneConfig{Seed: 9}, Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close()
	recs := benchNonEdges(b, m.Graph(), 16, 5)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate add/remove of the same batch so the graph stays
		// bounded and every edge is a real mutation with a fine-tune step.
		for j := range recs {
			if i%2 == 0 {
				recs[j].Op = OpAdd
			} else {
				recs[j].Op = OpRemove
			}
		}
		if _, err := in.Submit(recs); err != nil {
			b.Fatal(err)
		}
		if err := in.Replay(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestPublish measures the read-side cost of a delta
// publication: rebuilding only the shards owning dirty entities and
// swapping the snapshot into a live 4-shard engine.
func BenchmarkIngestPublish(b *testing.B) {
	m := benchModel(b, 61)
	ranker, err := m.NewShardedRanker(shard.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer ranker.Close()
	recs := benchNonEdges(b, m.Graph(), 4, 5)
	triples := make([]kg.Triple, len(recs))
	for i, r := range recs {
		triples[i] = r.Triple()
	}
	res, err := m.FineTuneEdges(triples, nil, halk.FineTuneConfig{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkEntitiesUpdated() // a publish is only triggered by a version bump
		if err := ranker.RefreshDirty(res.DirtyEntities); err != nil {
			b.Fatal(err)
		}
	}
}

func benchModel(b *testing.B, seed int64) *halk.Model {
	b.Helper()
	ds := kg.SynthFB237(seed)
	cfg := halk.DefaultConfig(seed)
	cfg.Dim, cfg.Hidden, cfg.NumGroups = 8, 16, 4
	return halk.New(ds.Train, cfg)
}

func benchNonEdges(b *testing.B, g *kg.Graph, n int, seed int64) []Record {
	b.Helper()
	recs := make([]Record, 0, n)
	for h := kg.EntityID(0); h < kg.EntityID(g.NumEntities()) && len(recs) < n; h++ {
		for ri := 0; ri < g.NumRelations() && len(recs) < n; ri++ {
			r := kg.RelationID(ri)
			succ := g.Successors(h, r)
			if len(succ) == 0 {
				continue
			}
			have := make(map[kg.EntityID]struct{}, len(succ))
			for _, e := range succ {
				have[e] = struct{}{}
			}
			for cand := kg.EntityID(0); cand < kg.EntityID(g.NumEntities()); cand++ {
				if _, ok := have[cand]; !ok && cand != h {
					recs = append(recs, Record{Op: OpAdd, H: h, R: r, T: cand})
					break
				}
			}
		}
	}
	if len(recs) < n {
		b.Fatalf("found %d non-edges, want %d", len(recs), n)
	}
	return recs
}
