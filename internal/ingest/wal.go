// Package ingest implements the live-graph ingest subsystem: a
// crash-safe write-ahead log of edge mutations (additions and removals
// of triples), a background drainer that folds logged edges into the
// model with bounded dirty-set fine-tune steps, and a delta-snapshot
// publisher that pushes the result through the established
// Swap/entity-version machinery so version-namespaced caches invalidate
// precisely.
//
// Durability model: fine-tuned embeddings live in memory, so the WAL —
// not the model — is the system of record for accepted edges. A
// submitted batch is durable once its WAL segment is on disk; after a
// crash the server replays every segment past the durable APPLIED
// cursor onto the reloaded base — the original checkpoint, or the last
// persisted state file (SaveState/LoadState) — and because each
// segment's fine-tune step is deterministic (seeded by segment
// sequence, with micro-batch boundaries pinned per segment at append
// time), replay reconstructs the pre-crash embeddings bit for bit. The
// APPLIED cursor only advances — and segments are only pruned — when
// the caller confirms the model state covering them has itself been
// made durable.
package ingest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
)

// Op says what a Record does to the graph.
type Op uint8

const (
	// OpAdd inserts the triple.
	OpAdd Op = iota
	// OpRemove deletes the triple.
	OpRemove
)

// Record is one logged edge mutation.
type Record struct {
	Op Op
	H  kg.EntityID
	R  kg.RelationID
	T  kg.EntityID
}

// Triple returns the record's triple.
func (r Record) Triple() kg.Triple { return kg.Triple{H: r.H, R: r.R, T: r.T} }

const (
	segPrefix   = "wal-"
	segSuffix   = ".wal"
	appliedName = "APPLIED"
)

// ErrGap marks a WAL whose segment sequence has a hole below its
// highest pending segment: a segment that was durably acknowledged is
// gone (quarantined as corrupt, or deleted out of band). Replaying the
// segments above the hole would fabricate a model state that never
// existed — the durability and bit-identical-replay contracts are
// already broken — so Open refuses instead of continuing past it. The
// operator must restore the missing segment (its `.bad` twin, a backup)
// or explicitly discard the log.
var ErrGap = errors.New("ingest: wal segment sequence gap")

// segPayload is the gob payload of one segment: the records plus the
// fine-tune micro-batch size pinned at append time. Replay splits the
// segment into the same micro-batches it was first applied with, so the
// reconstruction is bit-identical even if -ingest-batch changes across
// restarts.
type segPayload struct {
	BatchSize int
	Recs      []Record
}

// WAL is the crash-safe edge log. Each Append writes one segment file
// (`wal-<seq>.wal`) holding the gob-encoded payload — the records plus
// the micro-batch size they are applied with — inside a ckpt
// envelope (magic + version + CRC-32C footer) via the same
// temp → fsync → rename discipline as checkpoints: a crash mid-append
// publishes nothing — the torn temp file is ignored and removed on the
// next Open. Segments are strictly sequenced; the APPLIED manifest (a
// ckpt envelope around the last durably-applied sequence) marks the
// replay floor.
//
// All methods are safe for concurrent use.
type WAL struct {
	dir string

	mu          sync.Mutex
	nextSeq     uint64
	applied     uint64
	pending     []uint64 // sorted sequences > applied still on disk
	quarantined int
}

// OpenWAL opens (creating if needed) the log directory, quarantines
// unreadable or corrupt segment files by renaming them to `<name>.bad`,
// removes abandoned temp files, and loads the APPLIED cursor. A corrupt
// or missing APPLIED manifest resets the cursor to 0 — replaying
// already-applied segments is safe because segment application is
// deterministic and replay always starts from the durable base model.
//
// A quarantined (or missing) segment *below* the highest pending one is
// a hole in the replay sequence: Open fails with ErrGap rather than
// silently dropping acknowledged edges and applying the segments above
// them. A corrupt *newest* segment leaves no hole — the log truncates to
// a valid prefix (the pre-batch state), which still loses that batch to
// bit rot but never diverges replay; it is quarantined and surfaced via
// Quarantined.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	w := &WAL{dir: dir, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	manifestLost := false // APPLIED existed but was corrupt: true floor unknown
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.Contains(name, ".tmp-"):
			// Torn write from a crash mid-append; it was never published.
			os.Remove(filepath.Join(dir, name))
			continue
		case name == appliedName:
			raw, err := ckpt.ReadFile(filepath.Join(dir, name))
			if err != nil {
				w.quarantine(name)
				manifestLost = true
				continue
			}
			var seq uint64
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&seq); err != nil {
				w.quarantine(name)
				manifestLost = true
				continue
			}
			w.applied = seq
			continue
		case !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix):
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			w.quarantine(name)
			continue
		}
		// Verify the envelope now so a bit-flipped segment is quarantined
		// at open instead of poisoning replay later.
		if _, err := ckpt.ReadFile(filepath.Join(dir, name)); err != nil {
			w.quarantine(name)
			continue
		}
		if seq >= w.nextSeq {
			w.nextSeq = seq + 1
		}
		w.pending = append(w.pending, seq)
	}
	sort.Slice(w.pending, func(i, j int) bool { return w.pending[i] < w.pending[j] })
	// Drop segments at or below the durable cursor (already folded into a
	// persisted model) from the replay list.
	for len(w.pending) > 0 && w.pending[0] <= w.applied {
		w.pending = w.pending[1:]
	}
	if w.applied >= w.nextSeq {
		w.nextSeq = w.applied + 1
	}
	// Refuse holes below the highest pending segment. Sequences are dense
	// by construction (Append consumes a sequence only on a successful
	// publish) and pruning removes only segments at or below the APPLIED
	// cursor, so with a trusted cursor the survivors must be exactly
	// applied+1 .. max. When the cursor itself was quarantined the true
	// replay floor is unknown — legitimately pruned segments are
	// indistinguishable from lost ones — so only internal contiguity can
	// be checked.
	if len(w.pending) > 0 {
		expect := w.applied + 1
		if manifestLost {
			expect = w.pending[0]
		}
		for _, seq := range w.pending {
			if seq != expect {
				return nil, fmt.Errorf("%w: segment %d is missing below pending segment %d in %s (quarantined as corrupt, or deleted); restore it or discard the log",
					ErrGap, expect, w.pending[len(w.pending)-1], dir)
			}
			expect++
		}
	}
	return w, nil
}

func (w *WAL) quarantine(name string) {
	os.Rename(filepath.Join(w.dir, name), filepath.Join(w.dir, name+".bad"))
	w.quarantined++
}

func (w *WAL) segPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix))
}

// Append durably logs one batch of records as the next segment and
// returns its sequence number. batchSize is the fine-tune micro-batch
// size stored with the segment so every future replay splits it
// identically. The write is crash-atomic: either the whole segment is
// published or nothing is.
func (w *WAL) Append(recs []Record, batchSize int) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("ingest: empty batch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.nextSeq
	err := ckpt.WriteFile(w.segPath(seq), func(f io.Writer) error {
		return gob.NewEncoder(f).Encode(segPayload{BatchSize: batchSize, Recs: recs})
	})
	if err != nil {
		return 0, fmt.Errorf("ingest: append segment %d: %w", seq, err)
	}
	w.nextSeq = seq + 1
	w.pending = append(w.pending, seq)
	return seq, nil
}

// Load reads and verifies one segment, returning its records and the
// micro-batch size it was appended with.
func (w *WAL) Load(seq uint64) ([]Record, int, error) {
	raw, err := ckpt.ReadFile(w.segPath(seq))
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: load segment %d: %w", seq, err)
	}
	var seg segPayload
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&seg); err != nil {
		return nil, 0, fmt.Errorf("ingest: decode segment %d: %w", seq, err)
	}
	return seg.Recs, seg.BatchSize, nil
}

// Pending returns the sequences past the durable APPLIED cursor, in
// order. These are the segments a restart must replay.
func (w *WAL) Pending() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]uint64(nil), w.pending...)
}

// PendingCount reports how many segments await durable application.
func (w *WAL) PendingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// PendingCountAfter reports how many pending segments have sequences
// strictly greater than seq — with the in-memory apply cursor as seq,
// the segments the drainer has not yet folded into the model. This is
// the admission-control backlog: segments the drainer *has* applied but
// that await a durable persist do not delay writes, only pruning.
func (w *WAL) PendingCountAfter(seq uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := sort.Search(len(w.pending), func(i int) bool { return w.pending[i] > seq })
	return len(w.pending) - i
}

// AppliedSeq reports the durable APPLIED cursor: every segment at or
// below it is folded into a persisted model state.
func (w *WAL) AppliedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applied
}

// NextSeq reports the sequence the next Append will use.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Quarantined reports how many corrupt files Open set aside.
func (w *WAL) Quarantined() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.quarantined
}

// Advance durably moves the APPLIED cursor to seq and prunes segments
// at or below it. Call it only once the model state covering those
// segments is itself durable (e.g. a checkpoint was written): advancing
// earlier would skip their replay after a crash and silently lose the
// edges. The manifest write is crash-atomic; pruning is best-effort
// (a leftover pruned segment is re-ignored at the next Open).
func (w *WAL) Advance(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.applied {
		return nil
	}
	err := ckpt.WriteFile(filepath.Join(w.dir, appliedName), func(f io.Writer) error {
		return gob.NewEncoder(f).Encode(seq)
	})
	if err != nil {
		return fmt.Errorf("ingest: advance applied cursor: %w", err)
	}
	w.applied = seq
	for len(w.pending) > 0 && w.pending[0] <= seq {
		os.Remove(w.segPath(w.pending[0]))
		w.pending = w.pending[1:]
	}
	return nil
}

// Compact removes every on-disk segment wholly covered by the durable
// APPLIED cursor — segments Advance's best-effort pruning left behind
// (a crash between the manifest write and the prune, files restored
// from backup, a cursor inherited from another process) — and returns
// how many it disposed of. With a non-empty archiveDir the segments
// are moved there instead of deleted, preserving an audit trail of
// every accepted edge. Call it after OpenWAL on long-lived servers so
// dead segments stop accumulating.
//
// Compact never touches replay state: only files *at or below* the
// cursor qualify, pending segments are all above it by construction,
// and quarantined `.bad` twins, temp files and the APPLIED manifest
// are never candidates. When Open quarantined the manifest the cursor
// reset to 0 and no segment is below it, so a WAL whose true replay
// floor is unknown compacts nothing.
func (w *WAL) Compact(archiveDir string) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return 0, fmt.Errorf("ingest: compact wal: %w", err)
	}
	if archiveDir != "" {
		if err := os.MkdirAll(archiveDir, 0o755); err != nil {
			return 0, fmt.Errorf("ingest: compact wal: %w", err)
		}
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil || seq > w.applied {
			continue
		}
		path := filepath.Join(w.dir, name)
		if archiveDir != "" {
			err = os.Rename(path, filepath.Join(archiveDir, name))
		} else {
			err = os.Remove(path)
		}
		if err != nil {
			return n, fmt.Errorf("ingest: compact segment %d: %w", seq, err)
		}
		n++
	}
	return n, nil
}
