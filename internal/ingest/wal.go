// Package ingest implements the live-graph ingest subsystem: a
// crash-safe write-ahead log of edge mutations (additions and removals
// of triples), a background drainer that folds logged edges into the
// model with bounded dirty-set fine-tune steps, and a delta-snapshot
// publisher that pushes the result through the established
// Swap/entity-version machinery so version-namespaced caches invalidate
// precisely.
//
// Durability model: fine-tuned embeddings live in memory, so the WAL —
// not the model — is the system of record for accepted edges. A
// submitted batch is durable once its WAL segment is on disk; after a
// crash the server replays every segment past the durable APPLIED
// cursor onto the reloaded base checkpoint, and because each segment's
// fine-tune step is deterministic (seeded by segment sequence), replay
// reconstructs the pre-crash embeddings bit for bit. The APPLIED cursor
// only advances — and segments are only pruned — when the caller
// confirms the model state covering them has itself been made durable.
package ingest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
)

// Op says what a Record does to the graph.
type Op uint8

const (
	// OpAdd inserts the triple.
	OpAdd Op = iota
	// OpRemove deletes the triple.
	OpRemove
)

// Record is one logged edge mutation.
type Record struct {
	Op Op
	H  kg.EntityID
	R  kg.RelationID
	T  kg.EntityID
}

// Triple returns the record's triple.
func (r Record) Triple() kg.Triple { return kg.Triple{H: r.H, R: r.R, T: r.T} }

const (
	segPrefix   = "wal-"
	segSuffix   = ".wal"
	appliedName = "APPLIED"
)

// WAL is the crash-safe edge log. Each Append writes one segment file
// (`wal-<seq>.wal`) holding the gob-encoded records inside a ckpt
// envelope (magic + version + CRC-32C footer) via the same
// temp → fsync → rename discipline as checkpoints: a crash mid-append
// publishes nothing — the torn temp file is ignored and removed on the
// next Open. Segments are strictly sequenced; the APPLIED manifest (a
// ckpt envelope around the last durably-applied sequence) marks the
// replay floor.
//
// All methods are safe for concurrent use.
type WAL struct {
	dir string

	mu          sync.Mutex
	nextSeq     uint64
	applied     uint64
	pending     []uint64 // sorted sequences > applied still on disk
	quarantined int
}

// OpenWAL opens (creating if needed) the log directory, quarantines
// unreadable or corrupt segment files by renaming them to `<name>.bad`,
// removes abandoned temp files, and loads the APPLIED cursor. A corrupt
// or missing APPLIED manifest resets the cursor to 0 — replaying
// already-applied segments is safe because segment application is
// deterministic and replay always starts from the durable base model.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	w := &WAL{dir: dir, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.Contains(name, ".tmp-"):
			// Torn write from a crash mid-append; it was never published.
			os.Remove(filepath.Join(dir, name))
			continue
		case name == appliedName:
			raw, err := ckpt.ReadFile(filepath.Join(dir, name))
			if err != nil {
				w.quarantine(name)
				continue
			}
			var seq uint64
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&seq); err != nil {
				w.quarantine(name)
				continue
			}
			w.applied = seq
			continue
		case !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix):
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			w.quarantine(name)
			continue
		}
		// Verify the envelope now so a bit-flipped segment is quarantined
		// at open instead of poisoning replay later.
		if _, err := ckpt.ReadFile(filepath.Join(dir, name)); err != nil {
			w.quarantine(name)
			continue
		}
		if seq >= w.nextSeq {
			w.nextSeq = seq + 1
		}
		w.pending = append(w.pending, seq)
	}
	sort.Slice(w.pending, func(i, j int) bool { return w.pending[i] < w.pending[j] })
	// Drop segments at or below the durable cursor (already folded into a
	// persisted model) from the replay list.
	for len(w.pending) > 0 && w.pending[0] <= w.applied {
		w.pending = w.pending[1:]
	}
	if w.applied >= w.nextSeq {
		w.nextSeq = w.applied + 1
	}
	return w, nil
}

func (w *WAL) quarantine(name string) {
	os.Rename(filepath.Join(w.dir, name), filepath.Join(w.dir, name+".bad"))
	w.quarantined++
}

func (w *WAL) segPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix))
}

// Append durably logs one batch of records as the next segment and
// returns its sequence number. The write is crash-atomic: either the
// whole segment is published or nothing is.
func (w *WAL) Append(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("ingest: empty batch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.nextSeq
	err := ckpt.WriteFile(w.segPath(seq), func(f io.Writer) error {
		return gob.NewEncoder(f).Encode(recs)
	})
	if err != nil {
		return 0, fmt.Errorf("ingest: append segment %d: %w", seq, err)
	}
	w.nextSeq = seq + 1
	w.pending = append(w.pending, seq)
	return seq, nil
}

// Load reads and verifies one segment's records.
func (w *WAL) Load(seq uint64) ([]Record, error) {
	raw, err := ckpt.ReadFile(w.segPath(seq))
	if err != nil {
		return nil, fmt.Errorf("ingest: load segment %d: %w", seq, err)
	}
	var recs []Record
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&recs); err != nil {
		return nil, fmt.Errorf("ingest: decode segment %d: %w", seq, err)
	}
	return recs, nil
}

// Pending returns the sequences past the durable APPLIED cursor, in
// order. These are the segments a restart must replay.
func (w *WAL) Pending() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]uint64(nil), w.pending...)
}

// PendingCount reports how many segments await durable application.
func (w *WAL) PendingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// AppliedSeq reports the durable APPLIED cursor: every segment at or
// below it is folded into a persisted model state.
func (w *WAL) AppliedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applied
}

// NextSeq reports the sequence the next Append will use.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Quarantined reports how many corrupt files Open set aside.
func (w *WAL) Quarantined() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.quarantined
}

// Advance durably moves the APPLIED cursor to seq and prunes segments
// at or below it. Call it only once the model state covering those
// segments is itself durable (e.g. a checkpoint was written): advancing
// earlier would skip their replay after a crash and silently lose the
// edges. The manifest write is crash-atomic; pruning is best-effort
// (a leftover pruned segment is re-ignored at the next Open).
func (w *WAL) Advance(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.applied {
		return nil
	}
	err := ckpt.WriteFile(filepath.Join(w.dir, appliedName), func(f io.Writer) error {
		return gob.NewEncoder(f).Encode(seq)
	})
	if err != nil {
		return fmt.Errorf("ingest: advance applied cursor: %w", err)
	}
	w.applied = seq
	for len(w.pending) > 0 && w.pending[0] <= seq {
		os.Remove(w.segPath(w.pending[0]))
		w.pending = w.pending[1:]
	}
	return nil
}
