package ingest

import (
	"testing"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
)

// stateLookup regenerates the synthetic dataset a state header names,
// the way halk-serve's datasetFor does.
func stateLookup(t *testing.T) func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
	t.Helper()
	return func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
		return kg.SynthFB237(hdr.Seed).Train, nil
	}
}

// TestStatePersistRoundTrip is the durable-ingest core: persisting the
// fine-tuned state prunes the WAL, and a restart from the state file —
// not the base checkpoint — reproduces the exact (graph, embeddings)
// pair, including edges whose segments no longer exist.
func TestStatePersistRoundTrip(t *testing.T) {
	const seed = 51
	dir := t.TempDir()
	m1, _ := testModel(t, seed)
	var in1 *Ingester
	in1 = newIngester(t, m1, dir, func(c *Config) {
		c.PersistEvery = 1
		c.Persist = func() error {
			return SaveState(StatePath(dir), m1, "FB237", seed, in1.GraphDelta())
		}
	})

	removed := m1.Graph().Triples()[0]
	batch := append(nonEdges(t, m1.Graph(), 3, 60), Record{Op: OpRemove, H: removed.H, R: removed.R, T: removed.T})
	if _, err := in1.Submit(batch); err != nil {
		t.Fatal(err)
	}
	if err := in1.Replay(); err != nil {
		t.Fatal(err)
	}
	if ap, pc := in1.cfg.WAL.AppliedSeq(), in1.cfg.WAL.PendingCount(); ap != 1 || pc != 0 {
		t.Fatalf("persist did not advance/prune: applied=%d pending=%d", ap, pc)
	}
	want := entSnapshot(m1)

	// Restart: the segment is gone, so only the state file can rebuild
	// this. The base checkpoint path would lose the batch entirely.
	m2, hdr, delta, err := LoadState(StatePath(dir), stateLookup(t))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Dataset != "FB237" || hdr.Seed != seed {
		t.Fatalf("state header = %+v", hdr)
	}
	if len(delta) != len(batch) {
		t.Fatalf("restored delta has %d records, want %d", len(delta), len(batch))
	}
	got := entSnapshot(m2)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("state restore diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
	for _, r := range batch[:3] {
		if !m2.Graph().HasTriple(r.H, r.R, r.T) {
			t.Fatalf("added edge %+v missing from restored graph", r.Triple())
		}
	}
	if m2.Graph().HasTriple(removed.H, removed.R, removed.T) {
		t.Fatal("removed edge still in restored graph")
	}

	// Keep ingesting on the restored state: the BaseDelta seed means the
	// next persist accumulates on top, and a third restart still matches.
	var in2 *Ingester
	in2 = newIngester(t, m2, dir, func(c *Config) {
		c.BaseDelta = delta
		c.PersistEvery = 1
		c.Persist = func() error {
			return SaveState(StatePath(dir), m2, "FB237", seed, in2.GraphDelta())
		}
	})
	if err := in2.Replay(); err != nil { // nothing pending
		t.Fatal(err)
	}
	if _, err := in2.Submit(nonEdges(t, m2.Graph(), 2, 70)); err != nil {
		t.Fatal(err)
	}
	if err := in2.Replay(); err != nil {
		t.Fatal(err)
	}
	want2 := entSnapshot(m2)

	m3, _, delta3, err := LoadState(StatePath(dir), stateLookup(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(delta3) != len(batch)+2 {
		t.Fatalf("accumulated delta has %d records, want %d", len(delta3), len(batch)+2)
	}
	got2 := entSnapshot(m3)
	for i := range want2 {
		if want2[i] != got2[i] {
			t.Fatalf("second restore diverged at %d", i)
		}
	}
}

// TestStateCrashBetweenPersistAndAdvance: SaveState landed but the WAL
// cursor did not — the covered segment is still pending. Replaying it
// onto the restored state must be a pure no-op (every mutation is
// already in the graph, so no fine-tune signal), leaving the embeddings
// byte-identical while the cursor catches up.
func TestStateCrashBetweenPersistAndAdvance(t *testing.T) {
	const seed = 53
	dir := t.TempDir()
	m1, _ := testModel(t, seed)
	in1 := newIngester(t, m1, dir, nil) // no Persist: segment stays pending
	batch := nonEdges(t, m1.Graph(), 4, 80)
	if _, err := in1.Submit(batch); err != nil {
		t.Fatal(err)
	}
	if err := in1.Replay(); err != nil {
		t.Fatal(err)
	}
	// "Crash" after the state write, before WAL.Advance.
	if err := SaveState(StatePath(dir), m1, "FB237", seed, in1.GraphDelta()); err != nil {
		t.Fatal(err)
	}
	want := entSnapshot(m1)

	m2, _, delta, err := LoadState(StatePath(dir), stateLookup(t))
	if err != nil {
		t.Fatal(err)
	}
	in2 := newIngester(t, m2, dir, func(c *Config) { c.BaseDelta = delta })
	if got := in2.cfg.WAL.Pending(); len(got) != 1 {
		t.Fatalf("pending = %v, want the covered segment", got)
	}
	if err := in2.Replay(); err != nil {
		t.Fatal(err)
	}
	st := in2.Stats()
	if st.MemAppliedSeq != 1 || st.SkippedEdges != uint64(len(batch)) {
		t.Fatalf("covered segment did not replay as a no-op: %+v", st)
	}
	got := entSnapshot(m2)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("no-op replay mutated embeddings at %d", i)
		}
	}
}
