package ingest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
)

// This file implements the durable form of the in-memory fine-tune
// state: one verified file holding the fine-tuned model checkpoint AND
// the net graph delta against the pristine base dataset. The pair is
// what makes WAL.Advance sound — a segment may only be pruned once a
// state file covering it is on disk, and restoring that file must
// reproduce the exact (graph, embeddings) pair the drainer had, because
// the segments it covers are gone:
//
//   - Embeddings alone are not enough: the graph is regenerated from the
//     synthetic dataset at load, so pruned segments' edge mutations
//     would vanish from it while the embeddings still encode them
//     (wrong negative filtering, wrong duplicate detection).
//   - Two files are not enough: a crash between writing them leaves a
//     (graph, embeddings) pair that never existed. One envelope, one
//     temp → fsync → rename, no torn state.
//
// Crash between SaveState and WAL.Advance is benign: the covered
// segments are still pending, replaying them onto the restored state
// finds every mutation already in the graph — a no-op with no fine-tune
// signal — which is exactly right because the restored embeddings
// already include their updates.

// StateFileName is the persisted-state entry inside a WAL directory.
const StateFileName = "state.ckpt"

// StatePath returns the persisted-state path for a WAL directory.
func StatePath(dir string) string { return filepath.Join(dir, StateFileName) }

// SaveState atomically writes the fine-tuned model plus the net graph
// delta (Ingester.GraphDelta) as one verified envelope. Call it from
// the drain goroutine only — it reads the live parameter tensors and
// the delta ledger, and the drainer is their sole mutator.
func SaveState(path string, m *halk.Model, dataset string, dataSeed int64, delta []Record) error {
	err := ckpt.WriteFile(path, func(w io.Writer) error {
		// The checkpoint payload keeps SaveCheckpoint's exact encoding so
		// LoadCheckpointFrom reads it unchanged; the delta follows as a
		// second gob stream (fresh encoder, fresh decoder on read).
		if err := m.SaveCheckpoint(w, dataset, dataSeed); err != nil {
			return err
		}
		return gob.NewEncoder(w).Encode(delta)
	})
	if err != nil {
		return fmt.Errorf("ingest: save state: %w", err)
	}
	return nil
}

// LoadState restores a persisted ingest state: the model is rebuilt
// over the base graph the lookup provides, its parameters restored, and
// the stored delta applied to the graph so the (graph, embeddings) pair
// matches the persist-time state exactly. The returned delta must seed
// the new Ingester (Config.BaseDelta) so subsequent persists keep
// accumulating on top of it.
func LoadState(path string, lookup func(hdr halk.CheckpointHeader) (*kg.Graph, error)) (*halk.Model, halk.CheckpointHeader, []Record, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, halk.CheckpointHeader{}, nil, fmt.Errorf("ingest: load state: %w", err)
	}
	r := bytes.NewReader(payload)
	m, hdr, err := halk.LoadCheckpointFrom(gob.NewDecoder(r), lookup)
	if err != nil {
		return nil, hdr, nil, fmt.Errorf("ingest: load state: %w", err)
	}
	var delta []Record
	if err := gob.NewDecoder(r).Decode(&delta); err != nil {
		return nil, hdr, nil, fmt.Errorf("ingest: load state: decode graph delta: %w", err)
	}
	g := m.Graph()
	for _, rec := range delta {
		switch rec.Op {
		case OpAdd:
			g.AddTriple(rec.Triple())
		case OpRemove:
			g.RemoveTriple(rec.Triple())
		default:
			return nil, hdr, nil, fmt.Errorf("ingest: load state: unknown delta op %d", rec.Op)
		}
	}
	return m, hdr, delta, nil
}
