package ingest

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/resil"
)

// ErrBacklog is returned by Submit when the WAL backlog exceeds
// Config.MaxPending: the fine-tune drainer is not keeping up, and
// admitting more writes would grow the log without bound. Serve maps it
// to 429.
var ErrBacklog = errors.New("ingest: write backlog full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("ingest: closed")

// Fault-injection stage names for the resil.Injector seams, fired in
// pipeline order: before the WAL append, before a segment's
// graph+fine-tune apply (pre-mutation, so an injected error is
// retryable), inside the apply after the current micro-batch's graph
// mutations landed (an injected error is unrecoverable, exercising the
// crash-only path), and before the delta publish.
const (
	FaultStageAppend   = "ingest.wal.append"
	FaultStageApply    = "ingest.apply"
	FaultStageFineTune = "ingest.finetune"
	FaultStagePublish  = "ingest.publish"
)

// FatalApplyError marks a segment apply that failed after some of its
// graph mutations had already landed. Retrying it in-process is
// unsound: the landed mutations would replay as graph no-ops and
// contribute no fine-tune signal, silently diverging the in-memory
// model from what a crash-and-replay reconstructs. The only consistent
// recovery is to stop the process and let WAL replay rebuild the state
// from the durable base — the drain loop hands it to Config.Fatalf.
type FatalApplyError struct {
	Seq uint64
	Err error
}

func (e *FatalApplyError) Error() string {
	return fmt.Sprintf("ingest: segment %d failed mid-apply after graph mutations landed: %v", e.Seq, e.Err)
}

func (e *FatalApplyError) Unwrap() error { return e.Err }

// Config wires an Ingester.
type Config struct {
	// Model is the live model the drainer fine-tunes. The ingester is the
	// only goroutine that mutates Model.Graph() — serving reads only
	// dictionaries and immutable snapshots.
	Model *halk.Model
	// WAL is the durable edge log (OpenWAL).
	WAL *WAL
	// BatchSize caps the records folded into one fine-tune step; larger
	// segments are split. The size is pinned into each segment at append
	// time, so replay after a restart splits it identically even if the
	// configured size has changed. 0 means 64.
	BatchSize int
	// Interval is the drain poll period; a Submit also wakes the drainer
	// immediately. 0 means 100ms.
	Interval time.Duration
	// MaxPending bounds the *unapplied* backlog — segments beyond the
	// in-memory apply cursor — before Submit sheds with ErrBacklog: it
	// measures the drainer falling behind, so a healthy drainer keeps the
	// write path open indefinitely. Applied segments retained for replay
	// (awaiting a Persist, or forever when Persist is nil) do not count.
	// 0 means 256 segments.
	MaxPending int
	// FineTune configures the per-batch SGD step. Its Seed is the base
	// seed: batch b of segment s steps with Seed + s*1e6 + b, and batch
	// boundaries are pinned per segment at append time, so replay is
	// deterministic across restarts.
	FineTune halk.FineTuneConfig
	// Publish pushes a fine-tuned table to the serving snapshot(s): the
	// dirty set accumulated since the last successful publish (sorted,
	// deduplicated) enables the delta swap. Nil disables publication
	// (tests that only exercise apply).
	Publish func(dirty []kg.EntityID) error
	// Persist, when non-nil, durably saves the current model state
	// (embeddings *and* the graph delta — see SaveState); after it
	// succeeds the WAL cursor advances past every applied segment and
	// they are pruned. Nil means segments are retained forever and replay
	// starts from the base checkpoint.
	Persist func() error
	// PersistEvery is how many applied segments trigger a Persist;
	// 0 means never.
	PersistEvery int
	// BaseDelta seeds the net graph-delta ledger when the model was
	// restored from a persisted state file (LoadState) rather than the
	// pristine base checkpoint: it is the delta that state already
	// carries, so future Persists keep accumulating on top of it. The
	// records must already be applied to Model.Graph() (LoadState does
	// this).
	BaseDelta []Record
	// Metrics is the registry ingest counters register on; nil means a
	// private registry.
	Metrics *obs.Registry
	// Inject is the optional fault injector observed at the
	// FaultStage* seams; nil is inert.
	Inject *resil.Injector
	// Logf receives drainer warnings (apply/publish failures); nil means
	// the process-default logger.
	Logf func(format string, args ...any)
	// Fatalf receives unrecoverable failures — a FatalApplyError, whose
	// partial graph mutations make both retrying and continuing unsound.
	// The default, log.Fatalf, implements the crash-only contract: the
	// process exits and the WAL replay on the next start reconstructs a
	// consistent state. A replacement that returns (tests) leaves the
	// drainer parked on the failed segment without advancing.
	Fatalf func(format string, args ...any)
}

// Stats is a point-in-time view of ingest progress for /v1/stats.
type Stats struct {
	PendingSegments  int    `json:"pending_segments"`
	AppliedSegments  uint64 `json:"applied_segments"`
	AppliedEdges     uint64 `json:"applied_edges"`
	SkippedEdges     uint64 `json:"skipped_edges"`
	FineTuneSteps    uint64 `json:"finetune_steps"`
	Publishes        uint64 `json:"publishes"`
	PublishFailures  uint64 `json:"publish_failures"`
	DirtyUnpublished int    `json:"dirty_unpublished"`
	DurableSeq       uint64 `json:"durable_seq"`
	MemAppliedSeq    uint64 `json:"mem_applied_seq"`
	GraphDeltaEdges  int    `json:"graph_delta_edges"`
	Quarantined      int    `json:"quarantined"`
}

// Ingester drains the WAL in the background: each pending segment's
// edges are applied to the graph, folded into the embeddings with a
// deterministic bounded fine-tune step, and the accumulated dirty set
// is published as a delta snapshot. Submit is safe for concurrent use;
// the drain loop is the sole mutator of the model's graph.
type Ingester struct {
	cfg Config

	mu         sync.Mutex
	memApplied uint64 // highest segment folded into the in-memory model
	dirty      map[kg.EntityID]struct{}
	delta      map[kg.Triple]Op // net graph mutations vs the pristine base dataset
	sincePers  int
	closed     bool
	started    bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	edgesApplied  *obs.Counter
	edgesSkipped  *obs.Counter
	segsApplied   *obs.Counter
	ftSteps       *obs.Counter
	publishes     *obs.Counter
	publishFails  *obs.Counter
	applyMs       *obs.Histogram
	publishMs     *obs.Histogram
	backlogSheds  *obs.Counter
	quarantinedCt *obs.Counter
}

// New builds an Ingester over an opened WAL. Call Start to launch the
// drain loop (or Replay to catch up synchronously first).
func New(cfg Config) (*Ingester, error) {
	if cfg.Model == nil || cfg.WAL == nil {
		return nil, fmt.Errorf("ingest: Model and WAL are required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Fatalf == nil {
		cfg.Fatalf = log.Fatalf
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	in := &Ingester{
		cfg:   cfg,
		dirty: make(map[kg.EntityID]struct{}),
		delta: make(map[kg.Triple]Op, len(cfg.BaseDelta)),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),

		edgesApplied:  reg.Counter("halk_ingest_edges_applied_total", "Edge mutations folded into the model."),
		edgesSkipped:  reg.Counter("halk_ingest_edges_skipped_total", "Edge mutations that were graph no-ops (duplicate add, absent remove)."),
		segsApplied:   reg.Counter("halk_ingest_segments_applied_total", "WAL segments applied to the in-memory model."),
		ftSteps:       reg.Counter("halk_ingest_finetune_steps_total", "Bounded fine-tune SGD steps taken."),
		publishes:     reg.Counter("halk_ingest_publishes_total", "Delta snapshot publications."),
		publishFails:  reg.Counter("halk_ingest_publish_failures_total", "Failed delta publications (retried next cycle)."),
		applyMs:       reg.Histogram("halk_ingest_apply_ms", "Per-segment apply+fine-tune latency (ms).", obs.LatencyBuckets),
		publishMs:     reg.Histogram("halk_ingest_publish_ms", "Delta publish latency (ms).", obs.LatencyBuckets),
		backlogSheds:  reg.Counter("halk_ingest_backlog_sheds_total", "Submissions refused because the WAL backlog was full."),
		quarantinedCt: reg.Counter("halk_ingest_wal_quarantined_total", "Corrupt WAL files quarantined at open."),
	}
	for _, r := range cfg.BaseDelta {
		in.delta[r.Triple()] = r.Op
	}
	in.quarantinedCt.Add(uint64(cfg.WAL.Quarantined()))
	reg.GaugeFunc("halk_ingest_queue_segments", "WAL segments awaiting durable application.",
		func() float64 { return float64(cfg.WAL.PendingCount()) })
	return in, nil
}

// Submit validates and durably logs one batch of edge mutations,
// returning the WAL sequence that now owns them. The edges are applied
// to the model asynchronously by the drain loop; durability is
// immediate (a crash after Submit returns replays the batch).
func (in *Ingester) Submit(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("ingest: empty batch")
	}
	numEnt := in.cfg.Model.Graph().NumEntities()
	numRel := in.cfg.Model.Graph().NumRelations()
	for _, r := range recs {
		if r.Op != OpAdd && r.Op != OpRemove {
			return 0, fmt.Errorf("ingest: unknown op %d", r.Op)
		}
		if int(r.H) < 0 || int(r.H) >= numEnt || int(r.T) < 0 || int(r.T) >= numEnt {
			return 0, fmt.Errorf("ingest: entity out of range in %+v (have %d)", r.Triple(), numEnt)
		}
		if int(r.R) < 0 || int(r.R) >= numRel {
			return 0, fmt.Errorf("ingest: relation out of range in %+v (have %d)", r.Triple(), numRel)
		}
	}
	in.mu.Lock()
	closed := in.closed
	mem := in.memApplied
	in.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	// Backlog is the drainer's lag — segments not yet folded into the
	// in-memory model — not the durable cursor's: applied segments kept
	// around for replay must never wedge the write path.
	if in.cfg.WAL.PendingCountAfter(mem) >= in.cfg.MaxPending {
		in.backlogSheds.Inc()
		return 0, ErrBacklog
	}
	if err := in.cfg.Inject.Fire(FaultStageAppend, resil.AnyShard); err != nil {
		return 0, err
	}
	seq, err := in.cfg.WAL.Append(recs, in.cfg.BatchSize)
	if err != nil {
		return 0, err
	}
	select {
	case in.wake <- struct{}{}:
	default:
	}
	return seq, nil
}

// Replay synchronously applies every pending WAL segment to the model
// and publishes once — the startup catch-up path. Because fine-tune
// steps are seeded by segment sequence, replaying onto the base
// checkpoint reproduces the pre-crash embeddings exactly.
func (in *Ingester) Replay() error {
	applied := false
	for _, seq := range in.cfg.WAL.Pending() {
		did, err := in.applySegment(seq)
		if err != nil {
			return err
		}
		applied = applied || did
	}
	if applied {
		if err := in.publish(); err != nil {
			return err
		}
	}
	in.maybePersist()
	return nil
}

// Start launches the background drain loop. Calling it more than once
// is a no-op.
func (in *Ingester) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.started || in.closed {
		return
	}
	in.started = true
	go in.loop()
}

// Close stops the drain loop after its current cycle and waits for it
// (no-op wait when Start was never called, e.g. a Replay-only user).
// Pending WAL segments stay durable and are replayed at the next open.
func (in *Ingester) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	started := in.started
	in.mu.Unlock()
	close(in.stop)
	if started {
		<-in.done
	}
}

func (in *Ingester) loop() {
	defer close(in.done)
	tick := time.NewTicker(in.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-in.stop:
			// Final best-effort drain so a clean shutdown leaves nothing
			// unapplied (segments remain durable either way).
			in.drainOnce()
			return
		case <-in.wake:
		case <-tick.C:
		}
		in.drainOnce()
	}
}

// drainOnce applies every segment currently pending beyond the
// in-memory cursor, then publishes the accumulated dirty set once.
func (in *Ingester) drainOnce() {
	applied := false
	for _, seq := range in.cfg.WAL.Pending() {
		in.mu.Lock()
		skip := seq <= in.memApplied
		in.mu.Unlock()
		if skip {
			continue
		}
		did, err := in.applySegment(seq)
		if err != nil {
			var fatal *FatalApplyError
			if errors.As(err, &fatal) {
				// Partial graph mutations landed: retrying would replay
				// them as no-ops and silently diverge from crash-replay.
				// Crash-only — the next start reconstructs from the WAL.
				in.cfg.Fatalf("%v; crashing so WAL replay restores a consistent state", err)
				return
			}
			in.cfg.Logf("ingest: apply segment %d: %v", seq, err)
			return // retry next cycle; order must be preserved
		}
		applied = applied || did
	}
	in.mu.Lock()
	unpublished := len(in.dirty) > 0
	in.mu.Unlock()
	if applied || unpublished {
		if err := in.publish(); err != nil {
			in.publishFails.Inc()
			in.cfg.Logf("ingest: publish: %v", err)
			return // dirty set is retained; retried next cycle
		}
	}
	in.maybePersist()
}

// applySegment folds one WAL segment into the graph and embeddings. It
// reports whether any edge actually changed the model. In-process
// re-application is a no-op (the memApplied cursor skips it); replay
// after a restart re-runs the identical deterministic step against the
// identically restored state.
func (in *Ingester) applySegment(seq uint64) (bool, error) {
	in.mu.Lock()
	if seq <= in.memApplied {
		in.mu.Unlock()
		return false, nil
	}
	in.mu.Unlock()
	if err := in.cfg.Inject.Fire(FaultStageApply, resil.AnyShard); err != nil {
		return false, err
	}
	recs, batchSize, err := in.cfg.WAL.Load(seq)
	if err != nil {
		return false, err
	}
	if batchSize <= 0 {
		batchSize = in.cfg.BatchSize
	}
	start := time.Now()
	g := in.cfg.Model.Graph()
	applied := false
	for batch := 0; len(recs) > 0; batch++ {
		// Split by the batch size pinned in the segment, not the current
		// config: the (seq, batch) fine-tune seeds only reproduce the
		// original update if the chunk contents match it exactly.
		n := batchSize
		if n > len(recs) {
			n = len(recs)
		}
		chunk := recs[:n]
		recs = recs[n:]
		var added, removed []kg.Triple
		for _, r := range chunk {
			// A graph no-op (duplicate add, absent remove) contributes no
			// fine-tune signal: the stored facts did not change.
			switch r.Op {
			case OpAdd:
				if g.AddTriple(r.Triple()) {
					added = append(added, r.Triple())
					in.noteDelta(r.Triple(), OpAdd)
				} else {
					in.edgesSkipped.Inc()
				}
			case OpRemove:
				if g.RemoveTriple(r.Triple()) {
					removed = append(removed, r.Triple())
					in.noteDelta(r.Triple(), OpRemove)
				} else {
					in.edgesSkipped.Inc()
				}
			}
		}
		if len(added)+len(removed) == 0 {
			continue
		}
		// From here on this chunk's graph mutations have landed, so any
		// failure below leaves the segment half-applied: wrap it as fatal
		// instead of letting the drain loop retry into divergence.
		if err := in.cfg.Inject.Fire(FaultStageFineTune, resil.AnyShard); err != nil {
			return applied, &FatalApplyError{Seq: seq, Err: err}
		}
		ft := in.cfg.FineTune
		ft.Seed += int64(seq)*1_000_000 + int64(batch)
		res, err := in.cfg.Model.FineTuneEdges(added, removed, ft)
		if err != nil {
			return applied, &FatalApplyError{Seq: seq, Err: err}
		}
		applied = true
		in.ftSteps.Inc()
		in.edgesApplied.Add(uint64(len(added) + len(removed)))
		in.mu.Lock()
		for _, e := range res.DirtyEntities {
			in.dirty[e] = struct{}{}
		}
		in.mu.Unlock()
	}
	in.mu.Lock()
	in.memApplied = seq
	in.sincePers++
	in.mu.Unlock()
	in.segsApplied.Inc()
	in.applyMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return applied, nil
}

// noteDelta folds one landed graph mutation into the net-delta ledger.
// Re-doing an opposite mutation returns the triple to its base state,
// so the ledger stays the exact symmetric difference against the
// pristine dataset: applying it to a fresh base graph reproduces the
// current one. (delta[tr] == op is unreachable — the graph mutation
// would have been a no-op and never reach here.)
func (in *Ingester) noteDelta(tr kg.Triple, op Op) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if prev, ok := in.delta[tr]; ok && prev != op {
		delete(in.delta, tr)
		return
	}
	in.delta[tr] = op
}

// GraphDelta returns the net graph mutations accumulated since the
// pristine base dataset (including any Config.BaseDelta seed), sorted
// for deterministic state files. It is what SaveState must persist next
// to the embeddings so a restart rebuilds the same (graph, embeddings)
// pair the checkpoint was cut from.
func (in *Ingester) GraphDelta() []Record {
	in.mu.Lock()
	out := make([]Record, 0, len(in.delta))
	for tr, op := range in.delta {
		out = append(out, Record{Op: op, H: tr.H, R: tr.R, T: tr.T})
	}
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.H != b.H {
			return a.H < b.H
		}
		if a.R != b.R {
			return a.R < b.R
		}
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Op < b.Op
	})
	return out
}

// publish pushes the accumulated dirty set through Config.Publish and
// clears it on success. The dirty set is only cleared after the publish
// succeeds, so a failed publish never strands fine-tuned rows outside
// the serving snapshot.
func (in *Ingester) publish() error {
	if in.cfg.Publish == nil {
		in.mu.Lock()
		in.dirty = make(map[kg.EntityID]struct{})
		in.mu.Unlock()
		return nil
	}
	if err := in.cfg.Inject.Fire(FaultStagePublish, resil.AnyShard); err != nil {
		return err
	}
	in.mu.Lock()
	dirty := make([]kg.EntityID, 0, len(in.dirty))
	for e := range in.dirty {
		dirty = append(dirty, e)
	}
	in.mu.Unlock()
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	start := time.Now()
	if err := in.cfg.Publish(dirty); err != nil {
		return err
	}
	in.publishMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	in.publishes.Inc()
	in.mu.Lock()
	for _, e := range dirty {
		delete(in.dirty, e)
	}
	in.mu.Unlock()
	return nil
}

// maybePersist checkpoints the model and advances the durable WAL
// cursor once enough segments have been applied since the last persist.
func (in *Ingester) maybePersist() {
	if in.cfg.Persist == nil || in.cfg.PersistEvery <= 0 {
		return
	}
	in.mu.Lock()
	due := in.sincePers >= in.cfg.PersistEvery
	seq := in.memApplied
	in.mu.Unlock()
	if !due {
		return
	}
	if err := in.cfg.Persist(); err != nil {
		in.cfg.Logf("ingest: persist: %v", err)
		return
	}
	if err := in.cfg.WAL.Advance(seq); err != nil {
		in.cfg.Logf("ingest: advance wal: %v", err)
		return
	}
	in.mu.Lock()
	in.sincePers = 0
	in.mu.Unlock()
}

// Stats reports ingest progress.
func (in *Ingester) Stats() Stats {
	in.mu.Lock()
	mem := in.memApplied
	unpub := len(in.dirty)
	deltaLen := len(in.delta)
	in.mu.Unlock()
	return Stats{
		PendingSegments:  in.cfg.WAL.PendingCount(),
		AppliedSegments:  in.segsApplied.Value(),
		AppliedEdges:     in.edgesApplied.Value(),
		SkippedEdges:     in.edgesSkipped.Value(),
		FineTuneSteps:    in.ftSteps.Value(),
		Publishes:        in.publishes.Value(),
		PublishFailures:  in.publishFails.Value(),
		DirtyUnpublished: unpub,
		DurableSeq:       in.cfg.WAL.AppliedSeq(),
		MemAppliedSeq:    mem,
		GraphDeltaEdges:  deltaLen,
		Quarantined:      in.cfg.WAL.Quarantined(),
	}
}
