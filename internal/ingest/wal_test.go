package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/kg"
)

func testRecords(n int, base int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		op := OpAdd
		if i%3 == 2 {
			op = OpRemove
		}
		recs[i] = Record{Op: op, H: kg.EntityID(base + i), R: kg.RelationID(i % 4), T: kg.EntityID(base + i + 1)}
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]Record
	for i := 0; i < 3; i++ {
		recs := testRecords(4+i, i*10)
		want = append(want, recs)
		seq, err := w.Append(recs, 16)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if _, err := w.Append(nil, 16); err == nil {
		t.Fatal("empty append accepted")
	}

	// Reopen: same pending set, same contents, NextSeq continues.
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	pend := w2.Pending()
	if len(pend) != 3 {
		t.Fatalf("pending = %v, want 3 segments", pend)
	}
	for i, seq := range pend {
		got, batch, err := w2.Load(seq)
		if err != nil {
			t.Fatal(err)
		}
		if batch != 16 {
			t.Fatalf("segment %d: batch size = %d, want 16", seq, batch)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("segment %d: %d records, want %d", seq, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("segment %d record %d: %+v != %+v", seq, j, got[j], want[i][j])
			}
		}
	}
	if w2.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", w2.NextSeq())
	}
}

func TestWALAdvance(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	for i := 0; i < 4; i++ {
		if _, err := w.Append(testRecords(2, i), 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(2); err != nil {
		t.Fatal(err)
	}
	if got := w.Pending(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("pending after advance = %v, want [3 4]", got)
	}
	// Pruned segment files are gone.
	if _, err := os.Stat(w.segPath(1)); !os.IsNotExist(err) {
		t.Fatal("segment 1 not pruned")
	}
	// Advance is monotonic: going backwards is a no-op.
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if w.AppliedSeq() != 2 {
		t.Fatalf("AppliedSeq = %d, want 2", w.AppliedSeq())
	}

	// The cursor survives a reopen; replay starts past it.
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w2.AppliedSeq() != 2 {
		t.Fatalf("reopened AppliedSeq = %d, want 2", w2.AppliedSeq())
	}
	if got := w2.Pending(); len(got) != 2 || got[0] != 3 {
		t.Fatalf("reopened pending = %v, want [3 4]", got)
	}
	if w2.NextSeq() != 5 {
		t.Fatalf("reopened NextSeq = %d, want 5", w2.NextSeq())
	}
}

// TestWALCrashMidAppend simulates a crash before the rename publishes a
// segment: the abandoned temp file must be swept and never replayed.
func TestWALCrashMidAppend(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	if _, err := w.Append(testRecords(3, 0), 16); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "wal-0000000000000002.wal.tmp-123456")
	if err := os.WriteFile(torn, []byte("half a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Pending(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pending = %v, want [1]", got)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file not removed")
	}
	if w2.Quarantined() != 0 {
		t.Fatalf("temp sweep counted as quarantine: %d", w2.Quarantined())
	}
	// The next append takes the sequence the torn write would have used.
	seq, err := w2.Append(testRecords(1, 5), 16)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after torn append = %d, want 2", seq)
	}
}

// TestWALTruncateAdversarial truncates a segment at every length and
// requires reopen to quarantine it without losing its neighbours —
// mirroring the ckpt envelope's truncation suite.
func TestWALTruncateAdversarial(t *testing.T) {
	mkdir := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		w, _ := OpenWAL(dir)
		if _, err := w.Append(testRecords(3, 0), 16); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(testRecords(3, 10), 16); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(w.segPath(2))
		if err != nil {
			t.Fatal(err)
		}
		return dir, raw
	}
	dir0, raw := mkdir(t)
	_ = dir0
	step := len(raw)/8 + 1
	for cut := 0; cut < len(raw); cut += step {
		dir, _ := mkdir(t)
		seg := filepath.Join(dir, "wal-0000000000000002.wal")
		if err := os.WriteFile(seg, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got := w.Pending(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("cut=%d: pending = %v, want [1]", cut, got)
		}
		if w.Quarantined() != 1 {
			t.Fatalf("cut=%d: quarantined = %d, want 1", cut, w.Quarantined())
		}
		if _, err := os.Stat(seg + ".bad"); err != nil {
			t.Fatalf("cut=%d: no .bad file: %v", cut, err)
		}
		// The healthy segment still loads.
		if _, _, err := w.Load(1); err != nil {
			t.Fatalf("cut=%d: healthy segment lost: %v", cut, err)
		}
	}
}

// TestWALBitFlipAdversarial flips one bit at every byte offset of a
// segment; every flip must be caught by the envelope (magic, version,
// CRC, or footer check) and quarantined.
func TestWALBitFlipAdversarial(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	if _, err := w.Append(testRecords(3, 0), 16); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(w.segPath(1))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off++ {
		dir := t.TempDir()
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.wal"), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("off=%d: %v", off, err)
		}
		if len(w.Pending()) != 0 || w.Quarantined() != 1 {
			t.Fatalf("off=%d: flip not quarantined (pending %v, quarantined %d)", off, w.Pending(), w.Quarantined())
		}
	}
}

// TestWALGapRefusesOpen: a segment missing below the highest pending
// one — corrupted (and so quarantined) or deleted out of band — is a
// hole in the replay sequence. Continuing past it would drop edges that
// were acknowledged as durable while still applying later segments, so
// Open must fail with ErrGap instead of starting. A corrupt *newest*
// segment leaves no hole (the log truncates to a valid prefix) and
// keeps the quarantine behavior — TestWALTruncateAdversarial covers it.
func TestWALGapRefusesOpen(t *testing.T) {
	mk := func(t *testing.T, advance uint64) string {
		dir := t.TempDir()
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := w.Append(testRecords(2, i*10), 16); err != nil {
				t.Fatal(err)
			}
		}
		if advance > 0 {
			if err := w.Advance(advance); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	t.Run("mid-sequence corruption", func(t *testing.T) {
		dir := mk(t, 0)
		seg := filepath.Join(dir, "wal-0000000000000002.wal")
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(dir); !errors.Is(err, ErrGap) {
			t.Fatalf("open with corrupt mid-sequence segment: err = %v, want ErrGap", err)
		}
	})

	t.Run("mid-sequence deletion", func(t *testing.T) {
		dir := mk(t, 0)
		if err := os.Remove(filepath.Join(dir, "wal-0000000000000002.wal")); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(dir); !errors.Is(err, ErrGap) {
			t.Fatalf("open with deleted mid-sequence segment: err = %v, want ErrGap", err)
		}
	})

	t.Run("hole at the replay floor", func(t *testing.T) {
		// APPLIED = 1 is intact, so the first pending segment must be 2;
		// losing it is a gap even though the survivors are contiguous.
		dir := mk(t, 1)
		if err := os.Remove(filepath.Join(dir, "wal-0000000000000002.wal")); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(dir); !errors.Is(err, ErrGap) {
			t.Fatalf("open with hole above the APPLIED cursor: err = %v, want ErrGap", err)
		}
	})

	t.Run("contiguous survivors still open", func(t *testing.T) {
		dir := mk(t, 1)
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Pending(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
			t.Fatalf("pending = %v, want [2 3]", got)
		}
	})
}

// TestWALCorruptAppliedCursor resets a damaged APPLIED manifest to 0:
// the safe direction, since replaying already-applied segments onto the
// restored base model is deterministic and idempotent.
func TestWALCorruptAppliedCursor(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	if _, err := w.Append(testRecords(2, 0), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(testRecords(2, 5), 16); err != nil {
		t.Fatal(err)
	}
	// Advance without pruning reach: cursor = 1 prunes segment 1 only.
	if err := w.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "APPLIED"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w2.AppliedSeq() != 0 {
		t.Fatalf("AppliedSeq with corrupt manifest = %d, want 0", w2.AppliedSeq())
	}
	if w2.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1", w2.Quarantined())
	}
	// Only segment 2 survives on disk (1 was pruned) and it is pending.
	if got := w2.Pending(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("pending = %v, want [2]", got)
	}
}

func TestWALIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "wal-abc.wal", "wal-1.snapshot"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pending()) != 0 {
		t.Fatalf("pending = %v, want none", w.Pending())
	}
	// Only the malformed wal-*.wal name is quarantined; foreign files are
	// left alone.
	if w.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1 (wal-abc.wal)", w.Quarantined())
	}
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "notes.txt") || !strings.Contains(joined, "wal-1.snapshot") {
		t.Fatalf("foreign files disturbed: %v", names)
	}
}

// copySegments snapshots the named segment files so a test can restore
// them after pruning — simulating a crash between the APPLIED manifest
// write and the best-effort prune, or files restored from backup.
func copySegments(t *testing.T, w *WAL, seqs ...uint64) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte, len(seqs))
	for _, seq := range seqs {
		b, err := os.ReadFile(w.segPath(seq))
		if err != nil {
			t.Fatalf("snapshot segment %d: %v", seq, err)
		}
		out[seq] = b
	}
	return out
}

// TestWALCompactRemovesOnlyDeadSegments is the compaction adversarial
// test: segments below the durable cursor that Advance's prune missed
// are removed, while every segment still needed for replay — and the
// cursor manifest, and quarantined twins — survives untouched and the
// log replays identically afterwards.
func TestWALCompactRemovesOnlyDeadSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(testRecords(3, i*10), 16); err != nil {
			t.Fatal(err)
		}
	}
	dead := copySegments(t, w, 1, 2, 3)
	if err := w.Advance(3); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pruned segments: the crash-between-manifest-and-prune
	// state Open tolerates but never cleans up.
	for seq, b := range dead {
		if err := os.WriteFile(w.segPath(seq), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A quarantined twin must never be a compaction candidate.
	badName := filepath.Join(dir, "wal-0000000000000001.wal.bad")
	if err := os.WriteFile(badName, dead[1], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantPending := w2.Pending()
	if len(wantPending) != 2 || wantPending[0] != 4 || wantPending[1] != 5 {
		t.Fatalf("pending before compact = %v, want [4 5]", wantPending)
	}
	n, err := w2.Compact("")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Compact removed %d segments, want 3", n)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := os.Stat(w2.segPath(seq)); !os.IsNotExist(err) {
			t.Fatalf("dead segment %d survived compaction", seq)
		}
	}
	for _, seq := range wantPending {
		if _, _, err := w2.Load(seq); err != nil {
			t.Fatalf("pending segment %d unreadable after compaction: %v", seq, err)
		}
	}
	if _, err := os.Stat(badName); err != nil {
		t.Fatalf("quarantined twin disturbed: %v", err)
	}
	// A second pass finds nothing, and the compacted log reopens with the
	// exact same replay set — no gap, no lost cursor.
	if n, err := w2.Compact(""); err != nil || n != 0 {
		t.Fatalf("idempotent compact = (%d, %v), want (0, nil)", n, err)
	}
	w3, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	if got := w3.Pending(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("pending after compaction = %v, want [4 5]", got)
	}
	if w3.AppliedSeq() != 3 {
		t.Fatalf("AppliedSeq after compaction = %d, want 3", w3.AppliedSeq())
	}
}

// TestWALCompactRefusesUnknownFloor pins the safety rule: with no
// durable cursor — fresh log, or a quarantined APPLIED manifest — the
// replay floor is unknown, so compaction must remove nothing.
func TestWALCompactRefusesUnknownFloor(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testRecords(2, i*10), 16); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh log: everything is pending, nothing compacts.
	if n, err := w.Compact(""); err != nil || n != 0 {
		t.Fatalf("compact with cursor 0 = (%d, %v), want (0, nil)", n, err)
	}

	if err := w.Advance(2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest: reopen quarantines it and resets the cursor.
	if err := os.WriteFile(filepath.Join(dir, "APPLIED"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w2.AppliedSeq() != 0 {
		t.Fatalf("AppliedSeq with corrupt manifest = %d, want 0", w2.AppliedSeq())
	}
	if n, err := w2.Compact(""); err != nil || n != 0 {
		t.Fatalf("compact with quarantined manifest = (%d, %v), want (0, nil)", n, err)
	}
	if _, _, err := w2.Load(3); err != nil {
		t.Fatalf("segment 3 unreadable after no-op compaction: %v", err)
	}
}

// TestWALCompactArchives exercises the audit-trail mode: dead segments
// move to the archive directory intact instead of being deleted.
func TestWALCompactArchives(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testRecords(2, i*10), 16); err != nil {
			t.Fatal(err)
		}
	}
	dead := copySegments(t, w, 1, 2)
	if err := w.Advance(2); err != nil {
		t.Fatal(err)
	}
	for seq, b := range dead {
		if err := os.WriteFile(w.segPath(seq), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	archive := filepath.Join(t.TempDir(), "wal-archive")
	n, err := w.Compact(archive)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Compact archived %d segments, want 2", n)
	}
	for seq, want := range dead {
		name := filepath.Base(w.segPath(seq))
		got, err := os.ReadFile(filepath.Join(archive, name))
		if err != nil {
			t.Fatalf("archived segment %d: %v", seq, err)
		}
		if string(got) != string(want) {
			t.Fatalf("archived segment %d differs from the original", seq)
		}
		if _, err := os.Stat(w.segPath(seq)); !os.IsNotExist(err) {
			t.Fatalf("segment %d still in the live directory after archiving", seq)
		}
	}
	if _, _, err := w.Load(3); err != nil {
		t.Fatalf("pending segment 3 unreadable after archiving: %v", err)
	}
}

// TestWALCompactConcurrent races Compact against a live drainer: one
// goroutine keeps appending segments, one keeps advancing the durable
// cursor (the persist path), and one compacts in a tight loop. The
// internal lock must serialize them (this test is the -race probe for
// it), and whatever interleaving occurs the log must reopen afterwards
// with no gap and the exact replay set the cursor implies.
func TestWALCompactConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}

	const appends = 60
	var maxSeq atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // the ingester's write path
		defer wg.Done()
		for i := 0; i < appends; i++ {
			seq, err := w.Append(testRecords(2, i*10), 16)
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			maxSeq.Store(seq)
		}
	}()
	wg.Add(1)
	go func() { // the drainer's persist path: cursor chases the writes
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if seq := maxSeq.Load(); seq > 1 {
				// Keep one segment pending so replay state is never empty.
				if err := w.Advance(seq - 1); err != nil {
					t.Errorf("advance to %d: %v", seq-1, err)
					return
				}
			}
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() { // the startup/maintenance compactor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Compact(""); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	// Let appends finish, then let the advancer and compactor churn a
	// little longer over the settled log before stopping them.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent WAL workers did not finish")
	}
	if t.Failed() {
		return
	}

	// One more advance + compact over the quiet log, then reopen: the
	// survivors must be exactly applied+1 .. appends with no gap.
	if err := w.Advance(appends - 2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Compact(""); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("reopen after concurrent compaction: %v", err)
	}
	applied := w2.AppliedSeq()
	if applied < appends-2 {
		t.Fatalf("AppliedSeq after reopen = %d, want ≥ %d", applied, appends-2)
	}
	pend := w2.Pending()
	for i, seq := range pend {
		if seq != applied+1+uint64(i) {
			t.Fatalf("pending = %v, not contiguous above cursor %d", pend, applied)
		}
	}
	if len(pend) > 0 {
		if _, _, err := w2.Load(pend[len(pend)-1]); err != nil {
			t.Fatalf("pending segment unreadable after concurrent compaction: %v", err)
		}
	}
	if w2.NextSeq() != appends+1 {
		t.Fatalf("NextSeq after reopen = %d, want %d", w2.NextSeq(), appends+1)
	}
}
