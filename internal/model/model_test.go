package model

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
)

// toy is a minimal Interface implementation: a free vector per entity,
// query embedding = anchor vector (ignores operators). Enough to drive
// the trainer.
type toy struct {
	params *autodiff.Params
	ent    *autodiff.Tensor
	n      int
}

func newToy(g *kg.Graph, seed int64) *toy {
	p := autodiff.NewParams()
	rng := rand.New(rand.NewSource(seed))
	return &toy{
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), 4, -1, 1, rng),
		n:      g.NumEntities(),
	}
}

func (m *toy) Name() string                   { return "toy" }
func (m *toy) Params() *autodiff.Params       { return m.params }
func (m *toy) Supports(structure string) bool { return structure == "1p" || structure == "2p" }

func (m *toy) embed(t *autodiff.Tape, n *query.Node) autodiff.V {
	for n.Op != query.OpAnchor {
		n = n.Args[0]
	}
	return m.ent.Leaf(t, int(n.Anchor))
}

func (m *toy) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, ok := SamplePositive(q.Answers, rng)
	if !ok {
		return autodiff.V{}, false
	}
	negs := SampleNegatives(q.Answers, m.n, negSamples, rng)
	if len(negs) == 0 {
		return autodiff.V{}, false
	}
	emb := m.embed(t, q.Root)
	d := func(e kg.EntityID) autodiff.V { return t.L1(t.Sub(emb, m.ent.Leaf(t, int(e)))) }
	loss := t.Neg(t.LogSigmoid(t.AddScalar(t.Neg(d(pos)), 2)))
	for _, ne := range negs {
		loss = t.Add(loss, t.Scale(t.Neg(t.LogSigmoid(t.AddScalar(d(ne), -2))), 1/float64(len(negs))))
	}
	return loss, true
}

func (m *toy) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	emb := m.embed(t, n).Value()
	out := make([]float64, m.n)
	for e := 0; e < m.n; e++ {
		s := 0.0
		for j, v := range m.ent.Row(e) {
			s += math.Abs(v - emb[j])
		}
		out[e] = s
	}
	return out
}

func TestTrainRunsAndReducesLoss(t *testing.T) {
	ds := kg.SynthFB237(51)
	m := newToy(ds.Train, 52)
	var first, last float64
	seen := 0
	res, err := Train(m, ds.Train, TrainConfig{
		QueriesPerStructure: 30,
		Steps:               200,
		BatchSize:           8,
		NegSamples:          4,
		LR:                  0.05,
		Seed:                53,
		Structures:          []string{"1p"},
		Progress: func(step int, loss float64) {
			if seen == 0 {
				first = loss
			}
			last = loss
			seen++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 200 || res.Elapsed <= 0 {
		t.Errorf("result = %+v", res)
	}
	if seen < 2 {
		t.Fatalf("progress callback fired %d times", seen)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %.4f, last %.4f", first, last)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := kg.SynthFB237(54)
	cfg := TrainConfig{
		QueriesPerStructure: 20, Steps: 50, BatchSize: 4, NegSamples: 4,
		LR: 0.05, Seed: 55, Structures: []string{"1p"},
	}
	a := newToy(ds.Train, 56)
	b := newToy(ds.Train, 56)
	if _, err := Train(a, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(b, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range a.ent.Data {
		if a.ent.Data[i] != b.ent.Data[i] {
			t.Fatalf("parameter %d differs between identical runs: %g vs %g",
				i, a.ent.Data[i], b.ent.Data[i])
		}
	}
}

func TestTrainFiltersUnsupportedStructures(t *testing.T) {
	ds := kg.SynthFB237(57)
	m := newToy(ds.Train, 58)
	// "2i" unsupported by toy; only "1p"/"2p" remain.
	_, err := Train(m, ds.Train, TrainConfig{
		QueriesPerStructure: 10, Steps: 10, BatchSize: 2, NegSamples: 2,
		LR: 0.01, Seed: 59, Structures: []string{"2i", "1p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A model supporting nothing must error.
	_, err = Train(m, ds.Train, TrainConfig{
		QueriesPerStructure: 10, Steps: 10, BatchSize: 2, NegSamples: 2,
		LR: 0.01, Seed: 59, Structures: []string{"2i"},
	})
	if err == nil {
		t.Error("expected error when no structures are supported")
	}
}

func TestOneHopWorkloadCoversAllHeadRelPairs(t *testing.T) {
	ds := kg.SynthFB237(60)
	w := OneHopWorkload(ds.Train)
	if len(w) == 0 {
		t.Fatal("empty workload")
	}
	pairs := make(map[[2]int32]bool)
	for _, q := range w {
		if q.Root.Op != query.OpProjection || q.Root.Args[0].Op != query.OpAnchor {
			t.Fatal("workload query is not 1p")
		}
		h := q.Root.Args[0].Anchor
		r := q.Root.Rel
		pairs[[2]int32{int32(h), int32(r)}] = true
		if len(q.Answers) == 0 {
			t.Fatal("1p workload query with no answers")
		}
		for e := range q.Answers {
			if !ds.Train.HasTriple(h, r, e) {
				t.Fatal("answer not backed by a triple")
			}
		}
	}
	if len(pairs) != len(w) {
		t.Errorf("duplicate (head, relation) pairs: %d distinct of %d", len(pairs), len(w))
	}
	if len(pairs) < ds.Train.NumTriples()/4 {
		t.Errorf("suspiciously few pairs: %d", len(pairs))
	}
}

func TestSampleNegativesExcludesAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ans := query.NewSet(1, 2, 3)
	negs := SampleNegatives(ans, 10, 50, rng)
	if len(negs) != 50 {
		t.Fatalf("got %d negatives", len(negs))
	}
	for _, e := range negs {
		if ans.Has(e) {
			t.Fatal("negative sample is an answer")
		}
	}
	// Universe fully covered by answers -> nil.
	if SampleNegatives(query.NewSet(0, 1), 2, 5, rng) != nil {
		t.Error("expected nil when no negatives exist")
	}
}

func TestSamplePositiveDeterministicForSeed(t *testing.T) {
	ans := query.NewSet(5, 9, 2)
	a, _ := SamplePositive(ans, rand.New(rand.NewSource(7)))
	b, _ := SamplePositive(ans, rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("SamplePositive not deterministic for a fixed seed")
	}
	if _, ok := SamplePositive(query.Set{}, rand.New(rand.NewSource(1))); ok {
		t.Error("empty answer set should not yield a positive")
	}
}

// TestTrainMetrics runs a short training loop with a metrics registry
// attached and checks the step counter, loss gauge, throughput gauge and
// gradient-norm histogram all land on it.
func TestTrainMetrics(t *testing.T) {
	ds := kg.SynthFB237(61)
	m := newToy(ds.Train, 62)
	reg := obs.NewRegistry()
	res, err := Train(m, ds.Train, TrainConfig{
		QueriesPerStructure: 30,
		Steps:               120,
		BatchSize:           4,
		NegSamples:          4,
		LR:                  0.05,
		Seed:                63,
		Structures:          []string{"1p"},
		Metrics:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, fmt.Sprintf("halk_train_steps_total %d", res.Steps)) {
		t.Errorf("step counter missing or wrong:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE halk_train_loss gauge",
		"# TYPE halk_train_steps_per_second gauge",
		"# TYPE halk_train_grad_norm histogram",
		fmt.Sprintf("halk_train_grad_norm_count %d", res.Steps),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Throughput was updated at step 100 and gradients flowed.
	gradSum := reg.Histogram("halk_train_grad_norm", "", nil)
	if gradSum.Sum() <= 0 {
		t.Error("gradient-norm histogram sum is zero: no gradients observed")
	}
	rate := reg.Gauge("halk_train_steps_per_second", "")
	if rate.Value() <= 0 {
		t.Errorf("steps/sec gauge = %v, want > 0", rate.Value())
	}
}
