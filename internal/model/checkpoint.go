package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/ckpt"
)

// CheckpointConfig wires the durable checkpoint lifecycle into Train:
// periodic crash-safe checkpoints into a rotation directory, a final
// checkpoint on interrupt (SIGINT/SIGTERM in halk-train), and exact
// resume from a previously saved TrainState.
//
// A training checkpoint is a superset of a serving checkpoint: the gob
// payload is [model header] [parameters] [TrainState] [Adam moments],
// so halk.LoadCheckpoint (which stops after the parameters) can serve
// from any rotation entry, while DecodeTrainState reads the trailing
// optimizer state for bit-exact resume.
type CheckpointConfig struct {
	// Dir is the rotation directory checkpoints are written to. Required
	// (a CheckpointConfig without a Dir disables checkpointing).
	Dir *ckpt.Dir
	// Every cuts a checkpoint each time this many optimizer steps
	// complete (aligned to absolute step numbers, so a resumed run keeps
	// the cadence of the original). 0 means only the final/interrupt
	// checkpoints are written.
	Every int
	// Header writes the model identity (e.g. halk.CheckpointHeader) at
	// the head of each payload, so a loader can rebuild the model before
	// decoding parameters.
	Header func(enc *gob.Encoder) error
	// Resume, when non-nil, continues an interrupted run: Train skips to
	// Resume.Step, restores the optimizer's update counter, and replays
	// the training RNG to the exact state it had at that step. The
	// caller must already have loaded the matching parameters and Adam
	// moments into the model (see DecodeTrainState).
	Resume *TrainState
	// Interrupt, when non-nil, requests a graceful stop: as soon as the
	// channel is closed (or receives), Train cuts a final checkpoint at
	// the current step boundary and returns with Interrupted set.
	Interrupt <-chan struct{}
	// OnSave, when non-nil, observes every successful checkpoint write.
	OnSave func(step int, path string)
}

// enabled reports whether the config actually checkpoints.
func (c *CheckpointConfig) enabled() bool { return c != nil && c.Dir != nil }

// TrainState is the trainer's exact-resume record, stored after the
// parameters in every training checkpoint.
type TrainState struct {
	// Step is the number of optimizer steps completed when the
	// checkpoint was cut; training resumes at this step index.
	Step int
	// AdamStep is the optimizer's update counter — it lags Step when
	// batches were skipped (no usable instances), and the Adam bias
	// corrections depend on it, so it is persisted separately.
	AdamStep int
}

// saveCheckpoint writes one rotation entry at the given completed-step
// count: header, parameters, TrainState, Adam moments.
func saveCheckpoint(ck *CheckpointConfig, m Interface, step, adamStep int) (string, error) {
	return ck.Dir.Save(step, func(w io.Writer) error {
		enc := gob.NewEncoder(w)
		if ck.Header != nil {
			if err := ck.Header(enc); err != nil {
				return fmt.Errorf("model: encode checkpoint header: %w", err)
			}
		}
		if err := m.Params().Encode(enc); err != nil {
			return err
		}
		if err := enc.Encode(TrainState{Step: step, AdamStep: adamStep}); err != nil {
			return fmt.Errorf("model: encode train state: %w", err)
		}
		return m.Params().EncodeMoments(enc)
	})
}

// DecodeTrainState reads the optimizer state that follows the
// parameters in a training checkpoint: the TrainState record, then the
// Adam moment buffers, which are restored into p. dec must be the same
// decoder that already consumed the header and parameters (gob streams
// are single-decoder).
//
// A serving-only checkpoint (written by SaveCheckpoint rather than the
// trainer) has no trailing state; that surfaces as an io.EOF-wrapped
// error the caller may treat as "cannot resume, can still serve".
func DecodeTrainState(dec *gob.Decoder, p *autodiff.Params) (TrainState, error) {
	var st TrainState
	if err := dec.Decode(&st); err != nil {
		return TrainState{}, fmt.Errorf("model: decode train state: %w", err)
	}
	if st.Step < 0 || st.AdamStep < 0 || st.AdamStep > st.Step {
		return TrainState{}, fmt.Errorf("model: decode train state: implausible state %+v", st)
	}
	if err := p.DecodeMoments(dec); err != nil {
		return TrainState{}, err
	}
	return st, nil
}
