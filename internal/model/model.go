// Package model defines the interface shared by HaLk and the baseline
// embedding models, plus the structure-batched trainer of Algorithm 1
// and the negative-sampling machinery. Keeping the interface here lets
// the trainer, evaluator, pruner and SPARQL executor stay model-agnostic.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
)

// Interface is a trainable logical-query embedding model.
type Interface interface {
	// Name identifies the model ("HaLk", "ConE", "NewLook", "MLPMix").
	Name() string
	// Params exposes the trainable tensors for the optimizer and for
	// checkpointing.
	Params() *autodiff.Params
	// Supports reports whether the model can embed the given query
	// structure (e.g. NewLook has no negation operator, ConE and MLPMix
	// no difference operator).
	Supports(structure string) bool
	// Loss builds the training loss for one query instance on the tape:
	// one positive answer and negSamples negatives are drawn with rng.
	// ok is false if the query cannot be used (e.g. no valid negatives).
	Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (loss autodiff.V, ok bool)
	// Distances returns the distance from every entity to the query's
	// embedding (lower = more likely an answer). Union queries must be
	// handled (the standard route is the DNF rewrite + min over
	// disjuncts).
	Distances(q *query.Node) []float64
}

// TrainConfig controls the structure-batched training loop.
type TrainConfig struct {
	// QueriesPerStructure is the size of the pre-sampled training
	// workload for each structure.
	QueriesPerStructure int
	// Steps is the number of optimizer steps.
	Steps int
	// BatchSize is the number of query instances per step; all instances
	// in a batch share a query structure (Alg. 1 line 3).
	BatchSize int
	// NegSamples is the number of negative entities per instance.
	NegSamples int
	// LR is the Adam learning rate.
	LR float64
	// LRDecay, when true, decays the learning rate linearly to 10% of LR
	// over the run — the warm-then-anneal schedule that keeps small-data
	// training from oscillating late.
	LRDecay bool
	// Seed drives workload sampling and negative sampling.
	Seed int64
	// Structures lists the structures to train on; defaults to
	// query.TrainStructures filtered by the model's Supports. Duplicate
	// names weight the round-robin schedule toward that structure.
	Structures []string
	// OneHopFromEdges, when true, builds the 1p training workload from
	// every (head, relation) pair of the graph instead of sampling
	// QueriesPerStructure random queries — the full edge coverage of
	// standard KG-embedding training, which the multi-hop operators
	// build on.
	OneHopFromEdges bool
	// Progress, if non-nil, receives (step, loss) once per 100 steps.
	Progress func(step int, loss float64)
	// Metrics, when non-nil, receives the training-loop series: a step
	// counter (halk_train_steps_total), a throughput gauge
	// (halk_train_steps_per_second, over the trailing 100 steps), the
	// latest batch loss (halk_train_loss) and a per-step global gradient
	// L2-norm histogram (halk_train_grad_norm). halk-train wires this to
	// the -pprof-addr debug listener's /metrics.
	Metrics *obs.Registry
	// Checkpoint, when non-nil with a rotation Dir, enables the durable
	// checkpoint lifecycle: periodic crash-safe checkpoints, a final
	// checkpoint on interrupt, and exact resume. See CheckpointConfig.
	Checkpoint *CheckpointConfig
	// Workers caps the parallel gradient workers per batch; 0 means
	// GOMAXPROCS. With Workers: 1 gradients accumulate in batch order,
	// making training bit-deterministic — the setting under which
	// crash + resume is verified to reproduce an uninterrupted run
	// byte for byte. With more workers, resume still restores the RNG,
	// optimizer and parameters exactly, but the floating-point
	// accumulation order across workers is scheduling-dependent.
	Workers int
}

// gradNormBuckets spans the gradient norms seen across the model zoo:
// vanishing (<1e-2) through exploding (>1e2).
var gradNormBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// gradNorm is the global L2 norm of all accumulated gradients.
func gradNorm(p *autodiff.Params) float64 {
	sum := 0.0
	for _, t := range p.All() {
		for _, g := range t.Grad {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// DefaultTrainConfig returns the training budget used by the benchmark
// harness (scaled down from the paper's 4-GPU budget; see DESIGN.md).
// One-hop projection queries are over-sampled: they train the entity and
// relation backbone every other model op builds on, mirroring the
// dominance of 1p instances in the standard benchmark workloads.
func DefaultTrainConfig(seed int64) TrainConfig {
	structures := []string{"1p", "1p", "1p", "1p", "2p", "3p"}
	structures = append(structures, query.TrainStructures...)
	return TrainConfig{
		QueriesPerStructure: 700,
		Steps:               8000,
		BatchSize:           16,
		NegSamples:          24,
		LR:                  0.01,
		LRDecay:             true,
		Seed:                seed,
		Structures:          structures,
		OneHopFromEdges:     true,
	}
}

// OneHopWorkload builds one 1p training query per (head, relation) pair
// of the graph, with the head's full successor set as answers.
func OneHopWorkload(g *kg.Graph) []query.Query {
	var out []query.Query
	for r := 0; r < g.NumRelations(); r++ {
		rel := kg.RelationID(r)
		for _, h := range g.HeadsOf(rel) {
			ans := query.NewSet(g.Successors(h, rel)...)
			out = append(out, query.Query{
				Structure:   "1p",
				Root:        query.NewProjection(rel, query.NewAnchor(h)),
				Answers:     ans,
				HardAnswers: ans,
			})
		}
	}
	return out
}

// TrainResult reports the outcome of a training run.
type TrainResult struct {
	// Steps is the number of optimizer steps completed over the model's
	// lifetime — on an interrupted run, the step the final checkpoint
	// was cut at; on a resumed run it still counts from step 0.
	Steps     int
	FinalLoss float64
	Elapsed   time.Duration
	// Interrupted is true when training stopped early because
	// CheckpointConfig.Interrupt fired; a final checkpoint was cut
	// before returning, so the run can be resumed.
	Interrupted bool
}

// Train runs the structure-batched training loop of Algorithm 1 on the
// model against the training graph.
func Train(m Interface, g *kg.Graph, cfg TrainConfig) (TrainResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	structs := cfg.Structures
	if structs == nil {
		structs = query.TrainStructures
	}
	var usable []string
	for _, s := range structs {
		if m.Supports(s) {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return TrainResult{}, fmt.Errorf("model: %s supports none of the training structures", m.Name())
	}

	// Duplicate names in Structures weight the round-robin schedule;
	// sample each distinct workload once.
	workloads := make(map[string][]query.Query, len(usable))
	for _, s := range usable {
		if _, done := workloads[s]; done {
			continue
		}
		var w []query.Query
		if s == "1p" && cfg.OneHopFromEdges {
			w = OneHopWorkload(g)
		} else {
			w = query.Workload(s, cfg.QueriesPerStructure, g, g, rng)
		}
		if len(w) == 0 {
			return TrainResult{}, fmt.Errorf("model: no training queries sampled for structure %s", s)
		}
		workloads[s] = w
	}

	opt := autodiff.NewAdam(cfg.LR)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers < 1 {
		workers = 1
	}
	tapes := make([]*autodiff.Tape, workers)
	for i := range tapes {
		tapes[i] = autodiff.NewTape()
	}

	// Training metrics are optional: computing the gradient norm walks
	// every parameter, so it is skipped entirely when no registry is set.
	var (
		stepsTotal *obs.Counter
		stepsRate  *obs.Gauge
		lossGauge  *obs.Gauge
		gradHist   *obs.Histogram
	)
	if cfg.Metrics != nil {
		stepsTotal = cfg.Metrics.Counter("halk_train_steps_total", "Optimizer steps completed.")
		stepsRate = cfg.Metrics.Gauge("halk_train_steps_per_second", "Training throughput over the trailing 100 steps.")
		lossGauge = cfg.Metrics.Gauge("halk_train_loss", "Mean batch loss at the latest optimizer step.")
		gradHist = cfg.Metrics.Histogram("halk_train_grad_norm", "Global L2 gradient norm per optimizer step.", gradNormBuckets)
	}

	// Resume: skip to the checkpointed step, restore the optimizer's
	// update counter, and replay the training RNG's draws for the steps
	// already done. The replay makes the same Intn/Int63 calls (with the
	// same bounds) the original run made, so the generator lands in the
	// exact state it had at the checkpoint — resumed training is
	// bit-identical to an uninterrupted run. Parameters and Adam moments
	// must already be restored (DecodeTrainState).
	ck := cfg.Checkpoint
	first := 0
	if ck != nil && ck.Resume != nil {
		first = ck.Resume.Step
		if first > cfg.Steps {
			first = cfg.Steps
		}
		opt.SetStepCount(ck.Resume.AdamStep)
		for step := 0; step < first; step++ {
			w := workloads[usable[step%len(usable)]]
			for b := 0; b < cfg.BatchSize; b++ {
				rng.Intn(len(w))
				rng.Int63()
			}
		}
	}

	// save cuts one rotation entry at a completed-step boundary; the
	// write is atomic and verified, so a crash mid-save can never
	// publish a torn file (see internal/ckpt).
	lastSaved := -1
	save := func(step int) error {
		if !ck.enabled() || step == lastSaved {
			return nil
		}
		path, err := saveCheckpoint(ck, m, step, opt.StepCount())
		if err != nil {
			return fmt.Errorf("model: checkpoint at step %d: %w", step, err)
		}
		lastSaved = step
		if ck.OnSave != nil {
			ck.OnSave(step, path)
		}
		return nil
	}

	start := time.Now()
	lastLoss := 0.0
	rateMark, rateStep := start, first
	for step := first; step < cfg.Steps; step++ {
		if ck != nil && ck.Interrupt != nil {
			select {
			case <-ck.Interrupt:
				// Graceful stop: cut a final checkpoint at this step
				// boundary so the run loses nothing and can resume.
				if err := save(step); err != nil {
					return TrainResult{Steps: step, FinalLoss: lastLoss, Elapsed: time.Since(start), Interrupted: true}, err
				}
				return TrainResult{Steps: step, FinalLoss: lastLoss, Elapsed: time.Since(start), Interrupted: true}, nil
			default:
			}
		}
		if cfg.LRDecay {
			opt.LR = cfg.LR * (1 - 0.9*float64(step)/float64(cfg.Steps))
		}
		structure := usable[step%len(usable)]
		w := workloads[structure]

		// Pre-draw the batch and per-instance RNG seeds on the main
		// goroutine so training is deterministic regardless of worker
		// scheduling; instances then run in parallel, accumulating
		// gradients through the tensors' mutex-protected sinks.
		type job struct {
			q    *query.Query
			seed int64
		}
		jobs := make([]job, cfg.BatchSize)
		for b := range jobs {
			jobs[b] = job{q: &w[rng.Intn(len(w))], seed: rng.Int63()}
		}

		losses := make([]float64, cfg.BatchSize)
		used := make([]bool, cfg.BatchSize)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				local := rand.New(rand.NewSource(0))
				for b := wk; b < len(jobs); b += workers {
					local.Seed(jobs[b].seed)
					tapes[wk].Reset()
					loss, ok := m.Loss(tapes[wk], jobs[b].q, cfg.NegSamples, local)
					if !ok {
						continue
					}
					tapes[wk].Backward(loss)
					losses[b] = loss.Value()[0]
					used[b] = true
				}
			}(wk)
		}
		wg.Wait()

		batchLoss, n := 0.0, 0
		for b := range jobs {
			if used[b] {
				batchLoss += losses[b]
				n++
			}
		}
		if n > 0 {
			if gradHist != nil {
				gradHist.Observe(gradNorm(m.Params()) / float64(n))
			}
			opt.Step(m.Params(), float64(n))
			lastLoss = batchLoss / float64(n)
			if stepsTotal != nil {
				stepsTotal.Inc()
				lossGauge.Set(lastLoss)
				if done := step + 1 - rateStep; done >= 100 {
					if dt := time.Since(rateMark).Seconds(); dt > 0 {
						stepsRate.Set(float64(done) / dt)
					}
					rateMark, rateStep = time.Now(), step+1
				}
			}
			if cfg.Progress != nil && step%100 == 0 {
				cfg.Progress(step, lastLoss)
			}
		}
		// Periodic checkpoint, aligned to absolute step numbers so a
		// resumed run keeps the original cadence. A failed write is a
		// hard error: silently continuing would report a durability the
		// run does not have.
		if ck.enabled() && ck.Every > 0 && (step+1)%ck.Every == 0 {
			if err := save(step + 1); err != nil {
				return TrainResult{Steps: step + 1, FinalLoss: lastLoss, Elapsed: time.Since(start)}, err
			}
		}
	}
	// Final rotation entry at the last step, so a later -resume with a
	// larger -steps budget extends this run instead of restarting it.
	if err := save(cfg.Steps); err != nil {
		return TrainResult{Steps: cfg.Steps, FinalLoss: lastLoss, Elapsed: time.Since(start)}, err
	}
	return TrainResult{Steps: cfg.Steps, FinalLoss: lastLoss, Elapsed: time.Since(start)}, nil
}

// SampleNegatives draws up to m entities outside the answer set,
// uniformly at random. Returns nil if the answer set covers the whole
// universe.
func SampleNegatives(answers query.Set, numEntities, m int, rng *rand.Rand) []kg.EntityID {
	if len(answers) >= numEntities {
		return nil
	}
	out := make([]kg.EntityID, 0, m)
	for len(out) < m {
		e := kg.EntityID(rng.Intn(numEntities))
		if !answers.Has(e) {
			out = append(out, e)
		}
	}
	return out
}

// SamplePositive draws one answer uniformly at random.
func SamplePositive(answers query.Set, rng *rand.Rand) (kg.EntityID, bool) {
	if len(answers) == 0 {
		return 0, false
	}
	// Map iteration order is random but not seeded; sort for determinism.
	ids := answers.Slice()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))], true
}
