package query

import (
	"fmt"
	"sort"
)

// tmpl is an ungrounded query-structure template: the shape of the
// computation graph without concrete anchors or relations.
type tmpl struct {
	op   Op
	kids []tmpl
}

func ta() tmpl           { return tmpl{op: OpAnchor} }
func tp(k tmpl) tmpl     { return tmpl{op: OpProjection, kids: []tmpl{k}} }
func tn(k tmpl) tmpl     { return tmpl{op: OpNegation, kids: []tmpl{k}} }
func ti(ks ...tmpl) tmpl { return tmpl{op: OpIntersection, kids: ks} }
func td(ks ...tmpl) tmpl { return tmpl{op: OpDifference, kids: ks} }
func tu(ks ...tmpl) tmpl { return tmpl{op: OpUnion, kids: ks} }
func twoIPP(k int) tmpl  { return tp(tp(ti(manyP(k)...))) }
func manyP(k int) []tmpl {
	out := make([]tmpl, k)
	for i := range out {
		out[i] = tp(ta())
	}
	return out
}

// structures holds every named query structure used in the paper:
// 12 EPFO+difference structures (Tables I, II), 4 negation structures
// (Tables III, IV), 6 large structures (Fig. 6a, Fig. 6c) and the
// query-size ladder of Table VI.
var structures = map[string]tmpl{
	"1p": tp(ta()),
	"2p": tp(tp(ta())),
	"3p": tp(tp(tp(ta()))),
	"2i": ti(manyP(2)...),
	"3i": ti(manyP(3)...),
	"ip": tp(ti(manyP(2)...)),
	"pi": ti(tp(tp(ta())), tp(ta())),
	"2u": tu(manyP(2)...),
	"up": tp(tu(manyP(2)...)),
	"2d": td(manyP(2)...),
	"3d": td(manyP(3)...),
	"dp": tp(td(manyP(2)...)),

	"2in": ti(tp(ta()), tn(tp(ta()))),
	"3in": ti(tp(ta()), tp(ta()), tn(tp(ta()))),
	"pin": ti(tp(tp(ta())), tn(tp(ta()))),
	"pni": ti(tn(tp(tp(ta()))), tp(ta())),

	"2ipp":  twoIPP(2),
	"2ippu": tu(twoIPP(2), tp(ta())),
	"2ippd": td(twoIPP(2), tp(ta())),
	"3ipp":  twoIPP(3),
	"3ippu": tu(twoIPP(3), tp(ta())),
	"3ippd": td(twoIPP(3), tp(ta())),

	"pip":  tp(ti(tp(tp(ta())), tp(ta()))),
	"p3ip": tp(ti(tp(tp(ta())), tp(ta()), tp(ta()))),
}

// TrainStructures are the structures used during training (Sec. IV-A:
// ip, pi, 2u, up and dp are held out to measure generalisation).
var TrainStructures = []string{"1p", "2p", "3p", "2i", "3i", "2u", "2d", "3d", "2in", "3in", "pin", "pni"}

// EPFOStructures are the 12 structures of Tables I and II.
var EPFOStructures = []string{"1p", "2p", "3p", "2i", "3i", "ip", "pi", "2u", "up", "2d", "3d", "dp"}

// NegationStructures are the 4 structures of Tables III and IV.
var NegationStructures = []string{"2in", "3in", "pni", "pin"}

// LargeStructures are the 6 structures of Fig. 6a and Fig. 6c.
var LargeStructures = []string{"2ipp", "2ippu", "2ippd", "3ipp", "3ippu", "3ippd"}

// SizeLadder maps Table VI query sizes 1..5 to their example structures.
var SizeLadder = []string{"1p", "2p", "pi", "pip", "p3ip"}

// StructureNames returns every defined structure name, sorted.
func StructureNames() []string {
	out := make([]string, 0, len(structures))
	for n := range structures {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasStructure reports whether name is a known structure.
func HasStructure(name string) bool {
	_, ok := structures[name]
	return ok
}

// structureOf returns the template, panicking on unknown names.
func structureOf(name string) tmpl {
	t, ok := structures[name]
	if !ok {
		panic(fmt.Sprintf("query: unknown structure %q", name))
	}
	return t
}

// UsesNegation reports whether the structure contains a negation node.
func UsesNegation(name string) bool { return tmplUses(structureOf(name), OpNegation) }

// UsesDifference reports whether the structure contains a difference node.
func UsesDifference(name string) bool { return tmplUses(structureOf(name), OpDifference) }

func tmplUses(t tmpl, op Op) bool {
	if t.op == op {
		return true
	}
	for _, k := range t.kids {
		if tmplUses(k, op) {
			return true
		}
	}
	return false
}
