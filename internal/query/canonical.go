package query

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalKey renders the query in a deterministic canonical form:
// structurally, the same prefix notation as Node.String, but with the
// operands of the commutative operators — intersection and union (and
// therefore the disjunct list of a DNF rewrite) — sorted
// lexicographically by their own canonical keys, and likewise the
// subtrahend list of a difference (whose minuend position is fixed but
// whose subtrahends commute). Logically equivalent argument orderings
// such as i(a, b) and i(b, a) collide on one key, which makes the result
// suitable as an answer-cache key: one cache entry serves every
// phrasing of the query. Anchors and relations render by ID, so keys are
// stable across processes and independent of dictionary name order.
func CanonicalKey(n *Node) string {
	var b strings.Builder
	writeCanonical(&b, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, n *Node) {
	switch n.Op {
	case OpAnchor:
		fmt.Fprintf(b, "e%d", n.Anchor)
		return
	case OpProjection:
		fmt.Fprintf(b, "proj[r%d](", n.Rel)
		writeCanonical(b, n.Args[0])
		b.WriteByte(')')
		return
	case OpNegation:
		b.WriteString("neg(")
		writeCanonical(b, n.Args[0])
		b.WriteByte(')')
		return
	case OpIntersection, OpUnion:
		keys := make([]string, len(n.Args))
		for i, a := range n.Args {
			keys[i] = CanonicalKey(a)
		}
		sort.Strings(keys)
		b.WriteString(n.Op.String())
		b.WriteByte('(')
		b.WriteString(strings.Join(keys, ", "))
		b.WriteByte(')')
		return
	case OpDifference:
		subs := make([]string, len(n.Args)-1)
		for i, a := range n.Args[1:] {
			subs[i] = CanonicalKey(a)
		}
		sort.Strings(subs)
		b.WriteString("diff(")
		writeCanonical(b, n.Args[0])
		b.WriteString(", ")
		b.WriteString(strings.Join(subs, ", "))
		b.WriteByte(')')
		return
	}
	// Unknown ops fall back to the plain rendering.
	n.write(b)
}
