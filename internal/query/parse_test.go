package query

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
)

func dslDicts() (*kg.Dict, *kg.Dict) {
	ents, rels := kg.NewDict(), kg.NewDict()
	for _, e := range []string{"Oscar", "USA", "e0042"} {
		ents.Add(e)
	}
	for _, r := range []string{"directed", "awardWonBy", "nationalOf"} {
		rels.Add(r)
	}
	return ents, rels
}

func TestParseDSLRoundTripExamples(t *testing.T) {
	ents, rels := dslDicts()
	cases := []struct {
		src  string
		want string
	}{
		{"Oscar", "e0"},
		{"p[directed](Oscar)", "proj[r0](e0)"},
		{"proj[directed](inter(proj[awardWonBy](Oscar), proj[nationalOf](USA)))",
			"proj[r0](inter(proj[r1](e0), proj[r2](e1)))"},
		{"d(p[directed](Oscar), p[directed](USA))", "diff(proj[r0](e0), proj[r0](e1))"},
		{"n(p[awardWonBy](Oscar))", "neg(proj[r1](e0))"},
		{"u(p[directed](Oscar), p[directed](USA), p[directed](e0042))",
			"union(proj[r0](e0), proj[r0](e1), proj[r0](e2))"},
	}
	for _, c := range cases {
		n, err := Parse(c.src, ents, rels)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if n.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, n, c.want)
		}
	}
}

func TestParseDSLErrors(t *testing.T) {
	ents, rels := dslDicts()
	bad := []string{
		"",
		"p[directed](Oscar",          // unbalanced
		"p[nope](Oscar)",             // unknown relation
		"p[directed](Nobody)",        // unknown entity
		"i(p[directed](Oscar))",      // intersection arity
		"n(p[directed](Oscar), USA)", // negation arity
		"p[directed](Oscar) USA",     // trailing
		"p(Oscar)",                   // projection without relation
		"i(p[directed](Oscar); USA)", // bad separator
	}
	for _, src := range bad {
		if _, err := Parse(src, ents, rels); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestParseDSLInverseOfString: every sampled query can be re-parsed from
// its String() form (using the dataset's raw eN/rN names would require a
// dict with those names — use the names the dicts carry).
func TestParseDSLInverseOfString(t *testing.T) {
	ds := kg.SynthFB237(91)
	s := NewSampler(ds.Train, rand.New(rand.NewSource(92)))
	for _, structure := range []string{"1p", "2p", "2i", "2d", "pni", "up", "2ippd"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		// Node.String prints ids as eN/rN; translate to dictionary names.
		src := q.String()
		src = translateIDs(src, ds.Train)
		back, err := Parse(src, ds.Train.Entities, ds.Train.Relations)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", structure, src, err)
		}
		if back.String() != q.String() {
			t.Errorf("%s: round trip changed query:\n  %s\n  %s", structure, q, back)
		}
	}
}

// translateIDs rewrites eN/rN tokens in a Node.String rendering into the
// dictionary names of the graph (which for synthetic datasets are e0042
// style and differ from the raw indices).
func translateIDs(src string, g *kg.Graph) string {
	var out strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		if (c == 'e' || c == 'r') && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			id := 0
			for _, d := range src[i+1 : j] {
				id = id*10 + int(d-'0')
			}
			if c == 'e' {
				out.WriteString(g.Entities.Name(int32(id)))
			} else {
				out.WriteString(g.Relations.Name(int32(id)))
			}
			i = j
			continue
		}
		out.WriteByte(c)
		i++
	}
	return out.String()
}
