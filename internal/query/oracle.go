package query

import "github.com/halk-kg/halk/internal/kg"

// Set is an entity set with set-algebra helpers.
type Set map[kg.EntityID]struct{}

// NewSet builds a set from the given entities.
func NewSet(es ...kg.EntityID) Set {
	s := make(Set, len(es))
	for _, e := range es {
		s[e] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(e kg.EntityID) bool { _, ok := s[e]; return ok }

// Slice returns the members in unspecified order.
func (s Set) Slice() []kg.EntityID {
	out := make([]kg.EntityID, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(Set)
	for e := range small {
		if big.Has(e) {
			out[e] = struct{}{}
		}
	}
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make(Set, len(s)+len(t))
	for e := range s {
		out[e] = struct{}{}
	}
	for e := range t {
		out[e] = struct{}{}
	}
	return out
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	out := make(Set)
	for e := range s {
		if !t.Has(e) {
			out[e] = struct{}{}
		}
	}
	return out
}

// Complement returns the complement of s with respect to a universe of n
// entities (ids 0..n-1).
func (s Set) Complement(n int) Set {
	out := make(Set, n-len(s))
	for e := kg.EntityID(0); int(e) < n; e++ {
		if !s.Has(e) {
			out[e] = struct{}{}
		}
	}
	return out
}

// Answers evaluates the query with exact set semantics against g: the
// ground-truth oracle. The universal set for negation is the full entity
// dictionary of g.
func Answers(n *Node, g *kg.Graph) Set {
	switch n.Op {
	case OpAnchor:
		return NewSet(n.Anchor)
	case OpProjection:
		child := Answers(n.Args[0], g)
		out := make(Set)
		for e := range child {
			for _, t := range g.Successors(e, n.Rel) {
				out[t] = struct{}{}
			}
		}
		return out
	case OpIntersection:
		out := Answers(n.Args[0], g)
		for _, a := range n.Args[1:] {
			out = out.Intersect(Answers(a, g))
			if len(out) == 0 {
				return out
			}
		}
		return out
	case OpDifference:
		out := Answers(n.Args[0], g)
		for _, a := range n.Args[1:] {
			out = out.Minus(Answers(a, g))
			if len(out) == 0 {
				return out
			}
		}
		return out
	case OpNegation:
		return Answers(n.Args[0], g).Complement(g.NumEntities())
	case OpUnion:
		out := make(Set)
		for _, a := range n.Args {
			out = out.Union(Answers(a, g))
		}
		return out
	}
	panic("query: Answers: unknown op")
}
