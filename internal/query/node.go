// Package query implements first-order logical queries over knowledge
// graphs as computation DAGs (HaLk Sec. II-A): anchor entities at the
// sources, and projection / intersection / difference / negation / union
// operations on the internal nodes. It provides the benchmark query
// structures used in the paper's evaluation, a ground-truth oracle with
// exact set semantics, a workload sampler, and the DNF rewrite that
// lifts all unions to the top level (Sec. III-F).
package query

import (
	"fmt"
	"strings"

	"github.com/halk-kg/halk/internal/kg"
)

// Op enumerates the node kinds of a computation graph.
type Op int

// The five logical operations plus the anchor leaf.
const (
	OpAnchor Op = iota
	OpProjection
	OpIntersection
	OpDifference // Args[0] minus Args[1..]
	OpNegation
	OpUnion
)

// String returns the conventional short name of the operation.
func (o Op) String() string {
	switch o {
	case OpAnchor:
		return "anchor"
	case OpProjection:
		return "proj"
	case OpIntersection:
		return "inter"
	case OpDifference:
		return "diff"
	case OpNegation:
		return "neg"
	case OpUnion:
		return "union"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Node is one node of a query computation DAG. The target node of the
// query is the root of the tree.
type Node struct {
	Op     Op
	Anchor kg.EntityID   // valid when Op == OpAnchor
	Rel    kg.RelationID // valid when Op == OpProjection
	Args   []*Node
}

// NewAnchor returns an anchor leaf.
func NewAnchor(e kg.EntityID) *Node { return &Node{Op: OpAnchor, Anchor: e} }

// NewProjection returns the projection of child through relation r.
func NewProjection(r kg.RelationID, child *Node) *Node {
	return &Node{Op: OpProjection, Rel: r, Args: []*Node{child}}
}

// NewIntersection returns the intersection of the children (k >= 2).
func NewIntersection(children ...*Node) *Node {
	if len(children) < 2 {
		panic("query: intersection needs at least two children")
	}
	return &Node{Op: OpIntersection, Args: children}
}

// NewDifference returns children[0] minus the remaining children.
func NewDifference(children ...*Node) *Node {
	if len(children) < 2 {
		panic("query: difference needs at least two children")
	}
	return &Node{Op: OpDifference, Args: children}
}

// NewNegation returns the complement of child with respect to the
// universal entity set.
func NewNegation(child *Node) *Node {
	return &Node{Op: OpNegation, Args: []*Node{child}}
}

// NewUnion returns the union of the children (k >= 2).
func NewUnion(children ...*Node) *Node {
	if len(children) < 2 {
		panic("query: union needs at least two children")
	}
	return &Node{Op: OpUnion, Args: children}
}

// Size returns the number of relational edges (projections) in the
// query, the "query size" measure of Table VI.
func (n *Node) Size() int {
	s := 0
	if n.Op == OpProjection {
		s = 1
	}
	for _, a := range n.Args {
		s += a.Size()
	}
	return s
}

// NumVariables counts the variable (non-anchor) nodes of the DAG,
// i.e. the nodes a subgraph matcher must bind.
func (n *Node) NumVariables() int {
	s := 0
	if n.Op != OpAnchor {
		s = 1
	}
	for _, a := range n.Args {
		s += a.NumVariables()
	}
	return s
}

// Anchors returns the anchor entities in left-to-right order.
func (n *Node) Anchors() []kg.EntityID {
	var out []kg.EntityID
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Op == OpAnchor {
			out = append(out, m.Anchor)
			return
		}
		for _, a := range m.Args {
			walk(a)
		}
	}
	walk(n)
	return out
}

// Clone returns a deep copy of the query tree.
func (n *Node) Clone() *Node {
	c := &Node{Op: n.Op, Anchor: n.Anchor, Rel: n.Rel}
	for _, a := range n.Args {
		c.Args = append(c.Args, a.Clone())
	}
	return c
}

// String renders the query in a compact prefix notation, e.g.
// "proj[r3](inter(proj[r1](e5), proj[r2](e9)))".
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Op {
	case OpAnchor:
		fmt.Fprintf(b, "e%d", n.Anchor)
		return
	case OpProjection:
		fmt.Fprintf(b, "proj[r%d](", n.Rel)
	default:
		b.WriteString(n.Op.String())
		b.WriteByte('(')
	}
	for i, a := range n.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.write(b)
	}
	b.WriteByte(')')
}

// Validate checks arity constraints of the whole tree.
func (n *Node) Validate() error {
	switch n.Op {
	case OpAnchor:
		if len(n.Args) != 0 {
			return fmt.Errorf("query: anchor with %d children", len(n.Args))
		}
	case OpProjection, OpNegation:
		if len(n.Args) != 1 {
			return fmt.Errorf("query: %s with %d children, want 1", n.Op, len(n.Args))
		}
	case OpIntersection, OpDifference, OpUnion:
		if len(n.Args) < 2 {
			return fmt.Errorf("query: %s with %d children, want >= 2", n.Op, len(n.Args))
		}
	default:
		return fmt.Errorf("query: unknown op %d", int(n.Op))
	}
	for _, a := range n.Args {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}
