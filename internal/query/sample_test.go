package query

import (
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
)

func TestStructureCatalog(t *testing.T) {
	names := StructureNames()
	if len(names) != len(structures) {
		t.Fatalf("StructureNames len = %d, want %d", len(names), len(structures))
	}
	for _, lists := range [][]string{TrainStructures, EPFOStructures, NegationStructures, LargeStructures, SizeLadder} {
		for _, n := range lists {
			if !HasStructure(n) {
				t.Errorf("structure %q missing from catalog", n)
			}
		}
	}
	if !UsesNegation("2in") || UsesNegation("2d") {
		t.Error("UsesNegation wrong")
	}
	if !UsesDifference("dp") || UsesDifference("2u") {
		t.Error("UsesDifference wrong")
	}
}

func TestSizeLadderSizes(t *testing.T) {
	// Table VI: query sizes 1..5 for 1p, 2p, pi, pip, p3ip.
	ds := kg.SynthNELL(11)
	s := NewSampler(ds.Test, rand.New(rand.NewSource(1)))
	for i, name := range SizeLadder {
		q, ok := s.Sample(name)
		if !ok {
			t.Fatalf("could not sample %s", name)
		}
		if got := q.Size(); got != i+1 {
			t.Errorf("%s: Size = %d, want %d", name, got, i+1)
		}
	}
}

func TestSampleAllStructuresNonEmpty(t *testing.T) {
	ds := kg.SynthFB15k(5)
	s := NewSampler(ds.Test, rand.New(rand.NewSource(2)))
	for _, name := range StructureNames() {
		q, ok := s.Sample(name)
		if !ok {
			t.Errorf("%s: sampling failed", name)
			continue
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%s: invalid query: %v", name, err)
		}
		if len(Answers(q, ds.Test)) == 0 {
			t.Errorf("%s: sampled query has empty answers", name)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	ds := kg.SynthFB237(3)
	a := NewSampler(ds.Test, rand.New(rand.NewSource(9)))
	b := NewSampler(ds.Test, rand.New(rand.NewSource(9)))
	for i := 0; i < 5; i++ {
		qa, oka := a.Sample("pi")
		qb, okb := b.Sample("pi")
		if oka != okb {
			t.Fatal("determinism broken (ok flags differ)")
		}
		if oka && qa.String() != qb.String() {
			t.Fatalf("query %d differs: %s vs %s", i, qa, qb)
		}
	}
}

func TestWorkloadHardAnswers(t *testing.T) {
	ds := kg.SynthFB237(4)
	rng := rand.New(rand.NewSource(7))
	qs := Workload("1p", 20, ds.Train, ds.Test, rng)
	if len(qs) == 0 {
		t.Fatal("no eval queries sampled")
	}
	for _, q := range qs {
		if len(q.HardAnswers) == 0 {
			t.Error("eval query with no hard answers")
		}
		for e := range q.HardAnswers {
			if !q.Answers.Has(e) {
				t.Error("hard answer not in full answer set")
			}
			if Answers(q.Root, ds.Train).Has(e) {
				t.Error("hard answer already derivable from train graph")
			}
		}
	}
}

func TestWorkloadTrainingMode(t *testing.T) {
	ds := kg.SynthFB237(4)
	rng := rand.New(rand.NewSource(8))
	qs := Workload("2i", 10, ds.Train, ds.Train, rng)
	if len(qs) != 10 {
		t.Fatalf("got %d training queries, want 10", len(qs))
	}
	for _, q := range qs {
		if len(q.HardAnswers) != len(q.Answers) {
			t.Error("training workload should have HardAnswers == Answers")
		}
	}
}

func TestNegationWorkloadHasLargeAnswerSets(t *testing.T) {
	// The paper observes that negation queries carry very large candidate
	// answer sets; our stand-in datasets must reproduce that.
	ds := kg.SynthFB15k(6)
	rng := rand.New(rand.NewSource(3))
	qs := Workload("2in", 10, ds.Train, ds.Train, rng)
	maxLen := 0
	for _, q := range qs {
		if len(q.Answers) > maxLen {
			maxLen = len(q.Answers)
		}
	}
	if maxLen < 5 {
		t.Errorf("negation answer sets suspiciously small: max %d", maxLen)
	}
}

func TestDNFEquivalenceOnSampledQueries(t *testing.T) {
	ds := kg.SynthFB237(12)
	s := NewSampler(ds.Test, rand.New(rand.NewSource(5)))
	for _, name := range []string{"2u", "up", "2ippu", "3ippu", "pi", "2in", "dp"} {
		for i := 0; i < 5; i++ {
			q, ok := s.Sample(name)
			if !ok {
				t.Fatalf("%s: sampling failed", name)
			}
			want := Answers(q, ds.Test)
			disjuncts := DNF(q)
			got := make(Set)
			for _, d := range disjuncts {
				if HasUnion(d) {
					t.Fatalf("%s: DNF disjunct still contains union: %s", name, d)
				}
				if err := d.Validate(); err != nil {
					t.Fatalf("%s: invalid disjunct: %v", name, err)
				}
				got = got.Union(Answers(d, ds.Test))
			}
			if len(got) != len(want) {
				t.Fatalf("%s: DNF answers %d != original %d", name, len(got), len(want))
			}
			for e := range want {
				if !got.Has(e) {
					t.Fatalf("%s: DNF lost answer %d", name, e)
				}
			}
		}
	}
}

func TestDNFUnionFreeQueryIsIdentity(t *testing.T) {
	q := NewProjection(1, NewIntersection(
		NewProjection(0, NewAnchor(3)),
		NewProjection(2, NewAnchor(4)),
	))
	ds := DNF(q)
	if len(ds) != 1 {
		t.Fatalf("DNF produced %d disjuncts for union-free query", len(ds))
	}
	if ds[0].String() != q.String() {
		t.Errorf("DNF changed union-free query: %s vs %s", ds[0], q)
	}
}

func TestDNFNegationOverUnionDeMorgan(t *testing.T) {
	// ¬(P(r0,a) ∪ P(r1,b)) must become a single conjunct ¬A ∧ ¬B.
	q := NewNegation(NewUnion(
		NewProjection(0, NewAnchor(0)),
		NewProjection(1, NewAnchor(1)),
	))
	ds := DNF(q)
	if len(ds) != 1 {
		t.Fatalf("got %d disjuncts, want 1", len(ds))
	}
	d := ds[0]
	if d.Op != OpIntersection || len(d.Args) != 2 ||
		d.Args[0].Op != OpNegation || d.Args[1].Op != OpNegation {
		t.Errorf("De Morgan rewrite wrong: %s", d)
	}
}

func TestDNFDisjunctCounts(t *testing.T) {
	u := NewUnion(NewProjection(0, NewAnchor(0)), NewProjection(1, NewAnchor(1)))
	cases := []struct {
		q    *Node
		want int
	}{
		{NewUnion(NewProjection(0, NewAnchor(0)), NewProjection(0, NewAnchor(1))), 2},
		{NewProjection(2, u.Clone()), 2},                              // up
		{NewIntersection(u.Clone(), u.Clone()), 4},                    // cross product
		{NewDifference(u.Clone(), NewProjection(2, NewAnchor(2))), 2}, // minuend distributes
		{NewDifference(NewProjection(2, NewAnchor(2)), u.Clone()), 1}, // subtrahend flattens
	}
	for i, c := range cases {
		if got := len(DNF(c.q)); got != c.want {
			t.Errorf("case %d: %d disjuncts, want %d", i, got, c.want)
		}
	}
}
