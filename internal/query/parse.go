package query

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/halk-kg/halk/internal/kg"
)

// Parse reads a query from the compact prefix DSL that Node.String
// emits, resolving entity and relation names against the dictionaries:
//
//	proj[directed](inter(proj[awardWonBy](Oscar), proj[nationalOf](USA)))
//
// Operator names may be abbreviated: p/proj, i/inter, d/diff, n/neg,
// u/union. Anchors are entity names (anything that is not an operator
// keyword).
func Parse(src string, entities, relations *kg.Dict) (*Node, error) {
	p := &dslParser{toks: dslTokens(src), ents: entities, rels: relations}
	n, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("query: parse: %w", err)
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("query: parse: unexpected trailing token %q", p.peek())
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

type dslParser struct {
	toks []string
	pos  int
	ents *kg.Dict
	rels *kg.Dict
}

func (p *dslParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *dslParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *dslParser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("expected %q, got %q", tok, got)
	}
	return nil
}

var dslOps = map[string]Op{
	"p": OpProjection, "proj": OpProjection,
	"i": OpIntersection, "inter": OpIntersection,
	"d": OpDifference, "diff": OpDifference,
	"n": OpNegation, "neg": OpNegation,
	"u": OpUnion, "union": OpUnion,
}

func (p *dslParser) parseExpr() (*Node, error) {
	tok := p.next()
	if tok == "" {
		return nil, fmt.Errorf("unexpected end of query")
	}
	op, isOp := dslOps[strings.ToLower(tok)]
	if !isOp || (p.peek() != "(" && p.peek() != "[") {
		// An anchor entity name.
		id, ok := p.ents.ID(tok)
		if !ok {
			return nil, fmt.Errorf("unknown entity %q", tok)
		}
		return NewAnchor(kg.EntityID(id)), nil
	}

	switch op {
	case OpProjection:
		if err := p.expect("["); err != nil {
			return nil, err
		}
		relName := p.next()
		rel, ok := p.rels.ID(relName)
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", relName)
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return NewProjection(kg.RelationID(rel), args[0]), nil
	case OpNegation:
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return NewNegation(args[0]), nil
	default:
		args, err := p.parseArgs(2, -1)
		if err != nil {
			return nil, err
		}
		return &Node{Op: op, Args: args}, nil
	}
}

// parseArgs parses "(expr, expr, ...)" with the given arity bounds
// (max < 0 means unbounded).
func (p *dslParser) parseArgs(min, max int) ([]*Node, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []*Node
	for {
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, n)
		switch tok := p.next(); tok {
		case ",":
			continue
		case ")":
			if len(args) < min {
				return nil, fmt.Errorf("operator needs at least %d arguments, got %d", min, len(args))
			}
			if max >= 0 && len(args) > max {
				return nil, fmt.Errorf("operator takes at most %d arguments, got %d", max, len(args))
			}
			return args, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')', got %q", tok)
		}
	}
}

// dslTokens splits on brackets, parens and commas; names may contain any
// other non-space runes (so dataset names like "e0042" or "7th Heaven"
// quoted with underscores work).
func dslTokens(src string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range src {
		switch {
		case unicode.IsSpace(r):
			flush()
		case strings.ContainsRune("()[],", r):
			flush()
			toks = append(toks, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}
