package query

import (
	"math/rand"

	"github.com/halk-kg/halk/internal/kg"
)

// Sampler grounds query-structure templates against a knowledge graph by
// backward sampling: a target answer entity is drawn first and the tree
// is instantiated top-down so the target is guaranteed to satisfy the
// positive branches; negative branches (negation, difference subtrahends)
// are re-sampled until they exclude the target.
type Sampler struct {
	G   *kg.Graph
	rng *rand.Rand

	targetable []kg.EntityID // entities with at least one incoming edge
	relations  []kg.RelationID
}

// NewSampler prepares a sampler over g using rng for all randomness.
func NewSampler(g *kg.Graph, rng *rand.Rand) *Sampler {
	s := &Sampler{G: g, rng: rng}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		for r := 0; r < g.NumRelations(); r++ {
			if len(g.Predecessors(e, kg.RelationID(r))) > 0 {
				s.targetable = append(s.targetable, e)
				break
			}
		}
	}
	for r := 0; r < g.NumRelations(); r++ {
		s.relations = append(s.relations, kg.RelationID(r))
	}
	return s
}

const (
	groundRetries = 8
	sampleRetries = 64
)

// Sample grounds the named structure, returning a query whose answer set
// on the sampler's graph is guaranteed non-empty. ok is false if no
// grounding was found within the retry budget (e.g. on degenerate
// graphs).
func (s *Sampler) Sample(structure string) (*Node, bool) {
	t := structureOf(structure)
	for attempt := 0; attempt < sampleRetries; attempt++ {
		target := s.randomTarget()
		n, ok := s.ground(t, target)
		if !ok {
			continue
		}
		if len(Answers(n, s.G)) == 0 {
			continue // negative branches can void the whole answer set
		}
		return n, true
	}
	return nil, false
}

func (s *Sampler) randomTarget() kg.EntityID {
	if len(s.targetable) == 0 {
		return kg.EntityID(s.rng.Intn(s.G.NumEntities()))
	}
	return s.targetable[s.rng.Intn(len(s.targetable))]
}

// ground instantiates t so that target ∈ answers of the positive
// branches.
func (s *Sampler) ground(t tmpl, target kg.EntityID) (*Node, bool) {
	switch t.op {
	case OpAnchor:
		return NewAnchor(target), true

	case OpProjection:
		// Choose an incoming edge (u, r, target) and recurse on u.
		rels := s.relationsInto(target)
		if len(rels) == 0 {
			return nil, false
		}
		for attempt := 0; attempt < groundRetries; attempt++ {
			r := rels[s.rng.Intn(len(rels))]
			preds := s.G.Predecessors(target, r)
			u := preds[s.rng.Intn(len(preds))]
			child, ok := s.ground(t.kids[0], u)
			if ok {
				return NewProjection(r, child), true
			}
		}
		return nil, false

	case OpIntersection:
		args := make([]*Node, len(t.kids))
		for i, k := range t.kids {
			c, ok := s.ground(k, target)
			if !ok {
				return nil, false
			}
			args[i] = c
		}
		return NewIntersection(args...), true

	case OpUnion:
		args := make([]*Node, len(t.kids))
		c, ok := s.ground(t.kids[0], target)
		if !ok {
			return nil, false
		}
		args[0] = c
		for i, k := range t.kids[1:] {
			c, ok := s.ground(k, s.randomTarget())
			if !ok {
				return nil, false
			}
			args[i+1] = c
		}
		return NewUnion(args...), true

	case OpDifference:
		args := make([]*Node, len(t.kids))
		c, ok := s.ground(t.kids[0], target)
		if !ok {
			return nil, false
		}
		args[0] = c
		for i, k := range t.kids[1:] {
			c, ok := s.groundExcluding(k, target)
			if !ok {
				return nil, false
			}
			args[i+1] = c
		}
		return NewDifference(args...), true

	case OpNegation:
		c, ok := s.groundExcluding(t.kids[0], target)
		if !ok {
			return nil, false
		}
		return NewNegation(c), true
	}
	panic("query: ground: unknown op")
}

// groundExcluding grounds t at a random target, retrying until the
// grounded subquery's answers do not contain excluded.
func (s *Sampler) groundExcluding(t tmpl, excluded kg.EntityID) (*Node, bool) {
	for attempt := 0; attempt < groundRetries; attempt++ {
		other := s.randomTarget()
		if other == excluded {
			continue
		}
		c, ok := s.ground(t, other)
		if !ok {
			continue
		}
		if !Answers(c, s.G).Has(excluded) {
			return c, true
		}
	}
	return nil, false
}

func (s *Sampler) relationsInto(e kg.EntityID) []kg.RelationID {
	var out []kg.RelationID
	for _, r := range s.relations {
		if len(s.G.Predecessors(e, r)) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Query is a grounded benchmark query with its ground-truth answers.
type Query struct {
	Structure string
	Root      *Node
	// Answers is the full answer set on the evaluation graph.
	Answers Set
	// HardAnswers are answers only derivable with the evaluation graph's
	// extra edges (answers(eval) \ answers(train)); metrics are computed
	// on these, the standard protocol for incomplete-KG query answering.
	// When a query has no hard answers it is skipped by the workload
	// generator unless train == eval (training workloads).
	HardAnswers Set
}

// Workload samples n queries of the named structure. Queries are sampled
// on (and answered against) evalG; trainG is used to determine hard
// answers. Pass trainG == evalG for a training workload, in which case
// HardAnswers == Answers. Returns fewer than n queries if sampling keeps
// failing (degenerate graphs).
func Workload(structure string, n int, trainG, evalG *kg.Graph, rng *rand.Rand) []Query {
	s := NewSampler(evalG, rng)
	out := make([]Query, 0, n)
	misses := 0
	for len(out) < n && misses < 20*n+100 {
		root, ok := s.Sample(structure)
		if !ok {
			misses++
			continue
		}
		ans := Answers(root, evalG)
		hard := ans
		if trainG != evalG {
			hard = ans.Minus(Answers(root, trainG))
			if len(hard) == 0 {
				misses++
				continue
			}
		}
		out = append(out, Query{Structure: structure, Root: root, Answers: ans, HardAnswers: hard})
	}
	return out
}
