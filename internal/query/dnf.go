package query

// DNF rewrites a query into Disjunctive Normal Form: a list of
// union-free conjunctive queries whose answer union equals the original
// query's answers (HaLk Sec. III-F). The union operator thereby becomes
// non-parametric and exact: a model answers each conjunctive query
// separately and the entity-to-query distance is the minimum over the
// disjuncts.
//
// Rewrite rules:
//
//	U(a, b)        -> dnf(a) ++ dnf(b)
//	P(r, U(a, b))  -> P(r, a) ∨ P(r, b)
//	I(U(a,b), c)   -> I(a, c) ∨ I(b, c)            (cross product)
//	D(U(a,b), c)   -> D(a, c) ∨ D(b, c)            (minuend distributes)
//	D(a, U(b, c))  -> D(a, b, c)                   (A−(B∪C) = A−B−C)
//	N(U(a, b))     -> I(N(a), N(b))                (De Morgan)
func DNF(n *Node) []*Node {
	switch n.Op {
	case OpAnchor:
		return []*Node{n}

	case OpProjection:
		kids := DNF(n.Args[0])
		out := make([]*Node, len(kids))
		for i, k := range kids {
			out[i] = NewProjection(n.Rel, k)
		}
		return out

	case OpIntersection:
		lists := make([][]*Node, len(n.Args))
		for i, a := range n.Args {
			lists[i] = DNF(a)
		}
		var out []*Node
		cross(lists, func(combo []*Node) {
			args := append([]*Node(nil), combo...)
			out = append(out, &Node{Op: OpIntersection, Args: args})
		})
		return out

	case OpDifference:
		minuends := DNF(n.Args[0])
		// Subtrahend unions flatten into additional subtrahends.
		var subs []*Node
		for _, a := range n.Args[1:] {
			subs = append(subs, DNF(a)...)
		}
		out := make([]*Node, len(minuends))
		for i, m := range minuends {
			args := append([]*Node{m}, subs...)
			out[i] = &Node{Op: OpDifference, Args: args}
		}
		return out

	case OpNegation:
		kids := DNF(n.Args[0])
		if len(kids) == 1 {
			return []*Node{NewNegation(kids[0])}
		}
		// ¬(B ∪ C) = ¬B ∧ ¬C — a single conjunctive query.
		negs := make([]*Node, len(kids))
		for i, k := range kids {
			negs[i] = NewNegation(k)
		}
		return []*Node{{Op: OpIntersection, Args: negs}}

	case OpUnion:
		var out []*Node
		for _, a := range n.Args {
			out = append(out, DNF(a)...)
		}
		return out
	}
	panic("query: DNF: unknown op")
}

// cross invokes f for every combination taking one element from each list.
func cross(lists [][]*Node, f func([]*Node)) {
	combo := make([]*Node, len(lists))
	var rec func(i int)
	rec = func(i int) {
		if i == len(lists) {
			f(combo)
			return
		}
		for _, n := range lists[i] {
			combo[i] = n
			rec(i + 1)
		}
	}
	rec(0)
}

// HasUnion reports whether the tree contains a union node; after DNF it
// must not.
func HasUnion(n *Node) bool {
	if n.Op == OpUnion {
		return true
	}
	for _, a := range n.Args {
		if HasUnion(a) {
			return true
		}
	}
	return false
}
