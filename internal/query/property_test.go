package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/halk-kg/halk/internal/kg"
)

// randomSet builds a Set from arbitrary int16 values within a universe.
func randomSet(vals []uint16, universe int) Set {
	s := make(Set)
	for _, v := range vals {
		s[kg.EntityID(int(v)%universe)] = struct{}{}
	}
	return s
}

const propUniverse = 64

func TestSetAlgebraLaws(t *testing.T) {
	// De Morgan: ¬(A ∪ B) == ¬A ∩ ¬B over a fixed universe.
	deMorgan := func(av, bv []uint16) bool {
		a, b := randomSet(av, propUniverse), randomSet(bv, propUniverse)
		lhs := a.Union(b).Complement(propUniverse)
		rhs := a.Complement(propUniverse).Intersect(b.Complement(propUniverse))
		return setEq(lhs, rhs)
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Error("De Morgan:", err)
	}

	// A − B == A ∩ ¬B.
	minusAsIntersect := func(av, bv []uint16) bool {
		a, b := randomSet(av, propUniverse), randomSet(bv, propUniverse)
		return setEq(a.Minus(b), a.Intersect(b.Complement(propUniverse)))
	}
	if err := quick.Check(minusAsIntersect, nil); err != nil {
		t.Error("difference-as-intersection:", err)
	}

	// Double complement is identity.
	doubleComp := func(av []uint16) bool {
		a := randomSet(av, propUniverse)
		return setEq(a.Complement(propUniverse).Complement(propUniverse), a)
	}
	if err := quick.Check(doubleComp, nil); err != nil {
		t.Error("double complement:", err)
	}

	// Intersection is commutative and bounded by its inputs.
	interBounds := func(av, bv []uint16) bool {
		a, b := randomSet(av, propUniverse), randomSet(bv, propUniverse)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if !setEq(i1, i2) {
			return false
		}
		return len(i1) <= len(a) && len(i1) <= len(b)
	}
	if err := quick.Check(interBounds, nil); err != nil {
		t.Error("intersection bounds:", err)
	}
}

func setEq(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b.Has(e) {
			return false
		}
	}
	return true
}

// TestOracleDifferenceMatchesSetDefinition: D(A, B, C) == A − B − C for
// arbitrary sampled sub-queries.
func TestOracleDifferenceMatchesSetDefinition(t *testing.T) {
	ds := kg.SynthFB237(81)
	s := NewSampler(ds.Train, rand.New(rand.NewSource(82)))
	for i := 0; i < 10; i++ {
		q, ok := s.Sample("3d")
		if !ok {
			t.Fatal("sampling 3d failed")
		}
		want := Answers(q.Args[0], ds.Train).
			Minus(Answers(q.Args[1], ds.Train)).
			Minus(Answers(q.Args[2], ds.Train))
		got := Answers(q, ds.Train)
		if !setEq(got, want) {
			t.Fatalf("difference oracle mismatch: got %d, want %d", len(got), len(want))
		}
	}
}

// TestOracleMonotoneUnderGraphGrowth: for union-free, negation-free
// queries, answers on a supergraph contain answers on the subgraph.
func TestOracleMonotoneUnderGraphGrowth(t *testing.T) {
	ds := kg.SynthFB237(83)
	s := NewSampler(ds.Train, rand.New(rand.NewSource(84)))
	for _, structure := range []string{"1p", "2p", "2i", "3i", "pi", "ip", "2ipp"} {
		for i := 0; i < 3; i++ {
			q, ok := s.Sample(structure)
			if !ok {
				t.Fatalf("sampling %s failed", structure)
			}
			small := Answers(q, ds.Train)
			big := Answers(q, ds.Test)
			for e := range small {
				if !big.Has(e) {
					t.Fatalf("%s: answer %d lost when the graph grew", structure, e)
				}
			}
		}
	}
}
