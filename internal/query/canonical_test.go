package query

import "testing"

func TestCanonicalKeyCommutes(t *testing.T) {
	a := NewProjection(1, NewAnchor(5))
	b := NewProjection(2, NewAnchor(9))
	c := NewProjection(3, NewAnchor(7))

	cases := []struct {
		name string
		x, y *Node
	}{
		{"intersection", NewIntersection(a, b), NewIntersection(b, a)},
		{"union", NewUnion(a, b), NewUnion(b, a)},
		{"3-way intersection", NewIntersection(a, b, c), NewIntersection(c, a, b)},
		{"difference subtrahends", NewDifference(a, b, c), NewDifference(a, c, b)},
		{"nested", NewProjection(4, NewIntersection(a, NewUnion(b, c))),
			NewProjection(4, NewIntersection(NewUnion(c, b), a))},
	}
	for _, tc := range cases {
		kx, ky := CanonicalKey(tc.x), CanonicalKey(tc.y)
		if kx != ky {
			t.Errorf("%s: keys differ:\n  %s\n  %s", tc.name, kx, ky)
		}
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	a := NewProjection(1, NewAnchor(5))
	b := NewProjection(2, NewAnchor(9))

	cases := []struct {
		name string
		x, y *Node
	}{
		{"operator", NewIntersection(a, b), NewUnion(a, b)},
		{"difference minuend order", NewDifference(a, b), NewDifference(b, a)},
		{"relation", NewProjection(1, NewAnchor(5)), NewProjection(2, NewAnchor(5))},
		{"anchor", NewAnchor(5), NewAnchor(6)},
		{"negation", NewNegation(a), a},
	}
	for _, tc := range cases {
		kx, ky := CanonicalKey(tc.x), CanonicalKey(tc.y)
		if kx == ky {
			t.Errorf("%s: distinct queries share key %s", tc.name, kx)
		}
	}
}

func TestCanonicalKeyDeterministic(t *testing.T) {
	n := NewIntersection(
		NewProjection(3, NewUnion(NewAnchor(1), NewAnchor(2))),
		NewNegation(NewProjection(4, NewAnchor(8))),
	)
	k := CanonicalKey(n)
	for i := 0; i < 10; i++ {
		if got := CanonicalKey(n.Clone()); got != k {
			t.Fatalf("key varies: %s vs %s", got, k)
		}
	}
	// DNF rewrites of a union query canonicalise to the same key
	// regardless of the disjunct order the rewrite produced.
	u1 := NewUnion(NewProjection(1, NewAnchor(5)), NewProjection(2, NewAnchor(9)))
	u2 := NewUnion(NewProjection(2, NewAnchor(9)), NewProjection(1, NewAnchor(5)))
	if CanonicalKey(u1) != CanonicalKey(u2) {
		t.Error("DNF disjunct order leaks into the canonical key")
	}
}
