package query

import (
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
)

func TestNodeConstructorsAndValidate(t *testing.T) {
	q := NewProjection(1, NewIntersection(
		NewProjection(0, NewAnchor(3)),
		NewProjection(2, NewAnchor(4)),
	))
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := q.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	if got := q.NumVariables(); got != 4 {
		t.Errorf("NumVariables = %d, want 4", got)
	}
	anchors := q.Anchors()
	if len(anchors) != 2 || anchors[0] != 3 || anchors[1] != 4 {
		t.Errorf("Anchors = %v", anchors)
	}
	s := q.String()
	if !strings.Contains(s, "inter(") || !strings.Contains(s, "proj[r1](") {
		t.Errorf("String = %q", s)
	}
}

func TestNodeCloneDeep(t *testing.T) {
	q := NewDifference(NewProjection(0, NewAnchor(1)), NewProjection(1, NewAnchor(2)))
	c := q.Clone()
	c.Args[0].Rel = 9
	if q.Args[0].Rel == 9 {
		t.Error("Clone is shallow")
	}
}

func TestConstructorArityPanics(t *testing.T) {
	cases := []func(){
		func() { NewIntersection(NewAnchor(0)) },
		func() { NewDifference(NewAnchor(0)) },
		func() { NewUnion(NewAnchor(0)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValidateRejectsBadArity(t *testing.T) {
	bad := &Node{Op: OpNegation, Args: []*Node{NewAnchor(0), NewAnchor(1)}}
	if bad.Validate() == nil {
		t.Error("expected arity error for 2-child negation")
	}
	anchorWithKids := &Node{Op: OpAnchor, Args: []*Node{NewAnchor(0)}}
	if anchorWithKids.Validate() == nil {
		t.Error("expected arity error for anchor with children")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpAnchor: "anchor", OpProjection: "proj", OpIntersection: "inter",
		OpDifference: "diff", OpNegation: "neg", OpUnion: "union",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op should format as op(n)")
	}
}

// oracleGraph builds a small hand-checkable graph:
//
//	0 -r0-> 1, 0 -r0-> 2, 1 -r1-> 3, 2 -r1-> 3, 2 -r1-> 4, 5 -r0-> 4
func oracleGraph() *kg.Graph {
	ents, rels := kg.NewDict(), kg.NewDict()
	for i := 0; i < 6; i++ {
		ents.Add(string(rune('a' + i)))
	}
	rels.Add("r0")
	rels.Add("r1")
	g := kg.NewGraph(ents, rels)
	for _, tr := range []kg.Triple{
		{H: 0, R: 0, T: 1}, {H: 0, R: 0, T: 2}, {H: 1, R: 1, T: 3},
		{H: 2, R: 1, T: 3}, {H: 2, R: 1, T: 4}, {H: 5, R: 0, T: 4},
	} {
		g.AddTriple(tr)
	}
	return g
}

func setEqual(s Set, want ...kg.EntityID) bool {
	if len(s) != len(want) {
		return false
	}
	for _, e := range want {
		if !s.Has(e) {
			return false
		}
	}
	return true
}

func TestOracleProjectionChain(t *testing.T) {
	g := oracleGraph()
	q1 := NewProjection(0, NewAnchor(0))
	if !setEqual(Answers(q1, g), 1, 2) {
		t.Errorf("1p answers = %v", Answers(q1, g).Slice())
	}
	q2 := NewProjection(1, q1)
	if !setEqual(Answers(q2, g), 3, 4) {
		t.Errorf("2p answers = %v", Answers(q2, g).Slice())
	}
}

func TestOracleIntersectionDifferenceUnion(t *testing.T) {
	g := oracleGraph()
	b1 := NewProjection(1, NewProjection(0, NewAnchor(0))) // {3,4}
	b2 := NewProjection(0, NewAnchor(5))                   // {4}
	if !setEqual(Answers(NewIntersection(b1, b2), g), 4) {
		t.Error("intersection wrong")
	}
	if !setEqual(Answers(NewDifference(b1, b2), g), 3) {
		t.Error("difference wrong")
	}
	if !setEqual(Answers(NewUnion(b1, b2), g), 3, 4) {
		t.Error("union wrong")
	}
}

func TestOracleNegation(t *testing.T) {
	g := oracleGraph()
	q := NewNegation(NewProjection(0, NewAnchor(0))) // complement of {1,2}
	if !setEqual(Answers(q, g), 0, 3, 4, 5) {
		t.Errorf("negation answers = %v", Answers(q, g).Slice())
	}
	// 2in: P(r1, a2) ∩ ¬P(r0, a5) = {3,4} ∩ ¬{4} = {3}
	q2 := NewIntersection(
		NewProjection(1, NewAnchor(2)),
		NewNegation(NewProjection(0, NewAnchor(5))),
	)
	if !setEqual(Answers(q2, g), 3) {
		t.Errorf("2in answers = %v", Answers(q2, g).Slice())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	if !setEqual(a.Intersect(b), 3) {
		t.Error("Intersect")
	}
	if !setEqual(a.Union(b), 1, 2, 3, 4) {
		t.Error("Union")
	}
	if !setEqual(a.Minus(b), 1, 2) {
		t.Error("Minus")
	}
	if !setEqual(b.Complement(6), 0, 1, 2, 5) {
		t.Error("Complement")
	}
	if len(a.Slice()) != 3 {
		t.Error("Slice")
	}
}
