package match

import (
	"sort"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// pattern is a compiled conjunctive query: a small labelled graph whose
// fixed vertices are anchors and whose free vertices are the variables a
// matcher must bind.
type pattern struct {
	numV  int
	fixed map[int]kg.EntityID // vertex -> anchor entity
	edges []pedge
	out   int // output (target) vertex
}

type pedge struct {
	from int
	rel  kg.RelationID
	to   int
}

// compile turns a pure-positive conjunctive tree into a pattern graph.
// Intersection children share their parent's output vertex, which is the
// graph-join semantics of the operator.
func compile(n *query.Node) *pattern {
	p := &pattern{fixed: make(map[int]kg.EntityID)}
	p.out = p.build(n, -1)
	// Identical branches of an intersection produce duplicate pattern
	// edges; matching must not demand duplicate graph edges for them.
	seen := make(map[pedge]bool, len(p.edges))
	dedup := p.edges[:0]
	for _, e := range p.edges {
		if !seen[e] {
			seen[e] = true
			dedup = append(dedup, e)
		}
	}
	p.edges = dedup
	return p
}

func (p *pattern) newVertex() int {
	v := p.numV
	p.numV++
	return v
}

// build compiles node n; if forced >= 0 the node's output must bind to
// that existing vertex.
func (p *pattern) build(n *query.Node, forced int) int {
	switch n.Op {
	case query.OpAnchor:
		v := forced
		if v < 0 {
			v = p.newVertex()
		}
		p.fixed[v] = n.Anchor
		return v
	case query.OpProjection:
		child := p.build(n.Args[0], -1)
		v := forced
		if v < 0 {
			v = p.newVertex()
		}
		p.edges = append(p.edges, pedge{from: child, rel: n.Rel, to: v})
		return v
	case query.OpIntersection:
		v := forced
		if v < 0 {
			v = p.newVertex()
		}
		for _, a := range n.Args {
			p.build(a, v)
		}
		return v
	}
	panic("match: compile: pattern supports only anchor/projection/intersection")
}

// matchPattern runs the GFinder phases and returns the set of entities
// bindable to the output vertex.
func (m *Matcher) matchPattern(p *pattern, opt Options, res *Result) query.Set {
	cands := m.generateCandidates(p, opt, res)
	for i := range cands {
		if len(cands[i].set) == 0 {
			return make(query.Set)
		}
	}
	idx := m.buildIndex(p, cands, res)
	m.refine(p, cands, idx, res)
	if len(cands[p.out].set) == 0 {
		return make(query.Set)
	}
	return m.enumerate(p, cands, opt, res)
}

// edgeIndex is the per-query dynamic index GFinder builds (a
// neighborhood-of-candidates structure): for each pattern edge, the
// joined candidate adjacency head -> tails and tail -> heads. Sec. IV-E
// notes that since this index is built per query, its construction time
// is part of the online query time — it dominates the matcher's cost on
// small candidate graphs, exactly as in the original system.
type edgeIndex struct {
	fwd []map[kg.EntityID][]kg.EntityID // per edge: candidate head -> candidate tails
	bwd []map[kg.EntityID][]kg.EntityID // per edge: candidate tail -> candidate heads
}

func (m *Matcher) buildIndex(p *pattern, cands []candSet, res *Result) *edgeIndex {
	idx := &edgeIndex{
		fwd: make([]map[kg.EntityID][]kg.EntityID, len(p.edges)),
		bwd: make([]map[kg.EntityID][]kg.EntityID, len(p.edges)),
	}
	for i, pe := range p.edges {
		fwd := make(map[kg.EntityID][]kg.EntityID)
		bwd := make(map[kg.EntityID][]kg.EntityID)
		for b := range cands[pe.from].set {
			for _, t := range m.g.Successors(b, pe.rel) {
				res.IndexOps++
				if !cands[pe.to].set.Has(t) {
					continue
				}
				fwd[b] = append(fwd[b], t)
				bwd[t] = append(bwd[t], b)
			}
		}
		idx.fwd[i], idx.bwd[i] = fwd, bwd
	}
	return idx
}

// generateCandidates performs phase 1: per-vertex candidate sets from
// anchors, the optional pruning restriction, and GFinder's approximate
// node-profile matching. For every candidate the full degree-profile
// similarity against the query vertex's neighbourhood profile is
// computed across all relations (the per-candidate scoring that makes
// GFinder an *approximate* matcher rather than a boolean filter); the
// scores order the backtracking search best-candidates-first. This
// per-query, per-candidate, per-relation scan is the matcher's dominant
// online cost — and the cost the HaLk pruning restriction cuts.
func (m *Matcher) generateCandidates(p *pattern, opt Options, res *Result) []candSet {
	numRel := m.g.NumRelations()
	cands := make([]candSet, p.numV)
	for v := 0; v < p.numV; v++ {
		if e, ok := p.fixed[v]; ok {
			cands[v] = newCandSet([]scored{{e, 0}})
			continue
		}
		// The query vertex's neighbourhood profile: required in/out
		// relations. Requirements are binary, not counted: logical
		// queries match under homomorphism semantics, where two pattern
		// edges with the same relation may bind one graph edge (their
		// other endpoints may map to the same entity).
		needIn := make([]int, numRel)
		needOut := make([]int, numRel)
		for _, pe := range p.edges {
			if pe.to == v {
				needIn[pe.rel] = 1
			}
			if pe.from == v {
				needOut[pe.rel] = 1
			}
		}
		var accepted []scored
		scan := func(e kg.EntityID) {
			score, feasible := 0, true
			for r := 0; r < numRel; r++ {
				res.FilterOps++
				rel := kg.RelationID(r)
				in := len(m.g.Predecessors(e, rel))
				out := len(m.g.Successors(e, rel))
				if in < needIn[r] || out < needOut[r] {
					feasible = false
				}
				// Degree-profile similarity: overlap with the required
				// profile plus a small credit for general connectivity,
				// mirroring GFinder's attribute/degree scoring.
				score += min(in, needIn[r])*4 + min(out, needOut[r])*4 + min(in+out, 2)
			}
			if feasible {
				accepted = append(accepted, scored{e, score})
			}
		}
		if opt.Restrict != nil {
			for e := range opt.Restrict {
				scan(e)
			}
		} else {
			for e := 0; e < m.g.NumEntities(); e++ {
				scan(kg.EntityID(e))
			}
		}
		cands[v] = newCandSet(accepted)
	}
	return cands
}

type scored struct {
	e     kg.EntityID
	score int
}

// candSet is an ordered candidate set: membership for the consistency
// checks, order (best profile score first) for the search.
type candSet struct {
	set   query.Set
	order []kg.EntityID
}

func newCandSet(sc []scored) candSet {
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].e < sc[j].e
	})
	cs := candSet{set: make(query.Set, len(sc)), order: make([]kg.EntityID, len(sc))}
	for i, s := range sc {
		cs.set[s.e] = struct{}{}
		cs.order[i] = s.e
	}
	return cs
}

func (cs *candSet) remove(e kg.EntityID) {
	delete(cs.set, e)
	for i, o := range cs.order {
		if o == e {
			cs.order = append(cs.order[:i], cs.order[i+1:]...)
			break
		}
	}
}

// refine performs arc-consistency over pattern edges until fixpoint,
// using the dynamic index. A candidate a of vertex v is kept only if
// every pattern edge incident to v has a supporting candidate at the
// other end.
func (m *Matcher) refine(p *pattern, cands []candSet, idx *edgeIndex, res *Result) {
	supported := func(side map[kg.EntityID][]kg.EntityID, e kg.EntityID, other query.Set) bool {
		for _, s := range side[e] {
			res.RefineOps++
			if other.Has(s) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i, pe := range p.edges {
			for a := range cands[pe.to].set {
				if !supported(idx.bwd[i], a, cands[pe.from].set) {
					cands[pe.to].remove(a)
					changed = true
				}
			}
			for b := range cands[pe.from].set {
				if !supported(idx.fwd[i], b, cands[pe.to].set) {
					cands[pe.from].remove(b)
					changed = true
				}
			}
		}
	}
}

// enumerate performs phase 3: backtracking over vertices in a static
// order, collecting the distinct bindings of the output vertex, bounded
// by the step budget.
func (m *Matcher) enumerate(p *pattern, cands []candSet, opt Options, res *Result) query.Set {
	order := p.searchOrder()
	answers := make(query.Set)
	assign := make([]kg.EntityID, p.numV)
	assigned := make([]bool, p.numV)

	var dfs func(pos int) bool // returns false when the budget is gone
	dfs = func(pos int) bool {
		if res.SearchSteps >= opt.MaxSteps {
			res.Truncated = true
			return false
		}
		if pos == len(order) {
			answers[assign[p.out]] = struct{}{}
			return true
		}
		v := order[pos]
		// Best-profile-score first: GFinder's greedy candidate order.
		for _, a := range cands[v].order {
			res.SearchSteps++
			if !m.consistent(p, assign, assigned, v, a) {
				continue
			}
			assign[v], assigned[v] = a, true
			if !dfs(pos + 1) {
				assigned[v] = false
				return false
			}
			assigned[v] = false
		}
		return true
	}
	dfs(0)
	return answers
}

// searchOrder orders vertices anchors-first, then by breadth from the
// anchors along pattern edges, so early assignments constrain later ones.
func (p *pattern) searchOrder() []int {
	order := make([]int, 0, p.numV)
	seen := make([]bool, p.numV)
	for v := range p.fixed {
		order = append(order, v)
		seen[v] = true
	}
	for len(order) < p.numV {
		progressed := false
		for _, pe := range p.edges {
			if seen[pe.from] && !seen[pe.to] {
				order = append(order, pe.to)
				seen[pe.to] = true
				progressed = true
			}
			if seen[pe.to] && !seen[pe.from] {
				order = append(order, pe.from)
				seen[pe.from] = true
				progressed = true
			}
		}
		if !progressed {
			for v := 0; v < p.numV; v++ {
				if !seen[v] {
					order = append(order, v)
					seen[v] = true
				}
			}
		}
	}
	return order
}

// consistent checks the pattern edges between v and already-assigned
// vertices.
func (m *Matcher) consistent(p *pattern, assign []kg.EntityID, assigned []bool, v int, a kg.EntityID) bool {
	for _, pe := range p.edges {
		if pe.from == v && assigned[pe.to] {
			if !m.g.HasTriple(a, pe.rel, assign[pe.to]) {
				return false
			}
		}
		if pe.to == v && assigned[pe.from] {
			if !m.g.HasTriple(assign[pe.from], pe.rel, a) {
				return false
			}
		}
	}
	return true
}
