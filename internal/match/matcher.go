// Package match implements a GFinder-style approximate attributed
// subgraph-matching query executor (Liu et al., IEEE BigData 2019), the
// paper's representative of the subgraph-matching family (Sec. IV-D–IV-G).
//
// A conjunctive query tree is compiled to a pattern graph (anchors fixed,
// variables free, edges labelled with relations). Matching runs in three
// phases, index-free as in GFinder:
//
//  1. candidate generation — every variable vertex scans the entity
//     universe (or the pruning-restricted subset) with a relation-profile
//     filter;
//  2. candidate refinement — arc-consistency propagation over pattern
//     edges until fixpoint;
//  3. best-effort enumeration — backtracking over the refined candidate
//     sets collects bindings of the output vertex, bounded by a step
//     budget (GFinder is "fast best-effort": exceeding the budget yields
//     an approximate answer set).
//
// Difference and negation are evaluated with set semantics over matched
// sub-patterns; union is handled through the DNF rewrite. Because
// matching sees only the observed (training) graph, answers requiring
// held-out edges are structurally unreachable — the brittleness to
// incompleteness that motivates embedding methods.
package match

import (
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// Options controls one execution.
type Options struct {
	// Restrict, when non-nil, limits every variable vertex's candidates
	// to this entity set (plus the anchors). This is the hook HaLk's
	// top-k candidates plug into (Sec. IV-D).
	Restrict query.Set
	// MaxSteps bounds the backtracking enumeration; 0 means the default
	// budget. When the budget is exhausted the answers found so far are
	// returned.
	MaxSteps int
}

// DefaultMaxSteps is the default enumeration budget.
const DefaultMaxSteps = 2_000_000

// Result is the outcome of one execution.
type Result struct {
	Answers query.Set
	// FilterOps counts candidate-generation profile checks.
	FilterOps int
	// IndexOps counts dynamic-index (NoC) construction operations.
	IndexOps int
	// RefineOps counts arc-consistency support checks.
	RefineOps int
	// SearchSteps counts backtracking steps.
	SearchSteps int
	// Truncated reports whether the search budget was exhausted.
	Truncated bool
}

// Matcher executes logical queries on a graph by subgraph matching.
type Matcher struct {
	g *kg.Graph
}

// New returns a matcher over g (typically the observed/training graph).
func New(g *kg.Graph) *Matcher { return &Matcher{g: g} }

// Execute answers the query, DNF-rewriting unions first.
func (m *Matcher) Execute(root *query.Node, opt Options) Result {
	if opt.MaxSteps == 0 {
		opt.MaxSteps = DefaultMaxSteps
	}
	res := Result{Answers: make(query.Set)}
	for _, d := range query.DNF(root) {
		part := m.eval(d, opt, &res)
		res.Answers = res.Answers.Union(part)
	}
	return res
}

// eval evaluates a conjunctive (union-free) tree. Pure-positive subtrees
// (anchor/projection/intersection only) run through the pattern matcher;
// difference and negation combine matched sub-results with set algebra.
func (m *Matcher) eval(n *query.Node, opt Options, res *Result) query.Set {
	if purePositive(n) {
		p := compile(n)
		return m.matchPattern(p, opt, res)
	}
	switch n.Op {
	case query.OpProjection:
		child := m.eval(n.Args[0], opt, res)
		out := make(query.Set)
		for e := range child {
			for _, t := range m.g.Successors(e, n.Rel) {
				res.SearchSteps++
				out[t] = struct{}{}
			}
		}
		return m.restrictSet(out, opt)
	case query.OpIntersection:
		out := m.eval(n.Args[0], opt, res)
		for _, a := range n.Args[1:] {
			out = out.Intersect(m.eval(a, opt, res))
		}
		return out
	case query.OpDifference:
		out := m.eval(n.Args[0], opt, res)
		for _, a := range n.Args[1:] {
			out = out.Minus(m.eval(a, opt, res))
		}
		return out
	case query.OpNegation:
		return m.eval(n.Args[0], opt, res).Complement(m.g.NumEntities())
	case query.OpAnchor:
		return query.NewSet(n.Anchor)
	}
	panic("match: eval: unexpected op")
}

func (m *Matcher) restrictSet(s query.Set, opt Options) query.Set {
	if opt.Restrict == nil {
		return s
	}
	return s.Intersect(opt.Restrict)
}

func purePositive(n *query.Node) bool {
	switch n.Op {
	case query.OpDifference, query.OpNegation, query.OpUnion:
		return false
	}
	for _, a := range n.Args {
		if !purePositive(a) {
			return false
		}
	}
	return true
}
