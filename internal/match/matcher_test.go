package match

import (
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func TestMatcherAgreesWithOracleOnObservedGraph(t *testing.T) {
	ds := kg.SynthFB237(21)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(1)))
	for _, structure := range query.StructureNames() {
		for i := 0; i < 3; i++ {
			q, ok := s.Sample(structure)
			if !ok {
				t.Fatalf("%s: sampling failed", structure)
			}
			want := query.Answers(q, ds.Train)
			res := m.Execute(q, Options{})
			if res.Truncated {
				t.Fatalf("%s: search budget exhausted on small graph", structure)
			}
			if len(res.Answers) != len(want) {
				t.Fatalf("%s: matcher found %d answers, oracle %d",
					structure, len(res.Answers), len(want))
			}
			for e := range want {
				if !res.Answers.Has(e) {
					t.Fatalf("%s: matcher missed answer %d", structure, e)
				}
			}
		}
	}
}

func TestMatcherMissesHeldOutAnswers(t *testing.T) {
	// Matching on the training graph cannot reach answers that require
	// held-out edges: the brittleness embedding methods fix.
	ds := kg.SynthFB237(22)
	m := New(ds.Train)
	rng := rand.New(rand.NewSource(2))
	qs := query.Workload("2p", 20, ds.Train, ds.Test, rng)
	missedAny := false
	for i := range qs {
		res := m.Execute(qs[i].Root, Options{})
		for e := range qs[i].HardAnswers {
			if !res.Answers.Has(e) {
				missedAny = true
			}
		}
	}
	if !missedAny {
		t.Error("matcher on train graph reproduced all hard answers; holdout is broken")
	}
}

func TestRestrictPrunesCandidates(t *testing.T) {
	ds := kg.SynthFB237(23)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(3)))
	q, ok := s.Sample("2ipp")
	if !ok {
		t.Fatal("sampling failed")
	}
	full := m.Execute(q, Options{})

	// Restrict to the true answers plus some noise: results must be a
	// subset of the unrestricted answers, with less filter work.
	restrict := make(query.Set)
	for e := range full.Answers {
		restrict[e] = struct{}{}
	}
	for e := 0; e < 50; e++ {
		restrict[kg.EntityID(e)] = struct{}{}
	}
	// Intermediate variables also need candidates: include everything the
	// answers' witnesses may use — for this test just check the subset
	// property and the work reduction with a generous restriction.
	for e := 0; e < ds.Train.NumEntities(); e += 2 {
		restrict[kg.EntityID(e)] = struct{}{}
	}
	pruned := m.Execute(q, Options{Restrict: restrict})
	for e := range pruned.Answers {
		if !full.Answers.Has(e) {
			t.Error("pruned matching produced an answer the full matching lacks")
		}
	}
	if pruned.FilterOps >= full.FilterOps {
		t.Errorf("pruning did not reduce filter work: %d vs %d", pruned.FilterOps, full.FilterOps)
	}
}

func TestWorkCountersPopulated(t *testing.T) {
	ds := kg.SynthFB237(24)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(4)))
	q, ok := s.Sample("pi")
	if !ok {
		t.Fatal("sampling failed")
	}
	res := m.Execute(q, Options{})
	if res.FilterOps == 0 || res.RefineOps == 0 || res.SearchSteps == 0 {
		t.Errorf("work counters zero: %+v", res)
	}
}

func TestBudgetTruncation(t *testing.T) {
	ds := kg.SynthFB15k(25)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(5)))
	q, ok := s.Sample("3ipp")
	if !ok {
		t.Fatal("sampling failed")
	}
	res := m.Execute(q, Options{MaxSteps: 50})
	if !res.Truncated {
		t.Skip("query too easy to exhaust a 50-step budget") // rare; depends on sample
	}
	if res.SearchSteps < 50 {
		t.Errorf("SearchSteps = %d with truncation", res.SearchSteps)
	}
}

func TestCompilePatternShapes(t *testing.T) {
	// pi = I(P(r2, P(r1, a1)), P(r3, a2)): 5 tree nodes but the
	// intersection shares its vertex with both projection outputs:
	// vertices = a1, v1, target, a2 -> 4; edges = 3.
	q := query.NewIntersection(
		query.NewProjection(1, query.NewProjection(0, query.NewAnchor(7))),
		query.NewProjection(2, query.NewAnchor(8)),
	)
	p := compile(q)
	if p.numV != 4 {
		t.Errorf("numV = %d, want 4", p.numV)
	}
	if len(p.edges) != 3 {
		t.Errorf("edges = %d, want 3", len(p.edges))
	}
	if len(p.fixed) != 2 {
		t.Errorf("fixed = %d, want 2", len(p.fixed))
	}
}

func TestCompileRejectsNegativeOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	compile(query.NewNegation(query.NewProjection(0, query.NewAnchor(0))))
}

func TestEmptyRestrictYieldsNoAnswers(t *testing.T) {
	ds := kg.SynthFB237(26)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(6)))
	q, ok := s.Sample("2p")
	if !ok {
		t.Fatal("sampling failed")
	}
	res := m.Execute(q, Options{Restrict: make(query.Set)})
	if len(res.Answers) != 0 {
		t.Errorf("empty restriction produced %d answers", len(res.Answers))
	}
}

func TestNegationQueryOnMatcher(t *testing.T) {
	// The matcher evaluates negation with exact set semantics on the
	// observed graph — GFinder-family systems handle these by candidate
	// subtraction.
	ds := kg.SynthFB237(27)
	m := New(ds.Train)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(7)))
	q, ok := s.Sample("pni")
	if !ok {
		t.Fatal("sampling failed")
	}
	want := query.Answers(q, ds.Train)
	res := m.Execute(q, Options{})
	if len(res.Answers) != len(want) {
		t.Errorf("matcher %d answers, oracle %d", len(res.Answers), len(want))
	}
}
