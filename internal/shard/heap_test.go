package shard

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refTopK is the brute-force reference: sort all pairs by (dist, id) and
// take the first k.
func refTopK(d []float64, id []int32, k int) ([]float64, []int32) {
	type pair struct {
		d  float64
		id int32
	}
	ps := make([]pair, len(d))
	for i := range d {
		ps[i] = pair{d[i], id[i]}
	}
	sort.Slice(ps, func(a, b int) bool {
		return ps[a].d < ps[b].d || (ps[a].d == ps[b].d && ps[a].id < ps[b].id)
	})
	if k > len(ps) {
		k = len(ps)
	}
	od := make([]float64, k)
	oid := make([]int32, k)
	for i := 0; i < k; i++ {
		od[i], oid[i] = ps[i].d, ps[i].id
	}
	return od, oid
}

func TestTopKHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		d := make([]float64, n)
		id := make([]int32, n)
		h := newTopK(k)
		for i := range d {
			// Coarse quantisation forces plenty of distance ties, so the
			// ID tie-break is actually exercised.
			d[i] = float64(rng.Intn(8))
			id[i] = int32(i)
			h.push(d[i], id[i])
		}
		gd, gid := h.sorted()
		wd, wid := refTopK(d, id, k)
		if len(gd) != len(wd) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] || gid[i] != wid[i] {
				t.Fatalf("trial %d: pair %d = (%v, %d), want (%v, %d)", trial, i, gd[i], gid[i], wd[i], wid[i])
			}
		}
	}
}

func TestTopKHeapBound(t *testing.T) {
	h := newTopK(3)
	if !math.IsInf(h.bound(), 1) {
		t.Fatal("bound of a non-full heap must be +Inf")
	}
	for i, v := range []float64{5, 1, 3} {
		h.push(v, int32(i))
	}
	if h.bound() != 5 {
		t.Fatalf("bound = %v, want 5", h.bound())
	}
	h.push(2, 9)
	if h.bound() != 3 {
		t.Fatalf("bound after eviction = %v, want 3", h.bound())
	}
	// Equal distance, larger ID: must be rejected.
	if h.push(3, 10) {
		t.Error("push accepted an equal-distance larger-ID pair")
	}
	// Equal distance, smaller ID: must replace.
	if !h.push(3, 0) {
		t.Error("push rejected an equal-distance smaller-ID pair")
	}
}

func TestTopKHeapResetReusesStorage(t *testing.T) {
	h := newTopK(8)
	for i := 0; i < 20; i++ {
		h.push(float64(i), int32(i))
	}
	h.reset(4)
	if len(h.d) != 0 || h.k != 4 {
		t.Fatalf("reset left len=%d k=%d", len(h.d), h.k)
	}
	h.push(1, 1)
	if gd, gid := h.sorted(); len(gd) != 1 || gid[0] != 1 {
		t.Fatalf("heap after reset returned %v %v", gd, gid)
	}
}
