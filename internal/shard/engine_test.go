package shard

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/geometry"
)

// testTable builds a random entity table and a couple of value-level
// arcs, returning the raw (center, length, hot) triples the reference
// scorer needs alongside the prepared arcs.
type testArc struct {
	c, l, hot []float64
}

func testSetup(seed int64, ents, dim, numArcs, groups int) (Params, Source, []testArc, []Arc) {
	rng := rand.New(rand.NewSource(seed))
	p := Params{Dim: dim, Rho: 1, Eta: 0.02, Xi: 10}
	src := Source{
		Angles:  make([]float64, ents*dim),
		Group:   make([]int32, ents),
		Version: 1,
	}
	for i := range src.Angles {
		src.Angles[i] = rng.Float64() * geometry.TwoPi
	}
	for i := range src.Group {
		src.Group[i] = int32(rng.Intn(groups))
	}
	raw := make([]testArc, numArcs)
	pre := make([]Arc, numArcs)
	for a := range raw {
		c := make([]float64, dim)
		l := make([]float64, dim)
		hot := make([]float64, groups)
		for j := range c {
			c[j] = rng.Float64() * geometry.TwoPi
			l[j] = rng.Float64() * p.Rho
		}
		for g := range hot {
			if rng.Float64() < 0.5 {
				hot[g] = 1
			}
		}
		raw[a] = testArc{c, l, hot}
		pre[a] = PrepareArc(p, c, l, hot)
	}
	return p, src, raw, pre
}

// refDistance scores one entity with the closed-form geometry functions
// — an implementation independent of the scan loop.
func refDistance(p Params, src Source, arcs []testArc, e int) float64 {
	point := src.Angles[e*p.Dim : (e+1)*p.Dim]
	best := math.Inf(1)
	for _, a := range arcs {
		d := geometry.Distance(p.Rho, p.Eta, point, a.c, a.l)
		if pen := 1 - a.hot[src.Group[e]]; pen > 0 {
			d += p.Xi * pen
		}
		if d < best {
			best = d
		}
	}
	return best
}

func refRanking(p Params, src Source, arcs []testArc, k int) ([]float64, []int32) {
	ents := len(src.Angles) / p.Dim
	d := make([]float64, ents)
	id := make([]int32, ents)
	for e := 0; e < ents; e++ {
		d[e] = refDistance(p, src, arcs, e)
		id[e] = int32(e)
	}
	return refTopK(d, id, k)
}

func newTestEngine(t *testing.T, p Params, src Source, opts Options) *Engine {
	t.Helper()
	e := NewEngine(p, opts)
	if err := e.Swap(src); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	return e
}

// TestShardCountsAgree is the scatter-gather correctness core: the same
// table ranked through 1, 2 and 7 shards (103 entities — not divisible
// by either) must return identical top-K IDs and distances, and both
// must match the closed-form reference ranking.
func TestShardCountsAgree(t *testing.T) {
	const k = 17
	p, src, raw, pre := testSetup(11, 103, 6, 2, 4)
	wantD, wantID := refRanking(p, src, raw, k)

	for _, n := range []int{1, 2, 7} {
		e := newTestEngine(t, p, src, Options{Shards: n})
		res, err := e.TopK(context.Background(), pre, k)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if res.Partial || len(res.Skipped) != 0 || len(res.Answered) != n {
			t.Fatalf("shards=%d: unexpected partial state %+v", n, res)
		}
		if res.Version != src.Version {
			t.Fatalf("shards=%d: version %d, want %d", n, res.Version, src.Version)
		}
		if len(res.IDs) != len(wantID) {
			t.Fatalf("shards=%d: %d answers, want %d", n, len(res.IDs), len(wantID))
		}
		for i := range wantID {
			if int32(res.IDs[i]) != wantID[i] {
				t.Errorf("shards=%d: rank %d = entity %d, want %d", n, i, res.IDs[i], wantID[i])
			}
			if math.Abs(res.Dists[i]-wantD[i]) > 1e-9 {
				t.Errorf("shards=%d: rank %d dist %.12f, want %.12f", n, i, res.Dists[i], wantD[i])
			}
		}
	}
}

// TestShardCountsByteIdentical pins the stronger guarantee: N>1 and N=1
// produce byte-identical distances (same float operations in the same
// order), not merely values within a tolerance.
func TestShardCountsByteIdentical(t *testing.T) {
	const k = 25
	p, src, _, pre := testSetup(13, 257, 8, 3, 5)
	base := newTestEngine(t, p, src, Options{Shards: 1})
	want, err := base.TopK(context.Background(), pre, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 7} {
		e := newTestEngine(t, p, src, Options{Shards: n})
		got, err := e.TopK(context.Background(), pre, k)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		for i := range want.IDs {
			if got.IDs[i] != want.IDs[i] || got.Dists[i] != want.Dists[i] {
				t.Fatalf("shards=%d: rank %d = (%d, %v), want (%d, %v)",
					n, i, got.IDs[i], got.Dists[i], want.IDs[i], want.Dists[i])
			}
		}
	}
}

func TestKLargerThanTable(t *testing.T) {
	p, src, _, pre := testSetup(17, 10, 4, 1, 3)
	e := newTestEngine(t, p, src, Options{Shards: 3})
	res, err := e.TopK(context.Background(), pre, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 10 {
		t.Fatalf("got %d answers for k=50 over 10 entities", len(res.IDs))
	}
}

func TestMoreShardsThanEntities(t *testing.T) {
	p, src, _, pre := testSetup(19, 3, 4, 1, 3)
	e := newTestEngine(t, p, src, Options{Shards: 8})
	res, err := e.TopK(context.Background(), pre, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 {
		t.Fatalf("got %d answers, want 3", len(res.IDs))
	}
}

// TestPartialResultOnSlowShard injects a wedged shard: the result must
// be marked partial, name the shards that answered, and contain no
// entity from the skipped shard's range.
func TestPartialResultOnSlowShard(t *testing.T) {
	p, src, _, pre := testSetup(23, 120, 6, 2, 4)
	e := NewEngine(p, Options{Shards: 3, ShardTimeout: 30 * time.Millisecond})
	if err := e.Swap(src); err != nil {
		t.Fatal(err)
	}
	e.slow = func(i int) {
		if i == 1 {
			time.Sleep(150 * time.Millisecond)
		}
	}
	res, err := e.TopK(context.Background(), pre, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("result not marked partial with a wedged shard")
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != 1 {
		t.Fatalf("skipped = %v, want [1]", res.Skipped)
	}
	if len(res.Answered) != 2 {
		t.Fatalf("answered = %v, want shards 0 and 2", res.Answered)
	}
	snap := e.snap.Load()
	lo, hi := snap.shards[1].lo, snap.shards[1].hi
	for _, id := range res.IDs {
		if int(id) >= lo && int(id) < hi {
			t.Fatalf("answer %d came from the skipped shard [%d, %d)", id, lo, hi)
		}
	}

	stats := e.Stats()
	if stats[1].Skips != 1 {
		t.Errorf("shard 1 skip counter = %d, want 1", stats[1].Skips)
	}
	if stats[0].Scans != 1 || stats[2].Scans != 1 {
		t.Errorf("scan counters = %d, %d, want 1, 1", stats[0].Scans, stats[2].Scans)
	}
	if stats[0].LastScanMs < 0 || stats[0].MeanScanMs < 0 {
		t.Errorf("implausible latency stats: %+v", stats[0])
	}
}

func TestAllShardsSkipped(t *testing.T) {
	p, src, _, pre := testSetup(29, 60, 6, 1, 4)
	e := NewEngine(p, Options{Shards: 2, ShardTimeout: 10 * time.Millisecond})
	if err := e.Swap(src); err != nil {
		t.Fatal(err)
	}
	e.slow = func(int) { time.Sleep(80 * time.Millisecond) }
	if _, err := e.TopK(context.Background(), pre, 5); err != ErrAllShardsSkipped {
		t.Fatalf("err = %v, want ErrAllShardsSkipped", err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	p, src, _, pre := testSetup(31, 60, 6, 1, 4)
	e := newTestEngine(t, p, src, Options{Shards: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.TopK(ctx, pre, 5); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRankingBeforeSwap(t *testing.T) {
	p, _, _, pre := testSetup(37, 10, 4, 1, 3)
	e := NewEngine(p, Options{Shards: 2})
	if _, err := e.TopK(context.Background(), pre, 3); err != ErrNoSnapshot {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

// TestSwapPublishesNewVersion checks the versioned-snapshot contract:
// a Swap changes subsequent rankings, an out-of-order (older) Swap is
// ignored, and the result reports the version it ran on.
func TestSwapPublishesNewVersion(t *testing.T) {
	p, src, _, pre := testSetup(41, 80, 6, 1, 4)
	e := newTestEngine(t, p, src, Options{Shards: 2})

	before, err := e.TopK(context.Background(), pre, 5)
	if err != nil {
		t.Fatal(err)
	}

	moved := Source{
		Angles:  make([]float64, len(src.Angles)),
		Group:   src.Group,
		Version: 2,
	}
	rng := rand.New(rand.NewSource(99))
	for i := range moved.Angles {
		moved.Angles[i] = rng.Float64() * geometry.TwoPi
	}
	if err := e.Swap(moved); err != nil {
		t.Fatal(err)
	}
	after, err := e.TopK(context.Background(), pre, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 {
		t.Fatalf("version after swap = %d, want 2", after.Version)
	}
	same := len(before.IDs) == len(after.IDs)
	if same {
		for i := range before.IDs {
			if before.IDs[i] != after.IDs[i] || before.Dists[i] != after.Dists[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("ranking unchanged after swapping a re-randomised table")
	}

	// An older version must not roll the table back.
	if err := e.Swap(Source{Angles: src.Angles, Group: src.Group, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 2 {
		t.Fatalf("stale swap rolled version back to %d", e.Version())
	}
}

// TestConcurrentSwapDuringScan is the -race acceptance scenario: rankers
// in flight while new snapshot versions are published. Every ranking
// must succeed and report a version that was actually published.
func TestConcurrentSwapDuringScan(t *testing.T) {
	p, src, _, pre := testSetup(43, 150, 6, 2, 4)
	e := newTestEngine(t, p, src, Options{Shards: 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.TopK(context.Background(), pre, 7)
				if err != nil {
					t.Errorf("TopK during swaps: %v", err)
					return
				}
				if res.Version < 1 {
					t.Errorf("implausible version %d", res.Version)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(17))
	angles := append([]float64(nil), src.Angles...)
	for v := uint64(2); v <= 40; v++ {
		for i := 0; i < 20; i++ {
			angles[rng.Intn(len(angles))] = rng.Float64() * geometry.TwoPi
		}
		if err := e.Swap(Source{Angles: angles, Group: src.Group, Version: v}); err != nil {
			t.Errorf("Swap v%d: %v", v, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if e.Version() != 40 {
		t.Fatalf("final version = %d, want 40", e.Version())
	}
}

// TestTopKApprox checks the per-shard ANN path: every returned distance
// must be the entity's exact score (candidates are ranked exactly), the
// order ascending, and the pool strictly smaller than the table when the
// index prunes at all.
func TestTopKApprox(t *testing.T) {
	p, src, raw, pre := testSetup(47, 160, 6, 2, 4)
	annCfg := ann.DefaultConfig(5)
	e := newTestEngine(t, p, src, Options{Shards: 3, ANN: &annCfg})

	res, err := e.TopKApprox(context.Background(), pre, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("approx ranking returned no answers")
	}
	for i, id := range res.IDs {
		want := refDistance(p, src, raw, int(id))
		if math.Abs(res.Dists[i]-want) > 1e-9 {
			t.Errorf("entity %d: dist %.12f, want %.12f", id, res.Dists[i], want)
		}
		if i > 0 && res.Dists[i] < res.Dists[i-1] {
			t.Errorf("answers out of order at rank %d", i)
		}
	}
	if ps := e.PoolSize(pre); ps <= 0 {
		t.Errorf("PoolSize = %d, want > 0", ps)
	}

	// Without an index the approx path must refuse, not misbehave.
	plain := newTestEngine(t, p, src, Options{Shards: 3})
	if _, err := plain.TopKApprox(context.Background(), pre, 10); err == nil {
		t.Error("TopKApprox without Options.ANN did not error")
	}
}
