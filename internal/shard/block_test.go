package shard

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/geometry"
)

// mustRank runs TopK and fails the test on error or partial results.
func mustRank(t *testing.T, e *Engine, arcs []Arc, k int) *Result {
	t.Helper()
	res, err := e.TopK(context.Background(), arcs, k)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if res.Partial {
		t.Fatalf("TopK: unexpected partial result")
	}
	return res
}

// assertIdentical fails unless two results carry bit-identical distances
// and the same IDs in the same order.
func assertIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Errorf("%s: rank %d = entity %d, want %d", label, i, got.IDs[i], want.IDs[i])
		}
		if math.Float64bits(got.Dists[i]) != math.Float64bits(want.Dists[i]) {
			t.Errorf("%s: rank %d dist %x, want %x (Δ=%g)",
				label, i, math.Float64bits(got.Dists[i]), math.Float64bits(want.Dists[i]),
				got.Dists[i]-want.Dists[i])
		}
	}
}

// TestBlockedKernelIdentity is the core byte-identity property: for the
// same snapshot, the blocked float32-filtered kernel must return
// bit-identical distances and identical IDs to the scalar float64
// reference scan (Options.ScalarKernel), across shard counts, table
// sizes straddling block boundaries, arc counts, and k values — and
// both must agree with the closed-form reference ranking.
func TestBlockedKernelIdentity(t *testing.T) {
	cases := []struct {
		seed            int64
		ents, dim, arcs int
		k               int
	}{
		{seed: 1, ents: 5, dim: 3, arcs: 1, k: 3},                // smaller than one block
		{seed: 2, ents: blockSize, dim: 4, arcs: 2, k: 7},        // exactly one block
		{seed: 3, ents: blockSize + 1, dim: 4, arcs: 1, k: 7},    // one lane into block 2
		{seed: 4, ents: 3*blockSize - 5, dim: 6, arcs: 3, k: 13}, // ragged tail block
		{seed: 5, ents: 500, dim: 16, arcs: 2, k: 25},            // mid-size
		{seed: 6, ents: 97, dim: 5, arcs: 2, k: 97},              // k == ents: full table retained
		{seed: 7, ents: 130, dim: 8, arcs: 4, k: 1},              // k=1 tightest bound
		{seed: 8, ents: 260, dim: 7, arcs: 1, k: 300},            // k > ents
	}
	for _, tc := range cases {
		p, src, raw, pre := testSetup(tc.seed, tc.ents, tc.dim, tc.arcs, 4)
		wantD, wantID := refRanking(p, src, raw, tc.k)
		for _, shards := range []int{1, 2, 7} {
			scalar := newTestEngine(t, p, src, Options{Shards: shards, ScalarKernel: true})
			blocked := newTestEngine(t, p, src, Options{Shards: shards})
			sres := mustRank(t, scalar, pre, tc.k)
			bres := mustRank(t, blocked, pre, tc.k)
			label := "blocked vs scalar"
			assertIdentical(t, label, bres, sres)
			if len(sres.IDs) != len(wantID) {
				t.Fatalf("scalar: %d answers, want %d", len(sres.IDs), len(wantID))
			}
			for i := range wantID {
				if int32(sres.IDs[i]) != wantID[i] || math.Abs(sres.Dists[i]-wantD[i]) > 1e-9 {
					t.Errorf("scalar vs reference: rank %d = (%d, %g), want (%d, %g)",
						i, sres.IDs[i], sres.Dists[i], wantID[i], wantD[i])
				}
			}
			scalar.Close()
			blocked.Close()
		}
	}
}

// TestBlockedKernelIdentityClustered repeats the identity check on a
// table with strong per-block angular locality — entities sorted into
// clusters smaller than a block — so the per-block envelopes actually
// fire, proving envelope skips drop only provably losing blocks.
func TestBlockedKernelIdentityClustered(t *testing.T) {
	const ents, dim, k = 512, 8, 10
	rng := rand.New(rand.NewSource(42))
	p := Params{Dim: dim, Rho: 1, Eta: 0.02, Xi: 0}
	src := Source{Angles: make([]float64, ents*dim), Version: 1}
	for e := 0; e < ents; e++ {
		// One cluster center per block of entities, tiny in-cluster jitter:
		// every dimension of a block stays inside a narrow angular box.
		center := float64(e/blockSize) * 0.7
		for j := 0; j < dim; j++ {
			src.Angles[e*dim+j] = center + rng.Float64()*0.05
		}
	}
	c := make([]float64, dim)
	l := make([]float64, dim)
	for j := range c {
		c[j] = 0.2 + rng.Float64()*0.1
		l[j] = 0.3
	}
	pre := []Arc{PrepareArc(p, c, l, nil)}

	for _, shards := range []int{1, 3} {
		scalar := newTestEngine(t, p, src, Options{Shards: shards, ScalarKernel: true})
		blocked := newTestEngine(t, p, src, Options{Shards: shards})
		sres := mustRank(t, scalar, pre, k)
		bres := mustRank(t, blocked, pre, k)
		assertIdentical(t, "clustered blocked vs scalar", bres, sres)
		skips := uint64(0)
		for _, st := range blocked.Stats() {
			skips += st.EnvSkips
		}
		if skips == 0 {
			t.Errorf("shards=%d: expected envelope skips on a clustered table, got none", shards)
		}
		scalar.Close()
		blocked.Close()
	}
}

// TestRankBatchIdentity proves batching is a pure memory-traffic
// optimisation: every item of a RankBatch must be bit-identical to the
// same query ranked alone through TopK, on both kernels, including
// mixed per-item k values.
func TestRankBatchIdentity(t *testing.T) {
	const ents, dim = 300, 8
	p, src, _, _ := testSetup(9, ents, dim, 1, 4)
	rng := rand.New(rand.NewSource(10))
	items := make([]BatchItem, 5)
	for i := range items {
		numArcs := 1 + rng.Intn(3)
		arcs := make([]Arc, numArcs)
		for a := range arcs {
			c := make([]float64, dim)
			l := make([]float64, dim)
			hot := make([]float64, 4)
			for j := range c {
				c[j] = rng.Float64() * geometry.TwoPi
				l[j] = rng.Float64() * p.Rho
			}
			for g := range hot {
				if rng.Float64() < 0.5 {
					hot[g] = 1
				}
			}
			arcs[a] = PrepareArc(p, c, l, hot)
		}
		items[i] = BatchItem{Arcs: arcs, K: 1 + rng.Intn(40)}
	}
	for _, scalarKernel := range []bool{false, true} {
		for _, shards := range []int{1, 2, 5} {
			e := newTestEngine(t, p, src, Options{Shards: shards, ScalarKernel: scalarKernel})
			batch, err := e.RankBatch(context.Background(), items)
			if err != nil {
				t.Fatalf("RankBatch: %v", err)
			}
			if len(batch) != len(items) {
				t.Fatalf("RankBatch: %d results for %d items", len(batch), len(items))
			}
			for i, it := range items {
				lone := mustRank(t, e, it.Arcs, it.K)
				assertIdentical(t, "batch vs lone", batch[i], lone)
			}
			e.Close()
		}
	}
}

// TestRankBatchValidation covers the batch entry's error contract.
func TestRankBatchValidation(t *testing.T) {
	p, src, _, pre := testSetup(12, 50, 4, 1, 2)
	e := newTestEngine(t, p, src, Options{Shards: 2})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.RankBatch(ctx, nil); err == nil {
		t.Error("empty batch: want error")
	}
	if _, err := e.RankBatch(ctx, []BatchItem{{Arcs: pre, K: 0}}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := e.RankBatch(ctx, []BatchItem{{Arcs: nil, K: 3}}); err == nil {
		t.Error("no arcs: want error")
	}
}

// FuzzBlockedKernel fuzzes the identity property over table geometry,
// arc geometry and k: whatever the inputs, the blocked kernel's
// filtering and envelope skipping must never change the retained top-K
// versus the scalar reference scan.
func FuzzBlockedKernel(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(5), uint8(2), false)
	f.Add(int64(2), uint8(64), uint8(4), uint8(10), uint8(1), true)
	f.Add(int64(3), uint8(200), uint8(6), uint8(1), uint8(3), false)
	f.Add(int64(4), uint8(65), uint8(1), uint8(255), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, entsB, dimB, kB, arcsB uint8, clustered bool) {
		ents := int(entsB)%300 + 1
		dim := int(dimB)%12 + 1
		k := int(kB)%(ents+5) + 1
		numArcs := int(arcsB)%3 + 1
		p, src, _, pre := testSetup(seed, ents, dim, numArcs, 3)
		if clustered {
			// Overwrite with a locality-heavy table so envelope skips engage.
			rng := rand.New(rand.NewSource(seed))
			for e := 0; e < ents; e++ {
				center := float64(e/blockSize) * 0.9
				for j := 0; j < dim; j++ {
					src.Angles[e*dim+j] = center + rng.Float64()*0.1
				}
			}
		}
		for _, shards := range []int{1, 3} {
			scalar := newTestEngine(t, p, src, Options{Shards: shards, ScalarKernel: true})
			blocked := newTestEngine(t, p, src, Options{Shards: shards})
			sres := mustRank(t, scalar, pre, k)
			bres := mustRank(t, blocked, pre, k)
			assertIdentical(t, "fuzz blocked vs scalar", bres, sres)
			scalar.Close()
			blocked.Close()
		}
	})
}
