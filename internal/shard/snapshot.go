package shard

import (
	"fmt"
	"math"
	"sort"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/kg"
)

// Source is the mutable model state a snapshot is built from: the flat
// row-major entity angle table, the group assignment per entity (ignored
// when Params.Xi is 0), and the monotonic version identifying this state
// of the embeddings.
//
// Base shifts the global entity IDs the snapshot reports: row i of
// Angles is entity Base+i. A single-process engine leaves it 0 (the
// table covers every entity); a cluster node hosting the contiguous
// range [lo, hi) slices its rows out of the full table and sets
// Base = lo, so the local scan emits globally valid IDs that merge
// directly with other nodes' results.
type Source struct {
	Angles  []float64
	Group   []int32
	Version uint64
	Base    int

	// Dirty, when non-nil, lists every global entity ID whose angle row
	// changed since the engine's currently published snapshot, enabling a
	// delta swap: shards containing no dirty entity reuse their existing
	// immutable shardData (trig tables, group slice, ANN index) and only
	// dirty shards are rebuilt. The caller's contract is that rows of
	// entities NOT listed are byte-identical to the published snapshot's
	// source — streaming fine-tune guarantees this via its dirty set. A
	// non-nil empty Dirty republishes every shard untouched (version-only
	// bump). Nil means full rebuild. Ignored when no snapshot is
	// published yet or the table geometry changed.
	Dirty []int32
}

// snapshot is one immutable published version of the sharded entity
// table. In-flight scans hold the snapshot they started on; Swap only
// replaces the engine's pointer, never the snapshot's contents.
type snapshot struct {
	version     uint64
	numEntities int
	shards      []shardData
}

// shardData is one shard's immutable view: the contiguous entity range
// [lo, hi) it owns, its private cos/sin trig tables over that range, the
// local group assignments, and the optional ANN bucket index.
//
// When the blocked kernel is enabled the shard additionally carries a
// cache-blocked structure-of-arrays float32 copy of the trig tables and
// per-block min/max envelopes (see block.go); the float64 tables remain
// the source of truth for exact scoring.
type shardData struct {
	lo, hi   int
	cos, sin []float64 // (hi-lo)×dim
	group    []int32   // nil when the group penalty is disabled
	index    *ann.Index

	// Blocked float32 planes, laid out (block, dim, lane): element
	// (b*dim+j)*blockSize + t is lane t of block b in dimension j. nil
	// when the engine pins the scalar kernel (Options.ScalarKernel).
	blocks       int
	cos32, sin32 []float32
	// Per-(block, dim) envelope bounds over the real lanes of the block,
	// rounded outward so the float32 box always contains the float64
	// values.
	envCosMin, envCosMax []float32
	envSinMin, envSinMax []float32
}

// buildShardData computes one shard's immutable view over the source
// rows [lo, hi) (global IDs). shardIdx decorrelates the ANN band seed
// across shards; blocked additionally derives the float32 planes and
// block envelopes.
func buildShardData(p Params, lo, hi, shardIdx int, src Source, annCfg *ann.Config, blocked bool) shardData {
	size := hi - lo
	sd := shardData{
		lo:  lo,
		hi:  hi,
		cos: make([]float64, size*p.Dim),
		sin: make([]float64, size*p.Dim),
	}
	// src rows are indexed from Base: row 0 is entity Base.
	angles := src.Angles[(lo-src.Base)*p.Dim : (hi-src.Base)*p.Dim]
	for j, a := range angles {
		sd.cos[j] = math.Cos(a)
		sd.sin[j] = math.Sin(a)
	}
	if p.Xi > 0 {
		sd.group = src.Group[lo-src.Base : hi-src.Base]
	}
	if annCfg != nil && size > 0 {
		cfg := *annCfg
		cfg.Seed += int64(shardIdx) // decorrelate band choices across shards
		sd.index = ann.NewFlat(angles, p.Dim, kg.EntityID(lo), cfg)
	}
	if blocked {
		buildBlocked(&sd, p.Dim)
	}
	return sd
}

// buildSnapshot partitions src into n contiguous shards and computes the
// per-shard trig tables (and ANN indexes when annCfg is non-nil). The
// first numEntities mod n shards are one entity larger, so any table
// size splits without gaps.
func buildSnapshot(p Params, n int, src Source, annCfg *ann.Config, blocked bool) (*snapshot, error) {
	if p.Dim <= 0 {
		return nil, fmt.Errorf("shard: Dim must be positive")
	}
	if src.Base < 0 {
		return nil, fmt.Errorf("shard: Base must be non-negative, got %d", src.Base)
	}
	if len(src.Angles)%p.Dim != 0 {
		return nil, fmt.Errorf("shard: angle table length %d is not a multiple of dim %d", len(src.Angles), p.Dim)
	}
	ents := len(src.Angles) / p.Dim
	if p.Xi > 0 && len(src.Group) != ents {
		return nil, fmt.Errorf("shard: got %d group assignments for %d entities", len(src.Group), ents)
	}
	snap := &snapshot{
		version:     src.Version,
		numEntities: ents,
		shards:      make([]shardData, n),
	}
	per, rem := ents/n, ents%n
	lo := src.Base
	for i := range snap.shards {
		size := per
		if i < rem {
			size++
		}
		snap.shards[i] = buildShardData(p, lo, lo+size, i, src, annCfg, blocked)
		lo += size
	}
	return snap, nil
}

// deltaSnapshot builds a snapshot from src reusing cur's shardData for
// every shard whose entity range contains no dirty ID. shardData is
// immutable after publication, so sharing it across snapshots is safe:
// in-flight scans on cur and new scans on the delta snapshot read the
// same backing arrays, which neither will ever write. Dirty shards are
// rebuilt from src exactly as buildSnapshot would (including the
// per-shard ANN seed offset and the blocked planes), so a delta snapshot
// is byte-identical to a full rebuild whenever the caller's Dirty
// contract holds. Returns the number of shards rebuilt.
func deltaSnapshot(p Params, src Source, cur *snapshot, annCfg *ann.Config, blocked bool) (*snapshot, int, error) {
	dirty := append([]int32(nil), src.Dirty...)
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	snap := &snapshot{
		version:     src.Version,
		numEntities: cur.numEntities,
		shards:      make([]shardData, len(cur.shards)),
	}
	rebuilt := 0
	for i := range cur.shards {
		lo, hi := cur.shards[i].lo, cur.shards[i].hi
		// First dirty ID >= lo; the shard is clean when it is also >= hi.
		j := sort.Search(len(dirty), func(j int) bool { return int(dirty[j]) >= lo })
		if j >= len(dirty) || int(dirty[j]) >= hi {
			snap.shards[i] = cur.shards[i]
			continue
		}
		snap.shards[i] = buildShardData(p, lo, hi, i, src, annCfg, blocked)
		rebuilt++
	}
	return snap, rebuilt, nil
}
