package shard

import "sync"

// shardStat accumulates one shard's scan counters. Stats survive Swap —
// they describe the shard slot, not any particular snapshot.
type shardStat struct {
	mu     sync.Mutex
	scans  uint64 // completed scans
	skips  uint64 // scans abandoned on the per-shard deadline
	sumMs  float64
	lastMs float64
	maxMs  float64
}

func (st *shardStat) record(ms float64) {
	st.mu.Lock()
	st.scans++
	st.sumMs += ms
	st.lastMs = ms
	if ms > st.maxMs {
		st.maxMs = ms
	}
	st.mu.Unlock()
}

func (st *shardStat) recordSkip() {
	st.mu.Lock()
	st.skips++
	st.mu.Unlock()
}

// ShardStats is the exported per-shard counter snapshot, shaped for the
// /v1/stats JSON export.
type ShardStats struct {
	// Shard is the shard index; Lo/Hi is the entity ID range [Lo, Hi) it
	// owns in the current snapshot.
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Scans counts completed local scans; Skips counts scans abandoned on
	// the per-shard deadline (each skipped scan produced a partial
	// response).
	Scans uint64 `json:"scans"`
	Skips uint64 `json:"skips"`
	// Scan latency over completed scans, in milliseconds.
	LastScanMs float64 `json:"last_scan_ms"`
	MeanScanMs float64 `json:"mean_scan_ms"`
	MaxScanMs  float64 `json:"max_scan_ms"`
}

// Stats returns the per-shard counters alongside the current snapshot's
// shard ranges.
func (e *Engine) Stats() []ShardStats {
	snap := e.snap.Load()
	out := make([]ShardStats, len(e.stats))
	for i := range e.stats {
		st := &e.stats[i]
		st.mu.Lock()
		out[i] = ShardStats{
			Shard:      i,
			Scans:      st.scans,
			Skips:      st.skips,
			LastScanMs: st.lastMs,
			MaxScanMs:  st.maxMs,
		}
		if st.scans > 0 {
			out[i].MeanScanMs = st.sumMs / float64(st.scans)
		}
		st.mu.Unlock()
		if snap != nil {
			out[i].Lo, out[i].Hi = snap.shards[i].lo, snap.shards[i].hi
		}
	}
	return out
}
