package shard

import (
	"strconv"

	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/resil"
)

// shardStat holds one shard slot's counters as handles into the obs
// registry, so the same numbers serve /v1/stats (JSON) and /metrics
// (Prometheus). Stats survive Swap — they describe the shard slot, not
// any particular snapshot.
//
// Everything here is atomic (counters, gauge bits, histogram buckets):
// scan goroutines publish and the stats reader observes without any
// lock, so a Stats call during a scatter never blocks a shard — and the
// counters still read race-clean (see TestShardStatsRaceStress, run
// under -race).
type shardStat struct {
	scans        *obs.Counter   // completed scans
	skips        *obs.Counter   // scans abandoned on the per-shard deadline
	errors       *obs.Counter   // scans failed by the ScanErr seam
	panics       *obs.Counter   // panics recovered inside scan goroutines
	breakerSkips *obs.Counter   // scans refused up front by an open breaker
	hedges       *obs.Counter   // hedge scans issued
	hedgeWins    *obs.Counter   // gathers where the hedge finished first
	envSkips     *obs.Counter   // (block, query) pairs skipped by the envelope
	filterLanes  *obs.Counter   // lanes offered to the float32 filter
	filterSurv   *obs.Counter   // lanes the filter passed to exact rescoring
	scanMs       *obs.Histogram // completed-scan latency
	lastMs       *obs.Gauge
	maxMs        *obs.Gauge
}

// newShardStats registers the per-shard series (labelled shard="i") on
// reg.
func newShardStats(reg *obs.Registry, n int) []shardStat {
	out := make([]shardStat, n)
	for i := range out {
		l := obs.L("shard", strconv.Itoa(i))
		out[i] = shardStat{
			scans:        reg.Counter("halk_shard_scans_total", "Completed per-shard scans.", l),
			skips:        reg.Counter("halk_shard_skips_total", "Shard scans abandoned on the per-shard deadline.", l),
			errors:       reg.Counter("halk_shard_scan_errors_total", "Shard scans failed by the error-injection seam.", l),
			panics:       reg.Counter("halk_shard_panics_total", "Panics recovered inside shard scan goroutines.", l),
			breakerSkips: reg.Counter("halk_shard_breaker_skips_total", "Shard scans refused up front by an open circuit breaker.", l),
			hedges:       reg.Counter("halk_shard_hedges_total", "Hedge scans issued after the per-shard hedge delay.", l),
			hedgeWins:    reg.Counter("halk_shard_hedge_wins_total", "Gathers where the hedge scan finished before the primary.", l),
			envSkips:     reg.Counter("halk_shard_block_env_skips_total", "Entity blocks skipped whole by the per-block envelope bound (counted per query of a batch).", l),
			filterLanes:  reg.Counter("halk_shard_filter_lanes_total", "Entity lanes offered to the blocked float32 filter.", l),
			filterSurv:   reg.Counter("halk_shard_filter_survivors_total", "Filter lanes that required exact float64 rescoring.", l),
			scanMs:       reg.Histogram("halk_shard_scan_duration_ms", "Latency of completed shard scans in milliseconds.", obs.LatencyBuckets, l),
			lastMs:       reg.Gauge("halk_shard_last_scan_ms", "Latency of the most recent completed scan.", l),
			maxMs:        reg.Gauge("halk_shard_max_scan_ms", "Worst completed-scan latency since process start.", l),
		}
	}
	return out
}

func (st *shardStat) record(ms float64) {
	st.scans.Inc()
	st.scanMs.Observe(ms)
	st.lastMs.Set(ms)
	st.maxMs.SetMax(ms)
}

func (st *shardStat) recordSkip()        { st.skips.Inc() }
func (st *shardStat) recordError()       { st.errors.Inc() }
func (st *shardStat) recordPanic()       { st.panics.Inc() }
func (st *shardStat) recordBreakerSkip() { st.breakerSkips.Inc() }
func (st *shardStat) recordHedge()       { st.hedges.Inc() }
func (st *shardStat) recordHedgeWin()    { st.hedgeWins.Inc() }

// recordKernel folds one completed scan's blocked-kernel counters in.
func (st *shardStat) recordKernel(sc *scanCounters) {
	if sc.envSkips > 0 {
		st.envSkips.Add(sc.envSkips)
	}
	if sc.lanes > 0 {
		st.filterLanes.Add(sc.lanes)
	}
	if sc.survivors > 0 {
		st.filterSurv.Add(sc.survivors)
	}
}

// ShardStats is the exported per-shard counter snapshot, shaped for the
// /v1/stats JSON export.
type ShardStats struct {
	// Shard is the shard index; Lo/Hi is the entity ID range [Lo, Hi) it
	// owns in the current snapshot.
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Scans counts completed local scans; Skips counts scans abandoned on
	// the per-shard deadline (each skipped scan produced a partial
	// response).
	Scans uint64 `json:"scans"`
	Skips uint64 `json:"skips"`
	// Fault-tolerance counters: Errors counts scans failed via the
	// error-injection seam, Panics counts panics recovered inside scan
	// goroutines, BreakerSkips counts scans refused up front by an open
	// breaker, Hedges/HedgeWins count hedge scans issued and won.
	Errors       uint64 `json:"errors,omitempty"`
	Panics       uint64 `json:"panics,omitempty"`
	BreakerSkips uint64 `json:"breaker_skips,omitempty"`
	Hedges       uint64 `json:"hedges,omitempty"`
	HedgeWins    uint64 `json:"hedge_wins,omitempty"`
	// Blocked-kernel effectiveness: EnvSkips counts (block, query) pairs
	// skipped whole by the envelope bound, FilterLanes counts entity
	// lanes offered to the float32 filter, FilterSurvivors counts lanes
	// that needed exact rescoring.
	EnvSkips        uint64 `json:"env_skips,omitempty"`
	FilterLanes     uint64 `json:"filter_lanes,omitempty"`
	FilterSurvivors uint64 `json:"filter_survivors,omitempty"`
	// Breaker is the shard's circuit breaker snapshot; absent when
	// breakers are disabled.
	Breaker *resil.BreakerStats `json:"breaker,omitempty"`
	// Scan latency over completed scans, in milliseconds.
	LastScanMs float64 `json:"last_scan_ms"`
	MeanScanMs float64 `json:"mean_scan_ms"`
	MaxScanMs  float64 `json:"max_scan_ms"`
}

// Stats returns the per-shard counters alongside the current snapshot's
// shard ranges. It is a lock-free read of the same registry series
// exported at /metrics.
func (e *Engine) Stats() []ShardStats {
	snap := e.snap.Load()
	out := make([]ShardStats, len(e.stats))
	for i := range e.stats {
		st := &e.stats[i]
		out[i] = ShardStats{
			Shard:           i,
			Scans:           st.scans.Value(),
			Skips:           st.skips.Value(),
			Errors:          st.errors.Value(),
			Panics:          st.panics.Value(),
			BreakerSkips:    st.breakerSkips.Value(),
			Hedges:          st.hedges.Value(),
			HedgeWins:       st.hedgeWins.Value(),
			EnvSkips:        st.envSkips.Value(),
			FilterLanes:     st.filterLanes.Value(),
			FilterSurvivors: st.filterSurv.Value(),
			LastScanMs:      st.lastMs.Value(),
			MeanScanMs:      st.scanMs.Mean(),
			MaxScanMs:       st.maxMs.Value(),
		}
		if e.breakers != nil {
			bs := e.breakers[i].Stats()
			out[i].Breaker = &bs
		}
		if snap != nil {
			out[i].Lo, out[i].Hi = snap.shards[i].lo, snap.shards[i].hi
		}
	}
	return out
}

// Metrics returns the registry the engine's counters live on — the one
// passed in Options.Metrics, or the engine's private registry when none
// was.
func (e *Engine) Metrics() *obs.Registry { return e.reg }
