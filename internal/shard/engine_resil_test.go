package shard

import (
	"context"
	"errors"
	"io"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/resil"
)

// quietPanicLog keeps recovered-panic stacks out of the test output.
func quietPanicLog() *log.Logger { return log.New(io.Discard, "", 0) }

func TestScanPanicYieldsPartial(t *testing.T) {
	const k = 10
	p, src, _, pre := testSetup(11, 103, 6, 2, 4)
	inj := resil.NewInjector()
	inj.Set("scan", 1, resil.Fault{Kind: resil.KindPanic})
	e := newTestEngine(t, p, src, Options{
		Shards:   3,
		ScanErr:  inj.ScanErrHook("scan"),
		PanicLog: quietPanicLog(),
	})

	res, err := e.TopK(context.Background(), pre, k)
	if err != nil {
		t.Fatalf("TopK after shard panic: %v", err)
	}
	if !res.Partial || len(res.Skipped) != 1 || res.Skipped[0] != 1 {
		t.Fatalf("result = partial=%v skipped=%v, want partial with shard 1 skipped", res.Partial, res.Skipped)
	}
	if len(res.Answered) != 2 {
		t.Fatalf("answered = %v, want the 2 healthy shards", res.Answered)
	}
	if got := e.Stats()[1].Panics; got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The engine is not poisoned: with the fault cleared the same query
	// answers fully.
	inj.Clear()
	res, err = e.TopK(context.Background(), pre, k)
	if err != nil || res.Partial {
		t.Fatalf("recovery query = %+v, %v; want full result", res, err)
	}
}

func TestScanErrSeamFailsShard(t *testing.T) {
	p, src, _, pre := testSetup(7, 64, 4, 2, 3)
	sentinel := errors.New("disk on fire")
	e := newTestEngine(t, p, src, Options{
		Shards: 2,
		ScanErr: func(i int) error {
			if i == 0 {
				return sentinel
			}
			return nil
		},
	})
	res, err := e.TopK(context.Background(), pre, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Skipped) != 1 || res.Skipped[0] != 0 {
		t.Fatalf("result = %+v, want shard 0 skipped", res)
	}
	if got := e.Stats()[0].Errors; got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
}

func TestAllShardsFaultedIsAllSkipped(t *testing.T) {
	p, src, _, pre := testSetup(7, 64, 4, 2, 3)
	inj := resil.NewInjector()
	inj.Set("scan", resil.AnyShard, resil.Fault{Kind: resil.KindPanic})
	e := newTestEngine(t, p, src, Options{
		Shards:   2,
		ScanErr:  inj.ScanErrHook("scan"),
		PanicLog: quietPanicLog(),
	})
	if _, err := e.TopK(context.Background(), pre, 5); !errors.Is(err, ErrAllShardsSkipped) {
		t.Fatalf("err = %v, want ErrAllShardsSkipped", err)
	}
}

func TestBreakerOpensThenRecovers(t *testing.T) {
	p, src, _, pre := testSetup(5, 80, 4, 2, 3)
	inj := resil.NewInjector()
	inj.Set("scan", 0, resil.Fault{Kind: resil.KindError})
	e := newTestEngine(t, p, src, Options{
		Shards:  2,
		ScanErr: inj.ScanErrHook("scan"),
		Breaker: &resil.BreakerConfig{
			ConsecutiveMisses: 2,
			OpenBase:          10 * time.Millisecond,
			OpenMax:           10 * time.Millisecond,
		},
	})
	ctx := context.Background()

	// Two failing gathers trip shard 0's breaker.
	for i := 0; i < 2; i++ {
		res, err := e.TopK(ctx, pre, 5)
		if err != nil || !res.Partial {
			t.Fatalf("gather %d = %+v, %v; want partial", i, res, err)
		}
	}
	st := e.Stats()[0]
	if st.Breaker == nil || st.Breaker.State != "open" {
		t.Fatalf("breaker after 2 misses = %+v, want open", st.Breaker)
	}

	// While open, the shard is skipped up front: the error seam is not
	// even called.
	fired := inj.Fired("scan")
	res, err := e.TopK(ctx, pre, 5)
	if err != nil || !res.Partial {
		t.Fatalf("gather under open breaker = %+v, %v", res, err)
	}
	if got := inj.Fired("scan"); got != fired {
		t.Fatalf("open breaker still called the shard (%d → %d fires)", fired, got)
	}
	if e.Stats()[0].BreakerSkips == 0 {
		t.Fatal("breaker skip not counted")
	}

	// Heal the shard and wait out the cool-down: the half-open probe
	// succeeds and the breaker closes.
	inj.Clear()
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err = e.TopK(ctx, pre, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; stats = %+v", e.Stats()[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := e.Stats()[0]; st.Breaker.State != "closed" {
		t.Fatalf("breaker after recovery = %+v, want closed", st.Breaker)
	}
}

func TestHedgedScanByteIdentical(t *testing.T) {
	const k = 17
	p, src, _, pre := testSetup(13, 103, 6, 2, 4)
	base := newTestEngine(t, p, src, Options{Shards: 3})
	want, err := base.TopK(context.Background(), pre, k)
	if err != nil {
		t.Fatal(err)
	}

	inj := resil.NewInjector()
	// The first scan of shard 0 stalls well past the hedge delay; the
	// hedge re-scan sees no fault (Count: 1) and wins.
	inj.Set("scan", 0, resil.Fault{Kind: resil.KindDelay, Delay: 200 * time.Millisecond, Count: 1})
	e := newTestEngine(t, p, src, Options{
		Shards:     3,
		HedgeDelay: time.Millisecond,
		ScanErr:    inj.ScanErrHook("scan"),
	})

	res, err := e.TopK(context.Background(), pre, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hedged result partial: %+v", res)
	}
	if len(res.IDs) != len(want.IDs) {
		t.Fatalf("%d answers, want %d", len(res.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if res.IDs[i] != want.IDs[i] || res.Dists[i] != want.Dists[i] {
			t.Fatalf("rank %d = (%d, %v), want (%d, %v) — hedge result diverged",
				i, res.IDs[i], res.Dists[i], want.IDs[i], want.Dists[i])
		}
	}
	st := e.Stats()[0]
	if st.Hedges == 0 {
		t.Fatal("no hedge recorded despite the stalled primary")
	}
	if st.HedgeWins == 0 {
		t.Fatal("hedge win not recorded")
	}
	e.Close() // drain the stalled primary before the test returns
}

func TestEngineCloseDrainsScanGoroutines(t *testing.T) {
	p, src, _, pre := testSetup(3, 64, 4, 2, 3)
	inj := resil.NewInjector()
	inj.Set("scan", 0, resil.Fault{Kind: resil.KindDelay, Delay: 50 * time.Millisecond, Count: 1})
	e := newTestEngine(t, p, src, Options{
		Shards:     2,
		HedgeDelay: time.Millisecond,
		ScanErr:    inj.ScanErrHook("scan"),
	})
	before := runtime.NumGoroutine()
	if _, err := e.TopK(context.Background(), pre, 5); err != nil {
		t.Fatal(err)
	}
	// The gather returned while the stalled primary is still running;
	// Close must wait for it.
	e.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelledProbeDoesNotWedgeBreaker is the regression test for the
// half-open wedge: the query carrying the reopen probe is cancelled
// mid-scan, so the gather returns ctx.Err() before any outcome is
// reported. The engine must release the probe (resil.Breaker.Cancel) —
// otherwise probing stays set forever, Allow refuses every call, and a
// recovered shard is skipped permanently.
func TestCancelledProbeDoesNotWedgeBreaker(t *testing.T) {
	p, src, _, pre := testSetup(5, 80, 4, 2, 3)
	inj := resil.NewInjector()
	inj.Set("scan", 0, resil.Fault{Kind: resil.KindError})
	// cancelScan, when armed, aborts the in-flight query from inside the
	// scan hook — the probe's gather then dies on ctx.Err().
	var cancelScan atomic.Value
	e := newTestEngine(t, p, src, Options{
		Shards:  2,
		ScanErr: inj.ScanErrHook("scan"),
		ScanHook: func(int) {
			if f, _ := cancelScan.Load().(context.CancelFunc); f != nil {
				f()
			}
		},
		Breaker: &resil.BreakerConfig{
			ConsecutiveMisses: 2,
			OpenBase:          5 * time.Millisecond,
			OpenMax:           5 * time.Millisecond,
		},
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.TopK(ctx, pre, 5); err != nil {
			t.Fatalf("tripping gather %d: %v", i, err)
		}
	}
	if st := e.Breakers()[0].State(); st != resil.Open {
		t.Fatalf("breaker = %v, want open", st)
	}

	// Heal the shard, then sabotage the reopen probe: every query is
	// cancelled from the scan hook until the cool-down expires and one
	// of them actually carries the probe (state reaches half-open).
	inj.Clear()
	deadline := time.Now().Add(2 * time.Second)
	for e.Breakers()[0].State() != resil.HalfOpen {
		if time.Now().After(deadline) {
			t.Fatal("cool-down never expired; no probe was admitted")
		}
		cctx, cancel := context.WithCancel(ctx)
		cancelScan.Store(cancel)
		if _, err := e.TopK(cctx, pre, 5); err == nil {
			t.Fatal("cancelled gather returned nil error")
		}
		cancel()
		time.Sleep(time.Millisecond)
	}

	// With the probe released, the next healthy queries must close the
	// breaker and answer in full.
	cancelScan.Store(context.CancelFunc(nil))
	for {
		res, err := e.TopK(ctx, pre, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker wedged after cancelled probe: %+v", e.Stats()[0].Breaker)
		}
		time.Sleep(time.Millisecond)
	}
	if st := e.Breakers()[0].State(); st != resil.Closed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
}

// TestHedgeSharesShardDeadline pins the hedging deadline bound: the
// hedge inherits the remainder of the primary's per-shard budget, not a
// fresh ShardTimeout. Both scans of shard 0 block in the scan hook; the
// test releases them after the shared deadline (60ms) but before the
// point a fresh hedge deadline would expire (hedge launch 40ms + 60ms =
// 100ms). Under the old per-scan deadline the hedge would still be live
// and answer in full; with the shared deadline both scans are dead and
// the gather must degrade to a partial with shard 0 failed.
func TestHedgeSharesShardDeadline(t *testing.T) {
	p, src, _, pre := testSetup(9, 64, 4, 2, 3)
	release := make(chan struct{})
	e := newTestEngine(t, p, src, Options{
		Shards:       2,
		ShardTimeout: 60 * time.Millisecond,
		HedgeDelay:   40 * time.Millisecond,
		ScanHook: func(i int) {
			if i == 0 {
				<-release
			}
		},
	})
	type gatherOut struct {
		res *Result
		err error
	}
	done := make(chan gatherOut, 1)
	go func() {
		res, err := e.TopK(context.Background(), pre, 5)
		done <- gatherOut{res, err}
	}()
	time.Sleep(75 * time.Millisecond)
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatalf("TopK: %v", out.err)
	}
	if !out.res.Partial || len(out.res.Skipped) != 1 || out.res.Skipped[0] != 0 {
		t.Fatalf("result = partial=%v skipped=%v; hedge extended the shard budget past ShardTimeout",
			out.res.Partial, out.res.Skipped)
	}
	st := e.Stats()[0]
	if st.Hedges == 0 {
		t.Fatal("no hedge was issued despite the stalled primary")
	}
	if st.Skips == 0 {
		t.Fatal("deadline miss not recorded as a skip")
	}
	e.Close()
}

// TestCloseRacesInFlightQueries hammers Close against concurrent
// gathers: the closed-engine guard must prevent scanWG.Add racing
// scanWG.Wait (WaitGroup misuse → panic under load), and queries issued
// after Close must fail with ErrClosed instead of leaking goroutines.
func TestCloseRacesInFlightQueries(t *testing.T) {
	p, src, _, pre := testSetup(3, 64, 4, 2, 3)
	e := newTestEngine(t, p, src, Options{Shards: 4, HedgeDelay: time.Microsecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.TopK(context.Background(), pre, 5); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("TopK racing Close: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	e.Close()
	close(stop)
	wg.Wait()
	if _, err := e.TopK(context.Background(), pre, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close = %v, want ErrClosed", err)
	}
}
