package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
)

// ErrNoSnapshot is returned by ranking calls before the first Swap.
var ErrNoSnapshot = errors.New("shard: no snapshot published (call Swap first)")

// ErrAllShardsSkipped is returned when every shard missed its deadline,
// so not even a partial result exists.
var ErrAllShardsSkipped = errors.New("shard: all shards missed their deadline")

// Options configures an Engine.
type Options struct {
	// Shards is the number of partitions; values < 1 mean 1.
	Shards int
	// ANN, when non-nil, builds a per-shard bucket index on every Swap,
	// enabling TopKApprox.
	ANN *ann.Config
	// ShardTimeout bounds each shard's local scan. A shard that misses it
	// is skipped and the merged result is marked partial; 0 means shards
	// are bounded only by the query context.
	ShardTimeout time.Duration
	// Metrics is the registry the per-shard scan counters register on,
	// shared with the rest of the process so one /metrics endpoint
	// exports everything. Nil means a private registry (reachable via
	// Engine.Metrics).
	Metrics *obs.Registry
	// ScanHook, when set, is called at the start of every shard scan with
	// the shard index. Test instrumentation: a hook that sleeps past
	// ShardTimeout turns that shard into a deadline miss.
	ScanHook func(shardIdx int)
}

// Engine is the sharded ranking engine. All methods are safe for
// concurrent use; ranking never blocks Swap and vice versa.
type Engine struct {
	p            Params
	n            int
	annCfg       *ann.Config
	shardTimeout time.Duration

	snap   atomic.Pointer[snapshot]
	swapMu sync.Mutex // serialises Swap; installs stay version-monotonic
	reg    *obs.Registry
	stats  []shardStat
	heaps  []sync.Pool // per-shard scratch heaps, reused across scans

	// slow, when set, is called at the start of each shard scan — a test
	// hook for injecting a wedged shard (Options.ScanHook).
	slow func(shardIdx int)
}

// NewEngine builds an engine over n shards; publish a table with Swap
// before ranking.
func NewEngine(p Params, opts Options) *Engine {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Engine{
		p:            p,
		n:            n,
		annCfg:       opts.ANN,
		shardTimeout: opts.ShardTimeout,
		reg:          reg,
		stats:        newShardStats(reg, n),
		heaps:        make([]sync.Pool, n),
		slow:         opts.ScanHook,
	}
}

// getHeap takes shard i's scratch heap from its pool (or allocates one)
// and re-arms it for a k-bounded scan.
func (e *Engine) getHeap(i, k int) *topK {
	if h, ok := e.heaps[i].Get().(*topK); ok {
		h.reset(k)
		return h
	}
	return newTopK(k)
}

// NumShards reports the shard count.
func (e *Engine) NumShards() int { return e.n }

// Version reports the published snapshot's version (0 before the first
// Swap).
func (e *Engine) Version() uint64 {
	if snap := e.snap.Load(); snap != nil {
		return snap.version
	}
	return 0
}

// Swap builds a new sharded snapshot from src and publishes it
// atomically: rankings that began before the swap finish on the old
// snapshot, rankings that begin after see the new one. A src whose
// version is not newer than the published snapshot is ignored (swaps
// racing out of order cannot roll the table back).
func (e *Engine) Swap(src Source) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	if cur := e.snap.Load(); cur != nil && src.Version <= cur.version {
		return nil
	}
	snap, err := buildSnapshot(e.p, e.n, src, e.annCfg)
	if err != nil {
		return err
	}
	e.snap.Store(snap)
	return nil
}

// Result is a merged global top-K.
type Result struct {
	// IDs are the best entities, most likely answers first; Dists are the
	// matching distances.
	IDs   []kg.EntityID
	Dists []float64
	// Partial is true when at least one shard missed its deadline;
	// Answered and Skipped list the shard indices that did and did not
	// contribute.
	Partial  bool
	Answered []int
	Skipped  []int
	// Version is the snapshot version the scan ran on.
	Version uint64
}

// localTopK is one shard's contribution to a gather.
type localTopK struct {
	d       []float64
	id      []int32
	skipped bool
}

// TopK scatters the prepared arcs to every shard, scans all of them in
// parallel and merges the local heaps into the global k best entities.
// Scans poll ctx; a cancelled query returns ctx.Err(). Shards that miss
// Options.ShardTimeout are skipped and the result is marked Partial.
func (e *Engine) TopK(ctx context.Context, arcs []Arc, k int) (*Result, error) {
	return e.run(ctx, arcs, k, false)
}

// TopKApprox is the ANN-pruned variant: each shard probes its bucket
// index around the arc centers and scores only the candidate pool.
// Requires Options.ANN.
func (e *Engine) TopKApprox(ctx context.Context, arcs []Arc, k int) (*Result, error) {
	if e.annCfg == nil {
		return nil, fmt.Errorf("shard: TopKApprox requires Options.ANN")
	}
	return e.run(ctx, arcs, k, true)
}

// PoolSize reports how many candidates the per-shard ANN indexes would
// return for the arcs — the work saved versus a full scan.
func (e *Engine) PoolSize(arcs []Arc) int {
	snap := e.snap.Load()
	if snap == nil {
		return 0
	}
	total := 0
	for i := range snap.shards {
		sd := &snap.shards[i]
		if sd.index == nil {
			continue
		}
		total += len(shardCandidates(sd, arcs))
	}
	return total
}

func (e *Engine) run(ctx context.Context, arcs []Arc, k int, approx bool) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: k must be positive, got %d", k)
	}
	if len(arcs) == 0 {
		return nil, fmt.Errorf("shard: no arcs to rank")
	}
	snap := e.snap.Load()
	if snap == nil {
		return nil, ErrNoSnapshot
	}

	// gbound is the shared pruning bound: the smallest full-heap root any
	// shard has published so far. Any shard's local k-th best is an upper
	// bound on the global k-th best, so every shard may prune against it.
	var gbound atomicBound
	gbound.init()

	tr := obs.FromContext(ctx)
	locals := make([]localTopK, len(snap.shards))
	scatterStart := time.Now()
	var wg sync.WaitGroup
	for i := range snap.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.scanShard(ctx, snap, i, arcs, k, approx, &gbound, &locals[i])
		}(i)
	}
	wg.Wait()
	tr.Observe(obs.StageShardScatter, time.Since(scatterStart))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mergeStart := time.Now()
	res, err := mergeLocals(snap, locals, k)
	tr.Observe(obs.StageHeapMerge, time.Since(mergeStart))
	return res, err
}

// scanShard runs one shard's local top-K scan, honouring the per-shard
// deadline and recording latency/skip counters.
func (e *Engine) scanShard(ctx context.Context, snap *snapshot, i int, arcs []Arc, k int, approx bool, gbound *atomicBound, out *localTopK) {
	sd := &snap.shards[i]
	sctx := ctx
	if e.shardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, e.shardTimeout)
		defer cancel()
	}
	if e.slow != nil {
		e.slow(i)
	}
	start := time.Now()
	h := e.getHeap(i, k)
	var err error
	if approx {
		err = e.scanCandidates(sctx, sd, arcs, h, gbound)
	} else {
		err = e.scanRange(sctx, sd, arcs, h, gbound)
	}
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		// The query context dying is handled at the gather (the whole
		// request failed); only a shard-local deadline counts as a skip.
		out.skipped = true
		if ctx.Err() == nil {
			e.stats[i].recordSkip()
		}
		e.heaps[i].Put(h)
		return
	}
	out.d, out.id = h.sorted()
	e.heaps[i].Put(h)
	e.stats[i].record(elapsed)
}

// mergeLocals folds the per-shard sorted top-K lists into the global top
// k, preserving the ascending (distance, ID) order of the scan paths.
func mergeLocals(snap *snapshot, locals []localTopK, k int) (*Result, error) {
	res := &Result{Version: snap.version}
	total := 0
	for i := range locals {
		if locals[i].skipped {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		res.Answered = append(res.Answered, i)
		total += len(locals[i].d)
	}
	if len(res.Answered) == 0 {
		return nil, ErrAllShardsSkipped
	}
	res.Partial = len(res.Skipped) > 0

	// K-way merge of the sorted local lists by (distance, ID).
	if k > total {
		k = total
	}
	res.IDs = make([]kg.EntityID, 0, k)
	res.Dists = make([]float64, 0, k)
	heads := make([]int, len(locals))
	for len(res.IDs) < k {
		best := -1
		for _, i := range res.Answered {
			h := heads[i]
			if h >= len(locals[i].d) {
				continue
			}
			if best < 0 || locals[i].d[h] < locals[best].d[heads[best]] ||
				(locals[i].d[h] == locals[best].d[heads[best]] && locals[i].id[h] < locals[best].id[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		res.IDs = append(res.IDs, kg.EntityID(locals[best].id[heads[best]]))
		res.Dists = append(res.Dists, locals[best].d[heads[best]])
		heads[best]++
	}
	return res, nil
}
