package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/resil"
)

// ErrNoSnapshot is returned by ranking calls before the first Swap.
var ErrNoSnapshot = errors.New("shard: no snapshot published (call Swap first)")

// ErrAllShardsSkipped is returned when every shard was skipped — deadline
// miss, scan fault, or open circuit breaker — so not even a partial
// result exists.
var ErrAllShardsSkipped = errors.New("shard: all shards missed their deadline")

// ErrClosed is returned by rankings issued after Close.
var ErrClosed = errors.New("shard: engine closed")

// Options configures an Engine.
type Options struct {
	// Shards is the number of partitions; values < 1 mean 1.
	Shards int
	// ANN, when non-nil, builds a per-shard bucket index on every Swap,
	// enabling TopKApprox.
	ANN *ann.Config
	// ShardTimeout bounds each shard's local scan. A shard that misses it
	// is skipped and the merged result is marked partial; 0 means shards
	// are bounded only by the query context.
	ShardTimeout time.Duration
	// Metrics is the registry the per-shard scan counters register on,
	// shared with the rest of the process so one /metrics endpoint
	// exports everything. Nil means a private registry (reachable via
	// Engine.Metrics).
	Metrics *obs.Registry
	// ScanHook, when set, is called at the start of every shard scan with
	// the shard index. Test instrumentation: a hook that sleeps past
	// ShardTimeout turns that shard into a deadline miss.
	ScanHook func(shardIdx int)
	// ScanErr, when set, is called after ScanHook with the shard index; a
	// non-nil return fails that shard's scan (skip + breaker failure)
	// without touching the snapshot. Fault-injection seam — see
	// resil.Injector.ScanErrHook.
	ScanErr func(shardIdx int) error
	// Breaker, when non-nil, guards each shard slot with a circuit
	// breaker built from this config: shards that keep missing their
	// deadline (or panicking) are skipped up front until a half-open
	// probe succeeds. Breaker state is exported per shard via Stats and
	// the halk_shard_breaker_state gauge.
	Breaker *resil.BreakerConfig
	// HedgeDelay enables hedged scans: when a shard's scan has not
	// returned after max(HedgeDelay, its observed p99 scan latency) —
	// capped at ShardTimeout — a second identical scan is issued and the
	// first result wins. Snapshots are immutable, so the hedge returns
	// byte-identical data. 0 disables hedging.
	HedgeDelay time.Duration
	// PanicLog receives the stack trace of recovered scan panics; nil
	// means the process-default logger.
	PanicLog *log.Logger
	// ScalarKernel pins exact scans to the scalar float64 reference loop:
	// snapshots skip the blocked float32 planes and every entity is
	// scored by scoreLocal directly. The blocked kernel rescores all
	// retained entities through the same scalar loop, so both paths
	// return bit-identical results — this option exists to prove exactly
	// that (the kernel-identity suite) and as an escape hatch.
	ScalarKernel bool
}

// Engine is the sharded ranking engine. All methods are safe for
// concurrent use; ranking never blocks Swap and vice versa.
type Engine struct {
	p            Params
	n            int
	annCfg       *ann.Config
	shardTimeout time.Duration

	snap   atomic.Pointer[snapshot]
	swapMu sync.Mutex // serialises Swap; installs stay version-monotonic
	reg    *obs.Registry
	stats  []shardStat
	heaps  []sync.Pool // per-shard scratch heaps, reused across scans

	// candPool recycles ANN candidate scratch buffers across scans.
	candPool sync.Pool

	// scalar pins exact scans to the scalar reference kernel
	// (Options.ScalarKernel); slack / twoRho32 are the blocked kernel's
	// precomputed filter constants. slack upper-bounds how far the
	// float32 filter accumulation can overshoot the true float64
	// distance — the worst per-dimension term is the square-root cliff,
	// sqrt(x+δ)-sqrt(x) ≤ sqrt(δ) ≈ 9.2e-4 for the ≤ ~8.5e-7 the float32
	// tables, dots, and halfEps pad can inflate the sqrt argument, with
	// table/accumulation rounding adding only ~1e-5 — so a 1.2e-3 budget
	// per dimension (scaled by 2ρ(1+η)) keeps the filter a strict
	// superset selection: lanes it drops provably cannot enter the
	// top-K.
	scalar   bool
	slack    float64
	twoRho32 float32

	// breakers is one circuit breaker per shard slot (nil when
	// Options.Breaker was nil: every scan is always admitted).
	breakers []*resil.Breaker
	// hedgeDelay is the hedged-scan floor (Options.HedgeDelay); 0
	// disables hedging.
	hedgeDelay time.Duration
	panicLog   *log.Logger

	// scanWG tracks every scan goroutine — scatter and hedge alike — so
	// Close can await stragglers instead of leaking them. closeMu
	// serialises new gathers against Close: a gather adds its scatter
	// goroutines under the read lock, Close flips closed under the write
	// lock, so scanWG.Add can never race scanWG.Wait from zero.
	scanWG  sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool

	// Delta-swap counters: delta publications and how many shards each
	// rebuilt vs shared with the previous snapshot.
	deltaSwaps   *obs.Counter
	deltaRebuilt *obs.Counter
	deltaReused  *obs.Counter

	// slow, when set, is called at the start of each shard scan — a test
	// hook for injecting a wedged shard (Options.ScanHook).
	slow func(shardIdx int)
	// scanErr is the error-returning fault seam (Options.ScanErr).
	scanErr func(shardIdx int) error
}

// NewEngine builds an engine over n shards; publish a table with Swap
// before ranking.
func NewEngine(p Params, opts Options) *Engine {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		p:            p,
		n:            n,
		annCfg:       opts.ANN,
		shardTimeout: opts.ShardTimeout,
		reg:          reg,
		stats:        newShardStats(reg, n),
		heaps:        make([]sync.Pool, n),
		scalar:       opts.ScalarKernel,
		slack:        float64(p.Dim) * 2 * p.Rho * (1 + p.Eta) * 1.2e-3,
		twoRho32:     float32(2 * p.Rho),
		hedgeDelay:   opts.HedgeDelay,
		panicLog:     opts.PanicLog,
		slow:         opts.ScanHook,
		scanErr:      opts.ScanErr,
	}
	e.deltaSwaps = reg.Counter("halk_shard_delta_swaps_total", "Delta snapshot publications (Source.Dirty fast path).")
	e.deltaRebuilt = reg.Counter("halk_shard_delta_shards_rebuilt_total", "Shards rebuilt across delta swaps.")
	e.deltaReused = reg.Counter("halk_shard_delta_shards_reused_total", "Shards shared with the previous snapshot across delta swaps.")
	if opts.Breaker != nil {
		e.breakers = make([]*resil.Breaker, n)
		for i := range e.breakers {
			b := resil.NewBreaker(*opts.Breaker)
			e.breakers[i] = b
			reg.GaugeFunc("halk_shard_breaker_state",
				"Circuit breaker state per shard (0=closed, 1=open, 2=half-open).",
				func() float64 { return float64(b.State()) },
				obs.L("shard", strconv.Itoa(i)))
		}
	}
	return e
}

// Close waits for every in-flight scan goroutine — scatter and hedge —
// to drain; a closed engine leaks nothing. Rankings issued after Close
// begins are refused with ErrClosed (Swap and the read-only accessors
// keep working), so Close may race in-flight queries safely. Close is
// idempotent.
func (e *Engine) Close() {
	e.closeMu.Lock()
	e.closed = true
	e.closeMu.Unlock()
	e.scanWG.Wait()
}

// Breakers returns the per-shard circuit breakers, or nil when breakers
// are disabled.
func (e *Engine) Breakers() []*resil.Breaker { return e.breakers }

// getHeap takes shard i's scratch heap from its pool (or allocates one)
// and re-arms it for a k-bounded scan.
func (e *Engine) getHeap(i, k int) *topK {
	if h, ok := e.heaps[i].Get().(*topK); ok {
		h.reset(k)
		return h
	}
	return newTopK(k)
}

// NumShards reports the shard count.
func (e *Engine) NumShards() int { return e.n }

// EntityRange reports the contiguous global entity ID range [lo, hi)
// the published snapshot covers — [0, numEntities) for a single-process
// engine, the hosted slice for a cluster node built with Source.Base.
// Before the first Swap both bounds are 0.
func (e *Engine) EntityRange() (lo, hi int) {
	snap := e.snap.Load()
	if snap == nil || len(snap.shards) == 0 {
		return 0, 0
	}
	return snap.shards[0].lo, snap.shards[len(snap.shards)-1].hi
}

// Version reports the published snapshot's version (0 before the first
// Swap).
func (e *Engine) Version() uint64 {
	if snap := e.snap.Load(); snap != nil {
		return snap.version
	}
	return 0
}

// Swap builds a new sharded snapshot from src and publishes it
// atomically: rankings that began before the swap finish on the old
// snapshot, rankings that begin after see the new one. A src whose
// version is not newer than the published snapshot is ignored (swaps
// racing out of order cannot roll the table back).
func (e *Engine) Swap(src Source) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.snap.Load()
	if cur != nil && src.Version <= cur.version {
		return nil
	}
	// A swap may refresh the values but never resize the served world:
	// entity IDs are positions in this table, and shrinking or growing
	// it mid-flight would silently remap every ID the dictionaries and
	// caches still hold. (Shape errors inside buildSnapshot would catch
	// a non-rectangular table; this catches a rectangular one of the
	// wrong size, e.g. a hot-reloaded checkpoint from another dataset.)
	if cur != nil && len(src.Angles) != cur.numEntities*e.p.Dim {
		return fmt.Errorf("shard: swap source has %d angle values, published snapshot holds %d entities × dim %d",
			len(src.Angles), cur.numEntities, e.p.Dim)
	}
	// Delta path: when the caller names exactly which entities changed
	// and the geometry matches the published snapshot, rebuild only the
	// shards containing a dirty entity and share the rest (shardData is
	// immutable after publication, so sharing across snapshots is safe).
	if cur != nil && src.Dirty != nil && len(cur.shards) > 0 && src.Base == cur.shards[0].lo {
		snap, rebuilt, err := deltaSnapshot(e.p, src, cur, e.annCfg, !e.scalar)
		if err != nil {
			return err
		}
		e.snap.Store(snap)
		e.deltaSwaps.Inc()
		e.deltaRebuilt.Add(uint64(rebuilt))
		e.deltaReused.Add(uint64(len(cur.shards) - rebuilt))
		return nil
	}
	snap, err := buildSnapshot(e.p, e.n, src, e.annCfg, !e.scalar)
	if err != nil {
		return err
	}
	e.snap.Store(snap)
	return nil
}

// Result is a merged global top-K.
type Result struct {
	// IDs are the best entities, most likely answers first; Dists are the
	// matching distances.
	IDs   []kg.EntityID
	Dists []float64
	// Partial is true when at least one shard missed its deadline;
	// Answered and Skipped list the shard indices that did and did not
	// contribute.
	Partial  bool
	Answered []int
	Skipped  []int
	// Version is the snapshot version the scan ran on.
	Version uint64
}

// BatchItem is one query of a batched ranking: its prepared arcs and how
// many answers to retain.
type BatchItem struct {
	Arcs []Arc
	K    int
}

// batchSpec is the immutable per-gather description every shard scan
// reads: the queries, their float32 kernel tables (nil on the scalar or
// approx paths), and the scan mode.
type batchSpec struct {
	items  []BatchItem
	kern   [][]kernArc
	approx bool
}

// localBatch is one shard's contribution to a gather: the sorted local
// top-K of every query in the batch, or the shard-level outcome flags
// (a shard skips or fails as a unit — one scan serves the whole batch).
type localBatch struct {
	d       [][]float64
	id      [][]int32
	skipped bool
	// failed marks a shard-local fault (deadline miss, scan error,
	// panic) that should count against the shard's circuit breaker.
	failed bool
	// tripped marks a shard skipped up front by an open breaker; it
	// reports no outcome (the shard was never called).
	tripped bool
}

// TopK scatters the prepared arcs to every shard, scans all of them in
// parallel and merges the local heaps into the global k best entities.
// Scans poll ctx; a cancelled query returns ctx.Err(). Shards that miss
// Options.ShardTimeout are skipped and the result is marked Partial.
func (e *Engine) TopK(ctx context.Context, arcs []Arc, k int) (*Result, error) {
	return e.run(ctx, arcs, k, false, math.Inf(1))
}

// TopKBound is TopK with the shared pruning bound seeded from outside:
// bound must be a true upper bound on the global k-th best distance
// (for example another node's k-th best in a scatter-gather cluster),
// and shards prune against it from the first scored entity instead of
// waiting for a local heap to fill. A bound <= 0 or +Inf seeds nothing.
// Seeding never changes which entities can win — it only skips entities
// that provably cannot enter the global top-K — so the merged result is
// identical to an unseeded scan whenever the bound is valid.
func (e *Engine) TopKBound(ctx context.Context, arcs []Arc, k int, bound float64) (*Result, error) {
	return e.run(ctx, arcs, k, false, bound)
}

// TopKApprox is the ANN-pruned variant: each shard probes its bucket
// index around the arc centers and scores only the candidate pool.
// Requires Options.ANN.
func (e *Engine) TopKApprox(ctx context.Context, arcs []Arc, k int) (*Result, error) {
	if e.annCfg == nil {
		return nil, fmt.Errorf("shard: TopKApprox requires Options.ANN")
	}
	return e.run(ctx, arcs, k, true, math.Inf(1))
}

// RankBatch evaluates many queries in one gather: each shard runs a
// single scan that sweeps every query of the batch through each entity
// block in turn, so the blocked planes are read once per block pass
// instead of once per query. Per-query results are merged independently
// (each item gets its own heaps, pruning bounds and top-K), and every
// Result is bit-identical to what TopK would return for that item alone
// — batching changes memory traffic, never answers. Shard outcomes are
// batch-wide: a shard that misses its deadline marks every item's
// Result partial, exactly as it would a lone query's.
func (e *Engine) RankBatch(ctx context.Context, items []BatchItem) ([]*Result, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("shard: empty batch")
	}
	for i := range items {
		if items[i].K <= 0 {
			return nil, fmt.Errorf("shard: batch item %d: k must be positive, got %d", i, items[i].K)
		}
		if len(items[i].Arcs) == 0 {
			return nil, fmt.Errorf("shard: batch item %d has no arcs to rank", i)
		}
	}
	return e.runBatch(ctx, items, false, math.Inf(1))
}

// PoolSize reports how many candidates the per-shard ANN indexes would
// return for the arcs — the work saved versus a full scan.
func (e *Engine) PoolSize(arcs []Arc) int {
	snap := e.snap.Load()
	if snap == nil {
		return 0
	}
	total := 0
	for i := range snap.shards {
		sd := &snap.shards[i]
		if sd.index == nil {
			continue
		}
		total += len(shardCandidates(sd, arcs, nil))
	}
	return total
}

// run is the single-query entry: a batch of one.
func (e *Engine) run(ctx context.Context, arcs []Arc, k int, approx bool, bound float64) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: k must be positive, got %d", k)
	}
	if len(arcs) == 0 {
		return nil, fmt.Errorf("shard: no arcs to rank")
	}
	res, err := e.runBatch(ctx, []BatchItem{{Arcs: arcs, K: k}}, approx, bound)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

func (e *Engine) runBatch(ctx context.Context, items []BatchItem, approx bool, bound float64) ([]*Result, error) {
	snap := e.snap.Load()
	if snap == nil {
		return nil, ErrNoSnapshot
	}

	spec := &batchSpec{items: items, approx: approx}
	if !approx && !e.scalar {
		spec.kern = prepareKernel(e.p.Dim, e.p.Eta, items)
	}

	// gbounds holds each query's shared pruning bound: the smallest
	// full-heap root any shard has published for that query so far. Any
	// shard's local k-th best is an upper bound on the global k-th best,
	// so every shard may prune against it. A caller-supplied bound
	// (TopKBound) seeds it before the first scan.
	gbounds := make([]atomicBound, len(items))
	for qi := range gbounds {
		gbounds[qi].init()
		if bound > 0 && !math.IsInf(bound, 1) {
			gbounds[qi].update(bound)
		}
	}

	tr := obs.FromContext(ctx)
	locals := make([]localBatch, len(snap.shards))
	scatterStart := time.Now()
	var wg sync.WaitGroup
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrClosed
	}
	for i := range snap.shards {
		if e.breakers != nil && !e.breakers[i].Allow() {
			// Open breaker: skip the shard up front — the response
			// degrades to partial immediately instead of re-paying the
			// deadline on a shard that keeps failing.
			locals[i].skipped = true
			locals[i].tripped = true
			e.stats[i].recordBreakerSkip()
			continue
		}
		wg.Add(1)
		e.scanWG.Add(1)
		go func(i int) {
			defer e.scanWG.Done()
			defer wg.Done()
			e.runShard(ctx, snap, i, spec, gbounds, &locals[i])
		}(i)
	}
	e.closeMu.RUnlock()
	wg.Wait()
	tr.Observe(obs.StageShardScatter, time.Since(scatterStart))
	if err := ctx.Err(); err != nil {
		// The whole query died; shard outcomes under a dead parent carry
		// no signal, so the breakers record neither success nor failure.
		// But a shard whose Allow admitted a half-open probe must release
		// it: an unreported probe would leave the breaker refusing calls
		// forever, permanently skipping a recovered shard.
		if e.breakers != nil {
			for i := range locals {
				if !locals[i].tripped {
					e.breakers[i].Cancel()
				}
			}
		}
		return nil, err
	}
	if e.breakers != nil {
		for i := range locals {
			switch {
			case locals[i].tripped:
				// Never called; no outcome.
			case locals[i].failed:
				e.breakers[i].Failure()
			case !locals[i].skipped:
				e.breakers[i].Success()
			default:
				// Skipped without a shard-local fault (the query died
				// mid-scan, or a hedge race left no attributable cause):
				// no outcome, but release an admitted probe.
				e.breakers[i].Cancel()
			}
		}
	}
	mergeStart := time.Now()
	res, err := mergeBatch(snap, locals, items)
	tr.Observe(obs.StageHeapMerge, time.Since(mergeStart))
	return res, err
}

// runShard runs one shard's scan, optionally racing a hedge: when the
// primary scan has not returned after the shard's hedge delay, a second
// identical scan is issued and the first (non-skipped) result wins.
// Both scans read the same immutable snapshot, so whichever finishes
// first returns byte-identical data.
//
// The per-shard deadline is applied once, here, and shared by the
// primary and any hedge: the hedge inherits whatever remains of the
// shard's budget rather than a fresh ShardTimeout, so a persistently
// slow shard bounds the gather at ~ShardTimeout instead of
// hedge delay + ShardTimeout.
func (e *Engine) runShard(ctx context.Context, snap *snapshot, i int, spec *batchSpec, gbounds []atomicBound, out *localBatch) {
	sctx := ctx
	var cancel context.CancelFunc
	if e.shardTimeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, e.shardTimeout)
	} else {
		sctx, cancel = context.WithCancel(ctx)
	}
	defer cancel() // the losing scan is abandoned, not awaited
	if e.hedgeDelay <= 0 {
		e.scanShard(sctx, ctx, snap, i, spec, gbounds, out)
		return
	}

	type scanDone struct {
		local localBatch
		hedge bool
	}
	// Buffered so the losing scan's send never blocks after we return.
	results := make(chan scanDone, 2)
	launch := func(hedge bool) {
		e.scanWG.Add(1)
		go func() {
			defer e.scanWG.Done()
			var l localBatch
			e.scanShard(sctx, ctx, snap, i, spec, gbounds, &l)
			results <- scanDone{local: l, hedge: hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(e.hedgeDelayFor(i))
	defer timer.Stop()
	select {
	case r := <-results:
		*out = r.local
		return
	case <-timer.C:
		e.stats[i].recordHedge()
		launch(true)
	}
	first := <-results
	if !first.local.skipped {
		*out = first.local
		if first.hedge {
			e.stats[i].recordHedgeWin()
		}
		return
	}
	// The first finisher was a skip; give the other scan its chance.
	second := <-results
	if !second.local.skipped {
		*out = second.local
		if second.hedge {
			e.stats[i].recordHedgeWin()
		}
		return
	}
	out.skipped = true
	out.failed = first.local.failed || second.local.failed
}

// hedgeDelayFor derives shard i's hedge delay: the configured floor
// raised to the shard's observed p99 scan latency, capped at the shard
// timeout (hedging after the deadline would race a lost cause).
func (e *Engine) hedgeDelayFor(i int) time.Duration {
	d := e.hedgeDelay
	if p99 := e.stats[i].scanMs.Quantile(0.99); p99 > 0 {
		if observed := time.Duration(p99 * float64(time.Millisecond)); observed > d {
			d = observed
		}
	}
	if e.shardTimeout > 0 && d > e.shardTimeout {
		d = e.shardTimeout
	}
	return d
}

// scanShard runs one shard's local top-K scan for the whole batch under
// sctx — the shard-scoped context already carrying the per-shard
// deadline (see runShard) — and records latency/skip counters; qctx is
// the whole query's context, consulted only to classify failures. A
// panic anywhere in the scan is contained here: the shard is reported as
// skipped+failed (the gather degrades to a partial result, exactly like
// a deadline miss) and the stack is counted and logged — one poisoned
// shard never takes down the process or the query's siblings.
func (e *Engine) scanShard(sctx, qctx context.Context, snap *snapshot, i int, spec *batchSpec, gbounds []atomicBound, out *localBatch) {
	defer func() {
		if v := recover(); v != nil {
			out.skipped = true
			out.failed = true
			e.stats[i].recordPanic()
			logger := e.panicLog
			if logger == nil {
				logger = log.Default()
			}
			logger.Printf("shard: recovered panic in shard %d scan: %v\n%s", i, v, debug.Stack())
		}
	}()
	sd := &snap.shards[i]
	if e.slow != nil {
		e.slow(i)
	}
	if e.scanErr != nil {
		if err := e.scanErr(i); err != nil {
			out.skipped = true
			out.failed = true
			e.stats[i].recordError()
			return
		}
	}
	start := time.Now()
	heaps := make([]*topK, len(spec.items))
	for qi := range spec.items {
		heaps[qi] = e.getHeap(i, spec.items[qi].K)
	}
	release := func() {
		for _, h := range heaps {
			e.heaps[i].Put(h)
		}
	}
	var sc scanCounters
	var err error
	switch {
	case spec.approx:
		for qi := range spec.items {
			if err = e.scanCandidates(sctx, sd, spec.items[qi].Arcs, heaps[qi], &gbounds[qi]); err != nil {
				break
			}
		}
	case spec.kern != nil && sd.cos32 != nil:
		err = e.scanBlocked(sctx, sd, spec, heaps, gbounds, &sc)
	default:
		for qi := range spec.items {
			if err = e.scanRange(sctx, sd, spec.items[qi].Arcs, heaps[qi], &gbounds[qi]); err != nil {
				break
			}
		}
	}
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		// Classify the abort: the query context dying is handled at the
		// gather (the whole request failed, no shard is at fault); the
		// shard deadline expiring is a shard-local fault (skip counter +
		// breaker failure); a plain cancellation with the query alive
		// means this scan lost a hedge race and its result is discarded —
		// neither a failure nor a stat.
		out.skipped = true
		if qctx.Err() == nil && errors.Is(sctx.Err(), context.DeadlineExceeded) {
			out.failed = true
			e.stats[i].recordSkip()
		}
		release()
		return
	}
	out.d = make([][]float64, len(heaps))
	out.id = make([][]int32, len(heaps))
	for qi, h := range heaps {
		out.d[qi], out.id[qi] = h.sorted()
	}
	release()
	e.stats[i].record(elapsed)
	e.stats[i].recordKernel(&sc)
}

// mergeBatch folds the per-shard sorted top-K lists into each query's
// global top k, preserving the ascending (distance, ID) order of the
// scan paths. Shard outcomes (answered/skipped/partial) are batch-wide
// and shared across every Result.
func mergeBatch(snap *snapshot, locals []localBatch, items []BatchItem) ([]*Result, error) {
	var answered, skipped []int
	for i := range locals {
		if locals[i].skipped {
			skipped = append(skipped, i)
			continue
		}
		answered = append(answered, i)
	}
	if len(answered) == 0 {
		return nil, ErrAllShardsSkipped
	}
	results := make([]*Result, len(items))
	for qi := range items {
		res := &Result{
			Version:  snap.version,
			Answered: answered,
			Skipped:  skipped,
			Partial:  len(skipped) > 0,
		}
		k := items[qi].K
		total := 0
		for _, i := range answered {
			total += len(locals[i].d[qi])
		}
		if k > total {
			k = total
		}
		res.IDs = make([]kg.EntityID, 0, k)
		res.Dists = make([]float64, 0, k)
		heads := make([]int, len(locals))
		for len(res.IDs) < k {
			best := -1
			for _, i := range answered {
				h := heads[i]
				if h >= len(locals[i].d[qi]) {
					continue
				}
				if best < 0 || locals[i].d[qi][h] < locals[best].d[qi][heads[best]] ||
					(locals[i].d[qi][h] == locals[best].d[qi][heads[best]] && locals[i].id[qi][h] < locals[best].id[qi][heads[best]]) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			res.IDs = append(res.IDs, kg.EntityID(locals[best].id[qi][heads[best]]))
			res.Dists = append(res.Dists, locals[best].d[qi][heads[best]])
			heads[best]++
		}
		results[qi] = res
	}
	return results, nil
}
