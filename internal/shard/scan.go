package shard

import (
	"context"
	"math"
	"sync/atomic"

	"github.com/halk-kg/halk/internal/kg"
)

// ctxCheckStride is how many entities a shard scores between
// context-cancellation checks — frequent enough to honour tight serving
// deadlines, rare enough to stay off the hot loop's profile.
const ctxCheckStride = 1024

// pruneStride is how many dimensions accumulate between bound checks in
// the inner scoring loop. Every distance term is non-negative, so once
// the running sum exceeds the pruning bound the entity cannot enter the
// top-K and the rest of the loop is skipped.
const pruneStride = 8

// atomicBound is a lock-free shared minimum over non-negative float64s
// (their IEEE bit patterns order like the values, so a uint64 CAS-min
// suffices).
type atomicBound struct{ bits atomic.Uint64 }

func (b *atomicBound) init()         { b.bits.Store(math.Float64bits(math.Inf(1))) }
func (b *atomicBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

func (b *atomicBound) update(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// scanRange scores every entity of the shard against the arcs, keeping
// the local k best in a bounded heap. The accumulation order per entity
// is identical to the single-node fast path, so retained distances match
// a full scan bit for bit; pruning only skips entities whose partial sum
// already exceeds what the global top-K could admit.
func (e *Engine) scanRange(ctx context.Context, sd *shardData, arcs []Arc, h *topK, gbound *atomicBound) error {
	ents := sd.hi - sd.lo
	for li := 0; li < ents; li++ {
		if li%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.scoreLocal(sd, arcs, li, h, gbound)
	}
	return nil
}

// scanCandidates scores only the entities the shard's ANN index returns
// for the arcs' centers.
func (e *Engine) scanCandidates(ctx context.Context, sd *shardData, arcs []Arc, h *topK, gbound *atomicBound) error {
	for n, id := range shardCandidates(sd, arcs) {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.scoreLocal(sd, arcs, int(id)-sd.lo, h, gbound)
	}
	return nil
}

// shardCandidates unions the shard-index probes of every arc center.
func shardCandidates(sd *shardData, arcs []Arc) []kg.EntityID {
	if sd.index == nil {
		return nil
	}
	seen := make(map[kg.EntityID]struct{})
	for i := range arcs {
		for _, id := range sd.index.Candidates(arcs[i].C, arcs[i].Radius) {
			seen[id] = struct{}{}
		}
	}
	out := make([]kg.EntityID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// scoreLocal scores shard-local entity li (global ID sd.lo+li) against
// every arc, minimising over arcs, and offers the result to the heap. It
// prunes against min(local heap bound, shared global bound): terms are
// non-negative, so a partial sum strictly above the bound can neither
// improve this entity's running best nor enter the top-K.
func (e *Engine) scoreLocal(sd *shardData, arcs []Arc, li int, h *topK, gbound *atomicBound) {
	dim := e.p.Dim
	twoRho := 2 * e.p.Rho
	base := li * dim
	thr := h.bound()
	if g := gbound.load(); g < thr {
		thr = g
	}
	best := math.Inf(1)
	for ai := range arcs {
		pa := &arcs[ai]
		lim := best
		if thr < lim {
			lim = thr
		}
		sum := 0.0
		pruned := false
		for j := 0; j < dim; j++ {
			cp, sp := sd.cos[base+j], sd.sin[base+j]
			cs := cp*pa.CosS[j] + sp*pa.SinS[j]
			ce := cp*pa.CosE[j] + sp*pa.SinE[j]
			cc := cp*pa.CosC[j] + sp*pa.SinC[j]
			do := halfSin(math.Max(cs, ce)) // min sin == max cos
			di := math.Min(halfSin(cc), pa.SH[j])
			sum += twoRho * (do + e.p.Eta*di)
			if j%pruneStride == pruneStride-1 && sum > lim {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		if sd.group != nil {
			if d := 1 - pa.Hot[sd.group[li]]; d > 0 {
				sum += e.p.Xi * d
			}
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return
	}
	if h.push(best, int32(sd.lo+li)) && h.full() {
		gbound.update(h.bound())
	}
}
