package shard

import (
	"context"
	"math"
	"slices"
	"sync/atomic"

	"github.com/halk-kg/halk/internal/kg"
)

// ctxCheckStride is how many entities a shard scores between
// context-cancellation checks — frequent enough to honour tight serving
// deadlines, rare enough to stay off the hot loop's profile.
const ctxCheckStride = 1024

// pruneStride is how many dimensions accumulate between bound checks in
// the inner scoring loop. Every distance term is non-negative, so once
// the running sum exceeds the pruning bound the entity cannot enter the
// top-K and the rest of the loop is skipped.
const pruneStride = 8

// atomicBound is a lock-free shared minimum over non-negative float64s
// (their IEEE bit patterns order like the values, so a uint64 CAS-min
// suffices).
type atomicBound struct{ bits atomic.Uint64 }

func (b *atomicBound) init()         { b.bits.Store(math.Float64bits(math.Inf(1))) }
func (b *atomicBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

func (b *atomicBound) update(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// scanRange scores every entity of the shard against the arcs, keeping
// the local k best in a bounded heap. The accumulation order per entity
// is identical to the single-node fast path, so retained distances match
// a full scan bit for bit; pruning only skips entities whose partial sum
// already exceeds what the global top-K could admit.
func (e *Engine) scanRange(ctx context.Context, sd *shardData, arcs []Arc, h *topK, gbound *atomicBound) error {
	ents := sd.hi - sd.lo
	for li := 0; li < ents; li++ {
		if li%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.scoreLocal(sd, arcs, li, h, gbound)
	}
	return nil
}

// scanCandidates scores only the entities the shard's ANN index returns
// for the arcs' centers.
func (e *Engine) scanCandidates(ctx context.Context, sd *shardData, arcs []Arc, h *topK, gbound *atomicBound) error {
	bufp, _ := e.candPool.Get().(*[]kg.EntityID)
	if bufp == nil {
		bufp = new([]kg.EntityID)
	}
	cands := shardCandidates(sd, arcs, *bufp)
	defer func() {
		*bufp = cands[:0]
		e.candPool.Put(bufp)
	}()
	for n, id := range cands {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.scoreLocal(sd, arcs, int(id)-sd.lo, h, gbound)
	}
	return nil
}

// shardCandidates unions the shard-index probes of every arc center into
// buf's storage, returning the candidates sorted ascending and
// deduplicated — a deterministic scan order, with no per-query map
// allocation (callers pool the scratch buffer).
func shardCandidates(sd *shardData, arcs []Arc, buf []kg.EntityID) []kg.EntityID {
	if sd.index == nil {
		return buf[:0]
	}
	out := buf[:0]
	for i := range arcs {
		out = sd.index.AppendCandidates(out, arcs[i].C, arcs[i].Radius)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// scoreLocal scores shard-local entity li (global ID sd.lo+li) against
// every arc, minimising over arcs, and offers the result to the heap. It
// prunes against min(local heap bound, shared global bound): terms are
// non-negative, so a partial sum strictly above the bound can neither
// improve this entity's running best nor enter the top-K.
//
// The entity row and arc tables are re-sliced to exactly dim elements up
// front so the inner loop runs free of bounds checks, and the builtin
// min/max are used over math.Min/math.Max — identical semantics for
// every float64 input (NaN propagation and signed-zero ordering
// included), but inlined instead of a call.
func (e *Engine) scoreLocal(sd *shardData, arcs []Arc, li int, h *topK, gbound *atomicBound) {
	dim := e.p.Dim
	twoRho := 2 * e.p.Rho
	eta := e.p.Eta
	base := li * dim
	cosR := sd.cos[base : base+dim : base+dim]
	sinR := sd.sin[base : base+dim : base+dim]
	thr := h.bound()
	if g := gbound.load(); g < thr {
		thr = g
	}
	best := math.Inf(1)
	for ai := range arcs {
		pa := &arcs[ai]
		cosS, sinS := pa.CosS[:dim], pa.SinS[:dim]
		cosE, sinE := pa.CosE[:dim], pa.SinE[:dim]
		cosC, sinC := pa.CosC[:dim], pa.SinC[:dim]
		sh := pa.SH[:dim]
		lim := best
		if thr < lim {
			lim = thr
		}
		sum := 0.0
		pruned := false
		for j := 0; j < dim; j++ {
			cp, sp := cosR[j], sinR[j]
			cs := cp*cosS[j] + sp*sinS[j]
			ce := cp*cosE[j] + sp*sinE[j]
			cc := cp*cosC[j] + sp*sinC[j]
			do := halfSin(max(cs, ce)) // min sin == max cos
			di := min(halfSin(cc), sh[j])
			sum += twoRho * (do + eta*di)
			if j%pruneStride == pruneStride-1 && sum > lim {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		if sd.group != nil {
			if d := 1 - pa.Hot[sd.group[li]]; d > 0 {
				sum += e.p.Xi * d
			}
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return
	}
	if h.push(best, int32(sd.lo+li)) && h.full() {
		gbound.update(h.bound())
	}
}
