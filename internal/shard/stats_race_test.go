package shard

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestShardStatsRaceStress is the audit for the per-shard latency
// counters' memory ordering: scan goroutines publish scan/skip/latency
// counters while a reader goroutine snapshots Stats and a swapper
// publishes fresh snapshots, all concurrently. Run under -race (CI does;
// locally `go test -race -run ShardStatsRace -count=50 ./internal/shard`
// is the stress recipe from the audit). The counters are registry-backed
// atomics, so the reader needs no lock and can never observe a torn
// value; this test pins that property against regressions.
func TestShardStatsRaceStress(t *testing.T) {
	p, src, _, pre := testSetup(29, 103, 6, 2, 4)
	e := newTestEngine(t, p, src, Options{Shards: 4, ShardTimeout: 5 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Scanners: drive TopK so every shard records scans (and, with the
	// tight shard timeout under race-detector slowdown, sometimes skips).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_, _ = e.TopK(ctx, pre, 9)
			}
		}()
	}

	// Swapper: republish the table with moving versions mid-scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := src
		for i := 0; i < 20; i++ {
			s.Version++
			if err := e.Swap(s); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
		}
	}()

	// Readers: hammer Stats while scans are publishing.
	statsDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(statsDone)
		for i := 0; i < 200; i++ {
			for _, ss := range e.Stats() {
				if ss.MeanScanMs < 0 || ss.MaxScanMs < ss.LastScanMs && ss.Scans == 1 {
					t.Errorf("inconsistent stats snapshot: %+v", ss)
					return
				}
			}
		}
	}()

	wg.Wait()
	<-statsDone

	var scans, skips uint64
	for _, ss := range e.Stats() {
		scans += ss.Scans
		skips += ss.Skips
	}
	if scans+skips == 0 {
		t.Fatal("stress run recorded no scans or skips")
	}
}
