package shard

import (
	"context"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/geometry"
)

// mutate returns a copy of src with the given entity rows perturbed and
// Dirty/Version set for a delta swap.
func mutateSource(src Source, dim int, dirty []int32, version uint64, seed int64) Source {
	rng := rand.New(rand.NewSource(seed))
	out := src
	out.Angles = append([]float64(nil), src.Angles...)
	out.Dirty = dirty
	out.Version = version
	for _, e := range dirty {
		for j := 0; j < dim; j++ {
			out.Angles[(int(e)-src.Base)*dim+j] = rng.Float64() * geometry.TwoPi
		}
	}
	return out
}

// TestDeltaSwapByteIdentity publishes the same mutated table through the
// delta path and a full rebuild and requires identical rankings: sharing
// clean shards must never change a served answer.
func TestDeltaSwapByteIdentity(t *testing.T) {
	const ents, dim, shards = 120, 8, 5
	p, src, _, arcs := testSetup(3, ents, dim, 2, 4)
	annCfg := &ann.Config{Bands: 4, BucketsPerBand: 8, Seed: 7}

	delta := NewEngine(p, Options{Shards: shards, ANN: annCfg})
	full := NewEngine(p, Options{Shards: shards, ANN: annCfg})
	for _, e := range []*Engine{delta, full} {
		if err := e.Swap(src); err != nil {
			t.Fatal(err)
		}
	}

	// Touch entities in two of the five shards (rows 0-23 and 96-119 are
	// shards 0 and 4 for 120/5).
	dirty := []int32{1, 17, 99, 119}
	src2 := mutateSource(src, dim, dirty, 2, 11)
	if err := delta.Swap(src2); err != nil {
		t.Fatal(err)
	}
	fullSrc := src2
	fullSrc.Dirty = nil
	if err := full.Swap(fullSrc); err != nil {
		t.Fatal(err)
	}
	if v := delta.Version(); v != 2 {
		t.Fatalf("delta engine version = %d, want 2", v)
	}

	for _, k := range []int{1, 7, ents} {
		dr, err := delta.TopK(context.Background(), arcs, k)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := full.TopK(context.Background(), arcs, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(dr.IDs) != len(fr.IDs) {
			t.Fatalf("k=%d: delta returned %d ids, full %d", k, len(dr.IDs), len(fr.IDs))
		}
		for i := range dr.IDs {
			if dr.IDs[i] != fr.IDs[i] || dr.Dists[i] != fr.Dists[i] {
				t.Fatalf("k=%d rank %d: delta (%d, %v) != full (%d, %v)",
					k, i, dr.IDs[i], dr.Dists[i], fr.IDs[i], fr.Dists[i])
			}
		}
	}
	da, err := delta.TopKApprox(context.Background(), arcs, 9)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := full.TopKApprox(context.Background(), arcs, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(da.IDs) != len(fa.IDs) {
		t.Fatalf("approx: delta %d ids, full %d", len(da.IDs), len(fa.IDs))
	}
	for i := range da.IDs {
		if da.IDs[i] != fa.IDs[i] || da.Dists[i] != fa.Dists[i] {
			t.Fatalf("approx rank %d mismatch", i)
		}
	}
}

// TestDeltaSwapSharesCleanShards verifies the point of the delta path:
// shards with no dirty entity share their backing arrays with the
// previous snapshot instead of being rebuilt.
func TestDeltaSwapSharesCleanShards(t *testing.T) {
	const ents, dim, shards = 100, 4, 5
	p, src, _, _ := testSetup(5, ents, dim, 1, 4)
	e := NewEngine(p, Options{Shards: shards})
	if err := e.Swap(src); err != nil {
		t.Fatal(err)
	}
	prev := e.snap.Load()

	// Dirty only entity 50 — shard 2 of [0,20) [20,40) [40,60)…
	src2 := mutateSource(src, dim, []int32{50}, 2, 13)
	if err := e.Swap(src2); err != nil {
		t.Fatal(err)
	}
	cur := e.snap.Load()
	for i := range cur.shards {
		shared := &cur.shards[i].cos[0] == &prev.shards[i].cos[0]
		if i == 2 && shared {
			t.Fatal("dirty shard 2 was not rebuilt")
		}
		if i != 2 && !shared {
			t.Fatalf("clean shard %d was rebuilt instead of shared", i)
		}
	}
	if got := e.deltaReused.Value(); got != 4 {
		t.Fatalf("deltaReused = %d, want 4", got)
	}
	if got := e.deltaRebuilt.Value(); got != 1 {
		t.Fatalf("deltaRebuilt = %d, want 1", got)
	}

	// A non-nil empty dirty set republishes everything untouched: a pure
	// version bump.
	src3 := src2
	src3.Dirty = []int32{}
	src3.Version = 3
	if err := e.Swap(src3); err != nil {
		t.Fatal(err)
	}
	next := e.snap.Load()
	if next.version != 3 {
		t.Fatalf("version = %d, want 3", next.version)
	}
	for i := range next.shards {
		if &next.shards[i].cos[0] != &cur.shards[i].cos[0] {
			t.Fatalf("empty-dirty republish rebuilt shard %d", i)
		}
	}

	// A stale-versioned delta is ignored like any other stale swap.
	stale := src2
	stale.Version = 1
	if err := e.Swap(stale); err != nil {
		t.Fatal(err)
	}
	if e.snap.Load() != next {
		t.Fatal("stale delta swap replaced the snapshot")
	}
}

// TestDeltaSwapWithBase exercises the delta path on a range-hosting
// engine (cluster node): dirty IDs are global, rows are Base-relative.
func TestDeltaSwapWithBase(t *testing.T) {
	const ents, dim, shards = 60, 4, 3
	p, src, _, arcs := testSetup(9, ents, dim, 1, 4)
	src.Base = 40 // hosts global entities [40, 100)

	delta := NewEngine(p, Options{Shards: shards})
	full := NewEngine(p, Options{Shards: shards})
	if err := delta.Swap(src); err != nil {
		t.Fatal(err)
	}
	if err := full.Swap(src); err != nil {
		t.Fatal(err)
	}
	src2 := mutateSource(src, dim, []int32{41, 95}, 2, 17)
	if err := delta.Swap(src2); err != nil {
		t.Fatal(err)
	}
	fullSrc := src2
	fullSrc.Dirty = nil
	if err := full.Swap(fullSrc); err != nil {
		t.Fatal(err)
	}
	dr, err := delta.TopK(context.Background(), arcs, ents)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := full.TopK(context.Background(), arcs, ents)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dr.IDs {
		if dr.IDs[i] != fr.IDs[i] || dr.Dists[i] != fr.Dists[i] {
			t.Fatalf("rank %d: delta (%d, %v) != full (%d, %v)",
				i, dr.IDs[i], dr.Dists[i], fr.IDs[i], fr.Dists[i])
		}
	}
	if lo, hi := delta.EntityRange(); lo != 40 || hi != 100 {
		t.Fatalf("EntityRange = [%d, %d), want [40, 100)", lo, hi)
	}
}
