package shard

import (
	"context"
	"math"
)

// The blocked scan path trades the scalar loop's per-entity float64 trig
// walk for a two-level filter over a cache-blocked float32 copy of the
// entity table:
//
//  1. Block envelopes. Entities are grouped into fixed-size blocks and
//     each block stores, per dimension, a conservative bounding box of
//     its cos/sin values. Before scoring a block against an arc, a lower
//     bound on every member's arc distance is computed from the box
//     corners; when every arc's bound exceeds the current pruning bound
//     the whole block is skipped without touching entity data.
//  2. Lane filter. Surviving blocks run a structure-of-arrays float32
//     pass: the planes are laid out dimension-major within the block
//     (plane index (b*dim+j)*blockSize + t), so the inner loop walks
//     blockSize contiguous lanes with the arc's per-dimension scalars
//     hoisted into registers — a shape the compiler keeps vectorized.
//     Every lane accumulates a float32 lower bound on its distance
//     across all dimensions in one dense sweep.
//
// Lanes whose bound beats the pruning limit are rescored exactly by the
// scalar float64 scoreLocal — in ascending order of their bounds, so the
// strongest candidates tighten the limit before their block-mates are
// re-checked against it. Retained results are bit-identical to a full
// scalar scan: float32 rounding can only misclassify a lane as a
// survivor (wasted exact work), never drop one, because the filter
// comparisons carry Engine.slack — an upper bound on how far the float32
// accumulation can overshoot the true distance (see NewEngine).

// blockSize is the number of entity lanes per block: 64 lanes × 4
// bytes keeps one dimension's plane in four cache lines, and the
// power of two lets lane indices be masked instead of bounds-checked.
const blockSize = 64

// buildBlocked derives the blocked float32 planes and per-block
// envelopes from a shard's float64 trig tables. Lanes past the last
// entity are padded with angle 0; padding never reaches scoring (the
// active-lane sets stop at the real lane count) and never widens an
// envelope.
func buildBlocked(sd *shardData, dim int) {
	ents := sd.hi - sd.lo
	if ents == 0 {
		return
	}
	blocks := (ents + blockSize - 1) / blockSize
	sd.blocks = blocks
	sd.cos32 = make([]float32, blocks*dim*blockSize)
	sd.sin32 = make([]float32, blocks*dim*blockSize)
	sd.envCosMin = make([]float32, blocks*dim)
	sd.envCosMax = make([]float32, blocks*dim)
	sd.envSinMin = make([]float32, blocks*dim)
	sd.envSinMax = make([]float32, blocks*dim)
	for b := 0; b < blocks; b++ {
		for j := 0; j < dim; j++ {
			pb := (b*dim + j) * blockSize
			cMin, cMax := math.Inf(1), math.Inf(-1)
			sMin, sMax := math.Inf(1), math.Inf(-1)
			for t := 0; t < blockSize; t++ {
				c, s := 1.0, 0.0
				if li := b*blockSize + t; li < ents {
					c, s = sd.cos[li*dim+j], sd.sin[li*dim+j]
					cMin, cMax = min(cMin, c), max(cMax, c)
					sMin, sMax = min(sMin, s), max(sMax, s)
				}
				sd.cos32[pb+t] = float32(c)
				sd.sin32[pb+t] = float32(s)
			}
			e := b*dim + j
			sd.envCosMin[e] = roundDown32(cMin)
			sd.envCosMax[e] = roundUp32(cMax)
			sd.envSinMin[e] = roundDown32(sMin)
			sd.envSinMax[e] = roundUp32(sMax)
		}
	}
}

// roundDown32 converts v to float32 rounding toward -Inf, so the float32
// envelope bound never excludes the float64 value it summarises.
func roundDown32(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// roundUp32 is roundDown32 toward +Inf.
func roundUp32(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// kernArc is one arc's scoring tables rearranged for the lane filter's
// inner loop. The two boundary dot products and their max are folded
// into a half-sum/half-difference form,
//
//	max(cosΔS, cosΔE)/2 = cp·sumCos + sp·sumSin + |cp·difCos + sp·difSin|,
//
// with the /2 pre-applied to the tables (sum/dif carry a factor 1/4,
// the center tables a factor 1/2), so the loop needs no float max —
// Go's NaN-correct float min/max intrinsics cost several times a
// multiply and spill under register pressure. etaSh carries η·SH so
// the η-weighted inside bound is a single multiply-add.
type kernArc struct {
	sumCos, sinSum []float32 // (cosS±cosE)/4, (sinS±sinE)/4
	difCos, difSin []float32
	cosC2, sinC2   []float32 // cosC/2, sinC/2
	etaSh          []float32 // η·SH
}

func newKernArc(dim int, eta float64, a *Arc) kernArc {
	back := make([]float32, 7*dim)
	ka := kernArc{
		sumCos: back[0*dim : 1*dim], sinSum: back[1*dim : 2*dim],
		difCos: back[2*dim : 3*dim], difSin: back[3*dim : 4*dim],
		cosC2: back[4*dim : 5*dim], sinC2: back[5*dim : 6*dim],
		etaSh: back[6*dim : 7*dim],
	}
	for j := 0; j < dim; j++ {
		ka.sumCos[j] = float32((a.CosS[j] + a.CosE[j]) * 0.25)
		ka.sinSum[j] = float32((a.SinS[j] + a.SinE[j]) * 0.25)
		ka.difCos[j] = float32((a.CosS[j] - a.CosE[j]) * 0.25)
		ka.difSin[j] = float32((a.SinS[j] - a.SinE[j]) * 0.25)
		ka.cosC2[j] = float32(a.CosC[j] * 0.5)
		ka.sinC2[j] = float32(a.SinC[j] * 0.5)
		ka.etaSh[j] = float32(eta * a.SH[j])
	}
	return ka
}

// prepareKernel converts every batch item's arcs once, up front, so the
// per-block filter shares the tables across all shards and blocks.
func prepareKernel(dim int, eta float64, items []BatchItem) [][]kernArc {
	kern := make([][]kernArc, len(items))
	for qi := range items {
		arcs := items[qi].Arcs
		ks := make([]kernArc, len(arcs))
		for ai := range arcs {
			ks[ai] = newKernArc(dim, eta, &arcs[ai])
		}
		kern[qi] = ks
	}
	return kern
}

// scanCounters aggregates one scan's blocked-kernel effectiveness
// numbers, folded into the shard's stats when the scan completes.
type scanCounters struct {
	envSkips  uint64 // (block, query) pairs skipped whole by the envelope
	lanes     uint64 // lanes offered to the float32 filter
	survivors uint64 // lanes the filter passed to exact rescoring
}

// envMissLimit is how many consecutive envelope misses (per query)
// switch the envelope check off for the rest of the scan: on tables
// whose blocks have no angular locality the envelopes never fire, and
// checking them would tax every block for nothing.
const envMissLimit = 16

// scanBlocked is the blocked counterpart of scanRange. It runs in two
// phases:
//
//   - Sweep. Every query of the batch is swept through each block before
//     moving to the next, so a block's float32 planes are paid for once
//     per cache residency rather than once per query. The sweep stores
//     each lane's float32 distance lower bound; it never touches the
//     heap, because the dense filter needs no pruning bound — only the
//     envelope check consults the cross-shard bound, to skip blocks
//     wholesale.
//   - Rescore. Per query, the lanes are exact-rescored in ascending
//     order of their stored bounds across the whole shard. Globally
//     ascending order is what makes the filter sharp: the heap fills
//     with the shard's best lanes immediately, so the pruning bound
//     starts at the shard's true k-th best instead of converging toward
//     it block by block — rescoring a lane per block of warm-up that a
//     per-block rescore order would pay.
func (e *Engine) scanBlocked(ctx context.Context, sd *shardData, spec *batchSpec, heaps []*topK, gbounds []atomicBound, sc *scanCounters) error {
	ents := sd.hi - sd.lo
	if ents == 0 {
		return nil
	}
	// envMiss counts consecutive envelope misses per query; past
	// envMissLimit the check is disabled for the rest of the scan.
	envMiss := make([]uint8, len(spec.items))
	// lows[qi*ents+li] is query qi's float32 lower bound on lane li's
	// distance (before the 2ρ scale); NaN marks lanes the rescore must
	// never touch (envelope-skipped, or already exact-scored).
	lows := make([]float32, len(spec.items)*ents)
	idx := make([]int32, 0, ents)
	for b := 0; b < sd.blocks; b++ {
		// One check per (block × batch) keeps cancellation latency within
		// blockSize×len(items) entity scores — comparable to
		// ctxCheckStride for the batch sizes the serve layer admits.
		if err := ctx.Err(); err != nil {
			return err
		}
		base := b * blockSize
		lanes := min(ents-base, blockSize)
		for qi := range spec.items {
			e.sweepBlock(sd, spec, qi, b, lanes, lows[qi*ents+base:qi*ents+base+lanes], &gbounds[qi], &envMiss[qi], sc)
			if b == 0 && math.IsInf(gbounds[qi].load(), 1) {
				// No bound exists anywhere yet (no other shard has
				// published, no caller seed): exact-score block 0's k
				// filter-best lanes so the envelope checks from block 1 on
				// have a bound to prune against. The full heap's root is a
				// valid upper bound on the global k-th best — it upper-
				// bounds even this block's k-th best.
				e.bootScore(sd, spec.items[qi].Arcs, spec.items[qi].K, lows[qi*ents:qi*ents+lanes], idx, heaps[qi], &gbounds[qi], sc)
			}
		}
	}
	for qi := range spec.items {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.rescoreQuery(sd, spec.items[qi].Arcs, spec.items[qi].K, lows[qi*ents:(qi+1)*ents], idx, heaps[qi], &gbounds[qi], sc)
	}
	return nil
}

// bootScore exact-scores the k lanes with the smallest float32 bounds
// in lows — ascending, so the heap tightens fastest — marking scored
// lanes NaN so no later rescore can double-score them. The scoring loop
// breaks as soon as a lane's bound clears the re-read pruning limit, so
// against an already-tight bound the whole call costs one pass over
// lows and no exact scores. Bounded insertion keeps sel the k smallest,
// ascending; NaN bounds compare false everywhere, so both guards reject
// already-scored and envelope-skipped lanes.
func (e *Engine) bootScore(sd *shardData, arcs []Arc, k int, lows []float32, idx []int32, h *topK, gbound *atomicBound, sc *scanCounters) {
	if k > len(lows) {
		k = len(lows)
	}
	sel := idx[:0]
	for t := range lows {
		v := lows[t]
		if v != v {
			continue
		}
		if len(sel) == k {
			if !(v < lows[sel[k-1]]) {
				continue
			}
			sel = sel[:k-1]
		}
		j := len(sel) - 1
		sel = append(sel, 0)
		for ; j >= 0 && lows[sel[j]] > v; j-- {
			sel[j+1] = sel[j]
		}
		sel[j+1] = int32(t)
	}
	nan := float32(math.NaN())
	twoRho32 := e.twoRho32
	for _, t := range sel {
		thr := h.bound()
		if g := gbound.load(); g < thr {
			thr = g
		}
		// An infinite limit compares false against everything, so the
		// break never fires while the heap is still filling.
		if lows[t]*twoRho32 > float32(thr+e.slack) {
			break
		}
		sc.survivors++
		e.scoreLocal(sd, arcs, int(t), h, gbound)
		lows[t] = nan
	}
}

// sweepBlock runs the filter for block b of the shard against one query
// of the batch, writing each lane's float32 distance lower bound into
// dst (length lanes). Envelope-skipped blocks get NaN bounds, which no
// rescore comparison ever selects.
func (e *Engine) sweepBlock(sd *shardData, spec *batchSpec, qi, b, lanes int, dst []float32, gbound *atomicBound, envMiss *uint8, sc *scanCounters) {
	arcs := spec.items[qi].Arcs

	// Level 1: skip the block when every arc's envelope lower bound
	// clears the limit — no member can beat the current k-th best. Only
	// the cross-shard bound is consulted (the local heap is untouched
	// until the rescore phase); an infinite limit can never skip, so the
	// check isn't paid before some shard publishes a bound. On tables
	// with no angular locality inside blocks the envelopes never fire,
	// so after envMissLimit consecutive misses the check is retired for
	// the rest of this query's scan.
	if g := gbound.load(); *envMiss < envMissLimit && !math.IsInf(g, 1) {
		limit := g + e.slack
		skip := true
		for ai := range arcs {
			if e.arcEnvLB(sd, &arcs[ai], b, limit) <= limit {
				skip = false
				break
			}
		}
		if skip {
			*envMiss = 0
			sc.envSkips++
			nan := float32(math.NaN())
			for t := range dst {
				dst[t] = nan
			}
			return
		}
		*envMiss++
	}

	// Level 2: float32 lane filter. Every lane of the block accumulates
	// a lower bound on its arc distance across all dimensions in one
	// dense plane sweep — no active-set indirection, because on real
	// angle tables the partial bound only crosses the limit in the last
	// few dimensions, so mid-sweep compaction prunes nothing and its
	// gather/mask bookkeeping taxes every lane. The group penalty only
	// adds, so omitting it keeps the bound valid.
	// halfEps pads the outside term's sqrt argument so it can never go
	// negative from float32 rounding (the dots overshoot |cosΔ| ≤ 1 by
	// at most a few ulps); the resulting bound overshoot is at most
	// sqrt(halfEps - 0.5) ≈ 8e-4 per dimension, inside the 1.2e-3
	// per-dim budget Engine.slack reserves (see NewEngine).
	const halfEps = 0.5 + 6e-7
	kq := spec.kern[qi]
	dim := e.p.Dim
	var sums [blockSize]float32
	for ai := range kq {
		ka := &kq[ai]
		// The first arc accumulates straight into dst (fresh from make,
		// so already zero); later arcs accumulate into scratch and
		// min-merge, because the entity distance is the min over arcs.
		acc := dst[:lanes]
		if ai > 0 {
			sums = [blockSize]float32{}
			acc = sums[:lanes]
		}
		for j := 0; j < dim; j++ {
			pb := (b*dim + j) * blockSize
			cosP := sd.cos32[pb : pb+lanes : pb+blockSize]
			sinP := sd.sin32[pb : pb+lanes : pb+blockSize]
			aP, bP := ka.sumCos[j], ka.sinSum[j]
			aM, bM := ka.difCos[j], ka.difSin[j]
			aC, bC := ka.cosC2[j], ka.sinC2[j]
			es := ka.etaSh[j]
			for t, cp := range cosP {
				sp := sinP[t]
				// Outside term: max of the two boundary cosines via the
				// half-sum/half-difference identity (see kernArc), so the
				// loop carries no float max.
				x := halfEps - (cp*aP + sp*bP) - abs32(cp*aM+sp*bM)
				// Inside term: η·min(sqrt(y), SH) is bounded below by
				// y·(η·SH): y·SH ≤ y ≤ sqrt(y) and y·SH ≤ SH on [0, 1],
				// so the product undercuts the min — trading the second
				// sqrt and the clamps for a small η-weighted weakening.
				// y can go ~1e-7 negative from rounding, which only
				// weakens the bound, and it is not under the sqrt.
				y := 0.5 - (cp*aC + sp*bC)
				acc[t] += sqrt32(x) + y*es
			}
		}
		if ai > 0 {
			for t := 0; t < lanes; t++ {
				dst[t] = min(dst[t], sums[t])
			}
		}
	}
	sc.lanes += uint64(lanes)
}

// rescoreQuery exact-rescoring pass for one query over the whole shard:
// selects every lane whose stored float32 bound beats the pruning limit
// and rescores them ascending, so the heap tightens fastest and the
// first lane whose bound clears the re-read limit ends the scan.
func (e *Engine) rescoreQuery(sd *shardData, arcs []Arc, k int, lows []float32, idx []int32, h *topK, gbound *atomicBound, sc *scanCounters) {
	twoRho32 := e.twoRho32
	// Rescore the shard's k filter-best lanes first, whatever the bound:
	// the block-0 bootstrap only saw one block, so its threshold can sit
	// well above the shard's true k-th best, and selecting against a
	// loose threshold makes the sorted band below quadratically
	// expensive. bootScore's break makes this free once the bound is
	// already tight (a later shard warmed by gbound).
	e.bootScore(sd, arcs, k, lows, idx, h, gbound, sc)
	thr := h.bound()
	if g := gbound.load(); g < thr {
		thr = g
	}
	if math.IsInf(thr, 1) {
		// k covered every real lane of the shard; all are scored.
		return
	}

	// Select the survivors against the limit (NaN bounds always fail),
	// insertion-sort them ascending — the band above the k-th best is
	// narrow, so quadratic sorting beats sort.Slice's indirection — and
	// rescore until one clears the re-read limit.
	lim32 := float32(thr + e.slack)
	sel := idx[:0]
	for t := range lows {
		if lows[t]*twoRho32 <= lim32 {
			sel = append(sel, int32(t))
		}
	}
	for i := 1; i < len(sel); i++ {
		v := sel[i]
		lv := lows[v]
		j := i - 1
		for ; j >= 0 && lows[sel[j]] > lv; j-- {
			sel[j+1] = sel[j]
		}
		sel[j+1] = v
	}
	for _, t := range sel {
		thr = h.bound()
		if g := gbound.load(); g < thr {
			thr = g
		}
		if lows[t]*twoRho32 > float32(thr+e.slack) {
			break
		}
		sc.survivors++
		e.scoreLocal(sd, arcs, int(t), h, gbound)
	}
}

// arcEnvLB lower-bounds the arc distance of every entity in block b: a
// linear form a·cosθ + b·sinθ attains its extrema at a corner of the
// per-dimension (cos, sin) bounding box, so maximising it per dimension
// minimises the distance terms. The accumulation early-exits once the
// partial bound exceeds limit (terms are non-negative), which is the
// common case for skippable blocks.
func (e *Engine) arcEnvLB(sd *shardData, a *Arc, b int, limit float64) float64 {
	dim := e.p.Dim
	eb := b * dim
	cMin := sd.envCosMin[eb : eb+dim : eb+dim]
	cMax := sd.envCosMax[eb : eb+dim : eb+dim]
	sMin := sd.envSinMin[eb : eb+dim : eb+dim]
	sMax := sd.envSinMax[eb : eb+dim : eb+dim]
	cosS, sinS := a.CosS[:dim], a.SinS[:dim]
	cosE, sinE := a.CosE[:dim], a.SinE[:dim]
	cosC, sinC := a.CosC[:dim], a.SinC[:dim]
	sh := a.SH[:dim]
	twoRho := 2 * e.p.Rho
	eta := e.p.Eta
	acc := 0.0
	for j := 0; j < dim; j++ {
		clo, chi := float64(cMin[j]), float64(cMax[j])
		slo, shi := float64(sMin[j]), float64(sMax[j])
		cs := boxMax(cosS[j], sinS[j], clo, chi, slo, shi)
		ce := boxMax(cosE[j], sinE[j], clo, chi, slo, shi)
		cc := boxMax(cosC[j], sinC[j], clo, chi, slo, shi)
		do := halfSin(max(cs, ce))
		di := min(halfSin(cc), sh[j])
		acc += twoRho * (do + eta*di)
		if acc > limit {
			return acc
		}
	}
	return acc
}

// boxMax is max(a·c + b·s) over [clo, chi] × [slo, shi].
func boxMax(a, b, clo, chi, slo, shi float64) float64 {
	v := a * chi
	if a < 0 {
		v = a * clo
	}
	if b >= 0 {
		return v + b*shi
	}
	return v + b*slo
}

// sqrt32 compiles to a single-precision hardware square root.
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// abs32 clears the sign bit — branchless, NaN-free for the filter's
// finite inputs.
func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}
