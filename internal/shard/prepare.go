// Package shard implements the sharded entity-ranking engine: the
// entity table is partitioned into N contiguous ID ranges, each shard
// owning its own cos/sin trig tables (and, optionally, an ANN bucket
// index); a query scatters its prepared arc parameters to every shard in
// parallel, each shard produces a local top-K over an inline scoring
// loop with a bounded heap, and the shard heaps merge into the global
// top-K. Shards read versioned immutable snapshots published by Swap, so
// online embedding updates never block — or race with — in-flight scans.
//
// The scoring formula is HaLk's entity-to-arc distance (Eq. 15–16 plus
// the group penalty of Eq. 17) evaluated over cached unit vectors,
// term-for-term identical to the single-node fast path in internal/halk,
// so the sharded top-K matches the full-scan ranking exactly.
package shard

import "math"

// Params are the scoring constants shared by every shard: the embedding
// dimensionality and the distance weights of Eq. 15–17.
type Params struct {
	// Dim is the embedding dimensionality d.
	Dim int
	// Rho is the circle radius ρ.
	Rho float64
	// Eta down-weights the inside distance (Eq. 15).
	Eta float64
	// Xi weights the group penalty (Eq. 17); 0 disables it.
	Xi float64
}

// Arc is a query arc prepared for inline scoring: unit vectors of the
// start, end and center angles, the half-arc bound of the inside
// distance, and the group multi-hot vector. Prepared arcs are immutable
// and safe to share across shards.
type Arc struct {
	CosS, SinS []float64
	CosE, SinE []float64
	CosC, SinC []float64
	SH         []float64 // |sin(L/(4ρ))| — half-arc bound of d_i
	Hot        []float64
	C          []float64 // raw center angles, for ANN probing
	Radius     float64   // probe radius: half the widest arc angle plus slack
}

// minProbeRadius is the slack floor of the ANN probe radius; narrow arcs
// still probe a band of adjacent buckets so near-misses stay reachable.
const minProbeRadius = 0.3

// PrepareArc computes the trigonometric tables of one value-level arc
// (center angles C, arclengths L, group hot vector) for inline scoring.
func PrepareArc(p Params, c, l, hot []float64) Arc {
	d := p.Dim
	a := Arc{
		CosS: make([]float64, d), SinS: make([]float64, d),
		CosE: make([]float64, d), SinE: make([]float64, d),
		CosC: make([]float64, d), SinC: make([]float64, d),
		SH:     make([]float64, d),
		Hot:    hot,
		C:      append([]float64(nil), c...),
		Radius: minProbeRadius,
	}
	for j := 0; j < d; j++ {
		s := c[j] - l[j]/(2*p.Rho)
		e := c[j] + l[j]/(2*p.Rho)
		a.CosS[j], a.SinS[j] = math.Cos(s), math.Sin(s)
		a.CosE[j], a.SinE[j] = math.Cos(e), math.Sin(e)
		a.CosC[j], a.SinC[j] = math.Cos(c[j]), math.Sin(c[j])
		a.SH[j] = math.Abs(math.Sin(l[j] / (4 * p.Rho)))
		if half := l[j] / (4 * p.Rho); half > a.Radius {
			a.Radius = half
		}
	}
	return a
}

// halfSin returns |sin(Δ/2)| from cos Δ, clamped against rounding.
func halfSin(cosD float64) float64 {
	x := (1 - cosD) / 2
	if x < 0 {
		x = 0
	}
	return math.Sqrt(x)
}
