package shard

import (
	"math"
	"sort"
)

// topK is a bounded binary max-heap over (distance, entity ID) pairs: it
// retains the k smallest pairs under the lexicographic order (smaller
// distance wins; equal distances break toward the smaller ID — the same
// first-index-wins rule as the full-scan selection paths, so sharded
// rankings reproduce their ordering exactly). The root is the current
// worst retained pair, which doubles as the scan's pruning bound.
type topK struct {
	k  int
	d  []float64
	id []int32
}

func newTopK(k int) *topK {
	return &topK{k: k, d: make([]float64, 0, k), id: make([]int32, 0, k)}
}

// reset re-arms the heap for a new scan, reusing the slices when their
// capacity suffices (the per-shard scratch-buffer pool path).
func (h *topK) reset(k int) {
	h.k = k
	if cap(h.d) < k {
		h.d = make([]float64, 0, k)
		h.id = make([]int32, 0, k)
	} else {
		h.d = h.d[:0]
		h.id = h.id[:0]
	}
}

// worse reports whether element i orders after element j (larger
// distance, or equal distance and larger ID).
func (h *topK) worse(i, j int) bool {
	return h.d[i] > h.d[j] || (h.d[i] == h.d[j] && h.id[i] > h.id[j])
}

func (h *topK) swap(i, j int) {
	h.d[i], h.d[j] = h.d[j], h.d[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}

// full reports whether the heap holds k elements (its bound is live).
func (h *topK) full() bool { return len(h.d) == h.k }

// bound returns the distance an element must beat to enter the heap:
// the root's distance once full, +Inf while filling.
func (h *topK) bound() float64 {
	if !h.full() {
		return math.Inf(1)
	}
	return h.d[0]
}

// push offers (dist, id) to the heap and reports whether it was
// retained.
func (h *topK) push(dist float64, id int32) bool {
	if len(h.d) < h.k {
		h.d = append(h.d, dist)
		h.id = append(h.id, id)
		h.siftUp(len(h.d) - 1)
		return true
	}
	// Replace the root only if (dist, id) orders strictly before it.
	if dist > h.d[0] || (dist == h.d[0] && id >= h.id[0]) {
		return false
	}
	h.d[0], h.id[0] = dist, id
	h.siftDown(0)
	return true
}

func (h *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.d)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.worse(l, largest) {
			largest = l
		}
		if r < n && h.worse(r, largest) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

// sorted returns the retained pairs in ascending (distance, ID) order as
// freshly allocated slices, so the heap can be pooled immediately.
func (h *topK) sorted() (d []float64, id []int32) {
	n := len(h.d)
	d = append([]float64(nil), h.d...)
	id = append([]int32(nil), h.id...)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return d[idx[a]] < d[idx[b]] ||
			(d[idx[a]] == d[idx[b]] && id[idx[a]] < id[idx[b]])
	})
	ds := make([]float64, n)
	ids := make([]int32, n)
	for i, j := range idx {
		ds[i], ids[i] = d[j], id[j]
	}
	return ds, ids
}
