// Package geometry provides the closed-form arc mathematics underlying
// HaLk's arc embedding: angle wrapping, chord lengths, arc membership and
// the entity-to-arc distance of Eqs. 15–16. These value-level functions
// are shared by the model (for ranking all entities without a tape), the
// answer index and the tests; the differentiable counterparts live in the
// model's forward pass.
package geometry

import "math"

// TwoPi is 2π.
const TwoPi = 2 * math.Pi

// Wrap normalises an angle to [0, 2π).
func Wrap(theta float64) float64 {
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	return theta
}

// AngDiff returns the signed smallest difference a-b wrapped to (-π, π].
func AngDiff(a, b float64) float64 {
	d := math.Mod(a-b, TwoPi)
	if d > math.Pi {
		d -= TwoPi
	} else if d <= -math.Pi {
		d += TwoPi
	}
	return d
}

// Chord returns the chord length between two points at angles a and b on
// a circle of radius rho: 2ρ|sin((a−b)/2)|. The chord is periodicity-safe:
// it depends only on the true angular separation.
func Chord(rho, a, b float64) float64 {
	return 2 * rho * math.Abs(math.Sin((a-b)/2))
}

// HalfArcChord returns the chord subtended by half the arc of length l on
// a circle of radius rho: 2ρ|sin(l/(4ρ))|, the saturation bound of the
// inside distance in Eq. 16.
func HalfArcChord(rho, l float64) float64 {
	return 2 * rho * math.Abs(math.Sin(l/(4*rho)))
}

// InArc reports whether the point at angle theta lies on the arc with
// the given center angle and arclength l (radius rho), using the chord
// membership test of the distance function.
func InArc(rho, theta, center, l float64) bool {
	return Chord(rho, theta, center) <= HalfArcChord(rho, l)+1e-12
}

// PointArcDistance computes the entity-to-arc distance of Eqs. 15–16 for
// one dimension: d_o + eta*d_i where d_o is the chord to the nearest arc
// endpoint and d_i is the chord to the center saturated at the half-arc
// chord. Note that, exactly as in Eq. 16, d_o does not vanish for points
// on the arc: answers are pulled toward the nearest endpoint, which is
// what keeps arclengths tight around the answer set instead of inflating
// to the full circle (the cardinality semantics of the arc embedding).
func PointArcDistance(rho, eta, theta, center, l float64) float64 {
	start := center - l/(2*rho)
	end := center + l/(2*rho)
	do_ := math.Min(Chord(rho, theta, start), Chord(rho, theta, end))
	di := math.Min(Chord(rho, theta, center), HalfArcChord(rho, l))
	return do_ + eta*di
}

// Distance sums PointArcDistance over all dimensions for an entity angle
// vector and an arc (centers, lengths).
func Distance(rho, eta float64, point, centers, lengths []float64) float64 {
	d := 0.0
	for j := range point {
		d += PointArcDistance(rho, eta, point[j], centers[j], lengths[j])
	}
	return d
}

// Reg implements Eq. 6: it converts rectangular coordinates back to a
// polar angle in a single period. math.Atan2 already resolves the
// quadrant, so Reg reduces to wrapping into [0, 2π); x == 0 is nudged to
// avoid the undefined division of arctan(y/x) noted in the paper.
func Reg(x, y float64) float64 {
	if x == 0 {
		x = 1e-3
	}
	return Wrap(math.Atan2(y, x))
}
