package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWrapRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		w := Wrap(x)
		return w >= 0 && w < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Wrap(-math.Pi/2) != 3*math.Pi/2 {
		t.Errorf("Wrap(-π/2) = %g", Wrap(-math.Pi/2))
	}
}

func TestAngDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		d := AngDiff(a, b)
		if d <= -math.Pi || d > math.Pi {
			return false
		}
		// a-b and d must agree modulo 2π
		return math.Abs(math.Mod(a-b-d, TwoPi)) < 1e-6 ||
			math.Abs(math.Abs(math.Mod(a-b-d, TwoPi))-TwoPi) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChordPeriodicityAndSymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		c1 := Chord(1, a, b)
		// symmetric
		if math.Abs(c1-Chord(1, b, a)) > 1e-9 {
			return false
		}
		// periodic in either argument
		if math.Abs(c1-Chord(1, a+TwoPi, b)) > 1e-6 {
			return false
		}
		// bounded by diameter
		return c1 <= 2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// antipodal points are a diameter apart
	if math.Abs(Chord(2, 0, math.Pi)-4) > 1e-12 {
		t.Error("antipodal chord should equal diameter")
	}
}

func TestInArcMembership(t *testing.T) {
	rho := 1.0
	center := 1.0
	l := 1.0 // arc angle 1 radian, half-angle 0.5
	if !InArc(rho, center, center, l) {
		t.Error("center must be in arc")
	}
	if !InArc(rho, center+0.49, center, l) {
		t.Error("point inside half-angle must be in arc")
	}
	if InArc(rho, center+0.6, center, l) {
		t.Error("point outside half-angle must not be in arc")
	}
	// membership must survive wrapping
	if !InArc(rho, center+0.49+TwoPi, center, l) {
		t.Error("membership must be periodic")
	}
}

func TestPointArcDistanceEndpointsAreOptima(t *testing.T) {
	rho, eta := 1.0, 0.0
	center, l := 1.0, 1.0
	// Eq. 16: with eta = 0 the distance vanishes exactly at the arc
	// endpoints (d_o is the chord to the nearest endpoint, with no
	// inside special-case).
	for _, endpoint := range []float64{center - l/(2*rho), center + l/(2*rho)} {
		if d := PointArcDistance(rho, eta, endpoint, center, l); math.Abs(d) > 1e-12 {
			t.Errorf("distance at endpoint = %g, want 0", d)
		}
	}
	// The center of the arc is NOT a zero of d_o (only of d_i's argument).
	if PointArcDistance(rho, eta, center, center, l) <= 0 {
		t.Error("center should have positive endpoint distance for a non-degenerate arc")
	}
	// outside point has positive distance
	if PointArcDistance(rho, eta, 2.5, center, l) <= 0 {
		t.Error("outside point should have positive distance")
	}
}

func TestPointArcDistanceMonotoneOutside(t *testing.T) {
	rho, eta := 1.0, 0.02
	center, l := 0.0, 0.5
	prev := -1.0
	for _, off := range []float64{0.3, 0.6, 1.0, 1.5, 2.0, 3.0} {
		d := PointArcDistance(rho, eta, center+off, center, l)
		if d < prev {
			t.Errorf("distance not monotone: offset %g gave %g < %g", off, d, prev)
		}
		prev = d
	}
}

func TestDistanceSumsDimensions(t *testing.T) {
	p := []float64{0.1, 2.0}
	c := []float64{0.0, 0.0}
	l := []float64{1.0, 0.2}
	want := PointArcDistance(1, 0.5, p[0], c[0], l[0]) + PointArcDistance(1, 0.5, p[1], c[1], l[1])
	if got := Distance(1, 0.5, p, c, l); math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance = %g, want %g", got, want)
	}
}

func TestRegQuadrants(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{1, 0, 0},
		{0.5, 0.5, math.Pi / 4},
		{-0.5, 0.5, 3 * math.Pi / 4},
		{-0.5, -0.5, 5 * math.Pi / 4},
		{0.5, -0.5, 7 * math.Pi / 4},
	}
	for _, c := range cases {
		if got := Reg(c.x, c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Reg(%g, %g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
	// x == 0 must not blow up
	g := Reg(0, 1)
	if math.IsNaN(g) || g < 0 || g >= TwoPi {
		t.Errorf("Reg(0, 1) = %g", g)
	}
}

func TestHalfArcChordFullCircle(t *testing.T) {
	// An arc of length 2πρ covers the circle; half-arc chord = diameter.
	rho := 3.0
	if math.Abs(HalfArcChord(rho, TwoPi*rho)-2*rho) > 1e-9 {
		t.Errorf("HalfArcChord(full) = %g, want %g", HalfArcChord(rho, TwoPi*rho), 2*rho)
	}
}
