package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

// faultScanStage is the injector stage name the chaos tests arm for
// per-shard scan faults (wired through shard.Options.ScanErr).
const faultScanStage = "shard.scan"

func discardLog() *log.Logger { return log.New(io.Discard, "", 0) }

// newChaosServer builds a server over a 3-shard ranker with the
// injector wired into both the shard scan seam (shard.Options.ScanErr)
// and the serve seams (Config.Faults). Shard timeout is 50ms so "slow"
// faults (200ms) read as deadline misses.
func newChaosServer(t *testing.T, inj *resil.Injector, mutate func(*Config, *shard.Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := shard.Options{
		Shards:       3,
		ShardTimeout: 50 * time.Millisecond,
		ScanErr:      inj.ScanErrHook(faultScanStage),
		PanicLog:     discardLog(),
	}
	s, _, _, ts := newTestServer(t, func(cfg *Config) {
		cfg.Faults = inj
		cfg.PanicLog = discardLog()
		if mutate != nil {
			mutate(cfg, &opts)
		}
		r, err := cfg.Model.(*halk.Model).NewShardedRanker(opts)
		if err != nil {
			t.Fatalf("NewShardedRanker: %v", err)
		}
		cfg.Ranker = r
	})
	return s, ts
}

// postRaw posts the query and returns status, headers and decoded body
// without failing on non-200s (chaos tests assert on error statuses).
func postRaw(t *testing.T, ts *httptest.Server, req queryRequest) (int, http.Header, queryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer res.Body.Close()
	var qr queryResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return res.StatusCode, res.Header, qr
}

// checkHealthy asserts the server still answers: /v1/healthz is 200 and
// a clean query (faults cleared by the caller) returns a full result.
func checkHealthy(t *testing.T, ts *httptest.Server) {
	t.Helper()
	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz after fault: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz after fault = %d", res.StatusCode)
	}
	code, _, qr := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 99, K: 3})
	if code != http.StatusOK || qr.Partial {
		t.Fatalf("post-fault query = %d partial=%v; server did not recover", code, qr.Partial)
	}
}

// TestChaosMatrix drives the {panic, slow, error} × {one shard, all
// shards, cache layer} fault matrix and asserts the blast-radius
// contract: a fault in one shard degrades that response to a well-formed
// partial; a fault in every shard fails that request with a well-formed
// 504; a cache-layer fault costs at most that one request (500 on
// panic, a cache miss otherwise) — and in every cell the process
// survives and the next clean request is answered in full.
func TestChaosMatrix(t *testing.T) {
	faults := map[string]resil.Fault{
		"panic": {Kind: resil.KindPanic},
		"slow":  {Kind: resil.KindDelay, Delay: 200 * time.Millisecond},
		"error": {Kind: resil.KindError},
	}
	for kindName, fault := range faults {
		for _, scope := range []string{"one-shard", "all-shards", "cache"} {
			t.Run(kindName+"/"+scope, func(t *testing.T) {
				inj := resil.NewInjector()
				_, ts := newChaosServer(t, inj, nil)
				req := queryRequest{Structure: "1p", Seed: 9, K: 5}

				switch scope {
				case "one-shard":
					inj.Set(faultScanStage, 1, fault)
				case "all-shards":
					inj.Set(faultScanStage, resil.AnyShard, fault)
				case "cache":
					inj.Set(FaultStageCacheGet, 0, fault)
				}

				code, _, qr := postRaw(t, ts, req)
				switch scope {
				case "one-shard":
					if code != http.StatusOK {
						t.Fatalf("one faulted shard: status %d, want 200 partial", code)
					}
					if !qr.Partial || len(qr.ShardsAnswered) != 2 {
						t.Fatalf("one faulted shard: partial=%v shards_answered=%v, want partial with 2 shards",
							qr.Partial, qr.ShardsAnswered)
					}
					if len(qr.Answers) == 0 {
						t.Fatal("partial response carried no answers")
					}
				case "all-shards":
					if code != http.StatusGatewayTimeout {
						t.Fatalf("all shards faulted: status %d, want 504", code)
					}
				case "cache":
					switch kindName {
					case "panic":
						if code != http.StatusInternalServerError {
							t.Fatalf("cache panic: status %d, want 500", code)
						}
					default:
						// Slow and error cache faults degrade to a miss: the
						// request is still answered by ranking.
						if code != http.StatusOK || qr.Partial {
							t.Fatalf("cache %s fault: status %d partial=%v, want full 200", kindName, code, qr.Partial)
						}
					}
				}

				if fired := inj.Fired(faultScanStage) + inj.Fired(FaultStageCacheGet); fired == 0 {
					t.Fatal("fault never fired; the test asserted nothing")
				}
				inj.Clear()
				checkHealthy(t, ts)
			})
		}
	}
}

// TestWorkerPanicIsolated pins the worker-pool recovery path: a panic
// on the ranking worker answers that request with a 500, increments
// halk_panics_total{where="worker"}, and the pool worker survives to
// serve the next request.
func TestWorkerPanicIsolated(t *testing.T) {
	inj := resil.NewInjector()
	_, ts := newChaosServer(t, inj, func(cfg *Config, _ *shard.Options) {
		cfg.Workers = 1 // one worker: if the panic killed it, the retry would hang
	})
	inj.Set(FaultStageRank, 0, resil.Fault{Kind: resil.KindPanic, Count: 1})

	code, _, _ := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 9, K: 5})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicked ranking: status %d, want 500", code)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metricsText), `halk_panics_total{where="worker"} 1`) {
		t.Fatalf("worker panic not counted; /metrics:\n%s", metricsText)
	}
	checkHealthy(t, ts)
}

// TestBreakerOpensAndRecoversEndToEnd drives the circuit breaker
// through the full HTTP path: repeated shard faults open the breaker
// (responses degrade to partial without calling the shard), and once
// the fault clears a half-open probe closes it again.
func TestBreakerOpensAndRecoversEndToEnd(t *testing.T) {
	inj := resil.NewInjector()
	_, ts := newChaosServer(t, inj, func(_ *Config, opts *shard.Options) {
		opts.Breaker = &resil.BreakerConfig{
			ConsecutiveMisses: 2,
			OpenBase:          20 * time.Millisecond,
			OpenMax:           40 * time.Millisecond,
		}
	})
	inj.Set(faultScanStage, 0, resil.Fault{Kind: resil.KindError})

	// Two failing gathers trip shard 0's breaker. Distinct seeds defeat
	// the answer cache (partials are never cached anyway, but be explicit).
	for seed := int64(1); seed <= 2; seed++ {
		code, _, qr := postRaw(t, ts, queryRequest{Structure: "1p", Seed: seed, K: 5})
		if code != http.StatusOK || !qr.Partial {
			t.Fatalf("seed %d: status %d partial=%v, want 200 partial", seed, code, qr.Partial)
		}
	}
	st := getStats(t, ts)
	if st.Shards[0].Breaker == nil || st.Shards[0].Breaker.State != "open" {
		t.Fatalf("shard 0 breaker = %+v, want open", st.Shards[0].Breaker)
	}

	// Under the open breaker the shard is skipped without being called.
	fired := inj.Fired(faultScanStage)
	code, _, qr := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 3, K: 5})
	if code != http.StatusOK || !qr.Partial {
		t.Fatalf("open-breaker query = %d partial=%v", code, qr.Partial)
	}
	if got := inj.Fired(faultScanStage); got != fired {
		t.Fatalf("open breaker still called the shard (%d → %d fires)", fired, got)
	}

	// Heal the shard; the half-open probe closes the breaker and full
	// responses resume.
	inj.Clear()
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _, qr = postRaw(t, ts, queryRequest{Structure: "1p", Seed: 4, K: 5})
		if code != http.StatusOK {
			t.Fatalf("recovery query = %d", code)
		}
		if !qr.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; stats: %+v", getStats(t, ts).Shards[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := getStats(t, ts); st.Shards[0].Breaker.State != "closed" {
		t.Fatalf("breaker after recovery = %+v, want closed", st.Shards[0].Breaker)
	}
}

// TestOpenBreakerResponsesNeverCached is the regression test for the
// "partial is never cached" invariant extended to breaker-skipped
// results: answers computed while a breaker holds a shard out must not
// be served from the cache once the shard recovers.
func TestOpenBreakerResponsesNeverCached(t *testing.T) {
	inj := resil.NewInjector()
	_, ts := newChaosServer(t, inj, func(_ *Config, opts *shard.Options) {
		opts.Breaker = &resil.BreakerConfig{
			ConsecutiveMisses: 1, // trip on the first miss
			OpenBase:          30 * time.Millisecond,
			OpenMax:           60 * time.Millisecond,
		}
	})
	inj.Set(faultScanStage, 0, resil.Fault{Kind: resil.KindError})
	req := queryRequest{Structure: "1p", Seed: 9, K: 5}

	// Trip the breaker, then issue the same query twice under the open
	// breaker: the degraded answer must be recomputed, never cached.
	if _, _, qr := postRaw(t, ts, req); !qr.Partial {
		t.Fatalf("tripping query not partial: %+v", qr)
	}
	for i := 0; i < 2; i++ {
		code, _, qr := postRaw(t, ts, req)
		if code != http.StatusOK {
			t.Fatalf("open-breaker repeat %d: status %d", i, code)
		}
		if !qr.Partial {
			// The breaker may have probed and recovered between requests
			// only after the fault cleared; with the fault still armed a
			// probe fails, so the response stays partial.
			t.Fatalf("open-breaker repeat %d not partial: %+v", i, qr)
		}
		if qr.Cached {
			t.Fatalf("degraded answer served from cache on repeat %d", i)
		}
	}

	// After recovery the full answer is computed fresh (not the cached
	// degraded list) and only then becomes cacheable.
	inj.Clear()
	deadline := time.Now().Add(2 * time.Second)
	var qr queryResponse
	for {
		_, _, qr = postRaw(t, ts, req)
		if !qr.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if qr.Cached {
		t.Fatal("first full answer after recovery claimed to be cached — a degraded entry leaked into the cache")
	}
	if full, _ := postQuery(t, ts, req); !full.Cached {
		t.Fatal("full answer after recovery did not become cacheable")
	}
}

// TestAdmissionShedsWith429 pins the admission gate: with one worker
// busy on a slow ranking and an expected queue wait far beyond
// MaxQueueWait, the next request is shed immediately with 429 and a
// Retry-After hint instead of queueing toward its deadline.
func TestAdmissionShedsWith429(t *testing.T) {
	inj := resil.NewInjector()
	_, ts := newChaosServer(t, inj, func(cfg *Config, opts *shard.Options) {
		cfg.Workers = 1
		cfg.MaxQueueWait = time.Millisecond
		cfg.CacheSize = -1 // every request must actually rank
		opts.Shards = 1
		opts.ShardTimeout = 0 // the injected delay must not read as a deadline miss
	})
	// Every scan stalls 150ms: the first request primes the service-time
	// EWMA, the second occupies the only worker.
	inj.Set(faultScanStage, resil.AnyShard, resil.Fault{Kind: resil.KindDelay, Delay: 150 * time.Millisecond})

	if code, _, _ := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 1, K: 3}); code != http.StatusOK {
		t.Fatalf("priming request: status %d", code)
	}

	occupied := make(chan int, 1)
	go func() {
		code, _, _ := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 2, K: 3})
		occupied <- code
	}()
	time.Sleep(50 * time.Millisecond) // the worker is now mid-rank

	start := time.Now()
	code, hdr, _ := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 3, K: 3})
	shedLatency := time.Since(start)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if shedLatency > 50*time.Millisecond {
		t.Fatalf("shed took %v; admission must refuse up front, not queue", shedLatency)
	}
	if code := <-occupied; code != http.StatusOK {
		t.Fatalf("occupying request: status %d", code)
	}
	if st := getStats(t, ts); st.Admission == nil || st.Admission.Shed == 0 {
		t.Fatalf("admission stats = %+v, want shed > 0", st.Admission)
	}
}

// TestServerCloseDrainsHedgedScans is the graceful-drain regression
// test: a hedged gather returns to the client while the stalled primary
// scan is still running; Server.Close must wait for that goroutine (via
// the ranker's Close) instead of leaking it.
func TestServerCloseDrainsHedgedScans(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := resil.NewInjector()
	inj.Set(faultScanStage, 0, resil.Fault{Kind: resil.KindDelay, Delay: 400 * time.Millisecond, Count: 1})

	m, ds := testHalkModel(61)
	r, err := m.NewShardedRanker(shard.Options{
		Shards:     2,
		HedgeDelay: time.Millisecond,
		ScanErr:    inj.ScanErrHook(faultScanStage),
		PanicLog:   discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Ranker:    r,
		PanicLog:  discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	qStart := time.Now()
	code, _, qr := postRaw(t, ts, queryRequest{Structure: "1p", Seed: 9, K: 5})
	if code != http.StatusOK || qr.Partial {
		t.Fatalf("hedged query = %d partial=%v", code, qr.Partial)
	}
	responded := time.Since(qStart)

	ts.Close()
	closeStart := time.Now()
	s.Close()
	waited := time.Since(closeStart)

	// The hedge answered the request long before the stalled primary's
	// 400ms sleep finished, so a Close that truly awaits the straggler
	// must block for the remainder.
	if remaining := 400*time.Millisecond - responded; waited < remaining-100*time.Millisecond {
		t.Fatalf("Close returned after %v with a scan goroutine still sleeping (~%v left) — drain does not await hedges",
			waited, remaining)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoverHandlerCommittedResponse pins the panic-recovery write
// discipline: a handler that panics after committing status or body
// must not get a superfluous WriteHeader and error JSON appended to the
// response the client already started reading; a handler that panics on
// a pristine response still gets the clean 500.
func TestRecoverHandlerCommittedResponse(t *testing.T) {
	s, _, _, _ := newTestServer(t, func(cfg *Config) { cfg.PanicLog = discardLog() })

	h := s.recoverHandler("/test", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte(`{"answers":[`)); err != nil {
			t.Errorf("Write: %v", err)
		}
		panic("fault injected mid-encode")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("committed status rewritten to %d", rec.Code)
	}
	if got := rec.Body.String(); got != `{"answers":[` {
		t.Fatalf("garbage appended to committed response: %q", got)
	}

	h = s.recoverHandler("/test", func(w http.ResponseWriter, r *http.Request) {
		panic("fault injected before any write")
	})
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("pristine panic answered %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Fatalf("500 without the error body: %q", rec.Body.String())
	}
}

// TestAdmissionColdStartSheds pins the gate's cold-start behaviour:
// before any ranking has seeded the service-time EWMA, the gate must
// fall back to a conservative estimate and still shed a deep queue —
// not admit without bound because the predicted wait is 0.
func TestAdmissionColdStartSheds(t *testing.T) {
	g := newAdmission(2, 10*time.Millisecond, obs.NewRegistry())
	var releases []func(float64)
	for i := 0; i < 3; i++ {
		rel, _, ok := g.admit(context.Background())
		if !ok {
			// The third admit holds the first queue slot; with the
			// cold-start estimate even one queued request may shed under
			// a 10ms budget — both outcomes before the probe are fine.
			break
		}
		releases = append(releases, rel)
	}
	if _, retry, ok := g.admit(context.Background()); ok {
		t.Fatal("cold gate admitted into a saturated queue (predicted wait 0)")
	} else if retry <= 0 {
		t.Fatalf("shed without a Retry-After hint: %v", retry)
	}
	for _, rel := range releases {
		rel(0)
	}
}
