package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

func testHalkModel(seed int64) (*halk.Model, *kg.Dataset) {
	ds := kg.SynthFB237(seed)
	cfg := halk.DefaultConfig(seed)
	cfg.Dim, cfg.Hidden, cfg.NumGroups = 8, 16, 4
	return halk.New(ds.Train, cfg), ds
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *halk.Model, *kg.Dataset, *httptest.Server) {
	t.Helper()
	m, ds := testHalkModel(61)
	cfg := Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, m, ds, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (queryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer res.Body.Close()
	var qr queryResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return qr, res.StatusCode
}

func getStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	res, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer res.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(res.Body).Decode(&sr); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return sr
}

// dslFor renders a 1p query over the given entity/relation IDs in the
// prefix DSL using the dataset's names.
func dslFor(ds *kg.Dataset, r kg.RelationID, e kg.EntityID) string {
	return fmt.Sprintf("p[%s](%s)", ds.Train.Relations.Name(int32(r)), ds.Train.Entities.Name(int32(e)))
}

// sampleQuery draws a test-split query of the given structure.
func sampleQuery(t *testing.T, ds *kg.Dataset, structure string, seed int64) *query.Node {
	t.Helper()
	s := query.NewSampler(ds.Test, rand.New(rand.NewSource(seed)))
	q, ok := s.Sample(structure)
	if !ok {
		t.Fatalf("sampling %s failed", structure)
	}
	return q
}

func TestServedAnswersMatchModelTopK(t *testing.T) {
	_, m, ds, ts := newTestServer(t, nil)
	// Structure sampling is seeded, so the server draws exactly the
	// query we sample locally.
	root := sampleQuery(t, ds, "2i", 7)

	qr, code := postQuery(t, ts, queryRequest{Structure: "2i", Seed: 7, K: 15})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Query != root.String() {
		t.Fatalf("server sampled %s, local sampler drew %s", qr.Query, root)
	}
	want := m.TopK(root, 15)
	if len(qr.Answers) != len(want) {
		t.Fatalf("got %d answers, want %d", len(qr.Answers), len(want))
	}
	for i, a := range qr.Answers {
		if a.ID != want[i] {
			t.Errorf("answer %d: id %d, want %d", i, a.ID, want[i])
		}
		if a.Entity != ds.Train.Entities.Name(int32(want[i])) {
			t.Errorf("answer %d: entity %q mismatched", i, a.Entity)
		}
		if a.Distance == nil {
			t.Errorf("answer %d: missing distance in exact mode", i)
		}
	}
	if qr.Cached {
		t.Error("first request reported cached=true")
	}
}

func TestRepeatQueryIsCacheHit(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)
	req := queryRequest{Query: dslFor(ds, 3, 12), K: 5}

	first, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	second, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	if len(second.Answers) != len(first.Answers) {
		t.Fatal("cached answers differ in length")
	}
	for i := range first.Answers {
		if second.Answers[i].ID != first.Answers[i].ID {
			t.Fatalf("cached answer %d differs", i)
		}
	}

	stats := getStats(t, ts)
	if stats.Cache.Hits < 1 {
		t.Errorf("stats report %d cache hits, want >= 1", stats.Cache.Hits)
	}
	if stats.Cache.Misses < 1 {
		t.Errorf("stats report %d cache misses, want >= 1", stats.Cache.Misses)
	}
	if stats.Endpoints["/v1/query"].Requests < 2 {
		t.Errorf("stats report %d /v1/query requests, want >= 2", stats.Endpoints["/v1/query"].Requests)
	}
}

func TestEquivalentPhrasingsShareCacheEntry(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)
	a := dslFor(ds, 2, 9)
	b := dslFor(ds, 5, 31)

	first, code := postQuery(t, ts, queryRequest{Query: fmt.Sprintf("i(%s, %s)", a, b), K: 5})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	swapped, code := postQuery(t, ts, queryRequest{Query: fmt.Sprintf("i(%s, %s)", b, a), K: 5})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !swapped.Cached {
		t.Error("i(b, a) missed the cache entry created by i(a, b)")
	}
	if first.Canonical != swapped.Canonical {
		t.Errorf("canonical keys differ: %s vs %s", first.Canonical, swapped.Canonical)
	}
}

func TestSPARQLAndStructureModes(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)

	// SPARQL through the shared per-server adaptor. Entity/relation
	// names are e0007-style in the synthetic datasets.
	rel := ds.Train.Relations.Name(0)
	ent := ds.Train.Entities.Name(7)
	sparqlSrc := fmt.Sprintf("SELECT ?x WHERE { :%s :%s ?x }", ent, rel)
	if qr, code := postQuery(t, ts, queryRequest{SPARQL: sparqlSrc, K: 3}); code != http.StatusOK {
		t.Fatalf("sparql mode: status %d", code)
	} else if len(qr.Answers) != 3 {
		t.Fatalf("sparql mode: %d answers", len(qr.Answers))
	}

	if qr, code := postQuery(t, ts, queryRequest{Structure: "2p", Seed: 11, K: 4}); code != http.StatusOK {
		t.Fatalf("structure mode: status %d", code)
	} else if qr.Structure != "2p" || len(qr.Answers) != 4 {
		t.Fatalf("structure mode: structure=%q answers=%d", qr.Structure, len(qr.Answers))
	}
}

func TestRequestValidation(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)
	cases := []queryRequest{
		{},                                     // no input form
		{Query: "p[r?](nope)"},                 // unparseable DSL
		{Query: dslFor(ds, 0, 1), SPARQL: "x"}, // two forms
		{Structure: "no-such-structure"},
		{Query: dslFor(ds, 0, 1), Mode: "fuzzy"},
		{Query: dslFor(ds, 0, 1), Mode: "approx"}, // approx not enabled
	}
	for i, req := range cases {
		if _, code := postQuery(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
}

func TestApproxMode(t *testing.T) {
	m, ds := testHalkModel(61)
	ix := m.NewAnswerIndex(ann.DefaultConfig(3))
	s2, err := New(Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Approx:    ix,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	root := query.NewProjection(1, query.NewAnchor(9))
	body, _ := json.Marshal(queryRequest{Query: dslFor(ds, 1, 9), Mode: "approx", K: 8})
	res, err := http.Post(ts2.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var qr queryResponse
	if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Mode != "approx" {
		t.Fatalf("mode %q", qr.Mode)
	}
	want := ix.TopKApprox(root, 8)
	if len(qr.Answers) != len(want) {
		t.Fatalf("%d answers, want %d", len(qr.Answers), len(want))
	}
	for i := range want {
		if qr.Answers[i].ID != want[i] {
			t.Errorf("answer %d: %d, want %d", i, qr.Answers[i].ID, want[i])
		}
		if qr.Answers[i].Distance != nil {
			t.Errorf("answer %d: approx mode must omit distance", i)
		}
	}

	// Candidate-pool sizes must surface in stats.
	res2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(res2.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.ApproxOn || sr.Pool.Queries < 1 || sr.Pool.Mean <= 0 {
		t.Errorf("stats pool = %+v approx=%v, want >=1 query with positive mean", sr.Pool, sr.ApproxOn)
	}
}

func TestHealthz(t *testing.T) {
	_, m, _, ts := newTestServer(t, nil)
	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["model"] != m.Name() {
		t.Fatalf("healthz = %v", h)
	}
}

// slowModel wedges Distances until its context dies, to exercise the
// per-request deadline path.
type slowModel struct{}

func (slowModel) Name() string             { return "slow" }
func (slowModel) Params() *autodiff.Params { return autodiff.NewParams() }
func (slowModel) Supports(string) bool     { return true }
func (slowModel) Loss(*autodiff.Tape, *query.Query, int, *rand.Rand) (autodiff.V, bool) {
	return autodiff.V{}, false
}
func (slowModel) Distances(*query.Node) []float64 { return make([]float64, 4) }
func (slowModel) DistancesContext(ctx context.Context, _ *query.Node) ([]float64, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestRequestTimeout(t *testing.T) {
	_, _, ds, ts := newTestServer(t, func(c *Config) {
		c.Model = slowModel{}
	})
	_, code := postQuery(t, ts, queryRequest{Query: dslFor(ds, 0, 1), TimeoutMS: 30})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
}

// TestConcurrentServingDuringEntityUpdate is the acceptance scenario:
// many requests in flight on the pool while the entity table is being
// patched through the thread-safe update entry point. Run with -race.
func TestConcurrentServingDuringEntityUpdate(t *testing.T) {
	srv, m, ds, ts := newTestServer(t, func(c *Config) { c.Workers = 4 })

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := queryRequest{Structure: "2i", Seed: int64(100 + w*6 + i), K: 5}
				if _, code := postQuery(t, ts, req); code != http.StatusOK {
					t.Errorf("worker %d: status %d", w, code)
					return
				}
			}
		}(w)
	}

	angles := make([]float64, 8)
	for i := 0; i < 40; i++ {
		for j := range angles {
			angles[j] += 0.05
		}
		if err := m.SetEntityAngles(kg.EntityID(i%ds.Train.NumEntities()), angles); err != nil {
			t.Errorf("SetEntityAngles: %v", err)
			break
		}
		srv.FlushCache()
	}
	wg.Wait()

	stats := getStats(t, ts)
	if stats.Endpoints["/v1/query"].Requests < 24 {
		t.Errorf("stats saw %d query requests, want >= 24", stats.Endpoints["/v1/query"].Requests)
	}
}

func TestCloseDrainsAndRefuses(t *testing.T) {
	m, ds := testHalkModel(67)
	s, err := New(Config{Model: m, Entities: ds.Train.Entities, Relations: ds.Train.Relations})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	err = s.pool.Do(context.Background(), func() {})
	if err != errPoolClosed {
		t.Fatalf("Do after Close: %v, want errPoolClosed", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Query: dslFor(ds, 0, 1)})
	res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", res.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	m, ds := testHalkModel(68)
	if _, err := New(Config{Model: m}); err == nil {
		t.Error("missing dictionaries accepted")
	}
	s, err := New(Config{Model: m, Entities: ds.Train.Entities, Relations: ds.Train.Relations})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.workers < 1 {
		t.Error("workers not defaulted")
	}
	// Structure mode without a graph must 400, not panic.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Structure: "1p"})
	res, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("structure without graph: status %d, want 400", res.StatusCode)
	}
}

func TestStatsLatencyQuantilesPopulated(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)
	for i := 0; i < 5; i++ {
		postQuery(t, ts, queryRequest{Query: dslFor(ds, 1, kg.EntityID(i)), K: 3})
	}
	stats := getStats(t, ts)
	q := stats.Endpoints["/v1/query"]
	if q.Requests != 5 {
		t.Fatalf("requests = %d", q.Requests)
	}
	if q.LatencyMs.P50 <= 0 || q.LatencyMs.P99 < q.LatencyMs.P50 {
		t.Errorf("latency quantiles implausible: %+v", q.LatencyMs)
	}
	if time.Duration(stats.UptimeS*float64(time.Second)) <= 0 {
		t.Error("uptime not reported")
	}
}
