// Package serve implements the online query-serving subsystem: a
// long-lived Server that owns a trained embedding model and answers
// logical queries over HTTP/JSON. This is the paper's online
// answer-identification phase (Sec. III-H) run as a service — the
// checkpoint is loaded once, the entity trig tables stay warm, and each
// request costs one query embedding plus one (exact or ANN-pruned)
// entity ranking.
//
// The Server composes:
//
//   - a bounded worker pool sized to GOMAXPROCS, so concurrent requests
//     share the fastDistances hot loop without unbounded goroutines;
//   - an LRU answer cache keyed by query.CanonicalKey, so logically
//     equivalent phrasings (i(a,b) vs i(b,a)) share one entry;
//   - optional ANN-backed approximate answering selected per request;
//   - per-endpoint request counters and latency quantiles at /v1/stats;
//   - per-request deadlines through context.Context.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
	"github.com/halk-kg/halk/internal/sparql"
)

// ContextRanker is the optional upgrade a model can implement to support
// per-request deadlines: ranking aborts with the context error instead
// of completing the scan. halk.Model implements it; models that don't
// are served through plain Distances (the deadline then only bounds
// queue wait, not the scan itself).
type ContextRanker interface {
	DistancesContext(ctx context.Context, n *query.Node) ([]float64, error)
}

// Ranker is the scatter-gather ranking interface of the sharded exact
// path; halk.ShardedRanker implements it. When Config.Ranker is set,
// "exact" requests rank through it instead of the single-threaded full
// scan: each shard scans concurrently under its own deadline, and a
// missed shard degrades the response to a partial result instead of
// failing the request.
type Ranker interface {
	// RankTopK ranks the k best answers; Result carries exact distances,
	// the snapshot version answered from, and partial-result metadata.
	RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error)
	// SnapshotVersion is the entity version of the published snapshot;
	// the answer cache namespaces its keys by it.
	SnapshotVersion() uint64
	// NumShards reports the engine's shard count (exported at /v1/stats).
	NumShards() int
	// ShardStats reports per-shard scan counters (exported at /v1/stats).
	ShardStats() []shard.ShardStats
}

// EntityVersioner is the optional model upgrade that lets the answer
// cache key entries by entity-table version, so an embedding update
// (e.g. halk.Model.SetEntityAngles) implicitly invalidates every cached
// answer computed from the old table. halk.Model implements it; for
// models that don't, the cache falls back to version 0 and FlushCache
// remains the only invalidation.
type EntityVersioner interface {
	EntityVersion() uint64
}

// ApproxAnswerer is the ANN-backed answering interface of the "approx"
// request mode; halk.AnswerIndex implements it.
type ApproxAnswerer interface {
	// TopKApprox returns up to k likely answers from the index's
	// candidate pool.
	TopKApprox(n *query.Node, k int) []kg.EntityID
	// PoolSize reports the candidate-pool size for the query (the work
	// saved versus an exact full ranking; exported at /v1/stats).
	PoolSize(n *query.Node) int
}

// Config assembles a Server.
type Config struct {
	// Model answers queries through model.Interface.Distances (and
	// DistancesContext when implemented). Required.
	Model model.Interface
	// Entities and Relations resolve names in SPARQL / DSL requests and
	// label answers. Required.
	Entities  *kg.Dict
	Relations *kg.Dict
	// Graph, when set, enables the "structure" request mode: a query of
	// the named benchmark structure is sampled from this graph
	// (typically the test split).
	Graph *kg.Graph
	// Approx, when set, enables the "approx" request mode.
	Approx ApproxAnswerer
	// Ranker, when set, serves "exact" requests through the sharded
	// scatter-gather engine instead of Model.Distances. Results are
	// identical to the full scan on the same snapshot; responses may be
	// marked partial when shards miss their deadline.
	Ranker Ranker
	// Workers bounds ranking concurrency; 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the LRU answer-cache capacity in entries; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// DefaultK is the answer count when a request omits k; 0 means 10.
	DefaultK int
	// MaxK caps per-request k; 0 means 1000.
	MaxK int
	// DefaultTimeout bounds a request that names no timeout_ms; 0 means
	// 10s.
	DefaultTimeout time.Duration
	// Metrics is the obs registry all serving counters register on,
	// exposed in Prometheus text format at /metrics. Pass the process
	// registry to aggregate with other subsystems (the shard engine's
	// per-shard counters, training metrics); nil means a private one.
	Metrics *obs.Registry
	// SlowQuery is the slow-query log threshold: any /v1/query slower
	// than this logs its canonical form and per-stage trace through
	// SlowLog. 0 disables the slow-query log.
	SlowQuery time.Duration
	// SlowLog receives slow-query lines; nil means log.Default().
	SlowLog *log.Logger
	// MaxQueueWait enables admission control: a request whose expected
	// worker-queue wait exceeds min(MaxQueueWait, its own remaining
	// deadline) is shed up front with 429 and a Retry-After hint instead
	// of queueing toward a timeout. 0 disables the gate.
	MaxQueueWait time.Duration
	// Faults is the fault-injection harness: when non-nil, the serving
	// pipeline fires it at the cache and ranking seams (see the
	// FaultStage* constants) so chaos tests can inject panics, stalls and
	// errors. Nil — the production configuration — is inert.
	Faults *resil.Injector
	// PanicLog receives the stack traces of recovered panics (worker
	// pool and HTTP handlers); nil means log.Default().
	PanicLog *log.Logger
	// Ckpt, when set, surfaces checkpoint freshness in /v1/stats (path,
	// training step, load time, reload and reload-failure counters).
	// halk-serve shares one ckpt.Status between this server and its
	// -ckpt-watch reload loop, and registers its gauges on Metrics.
	Ckpt *ckpt.Status
	// Edges, when set, enables POST /v1/edges: accepted batches are
	// durably logged by the sink (an ingest.Ingester) and folded into the
	// model asynchronously. Nil answers the endpoint with 503.
	Edges EdgeSink
	// MaxBodyBytes caps every mutating request body (/v1/query,
	// /v1/edges); an oversized body is refused with 413. 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the query count of one POST /v1/batch request; an
	// oversized batch is refused with 400. 0 means DefaultMaxBatch.
	MaxBatch int
}

// DefaultCacheSize is the answer-cache capacity when Config leaves
// CacheSize zero.
const DefaultCacheSize = 1024

// DefaultMaxBatch is the /v1/batch query-count cap when Config leaves
// MaxBatch zero: large enough for bulk evaluation sweeps, small enough
// that one request cannot monopolise a worker for unbounded time.
const DefaultMaxBatch = 256

// Server is a long-lived query-answering service over one trained model.
// All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	adaptor *sparql.Adaptor // shared across requests; it is stateless
	pool    *workerPool
	cache   *answerCache
	metrics *metrics
	gate    *admission // nil when MaxQueueWait is 0
	workers int
	mux     *http.ServeMux

	// approx is the live ANN answerer (seeded from Config.Approx); it is
	// swapped by SetApprox after a checkpoint hot-reload, since an ANN
	// index snapshots the embeddings at build time and must be rebuilt
	// over the new table.
	approxMu sync.RWMutex
	approx   ApproxAnswerer
}

// New validates cfg and assembles the server with its worker pool,
// cache, metrics and routes.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("serve: Config.Model is required")
	}
	if cfg.Entities == nil || cfg.Relations == nil {
		return nil, fmt.Errorf("serve: Config.Entities and Config.Relations are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = DefaultCacheSize
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.SlowLog == nil {
		cfg.SlowLog = log.Default()
	}
	if cfg.PanicLog == nil {
		cfg.PanicLog = log.Default()
	}
	obs.RegisterProcessMetrics(cfg.Metrics)
	cfg.Metrics.Gauge("halk_workers", "Ranking worker pool size.").Set(float64(cfg.Workers))
	cfg.Metrics.Gauge("halk_entities", "Entities in the served model.").Set(float64(cfg.Entities.Len()))

	s := &Server{
		cfg:     cfg,
		adaptor: &sparql.Adaptor{Entities: cfg.Entities, Relations: cfg.Relations},
		pool:    newWorkerPool(cfg.Workers),
		cache:   newAnswerCache(cfg.CacheSize, cfg.Metrics),
		metrics: newMetrics(cfg.Metrics),
		workers: cfg.Workers,
		mux:     http.NewServeMux(),
		approx:  cfg.Approx,
	}
	if cfg.MaxQueueWait > 0 {
		s.gate = newAdmission(cfg.Workers, cfg.MaxQueueWait, cfg.Metrics)
	}
	s.mux.HandleFunc("/v1/query", s.recoverHandler("/v1/query", s.handleQuery))
	s.mux.HandleFunc("/v1/batch", s.recoverHandler("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("/v1/edges", s.recoverHandler("/v1/edges", s.handleEdges))
	s.mux.HandleFunc("/v1/healthz", s.recoverHandler("/v1/healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.recoverHandler("/v1/stats", s.handleStats))
	s.mux.HandleFunc("/v1/topology/join", s.recoverHandler("/v1/topology/join", s.handleTopologyJoin))
	s.mux.HandleFunc("/v1/topology/leave", s.recoverHandler("/v1/topology/leave", s.handleTopologyLeave))
	s.mux.Handle("/metrics", cfg.Metrics.Handler())
	return s, nil
}

// committedWriter wraps a ResponseWriter and records whether the
// handler has committed any part of the response (status or body), so
// the panic recovery knows whether a 500 can still be written cleanly.
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

func (w *committedWriter) WriteHeader(code int) {
	w.committed = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *committedWriter) Write(b []byte) (int, error) {
	w.committed = true
	return w.ResponseWriter.Write(b)
}

// Recover is the serve stack's outermost defence line, exported so the
// other HTTP frontends (the cluster scan nodes) mount the identical
// policy: a panic escaping a handler is recovered, counted on panics
// (nil skips the count), stack-logged on plog (nil means the process
// default), and answered with a 500 instead of crashing the
// connection's goroutine (which would kill the process). The 500 body
// is written only while the response is still pristine: a handler that
// panicked after committing status or body would otherwise get a
// superfluous WriteHeader plus error JSON appended to a partial
// response the client already started reading.
func Recover(name string, panics *obs.Counter, plog *log.Logger, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cw := &committedWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				if panics != nil {
					panics.Inc()
				}
				logger := plog
				if logger == nil {
					logger = log.Default()
				}
				logger.Printf("serve: recovered panic in %s handler: %v\n%s", name, v, debug.Stack())
				if !cw.committed {
					WriteJSON(cw, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
				}
			}
		}()
		h(cw, r)
	}
}

// recoverHandler wires Recover with the server's panic counter and log.
func (s *Server) recoverHandler(name string, h http.HandlerFunc) http.HandlerFunc {
	return Recover(name, s.metrics.handlerPanics, s.cfg.PanicLog, h)
}

// Metrics returns the registry the server's counters live on — the one
// passed in Config.Metrics, or the private default. Useful for mounting
// the same registry elsewhere (a debug listener) or reading counters in
// tests.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Handler returns the HTTP handler exposing /v1/query, /v1/healthz and
// /v1/stats; mount it on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers reports the resolved ranking-pool size.
func (s *Server) Workers() int { return s.workers }

// SetApprox atomically replaces the ANN answerer behind "mode":
// "approx" (nil disables the mode). halk-serve calls it after a
// checkpoint hot-reload, once an index over the new embeddings is
// rebuilt; requests racing the swap answer from whichever index they
// observed, both of which were fully built.
func (s *Server) SetApprox(a ApproxAnswerer) {
	s.approxMu.Lock()
	s.approx = a
	s.approxMu.Unlock()
}

// approxAnswerer returns the live ANN answerer, or nil.
func (s *Server) approxAnswerer() ApproxAnswerer {
	s.approxMu.RLock()
	defer s.approxMu.RUnlock()
	return s.approx
}

// FlushCache drops every cached answer list. For models implementing
// EntityVersioner (halk.Model does), embedding updates already make old
// entries unreachable — cache keys are namespaced by entity version —
// so this is only needed to reclaim memory or for models without
// versioning.
func (s *Server) FlushCache() { s.cache.Flush() }

// Close drains the worker pool — in-flight rankings finish, queued and
// future requests are refused with 503 — then drains the ranker's scan
// goroutines (hedged and scatter scans that outlived their gather), so
// a closed server leaks nothing. Shut the http.Server down first so no
// new requests are accepted while the pool drains.
func (s *Server) Close() {
	s.pool.Close()
	if c, ok := s.cfg.Ranker.(interface{ Close() }); ok {
		c.Close()
	}
}
