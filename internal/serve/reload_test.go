package serve

import (
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/shard"
)

// TestCheckpointHotReloadEndToEnd drives the full -ckpt-watch sequence
// halk-serve runs, against a live server: a newer checkpoint is
// verified, swapped under the ranking lock, the sharded snapshot
// refreshed and the freshness status updated — old cached answers
// become unreachable. A corrupt candidate afterwards is rejected: the
// failure counter increments and the server keeps answering from the
// snapshot it already had.
func TestCheckpointHotReloadEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	status := ckpt.NewStatus()

	s, m, ds, ts := newTestServer(t, func(c *Config) {
		c.Metrics = reg
		c.Ckpt = status
	})
	ranker, err := m.NewShardedRanker(shard.Options{Shards: 2})
	if err != nil {
		t.Fatalf("NewShardedRanker: %v", err)
	}
	_ = s // routes already mounted; the ranker here stands in for halk-serve's wiring
	// SetLoaded before Register, as halk-serve does: the loaded_info
	// identity labels are captured at registration time.
	status.SetLoaded("initial.ckpt", "FB237", 61, 100, m.EntityVersion())
	status.Register(reg)

	req := queryRequest{Structure: "2p", Seed: 5, K: 5}
	first, code := postQuery(t, ts, req)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first query: code=%d cached=%v", code, first.Cached)
	}
	again, _ := postQuery(t, ts, req)
	if !again.Cached {
		t.Fatal("repeat query not served from cache")
	}

	// A "newer" checkpoint: same config and identity, perturbed entity
	// table, written through the atomic verified writer.
	donor, _ := testHalkModel(61)
	ent := donor.Params().Get("entity")
	for i := range ent.Data {
		ent.Data[i] += 0.37 * math.Sin(float64(i))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "next.ckpt")
	if err := donor.WriteCheckpointFile(path, "FB237", 61); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}

	verBefore, snapBefore := m.EntityVersion(), ranker.SnapshotVersion()
	info, err := m.ReloadFromFile(path, "FB237", 61)
	if err != nil {
		t.Fatalf("ReloadFromFile: %v", err)
	}
	if m.EntityVersion() <= verBefore {
		t.Fatal("entity version did not advance on reload")
	}
	if err := ranker.Refresh(); err != nil {
		t.Fatalf("ranker.Refresh after reload: %v", err)
	}
	if ranker.SnapshotVersion() <= snapBefore {
		t.Fatal("sharded snapshot version did not advance on refresh")
	}
	status.SetLoaded(path, "FB237", 61, info.Step, m.EntityVersion())

	// The cache key namespace moved with the entity version: the same
	// query must be re-ranked, not served from the stale entry.
	post, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("post-reload query: code=%d", code)
	}
	if post.Cached {
		t.Fatal("post-reload query served from the pre-reload cache")
	}

	st := getStats(t, ts)
	if st.Checkpoint == nil {
		t.Fatal("stats missing checkpoint section")
	}
	if st.Checkpoint.Path != path || st.Checkpoint.Reloads != 1 || st.Checkpoint.Failures != 0 {
		t.Fatalf("checkpoint stats = %+v, want path=%s reloads=1 failures=0", st.Checkpoint, path)
	}

	// Corrupt candidate: truncate the file mid-payload. The reload must
	// fail without touching the live parameters; the serving layer keeps
	// answering (now from cache — same version as before the attempt).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	verBefore = m.EntityVersion()
	if _, err := m.ReloadFromFile(torn, "FB237", 61); err == nil || !ckpt.IsCorrupt(err) {
		t.Fatalf("torn reload: err=%v, want corruption", err)
	}
	status.ReloadFailed()
	if m.EntityVersion() != verBefore {
		t.Fatal("failed reload changed the entity version")
	}
	after, code := postQuery(t, ts, req)
	if code != http.StatusOK || !after.Cached {
		t.Fatalf("query after failed reload: code=%d cached=%v (old snapshot must keep serving)", code, after.Cached)
	}
	st = getStats(t, ts)
	if st.Checkpoint.Failures != 1 || st.Checkpoint.Reloads != 1 {
		t.Fatalf("checkpoint stats after failure = %+v, want reloads=1 failures=1", st.Checkpoint)
	}

	// The failure is also visible on /metrics for alerting.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		"halk_ckpt_reload_failures_total 1",
		"halk_ckpt_reloads_total 1",
		"halk_ckpt_loaded_step",
		`halk_ckpt_loaded_info{dataset="FB237",seed="61"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	_ = ds
}

// TestSetApproxSwap exercises the live ANN swap: disabling approx mode
// rejects requests with 400, installing a rebuilt index re-enables it,
// and /v1/stats tracks the current state.
func TestSetApproxSwap(t *testing.T) {
	s, m, _, ts := newTestServer(t, func(c *Config) {
		c.Approx = nil
	})
	req := queryRequest{Structure: "1p", Seed: 3, K: 5, Mode: "approx"}
	if _, code := postQuery(t, ts, req); code != http.StatusBadRequest {
		t.Fatalf("approx with no index: code=%d, want 400", code)
	}
	if getStats(t, ts).ApproxOn {
		t.Fatal("stats report approx enabled with no index")
	}

	s.SetApprox(m.NewAnswerIndex(ann.DefaultConfig(61)))
	if _, code := postQuery(t, ts, req); code != http.StatusOK {
		t.Fatalf("approx after SetApprox: code=%d, want 200", code)
	}
	if !getStats(t, ts).ApproxOn {
		t.Fatal("stats report approx disabled after SetApprox")
	}

	s.SetApprox(nil)
	if _, code := postQuery(t, ts, req); code != http.StatusBadRequest {
		t.Fatalf("approx after SetApprox(nil): code=%d, want 400", code)
	}
}
