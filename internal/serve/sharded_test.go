package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// TestStaleAnswersNotServedAfterEntityUpdate is the regression test for
// the cache-staleness bug: before version-namespaced cache keys, an
// entity update left old answer lists in the cache and identical
// follow-up queries were served embeddings-stale answers until an
// explicit FlushCache.
func TestStaleAnswersNotServedAfterEntityUpdate(t *testing.T) {
	_, m, ds, ts := newTestServer(t, nil)
	root := sampleQuery(t, ds, "1p", 9)
	req := queryRequest{Structure: "1p", Seed: 9, K: 5}

	first, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached {
		t.Fatal("first query unexpectedly cached")
	}
	again, _ := postQuery(t, ts, req)
	if !again.Cached {
		t.Fatal("repeat query should hit the cache")
	}

	// Move the best answer's embedding far away — its distance, and
	// likely the ranking, change. No FlushCache call.
	moved := first.Answers[0].ID
	angles := append([]float64(nil), m.EntityAngles(moved)...)
	for j := range angles {
		angles[j] += 2.5
	}
	if err := m.SetEntityAngles(moved, angles); err != nil {
		t.Fatalf("SetEntityAngles: %v", err)
	}

	fresh, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if fresh.Cached {
		t.Fatal("query after entity update served a stale cached answer")
	}
	// The served answers must match a live ranking of the updated model.
	want := m.TopK(root, 5)
	for i := range want {
		if fresh.Answers[i].ID != want[i] {
			t.Fatalf("answer %d = %d, want %d (stale ranking?)", i, fresh.Answers[i].ID, want[i])
		}
	}
	// And the new result is cacheable under the new version.
	cached, _ := postQuery(t, ts, req)
	if !cached.Cached {
		t.Fatal("post-update repeat query should hit the cache under the new version")
	}
}

// TestShardedServingMatchesModel serves exact queries through a real
// ShardedRanker and checks the answers equal the model's own TopK, and
// that /v1/stats reports per-shard counters.
func TestShardedServingMatchesModel(t *testing.T) {
	_, m, ds, ts := newTestServer(t, func(cfg *Config) {
		r, err := cfg.Model.(*halk.Model).NewShardedRanker(shard.Options{Shards: 3})
		if err != nil {
			t.Fatalf("NewShardedRanker: %v", err)
		}
		cfg.Ranker = r
	})
	root := sampleQuery(t, ds, "2i", 7)

	qr, code := postQuery(t, ts, queryRequest{Structure: "2i", Seed: 7, K: 12})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Partial {
		t.Fatal("unexpected partial response")
	}
	want := m.TopK(root, 12)
	if len(qr.Answers) != len(want) {
		t.Fatalf("got %d answers, want %d", len(qr.Answers), len(want))
	}
	dist := m.Distances(root)
	for i := range want {
		if qr.Answers[i].ID != want[i] {
			t.Fatalf("answer %d = %d, want %d", i, qr.Answers[i].ID, want[i])
		}
		if qr.Answers[i].Distance == nil || *qr.Answers[i].Distance != dist[want[i]] {
			t.Fatalf("answer %d distance mismatch", i)
		}
	}
	// Repeat is a cache hit even on the sharded path.
	again, _ := postQuery(t, ts, queryRequest{Structure: "2i", Seed: 7, K: 12})
	if !again.Cached {
		t.Fatal("repeat sharded query should hit the cache")
	}

	stats := getStats(t, ts)
	if stats.NumShards != 3 {
		t.Fatalf("stats.NumShards = %d, want 3", stats.NumShards)
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("stats.Shards has %d entries, want 3", len(stats.Shards))
	}
	var scans uint64
	for _, ss := range stats.Shards {
		scans += ss.Scans
	}
	if scans == 0 {
		t.Fatal("no shard scans recorded after a served query")
	}
}

// stubRanker scripts sharded results, letting the handler's
// partial-response behaviour be tested without timing dependence.
type stubRanker struct {
	results []*shard.Result
	calls   int
}

func (s *stubRanker) RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	if s.calls >= len(s.results) {
		t := s.results[len(s.results)-1]
		return t, nil
	}
	r := s.results[s.calls]
	s.calls++
	return r, nil
}

func (s *stubRanker) SnapshotVersion() uint64        { return 1 }
func (s *stubRanker) NumShards() int                 { return 2 }
func (s *stubRanker) ShardStats() []shard.ShardStats { return nil }

// TestPartialResponseNotCached asserts a degraded (partial) sharded
// response is surfaced with partial metadata and never stored in the
// answer cache: once the slow shard recovers, the full answer is
// recomputed rather than the degraded list being replayed.
func TestPartialResponseNotCached(t *testing.T) {
	d1, d2 := 0.25, 0.5
	partial := &shard.Result{
		IDs: []kg.EntityID{3}, Dists: []float64{d2},
		Partial: true, Answered: []int{0}, Skipped: []int{1}, Version: 1,
	}
	full := &shard.Result{
		IDs: []kg.EntityID{7, 3}, Dists: []float64{d1, d2},
		Answered: []int{0, 1}, Version: 1,
	}
	stub := &stubRanker{results: []*shard.Result{partial, full}}
	_, _, _, ts := newTestServer(t, func(cfg *Config) { cfg.Ranker = stub })

	req := queryRequest{Structure: "1p", Seed: 11, K: 2}
	got, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !got.Partial {
		t.Fatal("response not marked partial")
	}
	if len(got.ShardsAnswered) != 1 || got.ShardsAnswered[0] != 0 {
		t.Fatalf("ShardsAnswered = %v, want [0]", got.ShardsAnswered)
	}
	if got.Cached {
		t.Fatal("partial response claims to be cached")
	}
	if len(got.Answers) != 1 || got.Answers[0].ID != 3 {
		t.Fatalf("partial answers = %+v, want the single degraded answer", got.Answers)
	}

	// The shard recovered: the same query must be recomputed (the partial
	// list was not cached) and now returns the full ranking.
	got2, _ := postQuery(t, ts, req)
	if got2.Cached {
		t.Fatal("second query served from cache: the partial response was cached")
	}
	if got2.Partial || len(got2.Answers) != 2 || got2.Answers[0].ID != 7 {
		t.Fatalf("second response = %+v, want the full 2-answer ranking", got2)
	}

	// The full response is cacheable.
	got3, _ := postQuery(t, ts, req)
	if !got3.Cached {
		t.Fatal("third query should hit the cache with the full answer")
	}
	if got3.Partial || len(got3.Answers) != 2 {
		t.Fatalf("cached response = %+v, want the full ranking", got3)
	}
}

// TestDeadlinePartialEndToEnd drives the deadline/partial-result path
// through a real engine rather than a stub: shard 1 of 2 sleeps past its
// per-shard deadline on every scan, so each response must degrade to
// partial=true with shards_answered=[0], must never populate the answer
// cache, and the skip must land in the per-shard counters.
func TestDeadlinePartialEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, _, ts := newTestServer(t, func(cfg *Config) {
		cfg.Metrics = reg
		r, err := cfg.Model.(*halk.Model).NewShardedRanker(shard.Options{
			Shards:       2,
			ShardTimeout: 10 * time.Millisecond,
			Metrics:      reg,
			ScanHook: func(i int) {
				if i == 1 {
					time.Sleep(100 * time.Millisecond)
				}
			},
		})
		if err != nil {
			t.Fatalf("NewShardedRanker: %v", err)
		}
		cfg.Ranker = r
	})

	req := queryRequest{Structure: "1p", Seed: 5, K: 6}
	for attempt := 1; attempt <= 2; attempt++ {
		qr, code := postQuery(t, ts, req)
		if code != http.StatusOK {
			t.Fatalf("attempt %d: status %d", attempt, code)
		}
		if !qr.Partial {
			t.Fatalf("attempt %d: response not marked partial", attempt)
		}
		if len(qr.ShardsAnswered) != 1 || qr.ShardsAnswered[0] != 0 {
			t.Fatalf("attempt %d: ShardsAnswered = %v, want [0]", attempt, qr.ShardsAnswered)
		}
		// Never a cache hit: partial answers must not be stored, so the
		// second identical query recomputes instead of replaying.
		if qr.Cached {
			t.Fatalf("attempt %d: partial response served from cache", attempt)
		}
		if len(qr.Answers) == 0 {
			t.Fatalf("attempt %d: partial response carried no answers from the live shard", attempt)
		}
	}

	stats := getStats(t, ts)
	if stats.Cache.Size != 0 {
		t.Fatalf("answer cache holds %d entries after partial-only traffic, want 0", stats.Cache.Size)
	}
	var skips uint64
	for _, ss := range stats.Shards {
		if ss.Shard == 1 {
			skips = ss.Skips
		}
	}
	if skips < 2 {
		t.Fatalf("shard 1 skips = %d, want >= 2", skips)
	}
}
