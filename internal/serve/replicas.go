package serve

import "github.com/halk-kg/halk/internal/resil"

// ReplicaSnapshot is one replica's view in the /v1/stats ranges block:
// liveness, last-known entity version, scan-outcome counters and the
// latency EWMA the router's primary selection compares.
type ReplicaSnapshot struct {
	Node    string `json:"node"`
	Healthy bool   `json:"healthy"`
	// State is the membership state: "active", "probation", "draining"
	// or "down". Only active replicas are preferred for gathers;
	// probation replicas never serve one.
	State         string  `json:"state,omitempty"`
	EntityVersion uint64  `json:"entity_version"`
	Primary       bool    `json:"primary"`
	Scans         uint64  `json:"scans"`
	Timeouts      uint64  `json:"timeouts"`
	Errors        uint64  `json:"errors"`
	BreakerSkips  uint64  `json:"breaker_skips"`
	Hedges        uint64  `json:"hedges"`
	HedgeWins     uint64  `json:"hedge_wins"`
	EwmaMs        float64 `json:"ewma_ms"`
	// QueueDepth is the concurrent-scan depth the replica last
	// reported; primary selection weighs the EWMA by it.
	QueueDepth int64 `json:"queue_depth"`
	// Probes/Admissions count identity-probe scans issued to this
	// replica and the times a passed probe (re-)admitted it.
	Probes     uint64 `json:"probes,omitempty"`
	Admissions uint64 `json:"admissions,omitempty"`
	// Breaker is the replica's circuit-breaker snapshot when breakers
	// are configured.
	Breaker *resil.BreakerStats `json:"breaker,omitempty"`
}

// RangeReplicaStats is one entity range's replica set in /v1/stats:
// the hosted range, the current primary, the failover and primary-flip
// counters, and every replica's snapshot.
type RangeReplicaStats struct {
	Range        int               `json:"range"`
	Lo           int               `json:"lo"`
	Hi           int               `json:"hi"`
	Primary      string            `json:"primary"`
	Failovers    uint64            `json:"failovers"`
	PrimaryFlips uint64            `json:"primary_flips"`
	Replicas     []ReplicaSnapshot `json:"replicas"`
}

// ReplicaStatser is the optional Ranker upgrade a replicated topology
// implements (cluster.Router does): per-range replica sets with
// failover counters, surfaced as the "ranges" block of /v1/stats
// alongside the flat per-range "shards" block.
type ReplicaStatser interface {
	ReplicaStats() []RangeReplicaStats
}
