package serve

import (
	"container/list"
	"sync"
)

// answerCache is a mutex-protected LRU over ranked answer lists, keyed
// by the canonical query key plus the request parameters that change the
// answer (mode, k). It counts hits, misses and evictions so /v1/stats
// can report the hit rate.
type answerCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key     string
	answers []Answer
}

// newAnswerCache returns a cache holding up to max entries; max <= 0
// disables caching (every Get misses, Put is a no-op).
func newAnswerCache(max int) *answerCache {
	return &answerCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached answers for key, marking the entry most
// recently used.
func (c *answerCache) Get(key string) ([]Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).answers, true
}

// Put stores answers under key, evicting the least recently used entry
// if the cache is full.
func (c *answerCache) Put(key string, answers []Answer) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).answers = answers
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, answers: answers})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Flush drops every entry (e.g. after an entity-table update made cached
// answers stale); the counters are preserved.
func (c *answerCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// cacheStats is the /v1/stats view of the cache.
type cacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func (c *answerCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
