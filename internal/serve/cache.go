package serve

import (
	"container/list"
	"sync"

	"github.com/halk-kg/halk/internal/obs"
)

// answerCache is a mutex-protected LRU over ranked answer lists, keyed
// by the canonical query key plus the request parameters that change the
// answer (mode, k). Hit/miss/eviction counters live on the obs registry
// (halk_cache_*), so /v1/stats and /metrics report the same numbers.
type answerCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits, misses, evictions *obs.Counter
}

type cacheEntry struct {
	key     string
	answers []Answer
}

// newAnswerCache returns a cache holding up to max entries; max <= 0
// disables caching (every Get misses, Put is a no-op). Its counters and
// size gauge register on reg.
func newAnswerCache(max int, reg *obs.Registry) *answerCache {
	c := &answerCache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter("halk_cache_hits_total", "Answer-cache hits."),
		misses:    reg.Counter("halk_cache_misses_total", "Answer-cache misses."),
		evictions: reg.Counter("halk_cache_evictions_total", "Answer-cache LRU evictions."),
	}
	reg.GaugeFunc("halk_cache_size", "Answer-cache entries currently held.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.ll.Len())
	})
	reg.Gauge("halk_cache_capacity", "Answer-cache capacity in entries.").Set(float64(max))
	return c
}

// Get returns the cached answers for key, marking the entry most
// recently used.
func (c *answerCache) Get(key string) ([]Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).answers, true
}

// Put stores answers under key, evicting the least recently used entry
// if the cache is full.
func (c *answerCache) Put(key string, answers []Answer) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).answers = answers
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, answers: answers})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// Flush drops every entry (e.g. after an entity-table update made cached
// answers stale); the counters are preserved.
func (c *answerCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// cacheStats is the /v1/stats view of the cache.
type cacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func (c *answerCache) stats() cacheStats {
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	s := cacheStats{
		Size:      size,
		Capacity:  c.max,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
