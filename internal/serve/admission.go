package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/halk-kg/halk/internal/obs"
)

// ewmaAlpha is the smoothing factor of the admission gate's service-time
// estimate: each observation contributes 20%, so the estimate tracks
// load shifts within a handful of requests without chasing outliers.
const ewmaAlpha = 0.2

// coldStartServiceMs is the conservative service-time assumption used
// while the EWMA has no observations — after a restart, before the
// first ranking completes. Without it a cold-start stampede would be
// admitted without bound (predicted wait 0 × any queue depth); with it
// deep queues shed until real observations take over. The first real
// observation replaces it outright rather than blending in.
const coldStartServiceMs = 100

// admission is the deadline-aware load-shedding gate in front of the
// worker pool. It estimates how long a new request would wait for a
// worker — queued requests beyond the pool size, times the EWMA service
// time — and sheds the request up front (HTTP 429 + Retry-After) when
// that wait exceeds the configured bound or the request's own remaining
// deadline. Shedding at admission costs microseconds; the alternative is
// a request that queues, times out, and wastes a worker slot the moment
// one frees up.
type admission struct {
	workers int
	maxWait time.Duration

	inflight atomic.Int64 // admitted requests not yet released

	mu     sync.Mutex
	ewmaMs float64 // EWMA of observed ranking service time

	shed *obs.Counter
}

func newAdmission(workers int, maxWait time.Duration, reg *obs.Registry) *admission {
	g := &admission{
		workers: workers,
		maxWait: maxWait,
		shed:    reg.Counter("halk_admission_shed_total", "Requests shed at admission with 429 (expected queue wait exceeded the deadline)."),
	}
	reg.GaugeFunc("halk_admission_inflight", "Admitted requests currently queued or ranking.",
		func() float64 { return float64(g.inflight.Load()) })
	return g
}

// admit decides whether the request may enter the worker-pool queue.
// Admitted requests receive a release func that MUST be called exactly
// once when the request leaves the pool; pass the observed ranking
// service time in milliseconds (or <= 0 to leave the estimate alone —
// e.g. when the request failed before ranking). Shed requests receive
// ok=false and the predicted wait to surface as Retry-After.
func (g *admission) admit(ctx context.Context) (release func(serviceMs float64), retryAfter time.Duration, ok bool) {
	inflight := g.inflight.Add(1)
	queued := inflight - int64(g.workers)
	if queued > 0 {
		g.mu.Lock()
		ewma := g.ewmaMs
		g.mu.Unlock()
		if ewma == 0 {
			ewma = coldStartServiceMs
		}
		wait := time.Duration(float64(queued) / float64(g.workers) * ewma * float64(time.Millisecond))
		budget := g.maxWait
		if deadline, has := ctx.Deadline(); has {
			if remaining := time.Until(deadline); remaining < budget {
				budget = remaining
			}
		}
		if wait > budget {
			g.inflight.Add(-1)
			g.shed.Inc()
			return nil, wait, false
		}
	}
	return func(serviceMs float64) {
		g.inflight.Add(-1)
		if serviceMs > 0 {
			g.mu.Lock()
			if g.ewmaMs == 0 {
				g.ewmaMs = serviceMs
			} else {
				g.ewmaMs = ewmaAlpha*serviceMs + (1-ewmaAlpha)*g.ewmaMs
			}
			g.mu.Unlock()
		}
	}, 0, true
}

// snapshot returns the gate's /v1/stats view.
func (g *admission) snapshot() *admissionSnapshot {
	g.mu.Lock()
	ewma := g.ewmaMs
	g.mu.Unlock()
	return &admissionSnapshot{
		MaxQueueWaitMs: float64(g.maxWait) / float64(time.Millisecond),
		Inflight:       g.inflight.Load(),
		Shed:           g.shed.Value(),
		ServiceEwmaMs:  ewma,
	}
}

// admissionSnapshot is the /v1/stats view of the admission gate.
type admissionSnapshot struct {
	MaxQueueWaitMs float64 `json:"max_queue_wait_ms"`
	Inflight       int64   `json:"inflight"`
	Shed           uint64  `json:"shed"`
	ServiceEwmaMs  float64 `json:"service_ewma_ms"`
}
