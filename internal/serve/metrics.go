package serve

import (
	"sort"
	"sync"
	"time"
)

// ringSize is the number of recent observations each ring keeps;
// quantiles are computed over this sliding window, so they track the
// recent traffic rather than the process lifetime.
const ringSize = 512

// ring is a fixed-size ring buffer of float64 observations. It is not
// self-locking; metrics.mu guards it.
type ring struct {
	buf   []float64
	next  int
	total uint64
}

func newRing() *ring { return &ring{buf: make([]float64, 0, ringSize)} }

func (r *ring) observe(v float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// quantile returns the q-quantile (0 <= q <= 1) of the window, or 0 if
// nothing has been observed.
func (r *ring) quantile(q float64) float64 {
	if len(r.buf) == 0 {
		return 0
	}
	s := append([]float64(nil), r.buf...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// metrics aggregates per-endpoint request counters and latency windows,
// plus the approx-mode candidate-pool sizes. All methods are safe for
// concurrent use.
type metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	poolSizes *ring
}

type endpointStats struct {
	count   uint64
	errors  uint64
	latency *ring
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
		poolSizes: newRing(),
	}
}

// observe records one request against the endpoint: its latency, and
// whether it failed (any non-2xx response).
func (mt *metrics) observe(endpoint string, elapsed time.Duration, failed bool) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	es, ok := mt.endpoints[endpoint]
	if !ok {
		es = &endpointStats{latency: newRing()}
		mt.endpoints[endpoint] = es
	}
	es.count++
	if failed {
		es.errors++
	}
	es.latency.observe(float64(elapsed) / float64(time.Millisecond))
}

// observePool records the candidate-pool size of one approx-mode query.
func (mt *metrics) observePool(size int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.poolSizes.observe(float64(size))
}

// endpointSnapshot is the /v1/stats view of one endpoint.
type endpointSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	LatencyMs latency `json:"latency_ms"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// poolSnapshot summarises approx-mode candidate-pool sizes.
type poolSnapshot struct {
	Queries uint64  `json:"queries"`
	Mean    float64 `json:"mean"`
	P90     float64 `json:"p90"`
}

func (mt *metrics) snapshot() (map[string]endpointSnapshot, poolSnapshot, float64) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	eps := make(map[string]endpointSnapshot, len(mt.endpoints))
	for name, es := range mt.endpoints {
		eps[name] = endpointSnapshot{
			Requests: es.count,
			Errors:   es.errors,
			LatencyMs: latency{
				P50: es.latency.quantile(0.50),
				P90: es.latency.quantile(0.90),
				P99: es.latency.quantile(0.99),
			},
		}
	}
	pool := poolSnapshot{Queries: mt.poolSizes.total, P90: mt.poolSizes.quantile(0.90)}
	if n := len(mt.poolSizes.buf); n > 0 {
		sum := 0.0
		for _, v := range mt.poolSizes.buf {
			sum += v
		}
		pool.Mean = sum / float64(n)
	}
	return eps, pool, time.Since(mt.start).Seconds()
}
