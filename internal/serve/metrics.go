package serve

import (
	"sync"
	"time"

	"github.com/halk-kg/halk/internal/obs"
)

// metrics is the serving side's view into the obs registry: request and
// error counters plus a latency histogram per endpoint, a per-stage
// query-pipeline latency histogram, and the approx-mode candidate-pool
// size distribution. The registry is the single source of truth — the
// same series back the Prometheus exposition at /metrics and the JSON
// snapshot at /v1/stats.
type metrics struct {
	reg   *obs.Registry
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	stages    map[string]*obs.Histogram
	poolSizes *obs.Histogram
	// batchSizes distributes /v1/batch request sizes in queries;
	// batchQueries and batchCached count the queries inside batches and
	// how many of them the answer cache covered.
	batchSizes   *obs.Histogram
	batchQueries *obs.Counter
	batchCached  *obs.Counter
	slow         *obs.Counter
	// workerPanics counts panics recovered on pool workers (the request
	// got a 500); handlerPanics counts panics recovered at the HTTP
	// middleware (e.g. a poisoned cache layer).
	workerPanics  *obs.Counter
	handlerPanics *obs.Counter
}

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:       reg,
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics),
		stages:    make(map[string]*obs.Histogram),
		poolSizes: reg.Histogram("halk_approx_pool_size", "Candidate-pool sizes of approx-mode queries.", obs.SizeBuckets),
		batchSizes: reg.Histogram("halk_batch_size",
			"Query counts of /v1/batch requests.", obs.SizeBuckets),
		batchQueries: reg.Counter("halk_batch_queries_total",
			"Queries received inside /v1/batch requests."),
		batchCached: reg.Counter("halk_batch_cache_hits_total",
			"Batch queries answered from the cache without ranking."),
		slow: reg.Counter("halk_slow_queries_total", "Queries slower than the slow-query threshold."),
		workerPanics: reg.Counter("halk_panics_total",
			"Panics recovered while serving, by recovery site.", obs.L("where", "worker")),
		handlerPanics: reg.Counter("halk_panics_total",
			"Panics recovered while serving, by recovery site.", obs.L("where", "handler")),
	}
}

// endpoint returns (creating on first use) the registry handles for one
// endpoint label.
func (mt *metrics) endpoint(name string) *endpointMetrics {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	em, ok := mt.endpoints[name]
	if !ok {
		l := obs.L("endpoint", name)
		em = &endpointMetrics{
			requests: mt.reg.Counter("halk_http_requests_total", "HTTP requests served, by endpoint.", l),
			errors:   mt.reg.Counter("halk_http_errors_total", "HTTP requests answered with a 4xx/5xx status.", l),
			latency:  mt.reg.Histogram("halk_http_request_duration_ms", "End-to-end request latency in milliseconds.", obs.LatencyBuckets, l),
		}
		mt.endpoints[name] = em
	}
	return em
}

// observe records one request against the endpoint: its latency, and
// whether it failed (any non-2xx response).
func (mt *metrics) observe(endpoint string, elapsed time.Duration, failed bool) {
	em := mt.endpoint(endpoint)
	em.requests.Inc()
	if failed {
		em.errors.Inc()
	}
	em.latency.Observe(float64(elapsed) / float64(time.Millisecond))
}

// observeTrace folds a finished query trace into the per-stage latency
// histograms (halk_stage_duration_ms{stage=...}).
func (mt *metrics) observeTrace(tr *obs.Trace) {
	for _, st := range tr.Stages() {
		mt.stage(st.Stage).Observe(st.Ms)
	}
}

func (mt *metrics) stage(name string) *obs.Histogram {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	h, ok := mt.stages[name]
	if !ok {
		h = mt.reg.Histogram("halk_stage_duration_ms", "Per-stage query pipeline latency in milliseconds.", obs.LatencyBuckets, obs.L("stage", name))
		mt.stages[name] = h
	}
	return h
}

// observePool records the candidate-pool size of one approx-mode query.
func (mt *metrics) observePool(size int) {
	mt.poolSizes.Observe(float64(size))
}

// observeBatch records one /v1/batch request: its query count and how
// many of those queries the answer cache covered.
func (mt *metrics) observeBatch(size, cached int) {
	mt.batchSizes.Observe(float64(size))
	mt.batchQueries.Add(uint64(size))
	mt.batchCached.Add(uint64(cached))
}

// endpointSnapshot is the /v1/stats view of one endpoint.
type endpointSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	LatencyMs latency `json:"latency_ms"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// poolSnapshot summarises approx-mode candidate-pool sizes.
type poolSnapshot struct {
	Queries uint64  `json:"queries"`
	Mean    float64 `json:"mean"`
	P90     float64 `json:"p90"`
}

// snapshot renders the JSON view over the registry: per-endpoint
// counters with histogram-interpolated latency quantiles, the
// candidate-pool summary, and uptime.
func (mt *metrics) snapshot() (map[string]endpointSnapshot, poolSnapshot, float64) {
	mt.mu.Lock()
	names := make([]string, 0, len(mt.endpoints))
	for name := range mt.endpoints {
		names = append(names, name)
	}
	mt.mu.Unlock()

	eps := make(map[string]endpointSnapshot, len(names))
	for _, name := range names {
		em := mt.endpoint(name)
		eps[name] = endpointSnapshot{
			Requests: em.requests.Value(),
			Errors:   em.errors.Value(),
			LatencyMs: latency{
				P50: em.latency.Quantile(0.50),
				P90: em.latency.Quantile(0.90),
				P99: em.latency.Quantile(0.99),
			},
		}
	}
	pool := poolSnapshot{
		Queries: mt.poolSizes.Count(),
		Mean:    mt.poolSizes.Mean(),
		P90:     mt.poolSizes.Quantile(0.90),
	}
	return eps, pool, time.Since(mt.start).Seconds()
}
